// Unit tests of the transaction WAL (server/txn_log.h): frame round-trips
// in memory and on disk, torn-tail and checksum-mismatch replay tolerance,
// injected append failures, concurrent appenders (TSan), and the PUL
// serialization the PREPARED records carry.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/txn_log.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/update.h"

namespace xrpc::server {
namespace {

using RecordType = TxnLog::RecordType;

std::string TempWalPath(const std::string& name) {
  return xrpc::testing::UniqueTempPath(name);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TxnLogTest, InMemoryAppendAndReplay) {
  TxnLog log;
  EXPECT_FALSE(log.file_backed());
  ASSERT_TRUE(log.Append({RecordType::kPrepared, "q1", "payload-1"}).ok());
  ASSERT_TRUE(log.Append({RecordType::kCommitted, "q1", ""}).ok());
  ASSERT_TRUE(log.Append({RecordType::kApplied, "q1", ""}).ok());

  TxnLog::ReplayStats stats;
  auto records = log.Replay(&stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.checksum_error);
  EXPECT_EQ((*records)[0].type, RecordType::kPrepared);
  EXPECT_EQ((*records)[0].query_id, "q1");
  EXPECT_EQ((*records)[0].payload, "payload-1");
  EXPECT_EQ((*records)[2].type, RecordType::kApplied);
  EXPECT_EQ(log.CountAppended(RecordType::kPrepared), 1u);
}

TEST(TxnLogTest, FileBackedRoundTripAcrossReopen) {
  const std::string path = TempWalPath("roundtrip.wal");
  std::remove(path.c_str());
  {
    TxnLog log;
    ASSERT_TRUE(log.Open(path).ok());
    EXPECT_TRUE(log.file_backed());
    ASSERT_TRUE(log.Append({RecordType::kPrepared, "q1", "state"}).ok());
    ASSERT_TRUE(
        log.Append({RecordType::kCoordCommit, "q2", "xrpc://a\nxrpc://b"})
            .ok());
    EXPECT_EQ(log.appends(), 2);
    EXPECT_EQ(log.fsyncs(), 2);
  }
  // A different incarnation (fresh process) reads the same records back.
  TxnLog reopened;
  ASSERT_TRUE(reopened.Open(path).ok());
  TxnLog::ReplayStats stats;
  auto records = reopened.Replay(&stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].query_id, "q1");
  EXPECT_EQ((*records)[0].payload, "state");
  EXPECT_EQ((*records)[1].type, RecordType::kCoordCommit);
  EXPECT_EQ((*records)[1].payload, "xrpc://a\nxrpc://b");
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.checksum_error);
}

TEST(TxnLogTest, ReplayToleratesTornTail) {
  const std::string path = TempWalPath("torn.wal");
  std::remove(path.c_str());
  {
    TxnLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append({RecordType::kPrepared, "q1", "alpha"}).ok());
    ASSERT_TRUE(log.Append({RecordType::kCommitted, "q1", ""}).ok());
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  std::string bytes = ReadFileBytes(path);
  std::string full = bytes;
  {
    TxnLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append({RecordType::kApplied, "q1", "tail"}).ok());
  }
  std::string with_third = ReadFileBytes(path);
  ASSERT_GT(with_third.size(), full.size());
  // Keep the two whole records plus only half of the third frame.
  size_t cut = full.size() + (with_third.size() - full.size()) / 2;
  WriteFileBytes(path, with_third.substr(0, cut));

  TxnLog::ReplayStats stats;
  auto records = TxnLog::ReplayFile(path, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_FALSE(stats.checksum_error);
  EXPECT_GT(stats.dropped_bytes, 0u);
  EXPECT_EQ((*records)[1].type, RecordType::kCommitted);
}

TEST(TxnLogTest, ReplayStopsAtChecksumMismatch) {
  const std::string path = TempWalPath("corrupt.wal");
  std::remove(path.c_str());
  {
    TxnLog log;
    ASSERT_TRUE(log.Open(path).ok());
    ASSERT_TRUE(log.Append({RecordType::kPrepared, "q1", "good"}).ok());
    ASSERT_TRUE(
        log.Append({RecordType::kPrepared, "q2", "to-be-corrupted"}).ok());
  }
  std::string bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty());
  bytes.back() ^= 0x5a;  // flip bits inside the last record's payload
  WriteFileBytes(path, bytes);

  TxnLog::ReplayStats stats;
  auto records = TxnLog::ReplayFile(path, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].query_id, "q1");
  EXPECT_TRUE(stats.checksum_error);
  EXPECT_GT(stats.dropped_bytes, 0u);
}

TEST(TxnLogTest, FailNextAppendInjectsExactlyOnce) {
  TxnLog log;
  log.FailNextAppend(Status::TransactionError("disk full"));
  Status failed = log.Append({RecordType::kPrepared, "q1", ""});
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find("disk full"), std::string::npos);
  EXPECT_TRUE(log.Append({RecordType::kPrepared, "q1", ""}).ok());
  EXPECT_EQ(log.records().size(), 1u);
}

TEST(TxnLogTest, ConcurrentAppendersAllLand) {
  const std::string path = TempWalPath("concurrent.wal");
  std::remove(path.c_str());
  TxnLog log;
  ASSERT_TRUE(log.Open(path).ok());
  log.set_sync(false);  // keep the threaded test fast
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string qid =
            "q" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(
            log.Append({RecordType::kPrepared, qid, "payload"}).ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  TxnLog::ReplayStats stats;
  auto records = log.Replay(&stats);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.checksum_error);
}

// -- PUL serialization (the PREPARED record payload) ------------------------

TEST(PulSerializationTest, RoundTripsInsertAndReplaceValue) {
  auto doc_or = xml::ParseXml(
      "<films><film><name>Goldfinger</name></film>"
      "<film><name>Dr. No</name></film></films>");
  ASSERT_TRUE(doc_or.ok());
  xml::NodePtr doc = doc_or.value();
  xml::Node* films = nullptr;
  for (const xml::NodePtr& c : doc->children()) {
    if (c->kind() == xml::NodeKind::kElement) films = c.get();
  }
  ASSERT_NE(films, nullptr);

  auto content_or = xml::ParseXmlFragment(
      "<film><name>Thunderball</name></film>");
  ASSERT_TRUE(content_or.ok());

  xquery::PendingUpdateList pul;
  {
    xquery::UpdatePrimitive p;
    p.kind = xquery::UpdatePrimitive::Kind::kInsertInto;
    p.target = xdm::Item::NodeInTree(films, doc);
    for (const xml::NodePtr& c : content_or.value()->children()) {
      if (c->kind() == xml::NodeKind::kElement) {
        p.content.push_back(xdm::Item::Node(c->Clone()));
      }
    }
    pul.Add(std::move(p));
  }

  auto namer = [&](const xml::Node* root) -> StatusOr<std::string> {
    if (root == doc.get()) return std::string("filmDB.xml");
    return Status::IsolationError("unknown tree");
  };
  auto text = pul.Serialize(namer);
  ASSERT_TRUE(text.ok()) << text.status();

  // Re-resolve against a structurally identical clone (what recovery does).
  xml::NodePtr clone = doc->Clone();
  auto resolver = [&](const std::string& name) -> StatusOr<xml::NodePtr> {
    if (name == "filmDB.xml") return clone;
    return Status::NotFound("no doc " + name);
  };
  auto restored = xquery::PendingUpdateList::Deserialize(text.value(),
                                                         resolver);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), 1u);

  // Applying the restored PUL mutates the clone exactly like the original.
  ASSERT_TRUE(xquery::ApplyUpdates(&restored.value(), nullptr).ok());
  std::string after = xml::SerializeNode(*clone);
  EXPECT_NE(after.find("Thunderball"), std::string::npos);
  EXPECT_NE(after.find("Goldfinger"), std::string::npos);
}

TEST(PulSerializationTest, UnnameableTargetIsAnError) {
  auto doc_or = xml::ParseXml("<a><b/></a>");
  ASSERT_TRUE(doc_or.ok());
  xml::NodePtr doc = doc_or.value();
  xquery::PendingUpdateList pul;
  xquery::UpdatePrimitive p;
  p.kind = xquery::UpdatePrimitive::Kind::kDelete;
  p.target = xdm::Item::NodeInTree(doc->children()[0].get(), doc);
  pul.Add(std::move(p));
  auto namer = [](const xml::Node*) -> StatusOr<std::string> {
    return Status::IsolationError("tree not pinned by any document");
  };
  auto text = pul.Serialize(namer);
  EXPECT_FALSE(text.ok());
}

TEST(PulSerializationTest, StalePathFailsDeserialization) {
  auto doc_or = xml::ParseXml("<a><b/><c/></a>");
  ASSERT_TRUE(doc_or.ok());
  xml::NodePtr doc = doc_or.value();
  xml::Node* a = doc->children()[0].get();
  xml::Node* c = a->children()[1].get();
  xquery::PendingUpdateList pul;
  xquery::UpdatePrimitive p;
  p.kind = xquery::UpdatePrimitive::Kind::kDelete;
  p.target = xdm::Item::NodeInTree(c, doc);
  pul.Add(std::move(p));
  auto namer = [&](const xml::Node* root) -> StatusOr<std::string> {
    (void)root;
    return std::string("doc.xml");
  };
  auto text = pul.Serialize(namer);
  ASSERT_TRUE(text.ok()) << text.status();

  // The recovered tree no longer has a second child under <a>: the
  // recorded path cannot resolve and deserialization must say so rather
  // than silently target a different node.
  auto shrunk_or = xml::ParseXml("<a><b/></a>");
  ASSERT_TRUE(shrunk_or.ok());
  xml::NodePtr shrunk = shrunk_or.value();
  auto resolver = [&](const std::string&) -> StatusOr<xml::NodePtr> {
    return shrunk;
  };
  auto restored =
      xquery::PendingUpdateList::Deserialize(text.value(), resolver);
  EXPECT_FALSE(restored.ok());
}

}  // namespace
}  // namespace xrpc::server
