// End-to-end tests of the public API: the paper's example queries Q1-Q3
// and Q6, Bulk RPC generation, out-of-order map-back, engine
// interoperability (relational peer + wrapper peer), distributed updates
// with 2PC, and the Section 5 strategy queries in miniature.

#include <gtest/gtest.h>

#include "core/peer_network.h"
#include "xdm/item.h"

namespace xrpc::core {
namespace {

constexpr char kFilmDbY[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

constexpr char kFilmDbZ[] =
    "<films>"
    "<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare function film:filmsByActor($actor as xs:string) as node()*
  { doc("filmDB.xml")//name[../actor=$actor] };
  declare updating function film:addFilm($name as xs:string,
                                         $actor as xs:string)
  { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
    into doc("filmDB.xml")/films };
)";

class CoreTest : public ::testing::Test {
 protected:
  CoreTest() {
    p0_ = net_.AddPeer("p0.example.org", EngineKind::kRelational);
    y_ = net_.AddPeer("y.example.org", EngineKind::kRelational);
    z_ = net_.AddPeer("z.example.org", EngineKind::kRelational);
    EXPECT_TRUE(y_->AddDocument("filmDB.xml", kFilmDbY).ok());
    EXPECT_TRUE(z_->AddDocument("filmDB.xml", kFilmDbZ).ok());
    for (Peer* p : {p0_, y_, z_}) {
      EXPECT_TRUE(
          p->RegisterModule(kFilmModule, "http://x.example.org/film.xq").ok());
    }
  }

  std::string Run(const std::string& query, const ExecuteOptions& opts = {}) {
    auto report = net_.Execute("p0.example.org", query, opts);
    if (!report.ok()) return "ERROR: " + report.status().ToString();
    last_report_ = std::move(report).value();
    return xdm::SequenceToString(last_report_.result);
  }

  PeerNetwork net_;
  Peer* p0_;
  Peer* y_;
  Peer* z_;
  ExecutionReport last_report_;
};

TEST_F(CoreTest, PaperQ1SingleCall) {
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    <films> {
      execute at {"xrpc://y.example.org"}
      {f:filmsByActor("Sean Connery")}
    } </films>)"),
            "<films><name>The Rock</name><name>Goldfinger</name></films>");
  EXPECT_TRUE(last_report_.used_relational);
  EXPECT_EQ(last_report_.requests_sent, 1);
}

TEST_F(CoreTest, PaperQ2BulkToOneDestination) {
  // Two iterations, one destination => ONE Bulk RPC request.
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    <films> {
      for $actor in ("Julie Andrews", "Sean Connery")
      let $dst := "xrpc://y.example.org"
      return execute at {$dst} {f:filmsByActor($actor)}
    } </films>)"),
            "<films><name>The Rock</name><name>Goldfinger</name></films>");
  EXPECT_EQ(last_report_.requests_sent, 1);
  EXPECT_EQ(y_->service().calls_handled(), 2);
}

TEST_F(CoreTest, PaperQ3BulkToTwoDestinations) {
  // Four iterations, two destinations => TWO Bulk RPC requests (one per
  // peer), results merged back into query order.
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    <films> {
      for $actor in ("Julie Andrews", "Sean Connery")
      for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
      return execute at {$dst} {f:filmsByActor($actor)}
    } </films>)"),
            "<films>"
            "<name>Sound Of Music</name>"       // iter 2: Julie @ z
            "<name>The Rock</name>"             // iter 3: Sean @ y
            "<name>Goldfinger</name>"
            "</films>");
  EXPECT_EQ(last_report_.requests_sent, 2);
  EXPECT_EQ(y_->service().calls_handled(), 2);
  EXPECT_EQ(z_->service().calls_handled(), 2);
}

TEST_F(CoreTest, Figure1TraceCapturesIntermediateTables) {
  ExecuteOptions opts;
  opts.trace_bulk_rpc = true;
  Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    for $actor in ("Julie Andrews", "Sean Connery")
    for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
    return execute at {$dst} {f:filmsByActor($actor)})",
      opts);
  ASSERT_EQ(last_report_.traces.size(), 1u);
  const compiler::BulkRpcTrace& trace = last_report_.traces[0];
  ASSERT_EQ(trace.peers.size(), 2u);
  // Peer y gets iterations 1 and 3 renumbered to 1 and 2 (Figure 1).
  EXPECT_EQ(trace.peers[0].peer, "xrpc://y.example.org");
  ASSERT_EQ(trace.peers[0].map.NumRows(), 2u);
  EXPECT_EQ(trace.peers[0].map.At(0, 1).num, 1);
  EXPECT_EQ(trace.peers[0].map.At(1, 1).num, 2);
  ASSERT_EQ(trace.peers[0].req.size(), 1u);
  EXPECT_EQ(trace.peers[0].req[0].NumRows(), 2u);
  // msg_z: "Sound Of Music" for iterp 1 -> res_z iter 2 (the map-back).
  EXPECT_EQ(trace.peers[1].res.NumRows(), 1u);
  EXPECT_EQ(trace.peers[1].res.Iter(0), 2);
}

TEST_F(CoreTest, PaperQ6OutOfOrderBulk) {
  // Q6: sequence construction of two calls to the same peer — two Bulk
  // RPCs, each processing both loop iterations (out-of-order relative to
  // the query text), with the final result back in query order.
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    for $name in ("Julie", "Sean")
    let $connery := concat($name, " ", "Connery")
    let $andrews := concat($name, " ", "Andrews")
    return (
      execute at {"xrpc://y.example.org"} {f:filmsByActor($connery)},
      execute at {"xrpc://y.example.org"} {f:filmsByActor($andrews)} ))"),
            "<name>The Rock</name> <name>Goldfinger</name>");
  EXPECT_EQ(last_report_.requests_sent, 2);  // one bulk per call site
  EXPECT_EQ(y_->service().calls_handled(), 4);
}

TEST_F(CoreTest, OneAtATimeComparisonMode) {
  ExecuteOptions opts;
  opts.force_one_at_a_time = true;
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    for $actor in ("Julie Andrews", "Sean Connery")
    return execute at {"xrpc://y.example.org"} {f:filmsByActor($actor)})",
                opts),
            "<name>The Rock</name> <name>Goldfinger</name>");
  EXPECT_FALSE(last_report_.used_relational);
  EXPECT_EQ(last_report_.requests_sent, 2);  // one per iteration
}

TEST_F(CoreTest, BulkBeatsOneAtATimeOnNetworkTime) {
  const char* query = R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    for $i in 1 to 50
    return execute at {"xrpc://y.example.org"}
           {f:filmsByActor("Gerard Depardieu")})";
  Run(query);
  int64_t bulk_net = last_report_.network_micros;
  EXPECT_EQ(last_report_.requests_sent, 1);
  ExecuteOptions opts;
  opts.force_one_at_a_time = true;
  Run(query, opts);
  int64_t singles_net = last_report_.network_micros;
  EXPECT_EQ(last_report_.requests_sent, 50);
  EXPECT_GT(singles_net, 10 * bulk_net);
}

TEST_F(CoreTest, WrapperPeerInteroperates) {
  // Replace z with a wrapper ("Saxon") peer: cross-engine distributed
  // query, exactly the Section 4/5 interoperability story.
  Peer* saxon = net_.AddPeer("saxon.example.org", EngineKind::kWrapper);
  ASSERT_TRUE(saxon->AddDocument("filmDB.xml", kFilmDbZ).ok());
  ASSERT_TRUE(saxon->RegisterModule(kFilmModule).ok());
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    for $a in ("Julie Andrews", "Sean Connery")
    return execute at {"xrpc://saxon.example.org"} {f:filmsByActor($a)})"),
            "<name>Sound Of Music</name>");
  EXPECT_EQ(last_report_.requests_sent, 1);  // still one bulk request
  EXPECT_GT(saxon->wrapper_engine()->last_timings().total_us, 0);
}

TEST_F(CoreTest, DataShippingRemoteDoc) {
  // fn:doc with an xrpc:// URI ships the document to p0.
  EXPECT_EQ(
      Run("count(doc(\"xrpc://y.example.org/filmDB.xml\")//film)"), "3");
  EXPECT_EQ(last_report_.requests_sent, 1);
}

TEST_F(CoreTest, ExecutionRelocation) {
  // Section 5: run the whole join at the remote peer.
  ASSERT_TRUE(y_->RegisterModule(R"(
    module namespace b = "functions_b";
    declare function b:countSean() as xs:integer
    { count(doc("filmDB.xml")//film[actor="Sean Connery"]) };)")
                  .ok());
  EXPECT_EQ(Run(R"(
    import module namespace b="functions_b" at "http://example.org/b.xq";
    execute at {"xrpc://y.example.org"} {b:countSean()})"),
            "2");
}

TEST_F(CoreTest, DistributedSemiJoinPattern) {
  // Loop-dependent parameter (the semi-join of Section 5) in miniature.
  ASSERT_TRUE(p0_->AddDocument(
                      "actors.xml",
                      "<actors><a>Sean Connery</a><a>Nobody</a></actors>")
                  .ok());
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    for $a in doc("actors.xml")//a
    let $films := execute at {"xrpc://y.example.org"}
                  {f:filmsByActor(string($a))}
    return if (empty($films)) then ()
           else <hit actor="{$a}">{count($films)}</hit>)"),
            "<hit actor=\"Sean Connery\">2</hit>");
  EXPECT_EQ(last_report_.requests_sent, 1);  // one bulk with 2 calls
}

TEST_F(CoreTest, UpdatingQueryNoIsolationAppliesImmediately) {
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    execute at {"xrpc://y.example.org"} {f:addFilm("Dr. No", "Sean Connery")})"),
            "");
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    count(execute at {"xrpc://y.example.org"}
          {f:filmsByActor("Sean Connery")}))"),
            "3");
}

TEST_F(CoreTest, UpdatingQueryWithIsolationCommitsVia2PC) {
  EXPECT_EQ(Run(R"(
    declare option xrpc:isolation "repeatable";
    declare option xrpc:timeout "60";
    import module namespace f="films" at "http://x.example.org/film.xq";
    (execute at {"xrpc://y.example.org"} {f:addFilm("A", "X")},
     execute at {"xrpc://z.example.org"} {f:addFilm("B", "Y")}))"),
            "");
  EXPECT_TRUE(last_report_.committed) << last_report_.abort_reason;
  EXPECT_EQ(last_report_.participants.size(), 2u);
  // Both peers applied their update atomically.
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    (count(execute at {"xrpc://y.example.org"} {f:filmsByActor("X")}),
     count(execute at {"xrpc://z.example.org"} {f:filmsByActor("Y")})))"),
            "1 1");
  using server::TxnLog;
  EXPECT_EQ(y_->service().txn_log().CountAppended(TxnLog::RecordType::kPrepared),
            1u);
  EXPECT_EQ(z_->service().txn_log().CountAppended(TxnLog::RecordType::kPrepared),
            1u);
  // The coordinator journaled its decision and its completion.
  EXPECT_EQ(p0_->service().txn_log().CountAppended(
                TxnLog::RecordType::kCoordCommit),
            1u);
  EXPECT_EQ(p0_->service().txn_log().CountAppended(TxnLog::RecordType::kCoordEnd),
            1u);
}

TEST_F(CoreTest, UpdatingQueryAbortsWhenPrepareFails) {
  z_->service().txn_log().FailNextAppend(
      Status::TransactionError("injected disk failure"));
  EXPECT_EQ(Run(R"(
    declare option xrpc:isolation "repeatable";
    import module namespace f="films" at "http://x.example.org/film.xq";
    (execute at {"xrpc://y.example.org"} {f:addFilm("A", "X")},
     execute at {"xrpc://z.example.org"} {f:addFilm("B", "Y")}))"),
            "");
  EXPECT_FALSE(last_report_.committed);
  EXPECT_NE(last_report_.abort_reason.find("disk failure"),
            std::string::npos);
  // Neither peer shows the update (atomic abort).
  EXPECT_EQ(Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    (count(execute at {"xrpc://y.example.org"} {f:filmsByActor("X")}),
     count(execute at {"xrpc://z.example.org"} {f:filmsByActor("Y")})))"),
            "0 0");
}

TEST_F(CoreTest, RepeatableReadAcrossBulkCalls) {
  // Two call sites to the same peer under repeatable isolation: both see
  // the same snapshot even though another update commits in between...
  // within one query evaluation there is no interleaving in this test, so
  // instead verify the session machinery engages and reads are stable.
  EXPECT_EQ(Run(R"(
    declare option xrpc:isolation "repeatable";
    import module namespace f="films" at "http://x.example.org/film.xq";
    (count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}),
     count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")})))"),
            "2 2");
  EXPECT_EQ(y_->service().isolation().active_sessions(), 1u);
}

TEST_F(CoreTest, SimpleQuerySkipsQueryId) {
  // A single non-nested XRPC call under repeatable isolation needs no
  // queryID (Section 3.2) — no session is created at the destination.
  EXPECT_EQ(Run(R"(
    declare option xrpc:isolation "repeatable";
    import module namespace f="films" at "http://x.example.org/film.xq";
    count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}))"),
            "2");
  EXPECT_EQ(y_->service().isolation().active_sessions(), 0u);
}

TEST_F(CoreTest, RemoteErrorBecomesRuntimeError) {
  std::string result = Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    execute at {"xrpc://y.example.org"} {f:noSuchFunction("x")})");
  EXPECT_NE(result.find("ERROR"), std::string::npos);
  EXPECT_NE(result.find("SoapFault"), std::string::npos);
}

TEST_F(CoreTest, UnknownPeerIsNetworkError) {
  std::string result = Run(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    execute at {"xrpc://nowhere.example.org"} {f:filmsByActor("X")})");
  EXPECT_NE(result.find("ERROR"), std::string::npos);
}

TEST_F(CoreTest, LocalQueryNeedsNoNetwork) {
  ASSERT_TRUE(p0_->AddDocument("filmDB.xml", kFilmDbY).ok());
  EXPECT_EQ(Run("count(doc(\"filmDB.xml\")//film)"), "3");
  EXPECT_EQ(last_report_.requests_sent, 0);
}

TEST_F(CoreTest, NestedXrpcCallsAcrossThreePeers) {
  // p0 -> y -> z: the function at y itself performs an XRPC call to z.
  ASSERT_TRUE(y_->RegisterModule(R"(
    module namespace fwd = "forward";
    import module namespace film = "films" at "film.xq";
    declare function fwd:viaZ($actor as xs:string) as node()*
    { execute at {"xrpc://z.example.org"} {film:filmsByActor($actor)} };)")
                  .ok());
  EXPECT_EQ(Run(R"(
    import module namespace w="forward" at "http://y.example.org/fwd.xq";
    execute at {"xrpc://y.example.org"} {w:viaZ("Julie Andrews")})"),
            "<name>Sound Of Music</name>");
  EXPECT_EQ(last_report_.participants.count("xrpc://z.example.org"), 1u);
}

}  // namespace
}  // namespace xrpc::core
