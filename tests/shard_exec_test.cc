// Integration tests of the sharded-collection subsystem (DESIGN.md §13):
// catalog-driven decomposition of `execute at {"shard:<collection>"}` into
// per-shard Bulk RPC, partition-key pruning, the order-preserving
// scatter-gather merge, and shard-aware document resolution. The central
// contract: a key-routed semijoin is byte-identical whether the collection
// lives on 1, 4, or 16 shards — and identical to the unsharded two-peer
// baseline of strategies_test.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/peer_network.h"
#include "xdm/item.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace xrpc::core {
namespace {

constexpr char kImportB[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n";

// Q7 semijoin over the logical sharded destination: every call carries the
// partition key (buyer id) as its first argument, so the decomposition can
// prune each iteration to exactly one shard.
const char kShardSemiJoin[] = R"(
for $p in doc("persons.xml")//person
let $ca := execute at {"shard:auctions.xml"} {b:Q_B3(string($p/@id))}
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>)";

// No argument binds the partition key: must broadcast to every shard and
// merge the answers in shard order.
const char kShardBroadcast[] =
    R"(execute at {"shard:auctions.xml"} {b:Q_B1()})";

xmark::XmarkConfig SmallConfig() {
  xmark::XmarkConfig cfg;
  cfg.num_persons = 24;
  cfg.num_closed_auctions = 40;
  cfg.num_matches = 6;
  cfg.annotation_bytes = 16;
  return cfg;
}

struct Deployment {
  std::unique_ptr<PeerNetwork> net;
  Peer* p0 = nullptr;
};

// `num_shards` interpreter shard peers plus a p0 peer (of the given
// engine) holding the unsharded persons document and the functions_b
// module for import resolution.
Deployment MakeDeployment(int num_shards, EngineKind p0_engine) {
  Deployment d;
  d.net = std::make_unique<PeerNetwork>();
  xmark::ShardLoadOptions opts;
  opts.num_shards = num_shards;
  auto loaded = xmark::LoadShardedXmark(d.net.get(), SmallConfig(), opts);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  d.p0 = d.net->AddPeer("p0", p0_engine);
  EXPECT_TRUE(
      d.p0->AddDocument("persons.xml", xmark::GeneratePersons(SmallConfig()))
          .ok());
  EXPECT_TRUE(d.p0
                  ->RegisterModule(xmark::FunctionsBModuleSource(d.p0->uri()),
                                   "b.xq")
                  .ok());
  return d;
}

std::string RunQuery(Deployment& d, const std::string& query) {
  auto report = d.net->Execute("p0", query);
  if (!report.ok()) return "ERROR: " + report.status().ToString();
  return xdm::SequenceToString(report->result);
}

// The unsharded two-peer semijoin of strategies_test, as the ground truth
// the sharded runs must reproduce byte for byte.
std::string UnshardedBaseline() {
  PeerNetwork net;
  Peer* a = net.AddPeer("A", EngineKind::kRelational);
  Peer* b = net.AddPeer("B", EngineKind::kInterpreter);
  EXPECT_TRUE(
      a->AddDocument("persons.xml", xmark::GeneratePersons(SmallConfig()))
          .ok());
  EXPECT_TRUE(
      b->AddDocument("auctions.xml", xmark::GenerateAuctions(SmallConfig()))
          .ok());
  std::string module = xmark::FunctionsBModuleSource("xrpc://A");
  EXPECT_TRUE(b->RegisterModule(module, "b.xq").ok());
  EXPECT_TRUE(a->RegisterModule(module, "b.xq").ok());
  const std::string query = std::string(kImportB) +
                            R"(
for $p in doc("persons.xml")//person
let $ca := execute at {"xrpc://B"} {b:Q_B3(string($p/@id))}
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>)";
  auto report = net.Execute("A", query);
  EXPECT_TRUE(report.ok()) << report.status();
  if (!report.ok()) return "ERROR";
  return xdm::SequenceToString(report->result);
}

TEST(ShardExecTest, SemiJoinIsByteIdenticalAcross1_4_16Shards) {
  const std::string baseline = UnshardedBaseline();
  ASSERT_FALSE(baseline.empty());
  const std::string query = std::string(kImportB) + kShardSemiJoin;
  for (int shards : {1, 4, 16}) {
    Deployment d = MakeDeployment(shards, EngineKind::kRelational);
    EXPECT_EQ(RunQuery(d, query), baseline) << shards << " shards";
  }
}

TEST(ShardExecTest, InterpreterP0AgreesWithRelationalP0) {
  const std::string query = std::string(kImportB) + kShardSemiJoin;
  Deployment relational = MakeDeployment(4, EngineKind::kRelational);
  Deployment interp = MakeDeployment(4, EngineKind::kInterpreter);
  std::string expected = RunQuery(relational, query);
  ASSERT_EQ(expected.find("ERROR"), std::string::npos) << expected;
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(RunQuery(interp, query), expected);

  // Broadcast merge order must also agree between the loop-lifted
  // scatter-gather operator and the interpreter's shard-order concat.
  const std::string broadcast = std::string(kImportB) + kShardBroadcast;
  EXPECT_EQ(RunQuery(interp, broadcast), RunQuery(relational, broadcast));
}

TEST(ShardExecTest, PartitionKeyPruningSendsOneRequest) {
  // The call's first argument is a literal partition key: the catalog
  // routes it to exactly one of the 4 shards — 1 request, not 4.
  const std::string pruned = std::string(kImportB) +
                             R"(execute at {"shard:auctions.xml"}
                                {b:Q_B3("person0")})";
  for (EngineKind engine :
       {EngineKind::kRelational, EngineKind::kInterpreter}) {
    Deployment d = MakeDeployment(4, engine);
    auto report = d.net->Execute("p0", pruned);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->requests_sent, 1) << EngineKindToString(engine);
  }
}

TEST(ShardExecTest, BroadcastFansOutToEveryShard) {
  const std::string query = std::string(kImportB) + kShardBroadcast;
  Deployment d = MakeDeployment(4, EngineKind::kRelational);
  auto report = d.net->Execute("p0", query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->requests_sent, 4);
  EXPECT_EQ(report->result.size(),
            static_cast<size_t>(SmallConfig().num_closed_auctions));
}

TEST(ShardExecTest, LiftedSemiJoinGroupsCallsPerShardPeer) {
  // 24 persons prune to at most 4 distinct shards; Bulk RPC groups the
  // calls per destination peer, so at most one request per shard goes out
  // (versus 24 under one-at-a-time).
  const std::string query = std::string(kImportB) + kShardSemiJoin;
  Deployment d = MakeDeployment(4, EngineKind::kRelational);
  auto report = d.net->Execute("p0", query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->used_relational);
  EXPECT_FALSE(report->fell_back);
  EXPECT_LE(report->requests_sent, 4);
}

TEST(ShardExecTest, ShardDocAssemblySpansEveryFragment) {
  // doc("shard:...") at p0 splices the fragments (in shard order) into one
  // virtual document; counts must match the whole collection.
  Deployment d = MakeDeployment(4, EngineKind::kRelational);
  EXPECT_EQ(RunQuery(d, R"(count(doc("shard:auctions.xml")//closed_auction))"),
            std::to_string(SmallConfig().num_closed_auctions));
  EXPECT_EQ(RunQuery(d, R"(count(doc("shard:persons.xml")//person))"),
            std::to_string(SmallConfig().num_persons));

  // The broadcast union and the assembled document agree element-for-
  // element (same shard order on both paths).
  EXPECT_EQ(RunQuery(d, std::string(kImportB) + kShardBroadcast),
            RunQuery(d, R"(doc("shard:auctions.xml")//closed_auction)"));
}

TEST(ShardExecTest, ShardPeerResolvesLogicalNameToLocalFragment) {
  // Module bodies at shard peers keep saying doc("auctions.xml"); each
  // peer resolves the logical name to its own fragment, so the per-shard
  // counts partition the collection.
  Deployment d = MakeDeployment(4, EngineKind::kRelational);
  int64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    auto report = d.net->Execute("shard" + std::to_string(k),
                                 R"(count(doc("auctions.xml")//closed_auction))");
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->result.size(), 1u);
    total += std::stoll(xdm::SequenceToString(report->result));
  }
  EXPECT_EQ(total, SmallConfig().num_closed_auctions);
}

TEST(ShardExecTest, MapChangeMidScatterReroutesOnceNeverPartialMerge) {
  // The shard map genuinely changes between decomposition and merge:
  // shard 0's primary moves to a fresh spare peer while the broadcast
  // scatter is in flight (the hook fires at the second POST, so shard 0's
  // answer already arrived under the old version). The epoch fence rejects
  // every still-stamped request, the client refetches the map and
  // re-dispatches exactly once, and the merged result is byte-identical
  // to the healthy run — stale partials are never combined with
  // new-version answers.
  const std::string query = std::string(kImportB) + kShardBroadcast;
  std::string baseline;
  {
    Deployment d = MakeDeployment(4, EngineKind::kRelational);
    baseline = RunQuery(d, query);
    ASSERT_EQ(baseline.find("ERROR"), std::string::npos) << baseline;
    ASSERT_FALSE(baseline.empty());
  }

  Deployment d = MakeDeployment(4, EngineKind::kRelational);
  // The spare holds shard 0's fragment under the same doc name and the
  // functions_b module, so it can serve the shard-scoped subcall
  // byte-identically to the old primary.
  Peer* spare = d.net->AddPeer("spare0", EngineKind::kInterpreter);
  const std::string fragment0 =
      xmark::GenerateAuctionsFragments(SmallConfig(), 4)[0];
  ASSERT_TRUE(spare->AddDocument("auctions.xml.0", fragment0).ok());
  ASSERT_TRUE(
      spare->RegisterModule(xmark::FunctionsBModuleSource(spare->uri())).ok());

  bool moved = false;
  d.net->network().set_post_hook([&](int64_t serial) {
    if (moved || serial < 2) return;
    moved = true;
    ShardedCollection c;
    int64_t version = 0;
    ASSERT_TRUE(d.net->catalog().Snapshot("auctions.xml", &c, &version));
    c.shards[0].peer_uri = spare->uri();
    ASSERT_TRUE(d.net->catalog().RegisterCollection(std::move(c)).ok());
  });
  EXPECT_EQ(RunQuery(d, query), baseline);
  EXPECT_TRUE(moved);
  d.net->network().set_post_hook(nullptr);

  const net::RpcMetrics& m = d.net->metrics();
  EXPECT_GE(m.stale_catalog_rejects(), 1);
  EXPECT_EQ(m.stale_catalog_reroutes(), 1);

  // A fresh broadcast under the settled new map routes shard 0's subcall
  // to the spare — the map change was real, not a version-only bump.
  const int64_t spare_before = m.PeerStats(spare->uri()).requests;
  EXPECT_EQ(RunQuery(d, query), baseline);
  EXPECT_GT(m.PeerStats(spare->uri()).requests, spare_before);
}

TEST(ShardExecTest, UnknownCollectionIsAnError) {
  Deployment d = MakeDeployment(2, EngineKind::kRelational);
  const std::string query =
      std::string(kImportB) + R"(execute at {"shard:nope.xml"} {b:Q_B1()})";
  std::string out = RunQuery(d, query);
  EXPECT_NE(out.find("ERROR"), std::string::npos) << out;
  EXPECT_NE(out.find("nope.xml"), std::string::npos) << out;
}

}  // namespace
}  // namespace xrpc::core
