// Integration test over REAL sockets: two XrpcService peers served by the
// embedded HTTP/1.1 daemon on loopback, exercised through HttpTransport —
// the full SOAP-over-HTTP wire path of the paper's implementation (its
// SHTTPD + message sender API).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "net/http.h"
#include "net/retrying_transport.h"
#include "net/rpc_metrics.h"
#include "server/rpc_client.h"
#include "server/xrpc_service.h"
#include "xml/serializer.h"
#include "xmark/xmark.h"

namespace xrpc {
namespace {

using server::Database;
using server::InterpreterEngine;
using server::ModuleRegistry;
using server::RpcClient;
using server::XrpcService;

class HttpIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.PutDocumentText("filmDB.xml", xmark::GenerateFilmDb()).ok());
    ASSERT_TRUE(registry_.RegisterModule(xmark::FilmModuleSource()).ok());
    service_ = std::make_unique<XrpcService>(
        XrpcService::Options{"xrpc://127.0.0.1"}, &db_, &registry_,
        &engine_, &transport_);
    http_server_ = std::make_unique<net::HttpServer>(service_.get());
    auto port = http_server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status();
    port_ = port.value();
  }

  void TearDown() override { http_server_->Stop(); }

  std::string PeerUri() {
    return "xrpc://127.0.0.1:" + std::to_string(port_);
  }

  Database db_;
  ModuleRegistry registry_;
  InterpreterEngine engine_;
  net::HttpTransport transport_;
  std::unique_ptr<XrpcService> service_;
  std::unique_ptr<net::HttpServer> http_server_;
  int port_ = 0;
};

TEST_F(HttpIntegrationTest, SingleCallOverRealSockets) {
  RpcClient client(&transport_, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "films";
  call.function = xml::QName("films", "filmsByActor");
  call.args = {xdm::Sequence{
      xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
  auto result = client.Execute(call);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(xml::SerializeNode(*result.value()[0].node()),
            "<name>The Rock</name>");
}

TEST_F(HttpIntegrationTest, BulkCallOverRealSockets) {
  RpcClient client(&transport_, {});
  soap::XrpcRequest req;
  req.module_ns = "films";
  req.method = "filmsByActor";
  req.arity = 1;
  for (const char* actor :
       {"Sean Connery", "Gerard Depardieu", "Julie Andrews"}) {
    req.calls.push_back(
        {xdm::Sequence{xdm::Item(xdm::AtomicValue::String(actor))}});
  }
  auto response = client.ExecuteBulk(PeerUri(), std::move(req));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->results.size(), 3u);
  EXPECT_EQ(response->results[0].size(), 2u);
  EXPECT_EQ(response->results[1].size(), 1u);
  EXPECT_TRUE(response->results[2].empty());
}

TEST_F(HttpIntegrationTest, FaultTravelsOverHttp) {
  RpcClient client(&transport_, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "no-such-module";
  call.function = xml::QName("no-such-module", "f");
  auto result = client.Execute(call);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSoapFault);
  EXPECT_NE(result.status().message().find("could not load module"),
            std::string::npos);
}

TEST_F(HttpIntegrationTest, WsatEndpointOverHttp) {
  // Prepare for an unknown query id answers an abort vote over the wire.
  server::WsatMessage msg;
  msg.op = server::WsatOp::kPrepare;
  msg.query_id = "no-such-query";
  auto posted = transport_.Post(PeerUri() + "/" + server::kWsatPath,
                                server::SerializeWsatRequest(msg));
  ASSERT_TRUE(posted.ok()) << posted.status();
  auto reply = server::ParseWsatMessage(posted->body);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->ok);
}

TEST_F(HttpIntegrationTest, RetryingTransportOverRealSockets) {
  // The full resilient stack on real sockets: RetryingTransport →
  // HttpTransport → HttpServer → XrpcService, with metrics recorded at the
  // wire level.
  net::RpcMetrics metrics;
  net::RetryingTransport retrying(&transport_,
                                  net::RetryPolicy{.max_attempts = 3},
                                  &metrics);
  RpcClient client(&retrying, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "films";
  call.function = xml::QName("films", "filmsByActor");
  call.args = {xdm::Sequence{
      xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
  auto result = client.Execute(call);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(metrics.requests(), 1);
  EXPECT_EQ(metrics.retries(), 0);
  EXPECT_GT(metrics.bytes_received(), 0);
}

TEST_F(HttpIntegrationTest, RetryRecoversFromTransientServerOutage) {
  // First attempt goes to a closed port; the retry hits the live server.
  // Simulates a connection-refused blip without real clock dependence.
  class FailoverTransport : public net::Transport {
   public:
    FailoverTransport(net::Transport* real, std::string good_uri)
        : real_(real), good_uri_(std::move(good_uri)) {}
    StatusOr<net::PostResult> Post(const std::string& dest_uri,
                                   const std::string& body) override {
      ++attempts_;
      if (attempts_ == 1) {
        return real_->Post("xrpc://127.0.0.1:1/", body);  // refused
      }
      return real_->Post(dest_uri, body);
    }
    int attempts_ = 0;

   private:
    net::Transport* real_;
    std::string good_uri_;
  };
  FailoverTransport flaky(&transport_, PeerUri());
  net::RpcMetrics metrics;
  net::RetryingTransport retrying(
      &flaky,
      net::RetryPolicy{.max_attempts = 3, .initial_backoff_us = 100},
      &metrics);
  RpcClient client(&retrying, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "films";
  call.function = xml::QName("films", "filmsByActor");
  call.args = {xdm::Sequence{
      xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
  auto result = client.Execute(call);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(flaky.attempts_, 2);
  EXPECT_EQ(metrics.retries(), 1);
  EXPECT_EQ(metrics.failures(), 1);
}

TEST_F(HttpIntegrationTest, SocketTimeoutSurfacesAsNetworkError) {
  // A transport-level receive timeout against a server that accepts but
  // never replies. Bind a bare listening socket: connect succeeds, then
  // the 50ms SO_RCVTIMEO fires.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ASSERT_EQ(::listen(fd, 1), 0);

  auto reply = net::HttpPost("127.0.0.1", ntohs(addr.sin_port), "p", "x",
                             /*timeout_millis=*/50);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(reply.status().message().find("timed out"), std::string::npos);
  ::close(fd);
}

TEST_F(HttpIntegrationTest, ConcurrentClients) {
  // Several threads issuing calls against the same HTTP daemon.
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      net::HttpTransport transport;
      RpcClient client(&transport, {});
      xquery::RpcCall call;
      call.dest_uri = PeerUri();
      call.module_ns = "films";
      call.function = xml::QName("films", "filmsByActor");
      call.args = {xdm::Sequence{
          xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
      auto result = client.Execute(call);
      if (result.ok() && result->size() == 2) ++successes;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(successes.load(), 8);
}

}  // namespace
}  // namespace xrpc
