// Integration test over REAL sockets: two XrpcService peers served by the
// embedded HTTP/1.1 daemon on loopback, exercised through HttpTransport —
// the full SOAP-over-HTTP wire path of the paper's implementation (its
// SHTTPD + message sender API).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "net/http.h"
#include "net/retrying_transport.h"
#include "net/rpc_metrics.h"
#include "server/rpc_client.h"
#include "server/xrpc_service.h"
#include "xml/serializer.h"
#include "xmark/xmark.h"

namespace xrpc {
namespace {

using server::Database;
using server::InterpreterEngine;
using server::ModuleRegistry;
using server::RpcClient;
using server::XrpcService;

class HttpIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.PutDocumentText("filmDB.xml", xmark::GenerateFilmDb()).ok());
    ASSERT_TRUE(registry_.RegisterModule(xmark::FilmModuleSource()).ok());
    service_ = std::make_unique<XrpcService>(
        XrpcService::Options{"xrpc://127.0.0.1"}, &db_, &registry_,
        &engine_, &transport_);
    http_server_ = std::make_unique<net::HttpServer>(service_.get());
    auto port = http_server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status();
    port_ = port.value();
  }

  void TearDown() override { http_server_->Stop(); }

  std::string PeerUri() {
    return "xrpc://127.0.0.1:" + std::to_string(port_);
  }

  Database db_;
  ModuleRegistry registry_;
  InterpreterEngine engine_;
  net::HttpTransport transport_;
  std::unique_ptr<XrpcService> service_;
  std::unique_ptr<net::HttpServer> http_server_;
  int port_ = 0;
};

TEST_F(HttpIntegrationTest, SingleCallOverRealSockets) {
  RpcClient client(&transport_, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "films";
  call.function = xml::QName("films", "filmsByActor");
  call.args = {xdm::Sequence{
      xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
  auto result = client.Execute(call);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(xml::SerializeNode(*result.value()[0].node()),
            "<name>The Rock</name>");
}

TEST_F(HttpIntegrationTest, BulkCallOverRealSockets) {
  RpcClient client(&transport_, {});
  soap::XrpcRequest req;
  req.module_ns = "films";
  req.method = "filmsByActor";
  req.arity = 1;
  for (const char* actor :
       {"Sean Connery", "Gerard Depardieu", "Julie Andrews"}) {
    req.calls.push_back(
        {xdm::Sequence{xdm::Item(xdm::AtomicValue::String(actor))}});
  }
  auto response = client.ExecuteBulk(PeerUri(), std::move(req));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->results.size(), 3u);
  EXPECT_EQ(response->results[0].size(), 2u);
  EXPECT_EQ(response->results[1].size(), 1u);
  EXPECT_TRUE(response->results[2].empty());
}

TEST_F(HttpIntegrationTest, FaultTravelsOverHttp) {
  RpcClient client(&transport_, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "no-such-module";
  call.function = xml::QName("no-such-module", "f");
  auto result = client.Execute(call);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSoapFault);
  EXPECT_NE(result.status().message().find("could not load module"),
            std::string::npos);
}

TEST_F(HttpIntegrationTest, WsatEndpointOverHttp) {
  // Prepare for an unknown query id answers an abort vote over the wire.
  server::WsatMessage msg;
  msg.op = server::WsatOp::kPrepare;
  msg.query_id = "no-such-query";
  auto posted = transport_.Post(PeerUri() + "/" + server::kWsatPath,
                                server::SerializeWsatRequest(msg));
  ASSERT_TRUE(posted.ok()) << posted.status();
  auto reply = server::ParseWsatMessage(posted->body);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->ok);
}

TEST_F(HttpIntegrationTest, RetryingTransportOverRealSockets) {
  // The full resilient stack on real sockets: RetryingTransport →
  // HttpTransport → HttpServer → XrpcService, with metrics recorded at the
  // wire level.
  net::RpcMetrics metrics;
  net::RetryingTransport retrying(&transport_,
                                  net::RetryPolicy{.max_attempts = 3},
                                  &metrics);
  RpcClient client(&retrying, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "films";
  call.function = xml::QName("films", "filmsByActor");
  call.args = {xdm::Sequence{
      xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
  auto result = client.Execute(call);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(metrics.requests(), 1);
  EXPECT_EQ(metrics.retries(), 0);
  EXPECT_GT(metrics.bytes_received(), 0);
}

TEST_F(HttpIntegrationTest, RetryRecoversFromTransientServerOutage) {
  // First attempt goes to a closed port; the retry hits the live server.
  // Simulates a connection-refused blip without real clock dependence.
  class FailoverTransport : public net::Transport {
   public:
    FailoverTransport(net::Transport* real, std::string good_uri)
        : real_(real), good_uri_(std::move(good_uri)) {}
    StatusOr<net::PostResult> Post(const std::string& dest_uri,
                                   const std::string& body) override {
      ++attempts_;
      if (attempts_ == 1) {
        return real_->Post("xrpc://127.0.0.1:1/", body);  // refused
      }
      return real_->Post(dest_uri, body);
    }
    int attempts_ = 0;

   private:
    net::Transport* real_;
    std::string good_uri_;
  };
  FailoverTransport flaky(&transport_, PeerUri());
  net::RpcMetrics metrics;
  net::RetryingTransport retrying(
      &flaky,
      net::RetryPolicy{.max_attempts = 3, .initial_backoff_us = 100},
      &metrics);
  RpcClient client(&retrying, {});
  xquery::RpcCall call;
  call.dest_uri = PeerUri();
  call.module_ns = "films";
  call.function = xml::QName("films", "filmsByActor");
  call.args = {xdm::Sequence{
      xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
  auto result = client.Execute(call);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(flaky.attempts_, 2);
  EXPECT_EQ(metrics.retries(), 1);
  EXPECT_EQ(metrics.failures(), 1);
}

TEST_F(HttpIntegrationTest, SocketTimeoutSurfacesAsNetworkError) {
  // A transport-level receive timeout against a server that accepts but
  // never replies. Bind a bare listening socket: connect succeeds, then
  // the 50ms SO_RCVTIMEO fires.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ASSERT_EQ(::listen(fd, 1), 0);

  auto reply = net::HttpPost("127.0.0.1", ntohs(addr.sin_port), "p", "x",
                             /*timeout_millis=*/50);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(reply.status().message().find("timed out"), std::string::npos);
  ::close(fd);
}

TEST_F(HttpIntegrationTest, KeepAliveReusesOneConnection) {
  // Five sequential calls through one transport ride one TCP connection:
  // the first exchange dials, the rest hit the pool.
  RpcClient client(&transport_, {});
  for (int i = 0; i < 5; ++i) {
    xquery::RpcCall call;
    call.dest_uri = PeerUri();
    call.module_ns = "films";
    call.function = xml::QName("films", "filmsByActor");
    call.args = {xdm::Sequence{
        xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
    auto result = client.Execute(call);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  EXPECT_EQ(transport_.pool().misses(), 1);
  EXPECT_EQ(transport_.pool().hits(), 4);
  EXPECT_EQ(http_server_->connections_accepted(), 1);
  EXPECT_EQ(http_server_->requests_served(), 5);
}

TEST_F(HttpIntegrationTest, KeepAliveDisabledDialsPerRequest) {
  net::HttpTransport transport;
  transport.set_keep_alive(false);
  RpcClient client(&transport, {});
  for (int i = 0; i < 3; ++i) {
    xquery::RpcCall call;
    call.dest_uri = PeerUri();
    call.module_ns = "films";
    call.function = xml::QName("films", "filmsByActor");
    call.args = {xdm::Sequence{
        xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
    ASSERT_TRUE(client.Execute(call).ok());
  }
  EXPECT_EQ(transport.pool().hits(), 0);
  EXPECT_EQ(http_server_->connections_accepted(), 3);
}

TEST_F(HttpIntegrationTest, IdlePooledConnectionExpiresAndRedials) {
  net::HttpConnectionPool::Options pool_options;
  pool_options.idle_timeout_millis = 50;
  net::HttpTransport transport(pool_options);
  net::RpcMetrics metrics;
  transport.set_metrics(&metrics);

  server::WsatMessage msg;
  msg.op = server::WsatOp::kPrepare;
  msg.query_id = "q";
  auto post = [&] {
    return transport.Post(PeerUri() + "/" + server::kWsatPath,
                          server::SerializeWsatRequest(msg));
  };
  ASSERT_TRUE(post().ok());
  EXPECT_EQ(transport.pool().idle_count(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE(post().ok());
  EXPECT_EQ(transport.pool().expired(), 1);
  EXPECT_EQ(metrics.conn_expired(), 1);
  EXPECT_EQ(metrics.conn_dials(), 2);
  EXPECT_EQ(http_server_->connections_accepted(), 2);
}

TEST_F(HttpIntegrationTest, StaleConnectionIsRedialedForReadOnlyCalls) {
  // A server that tears down idle connections after 50ms: the client's
  // pooled socket goes stale underneath it. The next read-only POST must
  // transparently re-dial instead of failing.
  net::HttpServer::Options server_options;
  server_options.keep_alive_idle_millis = 50;
  net::HttpServer short_idle_server(service_.get(), server_options);
  auto port = short_idle_server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();
  std::string uri = "xrpc://127.0.0.1:" + std::to_string(port.value());

  net::HttpTransport transport;
  net::RpcMetrics metrics;
  transport.set_metrics(&metrics);
  server::WsatMessage msg;
  msg.op = server::WsatOp::kPrepare;
  msg.query_id = "q";
  auto body = server::SerializeWsatRequest(msg);
  ASSERT_TRUE(
      transport.Post(uri + "/" + server::kWsatPath, body).ok());
  // Let the server expire the connection (its side closes; ours is pooled).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto second = transport.Post(uri + "/" + server::kWsatPath, body);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(metrics.conn_stale_retries(), 1);
  short_idle_server.Stop();
}

TEST_F(HttpIntegrationTest, StaleConnectionIsNotReplayedForUpdatingCalls) {
  // Same stale-socket situation, but the envelope carries updCall="true":
  // a zero-byte EOF leaves "did the peer consume it?" unknowable, so the
  // transport must surface the failure instead of re-sending (at-most-once
  // composes across the keep-alive layer).
  net::HttpServer::Options server_options;
  server_options.keep_alive_idle_millis = 50;
  net::HttpServer short_idle_server(service_.get(), server_options);
  auto port = short_idle_server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();
  std::string uri = "xrpc://127.0.0.1:" + std::to_string(port.value());

  net::HttpTransport transport;
  net::RpcMetrics metrics;
  transport.set_metrics(&metrics);
  std::string updating_body = "<x updCall=\"true\"/>";
  // Prime the pool with a successful (read-only) exchange.
  server::WsatMessage msg;
  msg.op = server::WsatOp::kPrepare;
  msg.query_id = "q";
  ASSERT_TRUE(transport
                  .Post(uri + "/" + server::kWsatPath,
                        server::SerializeWsatRequest(msg))
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto second = transport.Post(uri, updating_body);
  // Either the stale socket surfaces as a closed/reset connection error —
  // never a silent replay.
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kNetworkError);
  EXPECT_EQ(metrics.conn_stale_retries(), 0);
  short_idle_server.Stop();
}

TEST_F(HttpIntegrationTest, OverloadedServerAnswers503) {
  // One worker, queue capacity one: a connection parked mid-request pins
  // the worker, a second fills the queue, the third must be shed with 503.
  net::HttpServer::Options server_options;
  server_options.workers = 1;
  server_options.accept_queue_capacity = 1;
  server_options.keep_alive_idle_millis = 10'000;
  net::HttpServer tiny_server(service_.get(), server_options);
  net::RpcMetrics metrics;
  tiny_server.set_metrics(&metrics);
  auto port = tiny_server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  auto open_conn = [&](const char* bytes) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port.value()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    if (bytes != nullptr) {
      (void)!::send(fd, bytes, strlen(bytes), 0);
    }
    return fd;
  };
  // Pin the worker with an incomplete request (no terminating blank line).
  int pinned = open_conn("POST /p HTTP/1.1\r\nContent-Length: 10\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Fill the single queue slot.
  int queued = open_conn(nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Next connection must be shed.
  auto reply = net::HttpPost("127.0.0.1", port.value(), "p", "x",
                             /*timeout_millis=*/2000);
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("503"), std::string::npos)
      << reply.status();
  EXPECT_EQ(tiny_server.overload_rejections(), 1);
  EXPECT_EQ(metrics.server_overloads(), 1);
  EXPECT_GE(metrics.accept_queue_max_depth(), 1);
  ::close(pinned);
  ::close(queued);
  tiny_server.Stop();
}

TEST_F(HttpIntegrationTest, ParallelFanoutOverRealSockets) {
  // Three HTTP daemons on loopback, one RpcClient fanning out on a real
  // thread pool through one keep-alive transport: responses must map back
  // to their destination index whatever the completion order.
  std::vector<std::unique_ptr<net::HttpServer>> servers;
  std::vector<std::string> uris;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<net::HttpServer>(service_.get()));
    auto port = servers.back()->Start(0);
    ASSERT_TRUE(port.ok()) << port.status();
    uris.push_back("xrpc://127.0.0.1:" + std::to_string(port.value()));
  }
  net::ThreadPool pool(3);
  RpcClient::Options opts;
  opts.dispatch_pool = &pool;
  net::RpcMetrics metrics;
  opts.dispatch_metrics = &metrics;
  RpcClient client(&transport_, opts);
  const char* actors[] = {"Sean Connery", "Gerard Depardieu",
                          "Julie Andrews"};
  const size_t expected[] = {2, 1, 0};
  std::vector<RpcClient::Destination> dests;
  for (int i = 0; i < 3; ++i) {
    soap::XrpcRequest req;
    req.module_ns = "films";
    req.method = "filmsByActor";
    req.arity = 1;
    req.calls.push_back(
        {xdm::Sequence{xdm::Item(xdm::AtomicValue::String(actors[i]))}});
    dests.push_back({uris[i], std::move(req)});
  }
  auto responses = client.ExecuteBulkAll(std::move(dests));
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*responses)[i].results[0].size(), expected[i]) << actors[i];
  }
  EXPECT_EQ(metrics.fanout_groups(), 1);
  EXPECT_EQ(metrics.fanout_destinations(), 3);
  for (auto& s : servers) s->Stop();
}

TEST_F(HttpIntegrationTest, ConcurrentClients) {
  // Several threads issuing calls against the same HTTP daemon.
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      net::HttpTransport transport;
      RpcClient client(&transport, {});
      xquery::RpcCall call;
      call.dest_uri = PeerUri();
      call.module_ns = "films";
      call.function = xml::QName("films", "filmsByActor");
      call.args = {xdm::Sequence{
          xdm::Item(xdm::AtomicValue::String("Sean Connery"))}};
      auto result = client.Execute(call);
      if (result.ok() && result->size() == 2) ++successes;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(successes.load(), 8);
}

}  // namespace
}  // namespace xrpc
