// Tests for the network substrate: xrpc:// URI parsing, the simulated
// network (routing, virtual-time cost model, failure injection) and the
// real HTTP/1.1 loopback transport.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "net/http.h"
#include "net/simulated_network.h"
#include "net/thread_pool.h"
#include "net/uri.h"

namespace xrpc::net {
namespace {

// Sends `raw` verbatim to 127.0.0.1:port and returns everything the peer
// sends back until it closes — for wire-level tests the HttpPost client
// cannot express (malformed request lines etc.).
std::string RawExchange(int port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

// One-shot fake HTTP server: accepts a single connection, reads (and
// discards) whatever arrives, answers with the canned `response` bytes and
// closes. Lets tests exercise HttpPost against arbitrary server behavior.
class CannedServer {
 public:
  explicit CannedServer(std::string response)
      : response_(std::move(response)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    thread_ = std::thread([this] {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      char buf[4096];
      // Read until the request's blank line so the client finishes sending.
      std::string got;
      while (got.find("\r\n\r\n") == std::string::npos) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        got.append(buf, static_cast<size_t>(n));
      }
      (void)!::send(fd, response_.data(), response_.size(), 0);
      ::close(fd);
    });
  }

  ~CannedServer() {
    thread_.join();
    ::close(listen_fd_);
  }

  int port() const { return port_; }

 private:
  std::string response_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

TEST(Uri, ParsesFullForm) {
  auto uri = ParseXrpcUri("xrpc://y.example.org:6123/some/path");
  ASSERT_TRUE(uri.ok()) << uri.status();
  EXPECT_EQ(uri->host, "y.example.org");
  EXPECT_EQ(uri->port, 6123);
  EXPECT_EQ(uri->path, "some/path");
  EXPECT_EQ(uri->ToString(), "xrpc://y.example.org:6123/some/path");
}

TEST(Uri, DefaultsPortAndPath) {
  auto uri = ParseXrpcUri("xrpc://y.example.org");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->port, kDefaultXrpcPort);
  EXPECT_EQ(uri->path, "");
}

TEST(Uri, AcceptsBareHost) {
  // The paper writes execute at {"B"} in Section 5 examples.
  auto uri = ParseXrpcUri("B");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->host, "B");
}

TEST(Uri, RejectsJunk) {
  EXPECT_FALSE(ParseXrpcUri("").ok());
  EXPECT_FALSE(ParseXrpcUri("http://other.scheme/").ok());
  EXPECT_FALSE(ParseXrpcUri("xrpc://host:notaport").ok());
  EXPECT_FALSE(ParseXrpcUri("xrpc://host:99999").ok());
  EXPECT_FALSE(ParseXrpcUri("xrpc://").ok());
}

class EchoEndpoint : public SoapEndpoint {
 public:
  StatusOr<std::string> Handle(const std::string& path,
                               const std::string& body) override {
    ++requests;
    last_path = path;
    return "echo:" + body;
  }
  int requests = 0;
  std::string last_path;
};

TEST(SimulatedNetwork, RoutesToRegisteredPeer) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://y.example.org").value(), &peer);
  auto result = net.Post("xrpc://y.example.org/svc", "hello");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->body, "echo:hello");
  EXPECT_EQ(peer.last_path, "svc");
  EXPECT_EQ(net.messages_sent(), 1);
  EXPECT_EQ(net.bytes_sent(), 5);
}

TEST(SimulatedNetwork, UnknownPeerIsConnectionRefused) {
  SimulatedNetwork net;
  auto result = net.Post("xrpc://nobody", "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
}

TEST(SimulatedNetwork, CostModelChargesLatencyAndBandwidth) {
  NetworkProfile profile;
  profile.latency_us = 1000;
  profile.bandwidth_bytes_per_us = 10.0;
  SimulatedNetwork net(profile);
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://p").value(), &peer);
  std::string body(1000, 'x');  // 100 us of wire time
  auto result = net.Post("xrpc://p", body);
  ASSERT_TRUE(result.ok());
  // request: 1000 + 100; response ("echo:" + 1000 bytes): 1000 + 100.5
  EXPECT_GE(result->network_micros, 2200);
  EXPECT_LE(result->network_micros, 2202);
  EXPECT_EQ(net.clock().NowMicros(), result->network_micros);
}

TEST(SimulatedNetwork, LatencyDominatesSmallMessages) {
  // The premise of Bulk RPC: n messages cost ~n*latency, one bulk message
  // of the same total size costs ~1*latency.
  NetworkProfile profile;
  profile.latency_us = 500;
  SimulatedNetwork net(profile);
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://p").value(), &peer);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.Post("xrpc://p", "tiny").ok());
  }
  int64_t ten_small = net.clock().NowMicros();
  net.ResetStats();
  ASSERT_TRUE(net.Post("xrpc://p", std::string(40, 'x')).ok());
  int64_t one_bulk = net.clock().NowMicros();
  EXPECT_GT(ten_small, 5 * one_bulk);
}

TEST(SimulatedNetwork, FailureInjection) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://p").value(), &peer);
  net.FailNextPost(Status::NetworkError("cable cut"));
  auto r1 = net.Post("xrpc://p", "x");
  EXPECT_FALSE(r1.ok());
  auto r2 = net.Post("xrpc://p", "x");  // one-shot: next call succeeds
  EXPECT_TRUE(r2.ok());
}

TEST(SimulatedNetwork, DisconnectPeer) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  XrpcUri uri = ParseXrpcUri("xrpc://p").value();
  net.RegisterPeer(uri, &peer);
  net.DisconnectPeer(uri);
  EXPECT_FALSE(net.Post("xrpc://p", "x").ok());
}

TEST(HttpServer, ServesPostOverLoopback) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();
  auto reply = HttpPost("127.0.0.1", port.value(), "the/path", "ping");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply.value(), "echo:ping");
  EXPECT_EQ(endpoint.last_path, "the/path");
  server.Stop();
}

TEST(HttpServer, HandlesLargeBodies) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string big(1 << 20, 'z');
  auto reply = HttpPost("127.0.0.1", port.value(), "", big);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->size(), big.size() + 5);
  server.Stop();
}

TEST(HttpTransport, PostsViaXrpcUri) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  HttpTransport transport;
  auto result = transport.Post(
      "xrpc://127.0.0.1:" + std::to_string(port.value()) + "/x", "hello");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->body, "echo:hello");
  server.Stop();
}

TEST(HttpTransport, ConnectionRefused) {
  HttpTransport transport;
  // Port 1 on loopback is almost certainly closed.
  auto result = transport.Post("xrpc://127.0.0.1:1/", "x");
  EXPECT_FALSE(result.ok());
}

TEST(HttpServer, MalformedRequestLineAnswers400) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  // No spaces at all in the request line used to index npos into substr.
  std::string reply = RawExchange(port.value(), "GARBAGE\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request", 0), 0u) << reply;
  // One space only is equally malformed.
  reply = RawExchange(port.value(), "POST /x\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request", 0), 0u) << reply;
  EXPECT_EQ(endpoint.requests, 0);
  server.Stop();
}

TEST(HttpServer, DuplicateContentLengthRejected) {
  // Two Content-Length headers on record make the body boundary ambiguous
  // (the request-smuggling vector); the server must answer 400 without
  // invoking the endpoint, even when the values agree.
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string reply = RawExchange(
      port.value(),
      "POST /p HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n"
      "ping");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request", 0), 0u) << reply;
  EXPECT_NE(reply.find("duplicate Content-Length"), std::string::npos)
      << reply;
  EXPECT_EQ(endpoint.requests, 0);
  server.Stop();
}

TEST(HttpServer, XContentLengthHeaderIsNotContentLength) {
  // The old substring scan matched any header whose *name* merely contained
  // "content-length:" — an X-Content-Length: 999 would have set the body
  // length to 999 and left the server waiting for bytes that never come.
  // Strict line-by-line parsing takes only the exactly-named header.
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string reply = RawExchange(
      port.value(),
      "POST /p HTTP/1.1\r\nX-Content-Length: 999\r\nContent-Length: 4\r\n"
      "Connection: close\r\n\r\nping");
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply;
  EXPECT_NE(reply.find("echo:ping"), std::string::npos) << reply;
  EXPECT_EQ(endpoint.requests, 1);
  server.Stop();
}

TEST(HttpServer, UnparsableContentLengthRejected) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string reply = RawExchange(
      port.value(),
      "POST /p HTTP/1.1\r\nContent-Length: four\r\n\r\nping");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request", 0), 0u) << reply;
  EXPECT_EQ(endpoint.requests, 0);
  server.Stop();
}

TEST(HttpPost, DuplicateContentLengthInResponseIsAnError) {
  // The client-side reader applies the same strictness to responses.
  CannedServer server(
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("duplicate Content-Length"),
            std::string::npos)
      << reply.status();
}

TEST(HttpServer, SurvivesManySequentialConnections) {
  // The accept loop reaps finished worker threads; the worker set must not
  // grow without bound (and Stop must join whatever is left).
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  for (int i = 0; i < 50; ++i) {
    auto reply = HttpPost("127.0.0.1", port.value(), "p", "x");
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  EXPECT_EQ(endpoint.requests, 50);
  server.Stop();
}

TEST(HttpPost, TruncatedBodyIsAnError) {
  // Server promises 100 bytes but closes after 5: the partial buffer must
  // not be handed to the SOAP layer as a complete message.
  CannedServer server(
      "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort");
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(reply.status().message().find("truncated body"),
            std::string::npos);
}

TEST(HttpPost, BodyContaining200DoesNotMaskHttpError) {
  // The old substring check matched " 200 " anywhere in the message; an
  // error body quoting a 200 must still be an error.
  std::string body = "failed while proxying a 200 OK response";
  CannedServer server("HTTP/1.1 502 Bad Gateway\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body);
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(reply.status().message().find("502"), std::string::npos);
}

TEST(HttpPost, Accepts204WithoutBody) {
  CannedServer server("HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n");
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply.value(), "");
}

TEST(HttpPost, MalformedStatusLineIsAnError) {
  CannedServer server("BANANA\r\nContent-Length: 0\r\n\r\n");
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("malformed HTTP status line"),
            std::string::npos);
}

TEST(HttpPost, ServerFaultBodySurfacesAsSoapFault) {
  // A 500 whose body is a serialized SoapFault status is an application
  // outcome, not a transport failure.
  std::string body = "SoapFault: could not load module films";
  CannedServer server("HTTP/1.1 500 Internal Server Error\r\n"
                      "Content-Length: " + std::to_string(body.size()) +
                      "\r\n\r\n" + body);
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kSoapFault);
  EXPECT_EQ(reply.status().message(), "could not load module films");
}

TEST(HttpPost, FaultstringElementSurfacesAsSoapFault) {
  std::string body =
      "<env:Fault><faultstring>peer exploded</faultstring></env:Fault>";
  CannedServer server("HTTP/1.1 500 Internal Server Error\r\n"
                      "Content-Length: " + std::to_string(body.size()) +
                      "\r\n\r\n" + body);
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kSoapFault);
  EXPECT_EQ(reply.status().message(), "peer exploded");
}

TEST(HttpPost, GenericServerErrorStaysNetworkError) {
  std::string body = "Internal: invariant violated";
  CannedServer server("HTTP/1.1 500 Internal Server Error\r\n"
                      "Content-Length: " + std::to_string(body.size()) +
                      "\r\n\r\n" + body);
  auto reply = HttpPost("127.0.0.1", server.port(), "p", "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNetworkError);
}

TEST(Uri, PercentDecodeValidEscapes) {
  EXPECT_EQ(PercentDecode("no-escapes").value(), "no-escapes");
  EXPECT_EQ(PercentDecode("").value(), "");
  EXPECT_EQ(PercentDecode("a%20b").value(), "a b");
  EXPECT_EQ(PercentDecode("%41%62%63").value(), "Abc");
  // Hex digits decode case-insensitively.
  EXPECT_EQ(PercentDecode("%2F%2f").value(), "//");
  // "%2541" means the five characters "%41", not "A".
  EXPECT_EQ(PercentDecode("%2541").value(), "%41");
}

TEST(Uri, PercentDecodeRejectsMalformedEscapes) {
  // A '%' not followed by two hex digits used to pass through silently,
  // making encoding ambiguous; now it is a typed parse error.
  EXPECT_FALSE(PercentDecode("%").ok());
  EXPECT_FALSE(PercentDecode("abc%2").ok());
  EXPECT_FALSE(PercentDecode("%GG").ok());
  EXPECT_FALSE(PercentDecode("%2x").ok());
  EXPECT_FALSE(PercentDecode("a%%20b").ok());
}

TEST(Uri, PercentEncodePathRoundTrips) {
  // Unreserved text and pchar extras pass through untouched ...
  EXPECT_EQ(PercentEncodePath("docs/filmDB.xml"), "docs/filmDB.xml");
  EXPECT_EQ(PercentEncodePath("a:b@c,d;e=f"), "a:b@c,d;e=f");
  // ... everything else round-trips through "%XX".
  const std::string nasty = "a b%c?d#e\x7f";
  std::string encoded = PercentEncodePath(nasty);
  EXPECT_EQ(encoded, "a%20b%25c%3Fd%23e%7F");
  EXPECT_EQ(PercentDecode(encoded).value(), nasty);
}

TEST(Uri, ParseDecodesEscapesAndToStringReEncodes) {
  auto uri = ParseXrpcUri("xrpc://B/docs/film%20DB.xml");
  ASSERT_TRUE(uri.ok()) << uri.status();
  EXPECT_EQ(uri->host, "B");
  EXPECT_EQ(uri->path, "docs/film DB.xml");
  EXPECT_EQ(uri->ToString(), "xrpc://B/docs/film%20DB.xml");

  // Malformed escapes anywhere in the URI are parse errors.
  EXPECT_FALSE(ParseXrpcUri("xrpc://B/bad%zzpath").ok());
  EXPECT_FALSE(ParseXrpcUri("xrpc://bad%GGhost/p").ok());
}

TEST(HttpServer, ChunkedTransferEncodingAnswers501) {
  // The server frames bodies by Content-Length only. A chunked request it
  // silently misframed before (treating the chunk stream as a body of
  // length 0 — the request-smuggling shape) must be refused up front with
  // 501 Not Implemented, before any body handling.
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string reply = RawExchange(
      port.value(),
      "POST /p HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nping\r\n0\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.1 501 Not Implemented", 0), 0u) << reply;
  EXPECT_NE(reply.find("Transfer-Encoding"), std::string::npos) << reply;
  EXPECT_EQ(endpoint.requests, 0);
  server.Stop();
}

TEST(HttpServer, ChunkedBesideContentLengthStillRejected) {
  // Transfer-Encoding wins over Content-Length per RFC 9112 §6.3, so the
  // pair is exactly the smuggling vector: refuse it even though a
  // Content-Length is present.
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string reply = RawExchange(
      port.value(),
      "POST /p HTTP/1.1\r\nContent-Length: 4\r\n"
      "Transfer-Encoding: chunked\r\n\r\nping");
  EXPECT_EQ(reply.rfind("HTTP/1.1 501 Not Implemented", 0), 0u) << reply;
  EXPECT_EQ(endpoint.requests, 0);
  server.Stop();
}

TEST(HttpServer, IdentityTransferEncodingStillServed) {
  // "identity" is a no-op coding; the body is still framed by
  // Content-Length and the request goes through.
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string reply = RawExchange(
      port.value(),
      "POST /p HTTP/1.1\r\nTransfer-Encoding: identity\r\n"
      "Content-Length: 4\r\nConnection: close\r\n\r\nping");
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply;
  EXPECT_NE(reply.find("echo:ping"), std::string::npos) << reply;
  EXPECT_EQ(endpoint.requests, 1);
  server.Stop();
}

TEST(HttpServer, RequestPathIsPercentDecodedForTheEndpoint) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string reply = RawExchange(
      port.value(),
      "POST /film%20DB.xml HTTP/1.1\r\nContent-Length: 4\r\n"
      "Connection: close\r\n\r\nping");
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK", 0), 0u) << reply;
  EXPECT_EQ(endpoint.last_path, "film DB.xml");

  // A malformed escape in the request target is a client error.
  reply = RawExchange(
      port.value(),
      "POST /bad%zz HTTP/1.1\r\nContent-Length: 4\r\n\r\nping");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request", 0), 0u) << reply;
  server.Stop();
}

TEST(ThreadPool, SurvivesThrowingTasksAndRetainsTheException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  // The pool must keep serving tasks after the throw — if the worker died,
  // a 2-thread pool could not finish 8 more tasks.
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  while (ran.load() < 8) std::this_thread::yield();
  while (pool.uncaught_exceptions() < 1) std::this_thread::yield();
  EXPECT_EQ(pool.uncaught_exceptions(), 1);
  std::exception_ptr ep = pool.TakeUncaughtException();
  ASSERT_TRUE(ep != nullptr);
  try {
    std::rethrow_exception(ep);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  EXPECT_TRUE(pool.TakeUncaughtException() == nullptr);
}

TEST(ThreadPool, TaskGroupReportsFirstExceptionBySubmissionOrder) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    TaskGroup group(&pool);
    group.Run([] { throw std::runtime_error("first"); });
    group.Run([] { std::this_thread::yield(); });
    group.Run([] { throw std::runtime_error("third"); });
    std::exception_ptr ep = group.Wait();
    ASSERT_TRUE(ep != nullptr);
    try {
      std::rethrow_exception(ep);
    } catch (const std::runtime_error& e) {
      // Deterministic regardless of which task finished (or threw) first.
      EXPECT_STREQ(e.what(), "first");
    }
  }
  // Group-captured exceptions never land in the pool's raw-Submit tally.
  EXPECT_EQ(pool.uncaught_exceptions(), 0);
}

TEST(ThreadPool, TaskGroupWithNullPoolRunsInline) {
  TaskGroup group(nullptr);
  std::thread::id caller = std::this_thread::get_id();
  int ran = 0;
  group.Run([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++ran;
  });
  group.Run([] { throw std::runtime_error("inline boom"); });
  group.Run([&] { ++ran; });
  EXPECT_EQ(ran, 2);  // inline mode runs every task, even after a throw
  std::exception_ptr ep = group.Wait();
  ASSERT_TRUE(ep != nullptr);
  // Wait() resets the group for reuse.
  group.Run([&] { ++ran; });
  EXPECT_TRUE(group.Wait() == nullptr);
  EXPECT_EQ(ran, 3);
}

}  // namespace
}  // namespace xrpc::net
