// Tests for the network substrate: xrpc:// URI parsing, the simulated
// network (routing, virtual-time cost model, failure injection) and the
// real HTTP/1.1 loopback transport.

#include <gtest/gtest.h>

#include "net/http.h"
#include "net/simulated_network.h"
#include "net/uri.h"

namespace xrpc::net {
namespace {

TEST(Uri, ParsesFullForm) {
  auto uri = ParseXrpcUri("xrpc://y.example.org:6123/some/path");
  ASSERT_TRUE(uri.ok()) << uri.status();
  EXPECT_EQ(uri->host, "y.example.org");
  EXPECT_EQ(uri->port, 6123);
  EXPECT_EQ(uri->path, "some/path");
  EXPECT_EQ(uri->ToString(), "xrpc://y.example.org:6123/some/path");
}

TEST(Uri, DefaultsPortAndPath) {
  auto uri = ParseXrpcUri("xrpc://y.example.org");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->port, kDefaultXrpcPort);
  EXPECT_EQ(uri->path, "");
}

TEST(Uri, AcceptsBareHost) {
  // The paper writes execute at {"B"} in Section 5 examples.
  auto uri = ParseXrpcUri("B");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->host, "B");
}

TEST(Uri, RejectsJunk) {
  EXPECT_FALSE(ParseXrpcUri("").ok());
  EXPECT_FALSE(ParseXrpcUri("http://other.scheme/").ok());
  EXPECT_FALSE(ParseXrpcUri("xrpc://host:notaport").ok());
  EXPECT_FALSE(ParseXrpcUri("xrpc://host:99999").ok());
  EXPECT_FALSE(ParseXrpcUri("xrpc://").ok());
}

class EchoEndpoint : public SoapEndpoint {
 public:
  StatusOr<std::string> Handle(const std::string& path,
                               const std::string& body) override {
    ++requests;
    last_path = path;
    return "echo:" + body;
  }
  int requests = 0;
  std::string last_path;
};

TEST(SimulatedNetwork, RoutesToRegisteredPeer) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://y.example.org").value(), &peer);
  auto result = net.Post("xrpc://y.example.org/svc", "hello");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->body, "echo:hello");
  EXPECT_EQ(peer.last_path, "svc");
  EXPECT_EQ(net.messages_sent(), 1);
  EXPECT_EQ(net.bytes_sent(), 5);
}

TEST(SimulatedNetwork, UnknownPeerIsConnectionRefused) {
  SimulatedNetwork net;
  auto result = net.Post("xrpc://nobody", "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
}

TEST(SimulatedNetwork, CostModelChargesLatencyAndBandwidth) {
  NetworkProfile profile;
  profile.latency_us = 1000;
  profile.bandwidth_bytes_per_us = 10.0;
  SimulatedNetwork net(profile);
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://p").value(), &peer);
  std::string body(1000, 'x');  // 100 us of wire time
  auto result = net.Post("xrpc://p", body);
  ASSERT_TRUE(result.ok());
  // request: 1000 + 100; response ("echo:" + 1000 bytes): 1000 + 100.5
  EXPECT_GE(result->network_micros, 2200);
  EXPECT_LE(result->network_micros, 2202);
  EXPECT_EQ(net.clock().NowMicros(), result->network_micros);
}

TEST(SimulatedNetwork, LatencyDominatesSmallMessages) {
  // The premise of Bulk RPC: n messages cost ~n*latency, one bulk message
  // of the same total size costs ~1*latency.
  NetworkProfile profile;
  profile.latency_us = 500;
  SimulatedNetwork net(profile);
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://p").value(), &peer);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.Post("xrpc://p", "tiny").ok());
  }
  int64_t ten_small = net.clock().NowMicros();
  net.ResetStats();
  ASSERT_TRUE(net.Post("xrpc://p", std::string(40, 'x')).ok());
  int64_t one_bulk = net.clock().NowMicros();
  EXPECT_GT(ten_small, 5 * one_bulk);
}

TEST(SimulatedNetwork, FailureInjection) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(ParseXrpcUri("xrpc://p").value(), &peer);
  net.FailNextPost(Status::NetworkError("cable cut"));
  auto r1 = net.Post("xrpc://p", "x");
  EXPECT_FALSE(r1.ok());
  auto r2 = net.Post("xrpc://p", "x");  // one-shot: next call succeeds
  EXPECT_TRUE(r2.ok());
}

TEST(SimulatedNetwork, DisconnectPeer) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  XrpcUri uri = ParseXrpcUri("xrpc://p").value();
  net.RegisterPeer(uri, &peer);
  net.DisconnectPeer(uri);
  EXPECT_FALSE(net.Post("xrpc://p", "x").ok());
}

TEST(HttpServer, ServesPostOverLoopback) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();
  auto reply = HttpPost("127.0.0.1", port.value(), "the/path", "ping");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply.value(), "echo:ping");
  EXPECT_EQ(endpoint.last_path, "the/path");
  server.Stop();
}

TEST(HttpServer, HandlesLargeBodies) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  std::string big(1 << 20, 'z');
  auto reply = HttpPost("127.0.0.1", port.value(), "", big);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->size(), big.size() + 5);
  server.Stop();
}

TEST(HttpTransport, PostsViaXrpcUri) {
  EchoEndpoint endpoint;
  HttpServer server(&endpoint);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok());
  HttpTransport transport;
  auto result = transport.Post(
      "xrpc://127.0.0.1:" + std::to_string(port.value()) + "/x", "hello");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->body, "echo:hello");
  server.Stop();
}

TEST(HttpTransport, ConnectionRefused) {
  HttpTransport transport;
  // Port 1 on loopback is almost certainly closed.
  auto result = transport.Post("xrpc://127.0.0.1:1/", "x");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace xrpc::net
