// Assorted edge-case and failure-injection coverage across modules:
// protocol robustness, marshaling corner cases, isolation misuse, engine
// fallback behavior, and network failures surfacing as query errors.

#include <gtest/gtest.h>

#include "core/peer_network.h"
#include "soap/marshal.h"
#include "tests/test_util.h"
#include "wrapper/wrapper_engine.h"
#include "xmark/xmark.h"
#include "xml/serializer.h"

namespace xrpc {
namespace {

using ::xrpc::testing::EvalToString;
using ::xrpc::testing::MapDocumentProvider;

// ---- SOAP / marshaling corner cases ----

TEST(EdgeCases, EmptySequenceMarshalsToEmptyElement) {
  auto node = soap::SequenceToNode({});
  auto back = soap::NodeToSequence(*node);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(EdgeCases, WhitespaceOnlyStringSurvivesTheWire) {
  xdm::Sequence seq{xdm::Item(xdm::AtomicValue::String("  a  b  "))};
  std::string wire = xml::SerializeNode(*soap::SequenceToNode(seq));
  auto doc = xml::ParseXml(wire);
  ASSERT_TRUE(doc.ok());
  auto back = soap::NodeToSequence(*doc.value()->children()[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0].atomic().ToString(), "  a  b  ");
}

TEST(EdgeCases, DeeplyNestedElementParameter) {
  std::string xml_text = "<a>";
  for (int i = 0; i < 60; ++i) xml_text += "<n>";
  xml_text += "x";
  for (int i = 0; i < 60; ++i) xml_text += "</n>";
  xml_text += "</a>";
  auto doc = xml::ParseXml(xml_text);
  ASSERT_TRUE(doc.ok());
  xdm::Sequence seq{xdm::Item::Node(doc.value()->children()[0])};
  auto back = soap::NodeToSequence(*soap::SequenceToNode(seq));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0].node()->StringValue(), "x");
}

TEST(EdgeCases, RequestWithZeroArityFunction) {
  soap::XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 0;
  req.calls.push_back({});
  req.calls.push_back({});
  auto back = soap::ParseRequest(soap::SerializeRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->calls.size(), 2u);
  EXPECT_TRUE(back->calls[0].empty());
}

// ---- interpreter edge cases ----

TEST(EdgeCases, ZeroLengthRangesAndReversedRanges) {
  EXPECT_EQ(EvalToString("count(5 to 4)"), "0");
  EXPECT_EQ(EvalToString("count(5 to 5)"), "1");
  EXPECT_EQ(EvalToString("count(() to 5)"), "0");
}

TEST(EdgeCases, NestedFlworScoping) {
  // Inner $x shadows outer $x; outer binding visible again afterwards.
  EXPECT_EQ(EvalToString(
                "for $x in (1,2) return (for $x in (10) return $x, $x)"),
            "10 1 10 2");
}

TEST(EdgeCases, PredicateOnEmptyStep) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r/>");
  EXPECT_EQ(EvalToString("count(doc(\"d.xml\")//nothing[@x=\"1\"])", &docs),
            "0");
}

TEST(EdgeCases, AttributeValueWithQuotesAndAmps) {
  // A bare '&' in an XQuery string literal is illegal...
  EXPECT_NE(EvalToString(R"(<a v="{concat('x & y', '!')}"/>)").find("ERROR"),
            std::string::npos);
  // ...the escaped form round-trips with attribute escaping on output.
  EXPECT_EQ(EvalToString(R"(<a v="{concat('x &amp; ', '"', 'y')}"/>)"),
            "<a v=\"x &amp; &quot;y\"/>");
}

TEST(EdgeCases, StringFunctionsOnEmpty) {
  EXPECT_EQ(EvalToString("concat((), \"a\")"), "a");
  EXPECT_EQ(EvalToString("string-join((), \",\")"), "");
  EXPECT_EQ(EvalToString("substring(\"abc\", 0)"), "abc");
  EXPECT_EQ(EvalToString("substring(\"abc\", 5)"), "");
}

TEST(EdgeCases, ComparisonTypeErrors) {
  EXPECT_NE(EvalToString("1 eq \"1\"").find("ERROR"), std::string::npos);
  EXPECT_EQ(EvalToString("1 = 1.0"), "true");
  EXPECT_EQ(EvalToString("\"10\" < \"9\""), "true");  // string compare
  EXPECT_EQ(EvalToString("10 < 9"), "false");
}

TEST(EdgeCases, JoinIndexHandlesDuplicateKeys) {
  // >16 candidates with duplicate key values: the join index path must
  // return every match, in document order.
  std::string doc_text = "<r>";
  for (int i = 0; i < 30; ++i) {
    doc_text += "<p k=\"" + std::string(i % 3 == 0 ? "hit" : "miss") +
                "\"><v>" + std::to_string(i) + "</v></p>";
  }
  doc_text += "</r>";
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", doc_text);
  EXPECT_EQ(EvalToString(R"(
      let $k := "hit"
      return count(doc("d.xml")//p[@k = $k]))",
                         &docs),
            "10");
  // Same via a function called repeatedly (the bulk pattern).
  EXPECT_EQ(EvalToString(R"(
      declare function local:find($k as xs:string) as node()*
      { doc("d.xml")//p[@k = $k] };
      (count(local:find("hit")), count(local:find("miss")),
       count(local:find("hit")), count(local:find("none"))))",
                         &docs),
            "10 20 10 0");
}

// ---- end-to-end failure injection ----

class EdgeNetworkTest : public ::testing::Test {
 protected:
  EdgeNetworkTest() {
    net_.AddPeer("p0");
    y_ = net_.AddPeer("y");
    (void)y_->AddDocument("filmDB.xml", xmark::GenerateFilmDb());
    (void)y_->RegisterModule(xmark::FilmModuleSource(), "film.xq");
  }

  core::PeerNetwork net_;
  core::Peer* y_;
};

TEST_F(EdgeNetworkTest, TransportFailureSurfacesAsQueryError) {
  net_.network().FailNextPost(Status::NetworkError("cable cut"));
  auto report = net_.Execute("p0", R"(
      import module namespace f="films" at "film.xq";
      execute at {"xrpc://y"} {f:filmsByActor("Sean Connery")})");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNetworkError);
}

TEST_F(EdgeNetworkTest, PeerDisconnectMidQuery) {
  net_.network().DisconnectPeer(net::ParseXrpcUri("xrpc://y").value());
  auto report = net_.Execute("p0", R"(
      import module namespace f="films" at "film.xq";
      execute at {"xrpc://y"} {f:filmsByActor("Sean Connery")})");
  EXPECT_FALSE(report.ok());
}

TEST_F(EdgeNetworkTest, RemoteEvalErrorArrivesAsFault) {
  ASSERT_TRUE(y_->RegisterModule(R"(
      module namespace bad = "bad";
      declare function bad:boom() { fn:error("deliberate failure") };)")
                  .ok());
  auto report = net_.Execute("p0", R"(
      import module namespace b="bad" at "bad.xq";
      execute at {"xrpc://y"} {b:boom()})");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kSoapFault);
  EXPECT_NE(report.status().message().find("deliberate failure"),
            std::string::npos);
}

TEST_F(EdgeNetworkTest, MalformedQueryRejectedBeforeAnyRpc) {
  auto report = net_.Execute("p0", "for $x in");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kParseError);
  EXPECT_EQ(net_.network().messages_sent(), 0);
}

TEST_F(EdgeNetworkTest, UnknownIsolationOptionRejected) {
  auto report = net_.Execute("p0", R"(
      declare option xrpc:isolation "serializable-ish";
      1 + 1)");
  EXPECT_FALSE(report.ok());
}

TEST_F(EdgeNetworkTest, WrapperHandlesItemStarSignatures) {
  // tst:echo has an item()* parameter and return: the wrapper's generated
  // marshaling must dispatch on the wire representation at runtime.
  core::Peer* w = net_.AddPeer("w", core::EngineKind::kWrapper);
  ASSERT_TRUE(w->RegisterModule(xmark::TestModuleSource(), "test.xq").ok());
  auto report = net_.Execute("p0", R"(
      import module namespace t="test" at "test.xq";
      execute at {"xrpc://w"} {t:echo((1, "two", 3.5, true()))})");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(xdm::SequenceToString(report->result), "1 two 3.5 true");
  // Types survive the double marshal (request + wrapper response).
  ASSERT_EQ(report->result.size(), 4u);
  EXPECT_EQ(report->result[0].atomic().type(), xdm::AtomicType::kInteger);
  EXPECT_EQ(report->result[3].atomic().type(), xdm::AtomicType::kBoolean);
}

TEST_F(EdgeNetworkTest, MixedEnginePeersAgree) {
  // The same remote function executed by every engine kind must agree.
  std::vector<std::pair<const char*, core::EngineKind>> kinds = {
      {"e1", core::EngineKind::kRelational},
      {"e2", core::EngineKind::kRelationalNoCache},
      {"e3", core::EngineKind::kInterpreter},
      {"e4", core::EngineKind::kInterpreterNoCache},
      {"e5", core::EngineKind::kWrapper},
  };
  std::string expected;
  for (auto& [name, kind] : kinds) {
    core::Peer* p = net_.AddPeer(name, kind);
    ASSERT_TRUE(p->AddDocument("filmDB.xml", xmark::GenerateFilmDb()).ok());
    ASSERT_TRUE(p->RegisterModule(xmark::FilmModuleSource(), "film.xq").ok());
    auto report = net_.Execute("p0", std::string(R"(
        import module namespace f="films" at "film.xq";
        execute at {"xrpc://)") + name +
                                          R"("} {f:filmsByActor("Sean Connery")})");
    ASSERT_TRUE(report.ok()) << name << ": " << report.status();
    std::string got = xdm::SequenceToString(report->result);
    if (expected.empty()) {
      expected = got;
      EXPECT_NE(got.find("The Rock"), std::string::npos);
    } else {
      EXPECT_EQ(got, expected) << "engine " << name;
    }
  }
}

}  // namespace
}  // namespace xrpc
