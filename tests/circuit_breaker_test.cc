// Regression tests of the per-peer circuit breaker's half-open probe
// discipline (DESIGN.md §14): exactly one in-flight probe no matter how
// many callers race Allow(), and no way to wedge the probe slot — neither
// by abandoning a probe explicitly nor by exhausting a deadline budget
// between Allow() and the dial (the RetryingTransport ordering bug this
// file pins down).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/circuit_breaker.h"
#include "net/retrying_transport.h"
#include "net/transport.h"

namespace xrpc::net {
namespace {

constexpr char kPeer[] = "xrpc://victim";

/// Opens the circuit for kPeer by feeding `threshold` consecutive failures.
void OpenCircuit(CircuitBreaker* breaker, int threshold) {
  for (int i = 0; i < threshold; ++i) {
    ASSERT_TRUE(breaker->Allow(kPeer));
    breaker->RecordFailure(kPeer);
  }
  ASSERT_EQ(breaker->GetState(kPeer), CircuitBreaker::State::kOpen);
  ASSERT_FALSE(breaker->Allow(kPeer));
}

TEST(CircuitBreakerTest, RacingAllowAdmitsExactlyOneProbe) {
  // After the cooldown, many threads race Allow() against the open
  // circuit. Half-open means ONE probe: exactly one caller may dial, the
  // rest stay short-circuited until the probe reports back.
  std::atomic<int64_t> now{0};
  CircuitBreaker breaker({/*failure_threshold=*/2, /*cooldown_us=*/1000},
                         [&now] { return now.load(); });
  OpenCircuit(&breaker, 2);
  now = 2000;  // past the cooldown: the next Allow() opens the probe window

  constexpr int kThreads = 16;
  std::atomic<int> admitted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      if (breaker.Allow(kPeer)) admitted.fetch_add(1);
    });
  }
  go = true;
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 1);
  EXPECT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kHalfOpen);

  // The probe succeeds: the circuit closes and everyone is admitted again.
  breaker.RecordSuccess(kPeer);
  EXPECT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(kPeer));
}

TEST(CircuitBreakerTest, AbandonedProbeReleasesTheSlotWithoutCooldownReset) {
  std::atomic<int64_t> now{0};
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown_us=*/1000},
                         [&now] { return now.load(); });
  OpenCircuit(&breaker, 1);
  now = 1500;
  ASSERT_TRUE(breaker.Allow(kPeer));          // admitted as the probe
  ASSERT_FALSE(breaker.Allow(kPeer));         // slot occupied

  // The probe never dials (caller bailed out): abandoning it must free the
  // slot, and — because the original opened_at is kept — the already
  // elapsed cooldown still counts, so the very next caller probes.
  breaker.OnProbeAbandoned(kPeer);
  EXPECT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.Allow(kPeer));
  breaker.RecordSuccess(kPeer);
  EXPECT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, AbandonIsANoOpOutsideHalfOpen) {
  std::atomic<int64_t> now{0};
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown_us=*/1000},
                         [&now] { return now.load(); });
  breaker.OnProbeAbandoned(kPeer);  // closed: nothing to release
  EXPECT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(kPeer));
  breaker.RecordFailure(kPeer);
  breaker.OnProbeAbandoned(kPeer);  // open, no probe in flight: still a no-op
  EXPECT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kOpen);
}

/// Inner transport that always refuses the dial, counting attempts.
class RefusingTransport : public Transport {
 public:
  StatusOr<PostResult> Post(const std::string&, const std::string&) override {
    ++dials;
    return Status::NetworkError("connection refused");
  }
  int dials = 0;
};

TEST(CircuitBreakerTest, BudgetExhaustedPostDoesNotWedgeHalfOpenProbe) {
  // The regression this file exists for: RetryingTransport used to consult
  // the breaker BEFORE checking the deadline budget. A request arriving
  // with an exhausted budget was admitted as the half-open probe, then
  // returned kDeadlineExceeded without dialing — and without reporting any
  // outcome, leaving probe_in_flight set forever. The peer stayed
  // short-circuited even after recovering.
  std::atomic<int64_t> now{0};
  CircuitBreaker breaker({/*failure_threshold=*/1, /*cooldown_us=*/1000},
                         [&now] { return now.load(); });
  RefusingTransport inner;
  RetryingTransport transport(&inner, RetryPolicy{.max_attempts = 1},
                              /*metrics=*/nullptr, /*sleep=*/nullptr,
                              /*jitter_seed=*/1, [&now] { return now.load(); });
  transport.set_circuit_breaker(&breaker);

  // One failed dial opens the circuit.
  auto first = transport.Post(kPeer, "<q/>");
  EXPECT_FALSE(first.ok());
  ASSERT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kOpen);
  now = 1500;  // cooldown elapsed: the next admitted caller is the probe

  // A request whose end-to-end budget is already spent must be rejected
  // WITHOUT consuming the probe slot (and without dialing).
  const int dials_before = inner.dials;
  auto spent = transport.Post(
      kPeer, "<env><xrpc:deadline>0</xrpc:deadline></env>");
  ASSERT_FALSE(spent.ok());
  EXPECT_EQ(spent.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(inner.dials, dials_before);

  // The probe slot is still free: a healthy follow-up request is admitted
  // as the probe and (the peer having recovered) closes the circuit.
  EXPECT_TRUE(breaker.Allow(kPeer));
  breaker.RecordSuccess(kPeer);
  EXPECT_EQ(breaker.GetState(kPeer), CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace xrpc::net
