// Unit tests for the XQuery parser: expression grammar, prolog, modules,
// the `execute at` XRPC extension and XQUF updating expressions.

#include <gtest/gtest.h>

#include "xquery/parser.h"

namespace xrpc::xquery {
namespace {

StatusOr<MainModule> Parse(const std::string& q) { return ParseMainModule(q); }

TEST(Parser, Literals) {
  auto m = Parse("42");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kLiteral);
  EXPECT_EQ(m->body->literal.AsInteger(), 42);

  m = Parse("3.14");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->literal.type(), xdm::AtomicType::kDecimal);

  m = Parse("1e3");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->literal.type(), xdm::AtomicType::kDouble);

  m = Parse("\"don''t\"");
  ASSERT_TRUE(m.ok());

  m = Parse("'say \"hi\"'");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->literal.ToString(), "say \"hi\"");
}

TEST(Parser, SequenceAndRange) {
  auto m = Parse("(1, 2, 3)");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kSequence);
  EXPECT_EQ(m->body->children.size(), 3u);

  m = Parse("1 to 10");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kRange);

  m = Parse("()");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kSequence);
  EXPECT_TRUE(m->body->children.empty());
}

TEST(Parser, OperatorPrecedence) {
  auto m = Parse("1 + 2 * 3");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->body->kind, ExprKind::kArith);
  EXPECT_EQ(m->body->arith_op, ArithOp::kAdd);
  EXPECT_EQ(m->body->children[1]->kind, ExprKind::kArith);
  EXPECT_EQ(m->body->children[1]->arith_op, ArithOp::kMul);

  m = Parse("1 < 2 and 3 >= 2 or false()");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kOr);
}

TEST(Parser, Flwor) {
  auto m = Parse(
      "for $x in (1,2) let $y := $x + 1 where $y > 1 "
      "order by $y descending return ($x, $y)");
  ASSERT_TRUE(m.ok()) << m.status();
  const Expr& e = *m->body;
  ASSERT_EQ(e.kind, ExprKind::kFlwor);
  ASSERT_EQ(e.clauses.size(), 2u);
  EXPECT_EQ(e.clauses[0].kind, FlworClause::Kind::kFor);
  EXPECT_EQ(e.clauses[0].var.local, "x");
  EXPECT_EQ(e.clauses[1].kind, FlworClause::Kind::kLet);
  ASSERT_NE(e.where, nullptr);
  ASSERT_EQ(e.order_by.size(), 1u);
  EXPECT_TRUE(e.order_by[0].descending);
  ASSERT_NE(e.ret, nullptr);
}

TEST(Parser, FlworPositionalVariable) {
  auto m = Parse("for $x at $i in ('a','b') return $i");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->clauses[0].pos_var.local, "i");
}

TEST(Parser, Quantified) {
  auto m = Parse("some $x in (1,2,3) satisfies $x > 2");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kQuantified);
  EXPECT_FALSE(m->body->every);

  m = Parse("every $x in (1,2,3) satisfies $x > 0");
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->body->every);
}

TEST(Parser, IfExpr) {
  auto m = Parse("if (1 < 2) then \"a\" else \"b\"");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kIf);
  EXPECT_EQ(m->body->children.size(), 3u);
}

TEST(Parser, Paths) {
  auto m = Parse("doc(\"filmDB.xml\")//name[../actor=$actor]");
  ASSERT_TRUE(m.ok()) << m.status();
  const Expr& e = *m->body;
  ASSERT_EQ(e.kind, ExprKind::kPath);
  ASSERT_NE(e.children[0], nullptr);
  EXPECT_EQ(e.children[0]->kind, ExprKind::kFunctionCall);
  // steps: descendant-or-self::node(), child::name[pred]
  ASSERT_EQ(e.steps.size(), 2u);
  EXPECT_EQ(e.steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(e.steps[1].axis, Axis::kChild);
  EXPECT_EQ(e.steps[1].test.name.local, "name");
  ASSERT_EQ(e.steps[1].predicates.size(), 1u);
}

TEST(Parser, AttributeAndExplicitAxes) {
  auto m = Parse("$p/@id");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->steps[0].axis, Axis::kAttribute);

  m = Parse("$p/ancestor-or-self::a/following-sibling::b");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->steps[0].axis, Axis::kAncestorOrSelf);
  EXPECT_EQ(m->body->steps[1].axis, Axis::kFollowingSibling);
}

TEST(Parser, KindTests) {
  auto m = Parse("$x/text()");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->steps[0].test.kind, NodeTest::Kind::kText);

  m = Parse("$x//node()");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->steps[1].test.kind, NodeTest::Kind::kAnyKind);
}

TEST(Parser, Wildcard) {
  auto m = Parse("$x/*");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->body->steps[0].test.wildcard);
}

TEST(Parser, DirectElementConstructor) {
  auto m = Parse("<films>{ 1 }</films>");
  ASSERT_TRUE(m.ok()) << m.status();
  const Expr& e = *m->body;
  EXPECT_EQ(e.kind, ExprKind::kElementCtor);
  EXPECT_EQ(e.name.local, "films");
  ASSERT_EQ(e.children.size(), 1u);
  EXPECT_EQ(e.children[0]->kind, ExprKind::kLiteral);
}

TEST(Parser, DirectConstructorWithAttributesAndNesting) {
  auto m = Parse(R"(<film id="f1" name="{$n}"><actor>Sean</actor></film>)");
  ASSERT_TRUE(m.ok()) << m.status();
  const Expr& e = *m->body;
  ASSERT_EQ(e.attributes.size(), 2u);
  EXPECT_EQ(e.attributes[0]->name.local, "id");
  // name="{$n}" has one non-literal child
  EXPECT_EQ(e.attributes[1]->children.size(), 1u);
  ASSERT_EQ(e.children.size(), 1u);
  EXPECT_EQ(e.children[0]->kind, ExprKind::kElementCtor);
}

TEST(Parser, BoundaryWhitespaceIsStripped) {
  auto m = Parse("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->children.size(), 1u);
}

TEST(Parser, CurlyEscapes) {
  auto m = Parse("<a>{{not-an-expr}}</a>");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->body->children.size(), 1u);
  EXPECT_EQ(m->body->children[0]->kind, ExprKind::kTextCtor);
  EXPECT_EQ(m->body->children[0]->literal.ToString(), "{not-an-expr}");
}

TEST(Parser, ComputedConstructors) {
  auto m = Parse("element {\"foo\"} { \"bar\" }");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kElementCtor);
  ASSERT_NE(m->body->name_expr, nullptr);

  m = Parse("element foo { \"bar\" }");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kElementCtor);
  EXPECT_EQ(m->body->name.local, "foo");

  m = Parse("text { \"hello\" }");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kTextCtor);
}

TEST(Parser, ExecuteAt) {
  auto m = Parse(
      "import module namespace f=\"films\" at \"http://x.example.org/film.xq\";"
      "execute at {\"xrpc://y.example.org\"} {f:filmsByActor(\"Sean Connery\")}");
  ASSERT_TRUE(m.ok()) << m.status();
  const Expr& e = *m->body;
  ASSERT_EQ(e.kind, ExprKind::kExecuteAt);
  EXPECT_EQ(e.name.local, "filmsByActor");
  EXPECT_EQ(e.name.ns_uri, "films");
  ASSERT_EQ(e.children.size(), 2u);  // dest + 1 arg
  ASSERT_EQ(m->prolog.imports.size(), 1u);
  EXPECT_EQ(m->prolog.imports[0].location, "http://x.example.org/film.xq");
}

TEST(Parser, ExecuteAtInsideFlwor) {
  // Query Q3 from the paper.
  auto m = Parse(R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    <films> {
      for $actor in ("Julie Andrews", "Sean Connery")
      for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
      return execute at {$dst} {f:filmsByActor($actor)}
    } </films>)");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kElementCtor);
}

TEST(Parser, PrologDeclarations) {
  auto m = Parse(R"(
    xquery version "1.0";
    declare namespace foo = "urn:foo";
    declare option xrpc:isolation "repeatable";
    declare option xrpc:timeout "30";
    declare variable $v := 41;
    declare function local:inc($x as xs:integer) as xs:integer { $x + 1 };
    local:inc($v))");
  ASSERT_TRUE(m.ok()) << m.status();
  const std::string* iso =
      m->prolog.FindOption("{http://monetdb.cwi.nl/XQuery}isolation");
  ASSERT_NE(iso, nullptr);
  EXPECT_EQ(*iso, "repeatable");
  ASSERT_EQ(m->prolog.functions.size(), 1u);
  EXPECT_EQ(m->prolog.functions[0].params.size(), 1u);
  EXPECT_EQ(m->prolog.variables.size(), 1u);
}

TEST(Parser, LibraryModule) {
  auto m = ParseLibraryModule(R"(
    module namespace film = "films";
    declare function film:filmsByActor($actor as xs:string) as node()*
    { doc("filmDB.xml")//name[../actor=$actor] };)");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->target_ns, "films");
  EXPECT_EQ(m->prefix, "film");
  ASSERT_EQ(m->prolog.functions.size(), 1u);
  const FunctionDef& f = m->prolog.functions[0];
  EXPECT_EQ(f.name.ns_uri, "films");
  EXPECT_EQ(f.name.local, "filmsByActor");
  EXPECT_FALSE(f.updating);
  EXPECT_EQ(f.return_type.kind, SequenceType::ItemKind::kNode);
  EXPECT_EQ(f.return_type.occurrence, Occurrence::kZeroOrMore);
}

TEST(Parser, UpdatingFunction) {
  auto m = ParseLibraryModule(R"(
    module namespace upd = "updates";
    declare updating function upd:addFilm($name as xs:string)
    { insert nodes <film><name>{$name}</name></film>
      into doc("filmDB.xml")/films };)");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->prolog.functions.size(), 1u);
  EXPECT_TRUE(m->prolog.functions[0].updating);
  EXPECT_TRUE(ContainsUpdatingSyntax(*m->prolog.functions[0].body));
}

TEST(Parser, UpdatingExpressions) {
  auto m = Parse("delete nodes doc(\"d.xml\")//old");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kDelete);

  m = Parse("replace value of node $n with \"new\"");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kReplaceValue);

  m = Parse("replace node $n with <x/>");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kReplaceNode);

  m = Parse("rename node $n as \"fresh\"");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kRename);

  m = Parse("insert nodes <x/> as first into $n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->insert_pos, InsertPos::kAsFirstInto);

  m = Parse("insert nodes <x/> after $n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->insert_pos, InsertPos::kAfter);
}

TEST(Parser, CastAndInstanceOf) {
  auto m = Parse("\"42\" cast as xs:integer");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kCastAs);

  m = Parse("3 instance of xs:integer");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kInstanceOf);

  m = Parse("\"a\" castable as xs:double");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->kind, ExprKind::kCastableAs);
}

TEST(Parser, Comments) {
  auto m = Parse("(: outer (: nested :) still comment :) 7");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->literal.AsInteger(), 7);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(Parse("for $x in").ok());
  EXPECT_FALSE(Parse("1 +").ok());
  EXPECT_FALSE(Parse("<a><b></a>").ok());
  EXPECT_FALSE(Parse("execute at {\"x\"} {}").ok());
  EXPECT_FALSE(Parse("$undeclared:var").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(Parser, NodeComparisons) {
  auto m = Parse("$a is $b");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->comp_op, CompOp::kNodeIs);
  m = Parse("$a << $b");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->body->comp_op, CompOp::kNodeBefore);
}

TEST(Parser, ValueComparisons) {
  auto m = Parse("1 eq 2");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->comp_op, CompOp::kValEq);
}

TEST(Parser, UnionExpr) {
  auto m = Parse("$a/x | $a/y");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->body->kind, ExprKind::kUnion);
}

}  // namespace
}  // namespace xrpc::xquery
