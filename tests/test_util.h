#ifndef XRPC_TESTS_TEST_UTIL_H_
#define XRPC_TESTS_TEST_UTIL_H_

// Shared in-memory fakes used across the test suites: document providers,
// module resolvers and RPC recorders for exercising the XQuery engines
// without a network.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "xml/parser.h"
#include "xquery/context.h"
#include "xquery/interpreter.h"
#include "xquery/parser.h"

namespace xrpc::testing {

/// Collision-free scratch file path: <TempDir>/<name>.<pid>.<seq>.
/// ::testing::TempDir() is shared across test binaries, so fixed names
/// ("roundtrip.wal") collide when `ctest -j` runs suites in parallel or a
/// binary is sharded; the pid + per-process sequence make every call
/// unique. Callers still remove the file themselves.
inline std::string UniqueTempPath(const std::string& name) {
  static std::atomic<int> seq{0};
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1));
}

/// Document provider backed by a name -> XML text map.
class MapDocumentProvider : public xquery::DocumentProvider {
 public:
  void AddDocument(const std::string& uri, const std::string& xml_text) {
    auto doc = xml::ParseXml(xml_text);
    if (doc.ok()) docs_[uri] = doc.value();
  }
  void AddDocumentNode(const std::string& uri, xml::NodePtr doc) {
    docs_[uri] = std::move(doc);
  }

  StatusOr<xml::NodePtr> GetDocument(const std::string& uri) override {
    auto it = docs_.find(uri);
    if (it == docs_.end()) {
      return Status::NotFound("document not found: " + uri);
    }
    return it->second;
  }

  const std::map<std::string, xml::NodePtr>& docs() const { return docs_; }

 private:
  std::map<std::string, xml::NodePtr> docs_;
};

/// Module resolver backed by parsed library modules keyed by namespace.
class MapModuleResolver : public xquery::ModuleResolver {
 public:
  /// Parses and registers a module; returns the parse status.
  Status AddModule(const std::string& text) {
    auto mod = xquery::ParseLibraryModule(text);
    XRPC_RETURN_IF_ERROR(mod.status());
    auto owned = std::make_unique<xquery::LibraryModule>(std::move(mod).value());
    modules_[owned->target_ns] = std::move(owned);
    return Status::OK();
  }

  StatusOr<const xquery::LibraryModule*> Resolve(
      const std::string& target_ns, const std::string& location) override {
    (void)location;
    auto it = modules_.find(target_ns);
    if (it == modules_.end()) {
      return Status::NotFound("module not found: " + target_ns);
    }
    return static_cast<const xquery::LibraryModule*>(it->second.get());
  }

 private:
  std::map<std::string, std::unique_ptr<xquery::LibraryModule>> modules_;
};

/// RPC handler that records calls and executes them locally against a
/// registered module resolver + document provider (a loopback "peer").
class LoopbackRpcHandler : public xquery::RpcHandler {
 public:
  LoopbackRpcHandler(MapModuleResolver* modules,
                     MapDocumentProvider* documents)
      : modules_(modules), documents_(documents) {}

  StatusOr<xdm::Sequence> Execute(const xquery::RpcCall& call) override {
    calls_.push_back(call);
    XRPC_ASSIGN_OR_RETURN(const xquery::LibraryModule* mod,
                          modules_->Resolve(call.module_ns,
                                            call.module_location));
    const xquery::FunctionDef* def =
        mod->FindFunction(call.function, call.args.size());
    if (def == nullptr) {
      return Status::NotFound("function not found: " + call.function.Clark());
    }
    xquery::Interpreter::Config config;
    config.documents = documents_;
    config.modules = modules_;
    config.rpc = this;
    xquery::Interpreter interp(config);
    XRPC_ASSIGN_OR_RETURN(xquery::QueryResult result,
                          interp.CallModuleFunction(*mod, *def, call.args));
    return result.sequence;
  }

  const std::vector<xquery::RpcCall>& calls() const { return calls_; }

 private:
  MapModuleResolver* modules_;
  MapDocumentProvider* documents_;
  std::vector<xquery::RpcCall> calls_;
};

/// Parses and evaluates a main-module query, returning the rendered result
/// ("ERROR: ..." on failure), with optional providers.
inline std::string EvalToString(const std::string& query,
                                xquery::DocumentProvider* docs = nullptr,
                                xquery::ModuleResolver* modules = nullptr,
                                xquery::RpcHandler* rpc = nullptr) {
  auto parsed = xquery::ParseMainModule(query);
  if (!parsed.ok()) return "ERROR: " + parsed.status().ToString();
  xquery::Interpreter::Config config;
  config.documents = docs;
  config.modules = modules;
  config.rpc = rpc;
  xquery::Interpreter interp(config);
  auto result = interp.EvaluateQuery(parsed.value());
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return xdm::SequenceToString(result.value().sequence);
}

}  // namespace xrpc::testing

#endif  // XRPC_TESTS_TEST_UTIL_H_
