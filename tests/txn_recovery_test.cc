// Crash-recovery matrix for the fault-tolerant 2PC layer: every participant
// crash point (after-prepare-log, after-vote, before-commit-apply,
// after-commit-log) and both coordinator crash points (after-votes,
// after-decision-log), each checked for all-or-nothing convergence after
// WAL replay, presumed-abort inquiry, and commit retry. Also covers
// idempotent re-delivery, in-doubt parking/draining, prepared-session
// expiry exemption, and file-backed WAL recovery.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/peer_network.h"
#include "server/rpc_client.h"
#include "server/wsat.h"
#include "tests/test_util.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"
#include "xml/serializer.h"

namespace xrpc::core {
namespace {

using server::CrashPoint;
using server::RunTwoPhaseCommit;
using server::SendWsatMessage;
using server::TwoPhaseCommitOptions;
using server::TxnLog;
using server::WsatOp;

constexpr char kFilmDb[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare function film:countFilms() as xs:integer
  { count(doc("filmDB.xml")//film) };
  declare updating function film:addFilm($name as xs:string,
                                         $actor as xs:string)
  { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
    into doc("filmDB.xml")/films };
)";

constexpr char kUpdateBoth[] = R"(
  declare option xrpc:isolation "repeatable";
  declare option xrpc:timeout "60";
  import module namespace f="films" at "http://x.example.org/film.xq";
  (execute at {"xrpc://y.example.org"} {f:addFilm("A", "X")},
   execute at {"xrpc://z.example.org"} {f:addFilm("B", "Y")}))";

class TxnRecoveryTest : public ::testing::Test {
 protected:
  TxnRecoveryTest() {
    p0_ = net_.AddPeer("p0.example.org");
    y_ = net_.AddPeer("y.example.org");
    z_ = net_.AddPeer("z.example.org");
    for (Peer* p : {y_, z_}) {
      EXPECT_TRUE(p->AddDocument("filmDB.xml", kFilmDb).ok());
    }
    for (Peer* p : {p0_, y_, z_}) {
      EXPECT_TRUE(
          p->RegisterModule(kFilmModule, "http://x.example.org/film.xq")
              .ok());
    }
  }

  /// Films currently visible at `peer` (committed state).
  int Count(Peer* peer) {
    auto report = net_.Execute(
        peer->name(),
        R"(import module namespace f="films"
             at "http://x.example.org/film.xq";
           f:countFilms())");
    EXPECT_TRUE(report.ok()) << report.status();
    if (!report.ok()) return -1;
    return static_cast<int>(report->result[0].atomic().AsInteger());
  }

  /// Runs the canonical two-peer updating query.
  StatusOr<ExecutionReport> Update() {
    return net_.Execute("p0.example.org", kUpdateBoth);
  }

  /// Sends `count` updating calls under `qid` so y_ and z_ each hold a
  /// deferred PUL, without committing (manual 2PC driving).
  void StageUpdates(const soap::QueryId& qid) {
    server::RpcClient::Options opts;
    opts.isolation = server::IsolationLevel::kRepeatable;
    opts.query_id = qid;
    server::RpcClient client(&net_.network(), opts);
    soap::XrpcRequest req;
    req.module_ns = "films";
    req.method = "addFilm";
    req.arity = 2;
    req.updating = true;
    req.calls.push_back(
        {xdm::Sequence{xdm::Item(xdm::AtomicValue::String("A"))},
         xdm::Sequence{xdm::Item(xdm::AtomicValue::String("X"))}});
    ASSERT_TRUE(client.ExecuteBulk(y_->uri(), req).ok());
    ASSERT_TRUE(client.ExecuteBulk(z_->uri(), req).ok());
  }

  soap::QueryId MakeQueryId(const std::string& id) {
    soap::QueryId qid;
    qid.id = id;
    qid.host = p0_->uri();
    qid.timestamp = 1;
    qid.timeout_sec = 60;
    return qid;
  }

  PeerNetwork net_;
  Peer* p0_;
  Peer* y_;
  Peer* z_;
};

// -- Participant crash matrix ----------------------------------------------

TEST_F(TxnRecoveryTest, CrashAfterPrepareLogAbortsEverywhere) {
  z_->InjectCrash(CrashPoint::kAfterPrepareLog);
  auto report = Update();
  ASSERT_TRUE(report.ok()) << report.status();
  // z's vote was lost, so the coordinator aborted the whole transaction.
  EXPECT_FALSE(report->committed);
  EXPECT_TRUE(z_->crashed());
  EXPECT_EQ(Count(y_), 3);

  // z recovers holding a PREPARED record with no decision: inquiry at the
  // coordinator finds nothing on record, hence presumed abort.
  ASSERT_TRUE(z_->Restart().ok());
  EXPECT_EQ(Count(z_), 3);
  EXPECT_EQ(z_->service().in_doubt_count(), 0u);
  EXPECT_EQ(z_->service().isolation().active_sessions(), 0u);
  EXPECT_EQ(z_->service().txn_log().CountAppended(
                TxnLog::RecordType::kAborted),
            1u);
}

TEST_F(TxnRecoveryTest, CrashAfterVoteRecoversViaInquiry) {
  z_->InjectCrash(CrashPoint::kAfterVote);
  auto report = Update();
  ASSERT_TRUE(report.ok()) << report.status();
  // All votes arrived; the decision is durable even though z then died.
  EXPECT_TRUE(report->committed);
  ASSERT_EQ(report->in_doubt.size(), 1u);
  EXPECT_EQ(report->in_doubt[0], z_->uri());
  EXPECT_EQ(Count(y_), 4);
  EXPECT_GE(p0_->service().in_doubt_count(), 1u);

  // z recovers: PREPARED without decision -> inquiry -> committed -> apply.
  ASSERT_TRUE(z_->Restart().ok());
  EXPECT_EQ(Count(z_), 4);
  EXPECT_EQ(z_->service().in_doubt_count(), 0u);

  // The coordinator drains its parked participant with an (idempotent)
  // commit retry and seals the transaction.
  ASSERT_TRUE(p0_->service().RetryInDoubt(&net_.network()).ok());
  EXPECT_EQ(p0_->service().in_doubt_count(), 0u);
  EXPECT_EQ(p0_->service().txn_log().CountAppended(
                TxnLog::RecordType::kCoordEnd),
            1u);
  // Convergence: both peers applied exactly once.
  EXPECT_EQ(Count(y_), 4);
  EXPECT_EQ(Count(z_), 4);
}

TEST_F(TxnRecoveryTest, CrashBeforeCommitApplyRecoversViaInquiry) {
  z_->InjectCrash(CrashPoint::kBeforeCommitApply);
  auto report = Update();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  ASSERT_EQ(report->in_doubt.size(), 1u);
  EXPECT_EQ(Count(y_), 4);

  // Nothing about the commit reached z's WAL; recovery must re-derive the
  // outcome from the coordinator.
  ASSERT_TRUE(z_->Restart().ok());
  EXPECT_EQ(Count(z_), 4);
  EXPECT_EQ(z_->service().in_doubt_count(), 0u);
  ASSERT_TRUE(p0_->service().RetryInDoubt(&net_.network()).ok());
  EXPECT_EQ(p0_->service().in_doubt_count(), 0u);
}

TEST_F(TxnRecoveryTest, CrashAfterCommitLogReplaysWithoutInquiry) {
  z_->InjectCrash(CrashPoint::kAfterCommitLog);
  auto report = Update();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(Count(y_), 4);
  EXPECT_EQ(Count(z_), 3);  // decision durable, effects lost in the crash

  // Replay alone re-applies COMMITTED-without-APPLIED; no transport needed.
  ASSERT_TRUE(z_->service().Restart(nullptr).ok());
  EXPECT_EQ(Count(z_), 4);
  EXPECT_EQ(z_->service().in_doubt_count(), 0u);
  EXPECT_EQ(z_->service().txn_log().CountAppended(
                TxnLog::RecordType::kApplied),
            1u);

  // A second replay must not apply twice (kApplied seals the record).
  ASSERT_TRUE(z_->service().Restart(nullptr).ok());
  EXPECT_EQ(Count(z_), 4);

  ASSERT_TRUE(p0_->service().RetryInDoubt(&net_.network()).ok());
  EXPECT_EQ(Count(y_), 4);
  EXPECT_EQ(Count(z_), 4);
}

// -- Coordinator crash matrix ----------------------------------------------

TEST_F(TxnRecoveryTest, CoordinatorCrashAfterVotesPresumesAbort) {
  soap::QueryId qid = MakeQueryId("coord-crash-1");
  StageUpdates(qid);

  TwoPhaseCommitOptions options;
  options.journal = &p0_->service();
  options.crash_point = TwoPhaseCommitOptions::CrashPoint::kAfterVotes;
  auto outcome = RunTwoPhaseCommit(
      &net_.network(), {y_->uri(), z_->uri()}, qid.id, options);
  EXPECT_FALSE(outcome.ok());  // the driver died before deciding

  // Both participants hold prepared, in-doubt transactions exempt from
  // expiry. The restarted coordinator has nothing on record, so their
  // recovery inquiries answer "aborted".
  EXPECT_EQ(y_->service().isolation().active_sessions(), 1u);
  ASSERT_TRUE(p0_->Restart().ok());
  ASSERT_TRUE(y_->Restart().ok());
  ASSERT_TRUE(z_->Restart().ok());
  EXPECT_EQ(Count(y_), 3);
  EXPECT_EQ(Count(z_), 3);
  EXPECT_EQ(y_->service().in_doubt_count(), 0u);
  EXPECT_EQ(z_->service().in_doubt_count(), 0u);
}

TEST_F(TxnRecoveryTest, CoordinatorCrashAfterDecisionLogRedrivesCommit) {
  soap::QueryId qid = MakeQueryId("coord-crash-2");
  StageUpdates(qid);

  TwoPhaseCommitOptions options;
  options.journal = &p0_->service();
  options.crash_point = TwoPhaseCommitOptions::CrashPoint::kAfterDecisionLog;
  auto outcome = RunTwoPhaseCommit(
      &net_.network(), {y_->uri(), z_->uri()}, qid.id, options);
  EXPECT_FALSE(outcome.ok());  // died before sending any Commit

  // The decision survived in the coordinator's WAL; recovery re-drives
  // Commit to every logged participant (idempotently).
  ASSERT_TRUE(p0_->Restart().ok());
  EXPECT_EQ(Count(y_), 4);
  EXPECT_EQ(Count(z_), 4);
  EXPECT_EQ(p0_->service().in_doubt_count(), 0u);
  EXPECT_EQ(p0_->service().txn_log().CountAppended(
                TxnLog::RecordType::kCoordEnd),
            1u);
}

// -- Idempotency and in-doubt behavior -------------------------------------

TEST_F(TxnRecoveryTest, RedeliveredVerbsAnswerIdempotently) {
  soap::QueryId qid = MakeQueryId("idem-1");
  StageUpdates(qid);
  TwoPhaseCommitOptions options;
  options.journal = &p0_->service();
  auto outcome = RunTwoPhaseCommit(
      &net_.network(), {y_->uri(), z_->uri()}, qid.id, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->committed);
  EXPECT_EQ(Count(y_), 4);

  // A re-delivered Commit (lost ack) succeeds without re-applying.
  auto again = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kCommit,
                               qid.id);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->ok);
  EXPECT_EQ(Count(y_), 4);
  // A conflicting Rollback after the commit is refused.
  auto rb = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kRollback,
                            qid.id);
  ASSERT_TRUE(rb.ok());
  EXPECT_FALSE(rb->ok);
  // Inquiry reports the decision.
  auto inq = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kInquire,
                             qid.id);
  ASSERT_TRUE(inq.ok());
  EXPECT_EQ(inq->outcome, "committed");
  EXPECT_GT(net_.metrics().txn_idempotent_replies(), 0);
}

TEST_F(TxnRecoveryTest, CommitToUnknownQueryIdPresumesAbort) {
  auto reply = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kCommit,
                               "never-heard-of-it");
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
  auto inq = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kInquire,
                             "never-heard-of-it");
  ASSERT_TRUE(inq.ok());
  EXPECT_EQ(inq->outcome, "aborted");
}

/// Transport decorator dropping the first `failures` Commit messages
/// toward a chosen destination (lost-in-transit simulation, targeted at
/// phase 2 only).
class CommitDropTransport : public net::Transport {
 public:
  CommitDropTransport(net::Transport* inner, std::string dest, int failures)
      : inner_(inner), dest_(std::move(dest)), remaining_(failures) {}

  StatusOr<net::PostResult> Post(const std::string& dest_uri,
                                 const std::string& body) override {
    if (remaining_ > 0 && dest_uri.find(dest_) != std::string::npos &&
        body.find("op=\"commit\"") != std::string::npos) {
      --remaining_;
      return Status::NetworkError("injected commit drop");
    }
    return inner_->Post(dest_uri, body);
  }

 private:
  net::Transport* inner_;
  std::string dest_;
  int remaining_;
};

TEST_F(TxnRecoveryTest, CommitRetryDrainsTransientFailure) {
  soap::QueryId qid = MakeQueryId("retry-1");
  StageUpdates(qid);

  // The first two Commits toward z vanish; the bounded retry loop keeps
  // re-sending (advancing backoff) until the third lands.
  CommitDropTransport flaky(&net_.network(), "z.example.org", 2);
  int64_t slept_us = 0;
  TwoPhaseCommitOptions options;
  options.journal = &p0_->service();
  options.commit_retry =
      net::RetryPolicy{.max_attempts = 4, .initial_backoff_us = 100};
  options.sleep = [&slept_us](int64_t us) { slept_us += us; };
  options.metrics = &net_.metrics();
  auto outcome = RunTwoPhaseCommit(&flaky, {y_->uri(), z_->uri()}, qid.id,
                                   options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->committed);
  EXPECT_TRUE(outcome->in_doubt.empty());
  EXPECT_EQ(outcome->commit_retries, 2);
  EXPECT_GT(slept_us, 0);
  EXPECT_EQ(Count(y_), 4);
  EXPECT_EQ(Count(z_), 4);
  EXPECT_GE(net_.metrics().txn_commit_retries(), 2);
  EXPECT_EQ(p0_->service().in_doubt_count(), 0u);
}

TEST_F(TxnRecoveryTest, PreparedSessionSurvivesExpiry) {
  soap::QueryId qid = MakeQueryId("expiry-1");
  qid.timeout_sec = 0;  // expires immediately
  StageUpdates(qid);
  // Not yet prepared: expiry may (and does) collect it... unless Prepare
  // got there first.
  auto vote = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kPrepare,
                              qid.id);
  ASSERT_TRUE(vote.ok());
  if (vote->ok) {
    y_->service().isolation().ExpireSessions();
    // The prepared session is exempt: the PUL is promised to the
    // coordinator and must stay applicable.
    EXPECT_EQ(y_->service().isolation().active_sessions(), 1u);
    auto done = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kCommit,
                                qid.id);
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(done->ok);
    EXPECT_EQ(Count(y_), 4);
  }
}

TEST_F(TxnRecoveryTest, FileBackedWalSurvivesRestart) {
  const std::string path = xrpc::testing::UniqueTempPath("txn_recovery_z.wal");
  std::remove(path.c_str());
  ASSERT_TRUE(z_->EnableWal(path).ok());

  z_->InjectCrash(CrashPoint::kAfterCommitLog);
  auto report = Update();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(Count(z_), 3);

  // The decision is on disk; replay from the file re-applies it.
  ASSERT_TRUE(z_->Restart().ok());
  EXPECT_EQ(Count(z_), 4);

  TxnLog::ReplayStats stats;
  auto records = TxnLog::ReplayFile(path, &stats);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.checksum_error);
  bool saw_prepared = false, saw_committed = false, saw_applied = false;
  for (const auto& r : records.value()) {
    saw_prepared |= r.type == TxnLog::RecordType::kPrepared;
    saw_committed |= r.type == TxnLog::RecordType::kCommitted;
    saw_applied |= r.type == TxnLog::RecordType::kApplied;
  }
  EXPECT_TRUE(saw_prepared);
  EXPECT_TRUE(saw_committed);
  EXPECT_TRUE(saw_applied);
}

// -- Replicated writes: partition during commit heals via repair ------------

TEST(ShardedRecoveryTest, PartitionDuringCommitHealsViaRepair) {
  // All-copies write over a replicated shard (DESIGN.md §17): every Commit
  // toward the replica copy is lost in transit. The decision is durable and
  // the primary applies; the replica parks its prepared PUL in doubt. Once
  // the partition heals, Repair() resolves the park by coordinator inquiry
  // and the copy converges byte-identically with the primary — applying the
  // PUL exactly once.
  PeerNetwork net;
  xmark::ShardLoadOptions opts;
  opts.num_shards = 3;
  opts.replication_factor = 2;
  xmark::XmarkConfig cfg;
  cfg.num_persons = 12;
  cfg.num_closed_auctions = 16;
  cfg.num_matches = 4;
  cfg.annotation_bytes = 8;
  auto loaded = xmark::LoadShardedXmark(&net, cfg, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Peer* p0 = net.AddPeer("p0", EngineKind::kInterpreter);
  constexpr char kShardUpd[] = R"(
    module namespace u = "upd_part";
    declare updating function u:stamp()
    { insert nodes <stamp/> into doc("auctions.xml")/site };
  )";
  for (Peer* p : loaded->peers) {
    ASSERT_TRUE(p->RegisterModule(kShardUpd, "u.xq").ok());
  }
  ASSERT_TRUE(p0->RegisterModule(kShardUpd, "u.xq").ok());

  // Stage the updating call at both copies of shard 0 under one queryID,
  // each request scoped to the fragment it must resolve.
  ShardedCollection c;
  int64_t version = 0;
  ASSERT_TRUE(net.catalog().Snapshot("auctions.xml", &c, &version));
  ASSERT_FALSE(c.shards[0].replicas.empty());
  const std::string primary = c.shards[0].peer_uri;
  const std::string replica = c.shards[0].replicas[0];
  const std::string frag = c.shards[0].doc_name;
  soap::QueryId qid;
  qid.id = "partition-1";
  qid.host = p0->uri();
  qid.timestamp = 1;
  qid.timeout_sec = 60;
  server::RpcClient::Options copts;
  copts.isolation = server::IsolationLevel::kRepeatable;
  copts.query_id = qid;
  server::RpcClient client(&net.network(), copts);
  soap::XrpcRequest req;
  req.module_ns = "upd_part";
  req.method = "stamp";
  req.arity = 0;
  req.updating = true;
  req.calls.emplace_back();
  req.shard = soap::XrpcRequest::ShardScope{
      "auctions.xml", 0, version,
      net.catalog().FragmentDataVersion("auctions.xml", 0)};
  ASSERT_TRUE(client.ExecuteBulk(primary, req).ok());
  ASSERT_TRUE(client.ExecuteBulk(replica, req).ok());

  // Phase 2 partition: every Commit toward the replica vanishes; the
  // bounded retry exhausts and parks the participant in doubt.
  CommitDropTransport flaky(&net.network(), replica, /*failures=*/1000);
  int64_t slept_us = 0;
  TwoPhaseCommitOptions options;
  options.journal = &p0->service();
  options.commit_retry =
      net::RetryPolicy{.max_attempts = 2, .initial_backoff_us = 100};
  options.sleep = [&slept_us](int64_t us) { slept_us += us; };
  auto outcome =
      RunTwoPhaseCommit(&flaky, {primary, replica}, qid.id, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->committed);
  ASSERT_EQ(outcome->in_doubt.size(), 1u);
  EXPECT_EQ(outcome->in_doubt[0], replica);
  // What PeerNetwork::Execute does on commit: advance the authoritative
  // fragment versions from the yes-votes' piggybacked write sets.
  for (const server::WrittenFragment& f : outcome->fragments) {
    net.catalog().AdvanceFragmentDataVersion(f.collection, f.shard_index,
                                             f.version);
  }
  EXPECT_EQ(net.catalog().FragmentDataVersion("auctions.xml", 0), 1u);

  auto peer_of = [&](const std::string& uri) {
    return net.GetPeer(uri.substr(std::string("xrpc://").size()));
  };
  Peer* primary_peer = peer_of(primary);
  Peer* replica_peer = peer_of(replica);
  ASSERT_NE(primary_peer, nullptr);
  ASSERT_NE(replica_peer, nullptr);
  auto frag_bytes = [&](Peer* p) {
    auto d = p->database().GetDocument(frag);
    if (!d.ok()) return std::string("<missing>");
    return xml::SerializeNode(*d.value());
  };
  // The primary applied; the partitioned replica still serves pre-commit
  // bytes and lags the authoritative data version.
  EXPECT_EQ(primary_peer->database().AppliedDataVersion(frag), 1u);
  EXPECT_LT(replica_peer->database().AppliedDataVersion(frag), 1u);
  EXPECT_NE(frag_bytes(primary_peer), frag_bytes(replica_peer));

  // Heal: the replica repairs over the (no longer partitioned) network.
  ASSERT_TRUE(replica_peer->Repair().ok());
  EXPECT_EQ(replica_peer->database().AppliedDataVersion(frag), 1u);
  EXPECT_EQ(frag_bytes(replica_peer), frag_bytes(primary_peer));
  EXPECT_NE(frag_bytes(replica_peer).find("<stamp/>"), std::string::npos);
  EXPECT_EQ(replica_peer->service().isolation().active_sessions(), 0u);

  // The coordinator drains its parked participant with an idempotent
  // commit retry; the replica must not apply a second time.
  ASSERT_TRUE(p0->service().RetryInDoubt(&net.network()).ok());
  EXPECT_EQ(p0->service().in_doubt_count(), 0u);
  EXPECT_EQ(frag_bytes(replica_peer), frag_bytes(primary_peer));
}

TEST_F(TxnRecoveryTest, ConcurrentCommitRedeliveryAppliesOnce) {
  soap::QueryId qid = MakeQueryId("race-1");
  StageUpdates(qid);
  auto vote_y = SendWsatMessage(&net_.network(), y_->uri(), WsatOp::kPrepare,
                                qid.id);
  ASSERT_TRUE(vote_y.ok());
  ASSERT_TRUE(vote_y->ok);

  // A herd of duplicate Commits (coordinator retries racing each other)
  // must commit exactly once.
  constexpr int kThreads = 8;
  std::vector<std::thread> herd;
  std::atomic<int> acks{0};
  for (int i = 0; i < kThreads; ++i) {
    herd.emplace_back([&] {
      auto done = SendWsatMessage(&net_.network(), y_->uri(),
                                  WsatOp::kCommit, qid.id);
      if (done.ok() && done->ok) ++acks;
    });
  }
  for (std::thread& t : herd) t.join();
  EXPECT_EQ(acks.load(), kThreads);  // all idempotently acknowledged
  EXPECT_EQ(Count(y_), 4);           // applied exactly once
}

}  // namespace
}  // namespace xrpc::core
