#include "core/catalog.h"

#include <gtest/gtest.h>

namespace xrpc::core {
namespace {

ShardedCollection HashCollection(int num_shards) {
  ShardedCollection c;
  c.name = "auctions.xml";
  c.kind = PartitionKind::kHash;
  c.partition_key = "buyer/@person";
  c.route_param = 0;
  for (int k = 0; k < num_shards; ++k) {
    c.shards.push_back(
        {k, "xrpc://shard" + std::to_string(k),
         "auctions.xml." + std::to_string(k), 0, 0});
  }
  return c;
}

TEST(CatalogTest, RegisterAndFind) {
  Catalog catalog;
  EXPECT_EQ(catalog.version(), 0);
  ASSERT_TRUE(catalog.RegisterCollection(HashCollection(4)).ok());
  EXPECT_EQ(catalog.version(), 1);
  const ShardedCollection* c = catalog.Find("auctions.xml");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->shards.size(), 4u);
  EXPECT_EQ(catalog.Find("nope.xml"), nullptr);
  EXPECT_EQ(catalog.CollectionNames().size(), 1u);
}

TEST(CatalogTest, RegistrationValidation) {
  Catalog catalog;
  ShardedCollection empty;
  empty.name = "x";
  EXPECT_FALSE(catalog.RegisterCollection(empty).ok());

  ShardedCollection unnamed = HashCollection(2);
  unnamed.name.clear();
  EXPECT_FALSE(catalog.RegisterCollection(unnamed).ok());

  ShardedCollection sparse = HashCollection(2);
  sparse.shards[1].index = 5;
  EXPECT_FALSE(catalog.RegisterCollection(sparse).ok());

  ShardedCollection no_peer = HashCollection(2);
  no_peer.shards[0].peer_uri.clear();
  EXPECT_FALSE(catalog.RegisterCollection(no_peer).ok());
}

TEST(CatalogTest, HashRoutingIsStableAndInRange) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterCollection(HashCollection(16)).ok());
  const ShardedCollection* c = catalog.Find("auctions.xml");
  ASSERT_NE(c, nullptr);
  for (int i = 0; i < 100; ++i) {
    std::string key = "person" + std::to_string(i);
    auto a = catalog.RouteKey(*c, key);
    auto b = catalog.RouteKey(*c, key);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value(), b.value());
    EXPECT_GE(a.value(), 0);
    EXPECT_LT(a.value(), 16);
    // The router and the loader must agree: RouteKey IS ShardHash mod n.
    EXPECT_EQ(a.value(), static_cast<int>(ShardHash(key) % 16));
  }
}

TEST(CatalogTest, RangeRouting) {
  Catalog catalog;
  ShardedCollection c;
  c.name = "persons.xml";
  c.kind = PartitionKind::kRange;
  c.partition_key = "@id";
  c.route_param = 0;
  c.shards.push_back({0, "xrpc://a", "persons.xml.0", 0, 100});
  c.shards.push_back({1, "xrpc://b", "persons.xml.1", 100, 250});
  ASSERT_TRUE(catalog.RegisterCollection(c).ok());
  const ShardedCollection* reg = catalog.Find("persons.xml");
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(catalog.RouteKey(*reg, "person0").value(), 0);
  EXPECT_EQ(catalog.RouteKey(*reg, "person99").value(), 0);
  EXPECT_EQ(catalog.RouteKey(*reg, "person100").value(), 1);
  EXPECT_EQ(catalog.RouteKey(*reg, "person249").value(), 1);
  // Out of every range, or no trailing integer: routing error (callers
  // broadcast instead of pruning).
  EXPECT_FALSE(catalog.RouteKey(*reg, "person250").ok());
  EXPECT_FALSE(catalog.RouteKey(*reg, "alice").ok());
}

TEST(CatalogTest, RangeValidationRejectsOverlapsAndEmptyRanges) {
  Catalog catalog;
  ShardedCollection c;
  c.name = "r";
  c.kind = PartitionKind::kRange;
  c.shards.push_back({0, "xrpc://a", "r.0", 0, 100});
  c.shards.push_back({1, "xrpc://b", "r.1", 50, 150});  // overlaps
  EXPECT_FALSE(catalog.RegisterCollection(c).ok());

  c.shards[1] = {1, "xrpc://b", "r.1", 100, 100};  // empty
  EXPECT_FALSE(catalog.RegisterCollection(c).ok());
}

TEST(CatalogTest, ShardUriHelpers) {
  EXPECT_TRUE(Catalog::IsShardUri("shard:auctions.xml"));
  EXPECT_FALSE(Catalog::IsShardUri("xrpc://b"));
  EXPECT_FALSE(Catalog::IsShardUri("shard:"));  // empty collection name
  EXPECT_EQ(Catalog::CollectionOf("shard:auctions.xml"), "auctions.xml");
  EXPECT_EQ(Catalog::ShardUri("auctions.xml"), "shard:auctions.xml");
}

TEST(CatalogTest, ReRegistrationBumpsVersionAndReplaces) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterCollection(HashCollection(4)).ok());
  ASSERT_TRUE(catalog.RegisterCollection(HashCollection(16)).ok());
  EXPECT_EQ(catalog.version(), 2);
  EXPECT_EQ(catalog.Find("auctions.xml")->shards.size(), 16u);
}

}  // namespace
}  // namespace xrpc::core
