// End-to-end tests of the peer runtime: XRPC service over the simulated
// network, isolation levels (rules RFr/R'Fr/RFu/R'Fu), snapshot expiry,
// WS-AT two-phase commit including aborts and conflicts, and the
// participating-peers piggyback.

#include <gtest/gtest.h>

#include <memory>

#include "net/simulated_network.h"
#include "server/rpc_client.h"
#include "server/xrpc_service.h"
#include "xml/serializer.h"

namespace xrpc::server {
namespace {

using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;

constexpr char kFilmDb[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare function film:filmsByActor($actor as xs:string) as node()*
  { doc("filmDB.xml")//name[../actor=$actor] };
  declare function film:countFilms() as xs:integer
  { count(doc("filmDB.xml")//film) };
  declare updating function film:addFilm($name as xs:string,
                                         $actor as xs:string)
  { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
    into doc("filmDB.xml")/films };
)";

// One simulated XRPC peer: database + registry + interpreter engine +
// service, registered on a shared SimulatedNetwork.
class TestPeer {
 public:
  TestPeer(const std::string& name, net::SimulatedNetwork* net)
      : uri_("xrpc://" + name),
        engine_(),
        service_({uri_}, &db_, &registry_, &engine_, net) {
    net->RegisterPeer(net::ParseXrpcUri(uri_).value(), &service_);
  }

  Database& db() { return db_; }
  ModuleRegistry& registry() { return registry_; }
  XrpcService& service() { return service_; }
  const std::string& uri() const { return uri_; }

 private:
  std::string uri_;
  Database db_;
  ModuleRegistry registry_;
  InterpreterEngine engine_;
  XrpcService service_;
};

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : peer_("y.example.org", &net_) {
    EXPECT_TRUE(peer_.db().PutDocumentText("filmDB.xml", kFilmDb).ok());
    EXPECT_TRUE(peer_.registry().RegisterModule(kFilmModule).ok());
  }

  xquery::RpcCall FilmsByActor(const std::string& actor) {
    xquery::RpcCall call;
    call.dest_uri = peer_.uri();
    call.module_ns = "films";
    call.function = xml::QName("films", "filmsByActor");
    call.args = {Sequence{Item(AtomicValue::String(actor))}};
    return call;
  }

  soap::XrpcRequest AddFilmRequest(const std::string& name,
                                   const std::string& actor) {
    soap::XrpcRequest req;
    req.module_ns = "films";
    req.method = "addFilm";
    req.arity = 2;
    req.updating = true;
    req.calls.push_back({Sequence{Item(AtomicValue::String(name))},
                         Sequence{Item(AtomicValue::String(actor))}});
    return req;
  }

  net::SimulatedNetwork net_;
  TestPeer peer_;
};

TEST_F(ServerTest, SingleCallRoundTrip) {
  RpcClient client(&net_, {});
  auto result = client.Execute(FilmsByActor("Sean Connery"));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(xml::SerializeNode(*result.value()[0].node()),
            "<name>The Rock</name>");
  EXPECT_EQ(client.requests_sent(), 1);
  EXPECT_EQ(peer_.service().requests_handled(), 1);
  EXPECT_EQ(*client.participating_peers().begin(), peer_.uri());
}

TEST_F(ServerTest, BulkRequestExecutesAllCalls) {
  RpcClient client(&net_, {});
  soap::XrpcRequest req;
  req.module_ns = "films";
  req.method = "filmsByActor";
  req.arity = 1;
  req.calls.push_back({Sequence{Item(AtomicValue::String("Julie Andrews"))}});
  req.calls.push_back({Sequence{Item(AtomicValue::String("Sean Connery"))}});
  req.calls.push_back(
      {Sequence{Item(AtomicValue::String("Gerard Depardieu"))}});
  auto response = client.ExecuteBulk(peer_.uri(), std::move(req));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->results.size(), 3u);
  EXPECT_TRUE(response->results[0].empty());
  EXPECT_EQ(response->results[1].size(), 2u);
  EXPECT_EQ(response->results[2].size(), 1u);
  // One network message for three calls.
  EXPECT_EQ(net_.messages_sent(), 1);
  EXPECT_EQ(peer_.service().calls_handled(), 3);
}

TEST_F(ServerTest, UnknownModuleYieldsSoapFault) {
  RpcClient client(&net_, {});
  xquery::RpcCall call = FilmsByActor("x");
  call.module_ns = "no-such-module";
  auto result = client.Execute(call);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSoapFault);
  EXPECT_NE(result.status().message().find("could not load module"),
            std::string::npos);
}

TEST_F(ServerTest, UnknownFunctionYieldsSoapFault) {
  RpcClient client(&net_, {});
  xquery::RpcCall call = FilmsByActor("x");
  call.function = xml::QName("films", "noSuchFunction");
  auto result = client.Execute(call);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSoapFault);
}

TEST_F(ServerTest, IsolationNoneSeesLatestState) {
  // Rule RFr: each request sees the current database state.
  RpcClient client(&net_, {});
  auto r1 = client.Execute(FilmsByActor("Sean Connery"));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 2u);
  // Another transaction replaces the database between the two calls.
  ASSERT_TRUE(peer_.db()
                  .PutDocumentText("filmDB.xml",
                                   "<films><film><name>Dr. No</name>"
                                   "<actor>Sean Connery</actor></film>"
                                   "</films>")
                  .ok());
  auto r2 = client.Execute(FilmsByActor("Sean Connery"));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u);
}

TEST_F(ServerTest, RepeatableReadPinsSnapshot) {
  // Rule R'Fr: both requests of the same query see db_p(t_q^p).
  RpcClient::Options opts;
  opts.isolation = IsolationLevel::kRepeatable;
  soap::QueryId qid;
  qid.id = "query-1";
  qid.host = "xrpc://p0";
  qid.timeout_sec = 60;
  opts.query_id = qid;
  RpcClient client(&net_, opts);

  auto r1 = client.Execute(FilmsByActor("Sean Connery"));
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1->size(), 2u);
  ASSERT_TRUE(
      peer_.db().PutDocumentText("filmDB.xml", "<films/>").ok());
  auto r2 = client.Execute(FilmsByActor("Sean Connery"));
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->size(), 2u);  // same snapshot, unaffected by the update
  EXPECT_EQ(peer_.service().isolation().active_sessions(), 1u);

  // A different query sees the new state.
  RpcClient fresh(&net_, {});
  auto r3 = fresh.Execute(FilmsByActor("Sean Connery"));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 0u);
}

TEST_F(ServerTest, ExpiredQueryIdIsRejected) {
  int64_t fake_now = 1'000'000;
  peer_.service().isolation().SetTimeSource([&] { return fake_now; });

  RpcClient::Options opts;
  opts.isolation = IsolationLevel::kRepeatable;
  soap::QueryId qid;
  qid.id = "query-2";
  qid.host = "xrpc://p0";
  qid.timestamp = 77;
  qid.timeout_sec = 10;
  opts.query_id = qid;
  RpcClient client(&net_, opts);

  ASSERT_TRUE(client.Execute(FilmsByActor("Sean Connery")).ok());
  fake_now += 11'000'000;  // advance past the 10 s timeout
  auto late = client.Execute(FilmsByActor("Sean Connery"));
  ASSERT_FALSE(late.ok());
  EXPECT_NE(late.status().message().find("expired"), std::string::npos);
  // The expired id is remembered: even a brand-new request with the same
  // id errors out.
  auto again = client.Execute(FilmsByActor("Sean Connery"));
  EXPECT_FALSE(again.ok());
}

TEST_F(ServerTest, UpdatingCallWithoutIsolationAppliesImmediately) {
  // Rule RFu: the pending update list is applied per request.
  RpcClient client(&net_, {});
  uint64_t version_before = peer_.db().VersionOf("filmDB.xml");
  auto response =
      client.ExecuteBulk(peer_.uri(), AddFilmRequest("Dr. No", "Sean Connery"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_GT(peer_.db().VersionOf("filmDB.xml"), version_before);

  auto count = client.Execute([this] {
    xquery::RpcCall call;
    call.dest_uri = peer_.uri();
    call.module_ns = "films";
    call.function = xml::QName("films", "countFilms");
    return call;
  }());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value()[0].atomic().AsInteger(), 4);
}

TEST_F(ServerTest, IsolatedUpdateDeferredUntilCommit) {
  // Rule R'Fu + 2PC: updates stay invisible until Commit.
  RpcClient::Options opts;
  opts.isolation = IsolationLevel::kRepeatable;
  soap::QueryId qid;
  qid.id = "upd-1";
  qid.host = "xrpc://p0";
  qid.timeout_sec = 60;
  opts.query_id = qid;
  RpcClient client(&net_, opts);

  ASSERT_TRUE(
      client.ExecuteBulk(peer_.uri(), AddFilmRequest("Dr. No", "Sean Connery"))
          .ok());
  // Not yet visible.
  RpcClient reader(&net_, {});
  xquery::RpcCall count_call;
  count_call.dest_uri = peer_.uri();
  count_call.module_ns = "films";
  count_call.function = xml::QName("films", "countFilms");
  auto before = reader.Execute(count_call);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value()[0].atomic().AsInteger(), 3);

  // Commit through WS-AT.
  std::vector<std::string> participants(client.participating_peers().begin(),
                                        client.participating_peers().end());
  auto outcome = RunTwoPhaseCommit(&net_, participants, "upd-1");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->committed);
  EXPECT_EQ(outcome->prepares_sent, 1);
  EXPECT_EQ(outcome->commits_sent, 1);
  EXPECT_EQ(peer_.service().txn_log().CountAppended(
                TxnLog::RecordType::kPrepared),
            1u);
  EXPECT_EQ(peer_.service().txn_log().CountAppended(
                TxnLog::RecordType::kCommitted),
            1u);

  auto after = reader.Execute(count_call);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value()[0].atomic().AsInteger(), 4);
  EXPECT_EQ(peer_.service().isolation().active_sessions(), 0u);
}

TEST_F(ServerTest, PrepareFailureAbortsDistributedTransaction) {
  RpcClient::Options opts;
  opts.isolation = IsolationLevel::kRepeatable;
  soap::QueryId qid;
  qid.id = "upd-2";
  qid.host = "xrpc://p0";
  qid.timeout_sec = 60;
  opts.query_id = qid;
  RpcClient client(&net_, opts);
  ASSERT_TRUE(
      client.ExecuteBulk(peer_.uri(), AddFilmRequest("Dr. No", "Sean Connery"))
          .ok());

  peer_.service().txn_log().FailNextAppend(
      Status::TransactionError("disk full"));
  auto outcome = RunTwoPhaseCommit(&net_, {peer_.uri()}, "upd-2");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->committed);
  EXPECT_NE(outcome->abort_reason.find("disk full"), std::string::npos);

  // The database is untouched and the session is gone.
  RpcClient reader(&net_, {});
  xquery::RpcCall count_call;
  count_call.dest_uri = peer_.uri();
  count_call.module_ns = "films";
  count_call.function = xml::QName("films", "countFilms");
  auto count = reader.Execute(count_call);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value()[0].atomic().AsInteger(), 3);
  EXPECT_EQ(peer_.service().isolation().active_sessions(), 0u);
}

TEST_F(ServerTest, WriteWriteConflictAbortsAtPrepare) {
  // First-committer-wins: a transaction that committed after our snapshot
  // forces an abort at Prepare.
  RpcClient::Options opts;
  opts.isolation = IsolationLevel::kRepeatable;
  soap::QueryId qid;
  qid.id = "upd-3";
  qid.host = "xrpc://p0";
  qid.timeout_sec = 60;
  opts.query_id = qid;
  RpcClient client(&net_, opts);
  ASSERT_TRUE(
      client.ExecuteBulk(peer_.uri(), AddFilmRequest("Dr. No", "Sean Connery"))
          .ok());

  // Meanwhile another (non-isolated) update commits.
  RpcClient other(&net_, {});
  ASSERT_TRUE(other
                  .ExecuteBulk(peer_.uri(),
                               AddFilmRequest("Thunderball", "Sean Connery"))
                  .ok());

  auto outcome = RunTwoPhaseCommit(&net_, {peer_.uri()}, "upd-3");
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->committed);
  EXPECT_NE(outcome->abort_reason.find("conflict"), std::string::npos);
}

TEST_F(ServerTest, NestedCallsPiggybackParticipants) {
  // y calls z from within a module function; p0 must learn about z from
  // the piggybacked peer list.
  TestPeer z("z.example.org", &net_);
  ASSERT_TRUE(z.db().PutDocumentText("filmDB.xml", kFilmDb).ok());
  ASSERT_TRUE(z.registry().RegisterModule(kFilmModule).ok());
  ASSERT_TRUE(peer_.registry()
                  .RegisterModule(R"(
    module namespace fwd = "forward";
    import module namespace film = "films" at "film.xq";
    declare function fwd:remoteCount() as xs:integer
    { execute at {"xrpc://z.example.org"} {film:countFilms()} };)")
                  .ok());

  RpcClient client(&net_, {});
  xquery::RpcCall call;
  call.dest_uri = peer_.uri();
  call.module_ns = "forward";
  call.function = xml::QName("forward", "remoteCount");
  auto result = client.Execute(call);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value()[0].atomic().AsInteger(), 3);
  EXPECT_EQ(client.participating_peers().count("xrpc://z.example.org"), 1u);
  EXPECT_EQ(client.participating_peers().count("xrpc://y.example.org"), 1u);
}

TEST_F(ServerTest, NetworkTimeAccumulatesOnClient) {
  RpcClient client(&net_, {});
  ASSERT_TRUE(client.Execute(FilmsByActor("Sean Connery")).ok());
  ASSERT_TRUE(client.Execute(FilmsByActor("Julie Andrews")).ok());
  EXPECT_GE(client.network_micros(), 4 * net_.profile().latency_us);
  EXPECT_EQ(client.requests_sent(), 2);
}

}  // namespace
}  // namespace xrpc::server
