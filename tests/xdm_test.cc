// Unit tests for the XDM layer: atomic values, casting, comparison, items,
// sequences, effective boolean value, document-order sorting.

#include <gtest/gtest.h>

#include "xdm/atomic.h"
#include "xdm/item.h"
#include "xml/parser.h"

namespace xrpc::xdm {
namespace {

TEST(AtomicValue, LexicalForms) {
  EXPECT_EQ(AtomicValue::Integer(42).ToString(), "42");
  EXPECT_EQ(AtomicValue::Integer(-7).ToString(), "-7");
  EXPECT_EQ(AtomicValue::Boolean(true).ToString(), "true");
  EXPECT_EQ(AtomicValue::Boolean(false).ToString(), "false");
  EXPECT_EQ(AtomicValue::Double(3.0).ToString(), "3");
  EXPECT_EQ(AtomicValue::Double(3.1).ToString(), "3.1");
  EXPECT_EQ(AtomicValue::String("abc").ToString(), "abc");
}

TEST(AtomicValue, TypeNamesRoundTrip) {
  for (AtomicType t :
       {AtomicType::kUntypedAtomic, AtomicType::kString, AtomicType::kBoolean,
        AtomicType::kInteger, AtomicType::kDecimal, AtomicType::kDouble,
        AtomicType::kQName, AtomicType::kDate, AtomicType::kDateTime,
        AtomicType::kAnyUri}) {
    auto parsed = AtomicTypeFromName(AtomicTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
}

TEST(AtomicValue, CastStringToNumeric) {
  auto i = AtomicValue::String("42").CastTo(AtomicType::kInteger);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i.value().AsInteger(), 42);
  auto d = AtomicValue::String(" 3.5 ").CastTo(AtomicType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value().AsDouble(), 3.5);
  EXPECT_FALSE(AtomicValue::String("abc").CastTo(AtomicType::kInteger).ok());
}

TEST(AtomicValue, CastNumericTruncates) {
  auto i = AtomicValue::Double(3.9).CastTo(AtomicType::kInteger);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i.value().AsInteger(), 3);
  auto j = AtomicValue::Double(-3.9).CastTo(AtomicType::kInteger);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().AsInteger(), -3);
}

TEST(AtomicValue, CastBoolean) {
  EXPECT_TRUE(
      AtomicValue::String("true").CastTo(AtomicType::kBoolean)->AsBoolean());
  EXPECT_FALSE(
      AtomicValue::String("0").CastTo(AtomicType::kBoolean)->AsBoolean());
  EXPECT_FALSE(AtomicValue::String("yes").CastTo(AtomicType::kBoolean).ok());
  EXPECT_TRUE(
      AtomicValue::Integer(2).CastTo(AtomicType::kBoolean)->AsBoolean());
}

TEST(AtomicValue, UntypedComparesAsDoubleAgainstNumeric) {
  auto c = CompareAtomic(AtomicValue::Untyped("10"), AtomicValue::Integer(9));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c.value(), 0);
  // As strings "10" < "9"; numeric promotion must win here.
}

TEST(AtomicValue, UntypedComparesAsStringAgainstString) {
  auto c =
      CompareAtomic(AtomicValue::Untyped("10"), AtomicValue::String("9"));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(c.value(), 0);
}

TEST(AtomicValue, IncomparableTypesError) {
  EXPECT_FALSE(
      CompareAtomic(AtomicValue::Boolean(true), AtomicValue::Integer(1)).ok());
}

TEST(AtomicValue, NumericPromotion) {
  auto c = CompareAtomic(AtomicValue::Integer(2), AtomicValue::Double(2.0));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), 0);
}

TEST(Item, AtomizeNodeYieldsUntyped) {
  auto doc = xml::ParseXml("<a>42</a>");
  ASSERT_TRUE(doc.ok());
  Item item = Item::Node(doc.value());
  AtomicValue v = item.Atomize();
  EXPECT_EQ(v.type(), AtomicType::kUntypedAtomic);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(Item, AnchorKeepsTreeAlive) {
  Item leaf;
  {
    auto doc = xml::ParseXml("<a><b>x</b></a>");
    ASSERT_TRUE(doc.ok());
    xml::Node* b = doc.value()->children()[0]->children()[0].get();
    leaf = Item::NodeInTree(b, doc.value());
    // `doc` goes out of scope; the anchor must keep the tree alive.
  }
  EXPECT_EQ(leaf.node()->StringValue(), "x");
  EXPECT_EQ(leaf.node()->Root()->kind(), xml::NodeKind::kDocument);
}

TEST(EffectiveBooleanValueTest, Rules) {
  EXPECT_FALSE(EffectiveBooleanValue({}).value());
  EXPECT_TRUE(EffectiveBooleanValue(SingletonBool(true)).value());
  EXPECT_FALSE(EffectiveBooleanValue(SingletonBool(false)).value());
  EXPECT_FALSE(EffectiveBooleanValue(SingletonString("")).value());
  EXPECT_TRUE(EffectiveBooleanValue(SingletonString("x")).value());
  EXPECT_FALSE(EffectiveBooleanValue(SingletonInt(0)).value());
  EXPECT_TRUE(EffectiveBooleanValue(SingletonInt(-1)).value());
  EXPECT_FALSE(EffectiveBooleanValue(SingletonDouble(0.0)).value());

  auto doc = xml::ParseXml("<a/>");
  ASSERT_TRUE(doc.ok());
  Sequence nodes{Item::Node(doc.value())};
  EXPECT_TRUE(EffectiveBooleanValue(nodes).value());

  Sequence two{Item(AtomicValue::Integer(1)), Item(AtomicValue::Integer(2))};
  EXPECT_FALSE(EffectiveBooleanValue(two).ok());  // FORG0006
}

TEST(SortByDocumentOrderTest, SortsAndDeduplicates) {
  auto doc = xml::ParseXml("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  xml::Node* a = doc.value()->children()[0].get();
  xml::Node* b = a->children()[0].get();
  xml::Node* c = a->children()[1].get();
  Sequence seq{Item::NodeInTree(c, doc.value()), Item::NodeInTree(b, doc.value()),
               Item::NodeInTree(c, doc.value())};
  ASSERT_TRUE(SortByDocumentOrder(&seq).ok());
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].node(), b);
  EXPECT_EQ(seq[1].node(), c);
}

TEST(SortByDocumentOrderTest, RejectsMixedSequences) {
  Sequence seq{Item(AtomicValue::Integer(1))};
  EXPECT_FALSE(SortByDocumentOrder(&seq).ok());
}

// Parameterized property sweep: FormatDouble/ParseDouble round-trip.
class DoubleRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DoubleRoundTrip, FormatsAndParsesBack) {
  double v = GetParam();
  AtomicValue a = AtomicValue::Double(v);
  auto back = AtomicValue::String(a.ToString()).CastTo(AtomicType::kDouble);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().AsDouble(), v);
}

INSTANTIATE_TEST_SUITE_P(Values, DoubleRoundTrip,
                         ::testing::Values(0.0, 1.0, -1.5, 3.14159, 1e-9, 1e20,
                                           123456.789, -0.001, 42.0, 7e7));

}  // namespace
}  // namespace xrpc::xdm
