// Section 5 property test: the four distributed execution strategies for
// Q7 are rewrites of the same query, so they must all produce the same
// result — across engine placements and data scales.

#include <gtest/gtest.h>

#include "core/peer_network.h"
#include "xmark/xmark.h"

namespace xrpc::core {
namespace {

constexpr char kImportB[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n";

const char kDataShipping[] = R"(
for $p in doc("persons.xml")//person,
    $ca in doc("xrpc://B/auctions.xml")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{$p, $ca/annotation}</result>)";

const char kPushdown[] = R"(
for $p in doc("persons.xml")//person,
    $ca in execute at {"xrpc://B"} {b:Q_B1()}
where $p/@id = $ca/buyer/@person
return <result>{$p, $ca/annotation}</result>)";

const char kRelocation[] = R"(execute at {"xrpc://B"} {b:Q_B2()})";

const char kSemiJoin[] = R"(
for $p in doc("persons.xml")//person
let $ca := execute at {"xrpc://B"} {b:Q_B3(string($p/@id))}
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>)";

struct Placement {
  EngineKind peer_a;
  EngineKind peer_b;
  int persons;
  int auctions;
  int matches;
};

class StrategyEquivalence : public ::testing::TestWithParam<Placement> {};

TEST_P(StrategyEquivalence, AllStrategiesAgree) {
  const Placement& p = GetParam();
  xmark::XmarkConfig cfg;
  cfg.num_persons = p.persons;
  cfg.num_closed_auctions = p.auctions;
  cfg.num_matches = p.matches;
  cfg.annotation_bytes = 24;

  PeerNetwork net;
  Peer* a = net.AddPeer("A", p.peer_a);
  Peer* b = net.AddPeer("B", p.peer_b);
  ASSERT_TRUE(a->AddDocument("persons.xml", xmark::GeneratePersons(cfg)).ok());
  ASSERT_TRUE(
      b->AddDocument("auctions.xml", xmark::GenerateAuctions(cfg)).ok());
  std::string module = xmark::FunctionsBModuleSource("xrpc://A");
  ASSERT_TRUE(b->RegisterModule(module, "b.xq").ok());
  ASSERT_TRUE(a->RegisterModule(module, "b.xq").ok());

  auto run = [&](const std::string& query) -> std::string {
    auto report = net.Execute("A", query);
    if (!report.ok()) return "ERROR: " + report.status().ToString();
    return xdm::SequenceToString(report->result);
  };

  std::string ship = run(kDataShipping);
  ASSERT_EQ(ship.find("ERROR"), std::string::npos) << ship;
  EXPECT_FALSE(ship.empty());
  EXPECT_EQ(run(std::string(kImportB) + kPushdown), ship);
  EXPECT_EQ(run(std::string(kImportB) + kRelocation), ship);
  EXPECT_EQ(run(std::string(kImportB) + kSemiJoin), ship);
}

INSTANTIATE_TEST_SUITE_P(
    Placements, StrategyEquivalence,
    ::testing::Values(
        Placement{EngineKind::kRelational, EngineKind::kWrapper, 40, 60, 5},
        Placement{EngineKind::kRelational, EngineKind::kRelational, 40, 60, 5},
        Placement{EngineKind::kInterpreter, EngineKind::kWrapper, 40, 60, 5},
        Placement{EngineKind::kWrapper, EngineKind::kRelational, 25, 30, 3},
        Placement{EngineKind::kRelational, EngineKind::kInterpreter, 10, 80, 8},
        Placement{EngineKind::kRelational, EngineKind::kWrapper, 3, 5, 1}));

// Deadline enforcement is strategy-independent: every Section 5 rewrite
// involves at least one remote exchange, so an exhausted budget fails all
// four with the same typed status — while a generous budget changes
// nothing about their agreement.
TEST(StrategyDeadlines, BudgetsApplyUniformlyAcrossStrategies) {
  xmark::XmarkConfig cfg;
  cfg.num_persons = 10;
  cfg.num_closed_auctions = 12;
  cfg.num_matches = 2;
  cfg.annotation_bytes = 24;

  PeerNetwork net;
  Peer* a = net.AddPeer("A", EngineKind::kRelational);
  Peer* b = net.AddPeer("B", EngineKind::kInterpreter);
  ASSERT_TRUE(a->AddDocument("persons.xml", xmark::GeneratePersons(cfg)).ok());
  ASSERT_TRUE(
      b->AddDocument("auctions.xml", xmark::GenerateAuctions(cfg)).ok());
  std::string module = xmark::FunctionsBModuleSource("xrpc://A");
  ASSERT_TRUE(b->RegisterModule(module, "b.xq").ok());
  ASSERT_TRUE(a->RegisterModule(module, "b.xq").ok());

  const std::vector<std::string> strategies = {
      kDataShipping, std::string(kImportB) + kPushdown,
      std::string(kImportB) + kRelocation, std::string(kImportB) + kSemiJoin};

  ExecuteOptions generous;
  generous.deadline_us = 60'000'000;
  std::string baseline;
  for (const std::string& query : strategies) {
    auto report = net.Execute("A", query, generous);
    ASSERT_TRUE(report.ok()) << report.status();
    std::string result = xdm::SequenceToString(report->result);
    if (baseline.empty()) baseline = result;
    EXPECT_EQ(result, baseline);
  }

  ExecuteOptions tight;
  tight.deadline_us = 1;  // exhausted by the first wire exchange
  for (const std::string& query : strategies) {
    auto report = net.Execute("A", query, tight);
    ASSERT_FALSE(report.ok()) << query;
    EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded)
        << report.status();
  }
}

}  // namespace
}  // namespace xrpc::core
