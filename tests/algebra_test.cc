// Tests for the Table 1 relational algebra operators.

#include <gtest/gtest.h>

#include "algebra/morsel.h"
#include "algebra/table.h"

namespace xrpc::algebra {
namespace {

using xdm::AtomicValue;
using xdm::Item;

Table ActorTable() {
  // The $actor table of Section 3.2.
  Table t = Table::IterPosItem();
  t.AppendIPI(1, 1, Item(AtomicValue::String("Julie Andrews")));
  t.AppendIPI(2, 1, Item(AtomicValue::String("Sean Connery")));
  return t;
}

TEST(TableTest, CanonicalSchemaAccessors) {
  Table t = ActorTable();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.NumColumns(), 3u);
  EXPECT_EQ(t.Iter(0), 1);
  EXPECT_EQ(t.Pos(1), 1);
  EXPECT_EQ(t.ItemAt(1).atomic().ToString(), "Sean Connery");
  EXPECT_EQ(t.ColumnIndex("item"), 2);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(SelectTest, KeepsTrueRows) {
  Table t({"iter", "flag"});
  t.AppendRow({Cell::Int(1), Cell::Int(1)});
  t.AppendRow({Cell::Int(2), Cell::Int(0)});
  t.AppendRow({Cell::Int(3), Cell::Int(1)});
  Table out = Select(t, "flag");
  ASSERT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.Iter(0), 1);
  EXPECT_EQ(out.Iter(1), 3);
}

TEST(ProjectTest, RenamesAndReorders) {
  Table t({"a", "b"});
  t.AppendRow({Cell::Int(1), Cell::Int(2)});
  auto out = Project(t, {{"x", "b"}, {"y", "a"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->column_names()[0], "x");
  EXPECT_EQ(out->At(0, 0).num, 2);
  EXPECT_EQ(out->At(0, 1).num, 1);
  EXPECT_FALSE(Project(t, {{"x", "zzz"}}).ok());
}

TEST(DistinctTest, RemovesDuplicateRows) {
  Table t({"a", "b"});
  t.AppendRow({Cell::Int(1), Cell::OfItem(Item(AtomicValue::String("x")))});
  t.AppendRow({Cell::Int(1), Cell::OfItem(Item(AtomicValue::String("x")))});
  t.AppendRow({Cell::Int(1), Cell::OfItem(Item(AtomicValue::String("y")))});
  EXPECT_EQ(Distinct(t).NumRows(), 2u);
}

TEST(DistinctTest, AtomicEqualityIsTyped) {
  Table t({"v"});
  t.AppendRow({Cell::OfItem(Item(AtomicValue::Integer(1)))});
  t.AppendRow({Cell::OfItem(Item(AtomicValue::String("1")))});
  EXPECT_EQ(Distinct(t).NumRows(), 2u);  // xs:integer 1 != xs:string "1"
}

TEST(DisjointUnionTest, ConcatenatesAndChecksSchema) {
  Table a({"x"}), b({"x"}), c({"x", "y"});
  a.AppendRow({Cell::Int(1)});
  b.AppendRow({Cell::Int(2)});
  auto out = DisjointUnion(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);
  EXPECT_FALSE(DisjointUnion(a, c).ok());
}

TEST(EquiJoinTest, JoinsOnIntKeys) {
  // The map-back join of Figure 1: map ⋈ msg on iterp.
  Table map({"iter", "iterp"});
  map.AppendRow({Cell::Int(1), Cell::Int(1)});
  map.AppendRow({Cell::Int(3), Cell::Int(2)});
  Table msg({"iterp", "pos", "item"});
  msg.AppendRow({Cell::Int(2), Cell::Int(1),
                 Cell::OfItem(Item(AtomicValue::String("The Rock")))});
  msg.AppendRow({Cell::Int(2), Cell::Int(2),
                 Cell::OfItem(Item(AtomicValue::String("Goldfinger")))});
  auto out = EquiJoin(map, msg, "iterp", "iterp");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 2u);
  EXPECT_EQ(out->At(0, 0).num, 3);  // original iter
  EXPECT_EQ(out->At(0, 2).num, 1);  // pos
}

TEST(EquiJoinTest, JoinsOnAtomicItems) {
  Table a({"k"});
  a.AppendRow({Cell::OfItem(Item(AtomicValue::String("y.example.org")))});
  Table b({"k", "v"});
  b.AppendRow({Cell::OfItem(Item(AtomicValue::String("y.example.org"))),
               Cell::Int(42)});
  b.AppendRow({Cell::OfItem(Item(AtomicValue::String("z.example.org"))),
               Cell::Int(7)});
  auto out = EquiJoin(a, b, "k", "k");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->At(0, 1).num, 42);
}

TEST(EquiJoinTest, RenamesCollidingColumns) {
  Table a({"iter", "v"}), b({"iter", "v"});
  a.AppendRow({Cell::Int(1), Cell::Int(10)});
  b.AppendRow({Cell::Int(1), Cell::Int(20)});
  auto out = EquiJoin(a, b, "iter", "iter");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->column_names()[2], "v'");
}

TEST(RowNumberTest, DenseRankPerPartition) {
  // The ρ of Figure 2: number iterations per destination peer.
  Table t({"iter", "dst"});
  t.AppendRow({Cell::Int(1), Cell::OfItem(Item(AtomicValue::String("y")))});
  t.AppendRow({Cell::Int(2), Cell::OfItem(Item(AtomicValue::String("z")))});
  t.AppendRow({Cell::Int(3), Cell::OfItem(Item(AtomicValue::String("y")))});
  t.AppendRow({Cell::Int(4), Cell::OfItem(Item(AtomicValue::String("z")))});
  auto out = RowNumber(t, "iterp", {"iter"}, "dst");
  ASSERT_TRUE(out.ok()) << out.status();
  int c = out->ColumnIndex("iterp");
  EXPECT_EQ(out->At(0, c).num, 1);  // y #1
  EXPECT_EQ(out->At(1, c).num, 1);  // z #1
  EXPECT_EQ(out->At(2, c).num, 2);  // y #2
  EXPECT_EQ(out->At(3, c).num, 2);  // z #2
}

TEST(RowNumberTest, NoPartitionNumbersGlobally) {
  Table t({"iter"});
  t.AppendRow({Cell::Int(30)});
  t.AppendRow({Cell::Int(10)});
  t.AppendRow({Cell::Int(20)});
  auto out = RowNumber(t, "rank", {"iter"}, "");
  ASSERT_TRUE(out.ok());
  int c = out->ColumnIndex("rank");
  EXPECT_EQ(out->At(0, c).num, 3);
  EXPECT_EQ(out->At(1, c).num, 1);
  EXPECT_EQ(out->At(2, c).num, 2);
}

TEST(SortByTest, SortsByIntColumns) {
  Table t = Table::IterPosItem();
  t.AppendIPI(2, 1, Item(AtomicValue::String("b")));
  t.AppendIPI(1, 2, Item(AtomicValue::String("a2")));
  t.AppendIPI(1, 1, Item(AtomicValue::String("a1")));
  auto out = SortBy(t, {"iter", "pos"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->ItemAt(0).atomic().ToString(), "a1");
  EXPECT_EQ(out->ItemAt(1).atomic().ToString(), "a2");
  EXPECT_EQ(out->ItemAt(2).atomic().ToString(), "b");
}

TEST(TableTest, ToStringRendersRows) {
  Table t = ActorTable();
  std::string s = t.ToString();
  EXPECT_NE(s.find("iter | pos | item"), std::string::npos);
  EXPECT_NE(s.find("Sean Connery"), std::string::npos);
}

// Renders a merged iter|pos|item table as "iter.pos:value" tokens for
// compact full-table assertions.
std::string Render(const Table& t) {
  std::string out;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if (!out.empty()) out += " ";
    out += std::to_string(t.Iter(r)) + "." + std::to_string(t.Pos(r)) + ":" +
           t.ItemAt(r).atomic().ToString();
  }
  return out;
}

TEST(ScatterGatherMergeTest, ConcatenatesPerIterInRankOrder) {
  // Shard 0 answered iterations 1 and 2; shard 1 answered 1 and 3. Within
  // iteration 1 shard 0's items come first (rank order), each shard's own
  // items stay in pos order, and pos renumbers densely.
  Table s0 = Table::IterPosItem();
  s0.AppendIPI(2, 1, Item(AtomicValue::String("b")));
  s0.AppendIPI(1, 1, Item(AtomicValue::String("a0.1")));
  s0.AppendIPI(1, 2, Item(AtomicValue::String("a0.2")));
  Table s1 = Table::IterPosItem();
  s1.AppendIPI(3, 1, Item(AtomicValue::String("c")));
  s1.AppendIPI(1, 1, Item(AtomicValue::String("a1.1")));
  Table merged = ScatterGatherMerge({s0, s1});
  EXPECT_EQ(Render(merged), "1.1:a0.1 1.2:a0.2 1.3:a1.1 2.1:b 3.1:c");
}

TEST(ScatterGatherMergeTest, SingleSourceIsUnionPlusSortByIter) {
  // The degenerate 1-source merge (unsharded or fully pruned dispatch)
  // must reduce to sort-by-(iter,pos): same rows, canonical order, pos
  // untouched when already dense.
  Table s = Table::IterPosItem();
  s.AppendIPI(2, 1, Item(AtomicValue::String("b")));
  s.AppendIPI(1, 2, Item(AtomicValue::String("a2")));
  s.AppendIPI(1, 1, Item(AtomicValue::String("a1")));
  Table merged = ScatterGatherMerge({s});
  EXPECT_EQ(Render(merged), "1.1:a1 1.2:a2 2.1:b");
}

TEST(ScatterGatherMergeTest, EmptySourcesYieldEmptyTable) {
  Table merged = ScatterGatherMerge({});
  EXPECT_EQ(merged.NumRows(), 0u);
  merged = ScatterGatherMerge({Table::IterPosItem(), Table::IterPosItem()});
  EXPECT_EQ(merged.NumRows(), 0u);
  EXPECT_EQ(merged.ColumnIndex("item"), 2);
}

TEST(ScatterGatherMergeTest, SparsePosRenumbersDensely) {
  // Shards report their local pos; after the merge pos must be a dense
  // 1..n per iteration even when the inputs were sparse.
  Table s0 = Table::IterPosItem();
  s0.AppendIPI(1, 5, Item(AtomicValue::String("x")));
  Table s1 = Table::IterPosItem();
  s1.AppendIPI(1, 3, Item(AtomicValue::String("y")));
  Table merged = ScatterGatherMerge({s0, s1});
  EXPECT_EQ(Render(merged), "1.1:x 1.2:y");
}

// Builds an iter|pos|item table from a list of iter values (pos dense per
// iter, item = the row index as a string).
Table TableWithIters(const std::vector<int64_t>& iters) {
  Table t = Table::IterPosItem();
  int64_t pos = 0, prev = -1;
  for (size_t i = 0; i < iters.size(); ++i) {
    pos = iters[i] == prev ? pos + 1 : 1;
    prev = iters[i];
    t.AppendIPI(iters[i], pos,
                Item(AtomicValue::String(std::to_string(i))));
  }
  return t;
}

// Asserts morsels cover [0, num_rows) exactly once, in order.
void ExpectCovers(const std::vector<Morsel>& morsels, size_t num_rows) {
  size_t at = 0;
  for (const Morsel& m : morsels) {
    EXPECT_EQ(m.begin, at);
    EXPECT_LT(m.begin, m.end);
    at = m.end;
  }
  EXPECT_EQ(at, num_rows);
}

TEST(MorselTest, SplitRowsCoversExactlyOnce) {
  EXPECT_TRUE(SplitRows(0, 4).empty());
  auto one = SplitRows(10, 0);  // non-positive target: single morsel
  ASSERT_EQ(one.size(), 1u);
  ExpectCovers(one, 10);
  auto even = SplitRows(8, 4);
  EXPECT_EQ(even.size(), 2u);
  ExpectCovers(even, 8);
  auto ragged = SplitRows(10, 4);  // 4 + 4 + 2
  ASSERT_EQ(ragged.size(), 3u);
  EXPECT_EQ(ragged[2].size(), 2u);
  ExpectCovers(ragged, 10);
}

TEST(MorselTest, SplitIterAlignedNeverSplitsAnIterGroup) {
  Table t = TableWithIters({1, 1, 1, 2, 2, 3, 4, 4, 4, 4});
  auto morsels = SplitIterAligned(t, 4);
  ExpectCovers(morsels, t.NumRows());
  for (const Morsel& m : morsels) {
    // No boundary inside an iter group: the first row of every morsel
    // must start a new iter.
    if (m.begin > 0) EXPECT_NE(t.Iter(m.begin), t.Iter(m.begin - 1));
  }
}

TEST(MorselTest, OversizedIterGroupStaysOneMorsel) {
  Table t = TableWithIters({7, 7, 7, 7, 7, 7, 8});
  auto morsels = SplitIterAligned(t, 2);
  ExpectCovers(morsels, t.NumRows());
  ASSERT_EQ(morsels.size(), 2u);
  EXPECT_EQ(morsels[0].size(), 6u);  // the iter-7 group, unsplit
  EXPECT_EQ(morsels[1].size(), 1u);
}

TEST(TableTest, AppendRowsFromConcatenatesCopyAndMove) {
  Table a = TableWithIters({1, 1});
  Table b = TableWithIters({2});
  a.AppendRowsFrom(b);  // copy flavor leaves the source intact
  EXPECT_EQ(a.NumRows(), 3u);
  EXPECT_EQ(b.NumRows(), 1u);
  EXPECT_EQ(a.Iter(2), 2);
  EXPECT_EQ(a.ItemAt(2).atomic().ToString(), "0");

  Table c = Table::IterPosItem();
  c.AppendRowsFrom(std::move(a));  // empty dest adopts columns wholesale
  EXPECT_EQ(c.NumRows(), 3u);
  EXPECT_EQ(a.NumRows(), 0u);
  c.AppendRowsFrom(std::move(b));  // non-empty dest steals cells
  EXPECT_EQ(c.NumRows(), 4u);
  EXPECT_EQ(c.Iter(3), 2);
}

TEST(TableTest, GatherRowsAndCopyColumns) {
  Table t = TableWithIters({1, 2, 3});
  Table g = t.GatherRows({2, 0});
  ASSERT_EQ(g.NumRows(), 2u);
  EXPECT_EQ(g.Iter(0), 3);
  EXPECT_EQ(g.Iter(1), 1);

  Table p = t.CopyColumns({0, 0}, {"outer", "inner"});
  EXPECT_EQ(p.NumRows(), 3u);
  EXPECT_EQ(p.ColumnIndex("outer"), 0);
  EXPECT_EQ(p.ColumnIndex("inner"), 1);
  EXPECT_EQ(p.At(1, 1).num, 2);
}

}  // namespace
}  // namespace xrpc::algebra
