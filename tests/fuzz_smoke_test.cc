// Budgeted smoke lane for the fuzzing subsystem (label: fuzz; also driven
// by tools/check_fuzz.sh). Fixed seeds keep it deterministic and fast —
// the long soak campaigns run through the tools/fuzz_* CLIs instead.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/chaos.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/schedule.h"
#include "tests/test_util.h"

namespace xrpc::fuzz {
namespace {

TEST(FuzzGeneratorTest, StreamIsDeterministicPerSeed) {
  GeneratorConfig config;
  config.seed = 7;
  QueryGenerator a(config);
  QueryGenerator b(config);
  std::set<std::string> distinct;
  for (int i = 0; i < 25; ++i) {
    GeneratedQuery qa = a.Next();
    GeneratedQuery qb = b.Next();
    EXPECT_EQ(qa.Text(), qb.Text()) << "query " << i;
    EXPECT_EQ(qa.updating, qb.updating);
    distinct.insert(qa.Text());
  }
  // The stream must actually vary, not emit one query 25 times.
  EXPECT_GE(distinct.size(), 15u);

  config.seed = 8;
  QueryGenerator c(config);
  EXPECT_NE(a.Next().Text(), c.Next().Text());
}

TEST(FuzzDifferentialSmokeTest, SixtyQueriesAgreeAcrossEngines) {
  GeneratorConfig gcfg;
  gcfg.seed = 20260806;
  QueryGenerator gen(gcfg);
  DifferentialHarness harness;
  for (int i = 0; i < 60; ++i) {
    GeneratedQuery q = gen.Next();
    Divergence d;
    const bool diverged = harness.RunAndMinimize(&q, &d);
    EXPECT_FALSE(diverged) << "query " << i << " diverged:\n"
                           << d.query << "\n  relational : "
                           << d.comparison.relational_result
                           << "\n  interpreter: "
                           << d.comparison.interpreter_result;
  }
  const DiffStats& s = harness.stats();
  EXPECT_EQ(s.executed, 60);
  EXPECT_EQ(s.diverged, 0);
  // Differential coverage: most of the stream must exercise the relational
  // engine rather than falling back to the interpreter on both sides.
  EXPECT_LT(s.fell_back, s.executed / 2);
}

TEST(FuzzScheduleSmokeTest, GridSliceHoldsAllInvariants) {
  ScheduleConfig config;
  config.seed = 20260806;
  ScheduleExplorer explorer(config);
  // One full crash x fault sweep at retry=1 plus a sampled tail.
  const int grid = explorer.GridSize();
  for (int i = 0; i < 120 && i < grid; ++i) {
    ScheduleResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    EXPECT_TRUE(r.ok) << r.schedule.Describe() << "\n  "
                      << (r.violations.empty() ? "" : r.violations[0]);
  }
  for (int i = grid; i < grid + 40; ++i) {
    ScheduleResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    EXPECT_TRUE(r.ok) << r.schedule.Describe() << "\n  "
                      << (r.violations.empty() ? "" : r.violations[0]);
  }
  EXPECT_EQ(explorer.stats().violations, 0);
  EXPECT_GT(explorer.stats().committed, 0);
  EXPECT_GT(explorer.stats().aborted, 0);
}

TEST(FuzzScheduleSmokeTest, DurableWalSchedulesHoldInvariants) {
  ScheduleConfig config;
  config.seed = 11;
  config.wal_dir = ::testing::TempDir();
  ScheduleExplorer explorer(config);
  int wal_runs = 0;
  for (int i = 0; i < explorer.GridSize() && wal_runs < 12; ++i) {
    Schedule s = explorer.MakeSchedule(i);
    if (!s.durable_wal) continue;
    ++wal_runs;
    ScheduleResult r = explorer.RunSchedule(s);
    EXPECT_TRUE(r.ok) << s.Describe() << "\n  "
                      << (r.violations.empty() ? "" : r.violations[0]);
  }
  EXPECT_EQ(wal_runs, 12);
}

TEST(FuzzScheduleSmokeTest, SabotageSelfTestTripsTheDetector) {
  ScheduleConfig config;
  config.seed = 1;
  config.sabotage_double_apply = true;
  ScheduleExplorer explorer(config);
  // Schedule 0 is the healthy-network commit; the injected double-apply
  // at y must trip at-most-once, all-or-nothing AND serial-equivalence.
  ScheduleResult r = explorer.RunSchedule(explorer.MakeSchedule(0));
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.delta_y, 2);
  EXPECT_EQ(r.delta_z, 1);
  std::set<std::string> kinds;
  for (const std::string& v : r.violations) {
    kinds.insert(v.substr(0, v.find(':')));
  }
  EXPECT_TRUE(kinds.count("at-most-once"));
  EXPECT_TRUE(kinds.count("all-or-nothing"));
  EXPECT_TRUE(kinds.count("serial-equivalence"));
}

TEST(FuzzScheduleSmokeTest, ScheduleReproRoundTripsAndReplays) {
  ScheduleConfig config;
  config.seed = 5;
  ScheduleExplorer explorer(config);
  const int index = 42;
  ScheduleResult first = explorer.RunSchedule(explorer.MakeSchedule(index));

  auto parsed = ParseScheduleRepro(FormatScheduleRepro(first));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().seed, 5u);
  EXPECT_EQ(parsed.value().index, index);

  // MakeSchedule is a pure function of (seed, index): the re-derived
  // schedule and a re-run both reproduce byte-identically.
  Schedule again = explorer.MakeSchedule(parsed.value().index);
  EXPECT_EQ(again.Describe(), first.schedule.Describe());
  ScheduleResult second = explorer.RunSchedule(again);
  EXPECT_EQ(second.ok, first.ok);
  EXPECT_EQ(second.delta_y, first.delta_y);
  EXPECT_EQ(second.delta_z, first.delta_z);
  EXPECT_EQ(second.committed_known, first.committed_known);
  EXPECT_EQ(second.committed, first.committed);
}

TEST(ChaosSmokeTest, GridSliceHoldsAllInvariants) {
  ChaosConfig config;
  config.seed = 20260809;
  ChaosExplorer explorer(config);
  // A grid slice plus a sampled tail; the full soak runs through
  // fuzz_schedules --chaos (EXPERIMENTS.md).
  const int grid = explorer.GridSize();
  int survived_with_failover = 0;
  for (int i = 0; i < 48 && i < grid; ++i) {
    ChaosResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    EXPECT_TRUE(r.ok) << r.schedule.Describe() << "\n  "
                      << (r.violations.empty() ? "" : r.violations[0]);
    if (r.query_ok && r.failover_successes > 0) ++survived_with_failover;
  }
  for (int i = grid; i < grid + 16; ++i) {
    ChaosResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    EXPECT_TRUE(r.ok) << r.schedule.Describe() << "\n  "
                      << (r.violations.empty() ? "" : r.violations[0]);
  }
  EXPECT_EQ(explorer.stats().violations, 0);
  EXPECT_GT(explorer.stats().survived, 0);
  // The slice must actually exercise failover, not only healthy runs.
  EXPECT_GT(survived_with_failover, 0);
}

TEST(ChaosSmokeTest, SabotageSelfTestTripsByteIdentity) {
  // A corrupted shard-0 primary fragment makes every surviving run diverge
  // from the baseline; the byte-identity invariant must flag it (the
  // detector is not vacuous). Schedule 0 is the chaos-free run.
  ChaosConfig config;
  config.seed = 1;
  config.sabotage_divergence = true;
  ChaosExplorer explorer(config);
  ChaosResult r = explorer.RunSchedule(explorer.MakeSchedule(0));
  ASSERT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].substr(0, r.violations[0].find(':')),
            "byte-identity");
}

TEST(ChaosSmokeTest, ChaosReproRoundTripsAndReplays) {
  ChaosConfig config;
  config.seed = 9;
  ChaosExplorer explorer(config);
  const int index = 33;
  ChaosResult first = explorer.RunSchedule(explorer.MakeSchedule(index));

  auto parsed = ParseChaosRepro(FormatChaosRepro(first));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().seed, 9u);
  EXPECT_EQ(parsed.value().index, index);

  ChaosSchedule again = explorer.MakeSchedule(parsed.value().index);
  EXPECT_EQ(again.Describe(), first.schedule.Describe());
  ChaosResult second = explorer.RunSchedule(again);
  EXPECT_EQ(second.ok, first.ok);
  EXPECT_EQ(second.query_ok, first.query_ok);
  EXPECT_EQ(second.outcome, first.outcome);
  EXPECT_EQ(second.elapsed_us, first.elapsed_us);
}

TEST(ElasticChaosSmokeTest, SampledSliceHoldsAllSixInvariants) {
  ElasticConfig config;
  config.seed = 20260809;
  ElasticChaosExplorer explorer(config);
  // A sampled slice of elastic-membership schedules; the 500-schedule
  // soak runs through fuzz_schedules --chaos-elastic (EXPERIMENTS.md).
  int with_membership_change = 0;
  for (int i = 0; i < 24; ++i) {
    ElasticResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    EXPECT_TRUE(r.ok) << r.schedule.Describe() << "\n  "
                      << (r.violations.empty() ? "" : r.violations[0]);
    if (r.events_fired > 0) ++with_membership_change;
  }
  EXPECT_EQ(explorer.stats().violations, 0);
  EXPECT_GT(explorer.stats().queries_ok, 0);
  // The slice must actually change membership mid-run, not only no-op.
  EXPECT_GT(with_membership_change, 0);
}

TEST(ElasticChaosSmokeTest, SchedulesAreDeterministicAndVaried) {
  ElasticConfig config;
  config.seed = 4;
  ElasticChaosExplorer a(config);
  ElasticChaosExplorer b(config);
  std::set<std::string> distinct;
  for (int i = 0; i < 40; ++i) {
    ElasticSchedule sa = a.MakeSchedule(i);
    EXPECT_EQ(sa.Describe(), b.MakeSchedule(i).Describe()) << i;
    distinct.insert(sa.Describe());
  }
  EXPECT_GE(distinct.size(), 30u);
}

TEST(ElasticChaosSmokeTest, SabotageSelfTestTripsNoLostShard) {
  // Sabotage permanently disconnects every peer serving auctions shard 0
  // at quiesce: the no-lost-shard invariant must flag it (the detector is
  // not vacuous).
  ElasticConfig config;
  config.seed = 1;
  config.sabotage_lost_shard = true;
  ElasticChaosExplorer explorer(config);
  ElasticResult r = explorer.RunSchedule(explorer.MakeSchedule(0));
  ASSERT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  bool hit = false;
  for (const std::string& v : r.violations) {
    if (v.substr(0, v.find(':')) == "no-lost-shard") hit = true;
  }
  EXPECT_TRUE(hit) << r.violations[0];
}

TEST(ElasticChaosSmokeTest, ElasticReproRoundTripsAndReplays) {
  ElasticConfig config;
  config.seed = 9;
  ElasticChaosExplorer explorer(config);
  const int index = 17;
  ElasticResult first = explorer.RunSchedule(explorer.MakeSchedule(index));

  auto parsed = ParseElasticRepro(FormatElasticRepro(first));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().seed, 9u);
  EXPECT_EQ(parsed.value().index, index);

  ElasticSchedule again = explorer.MakeSchedule(parsed.value().index);
  EXPECT_EQ(again.Describe(), first.schedule.Describe());
  ElasticResult second = explorer.RunSchedule(again);
  EXPECT_EQ(second.ok, first.ok);
  EXPECT_EQ(second.queries_ok, first.queries_ok);
  EXPECT_EQ(second.events_fired, first.events_fired);
  EXPECT_EQ(second.elapsed_us, first.elapsed_us);
}

}  // namespace
}  // namespace xrpc::fuzz
