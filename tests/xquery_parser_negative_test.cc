// Negative-path parser coverage: malformed XQuery must come back as a
// structured parse error naming the problem (and its line), never as a
// crash, a hang, or a silently wrong parse. The differential fuzzer leans
// on this — both engines treat "parse error" as an agreeing outcome, so
// the errors themselves have to be trustworthy.

#include <gtest/gtest.h>

#include <string>

#include "tests/test_util.h"
#include "xquery/parser.h"

namespace xrpc::xquery {
namespace {

/// Expects a parse failure whose message contains `substr`.
void ExpectParseError(const std::string& query, const std::string& substr) {
  auto parsed = ParseMainModule(query);
  ASSERT_FALSE(parsed.ok()) << "parsed unexpectedly: " << query;
  const std::string msg = parsed.status().ToString();
  EXPECT_NE(msg.find("parse error"), std::string::npos) << msg;
  EXPECT_NE(msg.find(substr), std::string::npos)
      << "wanted '" << substr << "' in: " << msg;
}

// -- malformed FLWOR -------------------------------------------------------

TEST(ParserNegativeTest, ForWithoutIn) {
  ExpectParseError("for $x doc(\"a.xml\")//b return $x", "expected 'in'");
}

TEST(ParserNegativeTest, ForWithoutReturn) {
  ExpectParseError("for $x in (1, 2, 3) where $x > 1", "expected 'return'");
}

TEST(ParserNegativeTest, LetWithoutReturn) {
  ExpectParseError("let $x := 1", "expected 'return'");
}

TEST(ParserNegativeTest, OrderByWithoutBy) {
  ExpectParseError("for $x in (1, 2) order $x return $x", "expected 'by'");
}

TEST(ParserNegativeTest, QuantifiedWithoutSatisfies) {
  ExpectParseError("every $x in (1, 2) $x > 0", "expected 'satisfies'");
}

TEST(ParserNegativeTest, IfWithoutElse) {
  ExpectParseError("if (1 = 1) then 2", "expected 'else'");
}

// -- unterminated constructors and literals --------------------------------

TEST(ParserNegativeTest, UnterminatedElementConstructor) {
  auto parsed = ParseMainModule("<open><inner>text</inner>");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("parse error"),
            std::string::npos);
}

TEST(ParserNegativeTest, MismatchedEndTag) {
  ExpectParseError("<a>{1}</b>", "tag");
}

TEST(ParserNegativeTest, UnterminatedStringLiteral) {
  ExpectParseError("\"no closing quote", "unterminated string literal");
}

TEST(ParserNegativeTest, UnterminatedComment) {
  ExpectParseError("1 + (: never closed", "unterminated comment");
}

TEST(ParserNegativeTest, UnescapedClosingBraceInContent) {
  ExpectParseError("<a>}</a>", "escaped");
}

TEST(ParserNegativeTest, ErrorsReportTheLine) {
  auto parsed = ParseMainModule("1 +\n2 +\n\"unterminated");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("line 3"), std::string::npos)
      << parsed.status().ToString();
}

// -- malformed execute at --------------------------------------------------

TEST(ParserNegativeTest, ExecuteAtWithoutDestinationBraces) {
  ExpectParseError(
      "execute at \"xrpc://b.example.org\" {1 + 1}",
      "expected '{' after 'execute at'");
}

TEST(ParserNegativeTest, ExecuteAtUnclosedDestination) {
  ExpectParseError("execute at {\"xrpc://b.example.org\" {1}",
                   "expected '}' after destination");
}

TEST(ParserNegativeTest, ExecuteAtWithoutCallBody) {
  ExpectParseError("execute at {\"xrpc://b.example.org\"} 1",
                   "expected '{' (remote call)");
}

TEST(ParserNegativeTest, ExecuteAtUnclosedCallBody) {
  // The call body must be a module function call; an unclosed one dies
  // with a clean error while trying to read the closing brace.
  ExpectParseError(
      "declare namespace f = \"urn:f\";\n"
      "execute at {\"xrpc://b.example.org\"} {f:g(1)",
      "expected '}' after remote call");
}

TEST(ParserNegativeTest, ExecuteAtBodyMustBeAFunctionCall) {
  ExpectParseError("execute at {\"xrpc://b.example.org\"} {1 + 1}",
                   "expected a name");
}

// A syntactically valid execute-at whose URI is garbage must surface as an
// evaluation error (no RPC handler / unroutable destination), not a crash.
TEST(ParserNegativeTest, ExecuteAtBadUriFailsAtRuntimeNotParse) {
  const std::string query =
      "declare namespace f = \"urn:f\";\n"
      "execute at {\"not a uri at all\"} {f:g()}";
  ASSERT_TRUE(ParseMainModule(query).ok());
  const std::string result = xrpc::testing::EvalToString(query);
  EXPECT_EQ(result.rfind("ERROR:", 0), 0u) << result;
}

// -- malformed updates -----------------------------------------------------

TEST(ParserNegativeTest, InsertWithoutNodesKeyword) {
  // Without the `nodes` keyword this is not an update expression at all;
  // `insert` re-parses as a path step and dies cleanly on the `<`.
  auto parsed = ParseMainModule("insert <a/> into doc(\"d.xml\")/r");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("parse error"),
            std::string::npos);
}

TEST(ParserNegativeTest, InsertWithoutInto) {
  ExpectParseError("insert nodes <a/> doc(\"d.xml\")/r",
                   "expected into/before/after");
}

TEST(ParserNegativeTest, ReplaceWithoutWith) {
  ExpectParseError("replace value of node doc(\"d.xml\")/r/a",
                   "expected 'with'");
}

TEST(ParserNegativeTest, RenameWithoutAs) {
  ExpectParseError("rename node doc(\"d.xml\")/r/a \"b\"", "expected 'as'");
}

// -- junk that once upon a time crashed recursive-descent parsers ----------

TEST(ParserNegativeTest, DeeplyNestedParensDoNotOverflow) {
  std::string query(400, '(');
  query += "1";
  query += std::string(400, ')');
  auto parsed = ParseMainModule(query);
  // Either a clean parse or a clean error — never a crash.
  if (!parsed.ok()) {
    EXPECT_NE(parsed.status().ToString().find("parse error"),
              std::string::npos);
  }
}

TEST(ParserNegativeTest, TrailingContentIsRejected) {
  // (Note `1 + 1 <banana` would be VALID — `<` is the less-than operator
  // and `banana` a child step. Use genuinely trailing content.)
  ExpectParseError("1 + 1 2", "unexpected trailing content");
}

TEST(ParserNegativeTest, EmptyQueryIsRejectedNotCrashed) {
  EXPECT_FALSE(ParseMainModule("").ok());
  EXPECT_FALSE(ParseMainModule("   \n  ").ok());
}

}  // namespace
}  // namespace xrpc::xquery
