// Regression corpus for the cross-engine differential harness (DESIGN.md
// §11): every query under tests/corpus/ must produce identical normalized
// results (and, for XQUF queries, identical post-update document state) on
// the loop-lifted relational engine and the tree-walking interpreter.
// Divergences found by tools/fuzz_differential get their minimized form
// checked in here so the disagreement stays fixed.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differential.h"
#include "fuzz/generator.h"

namespace xrpc::fuzz {
namespace {

#ifndef XRPC_CORPUS_DIR
#error "XRPC_CORPUS_DIR must point at tests/corpus"
#endif

bool IsUpdating(const std::string& text) {
  return text.find("insert nodes") != std::string::npos ||
         text.find("delete nodes") != std::string::npos ||
         text.find("replace value") != std::string::npos ||
         text.find("rename node") != std::string::npos;
}

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(XRPC_CORPUS_DIR)) {
    if (entry.path().extension() == ".xq") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(DifferentialCorpusTest, EveryCorpusQueryAgreesAcrossEngines) {
  const auto files = CorpusFiles();
  ASSERT_GE(files.size(), 10u) << "corpus went missing from "
                               << XRPC_CORPUS_DIR;
  DifferentialHarness harness;
  int relational_runs = 0;
  for (const auto& path : files) {
    const std::string text = ReadFile(path);
    ASSERT_FALSE(text.empty()) << path;
    EXPECT_EQ(DifferentialHarness::SkiplistReason(text), "")
        << path << " is skiplisted; corpus entries must be real agreements";
    Comparison c = harness.Run(text, IsUpdating(text));
    EXPECT_TRUE(c.agree) << path.filename() << "\n  relational : "
                         << c.relational_result
                         << "\n  interpreter: " << c.interpreter_result;
    EXPECT_TRUE(c.relational_ok) << path.filename() << ": "
                                 << c.relational_result;
    if (!c.fell_back) ++relational_runs;
  }
  // The corpus is only a differential test if a decent share of it really
  // runs on the relational engine instead of falling back.
  EXPECT_GE(relational_runs, static_cast<int>(files.size()) / 2);
}

TEST(DifferentialCorpusTest, ForcedDivergenceIsMinimizedAndReproducible) {
  // Self-test of the whole pipeline: with force_divergence on, the first
  // non-empty agreeing result counts as a divergence, gets minimized, and
  // round-trips through the repro file format.
  DifferentialConfig config;
  config.force_divergence = true;
  DifferentialHarness harness(config);
  GeneratorConfig gcfg;
  gcfg.seed = 99;
  QueryGenerator gen(gcfg);

  Divergence d;
  bool found = false;
  for (int i = 0; i < 10 && !found; ++i) {
    GeneratedQuery q = gen.Next();
    found = harness.RunAndMinimize(&q, &d);
  }
  ASSERT_TRUE(found);
  EXPECT_FALSE(d.query.empty());
  EXPECT_LE(d.query.size(), d.original_query.size());

  const std::string file = FormatReproFile(d);
  auto parsed = ParseReproFile(file);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().query, d.query);
  EXPECT_EQ(parsed.value().seed, d.seed);
  EXPECT_TRUE(parsed.value().force);

  // Replaying the minimized query reproduces the recorded divergence.
  Comparison replay = harness.Run(parsed.value().query, parsed.value().updating);
  EXPECT_FALSE(replay.agree);
  EXPECT_EQ(replay.relational_result, d.comparison.relational_result);
  EXPECT_EQ(replay.interpreter_result, d.comparison.interpreter_result);
}

TEST(DifferentialCorpusTest, NormalizationCanonicalizesNumericLexicalForms) {
  xdm::Sequence ints{xdm::Item(xdm::AtomicValue::Integer(4))};
  xdm::Sequence doubles{xdm::Item(xdm::AtomicValue::Double(4.0))};
  EXPECT_EQ(NormalizeSequence(ints), NormalizeSequence(doubles));
  xdm::Sequence frac{xdm::Item(xdm::AtomicValue::Double(2.5))};
  EXPECT_EQ(NormalizeSequence(frac), "2.5");
  EXPECT_EQ(NormalizeSequence({}), "");
}

}  // namespace
}  // namespace xrpc::fuzz
