// Regression corpus for the cross-engine differential harness (DESIGN.md
// §11): every query under tests/corpus/ must produce identical normalized
// results (and, for XQUF queries, identical post-update document state) on
// the loop-lifted relational engine and the tree-walking interpreter.
// Divergences found by tools/fuzz_differential get their minimized form
// checked in here so the disagreement stays fixed.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differential.h"
#include "fuzz/generator.h"

namespace xrpc::fuzz {
namespace {

#ifndef XRPC_CORPUS_DIR
#error "XRPC_CORPUS_DIR must point at tests/corpus"
#endif

bool IsUpdating(const std::string& text) {
  return text.find("insert nodes") != std::string::npos ||
         text.find("delete nodes") != std::string::npos ||
         text.find("replace value") != std::string::npos ||
         text.find("rename node") != std::string::npos;
}

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(XRPC_CORPUS_DIR)) {
    if (entry.path().extension() == ".xq") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(DifferentialCorpusTest, EveryCorpusQueryAgreesAcrossEngines) {
  const auto files = CorpusFiles();
  ASSERT_GE(files.size(), 10u) << "corpus went missing from "
                               << XRPC_CORPUS_DIR;
  DifferentialHarness harness;
  int relational_runs = 0;
  for (const auto& path : files) {
    const std::string text = ReadFile(path);
    ASSERT_FALSE(text.empty()) << path;
    EXPECT_EQ(DifferentialHarness::SkiplistReason(text), "")
        << path << " is skiplisted; corpus entries must be real agreements";
    Comparison c = harness.Run(text, IsUpdating(text));
    EXPECT_TRUE(c.agree) << path.filename() << "\n  relational : "
                         << c.relational_result
                         << "\n  interpreter: " << c.interpreter_result;
    EXPECT_TRUE(c.relational_ok) << path.filename() << ": "
                                 << c.relational_result;
    if (!c.fell_back) ++relational_runs;
  }
  // The corpus is only a differential test if a decent share of it really
  // runs on the relational engine instead of falling back.
  EXPECT_GE(relational_runs, static_cast<int>(files.size()) / 2);
}

TEST(DifferentialCorpusTest, ForcedDivergenceIsMinimizedAndReproducible) {
  // Self-test of the whole pipeline: with force_divergence on, the first
  // non-empty agreeing result counts as a divergence, gets minimized, and
  // round-trips through the repro file format.
  DifferentialConfig config;
  config.force_divergence = true;
  DifferentialHarness harness(config);
  GeneratorConfig gcfg;
  gcfg.seed = 99;
  QueryGenerator gen(gcfg);

  Divergence d;
  bool found = false;
  for (int i = 0; i < 10 && !found; ++i) {
    GeneratedQuery q = gen.Next();
    found = harness.RunAndMinimize(&q, &d);
  }
  ASSERT_TRUE(found);
  EXPECT_FALSE(d.query.empty());
  EXPECT_LE(d.query.size(), d.original_query.size());

  const std::string file = FormatReproFile(d);
  auto parsed = ParseReproFile(file);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().query, d.query);
  EXPECT_EQ(parsed.value().seed, d.seed);
  EXPECT_TRUE(parsed.value().force);

  // Replaying the minimized query reproduces the recorded divergence.
  Comparison replay = harness.Run(parsed.value().query, parsed.value().updating);
  EXPECT_FALSE(replay.agree);
  EXPECT_EQ(replay.relational_result, d.comparison.relational_result);
  EXPECT_EQ(replay.interpreter_result, d.comparison.interpreter_result);
}

TEST(DifferentialCorpusTest, ShardedQueriesAgreeAndAreShardCountInvariant) {
  // Scatter-gather determinism, differentially. Two layered contracts:
  //  (a) at every shard count the relational scatter-gather merge and the
  //      interpreter's shard-order concatenation agree — including on the
  //      broadcast, whose result order is shard-rank order by design and
  //      therefore legitimately varies WITH the shard count;
  //  (b) queries whose order does not depend on shard ranks (the
  //      key-routed semijoin: one shard per call; aggregates over the
  //      assembled document) are byte-identical over 1, 4, and 16 shards.
  struct ShardQuery {
    std::string text;
    bool shard_count_invariant;
  };
  const std::vector<ShardQuery> queries = {
      // Key-routed Bulk RPC semijoin (prunes to one shard per call).
      {"import module namespace b=\"functions_b\" at \"b.xq\";\n"
       "for $p in doc(\"persons.xml\")//person\n"
       "let $ca := execute at {\"shard:auctions.xml\"}"
       " {b:Q_B3(string($p/@id))}\n"
       "return if (empty($ca)) then ()"
       " else <result>{$p, $ca/annotation}</result>",
       true},
      // Broadcast (no partition key bound): merged in shard-rank order.
      {"import module namespace b=\"functions_b\" at \"b.xq\";\n"
       "execute at {\"shard:auctions.xml\"} {b:Q_B1()}",
       false},
      // Aggregate over the shard-assembled virtual document at p0.
      {"count(doc(\"shard:auctions.xml\")//closed_auction)", true},
  };
  std::vector<std::string> baseline(queries.size());
  for (int shards : {1, 4, 16}) {
    DifferentialConfig config;
    config.num_shards = shards;
    DifferentialHarness harness(config);
    for (size_t i = 0; i < queries.size(); ++i) {
      Comparison c = harness.Run(queries[i].text, /*updating=*/false);
      EXPECT_TRUE(c.agree) << shards << " shards, query " << i << ":\n  rel "
                           << c.relational_result << "\n  int "
                           << c.interpreter_result;
      ASSERT_TRUE(c.relational_ok) << c.relational_result;
      EXPECT_FALSE(c.relational_result.empty());
      if (shards == 1) {
        baseline[i] = c.relational_result;
      } else if (queries[i].shard_count_invariant) {
        EXPECT_EQ(c.relational_result, baseline[i])
            << shards << " shards, query " << i;
      }
    }
  }
}

TEST(DifferentialCorpusTest, NormalizationCanonicalizesNumericLexicalForms) {
  xdm::Sequence ints{xdm::Item(xdm::AtomicValue::Integer(4))};
  xdm::Sequence doubles{xdm::Item(xdm::AtomicValue::Double(4.0))};
  EXPECT_EQ(NormalizeSequence(ints), NormalizeSequence(doubles));
  xdm::Sequence frac{xdm::Item(xdm::AtomicValue::Double(2.5))};
  EXPECT_EQ(NormalizeSequence(frac), "2.5");
  EXPECT_EQ(NormalizeSequence({}), "");
}

}  // namespace
}  // namespace xrpc::fuzz
