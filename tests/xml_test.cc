// Unit tests for the XML substrate: parser, serializer, node tree,
// document order and identity.

#include <gtest/gtest.h>

#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrpc::xml {
namespace {

TEST(XmlParser, ParsesSimpleDocument) {
  auto doc = ParseXml("<films><film>The Rock</film></films>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Node& root = *doc.value();
  ASSERT_EQ(root.kind(), NodeKind::kDocument);
  ASSERT_EQ(root.children().size(), 1u);
  const Node& films = *root.children()[0];
  EXPECT_EQ(films.name().local, "films");
  ASSERT_EQ(films.children().size(), 1u);
  EXPECT_EQ(films.children()[0]->StringValue(), "The Rock");
}

TEST(XmlParser, ParsesAttributes) {
  auto doc = ParseXml(R"(<person id="p42" name="Alice &amp; Bob"/>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Node& person = *doc.value()->children()[0];
  ASSERT_EQ(person.attributes().size(), 2u);
  const Node* id = person.FindAttribute(QName("id"));
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->value(), "p42");
  const Node* name = person.FindAttribute(QName("name"));
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->value(), "Alice & Bob");
}

TEST(XmlParser, RejectsDuplicateAttributes) {
  auto doc = ParseXml(R"(<a x="1" x="2"/>)");
  EXPECT_FALSE(doc.ok());
}

TEST(XmlParser, ParsesEntitiesAndCharRefs) {
  auto doc = ParseXml("<t>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->StringValue(), "<>&\"'AB");
}

TEST(XmlParser, ParsesCdata) {
  auto doc = ParseXml("<t><![CDATA[a <b> & c]]></t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->StringValue(), "a <b> & c");
}

TEST(XmlParser, ParsesCommentsAndPis) {
  auto doc = ParseXml("<t><!-- note --><?target data?></t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Node& t = *doc.value()->children()[0];
  ASSERT_EQ(t.children().size(), 2u);
  EXPECT_EQ(t.children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(t.children()[0]->value(), " note ");
  EXPECT_EQ(t.children()[1]->kind(), NodeKind::kProcessingInstruction);
  EXPECT_EQ(t.children()[1]->name().local, "target");
  EXPECT_EQ(t.children()[1]->value(), "data");
}

TEST(XmlParser, ResolvesNamespaces) {
  auto doc = ParseXml(
      R"(<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">)"
      R"(<env:Body/></env:Envelope>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Node& env = *doc.value()->children()[0];
  EXPECT_EQ(env.name().ns_uri, kSoapEnvelopeNs);
  EXPECT_EQ(env.name().local, "Envelope");
  EXPECT_EQ(env.children()[0]->name().ns_uri, kSoapEnvelopeNs);
}

TEST(XmlParser, DefaultNamespaceAppliesToElementsNotAttributes) {
  auto doc = ParseXml(R"(<a xmlns="urn:x" b="1"><c/></a>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Node& a = *doc.value()->children()[0];
  EXPECT_EQ(a.name().ns_uri, "urn:x");
  EXPECT_EQ(a.attributes()[0]->name().ns_uri, "");
  EXPECT_EQ(a.children()[0]->name().ns_uri, "urn:x");
}

TEST(XmlParser, UndeclaredPrefixIsAnError) {
  EXPECT_FALSE(ParseXml("<foo:a/>").ok());
}

TEST(XmlParser, MismatchedTagsAreAnError) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
}

TEST(XmlParser, SkipsPrologAndDoctype) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"
      "<!DOCTYPE note [ <!ENTITY x \"y\"> ]>\n"
      "<note/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->children()[0]->name().local, "note");
}

TEST(XmlParser, StripIgnorableWhitespaceOption) {
  ParseOptions opts;
  opts.strip_ignorable_whitespace = true;
  auto doc = ParseXml("<a>\n  <b/>\n  <c/>\n</a>", opts);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->children()[0]->children().size(), 2u);
}

TEST(XmlParser, PreservesMixedContentWhitespace) {
  auto doc = ParseXml("<a>x <b/> y</a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->StringValue(), "x  y");
}

TEST(XmlParser, FragmentAllowsSiblings) {
  auto frag = ParseXmlFragment("<a/><b/>text");
  ASSERT_TRUE(frag.ok()) << frag.status();
  EXPECT_EQ(frag.value()->children().size(), 3u);
}

TEST(XmlSerializer, RoundTripsDocument) {
  const char* text =
      R"(<films><film name="The Rock &amp; Co"><actor>Sean</actor></film></films>)";
  auto doc = ParseXml(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(SerializeNode(*doc.value()), text);
}

TEST(XmlSerializer, EscapesSpecialCharacters) {
  NodePtr e = Node::NewElement(QName("t"));
  e->AppendChild(Node::NewText("a<b>&c"));
  e->SetAttribute(Node::NewAttribute(QName("x"), "v\"w"));
  EXPECT_EQ(SerializeNode(*e), "<t x=\"v&quot;w\">a&lt;b&gt;&amp;c</t>");
}

TEST(XmlSerializer, EmitsNamespaceDeclarations) {
  NodePtr e = Node::NewElement(QName("urn:ns", "root", "p"));
  e->AppendChild(Node::NewElement(QName("urn:ns", "kid", "p")));
  std::string out = SerializeNode(*e);
  EXPECT_EQ(out, R"(<p:root xmlns:p="urn:ns"><p:kid/></p:root>)");
}

TEST(XmlSerializer, XmlDeclarationOption) {
  auto doc = ParseXml("<a/>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions opts;
  opts.xml_declaration = true;
  EXPECT_EQ(SerializeNode(*doc.value(), opts),
            "<?xml version=\"1.0\" encoding=\"utf-8\"?><a/>");
}

TEST(XmlNode, StringValueConcatenatesDescendantText) {
  auto doc = ParseXml("<a>x<b>y<c>z</c></b>w</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->StringValue(), "xyzw");
}

TEST(XmlNode, CloneCreatesFreshIdentity) {
  auto doc = ParseXml("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  NodePtr copy = doc.value()->Clone();
  EXPECT_NE(copy.get(), doc.value().get());
  EXPECT_EQ(SerializeNode(*copy), SerializeNode(*doc.value()));
  // Fresh ordinals: the copy's root sorts after the original's.
  EXPECT_LT(CompareDocumentOrder(doc.value().get(), copy.get()), 0);
}

TEST(XmlNode, DocumentOrderWithinTree) {
  auto doc = ParseXml("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  const Node& a = *doc.value()->children()[0];
  const Node* b = a.children()[0].get();
  const Node* c = a.children()[1].get();
  const Node* d = c->children()[0].get();
  EXPECT_LT(CompareDocumentOrder(&a, b), 0);
  EXPECT_LT(CompareDocumentOrder(b, c), 0);
  EXPECT_LT(CompareDocumentOrder(c, d), 0);
  EXPECT_GT(CompareDocumentOrder(d, b), 0);
  EXPECT_EQ(CompareDocumentOrder(d, d), 0);
}

TEST(XmlNode, AttributesOrderBeforeChildren) {
  auto doc = ParseXml(R"(<a x="1"><b/></a>)");
  ASSERT_TRUE(doc.ok());
  const Node& a = *doc.value()->children()[0];
  const Node* attr = a.attributes()[0].get();
  const Node* b = a.children()[0].get();
  EXPECT_LT(CompareDocumentOrder(&a, attr), 0);
  EXPECT_LT(CompareDocumentOrder(attr, b), 0);
}

TEST(XmlNode, IsAncestorOf) {
  auto doc = ParseXml("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  const Node& a = *doc.value()->children()[0];
  const Node* c = a.children()[0]->children()[0].get();
  EXPECT_TRUE(IsAncestorOf(&a, c));
  EXPECT_FALSE(IsAncestorOf(c, &a));
  EXPECT_FALSE(IsAncestorOf(c, c));
}

TEST(XmlNode, RemoveChildReindexesSiblings) {
  auto doc = ParseXml("<a><b/><c/><d/></a>");
  ASSERT_TRUE(doc.ok());
  Node* a = doc.value()->children()[0].get();
  a->RemoveChild(a->children()[1].get());
  ASSERT_EQ(a->children().size(), 2u);
  EXPECT_EQ(a->children()[0]->name().local, "b");
  EXPECT_EQ(a->children()[1]->name().local, "d");
  EXPECT_EQ(a->children()[1]->IndexInParent(), 1u);
}

TEST(XmlNode, InsertBeforeMaintainsOrder) {
  auto doc = ParseXml("<a><b/><d/></a>");
  ASSERT_TRUE(doc.ok());
  Node* a = doc.value()->children()[0].get();
  a->InsertBefore(Node::NewElement(QName("c")), a->children()[1].get());
  EXPECT_EQ(SerializeNode(*a), "<a><b/><c/><d/></a>");
}

TEST(XmlSerializer, CdataEndMarkerInTextSurvivesRoundTrip) {
  // "]]>" must never appear literally in character data (XML 1.0 §2.4).
  // EscapeText covers it by escaping every '>', so the marker serializes
  // as "]]&gt;" — pin that, and that a reparse restores the exact value.
  auto doc = ParseXml("<t>if (a]]&gt;b) { }</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->children()[0]->StringValue(), "if (a]]>b) { }");
  std::string wire = SerializeNode(*doc.value());
  EXPECT_EQ(wire, "<t>if (a]]&gt;b) { }</t>");
  auto back = ParseXml(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value()->children()[0]->StringValue(), "if (a]]>b) { }");
}

TEST(XmlSerializer, CarriageReturnInTextSurvivesRoundTrip) {
  // A literal CR in serialized character data would be normalized to LF
  // by any conforming parser on re-parse (XML 1.0 §2.11), silently
  // corrupting the value; only the &#13; character reference survives.
  auto doc = ParseXml("<t>a&#13;b</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->children()[0]->StringValue(), "a\rb");
  std::string wire = SerializeNode(*doc.value());
  EXPECT_EQ(wire, "<t>a&#13;b</t>");
  auto back = ParseXml(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value()->children()[0]->StringValue(), "a\rb");
}

TEST(QNameTest, EqualityIgnoresPrefix) {
  EXPECT_EQ(QName("urn:x", "a", "p"), QName("urn:x", "a", "q"));
  EXPECT_NE(QName("urn:x", "a"), QName("urn:y", "a"));
  EXPECT_EQ(QName("urn:x", "a", "p").Clark(), "{urn:x}a");
  EXPECT_EQ(QName("urn:x", "a", "p").Lexical(), "p:a");
}

}  // namespace
}  // namespace xrpc::xml
