// Tests for the SOAP XRPC codec: s2n/n2s marshaling (including the
// call-by-value fragment-isolation guarantees), request/response/fault
// envelopes, Bulk RPC and the queryID isolation extension.

#include <gtest/gtest.h>

#include "soap/marshal.h"
#include "soap/message.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrpc::soap {
namespace {

using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;

Sequence MixedSequence() {
  Sequence seq;
  seq.push_back(Item(AtomicValue::Integer(2)));
  seq.push_back(Item(AtomicValue::Double(3.1)));
  seq.push_back(Item(AtomicValue::String("Sean Connery")));
  seq.push_back(Item(AtomicValue::Boolean(true)));
  auto elem = xml::ParseXmlFragment("<name pos=\"1\">The Rock</name>");
  seq.push_back(Item::Node(elem.value()->children()[0]));
  return seq;
}

TEST(Marshal, AtomicValuesCarryXsiType) {
  Sequence seq{Item(AtomicValue::Integer(2)), Item(AtomicValue::Double(3.1))};
  std::string xml_text = xml::SerializeNode(*SequenceToNode(seq));
  EXPECT_NE(xml_text.find("xsi:type=\"xs:integer\""), std::string::npos);
  EXPECT_NE(xml_text.find("xsi:type=\"xs:double\""), std::string::npos);
  EXPECT_NE(xml_text.find(">2<"), std::string::npos);
  EXPECT_NE(xml_text.find(">3.1<"), std::string::npos);
}

TEST(Marshal, RoundTripsMixedSequence) {
  Sequence seq = MixedSequence();
  xml::NodePtr node = SequenceToNode(seq);
  // Simulate the wire: serialize and reparse.
  std::string text = xml::SerializeNode(*node);
  auto reparsed = xml::ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  auto back = NodeToSequence(*reparsed.value()->children()[0]);
  ASSERT_TRUE(back.ok()) << back.status();
  const Sequence& out = back.value();
  ASSERT_EQ(out.size(), seq.size());
  EXPECT_EQ(out[0].atomic().AsInteger(), 2);
  EXPECT_EQ(out[0].atomic().type(), xdm::AtomicType::kInteger);
  EXPECT_DOUBLE_EQ(out[1].atomic().AsDouble(), 3.1);
  EXPECT_EQ(out[2].atomic().ToString(), "Sean Connery");
  EXPECT_TRUE(out[3].atomic().AsBoolean());
  ASSERT_TRUE(out[4].IsNode());
  EXPECT_EQ(xml::SerializeNode(*out[4].node()),
            "<name pos=\"1\">The Rock</name>");
}

TEST(Marshal, AllNodeKindsRoundTrip) {
  Sequence seq;
  auto doc = xml::ParseXml("<d><x/></d>");
  seq.push_back(Item::Node(doc.value()));  // document
  seq.push_back(Item::Node(xml::Node::NewAttribute(xml::QName("x"), "y")));
  seq.push_back(Item::Node(xml::Node::NewText("some text")));
  seq.push_back(Item::Node(xml::Node::NewComment("a comment")));
  seq.push_back(
      Item::Node(xml::Node::NewProcessingInstruction("tgt", "data")));

  auto back = NodeToSequence(*SequenceToNode(seq));
  ASSERT_TRUE(back.ok()) << back.status();
  const Sequence& out = back.value();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].node()->kind(), xml::NodeKind::kDocument);
  EXPECT_EQ(xml::SerializeNode(*out[0].node()), "<d><x/></d>");
  EXPECT_EQ(out[1].node()->kind(), xml::NodeKind::kAttribute);
  EXPECT_EQ(out[1].node()->value(), "y");
  EXPECT_EQ(out[2].node()->kind(), xml::NodeKind::kText);
  EXPECT_EQ(out[2].node()->value(), "some text");
  EXPECT_EQ(out[3].node()->kind(), xml::NodeKind::kComment);
  EXPECT_EQ(out[4].node()->kind(),
            xml::NodeKind::kProcessingInstruction);
  EXPECT_EQ(out[4].node()->name().local, "tgt");
}

TEST(Marshal, CallByValueIsolatesFragments) {
  // Nodes coming out of n2s() must be fresh fragments: upward navigation
  // ends at the value itself — the SOAP envelope is unreachable.
  auto doc = xml::ParseXml("<parent><child>v</child></parent>");
  xml::Node* child = doc.value()->children()[0]->children()[0].get();
  Sequence seq{Item::NodeInTree(child, doc.value())};
  auto back = NodeToSequence(*SequenceToNode(seq));
  ASSERT_TRUE(back.ok());
  const xml::Node* unmarshaled = back.value()[0].node();
  EXPECT_EQ(unmarshaled->name().local, "child");
  EXPECT_EQ(unmarshaled->parent(), nullptr);       // no upward navigation
  EXPECT_NE(unmarshaled, child);                   // fresh identity
}

TEST(Marshal, AncestorRelationshipBetweenParamsIsDestroyed) {
  // Passing both an element and its descendant: the remote side sees two
  // unrelated fragments (Section 2.2, call-by-value discussion).
  auto doc = xml::ParseXml("<a><b/></a>");
  xml::Node* a = doc.value()->children()[0].get();
  xml::Node* b = a->children()[0].get();
  Sequence seq{Item::NodeInTree(a, doc.value()),
               Item::NodeInTree(b, doc.value())};
  auto back = NodeToSequence(*SequenceToNode(seq));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(
      xml::IsAncestorOf(back.value()[0].node(), back.value()[1].node()));
}

TEST(Message, RequestMatchesPaperExample) {
  // The Q1 request message of Section 2.1.
  XrpcRequest req;
  req.module_ns = "films";
  req.method = "filmsByActor";
  req.location = "http://x.example.org/film.xq";
  req.arity = 1;
  req.calls.push_back({Sequence{Item(AtomicValue::String("Sean Connery"))}});
  std::string text = SerializeRequest(req);
  EXPECT_NE(text.find("<?xml version=\"1.0\" encoding=\"utf-8\"?>"),
            std::string::npos);
  EXPECT_NE(text.find("module=\"films\""), std::string::npos);
  EXPECT_NE(text.find("method=\"filmsByActor\""), std::string::npos);
  EXPECT_NE(text.find("arity=\"1\""), std::string::npos);
  EXPECT_NE(text.find("location=\"http://x.example.org/film.xq\""),
            std::string::npos);
  EXPECT_NE(text.find("Sean Connery"), std::string::npos);
  EXPECT_NE(text.find("http://www.w3.org/2003/05/soap-envelope"),
            std::string::npos);
  EXPECT_NE(text.find("http://monetdb.cwi.nl/XQuery/XRPC.xsd"),
            std::string::npos);

  auto back = ParseRequest(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->module_ns, "films");
  EXPECT_EQ(back->method, "filmsByActor");
  EXPECT_EQ(back->arity, 1u);
  ASSERT_EQ(back->calls.size(), 1u);
  ASSERT_EQ(back->calls[0].size(), 1u);
  EXPECT_EQ(back->calls[0][0][0].atomic().ToString(), "Sean Connery");
  EXPECT_FALSE(back->updating);
  EXPECT_FALSE(back->query_id.has_value());
}

TEST(Message, BulkRequestCarriesMultipleCalls) {
  // The Bulk RPC example of Section 3.2 (two calls, one per actor).
  XrpcRequest req;
  req.module_ns = "films";
  req.method = "filmsByActor";
  req.arity = 1;
  req.calls.push_back({Sequence{Item(AtomicValue::String("Julie Andrews"))}});
  req.calls.push_back({Sequence{Item(AtomicValue::String("Sean Connery"))}});
  auto back = ParseRequest(SerializeRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->calls.size(), 2u);
  EXPECT_EQ(back->calls[0][0][0].atomic().ToString(), "Julie Andrews");
  EXPECT_EQ(back->calls[1][0][0].atomic().ToString(), "Sean Connery");
}

TEST(Message, QueryIdRoundTrips) {
  XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 0;
  req.calls.push_back({});
  QueryId qid;
  qid.id = "q-1234";
  qid.host = "xrpc://p0.example.org";
  qid.timestamp = 987654321;
  qid.timeout_sec = 42;
  req.query_id = qid;
  auto back = ParseRequest(SerializeRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_TRUE(back->query_id.has_value());
  EXPECT_EQ(back->query_id->id, "q-1234");
  EXPECT_EQ(back->query_id->host, "xrpc://p0.example.org");
  EXPECT_EQ(back->query_id->timestamp, 987654321);
  EXPECT_EQ(back->query_id->timeout_sec, 42);
}

TEST(Message, UpdatingFlagRoundTrips) {
  XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 0;
  req.updating = true;
  req.calls.push_back({});
  auto back = ParseRequest(SerializeRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->updating);
}

TEST(Message, ArityMismatchRejected) {
  XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 2;  // but the call has only one parameter
  req.calls.push_back({Sequence{Item(AtomicValue::Integer(1))}});
  auto back = ParseRequest(SerializeRequest(req));
  EXPECT_FALSE(back.ok());
}

TEST(Message, ResponseRoundTripsWithPeers) {
  XrpcResponse resp;
  resp.module_ns = "films";
  resp.method = "filmsByActor";
  resp.results.push_back(Sequence{Item(AtomicValue::Integer(7))});
  resp.results.push_back(Sequence{});
  resp.participating_peers = {"xrpc://y.example.org", "xrpc://z.example.org"};
  auto back = ParseResponse(SerializeResponse(resp));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->results.size(), 2u);
  EXPECT_EQ(back->results[0][0].atomic().AsInteger(), 7);
  EXPECT_TRUE(back->results[1].empty());
  ASSERT_EQ(back->participating_peers.size(), 2u);
  EXPECT_EQ(back->participating_peers[0], "xrpc://y.example.org");
}

TEST(Message, FaultBecomesSoapFaultStatus) {
  Fault fault;
  fault.code = "env:Sender";
  fault.reason = "could not load module!";
  std::string text = SerializeFault(fault);
  EXPECT_NE(text.find("env:Fault"), std::string::npos);
  EXPECT_NE(text.find("could not load module!"), std::string::npos);
  auto back = ParseResponse(text);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kSoapFault);
  EXPECT_NE(back.status().message().find("could not load module!"),
            std::string::npos);
}

TEST(Message, FaultFromStatusClassifiesSenderVsReceiver) {
  EXPECT_EQ(FaultFromStatus(Status::NotFound("x")).code, "env:Sender");
  EXPECT_EQ(FaultFromStatus(Status::ParseError("x")).code, "env:Sender");
  EXPECT_EQ(FaultFromStatus(Status::Internal("x")).code, "env:Receiver");
  EXPECT_EQ(FaultFromStatus(Status::EvalError("x")).code, "env:Receiver");
}

TEST(Message, GarbageIsRejected) {
  EXPECT_FALSE(ParseRequest("not xml").ok());
  EXPECT_FALSE(ParseRequest("<a/>").ok());
  EXPECT_FALSE(ParseResponse("<a/>").ok());
}

// ---------------------------------------------------------------------------
// xrpc:deadline header (end-to-end budget propagation)

namespace {
XrpcRequest MinimalRequest() {
  XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 0;
  req.calls.push_back({});
  return req;
}
}  // namespace

TEST(Message, DeadlineHeaderRoundTrips) {
  XrpcRequest req = MinimalRequest();
  req.deadline_us = 1'500'000;
  std::string text = SerializeRequest(req);
  EXPECT_NE(text.find("Header"), std::string::npos);
  EXPECT_NE(text.find(">1500000<"), std::string::npos);
  auto back = ParseRequest(text);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_TRUE(back->deadline_us.has_value());
  EXPECT_EQ(*back->deadline_us, 1'500'000);
}

TEST(Message, HeaderFreeRequestHasNoDeadlineAndNoHeaderElement) {
  // Absent header => exactly today's wire format and today's semantics.
  std::string text = SerializeRequest(MinimalRequest());
  EXPECT_EQ(text.find("Header"), std::string::npos);
  auto back = ParseRequest(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_FALSE(back->deadline_us.has_value());
}

TEST(Message, ZeroDeadlineIsValidOnTheWire) {
  // An exhausted-but-present budget parses fine; rejecting it is the
  // server handler's job (admission control), not the codec's.
  XrpcRequest req = MinimalRequest();
  req.deadline_us = 0;
  auto back = ParseRequest(SerializeRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_TRUE(back->deadline_us.has_value());
  EXPECT_EQ(*back->deadline_us, 0);
}

TEST(Message, MalformedDeadlineHeaderRejected) {
  XrpcRequest req = MinimalRequest();
  req.deadline_us = 777;
  std::string text = SerializeRequest(req);
  const size_t pos = text.find(">777<");
  ASSERT_NE(pos, std::string::npos);
  std::string garbled = text;
  garbled.replace(pos, 5, ">soon<");
  auto back = ParseRequest(garbled);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(back.status().message().find("xrpc:deadline"), std::string::npos);
}

TEST(Message, NegativeDeadlineHeaderRejected) {
  XrpcRequest req = MinimalRequest();
  req.deadline_us = 777;
  std::string text = SerializeRequest(req);
  const size_t pos = text.find(">777<");
  ASSERT_NE(pos, std::string::npos);
  std::string garbled = text;
  garbled.replace(pos, 5, ">-50<");
  auto back = ParseRequest(garbled);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(Message, UnknownHeaderChildrenIgnored) {
  // mustUnderstand-free extensibility: a newer client's extra header
  // entries must not break this peer.
  XrpcRequest req = MinimalRequest();
  req.deadline_us = 42;
  std::string text = SerializeRequest(req);
  const size_t pos = text.find("<xrpc:deadline");
  ASSERT_NE(pos, std::string::npos);
  std::string extended = text;
  extended.insert(pos,
                  "<x:futureExtension xmlns:x=\"urn:example:ext\">opaque"
                  "</x:futureExtension>");
  auto back = ParseRequest(extended);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_TRUE(back->deadline_us.has_value());
  EXPECT_EQ(*back->deadline_us, 42);
}

TEST(Message, DeadlineAndCancelledStatusesSurviveFaultRoundTrip) {
  // A downstream hop's DeadlineExceeded must arrive typed at the caller —
  // not as a generic SoapFault — so it is never retried and feeds the
  // deadline metrics.
  {
    Fault f = FaultFromStatus(Status::DeadlineExceeded("budget gone"));
    Status back = StatusFromFault(f);
    EXPECT_EQ(back.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(back.message().find("budget gone"), std::string::npos);
  }
  {
    Fault f = FaultFromStatus(Status::Cancelled("killed by admin"));
    Status back = StatusFromFault(f);
    EXPECT_EQ(back.code(), StatusCode::kCancelled);
    EXPECT_NE(back.message().find("killed by admin"), std::string::npos);
  }
  // Ordinary faults still map to kSoapFault.
  Status generic = StatusFromFault(FaultFromStatus(Status::EvalError("boom")));
  EXPECT_EQ(generic.code(), StatusCode::kSoapFault);
}

// Property sweep: atomic values of every type survive the wire.
class AtomicWireRoundTrip
    : public ::testing::TestWithParam<xdm::AtomicValue> {};

TEST_P(AtomicWireRoundTrip, SurvivesSerializeParse) {
  Sequence seq{Item(GetParam())};
  std::string wire = xml::SerializeNode(*SequenceToNode(seq));
  auto reparsed = xml::ParseXml(wire);
  ASSERT_TRUE(reparsed.ok());
  auto back = NodeToSequence(*reparsed.value()->children()[0]);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ(back.value()[0].atomic().type(), GetParam().type());
  EXPECT_EQ(back.value()[0].atomic().ToString(), GetParam().ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Values, AtomicWireRoundTrip,
    ::testing::Values(AtomicValue::Integer(0), AtomicValue::Integer(-123456),
                      AtomicValue::Double(2.5e-3), AtomicValue::Boolean(false),
                      AtomicValue::String("with <markup> & \"quotes\""),
                      AtomicValue::String(""), AtomicValue::Untyped("u"),
                      AtomicValue::Decimal(1.25),
                      AtomicValue::Date("2007-09-23"),
                      AtomicValue::AnyUri("xrpc://y.example.org")));

}  // namespace
}  // namespace xrpc::soap
