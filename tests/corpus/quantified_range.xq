(: Quantified expressions over range sequences. :)
(every $q in 1 to 4 satisfies $q >= 1, some $q in 1 to 5 satisfies $q > 4)
