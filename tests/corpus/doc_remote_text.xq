(: Remote document fetch with a trailing text() step. :)
doc("xrpc://B/auctions.xml")/site/closed_auctions/closed_auction/price/text()
