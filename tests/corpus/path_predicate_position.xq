(: Positional predicate on a descendant step of the remote document. :)
doc("xrpc://B/auctions.xml")//item[position() <= 1]
