(: Aggregates mixed into integer arithmetic with idiv/mod. :)
6 + count(doc("persons.xml")/site/people/person/text()) - 7 mod 6 - 11
