(: XQUF insert: both engines (the relational peer falls back for XQUF)
   must produce identical post-update document state. :)
insert nodes <person id="personX"><name>Xavier</name></person>
  into doc("persons.xml")/site/people
