(: FLWOR over the remote auction document with a numeric where filter;
   the where clause must compile to a relational select, not a fallback. :)
for $a in doc("xrpc://B/auctions.xml")/site/open_auctions/open_auction
where 18 < number($a/price)
return $a/price
