(: String builtins of the relational subset. :)
(concat("a", "-", "b"),
 contains("Sean Connery", "Conn"),
 string-join(("x", "y", "z"), "/"),
 starts-with("person0", "per"),
 ends-with("person0", "0"))
