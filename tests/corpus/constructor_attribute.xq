(: Direct element constructor with computed attribute and content. :)
<r k="{count(doc("films.xml")//film)}">{doc("films.xml")/films/film[1]/name}</r>
