import module namespace b="functions_b" at "b.xq";
import module namespace tst="test" at "test.xq";
<row>{execute at {"xrpc://B"} {tst:echo(string("The"))}}</row>
