(: XQUF delete with positional predicate. :)
delete nodes doc("persons.xml")/site/people/person[6]
