import module namespace b="functions_b" at "b.xq";
import module namespace tst="test" at "test.xq";
execute at {"xrpc://B"} {b:Q_B1()}
