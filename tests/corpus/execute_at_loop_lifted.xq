(: execute-at inside a FLWOR loop: the relational engine must lift the
   whole loop into one Bulk RPC request. :)
import module namespace b="functions_b" at "b.xq";
import module namespace tst="test" at "test.xq";
for $p in doc("persons.xml")/site/people/person
return execute at {"xrpc://B"} {b:Q_B3(string($p/name))}
