(: Set-ish builtins over node and atomic sequences. :)
(distinct-values((1, 2, 2, 3)),
 exists(doc("films.xml")//actor),
 empty(doc("films.xml")//director))
