(: XQUF replace value of the first film title. :)
replace value of node doc("films.xml")/films/film[1]/name with "Renamed"
