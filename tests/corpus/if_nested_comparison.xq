(: Nested conditionals with general comparisons on attributes. :)
for $p in doc("persons.xml")/site/people
return if ($p/@id != "person0") then <r>{count($p/person)}</r> else "none"
