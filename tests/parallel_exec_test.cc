// Differential determinism lane of the morsel-parallel executor
// (DESIGN.md §15): the same query on the same fixtures must produce
// BYTE-IDENTICAL output at every worker count — exec_threads ∈ {1, 2, 8}
// — because the deterministic merge concatenates per-morsel outputs in
// morsel order. Three angles:
//
//  1. the fuzz corpus replayed through the differential harness with the
//     relational network running parallel (the serial interpreter is the
//     reference, so every agreement is a byte-identity check);
//  2. seeded random queries, relational-vs-relational across worker counts;
//  3. the sharded scatter-gather fixtures, where parallelism covers the
//     execute-at assembly/unpack paths on top of step/filter/compare.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/peer_network.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "xdm/item.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace xrpc::fuzz {
namespace {

#ifndef XRPC_CORPUS_DIR
#error "XRPC_CORPUS_DIR must point at tests/corpus"
#endif

bool IsUpdating(const std::string& text) {
  return text.find("insert nodes") != std::string::npos ||
         text.find("delete nodes") != std::string::npos ||
         text.find("replace value") != std::string::npos ||
         text.find("rename node") != std::string::npos;
}

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(XRPC_CORPUS_DIR)) {
    if (entry.path().extension() == ".xq") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ParallelExecTest, CorpusAgreesAtEveryWorkerCount) {
  const auto files = CorpusFiles();
  ASSERT_GE(files.size(), 10u);
  // Per-file results, keyed by worker count; column-wise identity below.
  std::map<int, std::vector<std::string>> results;
  for (int threads : {1, 2, 8}) {
    DifferentialConfig config;
    config.exec_threads = threads;
    DifferentialHarness harness(config);
    for (const auto& path : files) {
      const std::string text = ReadFile(path);
      Comparison c = harness.Run(text, IsUpdating(text));
      // Agreement with the (always serial) interpreter at every worker
      // count: the parallel engine stayed correct, not just consistent.
      EXPECT_TRUE(c.agree) << path.filename() << " exec_threads=" << threads
                           << "\n  relational : " << c.relational_result
                           << "\n  interpreter: " << c.interpreter_result;
      results[threads].push_back(c.relational_result + "\n" +
                                 c.relational_state);
    }
  }
  // Byte-identity across worker counts, file by file.
  for (size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(results[2][i], results[1][i])
        << files[i].filename() << ": exec_threads=2 diverged from serial";
    EXPECT_EQ(results[8][i], results[1][i])
        << files[i].filename() << ": exec_threads=8 diverged from serial";
  }
}

TEST(ParallelExecTest, SeededRandomQueriesAreByteIdenticalAcrossWorkers) {
  // Generator-driven sweep: the same seeded query stream executed on three
  // identically provisioned relational networks at different worker
  // counts. Updating queries are skipped (the harness would need fixture
  // rebuilds per network; the corpus test covers XQUF).
  GeneratorConfig gcfg;
  gcfg.seed = 20260809;
  gcfg.update_ratio = 0.0;
  QueryGenerator gen(gcfg);

  std::map<int, std::unique_ptr<DifferentialHarness>> harnesses;
  for (int threads : {1, 2, 8}) {
    DifferentialConfig config;
    config.exec_threads = threads;
    harnesses[threads] = std::make_unique<DifferentialHarness>(config);
  }
  int executed = 0;
  for (int i = 0; i < 40; ++i) {
    GeneratedQuery q = gen.Next();
    const std::string text = q.Text();
    if (!DifferentialHarness::SkiplistReason(text).empty()) continue;
    std::map<int, Comparison> by_threads;
    for (auto& [threads, harness] : harnesses) {
      by_threads[threads] = harness->Run(text, false);
    }
    ++executed;
    const Comparison& serial = by_threads[1];
    for (int threads : {2, 8}) {
      const Comparison& c = by_threads[threads];
      EXPECT_EQ(c.relational_ok, serial.relational_ok)
          << "query " << i << " exec_threads=" << threads << ": " << text;
      EXPECT_EQ(c.relational_result, serial.relational_result)
          << "query " << i << " exec_threads=" << threads << ": " << text;
    }
  }
  EXPECT_GE(executed, 20);
}

// ---------------------------------------------------------------------------
// Sharded scatter-gather fixtures under parallel execution.

constexpr char kImportB[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n";

const char kShardSemiJoin[] = R"(
for $p in doc("persons.xml")//person
let $ca := execute at {"shard:auctions.xml"} {b:Q_B3(string($p/@id))}
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>)";

const char kShardBroadcast[] =
    R"(execute at {"shard:auctions.xml"} {b:Q_B1()})";

xmark::XmarkConfig ShardFixtureConfig() {
  xmark::XmarkConfig cfg;
  cfg.num_persons = 24;
  cfg.num_closed_auctions = 40;
  cfg.num_matches = 6;
  cfg.annotation_bytes = 16;
  return cfg;
}

std::unique_ptr<core::PeerNetwork> MakeShardedNetwork(int num_shards) {
  auto net = std::make_unique<core::PeerNetwork>();
  xmark::ShardLoadOptions opts;
  opts.num_shards = num_shards;
  auto loaded =
      xmark::LoadShardedXmark(net.get(), ShardFixtureConfig(), opts);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  core::Peer* p0 = net->AddPeer("p0", core::EngineKind::kRelational);
  EXPECT_TRUE(p0->AddDocument("persons.xml",
                              xmark::GeneratePersons(ShardFixtureConfig()))
                  .ok());
  EXPECT_TRUE(
      p0->RegisterModule(xmark::FunctionsBModuleSource(p0->uri()), "b.xq")
          .ok());
  return net;
}

std::string RunSharded(core::PeerNetwork* net, const std::string& query,
                       int exec_threads) {
  core::ExecuteOptions options;
  options.exec_threads = exec_threads;
  auto report = net->Execute("p0", query, options);
  if (!report.ok()) return "ERROR: " + report.status().ToString();
  return xdm::SequenceToString(report->result);
}

TEST(ParallelExecTest, ShardedScatterGatherIsByteIdenticalAcrossWorkers) {
  for (const std::string& query :
       {std::string(kImportB) + kShardSemiJoin,
        std::string(kImportB) + kShardBroadcast}) {
    for (int num_shards : {1, 4}) {
      auto net = MakeShardedNetwork(num_shards);
      const std::string serial = RunSharded(net.get(), query, 1);
      ASSERT_EQ(serial.rfind("ERROR", 0), std::string::npos) << serial;
      for (int threads : {2, 8}) {
        EXPECT_EQ(RunSharded(net.get(), query, threads), serial)
            << "shards=" << num_shards << " exec_threads=" << threads;
      }
    }
  }
}

TEST(ParallelExecTest, NetworkWideEnableAppliesAndReportsExecMetrics) {
  auto net = MakeShardedNetwork(4);
  const std::string query = std::string(kImportB) + kShardSemiJoin;
  const std::string serial = RunSharded(net.get(), query, 1);

  // EnableParallelExec switches the default (options.exec_threads = 0).
  net->EnableParallelExec(8);
  EXPECT_EQ(net->exec_threads(), 8);
  auto report = net->Execute("p0", query);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(xdm::SequenceToString(report->result), serial);

  // The morsel executor reported its work into the shared metrics.
  EXPECT_GT(net->metrics().exec_ops_total(), 0);
  EXPECT_GT(net->metrics().exec_morsels(), 0);
  const std::string dump = net->metrics().Report();
  EXPECT_NE(dump.find("exec:"), std::string::npos) << dump;
}

}  // namespace
}  // namespace xrpc::fuzz
