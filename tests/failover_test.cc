// Integration tests of shard replica failover and catalog epoch fencing
// (DESIGN.md §14). The central contracts: a read-only shard subcall whose
// primary is unreachable re-issues to a replica and returns a result
// byte-identical to the healthy run; an updating subcall NEVER fails over
// (at-most-once); when no replica survives, the query fails with one clean
// retriable-class fault within the deadline budget instead of hanging; and
// a mid-flight catalog version bump fences every stamped request, causing
// exactly one shard-map refetch + re-route.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/peer_network.h"
#include "server/rpc_client.h"
#include "soap/message.h"
#include "xdm/item.h"
#include "xml/serializer.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace xrpc::core {
namespace {

constexpr char kImportB[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n";

// Key-less call: broadcasts one shard-scoped subcall per shard, so a dead
// primary anywhere in the ring is on the query's critical path.
const char kBroadcast[] = R"(execute at {"shard:auctions.xml"} {b:Q_B1()})";

// Updating module used to prove at-most-once: each shard peer resolves
// doc("auctions.xml") to its own fragment, so the insert lands locally.
constexpr char kUpdModule[] = R"(
  module namespace u = "upd_shard";
  declare updating function u:stamp()
  { insert nodes <stamp/> into doc("auctions.xml")/site };
)";

constexpr int kNumShards = 3;
constexpr int64_t kDeadlineUs = 5'000'000;

xmark::XmarkConfig SmallConfig() {
  xmark::XmarkConfig cfg;
  cfg.num_persons = 24;
  cfg.num_closed_auctions = 40;
  cfg.num_matches = 6;
  cfg.annotation_bytes = 16;
  return cfg;
}

struct Deployment {
  std::unique_ptr<PeerNetwork> net;
  Peer* p0 = nullptr;
  std::vector<Peer*> shards;  ///< shard k's primary peer at index k
};

// Replicated ring deployment: `replication_factor` copies of every
// fragment (copy r of shard k at peer (k+r) mod kNumShards), plus a p0
// originator of the given engine.
Deployment MakeDeployment(int replication_factor, EngineKind p0_engine) {
  Deployment d;
  d.net = std::make_unique<PeerNetwork>();
  xmark::ShardLoadOptions opts;
  opts.num_shards = kNumShards;
  opts.replication_factor = replication_factor;
  auto loaded = xmark::LoadShardedXmark(d.net.get(), SmallConfig(), opts);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  d.shards = loaded->peers;
  d.p0 = d.net->AddPeer("p0", p0_engine);
  EXPECT_TRUE(
      d.p0->AddDocument("persons.xml", xmark::GeneratePersons(SmallConfig()))
          .ok());
  EXPECT_TRUE(d.p0
                  ->RegisterModule(xmark::FunctionsBModuleSource(d.p0->uri()),
                                   "b.xq")
                  .ok());
  return d;
}

std::string RunBroadcast(Deployment& d) {
  ExecuteOptions opts;
  opts.deadline_us = kDeadlineUs;
  auto report = d.net->Execute("p0", std::string(kImportB) + kBroadcast, opts);
  if (!report.ok()) return "ERROR: " + report.status().ToString();
  return xdm::SequenceToString(report->result);
}

// The healthy-run result every surviving chaos run must reproduce byte for
// byte. Computed once per engine from a fresh un-replicated deployment —
// replica answers must be indistinguishable from primary answers.
std::string HealthyBaseline(EngineKind engine) {
  Deployment d = MakeDeployment(/*replication_factor=*/1, engine);
  std::string out = RunBroadcast(d);
  EXPECT_EQ(out.find("ERROR"), std::string::npos) << out;
  EXPECT_FALSE(out.empty());
  return out;
}

TEST(FailoverTest, DeadPrimaryFailsOverToReplicaByteIdentically) {
  for (EngineKind engine :
       {EngineKind::kRelational, EngineKind::kInterpreter}) {
    const std::string baseline = HealthyBaseline(engine);
    Deployment d = MakeDeployment(/*replication_factor=*/2, engine);
    // Shard 0's primary goes dark; its replica (ring: peer 1) answers.
    d.shards[0]->Disconnect();
    EXPECT_EQ(RunBroadcast(d), baseline) << EngineKindToString(engine);
    const net::RpcMetrics& m = d.net->metrics();
    EXPECT_GE(m.failover_attempts(), 1) << EngineKindToString(engine);
    EXPECT_GE(m.failover_successes(), 1) << EngineKindToString(engine);
    EXPECT_EQ(m.failover_exhausted(), 0) << EngineKindToString(engine);
    // The observability contract the soak harness greps for.
    EXPECT_NE(m.Report().find("failover:"), std::string::npos);
  }
}

TEST(FailoverTest, MidScatterKillFailsOverWithinDeadline) {
  // The acceptance scenario: a replica-covered shard peer dies WHILE the
  // scatter is in flight (after the first post went out), and the query
  // still returns the byte-identical result within the deadline budget.
  for (EngineKind engine :
       {EngineKind::kRelational, EngineKind::kInterpreter}) {
    const std::string baseline = HealthyBaseline(engine);
    Deployment d = MakeDeployment(/*replication_factor=*/2, engine);
    bool killed = false;
    d.net->network().set_post_hook([&](int64_t serial) {
      if (serial >= 2 && !killed) {
        killed = true;
        d.shards[2]->Disconnect();  // replica lives at peer (2+1) mod 3 = 0
      }
    });
    const int64_t start_us = d.net->network().clock().NowMicros();
    EXPECT_EQ(RunBroadcast(d), baseline) << EngineKindToString(engine);
    const int64_t elapsed_us = d.net->network().clock().NowMicros() - start_us;
    EXPECT_LE(elapsed_us, kDeadlineUs) << EngineKindToString(engine);
    EXPECT_TRUE(killed);
    EXPECT_GE(d.net->metrics().failover_successes(), 1)
        << EngineKindToString(engine);
  }
}

TEST(FailoverTest, AllReplicasDeadYieldsOneCleanFaultWithinBudget) {
  // Shard 0 lives at peers 0 (primary) and 1 (replica); killing both
  // leaves it uncovered. The query must fail — with a single retriable-
  // class fault, inside the deadline budget, never a hang or a partial
  // merge.
  Deployment d = MakeDeployment(/*replication_factor=*/2,
                                EngineKind::kRelational);
  d.shards[0]->Disconnect();
  d.shards[1]->Disconnect();
  ExecuteOptions opts;
  opts.deadline_us = kDeadlineUs;
  const int64_t start_us = d.net->network().clock().NowMicros();
  auto report = d.net->Execute("p0", std::string(kImportB) + kBroadcast, opts);
  const int64_t elapsed_us = d.net->network().clock().NowMicros() - start_us;
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().code() == StatusCode::kNetworkError ||
              report.status().code() == StatusCode::kDeadlineExceeded)
      << report.status();
  EXPECT_LE(elapsed_us, kDeadlineUs + 1000);
  // Shard 0 exhausted its candidate list. (Shard 1 — whose primary, peer 1,
  // is also down — legitimately fails over to its live replica at peer 2;
  // the query still fails on shard 0's fault.)
  EXPECT_GE(d.net->metrics().failover_exhausted(), 1);
}

TEST(FailoverTest, UpdatingCallNeverFailsOver) {
  // At-most-once: the updating envelope toward the dead primary may have
  // reached it before the partition; re-issuing it to the replica could
  // apply the insert twice. The subcall must fail — with ZERO failover
  // attempts — even though a live replica holds the fragment.
  Deployment d = MakeDeployment(/*replication_factor=*/2,
                                EngineKind::kInterpreter);
  for (Peer* p : d.shards) {
    ASSERT_TRUE(p->RegisterModule(kUpdModule, "u.xq").ok());
  }
  ASSERT_TRUE(d.p0->RegisterModule(kUpdModule, "u.xq").ok());
  d.shards[0]->Disconnect();
  ExecuteOptions opts;
  opts.deadline_us = kDeadlineUs;
  auto report = d.net->Execute(
      "p0",
      "import module namespace u=\"upd_shard\" at \"u.xq\";\n"
      R"(execute at {"shard:auctions.xml"} {u:stamp()})",
      opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNetworkError)
      << report.status();
  EXPECT_EQ(d.net->metrics().failover_attempts(), 0);
  EXPECT_EQ(d.net->metrics().failover_successes(), 0);
}

TEST(FailoverTest, StaleEpochRejectReroutesExactlyOnce) {
  // The catalog version bumps after the scatter was stamped but before the
  // first request is admitted: every stamped request hits the epoch fence
  // (retriable StaleCatalog), the client refetches the shard map and
  // re-dispatches ONCE with the new version, and the result is still
  // byte-identical.
  for (EngineKind engine :
       {EngineKind::kRelational, EngineKind::kInterpreter}) {
    const std::string baseline = HealthyBaseline(engine);
    Deployment d = MakeDeployment(/*replication_factor=*/2, engine);
    bool bumped = false;
    d.net->network().set_post_hook([&](int64_t) {
      if (bumped) return;
      bumped = true;
      // An identical re-registration: only the version changes, so the
      // single re-route must succeed.
      ShardedCollection c;
      int64_t version = 0;
      ASSERT_TRUE(d.net->catalog().Snapshot("persons.xml", &c, &version));
      ASSERT_TRUE(d.net->catalog().RegisterCollection(c).ok());
    });
    EXPECT_EQ(RunBroadcast(d), baseline) << EngineKindToString(engine);
    EXPECT_TRUE(bumped);
    const net::RpcMetrics& m = d.net->metrics();
    EXPECT_GE(m.stale_catalog_rejects(), 1) << EngineKindToString(engine);
    EXPECT_GE(m.stale_catalog_observed(), 1) << EngineKindToString(engine);
    EXPECT_EQ(m.stale_catalog_reroutes(), 1) << EngineKindToString(engine);
  }
}

TEST(FailoverTest, OpenBreakerSkipsStraightToReplica) {
  // With a per-peer circuit breaker, the second query toward a dead
  // primary never dials it: the breaker short-circuits locally and the
  // failover path goes straight to the replica.
  const std::string baseline = HealthyBaseline(EngineKind::kRelational);
  Deployment d = MakeDeployment(/*replication_factor=*/2,
                                EngineKind::kRelational);
  d.net->EnableCircuitBreaker(
      {/*failure_threshold=*/1, /*cooldown_us=*/3'600'000'000});
  d.shards[0]->Disconnect();
  EXPECT_EQ(RunBroadcast(d), baseline);  // dial fails, opens the circuit
  const int64_t short_circuits_before = d.net->metrics().breaker_short_circuits();
  EXPECT_EQ(RunBroadcast(d), baseline);  // no dial: local refusal + failover
  const net::RpcMetrics& m = d.net->metrics();
  EXPECT_GE(m.breaker_opens(), 1);
  EXPECT_GT(m.breaker_short_circuits(), short_circuits_before);
  EXPECT_GE(m.failover_successes(), 2);
}

// -- Replicated writes and anti-entropy resync (DESIGN.md §17) --------------

// Updating broadcast through repeatable-read 2PC: every copy of every
// shard enlists as a participant (all-copies write).
constexpr char kUpdBroadcast[] =
    "declare option xrpc:isolation \"repeatable\";\n"
    "declare option xrpc:timeout \"60\";\n"
    "import module namespace u=\"upd_shard\" at \"u.xq\";\n"
    R"(execute at {"shard:auctions.xml"} {u:stamp()})";

std::string FragName(int shard) {
  return "auctions.xml." + std::to_string(shard);
}

/// Serialized bytes of one fragment as a peer currently stores it — the
/// unit of the byte-identity checks below.
std::string FragmentBytes(Peer* peer, const std::string& doc) {
  auto d = peer->database().GetDocument(doc);
  if (!d.ok()) return "<missing: " + d.status().ToString() + ">";
  return xml::SerializeNode(*d.value());
}

void RegisterUpdModule(Deployment& d) {
  for (Peer* p : d.shards) {
    ASSERT_TRUE(p->RegisterModule(kUpdModule, "u.xq").ok());
  }
  ASSERT_TRUE(d.p0->RegisterModule(kUpdModule, "u.xq").ok());
}

TEST(FailoverTest, UnknownCollectionFenceWinsOverDataVersionFence) {
  // Regression: the admission fences must check "is this collection known
  // here at all" BEFORE any version comparison. A scope naming a foreign
  // collection with an arbitrarily high data version must come back as the
  // catalog-class "unknown" fault — never StaleReplica, which would send
  // the caller skipping replicas of a collection this peer has never held.
  Deployment d = MakeDeployment(/*replication_factor=*/2,
                                EngineKind::kRelational);
  server::RpcClient client(&d.net->network(), {});
  soap::XrpcRequest req;
  req.module_ns = "functions_b";
  req.method = "Q_B1";
  req.arity = 0;
  req.calls.emplace_back();
  req.shard = soap::XrpcRequest::ShardScope{"ghost.xml", 0,
                                            /*catalog_version=*/1,
                                            /*data_version=*/999};
  auto resp = client.ExecuteBulk(d.shards[0]->uri(), req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kStaleCatalog) << resp.status();
  EXPECT_NE(resp.status().ToString().find("unknown"), std::string::npos)
      << resp.status();
  EXPECT_EQ(d.net->metrics().stale_replica_rejects(), 0);
}

TEST(FailoverTest, LaggingDataVersionFencesWithStaleReplica) {
  // The data fence proper: known collection, matching catalog version,
  // served shard — but the caller routed by a data version this copy has
  // not applied. The reject must be the retriable StaleReplica class (so
  // failover skips to a current copy) and land in its own metric.
  Deployment d = MakeDeployment(/*replication_factor=*/2,
                                EngineKind::kRelational);
  ShardedCollection c;
  int64_t version = 0;
  ASSERT_TRUE(d.net->catalog().Snapshot("auctions.xml", &c, &version));
  server::RpcClient client(&d.net->network(), {});
  soap::XrpcRequest req;
  req.module_ns = "functions_b";
  req.method = "Q_B1";
  req.arity = 0;
  req.calls.emplace_back();
  req.shard = soap::XrpcRequest::ShardScope{"auctions.xml", 0, version,
                                            /*data_version=*/7};
  auto resp = client.ExecuteBulk(c.shards[0].peer_uri, req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kStaleReplica) << resp.status();
  EXPECT_GE(d.net->metrics().stale_replica_rejects(), 1);
  EXPECT_NE(d.net->metrics().Report().find("stale-replica:"),
            std::string::npos);
}

TEST(FailoverTest, ReplicaCrashDuringCommitResyncsByteIdentically) {
  // The acceptance scenario: a replica crashes during phase 2 (the commit
  // decision is durable, its apply was lost), restarts, resyncs — and then
  // holds fragments byte-identical to every surviving copy, while the
  // cluster-wide read is byte-identical to a healthy updated run.
  Deployment healthy = MakeDeployment(/*replication_factor=*/1,
                                      EngineKind::kInterpreter);
  RegisterUpdModule(healthy);
  auto ref = healthy.net->Execute("p0", kUpdBroadcast);
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_TRUE(ref->committed) << ref->abort_reason;
  const std::string updated_baseline = RunBroadcast(healthy);
  ASSERT_EQ(updated_baseline.find("ERROR"), std::string::npos);

  Deployment d = MakeDeployment(/*replication_factor=*/2,
                                EngineKind::kInterpreter);
  RegisterUpdModule(d);
  d.shards[1]->InjectCrash(server::CrashPoint::kBeforeCommitApply);
  auto report = d.net->Execute("p0", kUpdBroadcast);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed) << report->abort_reason;
  EXPECT_TRUE(d.shards[1]->crashed());
  ASSERT_FALSE(report->in_doubt.empty());

  // Restart replays the WAL, resolves the in-doubt prepare by coordinator
  // inquiry, and runs the anti-entropy resync.
  ASSERT_TRUE(d.shards[1]->Restart().ok());
  ASSERT_TRUE(d.p0->service().RetryInDoubt(&d.net->network()).ok());

  // Peer 1 holds shard 0's replica and shard 1's primary (ring layout);
  // both must be byte-identical to the other copy of the same shard.
  EXPECT_EQ(FragmentBytes(d.shards[1], FragName(0)),
            FragmentBytes(d.shards[0], FragName(0)));
  EXPECT_EQ(FragmentBytes(d.shards[1], FragName(1)),
            FragmentBytes(d.shards[2], FragName(1)));
  EXPECT_NE(FragmentBytes(d.shards[1], FragName(0)).find("<stamp/>"),
            std::string::npos);
  // And the cluster serves the healthy updated result, byte for byte.
  EXPECT_EQ(RunBroadcast(d), updated_baseline);
}

TEST(FailoverTest, StaleReplicaSkipIsolatesLaggingCopy) {
  // A copy that verifiably missed a commit (crashed before applying it,
  // restarted without a transport, so it could not resolve its in-doubt
  // prepare) self-fences with StaleReplica; a read whose primary is also
  // dead must skip past it to the one current copy and still answer byte
  // for byte.
  Deployment d = MakeDeployment(/*replication_factor=*/3,
                                EngineKind::kInterpreter);
  RegisterUpdModule(d);
  d.shards[1]->InjectCrash(server::CrashPoint::kBeforeCommitApply);
  auto report = d.net->Execute("p0", kUpdBroadcast);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->committed) << report->abort_reason;
  const std::string updated_baseline = RunBroadcast(d);
  ASSERT_EQ(updated_baseline.find("ERROR"), std::string::npos);

  // WAL-only restart: the prepare is parked in doubt, the commit stays
  // unapplied, so peer 1 serves — but lags every fragment it holds.
  ASSERT_TRUE(d.shards[1]->service().Restart(nullptr).ok());
  EXPECT_LT(d.shards[1]->database().AppliedDataVersion(FragName(0)),
            d.net->catalog().FragmentDataVersion("auctions.xml", 0));

  d.shards[0]->Disconnect();  // shard 0: primary dead, replica 1 lagging
  EXPECT_EQ(RunBroadcast(d), updated_baseline);
  const net::RpcMetrics& m = d.net->metrics();
  EXPECT_GE(m.stale_replica_rejects(), 1);
  EXPECT_GE(m.stale_replica_skips(), 1);
  EXPECT_GE(m.failover_successes(), 1);
  EXPECT_NE(m.Report().find("stale-replica:"), std::string::npos);

  // Repair heals the lag (in-doubt inquiry at the live coordinator), after
  // which the copy is byte-identical and serves again.
  ASSERT_TRUE(d.shards[1]->Repair().ok());
  EXPECT_EQ(d.shards[1]->database().AppliedDataVersion(FragName(0)),
            d.net->catalog().FragmentDataVersion("auctions.xml", 0));
  EXPECT_EQ(FragmentBytes(d.shards[1], FragName(0)),
            FragmentBytes(d.shards[2], FragName(0)));
}

TEST(FailoverTest, JoinedReplicaCatchesUpByDonorWalReplay) {
  // Anti-entropy delta path: a replica that joins AFTER a commit holds the
  // pre-update fragment at applied version 0 while the catalog says 1. Its
  // resync must replay the missed PUL from a donor's WAL (no full
  // transfer) and converge byte-identically. rf=1 keeps each donor's PUL
  // scoped to a single fragment — with more copies per peer the PUL also
  // writes fragments the joiner does not hold, which (by design) fails the
  // delta replay and falls back to full transfer.
  Deployment d = MakeDeployment(/*replication_factor=*/1,
                                EngineKind::kInterpreter);
  RegisterUpdModule(d);
  const std::string pre_update = FragmentBytes(d.shards[0], FragName(0));
  auto report = d.net->Execute("p0", kUpdBroadcast);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->committed) << report->abort_reason;

  Peer* joiner = d.net->AddPeer("joiner", EngineKind::kInterpreter);
  ASSERT_TRUE(joiner->AddDocument(FragName(0), pre_update).ok());
  ShardedCollection c;
  ASSERT_TRUE(d.net->catalog().Snapshot("auctions.xml", &c, nullptr));
  c.shards[0].replicas.push_back(joiner->uri());
  ASSERT_TRUE(d.net->catalog().RegisterCollection(std::move(c)).ok());

  ASSERT_TRUE(joiner->Repair().ok());
  EXPECT_EQ(joiner->database().AppliedDataVersion(FragName(0)),
            d.net->catalog().FragmentDataVersion("auctions.xml", 0));
  EXPECT_EQ(FragmentBytes(joiner, FragName(0)),
            FragmentBytes(d.shards[0], FragName(0)));
  const net::RpcMetrics& m = d.net->metrics();
  EXPECT_GE(m.repair_resyncs(), 1);
  EXPECT_GE(m.repair_puls_replayed(), 1);
  EXPECT_EQ(m.repair_full_transfers(), 0);
  EXPECT_NE(m.Report().find("repair:"), std::string::npos);
}

TEST(FailoverTest, RevivedPrimaryServesAgain) {
  // Disconnect models a partition, not a crash: after Reconnect the
  // primary answers again with its untouched state, no failover needed.
  const std::string baseline = HealthyBaseline(EngineKind::kRelational);
  Deployment d = MakeDeployment(/*replication_factor=*/2,
                                EngineKind::kRelational);
  d.shards[0]->Disconnect();
  EXPECT_EQ(RunBroadcast(d), baseline);
  const int64_t attempts_after_failover = d.net->metrics().failover_attempts();
  d.shards[0]->Reconnect();
  EXPECT_EQ(RunBroadcast(d), baseline);
  EXPECT_EQ(d.net->metrics().failover_attempts(), attempts_after_failover);
}

}  // namespace
}  // namespace xrpc::core
