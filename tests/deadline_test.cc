// End-to-end deadline propagation, cooperative cancellation, and per-peer
// circuit breaking:
//  - CancellationToken semantics (explicit trip, deadline self-trip,
//    remaining-budget reads);
//  - CircuitBreaker state machine under a manual clock (closed -> open ->
//    half-open probe -> closed / re-open);
//  - RetryingTransport budget accounting (per-attempt timeouts derived
//    from the remaining budget, retries stopping at exhaustion, open
//    circuits short-circuiting without a dial, timeouts aging the breaker);
//  - the RpcMetrics report format for the new counters;
//  - the full A -> B -> C relocation chain: a hung (slow) or dead peer C
//    makes the caller fail with DeadlineExceeded within the original
//    budget, B's engine observes cancellation and releases its
//    repeatable-read session, and a breaker in front of a dead peer
//    short-circuits bulk fan-out without dialing.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "base/cancellation.h"
#include "core/peer_network.h"
#include "net/circuit_breaker.h"
#include "net/retrying_transport.h"
#include "net/rpc_metrics.h"
#include "soap/message.h"
#include "xdm/item.h"

namespace xrpc::core {
namespace {

// ---------------------------------------------------------------------------
// CancellationToken
// ---------------------------------------------------------------------------

TEST(CancellationToken, StartsLiveWithUnboundedBudget) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.CheckCancelled().ok());
  EXPECT_EQ(token.RemainingMicros(), std::numeric_limits<int64_t>::max());
}

TEST(CancellationToken, ExplicitCancelFirstTripWins) {
  CancellationToken token;
  token.Cancel(Status::Cancelled("killed by admin"));
  token.Cancel(Status::DeadlineExceeded("too late"));  // ignored
  EXPECT_TRUE(token.cancelled());
  Status s = token.CheckCancelled();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("killed by admin"), std::string::npos);
}

TEST(CancellationToken, DeadlineTripsOnPollOnce_ClockReachesExpiry) {
  int64_t now = 0;
  CancellationToken token;
  token.ArmDeadline(1000, [&now] { return now; });
  now = 999;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.RemainingMicros(), 1);
  now = 1000;
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.CheckCancelled().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.RemainingMicros(), 0);
  // The trip latches: rolling the clock back does not revive the token.
  now = 0;
  EXPECT_TRUE(token.cancelled());
}

// ---------------------------------------------------------------------------
// CircuitBreaker state machine (manual clock)
// ---------------------------------------------------------------------------

net::CircuitBreaker::Policy BreakerPolicy(int threshold, int64_t cooldown_us) {
  net::CircuitBreaker::Policy p;
  p.failure_threshold = threshold;
  p.cooldown_us = cooldown_us;
  return p;
}

class CircuitBreakerTest : public ::testing::Test {
 protected:
  CircuitBreakerTest()
      : breaker_(BreakerPolicy(3, 1000), [this] { return now_; }) {}

  int64_t now_ = 0;
  net::CircuitBreaker breaker_;
};

TEST_F(CircuitBreakerTest, OpensAfterConsecutiveFailuresOnly) {
  const std::string peer = "xrpc://y";
  EXPECT_TRUE(breaker_.Allow(peer));
  breaker_.RecordFailure(peer);
  breaker_.RecordFailure(peer);
  // A success resets the consecutive-failure count.
  breaker_.RecordSuccess(peer);
  breaker_.RecordFailure(peer);
  breaker_.RecordFailure(peer);
  EXPECT_EQ(breaker_.GetState(peer), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker_.Allow(peer));
  breaker_.RecordFailure(peer);  // third consecutive
  EXPECT_EQ(breaker_.GetState(peer), net::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker_.Allow(peer));
}

TEST_F(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  const std::string peer = "xrpc://y";
  for (int i = 0; i < 3; ++i) breaker_.RecordFailure(peer);
  now_ = 999;
  EXPECT_FALSE(breaker_.Allow(peer));  // cooldown not yet over
  now_ = 1001;
  EXPECT_TRUE(breaker_.Allow(peer));  // the probe
  EXPECT_EQ(breaker_.GetState(peer), net::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker_.Allow(peer));  // probe still in flight
  breaker_.RecordSuccess(peer);
  EXPECT_EQ(breaker_.GetState(peer), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker_.Allow(peer));
}

TEST_F(CircuitBreakerTest, FailedProbeReopensForAnotherCooldown) {
  const std::string peer = "xrpc://y";
  for (int i = 0; i < 3; ++i) breaker_.RecordFailure(peer);
  now_ = 2000;
  EXPECT_TRUE(breaker_.Allow(peer));
  breaker_.RecordFailure(peer);  // probe failed
  EXPECT_EQ(breaker_.GetState(peer), net::CircuitBreaker::State::kOpen);
  now_ = 2999;
  EXPECT_FALSE(breaker_.Allow(peer));  // full new cooldown from the re-open
  now_ = 3001;
  EXPECT_TRUE(breaker_.Allow(peer));
  breaker_.RecordSuccess(peer);
  EXPECT_EQ(breaker_.GetState(peer), net::CircuitBreaker::State::kClosed);
}

TEST_F(CircuitBreakerTest, PeersAgeIndependently) {
  for (int i = 0; i < 3; ++i) breaker_.RecordFailure("xrpc://y");
  EXPECT_FALSE(breaker_.Allow("xrpc://y"));
  EXPECT_TRUE(breaker_.Allow("xrpc://z"));
  EXPECT_EQ(breaker_.GetState("xrpc://z"), net::CircuitBreaker::State::kClosed);
}

TEST_F(CircuitBreakerTest, TransitionsAndShortCircuitsLandInMetrics) {
  net::RpcMetrics metrics;
  breaker_.set_metrics(&metrics);
  const std::string peer = "xrpc://y";
  for (int i = 0; i < 3; ++i) breaker_.RecordFailure(peer);
  EXPECT_EQ(metrics.breaker_opens(), 1);
  EXPECT_FALSE(breaker_.Allow(peer));
  EXPECT_FALSE(breaker_.Allow(peer));
  EXPECT_EQ(metrics.breaker_short_circuits(), 2);
  now_ = 1001;
  EXPECT_TRUE(breaker_.Allow(peer));
  EXPECT_EQ(metrics.breaker_half_opens(), 1);
  breaker_.RecordSuccess(peer);
  EXPECT_EQ(metrics.breaker_closes(), 1);
}

// ---------------------------------------------------------------------------
// RetryingTransport: deadline budgets + breaker feeding
// ---------------------------------------------------------------------------

/// Inner transport replaying a scripted sequence of outcomes; the last
/// step repeats once the script is exhausted.
class ScriptedTransport : public net::Transport {
 public:
  struct Step {
    Status status = Status::OK();
    int64_t micros = 0;
  };

  StatusOr<net::PostResult> Post(const std::string& dest_uri,
                                 const std::string&) override {
    ++posts;
    last_dest = dest_uri;
    if (steps.empty()) return Status::NetworkError("unscripted post");
    Step s = steps.front();
    if (steps.size() > 1) steps.erase(steps.begin());
    if (!s.status.ok()) return s.status;
    net::PostResult r;
    r.body = "<ok/>";
    r.network_micros = s.micros;
    return r;
  }

  std::vector<Step> steps;
  int posts = 0;
  std::string last_dest;
};

std::string BodyWithBudget(int64_t micros) {
  return "<env:Envelope><env:Header><xrpc:deadline>" +
         std::to_string(micros) +
         "</xrpc:deadline></env:Header><env:Body/></env:Envelope>";
}

TEST(RetryingTransportDeadline, ExtractDeadlineMicrosSniffsTheHeader) {
  EXPECT_EQ(net::RetryingTransport::ExtractDeadlineMicros(BodyWithBudget(250)),
            std::optional<int64_t>(250));
  EXPECT_FALSE(net::RetryingTransport::ExtractDeadlineMicros(
                   "<env:Envelope><env:Body/></env:Envelope>")
                   .has_value());
  EXPECT_FALSE(net::RetryingTransport::ExtractDeadlineMicros(
                   "<xrpc:deadline>soon</xrpc:deadline>")
                   .has_value());
  EXPECT_FALSE(net::RetryingTransport::ExtractDeadlineMicros(
                   "<xrpc:deadline>-5</xrpc:deadline>")
                   .has_value());
}

net::RetryPolicy NoJitterPolicy(int attempts, int64_t backoff_us,
                                int64_t timeout_us) {
  net::RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff_us = backoff_us;
  p.backoff_multiplier = 2.0;
  p.jitter_fraction = 0.0;
  p.request_timeout_us = timeout_us;
  return p;
}

TEST(RetryingTransportDeadline, ReplySlowerThanBudgetIsDeadlineExceeded) {
  ScriptedTransport inner;
  inner.steps.push_back({Status::OK(), 10'000});
  net::RpcMetrics metrics;
  net::RetryingTransport transport(&inner,
                                   NoJitterPolicy(3, 100, /*timeout=*/0),
                                   &metrics);
  auto result = transport.Post("xrpc://y", BodyWithBudget(5'000));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(inner.posts, 1);  // a budget-bound timeout is final, not retried
  EXPECT_EQ(metrics.timeouts(), 1);
  EXPECT_EQ(metrics.deadline_client_exceeded(), 1);
}

TEST(RetryingTransportDeadline, PolicyTimeoutStillRetriesWithinBudget) {
  ScriptedTransport inner;
  inner.steps.push_back({Status::OK(), 5'000});  // abandoned: over timeout
  inner.steps.push_back({Status::OK(), 500});    // retry succeeds
  net::RpcMetrics metrics;
  net::RetryingTransport transport(
      &inner, NoJitterPolicy(3, 100, /*timeout=*/1'000), &metrics);
  auto result = transport.Post("xrpc://y", BodyWithBudget(1'000'000));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(inner.posts, 2);
  EXPECT_EQ(metrics.timeouts(), 1);
  EXPECT_EQ(metrics.deadline_client_exceeded(), 0);
}

TEST(RetryingTransportDeadline, RetriesNeverOutliveTheBudget) {
  ScriptedTransport inner;
  inner.steps.push_back({Status::NetworkError("refused"), 0});
  net::RpcMetrics metrics;
  // Backoffs 4000, 8000: the second backoff would cross the 5000us budget,
  // so the transport gives up after two dials instead of five.
  net::RetryingTransport transport(&inner,
                                   NoJitterPolicy(5, 4'000, /*timeout=*/0),
                                   &metrics);
  auto result = transport.Post("xrpc://y", BodyWithBudget(5'000));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(inner.posts, 2);
  EXPECT_EQ(metrics.deadline_client_exceeded(), 1);
}

TEST(RetryingTransportDeadline, ExhaustedBudgetFailsWithoutDialing) {
  ScriptedTransport inner;
  net::RetryingTransport transport(&inner, NoJitterPolicy(3, 100, 0));
  auto result = transport.Post("xrpc://y", BodyWithBudget(0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(inner.posts, 0);
}

TEST(RetryingTransportDeadline, HeaderFreeEnvelopeKeepsLegacyRetries) {
  ScriptedTransport inner;
  inner.steps.push_back({Status::NetworkError("refused"), 0});
  net::RetryingTransport transport(&inner, NoJitterPolicy(3, 100, 0));
  auto result =
      transport.Post("xrpc://y", "<env:Envelope><env:Body/></env:Envelope>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
  EXPECT_EQ(inner.posts, 3);  // all attempts spent, no budget in the way
}

TEST(RetryingTransportBreaker, OpenCircuitShortCircuitsWithoutDialing) {
  ScriptedTransport inner;
  inner.steps.push_back({Status::NetworkError("refused"), 0});
  net::RpcMetrics metrics;
  int64_t now = 0;
  net::CircuitBreaker breaker(BreakerPolicy(1, 1'000'000),
                              [&now] { return now; });
  breaker.set_metrics(&metrics);
  net::RetryingTransport transport(&inner, NoJitterPolicy(1, 100, 0),
                                   &metrics);
  transport.set_circuit_breaker(&breaker);

  ASSERT_FALSE(transport.Post("xrpc://y", "<a/>").ok());
  EXPECT_EQ(breaker.GetState("xrpc://y"), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(inner.posts, 1);

  auto blocked = transport.Post("xrpc://y", "<a/>");
  ASSERT_FALSE(blocked.ok());
  EXPECT_NE(blocked.status().message().find("circuit open"),
            std::string::npos);
  EXPECT_EQ(inner.posts, 1);  // no dial
  EXPECT_EQ(metrics.breaker_short_circuits(), 1);
}

TEST(RetryingTransportBreaker, TimeoutsAgeTheBreaker) {
  ScriptedTransport inner;
  inner.steps.push_back({Status::OK(), 50'000});  // every reply is too slow
  net::RpcMetrics metrics;
  int64_t now = 0;
  net::CircuitBreaker breaker(BreakerPolicy(2, 1'000'000),
                              [&now] { return now; });
  net::RetryingTransport transport(
      &inner, NoJitterPolicy(1, 100, /*timeout=*/1'000), &metrics);
  transport.set_circuit_breaker(&breaker);

  EXPECT_FALSE(transport.Post("xrpc://y", "<a/>").ok());
  EXPECT_EQ(breaker.GetState("xrpc://y"), net::CircuitBreaker::State::kClosed);
  EXPECT_FALSE(transport.Post("xrpc://y", "<a/>").ok());
  EXPECT_EQ(breaker.GetState("xrpc://y"), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(metrics.timeouts(), 2);
}

// ---------------------------------------------------------------------------
// RpcMetrics report format regression
// ---------------------------------------------------------------------------

TEST(RpcMetricsReport, CarriesBreakerAndDeadlineLines) {
  net::RpcMetrics m;
  m.RecordBreakerOpen();
  m.RecordBreakerHalfOpen();
  m.RecordBreakerClose();
  m.RecordBreakerShortCircuit("xrpc://c");
  m.RecordBreakerShortCircuit("xrpc://c");
  m.RecordDeadlineExceeded("xrpc://c");
  m.RecordServerDeadlineReject("xrpc://b");
  m.RecordCancellation();
  m.RecordCancellation();
  m.RecordCancellation();
  m.RecordSessionReleased();
  const std::string report = m.Report();
  EXPECT_NE(
      report.find("breaker: opens=1 half_opens=1 closes=1 short_circuits=2"),
      std::string::npos)
      << report;
  EXPECT_NE(report.find("deadline: client_exceeded=1 server_rejects=1 "
                        "cancellations=3 sessions_released=1"),
            std::string::npos)
      << report;

  m.Reset();
  const std::string reset = m.Report();
  EXPECT_NE(
      reset.find("breaker: opens=0 half_opens=0 closes=0 short_circuits=0"),
      std::string::npos)
      << reset;
  EXPECT_NE(reset.find("deadline: client_exceeded=0 server_rejects=0 "
                       "cancellations=0 sessions_released=0"),
            std::string::npos)
      << reset;
}

// ---------------------------------------------------------------------------
// Integration: A -> B -> C relocation chain under deadlines
// ---------------------------------------------------------------------------

constexpr char kFilmDb[] =
    "<films>"
    "<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare function film:filmsByActor($actor as xs:string) as node()*
  { doc("filmDB.xml")//name[../actor=$actor] };
)";

/// B's forwarding module: fan($n) issues $n nested one-at-a-time
/// relocations to C (B runs the tree-walking interpreter, so each
/// iteration is a separate request that advances the virtual clock —
/// giving B's armed deadline a chance to trip mid-loop).
constexpr char kForwardModule[] = R"(
  module namespace fwd = "forward";
  import module namespace film = "films" at "http://x.example.org/film.xq";
  declare function fwd:fan($n as xs:integer) as xs:integer
  { count(for $i in (1 to $n)
          return execute at {"xrpc://c.example.org"}
                 {film:filmsByActor("Julie Andrews")}) };
)";

/// The `for` wrapper makes the query non-simple, so it travels with a
/// queryID and B opens a repeatable-read session for it.
constexpr char kChainQuery[] = R"(
  declare option xrpc:isolation "repeatable";
  import module namespace w = "forward" at "http://b.example.org/fwd.xq";
  for $i in (1)
  return execute at {"xrpc://b.example.org"} {w:fan(40)})";

class DeadlineChainTest : public ::testing::Test {
 protected:
  DeadlineChainTest() {
    a_ = net_.AddPeer("a.example.org", EngineKind::kInterpreter);
    b_ = net_.AddPeer("b.example.org", EngineKind::kInterpreter);
    c_ = net_.AddPeer("c.example.org", EngineKind::kInterpreter);
    EXPECT_TRUE(c_->AddDocument("filmDB.xml", kFilmDb).ok());
    for (Peer* p : {a_, b_, c_}) {
      EXPECT_TRUE(
          p->RegisterModule(kFilmModule, "http://x.example.org/film.xq").ok());
    }
    for (Peer* p : {a_, b_}) {
      EXPECT_TRUE(
          p->RegisterModule(kForwardModule, "http://b.example.org/fwd.xq")
              .ok());
    }
  }

  PeerNetwork net_;
  Peer* a_;
  Peer* b_;
  Peer* c_;
};

TEST_F(DeadlineChainTest, ChainSucceedsWithoutAndWithGenerousDeadline) {
  auto report = net_.Execute("a.example.org", kChainQuery);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(xdm::SequenceToString(report->result), "40");

  ExecuteOptions opts;
  opts.deadline_us = 60'000'000;  // one virtual minute: never expires
  report = net_.Execute("a.example.org", kChainQuery, opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(xdm::SequenceToString(report->result), "40");
  EXPECT_EQ(net_.metrics().cancellations(), 0);
  // Successful repeatable-read queries leave their snapshot sessions to
  // the normal expiry path (one per run) — the contrast with the
  // immediate release a cancellation triggers.
  EXPECT_EQ(b_->service().isolation().active_sessions(), 2u);
}

TEST_F(DeadlineChainTest, HungPeerTripsMidChainWithinBudgetAndReleasesSession) {
  // Every post toward the hung C pays a 20ms latency spike; the 40-call
  // fan at B would take ~0.8 virtual seconds end to end.
  net::FaultProfile faults;
  faults.latency_spike_every_nth = 1;
  faults.latency_spike_us = 20'000;
  net_.network().set_fault_profile(faults);

  // Control: without a deadline the chain limps through the spikes.
  const int64_t control_start = net_.network().clock().NowMicros();
  auto control = net_.Execute("a.example.org", kChainQuery);
  ASSERT_TRUE(control.ok()) << control.status();
  const int64_t control_elapsed =
      net_.network().clock().NowMicros() - control_start;
  EXPECT_GT(control_elapsed, 500'000);
  // The control run's session lingers until expiry; the cancelled run
  // below must not add another one.
  const size_t sessions_before = b_->service().isolation().active_sessions();

  // With a 100ms budget, B's token trips after a handful of nested hops.
  constexpr int64_t kBudgetUs = 100'000;
  ExecuteOptions opts;
  opts.deadline_us = kBudgetUs;
  const int64_t start = net_.network().clock().NowMicros();
  auto report = net_.Execute("a.example.org", kChainQuery, opts);
  const int64_t elapsed = net_.network().clock().NowMicros() - start;

  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded)
      << report.status();
  // Bounded overshoot: the budget plus the in-flight hop that was on the
  // wire when the token tripped (spike-sized), with slack for the reply
  // legs — far below the 800ms an uncancelled run needs.
  EXPECT_LE(elapsed, kBudgetUs + 100'000);
  EXPECT_LT(elapsed, control_elapsed / 2);

  // B observed the cancellation and released its repeatable-read session
  // immediately instead of waiting for expiry.
  EXPECT_EQ(b_->service().isolation().active_sessions(), sessions_before);
  EXPECT_GE(net_.metrics().cancellations(), 1);
  EXPECT_GE(net_.metrics().sessions_released(), 1);
  EXPECT_GE(net_.metrics().deadline_client_exceeded() +
                net_.metrics().cancellations(),
            1);
}

TEST_F(DeadlineChainTest, ParallelExecCancelsPromptlyAndReleasesSession) {
  // Same hung-C topology, but p0 runs the loop-lifted relational engine
  // with the morsel-parallel executor ON: the cancellation token is
  // threaded through every morsel boundary (DESIGN.md §15), so a tripped
  // deadline must still fail the query within its budget and release B's
  // repeatable-read session immediately — no worker may keep evaluating.
  Peer* r = net_.AddPeer("r.example.org", EngineKind::kRelational);
  ASSERT_TRUE(
      r->RegisterModule(kFilmModule, "http://x.example.org/film.xq").ok());
  ASSERT_TRUE(
      r->RegisterModule(kForwardModule, "http://b.example.org/fwd.xq").ok());
  net_.EnableParallelExec(8);

  net::FaultProfile faults;
  faults.latency_spike_every_nth = 1;
  faults.latency_spike_us = 20'000;
  net_.network().set_fault_profile(faults);

  // Control: without a deadline the chain completes on the relational
  // engine (no interpreter fallback — the parallel paths really ran).
  auto control = net_.Execute("r.example.org", kChainQuery);
  ASSERT_TRUE(control.ok()) << control.status();
  EXPECT_TRUE(control->used_relational);
  EXPECT_FALSE(control->fell_back);
  EXPECT_EQ(xdm::SequenceToString(control->result), "40");
  const size_t sessions_before = b_->service().isolation().active_sessions();

  constexpr int64_t kBudgetUs = 100'000;
  ExecuteOptions opts;
  opts.deadline_us = kBudgetUs;
  const int64_t start = net_.network().clock().NowMicros();
  auto report = net_.Execute("r.example.org", kChainQuery, opts);
  const int64_t elapsed = net_.network().clock().NowMicros() - start;

  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded)
      << report.status();
  EXPECT_LE(elapsed, kBudgetUs + 100'000);
  // B released the cancelled run's snapshot session instead of letting it
  // linger to expiry.
  EXPECT_EQ(b_->service().isolation().active_sessions(), sessions_before);
  EXPECT_GE(net_.metrics().cancellations(), 1);
  EXPECT_GE(net_.metrics().sessions_released(), 1);
}

TEST_F(DeadlineChainTest, DeadPeerFailsFastWithinBudget) {
  net_.network().DisconnectPeer(
      net::ParseXrpcUri("xrpc://c.example.org").value());
  constexpr int64_t kBudgetUs = 200'000;
  ExecuteOptions opts;
  opts.deadline_us = kBudgetUs;
  const int64_t start = net_.network().clock().NowMicros();
  auto report = net_.Execute("a.example.org", kChainQuery, opts);
  const int64_t elapsed = net_.network().clock().NowMicros() - start;
  ASSERT_FALSE(report.ok());
  EXPECT_LE(elapsed, kBudgetUs);
}

TEST_F(DeadlineChainTest, DeclaredDeadlineOptionWorksAndOptionsFieldWins) {
  net::FaultProfile faults;
  faults.latency_spike_every_nth = 1;
  faults.latency_spike_us = 20'000;
  net_.network().set_fault_profile(faults);

  const std::string query =
      R"(declare option xrpc:isolation "repeatable";
         declare option xrpc:deadline "100000";
         import module namespace w = "forward" at "http://b.example.org/fwd.xq";
         for $i in (1)
         return execute at {"xrpc://b.example.org"} {w:fan(40)})";
  auto report = net_.Execute("a.example.org", query);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded)
      << report.status();

  auto malformed = net_.Execute(
      "a.example.org",
      R"(declare option xrpc:deadline "whenever"; 1 + 1)");
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DeadlineChainTest, ServerRejectsAlreadyExpiredRequests) {
  soap::XrpcRequest request;
  // Admission control runs right after parsing, before the module/method
  // are even resolved — so a made-up method with an exhausted budget is
  // rejected with DeadlineExceeded, not NotFound.
  request.module_ns = "m";
  request.method = "f";
  request.arity = 0;
  request.calls.emplace_back();
  request.deadline_us = 0;  // exhausted budget on arrival
  auto reply =
      net_.network().Post("xrpc://c.example.org", soap::SerializeRequest(request));
  ASSERT_TRUE(reply.ok()) << reply.status();
  auto response = soap::ParseResponse(reply->body);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status();
  EXPECT_EQ(net_.metrics().deadline_server_rejects(), 1);
}

TEST_F(DeadlineChainTest, BreakerShortCircuitsDeadPeerAndRecovers) {
  net_.EnableCircuitBreaker(BreakerPolicy(2, 500'000));
  net_.network().DisconnectPeer(
      net::ParseXrpcUri("xrpc://c.example.org").value());

  const std::string direct_query = R"(
    import module namespace f = "films" at "http://x.example.org/film.xq";
    execute at {"xrpc://c.example.org"} {f:filmsByActor("Julie Andrews")})";

  // Two consecutive dial failures open the circuit toward C.
  EXPECT_FALSE(net_.Execute("a.example.org", direct_query).ok());
  EXPECT_FALSE(net_.Execute("a.example.org", direct_query).ok());
  ASSERT_NE(net_.circuit_breaker(), nullptr);
  EXPECT_EQ(net_.circuit_breaker()->GetState("xrpc://c.example.org"),
            net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(net_.metrics().breaker_opens(), 1);

  // While open, fan-out toward C is refused locally: no dial, no message.
  const int64_t messages_before = net_.network().messages_sent();
  auto blocked = net_.Execute("a.example.org", direct_query);
  ASSERT_FALSE(blocked.ok());
  EXPECT_NE(blocked.status().ToString().find("circuit open"),
            std::string::npos)
      << blocked.status();
  EXPECT_EQ(net_.network().messages_sent(), messages_before);
  EXPECT_GE(net_.metrics().breaker_short_circuits(), 1);

  // Cooldown passes and C comes back: the half-open probe succeeds and the
  // circuit closes again.
  net_.network().clock().Advance(600'000);
  net_.network().RegisterPeer(
      net::ParseXrpcUri("xrpc://c.example.org").value(), &c_->service());
  auto recovered = net_.Execute("a.example.org", direct_query);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(xdm::SequenceToString(recovered->result),
            "<name>Sound Of Music</name>");
  EXPECT_EQ(net_.circuit_breaker()->GetState("xrpc://c.example.org"),
            net::CircuitBreaker::State::kClosed);
  EXPECT_GE(net_.metrics().breaker_half_opens(), 1);
  EXPECT_GE(net_.metrics().breaker_closes(), 1);
}

}  // namespace
}  // namespace xrpc::core
