// Tests for the XMark-style generator: determinism, structure, join
// selectivity and scaling knobs.

#include <gtest/gtest.h>

#include <sstream>

#include "core/catalog.h"
#include "tests/test_util.h"
#include "xmark/xmark.h"
#include "xml/parser.h"

namespace xrpc::xmark {
namespace {

using ::xrpc::testing::EvalToString;
using ::xrpc::testing::MapDocumentProvider;

TEST(Xmark, GenerationIsDeterministic) {
  XmarkConfig cfg;
  EXPECT_EQ(GeneratePersons(cfg), GeneratePersons(cfg));
  EXPECT_EQ(GenerateAuctions(cfg), GenerateAuctions(cfg));
  XmarkConfig other = cfg;
  other.seed = 43;
  EXPECT_NE(GeneratePersons(cfg), GeneratePersons(other));
}

TEST(Xmark, SingleFragmentIsByteIdenticalToUnsharded) {
  // The 1-shard fragmenting is the identity: shard determinism tests
  // compare sharded runs against this baseline byte for byte.
  XmarkConfig cfg;
  EXPECT_EQ(GeneratePersonsFragments(cfg, 1)[0], GeneratePersons(cfg));
  EXPECT_EQ(GenerateAuctionsFragments(cfg, 1)[0], GenerateAuctions(cfg));
}

TEST(Xmark, FragmentsPartitionTheCollection) {
  XmarkConfig cfg;
  cfg.num_persons = 30;
  cfg.num_closed_auctions = 50;
  cfg.num_matches = 5;
  auto persons = GeneratePersonsFragments(cfg, 4);
  auto auctions = GenerateAuctionsFragments(cfg, 4);
  ASSERT_EQ(persons.size(), 4u);
  ASSERT_EQ(auctions.size(), 4u);
  int total_persons = 0, total_closed = 0;
  for (int k = 0; k < 4; ++k) {
    MapDocumentProvider docs;
    docs.AddDocument("p.xml", persons[k]);
    docs.AddDocument("a.xml", auctions[k]);
    total_persons +=
        std::stoi(EvalToString("count(doc(\"p.xml\")//person)", &docs));
    total_closed +=
        std::stoi(EvalToString("count(doc(\"a.xml\")//closed_auction)", &docs));
  }
  EXPECT_EQ(total_persons, cfg.num_persons);
  EXPECT_EQ(total_closed, cfg.num_closed_auctions);
}

TEST(Xmark, BuyersAuctionsColocateWithTheBuyersShard) {
  // Every closed auction lands on the shard its buyer hashes to — the
  // invariant that lets a Q_B3-style call prune to one shard and still
  // see the buyer's complete auction set.
  XmarkConfig cfg;
  cfg.num_persons = 30;
  cfg.num_closed_auctions = 50;
  cfg.num_matches = 5;
  const int n = 4;
  auto auctions = GenerateAuctionsFragments(cfg, n);
  for (int k = 0; k < n; ++k) {
    MapDocumentProvider docs;
    docs.AddDocument("a.xml", auctions[k]);
    // Count auctions whose buyer does NOT hash to shard k: must be zero.
    std::string buyers = EvalToString(
        "string-join(doc(\"a.xml\")//closed_auction/buyer/@person, \" \")",
        &docs);
    std::istringstream in(buyers);
    std::string buyer;
    while (in >> buyer) {
      EXPECT_EQ(static_cast<int>(core::ShardHash(buyer) % n), k) << buyer;
    }
  }
}

TEST(Xmark, PersonsStructure) {
  XmarkConfig cfg;
  cfg.num_persons = 17;
  MapDocumentProvider docs;
  docs.AddDocument("persons.xml", GeneratePersons(cfg));
  EXPECT_EQ(EvalToString("count(doc(\"persons.xml\")//person)", &docs), "17");
  EXPECT_EQ(
      EvalToString("string(doc(\"persons.xml\")//person[1]/@id)", &docs),
      "person0");
  EXPECT_EQ(EvalToString("count(doc(\"persons.xml\")//person[name])", &docs),
            "17");
}

TEST(Xmark, AuctionsStructureAndCounts) {
  XmarkConfig cfg;
  cfg.num_persons = 50;
  cfg.num_closed_auctions = 40;
  cfg.num_open_auctions = 7;
  cfg.num_items = 9;
  cfg.num_matches = 4;
  MapDocumentProvider docs;
  docs.AddDocument("auctions.xml", GenerateAuctions(cfg));
  EXPECT_EQ(
      EvalToString("count(doc(\"auctions.xml\")//closed_auction)", &docs),
      "40");
  EXPECT_EQ(EvalToString("count(doc(\"auctions.xml\")//open_auction)", &docs),
            "7");
  EXPECT_EQ(EvalToString("count(doc(\"auctions.xml\")//item)", &docs), "9");
  EXPECT_EQ(
      EvalToString(
          "count(doc(\"auctions.xml\")//closed_auction/buyer/@person)", &docs),
      "40");
}

TEST(Xmark, JoinSelectivityIsExact) {
  // Exactly num_matches closed auctions reference generated persons.
  XmarkConfig cfg;
  cfg.num_persons = 100;
  cfg.num_closed_auctions = 60;
  cfg.num_matches = 6;
  MapDocumentProvider docs;
  docs.AddDocument("persons.xml", GeneratePersons(cfg));
  docs.AddDocument("auctions.xml", GenerateAuctions(cfg));
  EXPECT_EQ(EvalToString(R"(
      count(for $p in doc("persons.xml")//person,
                $ca in doc("auctions.xml")//closed_auction
            where $p/@id = $ca/buyer/@person
            return $ca))",
                         &docs),
            "6");
}

TEST(Xmark, AnnotationScalesDocumentSize) {
  XmarkConfig small, big;
  small.annotation_bytes = 32;
  big.annotation_bytes = 2048;
  EXPECT_GT(GenerateAuctions(big).size(), 4 * GenerateAuctions(small).size());
}

TEST(Xmark, ItemDescriptionsOnlyAffectNonClosedContent) {
  XmarkConfig plain, padded;
  padded.item_description_bytes = 1000;
  MapDocumentProvider docs;
  docs.AddDocument("plain.xml", GenerateAuctions(plain));
  docs.AddDocument("padded.xml", GenerateAuctions(padded));
  // Same closed auction count despite the larger document.
  EXPECT_EQ(EvalToString("count(doc(\"plain.xml\")//closed_auction)", &docs),
            EvalToString("count(doc(\"padded.xml\")//closed_auction)", &docs));
}

TEST(Xmark, GeneratedDocumentsParse) {
  XmarkConfig cfg;
  cfg.num_persons = 200;
  cfg.num_closed_auctions = 100;
  EXPECT_TRUE(xml::ParseXml(GeneratePersons(cfg)).ok());
  EXPECT_TRUE(xml::ParseXml(GenerateAuctions(cfg)).ok());
  EXPECT_TRUE(xml::ParseXml(GenerateFilmDb(25)).ok());
}

TEST(Xmark, ModulesParse) {
  MapDocumentProvider docs;
  docs.AddDocument("filmDB.xml", GenerateFilmDb());
  testing::MapModuleResolver modules;
  EXPECT_TRUE(modules.AddModule(FilmModuleSource()).ok());
  EXPECT_TRUE(modules.AddModule(TestModuleSource()).ok());
  EXPECT_TRUE(modules.AddModule(GetPersonModuleSource()).ok());
  EXPECT_TRUE(modules.AddModule(FunctionsBModuleSource("xrpc://A")).ok());
  EXPECT_EQ(EvalToString(R"(
      import module namespace f="films" at "film.xq";
      f:filmsByActor("Sean Connery"))",
                         &docs, &modules),
            "<name>The Rock</name> <name>Goldfinger</name>");
}

}  // namespace
}  // namespace xrpc::xmark
