// Tests of the open-loop multi-tenant workload driver (DESIGN.md §16) and
// the no-lost-shard detector of the elastic chaos explorer. The central
// contracts: (seed, config) pins the arrival schedule AND the full SLO
// report byte-for-byte (including the chaos interleaving and the
// RpcMetrics tenant:/slo: lines); admission rejection actually rejects
// under overload; and the sabotage self-test proves the no-lost-shard
// invariant can fire — the detector is non-vacuous.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/chaos.h"
#include "load/workload.h"

namespace xrpc::load {
namespace {

WorkloadConfig SmallConfig(bool chaos) {
  WorkloadConfig config;
  config.seed = 7;
  config.num_shards = 8;
  config.replication_factor = 2;
  config.duration_us = 200'000;
  config.chaos = chaos;

  TenantSpec interactive;
  interactive.name = "interactive";
  interactive.arrival_qps = 80.0;
  interactive.point_fraction = 0.8;
  interactive.zipf_s = 1.0;
  TenantSpec batch;
  batch.name = "batch";
  batch.arrival_qps = 25.0;
  batch.update_fraction = 0.5;
  batch.point_fraction = 0.2;
  batch.zipf_s = 0.0;
  config.tenants.push_back(interactive);
  config.tenants.push_back(batch);
  return config;
}

TEST(WorkloadTest, ArrivalScheduleIsDeterministicBySeed) {
  const WorkloadConfig config = SmallConfig(/*chaos=*/false);
  const std::vector<Arrival> a = BuildArrivals(config);
  const std::vector<Arrival> b = BuildArrivals(config);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_us, b[i].time_us) << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].key, b[i].key) << i;
  }
  // Sorted by (time, tenant, seq) — the replay order is well-defined.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].time_us, a[i].time_us) << i;
  }

  // A different seed produces a different schedule.
  WorkloadConfig other = config;
  other.seed = 8;
  const std::vector<Arrival> c = BuildArrivals(other);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time_us != c[i].time_us || a[i].kind != c[i].kind ||
              a[i].key != c[i].key;
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadTest, IdenticalSeedsReproduceIdenticalReports) {
  for (bool chaos : {false, true}) {
    auto first = RunWorkload(SmallConfig(chaos));
    auto second = RunWorkload(SmallConfig(chaos));
    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_TRUE(second.ok()) << second.status();
    // The whole rendered report — schedule, mix, percentiles, goodput —
    // and the RpcMetrics dump must agree byte-for-byte.
    EXPECT_EQ(first->Format(), second->Format()) << "chaos=" << chaos;
    EXPECT_EQ(first->metrics_report, second->metrics_report)
        << "chaos=" << chaos;
    EXPECT_GT(first->arrivals, 0);
    if (chaos) {
      EXPECT_GT(first->chaos_events_fired, 0);
    }
  }
}

TEST(WorkloadTest, ReportCarriesPerTenantAccountingAndSloLines) {
  auto report = RunWorkload(SmallConfig(/*chaos=*/false));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->tenants.size(), 2u);
  int64_t classified = 0;
  for (const TenantReport& t : report->tenants) {
    EXPECT_GT(t.offered, 0) << t.name;
    EXPECT_EQ(t.offered, t.ok + t.rejected + t.deadline_exceeded + t.failed)
        << t.name;
    EXPECT_EQ(t.offered, t.point_reads + t.join_reads + t.updates) << t.name;
    EXPECT_LE(t.slo_met, t.ok) << t.name;
    classified += t.offered;
  }
  EXPECT_EQ(classified, report->arrivals);
  // The batch tenant's mix includes updates; the interactive one's none.
  EXPECT_EQ(report->tenants[0].updates, 0);
  EXPECT_GT(report->tenants[1].updates, 0);
  // RpcMetrics carries the per-tenant observability lines.
  EXPECT_NE(report->metrics_report.find("tenant interactive:"),
            std::string::npos)
      << report->metrics_report;
  EXPECT_NE(report->metrics_report.find("slo batch:"), std::string::npos)
      << report->metrics_report;
}

TEST(WorkloadTest, OverloadAdmissionRejectsInsteadOfHanging) {
  // One tenant offering far beyond what the modeled fleet can drain with
  // a tiny deadline: open-loop queueing pushes waiting time past the
  // budget and the driver must admission-reject, not dispatch doomed work.
  WorkloadConfig config;
  config.seed = 3;
  config.num_shards = 8;
  config.duration_us = 100'000;
  TenantSpec storm;
  storm.name = "storm";
  storm.arrival_qps = 20000.0;  // ~0.05ms gaps vs ~0.3ms modeled per query
  storm.point_fraction = 0.0;   // all broadcast joins: maximal per-query cost
  storm.deadline_us = 20'000;
  storm.slo_latency_us = 10'000;
  config.tenants.push_back(storm);

  auto report = RunWorkload(config);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->tenants.size(), 1u);
  const TenantReport& t = report->tenants[0];
  EXPECT_GT(t.rejected, 0);
  EXPECT_LT(t.slo_met, t.offered);
}

TEST(WorkloadTest, SabotageSelfTestTripsNoLostShardDetector) {
  // Non-vacuousness proof: with sabotage on, the explorer disconnects
  // every peer serving auctions shard 0 at quiesce instead of healing.
  // The no-lost-shard invariant MUST fire on a plain schedule.
  fuzz::ElasticConfig config;
  config.seed = 5;
  config.sabotage_lost_shard = true;
  fuzz::ElasticChaosExplorer explorer(config);
  fuzz::ElasticResult r = explorer.RunSchedule(explorer.MakeSchedule(0));
  EXPECT_FALSE(r.ok);
  bool hit = false;
  for (const std::string& v : r.violations) {
    if (v.find("no-lost-shard") != std::string::npos) hit = true;
  }
  EXPECT_TRUE(hit) << "violations: " << r.violations.size();

  // And the same schedule without sabotage holds all six invariants —
  // the detector fires because of the sabotage, not spuriously.
  fuzz::ElasticConfig clean;
  clean.seed = 5;
  fuzz::ElasticChaosExplorer clean_explorer(clean);
  fuzz::ElasticResult ok = clean_explorer.RunSchedule(
      clean_explorer.MakeSchedule(0));
  EXPECT_TRUE(ok.ok) << (ok.violations.empty() ? "" : ok.violations[0]);
}

TEST(WorkloadTest, TenSecondSmokeSweepStaysHealthy) {
  // The ctest-lane smoke: a short offered-load sweep, chaos on and off,
  // all virtual-time — wall clock stays well under the 10s budget.
  for (double qps : {40.0, 160.0}) {
    for (bool chaos : {false, true}) {
      WorkloadConfig config = SmallConfig(chaos);
      config.tenants[0].arrival_qps = qps;
      auto report = RunWorkload(config);
      ASSERT_TRUE(report.ok()) << report.status();
      int64_t ok_total = 0;
      for (const TenantReport& t : report->tenants) ok_total += t.ok;
      EXPECT_GT(ok_total, 0) << "qps=" << qps << " chaos=" << chaos;
    }
  }
}

}  // namespace
}  // namespace xrpc::load
