// Unit tests of the pure anti-entropy helpers (DESIGN.md §17):
// CollectCommittedDeltas — the donor-side scan that turns a replayed WAL
// into an ordered, contiguous chain of committed PULs covering a version
// range (or nullopt, forcing full transfer) — and FragmentDigest, the
// content digest the requester verifies a delta replay against.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/repair.h"
#include "server/txn_log.h"
#include "server/wsat.h"
#include "xml/parser.h"

namespace xrpc::server {
namespace {

using Record = TxnLog::Record;
using RecordType = TxnLog::RecordType;

constexpr char kDoc[] = "auctions.xml.0";
constexpr char kOtherDoc[] = "auctions.xml.1";

/// A PREPARED record whose payload writes `doc` at `version` with a
/// distinguishable (opaque to the scan) PUL body.
Record Prepared(const std::string& qid, const std::string& doc,
                uint64_t version) {
  PreparedPayload payload;
  payload.coordinator = "xrpc://p0";
  payload.pul = "pul-of-" + qid;
  payload.fragments.push_back({doc, "auctions.xml", 0, version});
  return {RecordType::kPrepared, qid, SerializePreparedPayload(payload)};
}

Record Committed(const std::string& qid) {
  return {RecordType::kCommitted, qid, ""};
}

Record Aborted(const std::string& qid) {
  return {RecordType::kAborted, qid, ""};
}

TEST(CollectCommittedDeltasTest, ContiguousChainComesBackInVersionOrder) {
  // Log order scrambled on purpose: the scan orders by produced version,
  // not append order.
  std::vector<Record> wal = {
      Prepared("q2", kDoc, 2), Committed("q2"),
      Prepared("q1", kDoc, 1), Committed("q1"),
      Prepared("q3", kDoc, 3), Committed("q3"),
  };
  auto deltas = CollectCommittedDeltas(wal, kDoc, /*from_version=*/0,
                                       /*to_version=*/3);
  ASSERT_TRUE(deltas.has_value());
  ASSERT_EQ(deltas->size(), 3u);
  EXPECT_EQ((*deltas)[0].version, 1u);
  EXPECT_EQ((*deltas)[0].query_id, "q1");
  EXPECT_EQ((*deltas)[0].pul, "pul-of-q1");
  EXPECT_EQ((*deltas)[1].version, 2u);
  EXPECT_EQ((*deltas)[2].version, 3u);
}

TEST(CollectCommittedDeltasTest, RangeIsHalfOpenFromBelow) {
  // (from, to] — a requester already at version 2 only needs version 3.
  std::vector<Record> wal = {
      Prepared("q1", kDoc, 1), Committed("q1"),
      Prepared("q2", kDoc, 2), Committed("q2"),
      Prepared("q3", kDoc, 3), Committed("q3"),
  };
  auto deltas = CollectCommittedDeltas(wal, kDoc, 2, 3);
  ASSERT_TRUE(deltas.has_value());
  ASSERT_EQ(deltas->size(), 1u);
  EXPECT_EQ((*deltas)[0].version, 3u);
  EXPECT_EQ((*deltas)[0].query_id, "q3");
}

TEST(CollectCommittedDeltasTest, HoleInTheChainForcesFullTransfer) {
  // Version 2 committed at another copy (or the WAL was truncated): a
  // replay of {1, 3} would silently skip an update, so the scan refuses.
  std::vector<Record> wal = {
      Prepared("q1", kDoc, 1), Committed("q1"),
      Prepared("q3", kDoc, 3), Committed("q3"),
  };
  EXPECT_FALSE(CollectCommittedDeltas(wal, kDoc, 0, 3).has_value());
}

TEST(CollectCommittedDeltasTest, UndecidedAndAbortedNeverContribute) {
  // q2 prepared but never decided; q3 aborted after preparing. Neither may
  // leak into a replay — and their absence is a hole, not a shorter chain.
  std::vector<Record> wal = {
      Prepared("q1", kDoc, 1), Committed("q1"),
      Prepared("q2", kDoc, 2),
      Prepared("q3", kDoc, 3), Aborted("q3"),
  };
  auto only_first = CollectCommittedDeltas(wal, kDoc, 0, 1);
  ASSERT_TRUE(only_first.has_value());
  EXPECT_EQ(only_first->size(), 1u);
  EXPECT_FALSE(CollectCommittedDeltas(wal, kDoc, 0, 2).has_value());
  EXPECT_FALSE(CollectCommittedDeltas(wal, kDoc, 0, 3).has_value());
}

TEST(CollectCommittedDeltasTest, OtherFragmentsAreInvisible) {
  // A transaction that wrote only the neighboring fragment must not appear
  // in this fragment's chain — even though it committed.
  std::vector<Record> wal = {
      Prepared("q1", kDoc, 1), Committed("q1"),
      Prepared("q2", kOtherDoc, 2), Committed("q2"),
  };
  auto deltas = CollectCommittedDeltas(wal, kDoc, 0, 1);
  ASSERT_TRUE(deltas.has_value());
  ASSERT_EQ(deltas->size(), 1u);
  EXPECT_EQ((*deltas)[0].query_id, "q1");
  EXPECT_FALSE(CollectCommittedDeltas(wal, kDoc, 0, 2).has_value());
}

TEST(CollectCommittedDeltasTest, EmptyRangeIsAnEmptyChain) {
  std::vector<Record> wal = {Prepared("q1", kDoc, 1), Committed("q1")};
  auto deltas = CollectCommittedDeltas(wal, kDoc, 1, 1);
  ASSERT_TRUE(deltas.has_value());
  EXPECT_TRUE(deltas->empty());
}

TEST(FragmentDigestTest, ByteIdenticalTreesDigestEqual) {
  auto a = xml::ParseXml("<site><item id=\"1\">x</item></site>");
  auto b = xml::ParseXml("<site><item id=\"1\">x</item></site>");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(FragmentDigest(*a.value()), FragmentDigest(*b.value()));
}

TEST(FragmentDigestTest, DivergentTreesDigestDifferently) {
  // The exact divergence repair must catch: one missing stamp element.
  auto a = xml::ParseXml("<site><stamp/><stamp/></site>");
  auto b = xml::ParseXml("<site><stamp/></site>");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(FragmentDigest(*a.value()), FragmentDigest(*b.value()));
}

}  // namespace
}  // namespace xrpc::server
