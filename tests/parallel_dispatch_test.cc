// Tests for parallel multi-destination Bulk RPC dispatch: the ThreadPool,
// the transport parallel-group protocol (virtual clock advances by the
// group's critical path, max over destinations, not the sum), out-of-order
// map-back correctness, per-destination error isolation under fault
// injection, and the thread-safety of the RetryingTransport jitter PRNG.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/retrying_transport.h"
#include "net/rpc_metrics.h"
#include "net/simulated_network.h"
#include "net/thread_pool.h"
#include "server/rpc_client.h"
#include "soap/message.h"

namespace xrpc {
namespace {

using server::RpcClient;
using Destination = server::BulkRpcChannel::Destination;

// SOAP-speaking peer answering every call with a sequence of `items`
// integers — destinations are told apart by their result cardinality, so a
// response mapped to the wrong destination index is immediately visible.
class CountingPeer : public net::SoapEndpoint {
 public:
  explicit CountingPeer(int items) : items_(items) {}

  StatusOr<std::string> Handle(const std::string& /*path*/,
                               const std::string& body) override {
    requests_.fetch_add(1, std::memory_order_relaxed);
    XRPC_ASSIGN_OR_RETURN(soap::XrpcRequest req, soap::ParseRequest(body));
    soap::XrpcResponse resp;
    resp.module_ns = req.module_ns;
    resp.method = req.method;
    for (size_t c = 0; c < req.calls.size(); ++c) {
      xdm::Sequence seq;
      for (int i = 0; i < items_; ++i) {
        seq.push_back(xdm::Item(xdm::AtomicValue::Integer(i)));
      }
      resp.results.push_back(std::move(seq));
    }
    return soap::SerializeResponse(resp);
  }

  int requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  int items_;
  std::atomic<int> requests_{0};
};

// Non-SOAP endpoint for wire-level parallel-group tests: echoes the body,
// so post cost scales with message size without any envelope parsing.
class EchoPeer : public net::SoapEndpoint {
 public:
  StatusOr<std::string> Handle(const std::string& /*path*/,
                               const std::string& body) override {
    return "echo:" + body;
  }
};

soap::XrpcRequest MakeRequest(size_t pad_bytes = 0) {
  soap::XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 1;
  req.calls.push_back({xdm::Sequence{
      xdm::Item(xdm::AtomicValue::String(std::string(pad_bytes, 'x')))}});
  return req;
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    net::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ConcurrencyIsBoundedByThreadCount) {
  net::ThreadPool pool(3);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 30; ++i) {
    pool.Submit([&] {
      int now = running.fetch_add(1, std::memory_order_relaxed) + 1;
      int prev = max_running.load(std::memory_order_relaxed);
      while (now > prev &&
             !max_running.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  while (done.load() < 30) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LE(max_running.load(), 3);
  EXPECT_GE(max_running.load(), 1);
  EXPECT_LE(pool.peak_in_flight(), 3);
  EXPECT_GE(pool.peak_in_flight(), 1);
}

TEST(ParallelGroup, ClockAdvancesByMaxNotSum) {
  net::NetworkProfile profile;
  profile.latency_us = 1000;
  profile.bandwidth_bytes_per_us = 1.0;  // 1 byte/us: size differences count
  net::SimulatedNetwork net(profile);
  EchoPeer peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);

  // Measure the two per-post costs individually first.
  ASSERT_TRUE(net.Post("xrpc://p", "small").ok());
  int64_t cost_small = net.clock().NowMicros();
  net.ResetStats();
  ASSERT_TRUE(net.Post("xrpc://p", std::string(5000, 'x')).ok());
  int64_t cost_big = net.clock().NowMicros();
  net.ResetStats();
  ASSERT_GT(cost_big, cost_small);

  net.BeginParallelGroup();
  ASSERT_TRUE(net.Post("xrpc://p", "small").ok());
  ASSERT_TRUE(net.Post("xrpc://p", std::string(5000, 'x')).ok());
  EXPECT_EQ(net.clock().NowMicros(), 0) << "clock must not move mid-group";
  net.EndParallelGroup();
  EXPECT_EQ(net.clock().NowMicros(), cost_big)
      << "group cost = critical path (max), not sum";
}

TEST(ParallelGroup, NestedGroupsFoldIntoTheOutermost) {
  net::NetworkProfile profile;
  profile.latency_us = 500;
  net::SimulatedNetwork net(profile);
  EchoPeer peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
  ASSERT_TRUE(net.Post("xrpc://p", "x").ok());
  int64_t single = net.clock().NowMicros();
  net.ResetStats();

  net.BeginParallelGroup();
  ASSERT_TRUE(net.Post("xrpc://p", "x").ok());
  net.BeginParallelGroup();  // nested fan-out inside the outer group
  ASSERT_TRUE(net.Post("xrpc://p", "x").ok());
  net.EndParallelGroup();
  EXPECT_EQ(net.clock().NowMicros(), 0) << "inner End must not advance";
  net.EndParallelGroup();
  EXPECT_EQ(net.clock().NowMicros(), single);
}

// Fixture: one simulated network with four peers of distinct result
// cardinalities (1, 2, 3, 4 items).
class ParallelDispatchTest : public ::testing::Test {
 protected:
  ParallelDispatchTest() {
    net::NetworkProfile profile;
    profile.latency_us = 1000;
    network_ = std::make_unique<net::SimulatedNetwork>(profile);
    for (int i = 0; i < 4; ++i) {
      peers_.push_back(std::make_unique<CountingPeer>(i + 1));
      network_->RegisterPeer(
          net::ParseXrpcUri("xrpc://p" + std::to_string(i)).value(),
          peers_.back().get());
    }
  }

  std::vector<Destination> FourDestinations(size_t pad = 0) {
    std::vector<Destination> dests;
    for (int i = 0; i < 4; ++i) {
      dests.push_back({"xrpc://p" + std::to_string(i), MakeRequest(pad)});
    }
    return dests;
  }

  std::unique_ptr<net::SimulatedNetwork> network_;
  std::vector<std::unique_ptr<CountingPeer>> peers_;
};

TEST_F(ParallelDispatchTest, SerialDispatchChargesCriticalPathNotSum) {
  // All four requests are identical, so each exchange has the same modeled
  // cost c; the group must cost exactly c (max), not 4c (sum).
  RpcClient probe(network_.get(), {});
  ASSERT_TRUE(probe.ExecuteBulk("xrpc://p0", MakeRequest()).ok());
  int64_t single_cost = network_->clock().NowMicros();
  ASSERT_GT(single_cost, 0);
  network_->ResetStats();

  RpcClient client(network_.get(), {});
  auto responses = client.ExecuteBulkAll(FourDestinations());
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 4u);
  // Responses map to destinations by index: peer i answers i+1 items.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ((*responses)[i].results.size(), 1u);
    EXPECT_EQ((*responses)[i].results[0].size(), static_cast<size_t>(i + 1));
  }
  // Peer p0's response is a little smaller than p3's (fewer items), so the
  // critical path is p3's cost — which is >= the probe cost against p0 and
  // well under the serial sum.
  EXPECT_GE(network_->clock().NowMicros(), single_cost);
  EXPECT_LT(network_->clock().NowMicros(), 2 * single_cost);
  EXPECT_EQ(network_->clock().NowMicros(), client.network_micros());
  EXPECT_EQ(client.requests_sent(), 4);
}

TEST_F(ParallelDispatchTest, PooledDispatchAgreesWithSerialClock) {
  // The virtual clock must not care whether the fan-out was physically
  // parallel: same destinations => same modeled critical path.
  RpcClient serial(network_.get(), {});
  auto serial_responses = serial.ExecuteBulkAll(FourDestinations());
  ASSERT_TRUE(serial_responses.ok()) << serial_responses.status();
  int64_t serial_clock = network_->clock().NowMicros();
  int64_t serial_network = serial.network_micros();
  network_->ResetStats();

  net::ThreadPool pool(4);
  RpcClient::Options opts;
  opts.dispatch_pool = &pool;
  RpcClient parallel(network_.get(), opts);
  auto parallel_responses = parallel.ExecuteBulkAll(FourDestinations());
  ASSERT_TRUE(parallel_responses.ok()) << parallel_responses.status();
  EXPECT_EQ(network_->clock().NowMicros(), serial_clock);
  EXPECT_EQ(parallel.network_micros(), serial_network);
  ASSERT_EQ(parallel_responses->size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*parallel_responses)[i].results[0].size(),
              static_cast<size_t>(i + 1))
        << "out-of-order completion leaked into result order";
  }
}

TEST_F(ParallelDispatchTest, PooledDispatchMapsBackOutOfOrderCompletions) {
  // More destinations than workers, repeated: completion order is up to
  // the scheduler, result order must stay destination order every time.
  net::ThreadPool pool(3);
  RpcClient::Options opts;
  opts.dispatch_pool = &pool;
  for (int round = 0; round < 20; ++round) {
    RpcClient client(network_.get(), opts);
    std::vector<Destination> dests;
    for (int i = 0; i < 8; ++i) {
      dests.push_back({"xrpc://p" + std::to_string(i % 4), MakeRequest()});
    }
    auto responses = client.ExecuteBulkAll(std::move(dests));
    ASSERT_TRUE(responses.ok()) << responses.status();
    ASSERT_EQ(responses->size(), 8u);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ((*responses)[i].results[0].size(),
                static_cast<size_t>(i % 4 + 1));
    }
  }
}

TEST_F(ParallelDispatchTest, LatencySpikeStretchesTheCriticalPath) {
  // Deterministic spike on the 2nd post: with serial dispatch the group's
  // critical path is the spiked destination's cost.
  RpcClient probe(network_.get(), {});
  ASSERT_TRUE(probe.ExecuteBulk("xrpc://p3", MakeRequest()).ok());
  int64_t base_cost = network_->clock().NowMicros();
  network_->ResetStats();

  net::FaultProfile faults;
  faults.latency_spike_every_nth = 2;
  faults.latency_spike_us = 50'000;
  network_->set_fault_profile(faults);

  RpcClient client(network_.get(), {});
  auto responses = client.ExecuteBulkAll(FourDestinations());
  ASSERT_TRUE(responses.ok()) << responses.status();
  // Post #2 and #4 pay the spike; p3 (largest reply) sets the base cost.
  EXPECT_EQ(network_->clock().NowMicros(), base_cost + 50'000);
  EXPECT_EQ(client.network_micros(), network_->clock().NowMicros());
}

TEST_F(ParallelDispatchTest, FailedDestinationDoesNotStopTheOthers) {
  // Every 2nd post fails (requests never reach p1 and p3); the other
  // destinations must still be attempted (error isolation — the old code
  // stopped at the first failure, so p2 would never have been tried) and
  // the lowest-indexed failing destination's status is what surfaces.
  net::FaultProfile faults;
  faults.fail_every_nth = 2;
  network_->set_fault_profile(faults);

  RpcClient client(network_.get(), {});
  auto responses = client.ExecuteBulkAll(FourDestinations());
  ASSERT_FALSE(responses.ok());
  EXPECT_EQ(responses.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(responses.status().message().find("injected failure"),
            std::string::npos);
  EXPECT_EQ(peers_[0]->requests(), 1);
  EXPECT_EQ(peers_[1]->requests(), 0);  // post #2: dropped
  EXPECT_EQ(peers_[2]->requests(), 1);
  EXPECT_EQ(peers_[3]->requests(), 0);  // post #4: dropped too
  EXPECT_EQ(network_->faults_injected(), 2);  // posts #2 and #4
}

TEST_F(ParallelDispatchTest, TruncatedResponseSurfacesAndOthersComplete) {
  // Post #3's response is lost after the peer handled it — the nastiest
  // case for retry semantics. The group surfaces the truncation; every
  // peer still saw its request.
  net::FaultProfile faults;
  faults.truncate_every_nth = 3;
  network_->set_fault_profile(faults);

  RpcClient client(network_.get(), {});
  auto responses = client.ExecuteBulkAll(FourDestinations());
  ASSERT_FALSE(responses.ok());
  EXPECT_NE(responses.status().message().find("truncated"),
            std::string::npos);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(peers_[i]->requests(), 1) << "peer " << i;
  }
}

TEST_F(ParallelDispatchTest, PooledDispatchSurvivesRandomDrops) {
  // Seeded drop schedule under genuinely concurrent dispatch: whatever the
  // interleaving, every returned response must map to its destination and
  // nothing may crash or deadlock (TSan covers the rest).
  net::FaultProfile faults;
  faults.drop_probability = 0.3;
  faults.seed = 7;
  network_->set_fault_profile(faults);

  net::ThreadPool pool(4);
  RpcClient::Options opts;
  opts.dispatch_pool = &pool;
  int successes = 0;
  for (int round = 0; round < 10; ++round) {
    RpcClient client(network_.get(), opts);
    auto responses = client.ExecuteBulkAll(FourDestinations());
    if (!responses.ok()) {
      EXPECT_EQ(responses.status().code(), StatusCode::kNetworkError);
      continue;
    }
    ++successes;
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ((*responses)[i].results[0].size(),
                static_cast<size_t>(i + 1));
    }
  }
  // P(all 4 posts survive) ~ 0.24 per round; 10 rounds make both outcomes
  // overwhelmingly likely to appear, but only the invariants are asserted.
  EXPECT_GT(network_->faults_injected(), 0);
  (void)successes;
}

TEST_F(ParallelDispatchTest, FanoutMetricsAreRecorded) {
  net::RpcMetrics metrics;
  net::ThreadPool pool(2);
  RpcClient::Options opts;
  opts.dispatch_pool = &pool;
  opts.dispatch_metrics = &metrics;
  RpcClient client(network_.get(), opts);
  ASSERT_TRUE(client.ExecuteBulkAll(FourDestinations()).ok());
  EXPECT_EQ(metrics.fanout_groups(), 1);
  EXPECT_EQ(metrics.fanout_destinations(), 4);
  EXPECT_EQ(metrics.dispatch_max_in_flight(), 2);  // min(4 dests, 2 workers)
  EXPECT_EQ(metrics.fanout_latency().samples(), 4);
  std::string report = metrics.Report();
  EXPECT_NE(report.find("fanout:"), std::string::npos);
}

TEST(RetryJitter, ConcurrentBackoffDrawsStayWithinJitterBounds) {
  // The jitter PRNG is shared by concurrent per-destination retries; every
  // draw must stay a valid jitter factor and TSan must see no race.
  net::SimulatedNetwork net;
  net::RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.5;
  net::RetryingTransport transport(&net, policy);
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&transport, &ok] {
      for (int i = 0; i < 200; ++i) {
        int64_t b = transport.BackoffMicros(1);
        if (b < 500 || b > 1500) ok = false;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace xrpc
