// Tests for the loop-lifted relational evaluator (Section 3.1): its
// results must be indistinguishable from the reference interpreter. The
// parameterized corpus sweeps the expression classes the engine supports;
// the Q5 test mirrors the paper's loop-lifting example.

#include <gtest/gtest.h>

#include <functional>

#include "compiler/loop_lift.h"
#include "tests/test_util.h"
#include "xquery/parser.h"

namespace xrpc::compiler {
namespace {

using ::xrpc::testing::MapDocumentProvider;
using ::xrpc::testing::MapModuleResolver;

constexpr char kFilmDb[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

class LoopLiftTest : public ::testing::Test {
 protected:
  LoopLiftTest() {
    docs_.AddDocument("filmDB.xml", kFilmDb);
    docs_.AddDocument("nums.xml",
                      "<ns><n>3</n><n>1</n><n>2</n><n>1</n></ns>");
    EXPECT_TRUE(modules_
                    .AddModule(R"(
      module namespace m = "m";
      declare function m:double($x as xs:integer) as xs:integer { $x * 2 };
      declare function m:films($a as xs:string) as node()*
      { doc("filmDB.xml")//name[../actor=$a] };)")
                    .ok());
  }

  std::string Relational(const std::string& query, int exec_threads = 1) {
    auto parsed = xquery::ParseMainModule(query);
    if (!parsed.ok()) return "PARSE ERROR: " + parsed.status().ToString();
    LoopLiftConfig config;
    config.documents = &docs_;
    config.modules = &modules_;
    config.shreds = &shreds_;
    config.exec_threads = exec_threads;
    // Tiny morsels so the corpus fixtures (a handful of rows) actually
    // split across workers instead of degenerating to one morsel.
    if (exec_threads > 1) config.morsel_rows = 2;
    LoopLiftedEvaluator evaluator(config);
    auto result = evaluator.EvaluateQuery(parsed.value());
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return xdm::SequenceToString(result.value());
  }

  std::string Interpreted(const std::string& query) {
    return ::xrpc::testing::EvalToString(query, &docs_, &modules_);
  }

  MapDocumentProvider docs_;
  MapModuleResolver modules_;
  shred::ShredCache shreds_;
};

TEST_F(LoopLiftTest, PaperQ5NestedLoops) {
  // Section 3.1's running example Q5.
  const char* q5 =
      "for $x in (10,20) return for $y in (100,200) "
      "return let $z := ($x,$y) return $z";
  EXPECT_EQ(Relational(q5), "10 100 10 200 20 100 20 200");
  EXPECT_EQ(Relational(q5), Interpreted(q5));
}

TEST_F(LoopLiftTest, PathOverShreddedDocument) {
  EXPECT_EQ(
      Relational("doc(\"filmDB.xml\")//name[../actor=\"Sean Connery\"]"),
      "<name>The Rock</name> <name>Goldfinger</name>");
}

TEST_F(LoopLiftTest, UserFunctionInlining) {
  EXPECT_EQ(Relational("import module namespace m=\"m\" at \"m.xq\"; "
                       "for $i in 1 to 3 return m:double($i)"),
            "2 4 6");
}

TEST_F(LoopLiftTest, SelectionFunctionActsAsJoin) {
  // The m:films selection applied in a loop — the bulk execution pattern
  // the paper highlights for getPerson.
  EXPECT_EQ(
      Relational("import module namespace m=\"m\" at \"m.xq\"; "
                 "for $a in (\"Gerard Depardieu\", \"Sean Connery\") "
                 "return count(m:films($a))"),
      "1 2");
}

TEST_F(LoopLiftTest, UpdatingExpressionIsUnsupported) {
  std::string r = Relational("delete nodes doc(\"filmDB.xml\")//film");
  EXPECT_NE(r.find("Unsupported"), std::string::npos) << r;
}

// Equivalence property: relational and interpreted evaluation agree on the
// rendered result for every query in the corpus.
class EngineEquivalence : public LoopLiftTest,
                          public ::testing::WithParamInterface<const char*> {};

TEST_P(EngineEquivalence, RelationalMatchesInterpreter) {
  std::string rel = Relational(GetParam());
  std::string ref = Interpreted(GetParam());
  ASSERT_EQ(rel.find("ERROR"), std::string::npos) << rel;
  EXPECT_EQ(rel, ref) << "query: " << GetParam();
}

TEST_P(EngineEquivalence, MorselParallelExecutionIsByteIdentical) {
  // The determinism contract of DESIGN.md §15: the morsel-parallel
  // executor must reproduce serial output byte for byte at ANY worker
  // count (the merge concatenates per-morsel outputs in morsel order).
  const std::string serial = Relational(GetParam());
  for (int threads : {2, 8}) {
    EXPECT_EQ(Relational(GetParam(), threads), serial)
        << "query: " << GetParam() << " exec_threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EngineEquivalence,
    ::testing::Values(
        // literals, sequences, arithmetic
        "42", "(1, 2, 3)", "1 + 2 * 3", "7 idiv 2", "10 mod 4",
        "-(3 + 4)", "2.5 * 2",
        // ranges and FLWOR
        "1 to 5", "for $x in 1 to 5 return $x * $x",
        "for $x in (1,2,3) where $x mod 2 = 1 return $x",
        "for $x in (3,1,2) order by $x return $x",
        "for $x in (3,1,2) order by $x descending return $x * 10",
        "for $x in (1,2), $y in (10,20) return $x + $y",
        "let $s := (1,2,3) return count($s)",
        "for $x at $i in (\"a\",\"b\",\"c\") return $i",
        // conditionals, logic, quantifiers
        "if (1 < 2) then \"y\" else \"n\"",
        "for $x in (1,2,3,4) return if ($x mod 2 = 0) then $x else ()",
        "true() or false()", "true() and false()",
        "some $x in (1,2,3) satisfies $x > 2",
        "every $x in (1,2,3) satisfies $x > 0",
        // comparisons
        "(1,2,3) = 2", "(1,2) != (1,2)", "1 eq 1", "\"a\" lt \"b\"",
        // paths and predicates
        "count(doc(\"filmDB.xml\")//film)",
        "doc(\"filmDB.xml\")//name",
        "string(doc(\"filmDB.xml\")/films/film[2]/name)",
        "doc(\"nums.xml\")//n[. > 1]",
        "for $n in doc(\"nums.xml\")//n order by number($n) return string($n)",
        "doc(\"filmDB.xml\")//film[name=\"Goldfinger\"]/actor",
        "count(doc(\"nums.xml\")//n[position() = last()])",
        // built-ins
        "string-join((\"a\",\"b\",\"c\"), \"-\")",
        "concat(\"x\", \"y\")", "sum((1,2,3))", "avg((2,4))",
        "min((3,1,2))", "max((3,1,2))",
        "distinct-values((1,2,1,3))",
        "contains(\"hello\", \"ell\")",
        "empty(())", "exists((1))", "not(1 = 2)",
        "data(doc(\"nums.xml\")//n[1])",
        // constructors
        "<a>{1 + 1}</a>", "<a x=\"{2+3}\"><b/></a>",
        "<films>{doc(\"filmDB.xml\")//name[../actor=\"Sean Connery\"]}"
        "</films>",
        "text { \"hi\" }",
        // casts
        "xs:integer(\"42\") + 1", "\"3.5\" cast as xs:double",
        "\"x\" castable as xs:integer",
        // union
        "doc(\"filmDB.xml\")//name | doc(\"filmDB.xml\")//actor",
        // equality where-clauses over a cross product (the hash-join
        // fast path must agree with the interpreter, including duplicate
        // keys and empty matches)
        "for $f in doc(\"filmDB.xml\")//film, "
        "$n in doc(\"filmDB.xml\")//name "
        "where $f/name = $n return string($n)",
        "for $a in (\"Sean Connery\", \"Nobody\", \"Gerard Depardieu\"), "
        "$f in doc(\"filmDB.xml\")//film "
        "where $f/actor = $a return string($f/name)",
        "for $x in (\"a\",\"b\"), $f in doc(\"filmDB.xml\")//film "
        "where $f/actor = \"no such actor\" return string($f/name)",
        // numeric keys must take the fallback path and still agree
        "for $i in (1,2,3), $n in doc(\"nums.xml\")//n "
        "where number($n) = $i return concat(string($i),\":\",string($n))"));

}  // namespace
}  // namespace xrpc::compiler
