// Unit tests for the tree-walking interpreter: expression semantics,
// built-ins, paths over documents, user functions, modules, execute at
// (against a loopback RPC handler) and XQUF pending update lists.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/serializer.h"
#include "xquery/update.h"

namespace xrpc::xquery {
namespace {

using ::xrpc::testing::EvalToString;
using ::xrpc::testing::LoopbackRpcHandler;
using ::xrpc::testing::MapDocumentProvider;
using ::xrpc::testing::MapModuleResolver;

constexpr char kFilmDb[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare function film:filmsByActor($actor as xs:string) as node()*
  { doc("filmDB.xml")//name[../actor=$actor] };
)";

TEST(Eval, ArithmeticAndPrecedence) {
  EXPECT_EQ(EvalToString("1 + 2 * 3"), "7");
  EXPECT_EQ(EvalToString("(1 + 2) * 3"), "9");
  EXPECT_EQ(EvalToString("7 idiv 2"), "3");
  EXPECT_EQ(EvalToString("7 mod 2"), "1");
  EXPECT_EQ(EvalToString("1 div 2"), "0.5");
  EXPECT_EQ(EvalToString("-3 + 1"), "-2");
  EXPECT_EQ(EvalToString("2.5 + 2.5"), "5");
}

TEST(Eval, EmptySequencePropagatesThroughArith) {
  EXPECT_EQ(EvalToString("() + 1"), "");
  EXPECT_EQ(EvalToString("1 * ()"), "");
}

TEST(Eval, DivisionByZeroIsAnError) {
  EXPECT_TRUE(EvalToString("1 idiv 0").find("ERROR") == 0);
  EXPECT_TRUE(EvalToString("1 mod 0").find("ERROR") == 0);
}

TEST(Eval, Comparisons) {
  EXPECT_EQ(EvalToString("1 < 2"), "true");
  EXPECT_EQ(EvalToString("\"a\" = \"a\""), "true");
  EXPECT_EQ(EvalToString("(1,2,3) = 2"), "true");   // existential
  EXPECT_EQ(EvalToString("(1,2,3) != 1"), "true");  // existential !=
  EXPECT_EQ(EvalToString("() = 1"), "false");
  EXPECT_EQ(EvalToString("1 eq 1"), "true");
  EXPECT_EQ(EvalToString("() eq 1"), "");
}

TEST(Eval, LogicShortCircuits) {
  EXPECT_EQ(EvalToString("true() or fn:error(\"boom\")"), "true");
  EXPECT_EQ(EvalToString("false() and fn:error(\"boom\")"), "false");
  EXPECT_EQ(EvalToString("not(false())"), "true");
}

TEST(Eval, FlworBasics) {
  EXPECT_EQ(EvalToString("for $x in (1,2,3) return $x * 2"), "2 4 6");
  EXPECT_EQ(EvalToString("for $x in 1 to 4 where $x mod 2 = 0 return $x"),
            "2 4");
  EXPECT_EQ(EvalToString("let $x := 5 return $x + 1"), "6");
  EXPECT_EQ(
      EvalToString("for $x in (1,2), $y in (10,20) return $x + $y"),
      "11 21 12 22");
}

TEST(Eval, FlworLoopLiftedNesting) {
  // Query Q5 from Section 3.1 of the paper.
  EXPECT_EQ(EvalToString("for $x in (10,20) return for $y in (100,200) "
                         "return let $z := ($x,$y) return $z"),
            "10 100 10 200 20 100 20 200");
}

TEST(Eval, FlworOrderBy) {
  EXPECT_EQ(EvalToString("for $x in (3,1,2) order by $x return $x"), "1 2 3");
  EXPECT_EQ(EvalToString("for $x in (3,1,2) order by $x descending return $x"),
            "3 2 1");
  EXPECT_EQ(EvalToString(
                "for $x in (\"b\",\"a\",\"c\") order by $x return $x"),
            "a b c");
}

TEST(Eval, FlworPositionalVar) {
  EXPECT_EQ(EvalToString("for $x at $i in (\"a\",\"b\") return $i"), "1 2");
}

TEST(Eval, Quantifiers) {
  EXPECT_EQ(EvalToString("some $x in (1,2,3) satisfies $x > 2"), "true");
  EXPECT_EQ(EvalToString("every $x in (1,2,3) satisfies $x > 2"), "false");
  EXPECT_EQ(EvalToString("every $x in () satisfies false()"), "true");
}

TEST(Eval, IfThenElse) {
  EXPECT_EQ(EvalToString("if (1 < 2) then \"y\" else \"n\""), "y");
  EXPECT_EQ(EvalToString("if (()) then \"y\" else \"n\""), "n");
}

TEST(Eval, StringBuiltins) {
  EXPECT_EQ(EvalToString("concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(EvalToString("string-join((\"a\",\"b\"), \"-\")"), "a-b");
  EXPECT_EQ(EvalToString("substring(\"12345\", 2, 3)"), "234");
  EXPECT_EQ(EvalToString("contains(\"hello\", \"ell\")"), "true");
  EXPECT_EQ(EvalToString("starts-with(\"hello\", \"he\")"), "true");
  EXPECT_EQ(EvalToString("upper-case(\"abc\")"), "ABC");
  EXPECT_EQ(EvalToString("string-length(\"abcd\")"), "4");
  EXPECT_EQ(EvalToString("normalize-space(\"  a   b \")"), "a b");
  EXPECT_EQ(EvalToString("substring-before(\"a=b\", \"=\")"), "a");
  EXPECT_EQ(EvalToString("substring-after(\"a=b\", \"=\")"), "b");
}

TEST(Eval, NumericBuiltins) {
  EXPECT_EQ(EvalToString("count((1,2,3))"), "3");
  EXPECT_EQ(EvalToString("sum((1,2,3))"), "6");
  EXPECT_EQ(EvalToString("avg((2,4))"), "3");
  EXPECT_EQ(EvalToString("min((3,1,2))"), "1");
  EXPECT_EQ(EvalToString("max((3,1,2))"), "3");
  EXPECT_EQ(EvalToString("abs(-4)"), "4");
  EXPECT_EQ(EvalToString("floor(2.7)"), "2");
  EXPECT_EQ(EvalToString("ceiling(2.1)"), "3");
  EXPECT_EQ(EvalToString("round(2.5)"), "3");
}

TEST(Eval, SequenceBuiltins) {
  EXPECT_EQ(EvalToString("empty(())"), "true");
  EXPECT_EQ(EvalToString("exists((1))"), "true");
  EXPECT_EQ(EvalToString("distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
  EXPECT_EQ(EvalToString("reverse((1,2,3))"), "3 2 1");
  EXPECT_EQ(EvalToString("subsequence((1,2,3,4), 2, 2)"), "2 3");
  EXPECT_EQ(EvalToString("index-of((10,20,10), 10)"), "1 3");
  EXPECT_EQ(EvalToString("insert-before((1,3), 2, 2)"), "1 2 3");
  EXPECT_EQ(EvalToString("remove((1,2,3), 2)"), "1 3");
  EXPECT_EQ(EvalToString("zero-or-one(())"), "");
  EXPECT_TRUE(EvalToString("zero-or-one((1,2))").find("ERROR") == 0);
  EXPECT_TRUE(EvalToString("exactly-one(())").find("ERROR") == 0);
}

TEST(Eval, CastsAndConstructorFunctions) {
  EXPECT_EQ(EvalToString("xs:integer(\"42\") + 1"), "43");
  EXPECT_EQ(EvalToString("\"3\" cast as xs:double"), "3");
  EXPECT_EQ(EvalToString("3 instance of xs:integer"), "true");
  EXPECT_EQ(EvalToString("3 instance of xs:string"), "false");
  EXPECT_EQ(EvalToString("(1,2) instance of xs:integer+"), "true");
  EXPECT_EQ(EvalToString("\"x\" castable as xs:integer"), "false");
}

TEST(Eval, PathsOverDocument) {
  MapDocumentProvider docs;
  docs.AddDocument("filmDB.xml", kFilmDb);
  EXPECT_EQ(EvalToString("count(doc(\"filmDB.xml\")//film)", &docs), "3");
  EXPECT_EQ(EvalToString(
                "doc(\"filmDB.xml\")//name[../actor=\"Sean Connery\"]", &docs),
            "<name>The Rock</name> <name>Goldfinger</name>");
  EXPECT_EQ(
      EvalToString("string(doc(\"filmDB.xml\")/films/film[2]/name)", &docs),
      "Goldfinger");
  EXPECT_EQ(EvalToString("count(doc(\"filmDB.xml\")/films/film/actor)", &docs),
            "3");
}

TEST(Eval, PathPredicatesPositional) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r><x>1</x><x>2</x><x>3</x></r>");
  EXPECT_EQ(EvalToString("string(doc(\"d.xml\")//x[last()])", &docs), "3");
  EXPECT_EQ(EvalToString("string(doc(\"d.xml\")//x[position()=2])", &docs),
            "2");
  EXPECT_EQ(EvalToString("doc(\"d.xml\")//x[. > 1]", &docs),
            "<x>2</x> <x>3</x>");
}

TEST(Eval, AttributesAndParentAxis) {
  MapDocumentProvider docs;
  docs.AddDocument("p.xml",
                   R"(<people><person id="p1"><name>A</name></person>)"
                   R"(<person id="p2"><name>B</name></person></people>)");
  EXPECT_EQ(
      EvalToString("string(doc(\"p.xml\")//person[@id=\"p2\"]/name)", &docs),
      "B");
  EXPECT_EQ(
      EvalToString("string(doc(\"p.xml\")//name[. = \"A\"]/../@id)", &docs),
      "p1");
}

TEST(Eval, PathResultsDocOrderAndDedup) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r><a><b>1</b></a><a><b>2</b></a></r>");
  // Both (//a)//b and //b must yield b's in document order without dups.
  EXPECT_EQ(EvalToString("doc(\"d.xml\")//a//b | doc(\"d.xml\")//b", &docs),
            "<b>1</b> <b>2</b>");
}

TEST(Eval, UnionSortsByDocumentOrder) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r><a/><b/></r>");
  EXPECT_EQ(EvalToString("doc(\"d.xml\")//b | doc(\"d.xml\")//a", &docs),
            "<a/> <b/>");
}

TEST(Eval, ElementConstruction) {
  EXPECT_EQ(EvalToString("<a>{1 + 1}</a>"), "<a>2</a>");
  EXPECT_EQ(EvalToString("<a x=\"{1+1}\"/>"), "<a x=\"2\"/>");
  EXPECT_EQ(EvalToString("<a>{(1,2,3)}</a>"), "<a>1 2 3</a>");
  EXPECT_EQ(EvalToString("<a><b>text</b></a>"), "<a><b>text</b></a>");
  EXPECT_EQ(EvalToString("element foo { \"x\" }"), "<foo>x</foo>");
  EXPECT_EQ(EvalToString("element {concat(\"f\",\"oo\")} { () }"), "<foo/>");
  EXPECT_EQ(EvalToString("text { \"hi\" }"), "hi");
}

TEST(Eval, ConstructedNodesAreCopies) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r><x>1</x></r>");
  // The node inside the new element is a copy: its parent chain ends at the
  // constructed element, not the source document.
  EXPECT_EQ(EvalToString("count((<w>{doc(\"d.xml\")//x}</w>)/x/ancestor::r)",
                         &docs),
            "0");
}

TEST(Eval, UserFunctionsAndRecursion) {
  EXPECT_EQ(EvalToString(R"(
    declare function local:fact($n as xs:integer) as xs:integer {
      if ($n <= 1) then 1 else $n * local:fact($n - 1)
    };
    local:fact(5))"),
            "120");
}

TEST(Eval, FunctionParameterUpcast) {
  // Caller-side up-casting per the XRPC protocol: untyped/numeric values
  // are cast to the declared parameter type.
  EXPECT_EQ(EvalToString(R"(
    declare function local:f($s as xs:string) as xs:string { $s };
    local:f(<x>abc</x>))"),
            "abc");
}

TEST(Eval, RecursionLimit) {
  EXPECT_TRUE(EvalToString(R"(
    declare function local:f($n as xs:integer) { local:f($n + 1) };
    local:f(0))")
                  .find("ERROR") == 0);
}

TEST(Eval, ModuleFunctionCall) {
  MapDocumentProvider docs;
  docs.AddDocument("filmDB.xml", kFilmDb);
  MapModuleResolver modules;
  ASSERT_TRUE(modules.AddModule(kFilmModule).ok());
  EXPECT_EQ(EvalToString(R"(
      import module namespace f="films" at "http://x.example.org/film.xq";
      f:filmsByActor("Gerard Depardieu"))",
                         &docs, &modules),
            "<name>Green Card</name>");
}

TEST(Eval, ExecuteAtRunsRemoteFunction) {
  // Query Q1 from the paper, against a loopback peer.
  MapDocumentProvider docs;
  docs.AddDocument("filmDB.xml", kFilmDb);
  MapModuleResolver modules;
  ASSERT_TRUE(modules.AddModule(kFilmModule).ok());
  LoopbackRpcHandler rpc(&modules, &docs);
  EXPECT_EQ(EvalToString(R"(
      import module namespace f="films" at "http://x.example.org/film.xq";
      <films> {
        execute at {"xrpc://y.example.org"}
        {f:filmsByActor("Sean Connery")}
      } </films>)",
                         &docs, &modules, &rpc),
            "<films><name>The Rock</name><name>Goldfinger</name></films>");
  ASSERT_EQ(rpc.calls().size(), 1u);
  EXPECT_EQ(rpc.calls()[0].dest_uri, "xrpc://y.example.org");
  EXPECT_EQ(rpc.calls()[0].module_ns, "films");
  EXPECT_EQ(rpc.calls()[0].module_location, "http://x.example.org/film.xq");
  EXPECT_EQ(rpc.calls()[0].function.local, "filmsByActor");
}

TEST(Eval, ExecuteAtInLoopIssuesOneCallPerIteration) {
  // The interpreter is the "Saxon" role: one-at-a-time RPC.
  MapDocumentProvider docs;
  docs.AddDocument("filmDB.xml", kFilmDb);
  MapModuleResolver modules;
  ASSERT_TRUE(modules.AddModule(kFilmModule).ok());
  LoopbackRpcHandler rpc(&modules, &docs);
  EXPECT_EQ(EvalToString(R"(
      import module namespace f="films" at "http://x.example.org/film.xq";
      for $actor in ("Julie Andrews", "Sean Connery")
      return execute at {"xrpc://y.example.org"} {f:filmsByActor($actor)})",
                         &docs, &modules, &rpc),
            "<name>The Rock</name> <name>Goldfinger</name>");
  EXPECT_EQ(rpc.calls().size(), 2u);
}

TEST(Eval, XrpcHostAndPathHelpers) {
  EXPECT_EQ(EvalToString("xrpc:host(\"xrpc://b.org/auctions.xml\")"),
            "xrpc://b.org");
  EXPECT_EQ(EvalToString("xrpc:path(\"xrpc://b.org/auctions.xml\")"),
            "auctions.xml");
  EXPECT_EQ(EvalToString("xrpc:host(\"persons.xml\")"), "localhost");
  EXPECT_EQ(EvalToString("xrpc:path(\"persons.xml\")"), "persons.xml");
}

TEST(Eval, DeepEqual) {
  EXPECT_EQ(EvalToString("deep-equal(<a><b/></a>, <a><b/></a>)"), "true");
  EXPECT_EQ(EvalToString("deep-equal(<a><b/></a>, <a><c/></a>)"), "false");
  EXPECT_EQ(EvalToString("deep-equal((1,2), (1,2))"), "true");
}

TEST(Eval, NodeIdentityComparisons) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r><a/><b/></r>");
  EXPECT_EQ(EvalToString(
                "let $d := doc(\"d.xml\") return $d//a is $d//a", &docs),
            "true");
  EXPECT_EQ(EvalToString(
                "let $d := doc(\"d.xml\") return $d//a << $d//b", &docs),
            "true");
  // Two construction evaluations create distinct identities.
  EXPECT_EQ(EvalToString("<a/> is <a/>"), "false");
}

TEST(Eval, NameBuiltins) {
  EXPECT_EQ(EvalToString("name(<foo/>)"), "foo");
  EXPECT_EQ(EvalToString("local-name(<foo/>)"), "foo");
}

// ---- XQUF pending update lists ----

class UpdateTest : public ::testing::Test {
 protected:
  // Evaluates an updating query, applies the PUL, and returns the
  // serialized document.
  std::string RunUpdate(const std::string& query, const std::string& doc_xml) {
    MapDocumentProvider docs;
    docs.AddDocument("d.xml", doc_xml);
    auto parsed = ParseMainModule(query);
    if (!parsed.ok()) return "PARSE ERROR: " + parsed.status().ToString();
    Interpreter::Config config;
    config.documents = &docs;
    Interpreter interp(config);
    auto result = interp.EvaluateQuery(parsed.value());
    if (!result.ok()) return "EVAL ERROR: " + result.status().ToString();
    // XQUF: no visible effects until applyUpdates.
    auto before = docs.GetDocument("d.xml");
    std::string snapshot = xml::SerializeNode(*before.value());
    Status st = ApplyUpdates(&result.value().updates, nullptr);
    if (!st.ok()) return "APPLY ERROR: " + st.ToString();
    auto after = docs.GetDocument("d.xml");
    EXPECT_EQ(snapshot_before_apply_, "");
    return xml::SerializeNode(*after.value());
  }

  std::string snapshot_before_apply_;
};

TEST_F(UpdateTest, InsertInto) {
  EXPECT_EQ(RunUpdate("insert nodes <c/> into doc(\"d.xml\")/r", "<r><a/></r>"),
            "<r><a/><c/></r>");
}

TEST_F(UpdateTest, InsertFirstAndBeforeAfter) {
  EXPECT_EQ(RunUpdate("insert nodes <z/> as first into doc(\"d.xml\")/r",
                      "<r><a/></r>"),
            "<r><z/><a/></r>");
  EXPECT_EQ(
      RunUpdate("insert nodes <z/> before doc(\"d.xml\")/r/b", "<r><b/></r>"),
      "<r><z/><b/></r>");
  EXPECT_EQ(
      RunUpdate("insert nodes <z/> after doc(\"d.xml\")/r/b",
                "<r><b/><c/></r>"),
      "<r><b/><z/><c/></r>");
}

TEST_F(UpdateTest, DeleteNodes) {
  EXPECT_EQ(RunUpdate("delete nodes doc(\"d.xml\")//b", "<r><a/><b/><b/></r>"),
            "<r><a/></r>");
}

TEST_F(UpdateTest, ReplaceNodeAndValue) {
  EXPECT_EQ(RunUpdate("replace node doc(\"d.xml\")/r/a with <n/>",
                      "<r><a/></r>"),
            "<r><n/></r>");
  EXPECT_EQ(RunUpdate("replace value of node doc(\"d.xml\")/r/a with \"new\"",
                      "<r><a>old</a></r>"),
            "<r><a>new</a></r>");
}

TEST_F(UpdateTest, RenameNode) {
  EXPECT_EQ(RunUpdate("rename node doc(\"d.xml\")/r/a as \"b\"",
                      "<r><a>x</a></r>"),
            "<r><b>x</b></r>");
}

TEST_F(UpdateTest, UpdatesAreDeferredUntilApply) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r><a/></r>");
  auto parsed = ParseMainModule("insert nodes <c/> into doc(\"d.xml\")/r");
  ASSERT_TRUE(parsed.ok());
  Interpreter::Config config;
  config.documents = &docs;
  Interpreter interp(config);
  auto result = interp.EvaluateQuery(parsed.value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->sequence.empty());
  EXPECT_EQ(result->updates.size(), 1u);
  // Database state unchanged before applyUpdates (XQUF deferral).
  EXPECT_EQ(xml::SerializeNode(*docs.GetDocument("d.xml").value()),
            "<r><a/></r>");
  ASSERT_TRUE(ApplyUpdates(&result.value().updates, nullptr).ok());
  EXPECT_EQ(xml::SerializeNode(*docs.GetDocument("d.xml").value()),
            "<r><a/><c/></r>");
}

TEST_F(UpdateTest, InsertedContentIsACopy) {
  MapDocumentProvider docs;
  docs.AddDocument("d.xml", "<r><src>v</src><dst/></r>");
  auto parsed = ParseMainModule(
      "insert nodes doc(\"d.xml\")//src into doc(\"d.xml\")//dst");
  ASSERT_TRUE(parsed.ok());
  Interpreter::Config config;
  config.documents = &docs;
  Interpreter interp(config);
  auto result = interp.EvaluateQuery(parsed.value());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ApplyUpdates(&result.value().updates, nullptr).ok());
  // Source still present; destination holds a copy.
  EXPECT_EQ(xml::SerializeNode(*docs.GetDocument("d.xml").value()),
            "<r><src>v</src><dst><src>v</src></dst></r>");
}

TEST_F(UpdateTest, UpdatingFunctionProducesPul) {
  MapDocumentProvider docs;
  docs.AddDocument("filmDB.xml", kFilmDb);
  MapModuleResolver modules;
  ASSERT_TRUE(modules
                  .AddModule(R"(
    module namespace upd = "updates";
    declare updating function upd:addFilm($name as xs:string, $actor as xs:string)
    { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
      into doc("filmDB.xml")/films };)")
                  .ok());
  auto parsed = ParseMainModule(R"(
      import module namespace u="updates" at "upd.xq";
      u:addFilm("Dr. No", "Sean Connery"))");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Interpreter::Config config;
  config.documents = &docs;
  config.modules = &modules;
  Interpreter interp(config);
  auto result = interp.EvaluateQuery(parsed.value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->updates.size(), 1u);
  ASSERT_TRUE(ApplyUpdates(&result.value().updates, nullptr).ok());
  MapDocumentProvider verify;
  EXPECT_EQ(EvalToString("count(doc(\"filmDB.xml\")//film)", &docs), "4");
}

}  // namespace
}  // namespace xrpc::xquery
