// Tests for the XRPC wrapper (Section 4): the generated Figure-3 query and
// the wrapper engine serving single and bulk requests over the
// interpreter.

#include <gtest/gtest.h>

#include "server/database.h"
#include "server/module_registry.h"
#include "soap/message.h"
#include "wrapper/codegen.h"
#include "wrapper/wrapper_engine.h"
#include "xml/serializer.h"

namespace xrpc::wrapper {
namespace {

using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;

constexpr char kPersonsDoc[] =
    R"(<site><people>)"
    R"(<person id="person0"><name>Kasidit Treweek</name></person>)"
    R"(<person id="person1"><name>Jaak Tempesti</name></person>)"
    R"(<person id="person2"><name>Cong Morvan</name></person>)"
    R"(</people></site>)";

constexpr char kFunctionsModule[] = R"(
  module namespace func = "functions";
  declare function func:getPerson($doc as xs:string, $pid as xs:string)
    as node()?
  { zero-or-one(doc($doc)//person[@id=$pid]) };
  declare function func:echoVoid() { () };
  declare function func:add($a as xs:integer, $b as xs:integer)
    as xs:integer
  { $a + $b };
)";

soap::XrpcRequest GetPersonRequest(std::vector<std::string> pids) {
  soap::XrpcRequest req;
  req.module_ns = "functions";
  req.method = "getPerson";
  req.location = "http://example.org/functions.xq";
  req.arity = 2;
  for (std::string& pid : pids) {
    req.calls.push_back(
        {Sequence{Item(AtomicValue::String("persons.xml"))},
         Sequence{Item(AtomicValue::String(std::move(pid)))}});
  }
  return req;
}

class WrapperTest : public ::testing::Test {
 protected:
  WrapperTest() {
    EXPECT_TRUE(db_.PutDocumentText("persons.xml", kPersonsDoc).ok());
    EXPECT_TRUE(registry_.RegisterModule(kFunctionsModule,
                                         "http://example.org/functions.xq")
                    .ok());
    context_.documents = &docs_;
    context_.modules = &registry_;
  }

  server::Database db_;
  server::LiveDocumentProvider docs_{&db_};
  server::ModuleRegistry registry_;
  server::CallContext context_;
  WrapperEngine engine_;
};

TEST_F(WrapperTest, GeneratedQueryMatchesFigure3Shape) {
  auto req = GetPersonRequest({"person1"});
  auto module = registry_.Resolve("functions", "");
  ASSERT_TRUE(module.ok());
  const xquery::FunctionDef* def =
      module.value()->FindFunction(xml::QName("functions", "getPerson"), 2);
  ASSERT_NE(def, nullptr);
  auto query = GenerateWrapperQuery(req, *def);
  ASSERT_TRUE(query.ok()) << query.status();
  const std::string& q = query.value();
  // The structural elements of Figure 3.
  EXPECT_NE(q.find("import module namespace func = \"functions\""),
            std::string::npos);
  EXPECT_NE(q.find("at \"http://example.org/functions.xq\""),
            std::string::npos);
  EXPECT_NE(q.find("<env:Envelope"), std::string::npos);
  EXPECT_NE(q.find("<xrpc:response"), std::string::npos);
  EXPECT_NE(q.find("for $call in doc(\"" + std::string(kRequestDocName) +
                   "\")//xrpc:call"),
            std::string::npos);
  EXPECT_NE(q.find("let $param1"), std::string::npos);
  EXPECT_NE(q.find("let $param2"), std::string::npos);
  EXPECT_NE(q.find("func:getPerson($param1, $param2)"), std::string::npos);
}

TEST_F(WrapperTest, ServesSingleCall) {
  auto req = GetPersonRequest({"person1"});
  xquery::PendingUpdateList pul;
  auto results = engine_.ExecuteRequest(req, context_, &pul);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 1u);
  ASSERT_EQ(results.value()[0].size(), 1u);
  EXPECT_EQ(xml::SerializeNode(*results.value()[0][0].node()),
            R"(<person id="person1"><name>Jaak Tempesti</name></person>)");
}

TEST_F(WrapperTest, ServesBulkRequestAsOneQuery) {
  auto req = GetPersonRequest({"person2", "person0", "no-such-person"});
  xquery::PendingUpdateList pul;
  auto results = engine_.ExecuteRequest(req, context_, &pul);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ(results.value()[0][0].node()->StringValue(), "Cong Morvan");
  EXPECT_EQ(results.value()[1][0].node()->StringValue(), "Kasidit Treweek");
  EXPECT_TRUE(results.value()[2].empty());
}

TEST_F(WrapperTest, ResultNodesAreFreshFragments) {
  auto req = GetPersonRequest({"person0"});
  xquery::PendingUpdateList pul;
  auto results = engine_.ExecuteRequest(req, context_, &pul);
  ASSERT_TRUE(results.ok());
  const xml::Node* person = results.value()[0][0].node();
  // Call-by-value: no upward path to the stored document or SOAP message.
  EXPECT_EQ(person->parent(), nullptr);
}

TEST_F(WrapperTest, AtomicResultsCarryTypes) {
  soap::XrpcRequest req;
  req.module_ns = "functions";
  req.method = "add";
  req.arity = 2;
  req.calls.push_back({Sequence{Item(AtomicValue::Integer(20))},
                       Sequence{Item(AtomicValue::Integer(22))}});
  xquery::PendingUpdateList pul;
  auto results = engine_.ExecuteRequest(req, context_, &pul);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results.value()[0].size(), 1u);
  EXPECT_EQ(results.value()[0][0].atomic().type(),
            xdm::AtomicType::kInteger);
  EXPECT_EQ(results.value()[0][0].atomic().AsInteger(), 42);
}

TEST_F(WrapperTest, EchoVoidBulk) {
  soap::XrpcRequest req;
  req.module_ns = "functions";
  req.method = "echoVoid";
  req.arity = 0;
  for (int i = 0; i < 10; ++i) req.calls.push_back({});
  xquery::PendingUpdateList pul;
  auto results = engine_.ExecuteRequest(req, context_, &pul);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 10u);
  for (const Sequence& r : results.value()) EXPECT_TRUE(r.empty());
}

TEST_F(WrapperTest, TimingsAreRecorded) {
  auto req = GetPersonRequest({"person0"});
  xquery::PendingUpdateList pul;
  ASSERT_TRUE(engine_.ExecuteRequest(req, context_, &pul).ok());
  const WrapperEngine::Timings& t = engine_.last_timings();
  EXPECT_GT(t.total_us, 0);
  EXPECT_GE(t.total_us, t.exec_us);
  EXPECT_FALSE(engine_.last_generated_query().empty());
}

TEST_F(WrapperTest, UnknownFunctionFails) {
  soap::XrpcRequest req;
  req.module_ns = "functions";
  req.method = "nope";
  req.arity = 0;
  req.calls.push_back({});
  xquery::PendingUpdateList pul;
  EXPECT_FALSE(engine_.ExecuteRequest(req, context_, &pul).ok());
}

}  // namespace
}  // namespace xrpc::wrapper
