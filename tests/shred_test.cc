// Tests for pre/size/level document shredding and the staircase-style
// axis scans.

#include <gtest/gtest.h>

#include "shred/shredded_doc.h"
#include "xml/parser.h"

namespace xrpc::shred {
namespace {

xml::NodePtr Doc(const char* text) {
  auto doc = xml::ParseXml(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return doc.value();
}

TEST(ShredTest, PreSizeLevelEncoding) {
  auto doc = Doc("<a><b><c/></b><d/></a>");
  auto s = ShreddedDoc::Shred(doc);
  // pre 0=document, 1=a, 2=b, 3=c, 4=d
  ASSERT_EQ(s->NumNodes(), 5u);
  EXPECT_EQ(s->Row(0).kind, xml::NodeKind::kDocument);
  EXPECT_EQ(s->Row(0).size, 4);
  EXPECT_EQ(s->Row(1).size, 3);   // a has 3 descendants
  EXPECT_EQ(s->Row(1).level, 1);
  EXPECT_EQ(s->Row(2).size, 1);   // b has 1 descendant
  EXPECT_EQ(s->Row(3).size, 0);
  EXPECT_EQ(s->Row(3).level, 3);
  EXPECT_EQ(s->Row(4).parent, 1); // d's parent is a
}

TEST(ShredTest, NameDictionary) {
  auto doc = Doc("<a><b/><b/><c/></a>");
  auto s = ShreddedDoc::Shred(doc);
  int32_t b_id = s->NameId(xml::QName("b"));
  ASSERT_GE(b_id, 0);
  EXPECT_EQ(s->NameId(xml::QName("nope")), -1);
  EXPECT_EQ(s->DescendantElements(0, b_id).size(), 2u);
}

TEST(ShredTest, DescendantScan) {
  auto doc = Doc("<r><x><y/><x/></x><y/></r>");
  auto s = ShreddedDoc::Shred(doc);
  int32_t x_id = s->NameId(xml::QName("x"));
  int32_t y_id = s->NameId(xml::QName("y"));
  EXPECT_EQ(s->DescendantElements(0, x_id).size(), 2u);
  EXPECT_EQ(s->DescendantElements(0, y_id).size(), 2u);
  EXPECT_EQ(s->DescendantElements(0, -1).size(), 5u);  // all elements
  // Descendants of the first x only.
  int32_t first_x = s->DescendantElements(0, x_id)[0];
  EXPECT_EQ(s->DescendantElements(first_x, y_id).size(), 1u);
}

TEST(ShredTest, ChildScanSkipsGrandchildren) {
  auto doc = Doc("<r><a><b/></a><b/><a/></r>");
  auto s = ShreddedDoc::Shred(doc);
  int32_t r = 1;  // pre of <r>
  int32_t b_id = s->NameId(xml::QName("b"));
  // Only the direct b child, not the nested one.
  auto kids = s->ChildElements(r, b_id);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(s->Row(kids[0]).level, 2);
  EXPECT_EQ(s->ChildElements(r, -1).size(), 3u);
}

TEST(ShredTest, AttributesSideTable) {
  auto doc = Doc(R"(<r><p id="1" name="x"/><p id="2"/></r>)");
  auto s = ShreddedDoc::Shred(doc);
  int32_t p_id = s->NameId(xml::QName("p"));
  auto ps = s->DescendantElements(0, p_id);
  ASSERT_EQ(ps.size(), 2u);
  int32_t id_attr = s->NameId(xml::QName("id"));
  auto attrs = s->Attributes(ps[0], id_attr);
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0]->value(), "1");
  EXPECT_EQ(s->Attributes(ps[0], -1).size(), 2u);
  EXPECT_EQ(s->Attributes(ps[1], -1).size(), 1u);
}

TEST(ShredTest, StringValue) {
  auto doc = Doc("<r>a<b>b1<c>c1</c></b>z</r>");
  auto s = ShreddedDoc::Shred(doc);
  EXPECT_EQ(s->StringValue(0), "ab1c1z");
  int32_t b_id = s->NameId(xml::QName("b"));
  int32_t b = s->DescendantElements(0, b_id)[0];
  EXPECT_EQ(s->StringValue(b), "b1c1");
}

TEST(ShredTest, PreOfMapsDomNodes) {
  auto doc = Doc("<r><a/><b/></r>");
  auto s = ShreddedDoc::Shred(doc);
  const xml::Node* b = doc->children()[0]->children()[1].get();
  int32_t pre = s->PreOf(b);
  ASSERT_GE(pre, 0);
  EXPECT_EQ(s->Row(pre).dom, b);
  xml::NodePtr other = xml::Node::NewElement(xml::QName("q"));
  EXPECT_EQ(s->PreOf(other.get()), -1);
}

TEST(ShredTest, DomBackPointersRoundTrip) {
  auto doc = Doc("<films><film><name>The Rock</name></film></films>");
  auto s = ShreddedDoc::Shred(doc);
  int32_t name_id = s->NameId(xml::QName("name"));
  auto names = s->DescendantElements(0, name_id);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(s->Row(names[0]).dom->StringValue(), "The Rock");
}

TEST(ShredCacheTest, ShredsOncePerTree) {
  auto doc = Doc("<r><a/></r>");
  ShredCache cache;
  auto s1 = cache.GetOrShred(doc);
  auto s2 = cache.GetOrShred(doc);
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_EQ(cache.size(), 1u);
  auto other = Doc("<q/>");
  auto s3 = cache.GetOrShred(other);
  EXPECT_NE(s3.get(), s1.get());
  EXPECT_EQ(cache.size(), 2u);
}

// Property: for a family of documents, descendant counts from the shredded
// scan match the DOM.
class ShredProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ShredProperty, DescendantCountsMatchDom) {
  auto doc = Doc(GetParam());
  auto s = ShreddedDoc::Shred(doc);
  std::function<int(const xml::Node&)> count_elems =
      [&](const xml::Node& n) -> int {
    int c = 0;
    for (const auto& child : n.children()) {
      if (child->kind() == xml::NodeKind::kElement) c++;
      c += count_elems(*child);
    }
    return c;
  };
  EXPECT_EQ(static_cast<int>(s->DescendantElements(0, -1).size()),
            count_elems(*doc));
}

INSTANTIATE_TEST_SUITE_P(
    Docs, ShredProperty,
    ::testing::Values("<a/>", "<a><b/></a>", "<a>text</a>",
                      "<a><b><c><d/></c></b><e/></a>",
                      "<r><x/><x/><x/><x/><x/></r>",
                      "<r><a><a><a/></a></a></r>",
                      "<r>t1<a/>t2<b/>t3</r>"));

}  // namespace
}  // namespace xrpc::shred
