// Tests for the deterministic-update-order extension ([Zhang & Boncz,
// INS-E0607], referenced in Section 2.3): pending update lists carry call
// indices so that merging the PULs of a Bulk RPC — whose calls execute
// out of query order — still applies updates in a reproducible order.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/update.h"

namespace xrpc::xquery {
namespace {

UpdatePrimitive InsertText(xml::Node* target, const std::string& text) {
  UpdatePrimitive p;
  p.kind = UpdatePrimitive::Kind::kInsertLast;
  p.target = xdm::Item::NodeInTree(target, target->RootPtr());
  p.content.push_back(
      xdm::Item::Node(xml::Node::NewText(text)));
  return p;
}

TEST(UpdateOrder, MergePreservesCallIndexOrder) {
  auto doc = xml::ParseXml("<r/>");
  ASSERT_TRUE(doc.ok());
  xml::Node* r = doc.value()->children()[0].get();

  PendingUpdateList a;
  a.Add(InsertText(r, "x"));  // call 0
  a.BeginCall();
  a.Add(InsertText(r, "y"));  // call 1

  PendingUpdateList b;
  b.Add(InsertText(r, "z"));

  a.Merge(std::move(b));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.entries()[0].call_index, 0);
  EXPECT_EQ(a.entries()[1].call_index, 1);
  EXPECT_GT(a.entries()[2].call_index, a.entries()[1].call_index);
}

TEST(UpdateOrder, ApplicationIsDeterministicAcrossMergeOrders) {
  // Two PULs inserting text into the same element: applying the merged
  // list must give the same document regardless of how many times we
  // repeat the experiment (stable phase sort + call tagging).
  for (int round = 0; round < 3; ++round) {
    auto doc = xml::ParseXml("<r/>");
    ASSERT_TRUE(doc.ok());
    xml::Node* r = doc.value()->children()[0].get();

    PendingUpdateList first;
    first.Add(InsertText(r, "A"));
    PendingUpdateList second;
    second.Add(InsertText(r, "B"));
    second.BeginCall();
    second.Add(InsertText(r, "C"));

    PendingUpdateList merged;
    merged.Merge(std::move(first));
    merged.Merge(std::move(second));
    ASSERT_TRUE(ApplyUpdates(&merged, nullptr).ok());
    EXPECT_EQ(xml::SerializeNode(*r), "<r>ABC</r>");
  }
}

TEST(UpdateOrder, PhasesApplyInXqufOrder) {
  // Rename + replace-value run before inserts, inserts before deletes —
  // regardless of the order the primitives were queued in.
  auto doc = xml::ParseXml("<r><a>old</a><b/></r>");
  ASSERT_TRUE(doc.ok());
  xml::Node* r = doc.value()->children()[0].get();
  xml::Node* a = r->children()[0].get();
  xml::Node* b = r->children()[1].get();

  PendingUpdateList pul;
  // Queue a delete FIRST, then an insert, then a rename: application must
  // still rename, then insert, then delete.
  UpdatePrimitive del;
  del.kind = UpdatePrimitive::Kind::kDelete;
  del.target = xdm::Item::NodeInTree(b, doc.value());
  pul.Add(std::move(del));

  pul.Add(InsertText(r, "tail"));

  UpdatePrimitive ren;
  ren.kind = UpdatePrimitive::Kind::kRename;
  ren.target = xdm::Item::NodeInTree(a, doc.value());
  ren.new_name = xml::QName("z");
  pul.Add(std::move(ren));

  ASSERT_TRUE(ApplyUpdates(&pul, nullptr).ok());
  EXPECT_EQ(xml::SerializeNode(*r), "<r><z>old</z>tail</r>");
}

TEST(UpdateOrder, PutWithoutSinkFails) {
  PendingUpdateList pul;
  UpdatePrimitive put;
  put.kind = UpdatePrimitive::Kind::kPut;
  put.put_uri = "out.xml";
  put.content.push_back(xdm::Item::Node(xml::Node::NewDocument()));
  pul.Add(std::move(put));
  EXPECT_FALSE(ApplyUpdates(&pul, nullptr).ok());
}

TEST(UpdateOrder, ReplaceValueOfElementReplacesAllChildren) {
  auto doc = xml::ParseXml("<r><a>x<b/>y</a></r>");
  ASSERT_TRUE(doc.ok());
  xml::Node* a = doc.value()->children()[0]->children()[0].get();
  PendingUpdateList pul;
  UpdatePrimitive rv;
  rv.kind = UpdatePrimitive::Kind::kReplaceValue;
  rv.target = xdm::Item::NodeInTree(a, doc.value());
  rv.new_value = "fresh";
  pul.Add(std::move(rv));
  ASSERT_TRUE(ApplyUpdates(&pul, nullptr).ok());
  EXPECT_EQ(xml::SerializeNode(*doc.value()), "<r><a>fresh</a></r>");
}

}  // namespace
}  // namespace xrpc::xquery
