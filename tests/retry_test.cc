// Tests for the resilient-transport layer: RetryingTransport backoff and
// at-most-once semantics, SimulatedNetwork fault-injection profiles, and
// the RpcMetrics observability registry (the ISSUE-1 tentpole).

#include <gtest/gtest.h>

#include <vector>

#include "net/retrying_transport.h"
#include "net/rpc_metrics.h"
#include "net/simulated_network.h"
#include "net/uri.h"
#include "server/rpc_client.h"
#include "server/xrpc_service.h"
#include "soap/message.h"
#include "xmark/xmark.h"

namespace xrpc {
namespace {

using net::FaultProfile;
using net::LatencyHistogram;
using net::PostResult;
using net::RetryingTransport;
using net::RetryPolicy;
using net::RpcMetrics;
using net::SimulatedNetwork;
using net::Transport;

/// Scripted transport: fails the first `failures_remaining` posts with a
/// NetworkError (or a custom status), then succeeds; records every attempt.
class FlakyTransport : public Transport {
 public:
  StatusOr<PostResult> Post(const std::string& dest_uri,
                            const std::string& body) override {
    attempts.push_back(body);
    (void)dest_uri;
    if (failures_remaining > 0) {
      --failures_remaining;
      return failure;
    }
    PostResult result;
    result.body = "ok";
    result.network_micros = reply_latency_us;
    return result;
  }

  int failures_remaining = 0;
  Status failure = Status::NetworkError("flaky");
  int64_t reply_latency_us = 100;
  std::vector<std::string> attempts;
};

TEST(RetryingTransport, ReadOnlySucceedsAfterTransientFailures) {
  FlakyTransport inner;
  inner.failures_remaining = 2;
  RpcMetrics metrics;
  std::vector<int64_t> slept;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 1000;
  policy.jitter_fraction = 0;  // exact backoffs for the assertion below
  RetryingTransport transport(
      &inner, policy, &metrics,
      [&slept](int64_t us) { slept.push_back(us); });
  auto result = transport.Post("xrpc://p", "read-only body");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->body, "ok");
  EXPECT_EQ(inner.attempts.size(), 3u);
  // Exponential backoff: 1000us then 2000us, both slept and accounted on
  // the returned wire time (100us reply + 3000us of waiting).
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], 1000);
  EXPECT_EQ(slept[1], 2000);
  EXPECT_EQ(result->network_micros, 100 + 3000);
  EXPECT_EQ(metrics.retries(), 2);
  EXPECT_EQ(metrics.requests(), 3);  // 2 failed attempts + 1 success
  EXPECT_EQ(metrics.failures(), 2);
  EXPECT_EQ(metrics.backoff_micros(), 3000);
}

TEST(RetryingTransport, GivesUpAfterMaxAttempts) {
  FlakyTransport inner;
  inner.failures_remaining = 10;
  RpcMetrics metrics;
  RetryingTransport transport(&inner, RetryPolicy{.max_attempts = 3},
                              &metrics);
  auto result = transport.Post("xrpc://p", "body");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
  EXPECT_EQ(inner.attempts.size(), 3u);
  EXPECT_EQ(metrics.retries(), 2);
  EXPECT_EQ(metrics.failures(), 3);
}

TEST(RetryingTransport, UpdatingEnvelopeIsNeverRetransmitted) {
  FlakyTransport inner;
  inner.failures_remaining = 1;
  RpcMetrics metrics;
  RetryingTransport transport(&inner, RetryPolicy{.max_attempts = 5},
                              &metrics);
  // A real updating envelope, as the SOAP codec emits it.
  soap::XrpcRequest request;
  request.module_ns = "m";
  request.method = "f";
  request.updating = true;
  std::string body = soap::SerializeRequest(request);
  ASSERT_TRUE(RetryingTransport::IsUpdatingEnvelope(body));
  auto result = transport.Post("xrpc://p", body);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(inner.attempts.size(), 1u) << "updating call was retransmitted";
  EXPECT_EQ(metrics.retries(), 0);
}

TEST(RetryingTransport, NonTransientErrorsAreNotRetried) {
  FlakyTransport inner;
  inner.failures_remaining = 1;
  inner.failure = Status::SoapFault("application says no");
  RetryingTransport transport(&inner, RetryPolicy{.max_attempts = 5});
  auto result = transport.Post("xrpc://p", "body");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSoapFault);
  EXPECT_EQ(inner.attempts.size(), 1u);
}

TEST(RetryingTransport, JitterIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.initial_backoff_us = 10000;
  policy.jitter_fraction = 0.5;
  FlakyTransport inner_a, inner_b, inner_c;
  RetryingTransport a(&inner_a, policy, nullptr, nullptr, /*jitter_seed=*/7);
  RetryingTransport b(&inner_b, policy, nullptr, nullptr, /*jitter_seed=*/7);
  RetryingTransport c(&inner_c, policy, nullptr, nullptr, /*jitter_seed=*/8);
  std::vector<int64_t> seq_a, seq_b, seq_c;
  for (int retry = 1; retry <= 4; ++retry) {
    seq_a.push_back(a.BackoffMicros(retry));
    seq_b.push_back(b.BackoffMicros(retry));
    seq_c.push_back(c.BackoffMicros(retry));
  }
  EXPECT_EQ(seq_a, seq_b) << "same seed must give the same schedule";
  EXPECT_NE(seq_a, seq_c) << "different seed should perturb the schedule";
  for (size_t i = 0; i < seq_a.size(); ++i) {
    int64_t nominal = 10000 << i;  // 10ms * 2^retry, within +/-50%
    EXPECT_GE(seq_a[i], nominal / 2);
    EXPECT_LE(seq_a[i], nominal + nominal / 2);
  }
}

TEST(RetryingTransport, SlowReplyBecomesTimeoutAndIsRetried) {
  FlakyTransport inner;
  inner.failures_remaining = 0;
  inner.reply_latency_us = 50000;  // above the deadline
  RpcMetrics metrics;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.request_timeout_us = 10000;
  RetryingTransport transport(&inner, policy, &metrics);
  auto result = transport.Post("xrpc://p", "body");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("timed out"), std::string::npos);
  EXPECT_EQ(inner.attempts.size(), 2u);  // timeout is transient: retried
  EXPECT_EQ(metrics.timeouts(), 2);
  EXPECT_EQ(metrics.retries(), 1);
}

class EchoEndpoint : public net::SoapEndpoint {
 public:
  StatusOr<std::string> Handle(const std::string& path,
                               const std::string& body) override {
    (void)path;
    ++requests;
    return "echo:" + body;
  }
  int requests = 0;
};

TEST(FaultInjection, QueuedFailuresThenRetrySucceeds) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
  net.FailNextPost(Status::NetworkError("drop 1"));
  net.FailNextPost(Status::NetworkError("drop 2"));
  RpcMetrics metrics;
  RetryingTransport transport(&net, RetryPolicy{.max_attempts = 3}, &metrics);
  auto result = transport.Post("xrpc://p", "hello");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->body, "echo:hello");
  EXPECT_EQ(peer.requests, 1);  // the two failures never reached the peer
  EXPECT_EQ(metrics.retries(), 2);
  EXPECT_EQ(net.faults_injected(), 2);
}

TEST(FaultInjection, FailEveryNth) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
  FaultProfile profile;
  profile.fail_every_nth = 3;
  net.set_fault_profile(profile);
  int failures = 0;
  for (int i = 1; i <= 9; ++i) {
    if (!net.Post("xrpc://p", "x").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);  // posts 3, 6, 9
  EXPECT_EQ(peer.requests, 6);
  EXPECT_EQ(net.faults_injected(), 3);
}

TEST(FaultInjection, DropProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    SimulatedNetwork net;
    EchoEndpoint peer;
    net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
    FaultProfile profile;
    profile.drop_probability = 0.5;
    profile.seed = seed;
    net.set_fault_profile(profile);
    std::vector<bool> outcomes;
    for (int i = 0; i < 32; ++i) outcomes.push_back(net.Post("xrpc://p", "x").ok());
    return outcomes;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
  // Extremes behave as expected.
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
  FaultProfile always;
  always.drop_probability = 1.0;
  net.set_fault_profile(always);
  EXPECT_FALSE(net.Post("xrpc://p", "x").ok());
  EXPECT_EQ(peer.requests, 0) << "dropped request must not be delivered";
}

TEST(FaultInjection, TruncatedResponseDeliversRequestButLosesReply) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
  FaultProfile profile;
  profile.truncate_every_nth = 2;
  net.set_fault_profile(profile);
  ASSERT_TRUE(net.Post("xrpc://p", "a").ok());
  auto truncated = net.Post("xrpc://p", "b");
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("truncated"),
            std::string::npos);
  // Crucial at-most-once hazard: the handler DID run for the lost reply.
  EXPECT_EQ(peer.requests, 2);
}

TEST(FaultInjection, LatencySpikeRaisesModeledWireTime) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
  auto baseline = net.Post("xrpc://p", "x");
  ASSERT_TRUE(baseline.ok());
  FaultProfile profile;
  profile.latency_spike_every_nth = 1;
  profile.latency_spike_us = 250000;
  net.set_fault_profile(profile);
  auto spiked = net.Post("xrpc://p", "x");
  ASSERT_TRUE(spiked.ok());
  EXPECT_EQ(spiked->network_micros,
            baseline->network_micros + 250000);
}

TEST(FaultInjection, LatencySpikePlusTimeoutFailsCrisplyForUpdatingCalls) {
  SimulatedNetwork net;
  EchoEndpoint peer;
  net.RegisterPeer(net::ParseXrpcUri("xrpc://p").value(), &peer);
  FaultProfile profile;
  profile.latency_spike_every_nth = 1;
  profile.latency_spike_us = 1'000'000;
  net.set_fault_profile(profile);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.request_timeout_us = 100000;
  RpcMetrics metrics;
  RetryingTransport transport(&net, policy, &metrics);

  soap::XrpcRequest request;
  request.module_ns = "m";
  request.method = "f";
  request.updating = true;
  auto result = transport.Post("xrpc://p", soap::SerializeRequest(request));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNetworkError);
  EXPECT_EQ(peer.requests, 1) << "updating call must not be retransmitted";
  EXPECT_EQ(metrics.timeouts(), 1);
  EXPECT_EQ(metrics.retries(), 0);
}

TEST(LatencyHistogramTest, BucketsAndSummary) {
  LatencyHistogram h;
  EXPECT_EQ(h.Summary(), "n=0");
  for (int64_t us : {0, 1, 3, 100, 1000, 100000}) h.Record(us);
  EXPECT_EQ(h.samples(), 6);
  EXPECT_EQ(h.min_micros(), 0);
  EXPECT_EQ(h.max_micros(), 100000);
  EXPECT_EQ(h.total_micros(), 101104);
  // p50 upper bound is a power of two covering the median sample.
  EXPECT_LE(h.PercentileUpperBound(0.5), 128);
  EXPECT_GE(h.PercentileUpperBound(0.99), 100000 / 2);
  EXPECT_NE(h.Summary().find("n=6"), std::string::npos);
}

TEST(RpcMetricsTest, PerPeerBreakdownAndReport) {
  RpcMetrics metrics;
  metrics.RecordClientRequest("xrpc://a", 100, 400, 1500, true);
  metrics.RecordClientRequest("xrpc://a", 100, 0, 0, false);
  metrics.RecordRetry("xrpc://a");
  metrics.RecordClientRequest("xrpc://b", 50, 60, 200, true);
  metrics.RecordServerRequest("xrpc://b", 7, true);
  metrics.RecordInjectedFault();
  metrics.RecordBackoff(1234);

  EXPECT_EQ(metrics.requests(), 3);
  EXPECT_EQ(metrics.failures(), 1);
  EXPECT_EQ(metrics.retries(), 1);
  EXPECT_EQ(metrics.bytes_sent(), 250);
  EXPECT_EQ(metrics.bytes_received(), 460);
  EXPECT_EQ(metrics.injected_faults(), 1);
  EXPECT_EQ(metrics.server_requests(), 1);
  EXPECT_EQ(metrics.server_calls(), 7);
  EXPECT_EQ(metrics.backoff_micros(), 1234);
  EXPECT_EQ(metrics.PeerStats("xrpc://a").requests, 2);
  EXPECT_EQ(metrics.PeerStats("xrpc://a").retries, 1);
  EXPECT_EQ(metrics.PeerStats("xrpc://nope").requests, 0);

  std::string report = metrics.Report();
  EXPECT_NE(report.find("requests=3"), std::string::npos);
  EXPECT_NE(report.find("retries=1"), std::string::npos);
  EXPECT_NE(report.find("peer xrpc://a"), std::string::npos);
  EXPECT_NE(report.find("server xrpc://b"), std::string::npos);
  EXPECT_NE(report.find("latency histogram"), std::string::npos);

  metrics.Reset();
  EXPECT_EQ(metrics.requests(), 0);
  EXPECT_EQ(metrics.injected_faults(), 0);
}

// End-to-end acceptance scenario: a read-only Bulk RPC through RpcClient
// survives two injected transient failures with backoff, while an updating
// call fails crisply without retransmission; RpcMetrics captures it all.
class BulkRetryTest : public ::testing::Test {
 protected:
  BulkRetryTest() {
    EXPECT_TRUE(
        db_.PutDocumentText("filmDB.xml", xmark::GenerateFilmDb()).ok());
    EXPECT_TRUE(registry_.RegisterModule(xmark::FilmModuleSource()).ok());
    service_ = std::make_unique<server::XrpcService>(
        server::XrpcService::Options{"xrpc://y"}, &db_, &registry_, &engine_,
        nullptr);
    service_->set_metrics(&metrics_);
    network_.RegisterPeer(net::ParseXrpcUri("xrpc://y").value(),
                          service_.get());
    network_.set_metrics(&metrics_);
  }

  soap::XrpcRequest FilmRequest(bool updating) {
    soap::XrpcRequest req;
    req.module_ns = "films";
    req.method = updating ? "addFilm" : "filmsByActor";
    req.arity = updating ? 2 : 1;
    req.updating = updating;
    if (updating) {
      req.calls.push_back(
          {xdm::Sequence{xdm::Item(xdm::AtomicValue::String("Film"))},
           xdm::Sequence{xdm::Item(xdm::AtomicValue::String("Actor"))}});
    } else {
      req.calls.push_back({xdm::Sequence{
          xdm::Item(xdm::AtomicValue::String("Sean Connery"))}});
    }
    return req;
  }

  server::Database db_;
  server::ModuleRegistry registry_;
  server::InterpreterEngine engine_;
  net::SimulatedNetwork network_;
  net::RpcMetrics metrics_;
  std::unique_ptr<server::XrpcService> service_;
};

TEST_F(BulkRetryTest, ReadOnlyBulkRpcSurvivesTwoInjectedFailures) {
  network_.FailNextPost(Status::NetworkError("transient 1"));
  network_.FailNextPost(Status::NetworkError("transient 2"));
  RetryingTransport transport(&network_, RetryPolicy{.max_attempts = 3},
                              &metrics_);
  server::RpcClient client(&transport, {});
  auto response = client.ExecuteBulk("xrpc://y", FilmRequest(false));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->results.size(), 1u);
  EXPECT_EQ(response->results[0].size(), 2u);
  EXPECT_EQ(metrics_.retries(), 2);
  EXPECT_EQ(metrics_.injected_faults(), 2);
  EXPECT_GT(metrics_.backoff_micros(), 0);
  EXPECT_GT(metrics_.latency().samples(), 0);
  EXPECT_EQ(metrics_.server_requests(), 1);
}

TEST_F(BulkRetryTest, UpdatingBulkRpcFailsCrisplyWithoutRetransmission) {
  network_.FailNextPost(Status::NetworkError("transient 1"));
  RetryingTransport transport(&network_, RetryPolicy{.max_attempts = 3},
                              &metrics_);
  server::RpcClient client(&transport, {});
  auto response = client.ExecuteBulk("xrpc://y", FilmRequest(true));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNetworkError);
  EXPECT_EQ(metrics_.retries(), 0);
  EXPECT_EQ(metrics_.server_requests(), 0)
      << "updating envelope reached the peer again after a failure";
  EXPECT_EQ(client.requests_sent(), 0);
}

}  // namespace
}  // namespace xrpc
