// Regenerates Figure 1: "Relational Processing of Bulk RPC (Multiple
// Destinations Example)" — the intermediate map/req/msg/res/result tables
// of query Q3's loop-lifted `execute at`, captured live from the engine.
// Also prints the Figure 2 translation rule context (dst and parameter
// tables) that drives it.

#include <cstdio>

#include "bench/bench_util.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::ExecuteOptions;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;

constexpr char kFilmDbY[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "</films>";

constexpr char kFilmDbZ[] =
    "<films>"
    "<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>"
    "</films>";

}  // namespace

int main() {
  PeerNetwork net;
  net.AddPeer("p0.example.org", EngineKind::kRelational);
  Peer* y = net.AddPeer("y.example.org", EngineKind::kRelational);
  Peer* z = net.AddPeer("z.example.org", EngineKind::kRelational);
  (void)y->AddDocument("filmDB.xml", kFilmDbY);
  (void)z->AddDocument("filmDB.xml", kFilmDbZ);
  (void)y->RegisterModule(xrpc::xmark::FilmModuleSource(), "film.xq");
  (void)z->RegisterModule(xrpc::xmark::FilmModuleSource(), "film.xq");

  // Query Q3 of the paper (two actors x two destinations).
  const char* q3 = R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    for $actor in ("Julie Andrews", "Sean Connery")
    for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
    return execute at {$dst} {f:filmsByActor($actor)})";

  ExecuteOptions opts;
  opts.trace_bulk_rpc = true;
  auto report = net.Execute("p0.example.org", q3, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_fig1: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (report->traces.empty()) {
    std::fprintf(stderr, "bench_fig1: no Bulk RPC trace captured\n");
    return 1;
  }

  std::printf(
      "Figure 1 — relational processing of Bulk RPC for query Q3\n"
      "(loop-lifted `execute at` with two destination peers).\n\n");

  const auto& trace = report->traces[0];
  std::printf("dst (loop-lifted destination variable):\n%s\n",
              trace.dst.ToString().c_str());
  for (const auto& peer : trace.peers) {
    std::printf("---- peer %s ----\n", peer.peer.c_str());
    std::printf("map (iter <-> iterp, the rho renumbering):\n%s\n",
                peer.map.ToString().c_str());
    for (size_t p = 0; p < peer.req.size(); ++p) {
      std::printf("req parameter %zu (iterp|pos|item):\n%s\n", p + 1,
                  peer.req[p].ToString().c_str());
    }
    std::printf("msg (Bulk RPC response, iterp|pos|item):\n%s\n",
                peer.msg.ToString().c_str());
    std::printf("res (mapped back to original iters):\n%s\n",
                peer.res.ToString().c_str());
  }
  std::printf("result (merge-union of all res tables, query order):\n%s\n",
              trace.result.ToString().c_str());
  std::printf("final value: %s\n",
              xrpc::xdm::SequenceToString(report->result).c_str());
  return 0;
}
