// Transport-resilience benchmark: runs a Bulk RPC workload over the
// simulated network under increasingly hostile fault-injection profiles
// (drops, forced failures, latency spikes) with retries enabled, and dumps
// the RpcMetrics registry — retry/fault counters and the latency
// histogram. This is the observability loop the paper's Section 4/6
// dependable-substrate assumption needs in practice: you can only trust
// Bulk RPC latency amortization numbers if you can see what the wire did.

#include <cstdio>

#include "bench/bench_util.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;
using xrpc::net::FaultProfile;
using xrpc::net::RetryPolicy;

struct Scenario {
  const char* name;
  FaultProfile faults;
};

struct Outcome {
  int ok = 0;
  int failed = 0;
  int64_t requests = 0;
  int64_t retries = 0;
  int64_t faults = 0;
  int64_t backoff_us = 0;
  std::string last_report;
};

Outcome Run(const Scenario& scenario, int queries) {
  PeerNetwork net;
  net.AddPeer("p0");
  Peer* y = net.AddPeer("y.example.org");
  (void)y->AddDocument("filmDB.xml", xrpc::xmark::GenerateFilmDb());
  (void)y->RegisterModule(xrpc::xmark::FilmModuleSource(), "film.xq");

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_us = 500;
  policy.request_timeout_us = 400000;  // latency spikes become timeouts
  net.set_retry_policy(policy);
  net.network().set_fault_profile(scenario.faults);

  Outcome out;
  for (int i = 0; i < queries; ++i) {
    auto report = net.Execute("p0", R"(
        import module namespace f="films" at "film.xq";
        for $a in ("Sean Connery", "Julie Andrews", "Gerard Depardieu")
        return execute at {"xrpc://y.example.org"} {f:filmsByActor($a)})");
    if (report.ok()) {
      ++out.ok;
    } else {
      ++out.failed;
    }
  }
  out.requests = net.metrics().requests();
  out.retries = net.metrics().retries();
  out.faults = net.metrics().injected_faults();
  out.backoff_us = net.metrics().backoff_micros();
  out.last_report = net.metrics().Report();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Transport resilience — Bulk RPC workload under injected faults,\n"
      "4 attempts with exponential backoff, 400ms modeled deadline.\n"
      "Read-only queries retry; metrics show what the wire did.\n\n");

  const int kQueries = 40;
  Scenario scenarios[] = {
      {"clean", {}},
      {"drop 10%", {.drop_probability = 0.10, .seed = 11}},
      {"drop 30%", {.drop_probability = 0.30, .seed = 11}},
      {"fail every 5th", {.fail_every_nth = 5}},
      {"spike every 7th (+0.5s)",
       {.latency_spike_every_nth = 7, .latency_spike_us = 500000}},
  };

  xrpc::bench::TablePrinter table({"scenario", "queries ok", "failed",
                                   "wire requests", "retries", "faults",
                                   "backoff ms"});
  std::string final_report;
  for (const Scenario& s : scenarios) {
    Outcome o = Run(s, kQueries);
    table.AddRow({s.name, std::to_string(o.ok), std::to_string(o.failed),
                  std::to_string(o.requests), std::to_string(o.retries),
                  std::to_string(o.faults), xrpc::bench::Ms(o.backoff_us)});
    final_report = o.last_report;
  }
  table.Print();

  std::printf("\nMetrics registry dump (last scenario):\n%s",
              final_report.c_str());
  std::printf(
      "\nShape checks: clean run has zero retries/faults; retries track\n"
      "injected fault rates; most faulted queries still succeed.\n");
  return 0;
}
