// Shared BENCH_*.json writer so every benchmark emits the same uniformly
// parseable schema:
//
//   {
//     "bench": "<name>",
//     "git_rev": "<short rev or 'unknown'>",
//     "config": { ...flat key/value pairs... },
//     "series": [ { ...one row per measured point... }, ... ]
//   }
//
// The writer preserves insertion order (so identical runs render
// byte-identically), renders integers exactly, and formats doubles with
// a fixed "%.6g" so a given value always serializes the same way.
// Header-only on purpose: bench binaries are one-file programs.

#ifndef XRPC_BENCH_BENCH_JSON_H_
#define XRPC_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace xrpc {
namespace bench {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One JSON object with insertion-ordered fields. Values are rendered at
/// Set() time so heterogeneous types need no variant machinery.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, "\"" + JsonEscape(v) + "\"");
    return *this;
  }
  JsonObject& Set(const std::string& key, const char* v) {
    return Set(key, std::string(v));
  }
  JsonObject& Set(const std::string& key, int64_t v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonObject& Set(const std::string& key, int v) {
    return Set(key, static_cast<int64_t>(v));
  }
  JsonObject& Set(const std::string& key, size_t v) {
    return Set(key, static_cast<int64_t>(v));
  }
  JsonObject& Set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& Set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
    return *this;
  }

  /// Renders `{ "k": v, ... }`; `indent` is the column of the opening brace.
  std::string Render(int indent) const {
    std::string pad(static_cast<size_t>(indent), ' ');
    if (fields_.empty()) return "{}";
    std::string out = "{\n";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out += pad + "  \"" + JsonEscape(fields_[i].first) +
             "\": " + fields_[i].second;
      out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += pad + "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Best-effort short git revision of the working tree; "unknown" when git
/// is unavailable (e.g. running from an exported tarball).
inline std::string GitRev() {
  std::string rev;
#if !defined(_WIN32)
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p != nullptr) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) rev = buf;
    ::pclose(p);
  }
#endif
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

/// Accumulates one benchmark's config and series rows, then writes the
/// canonical file. Typical use:
///
///   BenchJson out("workload");
///   out.config().Set("seed", 42).Set("fleet", 8);
///   out.AddRow().Set("offered_qps", 100.0).Set("p99_us", 4200);
///   out.WriteFile("BENCH_workload.json");
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_(std::move(bench_name)), git_rev_(GitRev()) {}

  /// Overrides the auto-detected revision (tests use this to pin output).
  void set_git_rev(std::string rev) { git_rev_ = std::move(rev); }

  JsonObject& config() { return config_; }
  JsonObject& AddRow() {
    series_.emplace_back();
    return series_.back();
  }

  std::string Render() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + JsonEscape(bench_) + "\",\n";
    out += "  \"git_rev\": \"" + JsonEscape(git_rev_) + "\",\n";
    out += "  \"config\": " + config_.Render(2) + ",\n";
    out += "  \"series\": [";
    for (size_t i = 0; i < series_.size(); ++i) {
      out += i == 0 ? "\n    " : ",\n    ";
      out += series_[i].Render(4);
    }
    out += series_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::string text = Render();
    size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
    int rc = std::fclose(f);
    return wrote == text.size() && rc == 0;
  }

 private:
  std::string bench_;
  std::string git_rev_;
  JsonObject config_;
  std::vector<JsonObject> series_;
};

}  // namespace bench
}  // namespace xrpc

#endif  // XRPC_BENCH_BENCH_JSON_H_
