// Reproduces the throughput experiment of Section 3.3: request- and
// response-heavy payloads scaled up until throughput saturates. The paper
// observed ~8 MB/s for large requests and ~14 MB/s for large responses on
// a 1 Gb/s LAN — i.e. SOAP XRPC is CPU-bound (shredding/serialization),
// not network-bound, on a fast LAN. The reproduced claims are (i)
// throughput is far below the 125 MB/s wire speed (CPU-bound) and (ii)
// responses are cheaper than requests (serialization beats shredding).
//
// A second section measures connection-setup amortization over real
// loopback sockets with the keep-alive pool. Both the client pool's idle
// timeout and the server's keep-alive idle timeout are raised far above
// the run length, so neither side can expire a connection mid-run: the
// accepted-connection and pool-hit counts are exact functions of the
// request count (1 dial + N-1 hits with keep-alive, N dials without),
// not of host scheduling.
//
// Results land in BENCH_throughput.json.

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "net/http.h"
#include "soap/message.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;

// Builds a <payload> document of roughly `bytes` bytes.
std::string MakePayloadDoc(size_t bytes) {
  std::string out = "<payload>";
  int i = 0;
  while (out.size() + 16 < bytes) {
    out += "<row>value-" + std::to_string(i++) + "</row>";
  }
  out += "</payload>";
  return out;
}

struct Throughput {
  double request_mb_s = 0;   // large request, tiny response
  double response_mb_s = 0;  // tiny request, large response
};

Throughput Measure(size_t payload_bytes) {
  PeerNetwork net;
  Peer* p0 = net.AddPeer("p0.example.org", EngineKind::kRelational);
  Peer* y = net.AddPeer("y.example.org", EngineKind::kRelational);
  (void)y->RegisterModule(xrpc::xmark::TestModuleSource(), "test.xq");
  (void)p0->AddDocument("payload.xml", MakePayloadDoc(payload_bytes));
  (void)y->AddDocument("payload.xml", MakePayloadDoc(payload_bytes));

  Throughput t;
  {
    // Request-heavy: ship the payload as a parameter; count() keeps the
    // response tiny.
    auto report = net.Execute(
        "p0.example.org",
        "import module namespace t=\"test\" at \"test.xq\";\n"
        "count(execute at {\"xrpc://y.example.org\"} "
        "{t:echo(doc(\"payload.xml\")/*)})");
    if (report.ok()) {
      double mb = static_cast<double>(payload_bytes) / 1e6;
      double sec =
          static_cast<double>(xrpc::bench::TotalMicros(report.value())) / 1e6;
      t.request_mb_s = mb / sec;
    }
  }
  {
    // Response-heavy: fetch the remote payload (tiny request).
    auto report = net.Execute(
        "p0.example.org",
        "import module namespace t=\"test\" at \"test.xq\";\n"
        "count(execute at {\"xrpc://y.example.org\"} "
        "{t:echoDoc(\"payload.xml\")})");
    if (report.ok()) {
      double mb = static_cast<double>(payload_bytes) / 1e6;
      double sec =
          static_cast<double>(xrpc::bench::TotalMicros(report.value())) / 1e6;
      t.response_mb_s = mb / sec;
    }
  }
  return t;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

// Minimal SOAP peer: answers every call in the request with one integer.
class OnePeer : public xrpc::net::SoapEndpoint {
 public:
  xrpc::StatusOr<std::string> Handle(const std::string& /*path*/,
                                     const std::string& body) override {
    XRPC_ASSIGN_OR_RETURN(xrpc::soap::XrpcRequest req,
                          xrpc::soap::ParseRequest(body));
    xrpc::soap::XrpcResponse resp;
    resp.module_ns = req.module_ns;
    resp.method = req.method;
    for (size_t c = 0; c < req.calls.size(); ++c) {
      resp.results.push_back(xrpc::xdm::Sequence{
          xrpc::xdm::Item(xrpc::xdm::AtomicValue::Integer(42))});
    }
    return xrpc::soap::SerializeResponse(resp);
  }
};

struct ConnStats {
  int ok = 0;
  int failed = 0;
  int64_t connections = 0;
  int64_t pool_hits = 0;
  bool deterministic = false;  ///< counts match the exact expectation
};

// Real-socket keep-alive run with all idle expiry pushed past the run
// length; the connection count is then exact, not timing-dependent.
ConnStats MeasureConnections(bool keep_alive, int requests) {
  ConnStats stats;
  OnePeer peer;
  xrpc::net::HttpServer::Options server_opts;
  server_opts.keep_alive_idle_millis = 600'000;
  xrpc::net::HttpServer server(&peer, server_opts);
  auto port = server.Start(0);
  if (!port.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 port.status().ToString().c_str());
    return stats;
  }
  xrpc::net::HttpConnectionPool::Options pool_opts;
  pool_opts.idle_timeout_millis = 600'000;
  xrpc::net::HttpTransport transport(pool_opts);
  transport.set_keep_alive(keep_alive);

  xrpc::soap::XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 1;
  req.calls.push_back({xrpc::xdm::Sequence{
      xrpc::xdm::Item(xrpc::xdm::AtomicValue::String("arg"))}});
  const std::string uri =
      "xrpc://127.0.0.1:" + std::to_string(port.value());
  const std::string body = xrpc::soap::SerializeRequest(req);
  for (int i = 0; i < requests; ++i) {
    if (transport.Post(uri, body).ok()) {
      ++stats.ok;
    } else {
      ++stats.failed;
    }
  }
  stats.connections = server.connections_accepted();
  stats.pool_hits = transport.pool().hits();
  const int64_t expect_conns = keep_alive ? 1 : requests;
  const int64_t expect_hits = keep_alive ? requests - 1 : 0;
  stats.deterministic = stats.failed == 0 &&
                        stats.connections == expect_conns &&
                        stats.pool_hits == expect_hits;
  server.Stop();
  return stats;
}

}  // namespace

int main() {
  xrpc::bench::BenchJson json("throughput");
  json.config()
      .Set("wire_mb_s", 125)
      .Set("paper_request_mb_s", 8)
      .Set("paper_response_mb_s", 14);

  std::printf(
      "Throughput (Section 3.3) — SOAP XRPC data throughput on the\n"
      "simulated 1 Gb/s LAN (125 MB/s wire speed). Paper: ~8 MB/s for\n"
      "large requests, ~14 MB/s for large responses: CPU-bound, not\n"
      "network-bound.\n\n");

  xrpc::bench::TablePrinter table(
      {"payload", "request MB/s", "response MB/s"});
  for (size_t kb : {64, 256, 1024, 4096}) {
    Throughput t = Measure(kb * 1024);
    table.AddRow({std::to_string(kb) + " KiB", Fmt(t.request_mb_s),
                  Fmt(t.response_mb_s)});
    json.AddRow()
        .Set("section", "payload_sweep")
        .Set("payload_kib", kb)
        .Set("request_mb_s", t.request_mb_s)
        .Set("response_mb_s", t.response_mb_s);
  }
  table.Print();
  std::printf(
      "\nShape checks: throughput well below wire speed (CPU-bound on\n"
      "parse/shred/serialize); responses faster than requests.\n");

  const int kRequests = 200;
  std::printf(
      "\nConnection amortization (real loopback sockets, %d POSTs) with\n"
      "idle expiry disabled for the run: counts are exact (keep-alive =\n"
      "1 connection + %d pool hits; close-per-request = %d connections).\n\n",
      kRequests, kRequests - 1, kRequests);
  xrpc::bench::TablePrinter conn_table(
      {"transport", "ok", "connections", "pool hits", "deterministic"});
  bool conn_ok = true;
  for (bool keep_alive : {false, true}) {
    ConnStats stats = MeasureConnections(keep_alive, kRequests);
    conn_ok = conn_ok && stats.deterministic;
    conn_table.AddRow({keep_alive ? "keep-alive" : "close-per-request",
                       std::to_string(stats.ok),
                       std::to_string(stats.connections),
                       std::to_string(stats.pool_hits),
                       stats.deterministic ? "yes" : "NO"});
    json.AddRow()
        .Set("section", "connections")
        .Set("keep_alive", keep_alive)
        .Set("requests", kRequests)
        .Set("ok", stats.ok)
        .Set("failed", stats.failed)
        .Set("connections", stats.connections)
        .Set("pool_hits", stats.pool_hits)
        .Set("deterministic", stats.deterministic);
  }
  conn_table.Print();
  std::printf("connection counts deterministic: %s\n",
              conn_ok ? "OK" : "FAILED");

  if (!json.WriteFile("BENCH_throughput.json")) {
    std::fprintf(stderr, "bench_throughput: cannot write json output\n");
    return 1;
  }
  std::printf("wrote BENCH_throughput.json\n");
  return conn_ok ? 0 : 1;
}
