// Reproduces the throughput experiment of Section 3.3: request- and
// response-heavy payloads scaled up until throughput saturates. The paper
// observed ~8 MB/s for large requests and ~14 MB/s for large responses on
// a 1 Gb/s LAN — i.e. SOAP XRPC is CPU-bound (shredding/serialization),
// not network-bound, on a fast LAN. The reproduced claims are (i)
// throughput is far below the 125 MB/s wire speed (CPU-bound) and (ii)
// responses are cheaper than requests (serialization beats shredding).

#include <cstdio>

#include "bench/bench_util.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;

// Builds a <payload> document of roughly `bytes` bytes.
std::string MakePayloadDoc(size_t bytes) {
  std::string out = "<payload>";
  int i = 0;
  while (out.size() + 16 < bytes) {
    out += "<row>value-" + std::to_string(i++) + "</row>";
  }
  out += "</payload>";
  return out;
}

struct Throughput {
  double request_mb_s = 0;   // large request, tiny response
  double response_mb_s = 0;  // tiny request, large response
};

Throughput Measure(size_t payload_bytes) {
  PeerNetwork net;
  Peer* p0 = net.AddPeer("p0.example.org", EngineKind::kRelational);
  Peer* y = net.AddPeer("y.example.org", EngineKind::kRelational);
  (void)y->RegisterModule(xrpc::xmark::TestModuleSource(), "test.xq");
  (void)p0->AddDocument("payload.xml", MakePayloadDoc(payload_bytes));
  (void)y->AddDocument("payload.xml", MakePayloadDoc(payload_bytes));

  Throughput t;
  {
    // Request-heavy: ship the payload as a parameter; count() keeps the
    // response tiny.
    auto report = net.Execute(
        "p0.example.org",
        "import module namespace t=\"test\" at \"test.xq\";\n"
        "count(execute at {\"xrpc://y.example.org\"} "
        "{t:echo(doc(\"payload.xml\")/*)})");
    if (report.ok()) {
      double mb = static_cast<double>(payload_bytes) / 1e6;
      double sec =
          static_cast<double>(xrpc::bench::TotalMicros(report.value())) / 1e6;
      t.request_mb_s = mb / sec;
    }
  }
  {
    // Response-heavy: fetch the remote payload (tiny request).
    auto report = net.Execute(
        "p0.example.org",
        "import module namespace t=\"test\" at \"test.xq\";\n"
        "count(execute at {\"xrpc://y.example.org\"} "
        "{t:echoDoc(\"payload.xml\")})");
    if (report.ok()) {
      double mb = static_cast<double>(payload_bytes) / 1e6;
      double sec =
          static_cast<double>(xrpc::bench::TotalMicros(report.value())) / 1e6;
      t.response_mb_s = mb / sec;
    }
  }
  return t;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Throughput (Section 3.3) — SOAP XRPC data throughput on the\n"
      "simulated 1 Gb/s LAN (125 MB/s wire speed). Paper: ~8 MB/s for\n"
      "large requests, ~14 MB/s for large responses: CPU-bound, not\n"
      "network-bound.\n\n");

  xrpc::bench::TablePrinter table(
      {"payload", "request MB/s", "response MB/s"});
  for (size_t kb : {64, 256, 1024, 4096}) {
    Throughput t = Measure(kb * 1024);
    table.AddRow({std::to_string(kb) + " KiB", Fmt(t.request_mb_s),
                  Fmt(t.response_mb_s)});
  }
  table.Print();
  std::printf(
      "\nShape checks: throughput well below wire speed (CPU-bound on\n"
      "parse/shred/serialize); responses faster than requests.\n");
  return 0;
}
