// Fault-tolerant 2PC benchmark: measures what durability and failure
// handling cost on top of the XQUF update path (Section 2.3's 2PC
// judgments made crash-safe).
//
//  1. Commit latency per durability mode: in-memory log vs file-backed
//     WAL (fsync off / fsync on), with per-peer append/fsync counts.
//  2. Commit-retry drain: phase-2 messages dropped in transit, the
//     bounded-backoff retry loop re-drives until the commit lands.
//  3. Crash/recovery convergence: every participant crash point plus the
//     coordinator decision-log crash, each timed through WAL replay,
//     presumed-abort inquiry, and commit re-drive to the all-or-nothing
//     fixpoint.
//
// Ends with the RpcMetrics dump, whose txn: line aggregates commit
// retries, in-doubt parkings, recoveries, and idempotent replies.

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "server/rpc_client.h"
#include "server/wsat.h"

namespace {

using xrpc::Status;
using xrpc::StatusOr;
using xrpc::core::ExecutionReport;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;
using xrpc::server::CrashPoint;
using xrpc::server::RunTwoPhaseCommit;
using xrpc::server::TwoPhaseCommitOptions;
using xrpc::server::TxnLog;

constexpr char kFilmDb[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare function film:countFilms() as xs:integer
  { count(doc("filmDB.xml")//film) };
  declare updating function film:addFilm($name as xs:string,
                                         $actor as xs:string)
  { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
    into doc("filmDB.xml")/films };
)";

constexpr char kUpdateBoth[] = R"(
  declare option xrpc:isolation "repeatable";
  declare option xrpc:timeout "60";
  import module namespace f="films" at "http://x.example.org/film.xq";
  (execute at {"xrpc://y.example.org"} {f:addFilm("A", "X")},
   execute at {"xrpc://z.example.org"} {f:addFilm("B", "Y")}))";

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A three-peer topology: coordinator p0, participants y and z each
/// holding a film document plus the updating module.
struct Cluster {
  PeerNetwork net;
  Peer* p0;
  Peer* y;
  Peer* z;

  Cluster() {
    p0 = net.AddPeer("p0.example.org");
    y = net.AddPeer("y.example.org");
    z = net.AddPeer("z.example.org");
    for (Peer* p : {y, z}) {
      (void)p->AddDocument("filmDB.xml", kFilmDb);
    }
    for (Peer* p : {p0, y, z}) {
      (void)p->RegisterModule(kFilmModule, "http://x.example.org/film.xq");
    }
  }

  StatusOr<ExecutionReport> Update() {
    return net.Execute("p0.example.org", kUpdateBoth);
  }

  int Count(Peer* peer) {
    auto report = net.Execute(
        peer->name(),
        R"(import module namespace f="films"
             at "http://x.example.org/film.xq";
           f:countFilms())");
    if (!report.ok()) return -1;
    return static_cast<int>(report->result[0].atomic().AsInteger());
  }

  /// Stages the two-participant updating calls under `id` without
  /// committing, for manually driven 2PC scenarios.
  xrpc::soap::QueryId Stage(const std::string& id) {
    xrpc::soap::QueryId qid;
    qid.id = id;
    qid.host = p0->uri();
    qid.timestamp = 1;
    qid.timeout_sec = 60;
    xrpc::server::RpcClient::Options opts;
    opts.isolation = xrpc::server::IsolationLevel::kRepeatable;
    opts.query_id = qid;
    xrpc::server::RpcClient client(&net.network(), opts);
    xrpc::soap::XrpcRequest req;
    req.module_ns = "films";
    req.method = "addFilm";
    req.arity = 2;
    req.updating = true;
    req.calls.push_back(
        {xrpc::xdm::Sequence{
             xrpc::xdm::Item(xrpc::xdm::AtomicValue::String("A"))},
         xrpc::xdm::Sequence{
             xrpc::xdm::Item(xrpc::xdm::AtomicValue::String("X"))}});
    (void)client.ExecuteBulk(y->uri(), req);
    (void)client.ExecuteBulk(z->uri(), req);
    return qid;
  }
};

// -- 1. Durability cost ------------------------------------------------------

enum class WalMode { kInMemory, kFileNoSync, kFileSync };

const char* WalModeName(WalMode m) {
  switch (m) {
    case WalMode::kInMemory:
      return "in-memory log";
    case WalMode::kFileNoSync:
      return "file WAL, no fsync";
    case WalMode::kFileSync:
      return "file WAL, fsync";
  }
  return "?";
}

void BenchDurability(int txns) {
  std::printf("1. Commit latency per durability mode (%d two-participant\n"
              "   repeatable-isolation transactions each):\n\n",
              txns);
  xrpc::bench::TablePrinter table(
      {"mode", "avg commit", "WAL appends", "fsyncs"});
  for (WalMode mode : {WalMode::kInMemory, WalMode::kFileNoSync,
                       WalMode::kFileSync}) {
    Cluster c;
    if (mode != WalMode::kInMemory) {
      for (Peer* p : {c.p0, c.y, c.z}) {
        std::string path = "/tmp/bench_2pc_" + p->name() + ".wal";
        std::remove(path.c_str());
        Status s = p->EnableWal(path);
        if (!s.ok()) {
          std::fprintf(stderr, "EnableWal: %s\n", s.ToString().c_str());
          return;
        }
        p->service().txn_log().set_sync(mode == WalMode::kFileSync);
      }
    }
    int64_t start = NowMicros();
    int committed = 0;
    for (int i = 0; i < txns; ++i) {
      auto report = c.Update();
      if (report.ok() && report->committed) ++committed;
    }
    int64_t per_txn = (NowMicros() - start) / (txns > 0 ? txns : 1);
    int64_t appends = 0, fsyncs = 0;
    for (Peer* p : {c.p0, c.y, c.z}) {
      appends += p->service().txn_log().appends();
      fsyncs += p->service().txn_log().fsyncs();
    }
    if (committed != txns) {
      std::fprintf(stderr, "only %d/%d committed under %s\n", committed,
                   txns, WalModeName(mode));
    }
    table.AddRow({WalModeName(mode), xrpc::bench::Ms(per_txn) + " ms",
                  std::to_string(appends), std::to_string(fsyncs)});
  }
  table.Print();
  std::printf("\n");
}

// -- 2. Commit-retry drain ---------------------------------------------------

/// Drops the first `failures` phase-2 Commit messages toward `dest`.
class CommitDropTransport : public xrpc::net::Transport {
 public:
  CommitDropTransport(xrpc::net::Transport* inner, std::string dest,
                      int failures)
      : inner_(inner), dest_(std::move(dest)), remaining_(failures) {}

  StatusOr<xrpc::net::PostResult> Post(const std::string& dest_uri,
                                       const std::string& body) override {
    if (remaining_ > 0 && dest_uri.find(dest_) != std::string::npos &&
        body.find("op=\"commit\"") != std::string::npos) {
      --remaining_;
      return Status::NetworkError("injected commit drop");
    }
    return inner_->Post(dest_uri, body);
  }

 private:
  xrpc::net::Transport* inner_;
  std::string dest_;
  int remaining_;
};

void BenchCommitRetry() {
  std::printf("2. Commit-retry drain (phase-2 Commits toward one participant\n"
              "   dropped in transit; bounded exponential backoff):\n\n");
  xrpc::bench::TablePrinter table({"drops", "outcome", "commit retries",
                                   "in doubt", "modeled backoff"});
  for (int drops : {0, 1, 2, 4}) {
    Cluster c;
    auto qid = c.Stage("retry-" + std::to_string(drops));
    CommitDropTransport flaky(&c.net.network(), "z.example.org", drops);
    int64_t slept_us = 0;
    TwoPhaseCommitOptions options;
    options.journal = &c.p0->service();
    options.commit_retry = xrpc::net::RetryPolicy{.max_attempts = 4,
                                                  .initial_backoff_us = 200};
    options.sleep = [&slept_us](int64_t us) { slept_us += us; };
    options.metrics = &c.net.metrics();
    auto outcome = RunTwoPhaseCommit(
        &flaky, {c.y->uri(), c.z->uri()}, qid.id, options);
    std::string verdict = "error";
    int retries = 0;
    size_t in_doubt = 0;
    if (outcome.ok()) {
      retries = outcome->commit_retries;
      in_doubt = outcome->in_doubt.size();
      verdict = !outcome->committed       ? "aborted"
                : outcome->in_doubt.empty() ? "committed"
                                            : "committed, in doubt";
    }
    // With > max_attempts-1 drops the participant stays parked; drain it
    // once the network "heals" so the scenario ends converged.
    if (c.p0->service().in_doubt_count() > 0) {
      (void)c.p0->service().RetryInDoubt(&c.net.network());
    }
    table.AddRow({std::to_string(drops), verdict, std::to_string(retries),
                  std::to_string(in_doubt),
                  xrpc::bench::Ms(slept_us) + " ms"});
  }
  table.Print();
  std::printf("\n");
}

// -- 3. Crash/recovery convergence -------------------------------------------

void BenchCrashRecovery() {
  std::printf("3. Crash/recovery convergence (participant z crashes at the\n"
              "   armed point; recovery = WAL replay + presumed-abort inquiry\n"
              "   + coordinator commit re-drive):\n\n");
  struct Row {
    const char* name;
    CrashPoint point;
    bool expect_commit;
  };
  const Row rows[] = {
      {"after prepare-log (vote lost)", CrashPoint::kAfterPrepareLog, false},
      {"after vote", CrashPoint::kAfterVote, true},
      {"before commit-apply", CrashPoint::kBeforeCommitApply, true},
      {"after commit-log", CrashPoint::kAfterCommitLog, true},
  };
  xrpc::bench::TablePrinter table(
      {"crash point", "txn outcome", "recovery", "converged", "recovery time"});
  for (const Row& row : rows) {
    Cluster c;
    c.z->InjectCrash(row.point);
    auto report = c.Update();
    bool committed = report.ok() && report->committed;

    int64_t start = NowMicros();
    Status s = c.z->Restart();
    if (c.p0->service().in_doubt_count() > 0) {
      (void)c.p0->service().RetryInDoubt(&c.net.network());
    }
    int64_t recovery_us = NowMicros() - start;

    int expect = row.expect_commit ? 4 : 3;
    bool converged = s.ok() && c.Count(c.y) == expect &&
                     c.Count(c.z) == expect &&
                     c.z->service().in_doubt_count() == 0 &&
                     c.p0->service().in_doubt_count() == 0;
    table.AddRow({row.name, committed ? "committed" : "aborted",
                  s.ok() ? "ok" : s.ToString(), converged ? "yes" : "NO",
                  xrpc::bench::Ms(recovery_us) + " ms"});
  }

  // Coordinator decision-log crash: the decision is durable, restart
  // re-drives Commit to every logged participant.
  {
    Cluster c;
    auto qid = c.Stage("coord-crash");
    TwoPhaseCommitOptions options;
    options.journal = &c.p0->service();
    options.crash_point = TwoPhaseCommitOptions::CrashPoint::kAfterDecisionLog;
    (void)RunTwoPhaseCommit(&c.net.network(), {c.y->uri(), c.z->uri()},
                            qid.id, options);
    int64_t start = NowMicros();
    Status s = c.p0->Restart();
    int64_t recovery_us = NowMicros() - start;
    bool converged = s.ok() && c.Count(c.y) == 4 && c.Count(c.z) == 4 &&
                     c.p0->service().in_doubt_count() == 0;
    table.AddRow({"coordinator, after decision-log", "committed",
                  s.ok() ? "ok" : s.ToString(), converged ? "yes" : "NO",
                  xrpc::bench::Ms(recovery_us) + " ms"});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Fault-tolerant 2PC — durability cost, commit-retry drain, and\n"
      "crash-recovery convergence for XQUF updates (repeatable isolation,\n"
      "two participants + coordinator).\n\n");

  BenchDurability(20);
  BenchCommitRetry();
  BenchCrashRecovery();

  // One last run with shared metrics so the txn: counters show a full
  // crash + recovery cycle in the observability dump.
  Cluster c;
  c.z->InjectCrash(CrashPoint::kAfterVote);
  (void)c.Update();
  (void)c.z->Restart();
  (void)c.p0->service().RetryInDoubt(&c.net.network());
  std::printf("RpcMetrics after one crash+recovery cycle:\n%s\n",
              c.net.metrics().Report().c_str());
  return 0;
}
