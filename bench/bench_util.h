#ifndef XRPC_BENCH_BENCH_UTIL_H_
#define XRPC_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-table benchmark binaries: peer setup and
// fixed-width table printing. The binaries print the same rows/series the
// paper reports; absolute times differ from the 2007 testbed (documented
// in EXPERIMENTS.md), the shapes are the reproduced claims.

#include <cstdio>
#include <string>
#include <vector>

#include "core/peer_network.h"

namespace xrpc::bench {

/// Milliseconds (one decimal) from microseconds.
inline std::string Ms(int64_t us) {
  char buf[32];
  double ms = static_cast<double>(us) / 1000.0;
  std::snprintf(buf, sizeof(buf), ms < 10 ? "%.2f" : "%.1f", ms);
  return buf;
}

/// Total modeled latency of a query execution: local processing (measured)
/// plus modeled wire time (virtual, from the network profile).
inline int64_t TotalMicros(const core::ExecutionReport& report) {
  return report.wall_micros + report.network_micros;
}

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    PrintRow(headers_, widths);
    std::string sep;
    for (size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) sep += "+";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s ", static_cast<int>(widths[c]), row[c].c_str());
      if (c + 1 < row.size()) std::printf("|");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xrpc::bench

#endif  // XRPC_BENCH_BENCH_UTIL_H_
