// Parallel-dispatch benchmark, two claims:
//
//  1. Multi-destination Bulk RPC fan-out costs the *maximum* over
//     destinations, not the sum (the paper's Table 4 premise: MonetDB
//     dispatches the per-destination requests concurrently). Modeled over
//     the simulated network: group cost stays flat as destinations grow,
//     the serial sum grows linearly.
//
//  2. HTTP/1.1 keep-alive amortizes connection setup the way Bulk RPC
//     amortizes message latency (Table 2 re-run at x=1000 over real
//     loopback sockets): one dialed connection carries all requests
//     instead of one TCP handshake per request.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/http.h"
#include "net/simulated_network.h"
#include "net/thread_pool.h"
#include "server/rpc_client.h"
#include "soap/message.h"

namespace {

using xrpc::StatusOr;
using xrpc::server::RpcClient;
using Destination = xrpc::server::BulkRpcChannel::Destination;

// Minimal SOAP peer: answers every call in the request with one integer.
class OnePeer : public xrpc::net::SoapEndpoint {
 public:
  StatusOr<std::string> Handle(const std::string& /*path*/,
                               const std::string& body) override {
    XRPC_ASSIGN_OR_RETURN(xrpc::soap::XrpcRequest req,
                          xrpc::soap::ParseRequest(body));
    xrpc::soap::XrpcResponse resp;
    resp.module_ns = req.module_ns;
    resp.method = req.method;
    for (size_t c = 0; c < req.calls.size(); ++c) {
      resp.results.push_back(xrpc::xdm::Sequence{
          xrpc::xdm::Item(xrpc::xdm::AtomicValue::Integer(42))});
    }
    return xrpc::soap::SerializeResponse(resp);
  }
};

xrpc::soap::XrpcRequest MakeRequest() {
  xrpc::soap::XrpcRequest req;
  req.module_ns = "m";
  req.method = "f";
  req.arity = 1;
  req.calls.push_back({xrpc::xdm::Sequence{
      xrpc::xdm::Item(xrpc::xdm::AtomicValue::String("arg"))}});
  return req;
}

void BenchFanout() {
  std::printf(
      "Fan-out critical path (simulated network, 1ms latency/peer):\n"
      "modeled group cost must track the slowest destination, not the\n"
      "serial sum.\n\n");
  xrpc::bench::TablePrinter table({"destinations", "serial sum ms",
                                   "fan-out ms", "speedup"});
  for (int n : {1, 2, 4, 8, 16}) {
    xrpc::net::NetworkProfile profile;
    profile.latency_us = 1000;
    xrpc::net::SimulatedNetwork net(profile);
    std::vector<std::unique_ptr<OnePeer>> peers;
    std::vector<Destination> dests;
    for (int i = 0; i < n; ++i) {
      peers.push_back(std::make_unique<OnePeer>());
      std::string uri = "xrpc://p" + std::to_string(i);
      net.RegisterPeer(xrpc::net::ParseXrpcUri(uri).value(),
                       peers.back().get());
      dests.push_back({uri, MakeRequest()});
    }
    // Serial sum: one ExecuteBulk per destination, costs accumulate.
    RpcClient serial(&net, {});
    for (int i = 0; i < n; ++i) {
      (void)serial.ExecuteBulk("xrpc://p" + std::to_string(i), MakeRequest());
    }
    int64_t sum_us = net.clock().NowMicros();
    net.ResetStats();
    // Fan-out: one ExecuteBulkAll group, cost = critical path.
    RpcClient fanout(&net, {});
    (void)fanout.ExecuteBulkAll(std::move(dests));
    int64_t group_us = net.clock().NowMicros();
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  group_us > 0 ? static_cast<double>(sum_us) / group_us : 0.0);
    table.AddRow({std::to_string(n), xrpc::bench::Ms(sum_us),
                  xrpc::bench::Ms(group_us), speedup});
  }
  table.Print();
}

// SOAP peer that models per-request server work with a real sleep, making
// the serial-vs-parallel wall-clock difference visible over loopback.
class SlowPeer : public xrpc::net::SoapEndpoint {
 public:
  explicit SlowPeer(int delay_millis) : delay_millis_(delay_millis) {}

  StatusOr<std::string> Handle(const std::string& path,
                               const std::string& body) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_millis_));
    return inner_.Handle(path, body);
  }

 private:
  int delay_millis_;
  OnePeer inner_;
};

void BenchFanoutWallClock() {
  const int kDelayMillis = 5;
  std::printf(
      "\nFan-out wall-clock (real loopback sockets, %d ms of work per\n"
      "destination): pooled dispatch stays ~flat, serial grows linearly.\n\n",
      kDelayMillis);
  xrpc::bench::TablePrinter table(
      {"destinations", "serial ms", "parallel ms"});
  for (int n : {1, 2, 4, 8}) {
    SlowPeer peer(kDelayMillis);
    std::vector<std::unique_ptr<xrpc::net::HttpServer>> servers;
    std::vector<std::string> uris;
    for (int i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<xrpc::net::HttpServer>(&peer));
      auto port = servers.back()->Start(0);
      if (!port.ok()) return;
      uris.push_back("xrpc://127.0.0.1:" + std::to_string(port.value()));
    }
    auto run = [&](xrpc::net::ThreadPool* pool) {
      xrpc::net::HttpTransport transport;
      RpcClient::Options opts;
      opts.dispatch_pool = pool;
      RpcClient client(&transport, opts);
      std::vector<Destination> dests;
      for (const std::string& uri : uris) dests.push_back({uri, MakeRequest()});
      auto start = std::chrono::steady_clock::now();
      (void)client.ExecuteBulkAll(std::move(dests));
      return std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    int64_t serial_us = run(nullptr);
    xrpc::net::ThreadPool pool(n);
    int64_t parallel_us = run(&pool);
    table.AddRow({std::to_string(n), xrpc::bench::Ms(serial_us),
                  xrpc::bench::Ms(parallel_us)});
    for (auto& s : servers) s->Stop();
  }
  table.Print();
}

void BenchKeepAlive() {
  const int kRequests = 1000;
  std::printf(
      "\nConnection-setup amortization (real loopback sockets, %d small\n"
      "POSTs): keep-alive dials once; Connection: close dials per request.\n\n",
      kRequests);
  OnePeer peer;
  xrpc::bench::TablePrinter table({"transport", "total ms", "us/request",
                                   "connections", "pool hits"});
  for (bool keep_alive : {false, true}) {
    xrpc::net::HttpServer server(&peer);
    auto port = server.Start(0);
    if (!port.ok()) {
      std::printf("server start failed: %s\n",
                  port.status().ToString().c_str());
      return;
    }
    xrpc::net::HttpTransport transport;
    transport.set_keep_alive(keep_alive);
    std::string uri = "xrpc://127.0.0.1:" + std::to_string(port.value());
    std::string body = xrpc::soap::SerializeRequest(MakeRequest());
    auto start = std::chrono::steady_clock::now();
    int failures = 0;
    for (int i = 0; i < kRequests; ++i) {
      if (!transport.Post(uri, body).ok()) ++failures;
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (failures > 0) std::printf("(%d requests failed)\n", failures);
    table.AddRow({keep_alive ? "keep-alive" : "close-per-request",
                  xrpc::bench::Ms(elapsed),
                  std::to_string(elapsed / kRequests),
                  std::to_string(server.connections_accepted()),
                  std::to_string(transport.pool().hits())});
    server.Stop();
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Parallel multi-destination dispatch + keep-alive connection reuse\n\n");
  BenchFanout();
  BenchFanoutWallClock();
  BenchKeepAlive();
  std::printf(
      "\nShape checks: modeled and wall-clock fan-out stay ~flat as\n"
      "destinations grow (max-over-destinations, not sum); keep-alive\n"
      "accepts 1 connection for all requests and beats close-per-request\n"
      "on us/request.\n");
  return 0;
}
