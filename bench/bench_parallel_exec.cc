// Morsel-parallel executor speedup curve (DESIGN.md §15): large-document
// path + filter + join queries evaluated by the loop-lifted engine at
// exec_threads ∈ {1, 2, 4, 8}, reporting
//
//   - byte-identity: the rendered result at every worker count must equal
//     the serial result exactly (the executor's core contract);
//   - measured wall clock per worker count (honest, host-bound: on a
//     single-core container the measured curve is flat or worse — threads
//     time-share one CPU);
//   - a modeled speedup curve: with exec sampling on, RpcMetrics retains
//     the per-morsel busy times of every operator invocation; a greedy
//     earliest-free-worker schedule over those times yields the k-worker
//     makespan, i.e. the speedup of the parallelizable portion on a host
//     with k real cores (EXPERIMENTS.md documents the methodology).
//
// Results land in BENCH_parallel_exec.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "base/clock.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "compiler/loop_lift.h"
#include "net/rpc_metrics.h"
#include "server/database.h"
#include "shred/shredded_doc.h"
#include "xdm/item.h"
#include "xmark/xmark.h"
#include "xquery/parser.h"

namespace {

using xrpc::StopWatch;

// FLWOR-shaped so every binding is its own loop iteration: iter-aligned
// morsel splitting needs many iter groups, and a bare path over one
// document is a single group (stays one morsel by design).
struct BenchQuery {
  const char* name;
  const char* text;
};

const BenchQuery kQueries[] = {
    // path steps + per-iteration string extraction over every auction
    {"path",
     "for $ca in doc(\"auctions.xml\")//closed_auction "
     "return string($ca/annotation)"},
    // comparison predicate filtering the large side
    {"filter",
     "for $ca in doc(\"auctions.xml\")//closed_auction "
     "where $ca/price > 100 return string($ca/buyer/@person)"},
    // equality join of persons against the large auction side
    {"join",
     "for $p in doc(\"persons.xml\")//person, "
     "$ca in doc(\"auctions.xml\")//closed_auction "
     "where $p/@id = $ca/buyer/@person "
     "return string($ca/annotation)"},
};

constexpr int kWorkers[] = {1, 2, 4, 8};
constexpr size_t kMorselRows = 128;
constexpr int kReps = 3;

struct RunResult {
  int64_t wall_us = 0;  ///< best-of-reps measured wall clock
  std::string result;   ///< rendered sequence
  std::vector<std::vector<int64_t>> batches;  ///< per-morsel times (sampled)
};

// Greedy earliest-free-worker makespan of one operator invocation's
// morsels on k workers — morsels are issued in order, exactly as the
// executor submits them to the pool's FIFO queue.
int64_t Makespan(const std::vector<int64_t>& morsel_us, int k) {
  std::vector<int64_t> free_at(static_cast<size_t>(k), 0);
  for (int64_t t : morsel_us) {
    auto it = std::min_element(free_at.begin(), free_at.end());
    *it += t;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

}  // namespace

int main() {
  // Large-document fixture: the auctions side dominates (the paper's
  // 50 MB auctions.xml scaled to keep an in-process run in seconds).
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = 500;
  cfg.num_closed_auctions = 6000;
  cfg.num_matches = 300;
  cfg.annotation_bytes = 96;

  xrpc::server::Database db;
  if (!db.PutDocumentText("persons.xml", xrpc::xmark::GeneratePersons(cfg))
           .ok() ||
      !db.PutDocumentText("auctions.xml", xrpc::xmark::GenerateAuctions(cfg))
           .ok()) {
    std::fprintf(stderr, "bench_parallel_exec: fixture generation failed\n");
    return 1;
  }
  xrpc::server::LiveDocumentProvider docs(&db);
  xrpc::shred::ShredCache shreds;  // shared: shredding amortizes across runs

  auto run = [&](const BenchQuery& q, int threads,
                 bool sample) -> RunResult {
    RunResult r;
    auto parsed = xrpc::xquery::ParseMainModule(q.text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_parallel_exec: parse %s: %s\n", q.name,
                   parsed.status().ToString().c_str());
      return r;
    }
    xrpc::net::RpcMetrics metrics;
    metrics.set_exec_sampling(sample);
    r.wall_us = -1;
    for (int rep = 0; rep < kReps; ++rep) {
      xrpc::compiler::LoopLiftConfig config;
      config.documents = &docs;
      config.shreds = &shreds;
      config.exec_threads = threads;
      config.morsel_rows = kMorselRows;
      config.metrics = &metrics;
      xrpc::compiler::LoopLiftedEvaluator evaluator(config);
      StopWatch wall;
      auto result = evaluator.EvaluateQuery(parsed.value());
      int64_t us = wall.ElapsedMicros();
      if (!result.ok()) {
        std::fprintf(stderr, "bench_parallel_exec: %s: %s\n", q.name,
                     result.status().ToString().c_str());
        return r;
      }
      if (r.wall_us < 0 || us < r.wall_us) r.wall_us = us;
      r.result = xrpc::xdm::SequenceToString(result.value());
    }
    if (sample) r.batches = metrics.exec_morsel_batches();
    return r;
  };

  xrpc::bench::BenchJson json("parallel_exec");
  json.config()
      .Set("morsel_rows", kMorselRows)
      .Set("num_closed_auctions", cfg.num_closed_auctions)
      .Set("num_persons", cfg.num_persons)
      .Set("reps", kReps);

  std::printf(
      "Morsel-parallel executor — %d closed auctions, %d persons,\n"
      "morsel target %zu rows. Modeled speedup = greedy k-worker makespan\n"
      "over sampled per-morsel busy times (see EXPERIMENTS.md: measured\n"
      "wall clock on this host is bounded by its physical cores).\n\n",
      cfg.num_closed_auctions, cfg.num_persons, kMorselRows);

  bool all_identical = true;
  bool speedup_ok = true;
  for (const BenchQuery& q : kQueries) {
    // Warm the shred cache so document shredding (one-time, cached) does
    // not pollute the first measured run.
    (void)run(q, 1, false);
    RunResult serial = run(q, 1, false);
    // Sample morsel times from an instrumented parallel run: serial
    // execution never splits morsels, so the sampling run must be the
    // widest configuration (morsel count is worker-independent).
    RunResult sampled = run(q, 8, true);

    int64_t busy_total = 0;
    size_t total_morsels = 0;
    for (const auto& batch : sampled.batches) {
      for (int64_t t : batch) busy_total += t;
      total_morsels += batch.size();
    }

    xrpc::bench::TablePrinter table(
        {"workers", "wall", "modeled", "speedup(modeled)", "identical"});

    double speedup8 = 0.0;
    for (size_t wi = 0; wi < sizeof(kWorkers) / sizeof(kWorkers[0]); ++wi) {
      int k = kWorkers[wi];
      RunResult r = k == 1 ? serial : run(q, k, false);
      bool identical = r.result == serial.result;
      all_identical = all_identical && identical;
      int64_t modeled = 0;
      for (const auto& batch : sampled.batches) modeled += Makespan(batch, k);
      double speedup =
          modeled > 0 ? static_cast<double>(busy_total) / modeled : 0.0;
      if (k == 8) speedup8 = speedup;
      char sbuf[32];
      std::snprintf(sbuf, sizeof(sbuf), "%.2fx", speedup);
      table.AddRow({std::to_string(k), xrpc::bench::Ms(r.wall_us),
                    xrpc::bench::Ms(modeled), sbuf,
                    identical ? "yes" : "NO"});
      json.AddRow()
          .Set("query", q.name)
          .Set("workers", k)
          .Set("ops_sampled", sampled.batches.size())
          .Set("morsels", total_morsels)
          .Set("busy_us", busy_total)
          .Set("wall_us", r.wall_us)
          .Set("modeled_makespan_us", modeled)
          .Set("modeled_speedup", speedup)
          .Set("identical", identical);
    }
    std::printf("query: %s (%zu exec ops, %zu morsels sampled)\n", q.name,
                sampled.batches.size(), total_morsels);
    table.Print();
    std::printf("\n");
    if (speedup8 < 4.0) speedup_ok = false;
  }
  json.config().Set("all_identical", all_identical);
  if (!json.WriteFile("BENCH_parallel_exec.json")) {
    std::fprintf(stderr, "bench_parallel_exec: cannot write json output\n");
    return 1;
  }

  std::printf("byte-identity at every worker count: %s\n",
              all_identical ? "OK" : "FAILED");
  std::printf("modeled speedup >= 4x at 8 workers for every query: %s\n",
              speedup_ok ? "OK" : "FAILED");
  std::printf("wrote BENCH_parallel_exec.json\n");
  return all_identical && speedup_ok ? 0 : 1;
}
