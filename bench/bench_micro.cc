// Microbenchmarks (google-benchmark) for the substrate operations whose
// costs dominate the paper's experiments: XML parsing (treebuild),
// serialization, shredding, SOAP marshaling, and bulk request encoding.

#include <benchmark/benchmark.h>

#include "shred/shredded_doc.h"
#include "soap/marshal.h"
#include "soap/message.h"
#include "xmark/xmark.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/interpreter.h"
#include "xquery/parser.h"

namespace {

using xrpc::xdm::AtomicValue;
using xrpc::xdm::Item;
using xrpc::xdm::Sequence;

std::string PersonsDoc(int persons) {
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = persons;
  return xrpc::xmark::GeneratePersons(cfg);
}

void BM_XmlParse(benchmark::State& state) {
  std::string doc = PersonsDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto parsed = xrpc::xml::ParseXml(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParse)->Arg(100)->Arg(1000)->Arg(5000);

void BM_XmlSerialize(benchmark::State& state) {
  std::string doc = PersonsDoc(static_cast<int>(state.range(0)));
  auto parsed = xrpc::xml::ParseXml(doc).value();
  for (auto _ : state) {
    std::string out = xrpc::xml::SerializeNode(*parsed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlSerialize)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Shred(benchmark::State& state) {
  auto parsed =
      xrpc::xml::ParseXml(PersonsDoc(static_cast<int>(state.range(0))))
          .value();
  for (auto _ : state) {
    auto shredded = xrpc::shred::ShreddedDoc::Shred(parsed);
    benchmark::DoNotOptimize(shredded);
  }
}
BENCHMARK(BM_Shred)->Arg(100)->Arg(1000)->Arg(5000);

void BM_StaircaseDescendantScan(benchmark::State& state) {
  auto parsed = xrpc::xml::ParseXml(PersonsDoc(5000)).value();
  auto shredded = xrpc::shred::ShreddedDoc::Shred(parsed);
  int32_t name_id = shredded->NameId(xrpc::xml::QName("person"));
  for (auto _ : state) {
    auto hits = shredded->DescendantElements(0, name_id);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_StaircaseDescendantScan);

void BM_MarshalSequence(benchmark::State& state) {
  Sequence seq;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    seq.push_back(Item(AtomicValue::Integer(i)));
    seq.push_back(Item(AtomicValue::String("value-" + std::to_string(i))));
  }
  for (auto _ : state) {
    auto node = xrpc::soap::SequenceToNode(seq);
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_MarshalSequence)->Arg(10)->Arg(1000);

void BM_BulkRequestEncode(benchmark::State& state) {
  xrpc::soap::XrpcRequest req;
  req.module_ns = "films";
  req.method = "filmsByActor";
  req.arity = 1;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    req.calls.push_back(
        {Sequence{Item(AtomicValue::String("Actor " + std::to_string(i)))}});
  }
  for (auto _ : state) {
    std::string wire = xrpc::soap::SerializeRequest(req);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_BulkRequestEncode)->Arg(1)->Arg(100)->Arg(1000);

void BM_BulkRequestDecode(benchmark::State& state) {
  xrpc::soap::XrpcRequest req;
  req.module_ns = "films";
  req.method = "filmsByActor";
  req.arity = 1;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    req.calls.push_back(
        {Sequence{Item(AtomicValue::String("Actor " + std::to_string(i)))}});
  }
  std::string wire = xrpc::soap::SerializeRequest(req);
  for (auto _ : state) {
    auto parsed = xrpc::soap::ParseRequest(wire);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_BulkRequestDecode)->Arg(1)->Arg(100)->Arg(1000);

void BM_QueryParse(benchmark::State& state) {
  std::string module = xrpc::xmark::FunctionsBModuleSource("xrpc://A");
  for (auto _ : state) {
    auto parsed = xrpc::xquery::ParseLibraryModule(module);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_QueryParse);

}  // namespace
