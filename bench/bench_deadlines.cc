// Tail-latency benchmark for deadline propagation + circuit breaking: a
// Bulk RPC workload over a mix of healthy, slow (250ms latency spikes),
// and dead destinations. Without budgets every spiked exchange is waited
// out in full and every dead-peer query pays the complete retry/backoff
// schedule; a 100ms end-to-end deadline caps each query at its budget
// (trading some slow successes for bounded latency), and the per-peer
// circuit breaker collapses the dead destination to an instant local
// refusal once it opens. The virtual clock makes every row deterministic.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "xmark/xmark.h"

namespace {

using xrpc::bench::Ms;
using xrpc::bench::TablePrinter;
using xrpc::core::ExecuteOptions;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;
using xrpc::net::CircuitBreaker;
using xrpc::net::FaultProfile;
using xrpc::net::ParseXrpcUri;
using xrpc::net::RetryPolicy;

constexpr int kQueries = 60;
constexpr int64_t kDeadlineUs = 100'000;  // 100ms end-to-end budget
constexpr int64_t kSpikeUs = 80'000;      // slow path: 80ms spikes

// Three query classes, rotated: a short probe that fits the budget even
// when spiked, a long scan whose accumulated spikes blow way past it,
// and a fan that also touches the dead destination (the degraded-fleet
// mix). One-at-a-time dispatch keeps the exchanges serial, which is what
// gives the cooperative cancellation poll between iterations its bite.
constexpr char kShortQuery[] = R"(
  import module namespace f="films" at "film.xq";
  for $dst in ("xrpc://y.example.org", "xrpc://slow.example.org")
  return execute at {$dst} {f:filmsByActor("Sean Connery")})";

constexpr char kLongQuery[] = R"(
  import module namespace f="films" at "film.xq";
  for $i in (1 to 5)
  for $dst in ("xrpc://y.example.org", "xrpc://slow.example.org")
  return execute at {$dst} {f:filmsByActor("Sean Connery")})";

constexpr char kDeadMixQuery[] = R"(
  import module namespace f="films" at "film.xq";
  for $dst in ("xrpc://y.example.org",
               "xrpc://dead.example.org",
               "xrpc://slow.example.org")
  return execute at {$dst} {f:filmsByActor("Sean Connery")})";

struct Outcome {
  std::vector<int64_t> latencies_us;
  int ok = 0;
  int failed = 0;
  int64_t dead_dials = 0;
  int64_t short_circuits = 0;
  std::string report;
};

int64_t Percentile(std::vector<int64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

Outcome Run(bool with_deadline, bool with_breaker) {
  PeerNetwork net;
  net.AddPeer("p0");
  for (const char* name : {"y.example.org", "slow.example.org"}) {
    Peer* p = net.AddPeer(name);
    (void)p->AddDocument("filmDB.xml", xrpc::xmark::GenerateFilmDb());
    (void)p->RegisterModule(xrpc::xmark::FilmModuleSource(), "film.xq");
  }
  (void)net.GetPeer("p0")->RegisterModule(xrpc::xmark::FilmModuleSource(),
                                          "film.xq");
  net.AddPeer("dead.example.org");
  net.network().DisconnectPeer(
      ParseXrpcUri("xrpc://dead.example.org").value());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 20'000;
  policy.jitter_fraction = 0.0;
  net.set_retry_policy(policy);

  // Every 2nd post pays the spike — the "slow path" tax.
  FaultProfile faults;
  faults.latency_spike_every_nth = 2;
  faults.latency_spike_us = kSpikeUs;
  net.network().set_fault_profile(faults);

  if (with_breaker) {
    CircuitBreaker::Policy breaker;
    breaker.failure_threshold = 3;
    breaker.cooldown_us = 5'000'000;
    net.EnableCircuitBreaker(breaker);
  }

  ExecuteOptions opts;
  opts.force_one_at_a_time = true;
  if (with_deadline) opts.deadline_us = kDeadlineUs;

  Outcome out;
  const char* const kRotation[] = {kShortQuery, kLongQuery, kDeadMixQuery};
  for (int i = 0; i < kQueries; ++i) {
    const char* query = kRotation[i % 3];
    const int64_t start = net.network().clock().NowMicros();
    auto report = net.Execute("p0", query, opts);
    out.latencies_us.push_back(net.network().clock().NowMicros() - start);
    if (report.ok()) {
      ++out.ok;
    } else {
      ++out.failed;
    }
  }
  out.dead_dials = net.metrics().PeerStats("xrpc://dead.example.org").requests;
  out.short_circuits = net.metrics().breaker_short_circuits();
  out.report = net.metrics().Report();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Deadline + circuit-breaker degradation — %d one-at-a-time queries\n"
      "rotating {short probe, 10-exchange scan, dead-peer fan} against a\n"
      "%sms latency spike on every 2nd post plus one dead destination;\n"
      "3 attempts / 20ms backoff; budget %sms where enabled. Latencies are\n"
      "per-query virtual-clock time; 'dead dials' counts actual POSTs\n"
      "toward the dead peer.\n\n",
      kQueries, Ms(kSpikeUs).c_str(), Ms(kDeadlineUs).c_str());

  struct Row {
    const char* name;
    bool deadline;
    bool breaker;
  };
  const Row rows[] = {
      {"no-deadline", false, false},
      {"deadline", true, false},
      {"deadline+breaker", true, true},
  };

  TablePrinter table({"scenario", "ok", "failed", "p50 ms", "p95 ms",
                      "max ms", "dead dials", "short-circuits"});
  std::string last_report;
  for (const Row& row : rows) {
    Outcome out = Run(row.deadline, row.breaker);
    table.AddRow({row.name, std::to_string(out.ok),
                  std::to_string(out.failed),
                  Ms(Percentile(out.latencies_us, 0.50)),
                  Ms(Percentile(out.latencies_us, 0.95)),
                  Ms(Percentile(out.latencies_us, 1.0)),
                  std::to_string(out.dead_dials),
                  std::to_string(out.short_circuits)});
    last_report = std::move(out.report);
  }
  table.Print();
  std::printf("\nmetrics of the deadline+breaker run:\n%s",
              last_report.c_str());
  return 0;
}
