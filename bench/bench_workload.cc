// Offered-load sweep of the open-loop multi-tenant workload driver
// (DESIGN.md §16): an interactive read tenant swept across offered loads
// while a fixed batch tenant issues 2PC updates, at two fleet sizes, with
// membership chaos off and on. All latency/goodput numbers are virtual-
// clock (modeled wire time), so the series is deterministic by seed and
// byte-reproducible across runs — the trajectory baseline future PRs
// must not regress (EXPERIMENTS.md documents the methodology).
//
// Results land in BENCH_workload.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "load/workload.h"

namespace {

constexpr int kFleets[] = {8, 16};
constexpr double kOfferedQps[] = {50.0, 200.0, 800.0};
constexpr int64_t kDurationUs = 500'000;
constexpr uint64_t kSeed = 42;

xrpc::load::WorkloadConfig MakeConfig(int fleet, double offered_qps,
                                      bool chaos) {
  xrpc::load::WorkloadConfig config;
  config.seed = kSeed;
  config.num_shards = fleet;
  config.replication_factor = 2;  // chaos kills must leave a live copy
  config.duration_us = kDurationUs;
  config.chaos = chaos;

  xrpc::load::TenantSpec interactive;
  interactive.name = "interactive";
  interactive.arrival_qps = offered_qps;
  interactive.update_fraction = 0.0;
  interactive.point_fraction = 0.9;
  interactive.zipf_s = 1.0;
  interactive.deadline_us = 500'000;
  interactive.slo_latency_us = 100'000;

  xrpc::load::TenantSpec batch;
  batch.name = "batch";
  batch.arrival_qps = 20.0;
  batch.update_fraction = 0.5;
  batch.point_fraction = 0.2;
  batch.zipf_s = 0.5;
  batch.deadline_us = 1'000'000;
  batch.slo_latency_us = 400'000;

  config.tenants.push_back(interactive);
  config.tenants.push_back(batch);
  return config;
}

}  // namespace

int main() {
  xrpc::bench::BenchJson out("workload");
  out.config()
      .Set("seed", static_cast<int64_t>(kSeed))
      .Set("duration_us", kDurationUs)
      .Set("replication_factor", 2)
      .Set("tenants", "interactive(sweep,reads,zipf1.0)+batch(20qps,50%upd)");

  std::printf(
      "Open-loop workload sweep — offered load x fleet size x chaos.\n"
      "Latency/goodput are virtual-clock (modeled wire time): deterministic\n"
      "by seed, host-independent (see EXPERIMENTS.md).\n\n");

  bool all_ok = true;
  for (int fleet : kFleets) {
    for (bool chaos : {false, true}) {
      xrpc::bench::TablePrinter table({"offered_qps", "tenant", "ok", "rej",
                                       "ddl", "fail", "p50", "p99",
                                       "goodput_qps"});
      for (double qps : kOfferedQps) {
        auto report =
            xrpc::load::RunWorkload(MakeConfig(fleet, qps, chaos));
        if (!report.ok()) {
          std::fprintf(stderr, "bench_workload: fleet=%d qps=%.0f: %s\n",
                       fleet, qps, report.status().ToString().c_str());
          all_ok = false;
          continue;
        }
        for (const xrpc::load::TenantReport& t : report->tenants) {
          char qbuf[32], gbuf[32];
          std::snprintf(qbuf, sizeof(qbuf), "%.0f", qps);
          std::snprintf(gbuf, sizeof(gbuf), "%.1f", t.goodput_qps);
          table.AddRow({qbuf, t.name, std::to_string(t.ok),
                        std::to_string(t.rejected),
                        std::to_string(t.deadline_exceeded),
                        std::to_string(t.failed),
                        xrpc::bench::Ms(t.p50_us),
                        xrpc::bench::Ms(t.p99_us), gbuf});
          out.AddRow()
              .Set("fleet", fleet)
              .Set("chaos", chaos)
              .Set("offered_qps", qps)
              .Set("tenant", t.name)
              .Set("offered", t.offered)
              .Set("ok", t.ok)
              .Set("rejected", t.rejected)
              .Set("deadline_exceeded", t.deadline_exceeded)
              .Set("failed", t.failed)
              .Set("slo_met", t.slo_met)
              .Set("p50_us", t.p50_us)
              .Set("p95_us", t.p95_us)
              .Set("p99_us", t.p99_us)
              .Set("max_us", t.max_us)
              .Set("goodput_qps", t.goodput_qps)
              .Set("chaos_events", report->chaos_events_fired);
        }
      }
      std::printf("fleet=%d chaos=%s\n", fleet, chaos ? "on" : "off");
      table.Print();
      std::printf("\n");
    }
  }

  if (!out.WriteFile("BENCH_workload.json")) {
    std::fprintf(stderr, "bench_workload: cannot write json output\n");
    return 1;
  }
  std::printf("wrote BENCH_workload.json\n");
  return all_ok ? 0 : 1;
}
