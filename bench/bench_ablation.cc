// Ablation study for the design choices DESIGN.md calls out:
//
//  1. Loop-invariant hoisting in the relational engine (Pathfinder-style
//     loop-independent subplan evaluation).
//  2. The equality-where hash-join rewrite (MonetDB executes Q7's join as
//     a join, never the cross product).
//  3. Bulk RPC itself (already measured in Table 2, repeated here on the
//     Q7 semi-join for context).
//  4. The cost of repeatable-read isolation with queryID sessions versus
//     the simple-query optimization of Section 3.2.
//
// Each row runs the same workload with one mechanism disabled; the delta
// is that mechanism's contribution.

#include <cstdio>

#include "bench/bench_util.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::ExecuteOptions;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;

constexpr char kQ7DataShipping[] = R"(
for $p in doc("persons.xml")//person,
    $ca in doc("xrpc://B/auctions.xml")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{$p, $ca/annotation}</result>)";

constexpr char kSemiJoin[] = R"(
import module namespace b="functions_b" at "b.xq";
for $p in doc("persons.xml")//person
let $ca := execute at {"xrpc://B"} {b:Q_B3(string($p/@id))}
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>)";

int64_t Run(PeerNetwork* net, const std::string& query,
            const ExecuteOptions& opts = {}) {
  auto report = net->Execute("A", query, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_ablation: %s\n",
                 report.status().ToString().c_str());
    return -1;
  }
  return xrpc::bench::TotalMicros(report.value());
}

}  // namespace

int main() {
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = 150;
  cfg.num_closed_auctions = 600;
  cfg.num_matches = 6;
  cfg.annotation_bytes = 400;

  PeerNetwork net;
  Peer* a = net.AddPeer("A", EngineKind::kRelational);
  Peer* b = net.AddPeer("B", EngineKind::kWrapper);
  (void)a->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(cfg));
  (void)b->AddDocument("auctions.xml", xrpc::xmark::GenerateAuctions(cfg));
  std::string module = xrpc::xmark::FunctionsBModuleSource("xrpc://A");
  (void)b->RegisterModule(module, "b.xq");
  (void)a->RegisterModule(module, "b.xq");

  std::printf(
      "Ablation — contribution of each engine mechanism (Q7 on %d persons\n"
      "x %d closed auctions; msec; smaller is better).\n\n",
      cfg.num_persons, cfg.num_closed_auctions);

  xrpc::bench::TablePrinter table({"configuration", "Q7 data shipping",
                                   "Q7 semi-join"});
  {
    int64_t ship = Run(&net, kQ7DataShipping);
    int64_t semi = Run(&net, kSemiJoin);
    table.AddRow({"all optimizations ON", xrpc::bench::Ms(ship),
                  xrpc::bench::Ms(semi)});
  }
  {
    ExecuteOptions opts;
    opts.disable_join_rewrite = true;
    int64_t ship = Run(&net, kQ7DataShipping, opts);
    int64_t semi = Run(&net, kSemiJoin, opts);
    table.AddRow({"hash-join rewrite OFF", xrpc::bench::Ms(ship),
                  xrpc::bench::Ms(semi)});
  }
  {
    ExecuteOptions opts;
    opts.disable_hoisting = true;
    opts.disable_join_rewrite = true;
    int64_t ship = Run(&net, kQ7DataShipping, opts);
    int64_t semi = Run(&net, kSemiJoin, opts);
    table.AddRow({"hoisting + join OFF", xrpc::bench::Ms(ship),
                  xrpc::bench::Ms(semi)});
  }
  {
    ExecuteOptions opts;
    opts.force_one_at_a_time = true;
    int64_t ship = Run(&net, kQ7DataShipping, opts);
    int64_t semi = Run(&net, kSemiJoin, opts);
    table.AddRow({"Bulk RPC OFF (one-at-a-time)", xrpc::bench::Ms(ship),
                  xrpc::bench::Ms(semi)});
  }
  table.Print();

  // Isolation ablation: the simple-query optimization skips the queryID
  // session machinery for single non-nested calls.
  std::printf(
      "\nIsolation cost (repeatable reads; 200 repetitions of one simple\n"
      "remote call; msec total).\n\n");
  const char* simple = R"(
      declare option xrpc:isolation "repeatable";
      import module namespace b="functions_b" at "b.xq";
      count(execute at {"xrpc://B"} {b:Q_B3("person0")}))";
  const char* non_simple = R"(
      declare option xrpc:isolation "repeatable";
      import module namespace b="functions_b" at "b.xq";
      (count(execute at {"xrpc://B"} {b:Q_B3("person0")}),
       count(execute at {"xrpc://B"} {b:Q_B3("person0")})))";
  int64_t simple_us = 0, session_us = 0;
  for (int i = 0; i < 200; ++i) simple_us += Run(&net, simple);
  size_t sessions_after_simple = b->service().isolation().active_sessions();
  for (int i = 0; i < 200; ++i) session_us += Run(&net, non_simple);
  size_t sessions_after_two = b->service().isolation().active_sessions();
  xrpc::bench::TablePrinter iso({"query class", "total msec", "sessions"});
  iso.AddRow({"simple (no queryID, Sec 3.2)", xrpc::bench::Ms(simple_us),
              std::to_string(sessions_after_simple)});
  iso.AddRow({"two calls (queryID + snapshot)", xrpc::bench::Ms(session_us),
              std::to_string(sessions_after_two)});
  iso.Print();
  std::printf(
      "\nNote: the two-call query pays the snapshot clone at B plus twice\n"
      "the calls; its sessions expire after the declared timeout.\n");
  return 0;
}
