// Reproduces Table 2: "XRPC Performance (msec): loop-lifted vs
// one-at-a-time; function cache vs no function cache".
//
// The echoVoid function is called over XRPC from a for-loop with $x
// iterations. Bulk RPC (the loop-lifted default) sends ONE request per
// destination regardless of $x; the one-at-a-time mechanism sends $x
// synchronous requests. The function cache skips per-request module
// recompilation at the server (and query translation at the client).
//
// Paper (2 GHz Athlon64, 1 Gb/s):            ours: same 2x2x2 grid; the
//               No Cache     With Cache      claims that must hold are
//               x=1  x=1000  x=1  x=1000     (i) bulk is ~flat in x,
//  one-at-a-time 133  2696    2.6  2696      (ii) one-at-a-time scales
//  bulk          130   134    2.7     4      ~linearly, (iii) the cache
//                                            removes a constant overhead.

#include <cstdio>

#include "bench/bench_util.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::ExecuteOptions;
using xrpc::core::ExecutionReport;
using xrpc::core::PeerNetwork;

// A realistically sized module: echoVoid plus the utility functions a
// deployed module carries. The "No Function Cache" configuration re-parses
// all of it on every request, which is the translation overhead the
// function cache eliminates (MonetDB's was ~130 ms; ours is far smaller
// because parsing is the only translation step we must repeat).
std::string PaddedTestModule() {
  std::string module = xrpc::xmark::TestModuleSource();
  // TestModuleSource ends with ")" of a raw string; append more functions.
  for (int i = 0; i < 120; ++i) {
    module += "declare function tst:util" + std::to_string(i) +
              "($a as xs:integer, $b as xs:integer) as xs:integer\n"
              "{ if ($a > $b) then $a - $b else ($a + $b) * " +
              std::to_string(i + 1) + " };\n";
  }
  return module;
}

std::string EchoVoidQuery(int x) {
  return "import module namespace t=\"test\" at "
         "\"http://x.example.org/test.xq\";\n"
         "for $i in (1 to " +
         std::to_string(x) +
         ")\nreturn execute at {\"xrpc://y.example.org\"} {t:echoVoid()}";
}

// Runs echoVoid with the given engine/cache/dispatch configuration and
// returns total modeled latency in microseconds.
int64_t RunConfig(bool function_cache, bool bulk, int x) {
  xrpc::net::NetworkProfile lan;  // defaults model the paper's 1 Gb/s LAN
  PeerNetwork net(lan);
  EngineKind kind = function_cache ? EngineKind::kRelational
                                   : EngineKind::kRelationalNoCache;
  net.AddPeer("p0.example.org", kind);
  xrpc::core::Peer* y = net.AddPeer("y.example.org", kind);
  (void)y->RegisterModule(PaddedTestModule(),
                          "http://x.example.org/test.xq");
  ExecuteOptions opts;
  opts.force_one_at_a_time = !bulk;
  // Warm-up run excluded from timing (plan caches, lazily shredded docs).
  (void)net.Execute("p0.example.org", EchoVoidQuery(1), opts);
  // Small $x runs are averaged to get stable sub-millisecond numbers.
  int reps = x <= 10 ? 50 : 1;
  int64_t total = 0;
  for (int r = 0; r < reps; ++r) {
    auto report = net.Execute("p0.example.org", EchoVoidQuery(x), opts);
    if (!report.ok()) {
      std::fprintf(stderr, "bench_table2: %s\n",
                   report.status().ToString().c_str());
      return -1;
    }
    total += xrpc::bench::TotalMicros(report.value());
  }
  return total / reps;
}

}  // namespace

int main() {
  std::printf(
      "Table 2 — XRPC performance (msec): loop-lifted (Bulk RPC) vs\n"
      "one-at-a-time; function cache vs no function cache. echoVoid()\n"
      "called over XRPC from a for-loop of $x iterations.\n\n");

  xrpc::bench::TablePrinter table(
      {"mechanism", "NoCache $x=1", "NoCache $x=1000", "Cache $x=1",
       "Cache $x=1000"});
  struct Row {
    const char* name;
    bool bulk;
  };
  for (const Row& row : {Row{"one-at-a-time", false}, Row{"bulk", true}}) {
    table.AddRow({row.name,
                  xrpc::bench::Ms(RunConfig(false, row.bulk, 1)),
                  xrpc::bench::Ms(RunConfig(false, row.bulk, 1000)),
                  xrpc::bench::Ms(RunConfig(true, row.bulk, 1)),
                  xrpc::bench::Ms(RunConfig(true, row.bulk, 1000))});
  }
  table.Print();

  std::printf(
      "\nShape checks (paper): bulk $x=1000 ~= bulk $x=1 (latency is\n"
      "amortized); one-at-a-time $x=1000 ~= 1000 x one round-trip; the\n"
      "function cache removes a constant per-request translation cost.\n");
  return 0;
}
