// Reproduces Table 3: "Saxon latency via the XRPC wrapper (msec)" — the
// wrapper-served engine's total/compile/treebuild/exec breakdown for
// echoVoid and getPerson at $x = 1 and $x = 1000 calls.
//
// Paper (Saxon-B 8.7):        total  compile  treebuild  exec
//   echoVoid  $x=1              275      178        4.6    92
//   echoVoid  $x=1000           590      178         86   325
//   getPerson $x=1             4276      185       1956  2134
//   getPerson $x=1000          8167      185       1973  6010
//
// Shape claims: (i) Bulk RPC amortizes — 1000x the work costs ~2x the
// total; (ii) for getPerson the exec growth is far smaller than for
// echoVoid relative to the call count, because the bulk selection runs as
// a (hash) join over the document.

#include <cstdio>

#include "bench/bench_util.h"
#include "wrapper/wrapper_engine.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::ExecutionReport;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;

struct Measurement {
  int64_t total_us = 0;
  xrpc::wrapper::WrapperEngine::Timings timings;
};

Measurement Run(PeerNetwork* net, Peer* saxon, const std::string& query) {
  saxon->wrapper_engine()->ResetTimings();
  auto report = net->Execute("p0.example.org", query);
  Measurement m;
  if (!report.ok()) {
    std::fprintf(stderr, "bench_table3: %s\n",
                 report.status().ToString().c_str());
    m.total_us = -1;
    return m;
  }
  m.total_us = xrpc::bench::TotalMicros(report.value());
  m.timings = saxon->wrapper_engine()->total_timings();
  return m;
}

std::string EchoVoidQuery(int x) {
  return "import module namespace t=\"test\" at \"test.xq\";\n"
         "for $i in (1 to " +
         std::to_string(x) +
         ")\nreturn execute at {\"xrpc://saxon.example.org\"} "
         "{t:echoVoid()}";
}

std::string GetPersonQuery(int x, int num_persons) {
  // Each iteration asks for a different person id (mod the id space), the
  // bulk getPerson pattern of Section 4.
  return "import module namespace func=\"functions\" at \"functions.xq\";\n"
         "for $i in (1 to " +
         std::to_string(x) +
         ")\nreturn execute at {\"xrpc://saxon.example.org\"} "
         "{func:getPerson(\"persons.xml\", concat(\"person\", "
         "string($i mod " +
         std::to_string(num_persons) + ")))}";
}

}  // namespace

int main() {
  constexpr int kNumPersons = 2000;  // scaled XMark persons document

  PeerNetwork net;
  net.AddPeer("p0.example.org", EngineKind::kRelational);
  Peer* saxon = net.AddPeer("saxon.example.org", EngineKind::kWrapper);
  (void)saxon->RegisterModule(xrpc::xmark::TestModuleSource(), "test.xq");
  (void)saxon->RegisterModule(xrpc::xmark::GetPersonModuleSource(),
                              "functions.xq");
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = kNumPersons;
  (void)saxon->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(cfg));

  std::printf(
      "Table 3 — wrapper-served engine latency (msec), Bulk RPC via the\n"
      "XRPC wrapper (persons.xml with %d persons).\n\n",
      kNumPersons);

  xrpc::bench::TablePrinter table(
      {"workload", "total", "compile", "treebuild", "exec"});
  struct Work {
    std::string name;
    std::string query;
  };
  std::vector<Work> workloads = {
      {"echoVoid $x=1", EchoVoidQuery(1)},
      {"echoVoid $x=1000", EchoVoidQuery(1000)},
      {"getPerson $x=1", GetPersonQuery(1, kNumPersons)},
      {"getPerson $x=1000", GetPersonQuery(1000, kNumPersons)},
  };
  for (const Work& w : workloads) {
    Measurement m = Run(&net, saxon, w.query);
    table.AddRow({w.name, xrpc::bench::Ms(m.total_us),
                  xrpc::bench::Ms(m.timings.compile_us),
                  xrpc::bench::Ms(m.timings.treebuild_us),
                  xrpc::bench::Ms(m.timings.exec_us)});
  }
  table.Print();

  std::printf(
      "\nShape checks (paper): total($x=1000) is a small multiple of\n"
      "total($x=1) for both functions; getPerson's bulk exec grows far\n"
      "less than 1000x because the wrapper query turns the per-call\n"
      "selection into a join over the persons document (join detection).\n");
  return 0;
}
