// Reproduces Table 4: "Execution time (msecs) of query Q7 distributed on
// MonetDB/XQuery and Saxon" for the four strategies of Section 5: data
// shipping, predicate push-down, execution relocation, and distributed
// semi-join.
//
// Peer A runs the relational engine (the MonetDB/XQuery role) and stores
// persons.xml; peer B runs the interpreter behind the XRPC wrapper (the
// Saxon role) and stores auctions.xml. Q7 joins persons with closed
// auctions on buyer/@person (6 matches).
//
// Paper:                      total   MonetDB   Saxon(+net)
//   data shipping             28122     16457      11665
//   predicate push-down       25799      2961      22838
//   execution relocation      53184        69      53115
//   distributed semi-join     10278       118      10160
//
// Shape claims: semi-join wins; push-down beats data shipping;
// relocation is worst (it ships persons AND tasks the slower engine with
// the whole join); MonetDB time collapses for relocation/semi-join.

// A second section extends the strategy comparison beyond the paper: the
// same Q7 semi-join run N-way against a hash-sharded auctions collection
// ("shard:auctions.xml", DESIGN.md §13), comparing 1 shard vs 16 shards.
// Every call carries the partition key, so the catalog prunes each call
// to one shard: 16 shards means each peer scans 1/16 of the data and the
// per-shard Bulk RPCs dispatch in parallel. Results land in
// BENCH_shard_scaleup.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace {

using xrpc::core::EngineKind;
using xrpc::core::ExecutionReport;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;

constexpr char kImportB[] =
    "import module namespace b=\"functions_b\" at "
    "\"http://example.org/b.xq\";\n";

// Q7 — data shipping: fetch auctions.xml from B, join locally at A.
const char kDataShipping[] = R"(
for $p in doc("persons.xml")//person,
    $ca in doc("xrpc://B/auctions.xml")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{$p, $ca/annotation}</result>)";

// Q7_1 — predicate push-down: B returns only the closed_auction nodes.
const char kPushdownBody[] = R"(
for $p in doc("persons.xml")//person,
    $ca in execute at {"xrpc://B"} {b:Q_B1()}
where $p/@id = $ca/buyer/@person
return <result>{$p, $ca/annotation}</result>)";

// Q7_2 — execution relocation: B runs the whole join (fetching persons
// from A via data shipping inside Q_B2).
const char kRelocationBody[] = R"(
execute at {"xrpc://B"} {b:Q_B2()})";

// Q7_3 — distributed semi-join: ship each person @id to B, which returns
// only that buyer's closed auctions.
const char kSemiJoinBody[] = R"(
for $p in doc("persons.xml")//person
let $ca := execute at {"xrpc://B"} {b:Q_B3(string($p/@id))}
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>)";

struct StrategyResult {
  int64_t total_us = 0;
  int64_t monet_us = 0;   // processing time at peer A (p0)
  int64_t saxon_us = 0;   // total - A time (includes network), as the paper
  size_t results = 0;
};

StrategyResult Run(PeerNetwork* net, const std::string& query) {
  auto report = net->Execute("A", query);
  StrategyResult r;
  if (!report.ok()) {
    std::fprintf(stderr, "bench_table4: %s\n",
                 report.status().ToString().c_str());
    r.total_us = -1;
    return r;
  }
  r.total_us = xrpc::bench::TotalMicros(report.value());
  r.monet_us = report->wall_micros - report->remote_micros;
  r.saxon_us = r.total_us - r.monet_us;
  r.results = report->result.size();
  return r;
}

}  // namespace

int main() {
  // Scaled XMark split (documented in EXPERIMENTS.md): the paper used a
  // 1.1 MB persons fragment (250 persons) and a 50 MB auctions fragment
  // (4875 closed auctions); we keep the 250 persons and scale auctions to
  // keep the in-process run in seconds while preserving the asymmetry.
  // The paper's auctions.xml is ~50 MB for 4875 closed auctions (~10 KB
  // each, mostly XMark description text). We keep the 250 persons and the
  // per-auction payload ratio, scaling the auction count to keep the
  // in-process run in seconds.
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = 250;           // as the paper (1.1 MB persons.xml)
  cfg.num_closed_auctions = 4875;  // as the paper
  cfg.num_matches = 6;             // as the paper
  cfg.annotation_bytes = 1200;     // scaled from ~10 KB to keep runs short
  cfg.num_items = 800;
  cfg.num_open_auctions = 500;
  cfg.item_description_bytes = 1500;

  PeerNetwork net;
  Peer* a = net.AddPeer("A", EngineKind::kRelational);
  Peer* b = net.AddPeer("B", EngineKind::kWrapper);
  (void)a->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(cfg));
  (void)b->AddDocument("auctions.xml", xrpc::xmark::GenerateAuctions(cfg));
  std::string b_module = xrpc::xmark::FunctionsBModuleSource("xrpc://A");
  (void)b->RegisterModule(b_module, "http://example.org/b.xq");
  (void)a->RegisterModule(b_module, "http://example.org/b.xq");

  std::printf(
      "Table 4 — execution time (msec) of Q7 distributed over a\n"
      "relational peer A (persons.xml, %d persons) and a wrapper peer B\n"
      "(auctions.xml, %d closed auctions, %d matches).\n\n",
      cfg.num_persons, cfg.num_closed_auctions, cfg.num_matches);

  xrpc::bench::TablePrinter table(
      {"strategy", "total", "peerA(MonetDB)", "peerB(Saxon)+net", "results"});
  struct Strategy {
    const char* name;
    std::string query;
  };
  std::vector<Strategy> strategies = {
      {"data shipping", kDataShipping},
      {"predicate push-down", std::string(kImportB) + kPushdownBody},
      {"execution relocation", std::string(kImportB) + kRelocationBody},
      {"distributed semi-join", std::string(kImportB) + kSemiJoinBody},
  };
  for (const Strategy& s : strategies) {
    StrategyResult r = Run(&net, s.query);
    table.AddRow({s.name, xrpc::bench::Ms(r.total_us),
                  xrpc::bench::Ms(r.monet_us), xrpc::bench::Ms(r.saxon_us),
                  std::to_string(r.results)});
  }
  table.Print();

  std::printf(
      "\nShape checks (paper): the distributed semi-join is fastest (it\n"
      "ships the least data and one Bulk RPC), push-down beats data\n"
      "shipping, and execution relocation is slowest (persons shipped to\n"
      "the slower engine, which then runs the whole join).\n");

  // --- Shard scale-up: Q7 semi-join over a hash-sharded collection. ---
  const std::string shard_semijoin = std::string(kImportB) + R"(
for $p in doc("persons.xml")//person
let $ca := execute at {"shard:auctions.xml"} {b:Q_B3(string($p/@id))}
return if (empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>)";

  std::printf(
      "\nShard scale-up — the same semi-join N-way against\n"
      "shard:auctions.xml (interpreter shard peers, partition-key pruning,\n"
      "parallel dispatch):\n\n");

  struct ShardRun {
    int shards = 0;
    int64_t total_us = 0;
    int64_t requests = 0;
    size_t results = 0;
  };
  std::vector<ShardRun> runs;
  xrpc::bench::TablePrinter shard_table(
      {"shards", "total", "requests", "results"});
  for (int shards : {1, 16}) {
    PeerNetwork snet;
    snet.EnableParallelDispatch(16);
    xrpc::xmark::ShardLoadOptions sopts;
    sopts.num_shards = shards;
    auto loaded = xrpc::xmark::LoadShardedXmark(&snet, cfg, sopts);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bench_table4: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    Peer* p0 = snet.AddPeer("p0", EngineKind::kRelational);
    (void)p0->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(cfg));
    (void)p0->RegisterModule(b_module, "http://example.org/b.xq");
    auto report = snet.Execute("p0", shard_semijoin);
    if (!report.ok()) {
      std::fprintf(stderr, "bench_table4: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    ShardRun run;
    run.shards = shards;
    run.total_us = xrpc::bench::TotalMicros(report.value());
    run.requests = report->requests_sent;
    run.results = report->result.size();
    runs.push_back(run);
    shard_table.AddRow({std::to_string(run.shards),
                        xrpc::bench::Ms(run.total_us),
                        std::to_string(run.requests),
                        std::to_string(run.results)});
  }
  shard_table.Print();
  double speedup = runs[1].total_us > 0
                       ? static_cast<double>(runs[0].total_us) /
                             static_cast<double>(runs[1].total_us)
                       : 0.0;
  std::printf(
      "\n16-shard speedup over 1 shard: %.1fx (each pruned call scans\n"
      "1/16 of the collection; per-shard Bulk RPCs run concurrently).\n",
      speedup);

  FILE* json = std::fopen("BENCH_shard_scaleup.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"shard_scaleup\",\n"
                 "  \"query\": \"Q7 distributed semi-join over "
                 "shard:auctions.xml (partition-key pruned)\",\n"
                 "  \"config\": {\"persons\": %d, \"closed_auctions\": %d, "
                 "\"matches\": %d, \"shard_engine\": \"interpreter\", "
                 "\"p0_engine\": \"relational\"},\n"
                 "  \"runs\": [\n",
                 cfg.num_persons, cfg.num_closed_auctions, cfg.num_matches);
    for (size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(json,
                   "    {\"shards\": %d, \"total_us\": %lld, "
                   "\"requests\": %lld, \"results\": %zu}%s\n",
                   runs[i].shards, static_cast<long long>(runs[i].total_us),
                   static_cast<long long>(runs[i].requests), runs[i].results,
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"speedup_16_shards_over_1\": %.2f\n"
                 "}\n",
                 speedup);
    std::fclose(json);
    std::printf("wrote BENCH_shard_scaleup.json\n");
  }
  return 0;
}
