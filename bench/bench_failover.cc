// Failover-cost benchmark (DESIGN.md §14): the shard broadcast workload
// over a replicated 4-shard deployment, run healthy, with shard 0's
// primary dead (every query pays the failed dial plus a replica
// re-exchange), and dead with the per-peer circuit breaker (after one
// failure the dead dial collapses to an instant local refusal and the
// subcall goes straight to the replica). Latencies are per-query
// virtual-clock time, so every row is deterministic. Emits
// BENCH_failover.json.
//
// A second section measures write availability (DESIGN.md §17): updating
// broadcasts enlist EVERY copy of every touched shard as a 2PC
// participant, so — unlike reads — a write cannot fail over around a dead
// copy. Rows sweep rf ∈ {1,2,3} healthy and with one storage peer dead,
// reporting update success rate and latency percentiles; the dead-peer
// rows show the at-most-once trade (aborts, fast) while the healthy rows
// price the extra participants per replica.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace {

using xrpc::bench::Ms;
using xrpc::bench::TablePrinter;
using xrpc::core::EngineKind;
using xrpc::core::ExecuteOptions;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;
using xrpc::net::CircuitBreaker;

constexpr int kQueries = 40;
constexpr int kNumShards = 4;
constexpr int64_t kDeadlineUs = 2'000'000;

constexpr char kQuery[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n"
    "execute at {\"shard:auctions.xml\"} {b:Q_B1()}";

xrpc::xmark::XmarkConfig Config() {
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = 60;
  cfg.num_closed_auctions = 120;
  cfg.num_matches = 12;
  cfg.annotation_bytes = 64;
  return cfg;
}

struct Outcome {
  std::vector<int64_t> latencies_us;
  int ok = 0;
  int failed = 0;
  int64_t dead_dials = 0;
  int64_t failover_attempts = 0;
  int64_t failover_successes = 0;
  int64_t short_circuits = 0;
  std::string report;
};

int64_t Percentile(std::vector<int64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

Outcome Run(bool kill_primary, bool with_breaker) {
  PeerNetwork net;
  xrpc::xmark::ShardLoadOptions opts;
  opts.num_shards = kNumShards;
  opts.replication_factor = 2;
  auto loaded = xrpc::xmark::LoadShardedXmark(&net, Config(), opts);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    std::exit(1);
  }
  Peer* p0 = net.AddPeer("p0", EngineKind::kRelational);
  (void)p0->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(Config()));
  (void)p0->RegisterModule(xrpc::xmark::FunctionsBModuleSource(p0->uri()),
                           "b.xq");
  if (with_breaker) {
    CircuitBreaker::Policy policy;
    policy.failure_threshold = 1;
    policy.cooldown_us = 60'000'000;  // stays open for the whole run
    net.EnableCircuitBreaker(policy);
  }
  const std::string dead_uri = loaded->peers[0]->uri();
  if (kill_primary) loaded->peers[0]->Disconnect();

  ExecuteOptions exec;
  exec.deadline_us = kDeadlineUs;
  Outcome out;
  for (int i = 0; i < kQueries; ++i) {
    const int64_t start = net.network().clock().NowMicros();
    auto report = net.Execute("p0", kQuery, exec);
    out.latencies_us.push_back(net.network().clock().NowMicros() - start);
    if (report.ok()) {
      ++out.ok;
    } else {
      ++out.failed;
    }
  }
  out.dead_dials = net.metrics().PeerStats(dead_uri).requests;
  out.failover_attempts = net.metrics().failover_attempts();
  out.failover_successes = net.metrics().failover_successes();
  out.short_circuits = net.metrics().breaker_short_circuits();
  out.report = net.metrics().Report();
  return out;
}

// -- Write availability (DESIGN.md §17) -------------------------------------

constexpr int kWrites = 20;

// Each shard peer resolves doc("auctions.xml") to its own fragment, so the
// insert lands locally at every participant.
constexpr char kUpdModule[] = R"(
  module namespace u = "upd_bench";
  declare updating function u:stamp()
  { insert nodes <stamp/> into doc("auctions.xml")/site };
)";

constexpr char kUpdQuery[] =
    "declare option xrpc:isolation \"repeatable\";\n"
    "declare option xrpc:timeout \"60\";\n"
    "import module namespace u=\"upd_bench\" at \"u.xq\";\n"
    "execute at {\"shard:auctions.xml\"} {u:stamp()}";

struct WriteOutcome {
  std::vector<int64_t> latencies_us;
  int committed = 0;
  int aborted = 0;
};

WriteOutcome RunWrites(int rf, bool kill_copy) {
  PeerNetwork net;
  xrpc::xmark::ShardLoadOptions opts;
  opts.num_shards = kNumShards;
  opts.replication_factor = rf;
  auto loaded = xrpc::xmark::LoadShardedXmark(&net, Config(), opts);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    std::exit(1);
  }
  Peer* p0 = net.AddPeer("p0", EngineKind::kInterpreter);
  for (Peer* p : loaded->peers) {
    if (!p->RegisterModule(kUpdModule, "u.xq").ok()) std::exit(1);
  }
  if (!p0->RegisterModule(kUpdModule, "u.xq").ok()) std::exit(1);
  // Ring placement: peers[1] is shard 1's primary and — once rf >= 2 —
  // a replica of shard 0. Any dead copy aborts the whole broadcast.
  if (kill_copy) loaded->peers[1]->Disconnect();

  ExecuteOptions exec;
  exec.deadline_us = kDeadlineUs;
  WriteOutcome out;
  for (int i = 0; i < kWrites; ++i) {
    const int64_t start = net.network().clock().NowMicros();
    auto report = net.Execute("p0", kUpdQuery, exec);
    out.latencies_us.push_back(net.network().clock().NowMicros() - start);
    if (report.ok() && report->committed) {
      ++out.committed;
    } else {
      ++out.aborted;
    }
  }
  return out;
}

std::string Pct(int num, int den) {
  if (den == 0) return "n/a";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d%%", 100 * num / den);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Replica failover cost — %d broadcast queries over %d shards with\n"
      "replication factor 2 (ring placement), %sms deadline budget.\n"
      "'primary0 dials' counts POSTs attempted toward shard 0's primary; with\n"
      "the breaker they stop after the first failure (local refusal).\n\n",
      kQueries, kNumShards, Ms(kDeadlineUs).c_str());

  struct Row {
    const char* name;
    bool kill;
    bool breaker;
  };
  const Row rows[] = {
      {"healthy", false, false},
      {"dead-primary", true, false},
      {"dead-primary+breaker", true, true},
  };

  xrpc::bench::BenchJson json("failover");
  json.config()
      .Set("query", "broadcast execute at shard:auctions.xml (Q_B1)")
      .Set("queries", kQueries)
      .Set("shards", kNumShards)
      .Set("replication_factor", 2)
      .Set("deadline_us", kDeadlineUs);

  TablePrinter table({"scenario", "ok", "failed", "p50 ms", "p95 ms", "max ms",
                      "primary0 dials", "failovers", "short-circuits"});
  std::string last_report;
  for (const Row& row : rows) {
    Outcome out = Run(row.kill, row.breaker);
    table.AddRow({row.name, std::to_string(out.ok), std::to_string(out.failed),
                  Ms(Percentile(out.latencies_us, 0.50)),
                  Ms(Percentile(out.latencies_us, 0.95)),
                  Ms(Percentile(out.latencies_us, 1.0)),
                  std::to_string(out.dead_dials),
                  std::to_string(out.failover_successes),
                  std::to_string(out.short_circuits)});
    json.AddRow()
        .Set("scenario", row.name)
        .Set("ok", out.ok)
        .Set("failed", out.failed)
        .Set("p50_us", Percentile(out.latencies_us, 0.50))
        .Set("p95_us", Percentile(out.latencies_us, 0.95))
        .Set("max_us", Percentile(out.latencies_us, 1.0))
        .Set("primary0_dials", out.dead_dials)
        .Set("failover_attempts", out.failover_attempts)
        .Set("failover_successes", out.failover_successes)
        .Set("short_circuits", out.short_circuits);
    last_report = std::move(out.report);
  }
  table.Print();
  std::printf("\nmetrics of the dead-primary+breaker run:\n%s",
              last_report.c_str());

  std::printf(
      "\nWrite availability — %d updating broadcasts (all-copies 2PC) per\n"
      "row; 'copy-dead' disconnects one storage peer. Writes enlist every\n"
      "replica, so a single dead copy aborts them all (at-most-once, no\n"
      "update failover) — reads above keep failing over regardless.\n\n",
      kWrites);
  TablePrinter wtable({"scenario", "rf", "committed", "aborted", "success",
                       "p50 ms", "p95 ms", "max ms"});
  for (int rf = 1; rf <= 3; ++rf) {
    for (bool kill : {false, true}) {
      WriteOutcome out = RunWrites(rf, kill);
      const char* scenario = kill ? "copy-dead" : "healthy";
      wtable.AddRow({scenario, std::to_string(rf),
                     std::to_string(out.committed),
                     std::to_string(out.aborted),
                     Pct(out.committed, kWrites),
                     Ms(Percentile(out.latencies_us, 0.50)),
                     Ms(Percentile(out.latencies_us, 0.95)),
                     Ms(Percentile(out.latencies_us, 1.0))});
      json.AddRow()
          .Set("scenario", std::string("write-") + scenario)
          .Set("replication_factor", rf)
          .Set("writes", kWrites)
          .Set("committed", out.committed)
          .Set("aborted", out.aborted)
          .Set("p50_us", Percentile(out.latencies_us, 0.50))
          .Set("p95_us", Percentile(out.latencies_us, 0.95))
          .Set("max_us", Percentile(out.latencies_us, 1.0));
    }
  }
  wtable.Print();

  if (json.WriteFile("BENCH_failover.json")) {
    std::printf("wrote BENCH_failover.json\n");
  }
  return 0;
}
