// Failover-cost benchmark (DESIGN.md §14): the shard broadcast workload
// over a replicated 4-shard deployment, run healthy, with shard 0's
// primary dead (every query pays the failed dial plus a replica
// re-exchange), and dead with the per-peer circuit breaker (after one
// failure the dead dial collapses to an instant local refusal and the
// subcall goes straight to the replica). Latencies are per-query
// virtual-clock time, so every row is deterministic. Emits
// BENCH_failover.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace {

using xrpc::bench::Ms;
using xrpc::bench::TablePrinter;
using xrpc::core::EngineKind;
using xrpc::core::ExecuteOptions;
using xrpc::core::Peer;
using xrpc::core::PeerNetwork;
using xrpc::net::CircuitBreaker;

constexpr int kQueries = 40;
constexpr int kNumShards = 4;
constexpr int64_t kDeadlineUs = 2'000'000;

constexpr char kQuery[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n"
    "execute at {\"shard:auctions.xml\"} {b:Q_B1()}";

xrpc::xmark::XmarkConfig Config() {
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = 60;
  cfg.num_closed_auctions = 120;
  cfg.num_matches = 12;
  cfg.annotation_bytes = 64;
  return cfg;
}

struct Outcome {
  std::vector<int64_t> latencies_us;
  int ok = 0;
  int failed = 0;
  int64_t dead_dials = 0;
  int64_t failover_attempts = 0;
  int64_t failover_successes = 0;
  int64_t short_circuits = 0;
  std::string report;
};

int64_t Percentile(std::vector<int64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

Outcome Run(bool kill_primary, bool with_breaker) {
  PeerNetwork net;
  xrpc::xmark::ShardLoadOptions opts;
  opts.num_shards = kNumShards;
  opts.replication_factor = 2;
  auto loaded = xrpc::xmark::LoadShardedXmark(&net, Config(), opts);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    std::exit(1);
  }
  Peer* p0 = net.AddPeer("p0", EngineKind::kRelational);
  (void)p0->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(Config()));
  (void)p0->RegisterModule(xrpc::xmark::FunctionsBModuleSource(p0->uri()),
                           "b.xq");
  if (with_breaker) {
    CircuitBreaker::Policy policy;
    policy.failure_threshold = 1;
    policy.cooldown_us = 60'000'000;  // stays open for the whole run
    net.EnableCircuitBreaker(policy);
  }
  const std::string dead_uri = loaded->peers[0]->uri();
  if (kill_primary) loaded->peers[0]->Disconnect();

  ExecuteOptions exec;
  exec.deadline_us = kDeadlineUs;
  Outcome out;
  for (int i = 0; i < kQueries; ++i) {
    const int64_t start = net.network().clock().NowMicros();
    auto report = net.Execute("p0", kQuery, exec);
    out.latencies_us.push_back(net.network().clock().NowMicros() - start);
    if (report.ok()) {
      ++out.ok;
    } else {
      ++out.failed;
    }
  }
  out.dead_dials = net.metrics().PeerStats(dead_uri).requests;
  out.failover_attempts = net.metrics().failover_attempts();
  out.failover_successes = net.metrics().failover_successes();
  out.short_circuits = net.metrics().breaker_short_circuits();
  out.report = net.metrics().Report();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Replica failover cost — %d broadcast queries over %d shards with\n"
      "replication factor 2 (ring placement), %sms deadline budget.\n"
      "'primary0 dials' counts POSTs attempted toward shard 0's primary; with\n"
      "the breaker they stop after the first failure (local refusal).\n\n",
      kQueries, kNumShards, Ms(kDeadlineUs).c_str());

  struct Row {
    const char* name;
    bool kill;
    bool breaker;
  };
  const Row rows[] = {
      {"healthy", false, false},
      {"dead-primary", true, false},
      {"dead-primary+breaker", true, true},
  };

  xrpc::bench::BenchJson json("failover");
  json.config()
      .Set("query", "broadcast execute at shard:auctions.xml (Q_B1)")
      .Set("queries", kQueries)
      .Set("shards", kNumShards)
      .Set("replication_factor", 2)
      .Set("deadline_us", kDeadlineUs);

  TablePrinter table({"scenario", "ok", "failed", "p50 ms", "p95 ms", "max ms",
                      "primary0 dials", "failovers", "short-circuits"});
  std::string last_report;
  for (const Row& row : rows) {
    Outcome out = Run(row.kill, row.breaker);
    table.AddRow({row.name, std::to_string(out.ok), std::to_string(out.failed),
                  Ms(Percentile(out.latencies_us, 0.50)),
                  Ms(Percentile(out.latencies_us, 0.95)),
                  Ms(Percentile(out.latencies_us, 1.0)),
                  std::to_string(out.dead_dials),
                  std::to_string(out.failover_successes),
                  std::to_string(out.short_circuits)});
    json.AddRow()
        .Set("scenario", row.name)
        .Set("ok", out.ok)
        .Set("failed", out.failed)
        .Set("p50_us", Percentile(out.latencies_us, 0.50))
        .Set("p95_us", Percentile(out.latencies_us, 0.95))
        .Set("max_us", Percentile(out.latencies_us, 1.0))
        .Set("primary0_dials", out.dead_dials)
        .Set("failover_attempts", out.failover_attempts)
        .Set("failover_successes", out.failover_successes)
        .Set("short_circuits", out.short_circuits);
    last_report = std::move(out.report);
  }
  table.Print();
  std::printf("\nmetrics of the dead-primary+breaker run:\n%s",
              last_report.c_str());

  if (json.WriteFile("BENCH_failover.json")) {
    std::printf("wrote BENCH_failover.json\n");
  }
  return 0;
}
