# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("xml")
subdirs("xdm")
subdirs("xquery")
subdirs("algebra")
subdirs("shred")
subdirs("soap")
subdirs("net")
subdirs("compiler")
subdirs("server")
subdirs("wrapper")
subdirs("core")
subdirs("xmark")
