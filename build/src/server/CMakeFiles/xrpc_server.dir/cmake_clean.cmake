file(REMOVE_RECURSE
  "CMakeFiles/xrpc_server.dir/database.cc.o"
  "CMakeFiles/xrpc_server.dir/database.cc.o.d"
  "CMakeFiles/xrpc_server.dir/engine.cc.o"
  "CMakeFiles/xrpc_server.dir/engine.cc.o.d"
  "CMakeFiles/xrpc_server.dir/isolation.cc.o"
  "CMakeFiles/xrpc_server.dir/isolation.cc.o.d"
  "CMakeFiles/xrpc_server.dir/module_registry.cc.o"
  "CMakeFiles/xrpc_server.dir/module_registry.cc.o.d"
  "CMakeFiles/xrpc_server.dir/remote_docs.cc.o"
  "CMakeFiles/xrpc_server.dir/remote_docs.cc.o.d"
  "CMakeFiles/xrpc_server.dir/rpc_client.cc.o"
  "CMakeFiles/xrpc_server.dir/rpc_client.cc.o.d"
  "CMakeFiles/xrpc_server.dir/wsat.cc.o"
  "CMakeFiles/xrpc_server.dir/wsat.cc.o.d"
  "CMakeFiles/xrpc_server.dir/xrpc_service.cc.o"
  "CMakeFiles/xrpc_server.dir/xrpc_service.cc.o.d"
  "libxrpc_server.a"
  "libxrpc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
