# Empty compiler generated dependencies file for xrpc_server.
# This may be replaced when dependencies are built.
