file(REMOVE_RECURSE
  "libxrpc_server.a"
)
