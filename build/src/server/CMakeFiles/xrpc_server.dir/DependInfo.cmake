
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/database.cc" "src/server/CMakeFiles/xrpc_server.dir/database.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/database.cc.o.d"
  "/root/repo/src/server/engine.cc" "src/server/CMakeFiles/xrpc_server.dir/engine.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/engine.cc.o.d"
  "/root/repo/src/server/isolation.cc" "src/server/CMakeFiles/xrpc_server.dir/isolation.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/isolation.cc.o.d"
  "/root/repo/src/server/module_registry.cc" "src/server/CMakeFiles/xrpc_server.dir/module_registry.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/module_registry.cc.o.d"
  "/root/repo/src/server/remote_docs.cc" "src/server/CMakeFiles/xrpc_server.dir/remote_docs.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/remote_docs.cc.o.d"
  "/root/repo/src/server/rpc_client.cc" "src/server/CMakeFiles/xrpc_server.dir/rpc_client.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/rpc_client.cc.o.d"
  "/root/repo/src/server/wsat.cc" "src/server/CMakeFiles/xrpc_server.dir/wsat.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/wsat.cc.o.d"
  "/root/repo/src/server/xrpc_service.cc" "src/server/CMakeFiles/xrpc_server.dir/xrpc_service.cc.o" "gcc" "src/server/CMakeFiles/xrpc_server.dir/xrpc_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xrpc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xrpc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/xrpc_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/xrpc_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/xrpc_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xrpc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
