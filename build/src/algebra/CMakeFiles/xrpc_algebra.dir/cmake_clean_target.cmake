file(REMOVE_RECURSE
  "libxrpc_algebra.a"
)
