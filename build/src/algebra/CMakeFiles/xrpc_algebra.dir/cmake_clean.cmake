file(REMOVE_RECURSE
  "CMakeFiles/xrpc_algebra.dir/table.cc.o"
  "CMakeFiles/xrpc_algebra.dir/table.cc.o.d"
  "libxrpc_algebra.a"
  "libxrpc_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
