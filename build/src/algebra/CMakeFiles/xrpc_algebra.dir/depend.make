# Empty dependencies file for xrpc_algebra.
# This may be replaced when dependencies are built.
