
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/table.cc" "src/algebra/CMakeFiles/xrpc_algebra.dir/table.cc.o" "gcc" "src/algebra/CMakeFiles/xrpc_algebra.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xrpc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/xrpc_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xrpc_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
