file(REMOVE_RECURSE
  "CMakeFiles/xrpc_xdm.dir/atomic.cc.o"
  "CMakeFiles/xrpc_xdm.dir/atomic.cc.o.d"
  "CMakeFiles/xrpc_xdm.dir/item.cc.o"
  "CMakeFiles/xrpc_xdm.dir/item.cc.o.d"
  "libxrpc_xdm.a"
  "libxrpc_xdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_xdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
