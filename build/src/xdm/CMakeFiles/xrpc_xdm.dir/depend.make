# Empty dependencies file for xrpc_xdm.
# This may be replaced when dependencies are built.
