file(REMOVE_RECURSE
  "libxrpc_xdm.a"
)
