file(REMOVE_RECURSE
  "CMakeFiles/xrpc_shred.dir/shredded_doc.cc.o"
  "CMakeFiles/xrpc_shred.dir/shredded_doc.cc.o.d"
  "libxrpc_shred.a"
  "libxrpc_shred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_shred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
