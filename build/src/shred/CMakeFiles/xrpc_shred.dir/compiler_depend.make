# Empty compiler generated dependencies file for xrpc_shred.
# This may be replaced when dependencies are built.
