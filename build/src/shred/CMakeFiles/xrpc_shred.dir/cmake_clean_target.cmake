file(REMOVE_RECURSE
  "libxrpc_shred.a"
)
