file(REMOVE_RECURSE
  "CMakeFiles/xrpc_xquery.dir/ast.cc.o"
  "CMakeFiles/xrpc_xquery.dir/ast.cc.o.d"
  "CMakeFiles/xrpc_xquery.dir/interpreter.cc.o"
  "CMakeFiles/xrpc_xquery.dir/interpreter.cc.o.d"
  "CMakeFiles/xrpc_xquery.dir/parser.cc.o"
  "CMakeFiles/xrpc_xquery.dir/parser.cc.o.d"
  "CMakeFiles/xrpc_xquery.dir/update.cc.o"
  "CMakeFiles/xrpc_xquery.dir/update.cc.o.d"
  "libxrpc_xquery.a"
  "libxrpc_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
