# Empty dependencies file for xrpc_xquery.
# This may be replaced when dependencies are built.
