file(REMOVE_RECURSE
  "libxrpc_xquery.a"
)
