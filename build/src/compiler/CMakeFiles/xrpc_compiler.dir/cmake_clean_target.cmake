file(REMOVE_RECURSE
  "libxrpc_compiler.a"
)
