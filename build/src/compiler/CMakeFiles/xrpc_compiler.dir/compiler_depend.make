# Empty compiler generated dependencies file for xrpc_compiler.
# This may be replaced when dependencies are built.
