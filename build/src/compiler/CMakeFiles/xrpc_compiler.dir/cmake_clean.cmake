file(REMOVE_RECURSE
  "CMakeFiles/xrpc_compiler.dir/loop_lift.cc.o"
  "CMakeFiles/xrpc_compiler.dir/loop_lift.cc.o.d"
  "CMakeFiles/xrpc_compiler.dir/relational_engine.cc.o"
  "CMakeFiles/xrpc_compiler.dir/relational_engine.cc.o.d"
  "libxrpc_compiler.a"
  "libxrpc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
