file(REMOVE_RECURSE
  "CMakeFiles/xrpc_xml.dir/node.cc.o"
  "CMakeFiles/xrpc_xml.dir/node.cc.o.d"
  "CMakeFiles/xrpc_xml.dir/parser.cc.o"
  "CMakeFiles/xrpc_xml.dir/parser.cc.o.d"
  "CMakeFiles/xrpc_xml.dir/serializer.cc.o"
  "CMakeFiles/xrpc_xml.dir/serializer.cc.o.d"
  "libxrpc_xml.a"
  "libxrpc_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
