# Empty compiler generated dependencies file for xrpc_xml.
# This may be replaced when dependencies are built.
