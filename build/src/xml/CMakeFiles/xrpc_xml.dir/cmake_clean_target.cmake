file(REMOVE_RECURSE
  "libxrpc_xml.a"
)
