file(REMOVE_RECURSE
  "libxrpc_core.a"
)
