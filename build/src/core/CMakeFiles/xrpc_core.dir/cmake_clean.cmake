file(REMOVE_RECURSE
  "CMakeFiles/xrpc_core.dir/peer_network.cc.o"
  "CMakeFiles/xrpc_core.dir/peer_network.cc.o.d"
  "libxrpc_core.a"
  "libxrpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
