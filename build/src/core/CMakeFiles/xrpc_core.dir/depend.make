# Empty dependencies file for xrpc_core.
# This may be replaced when dependencies are built.
