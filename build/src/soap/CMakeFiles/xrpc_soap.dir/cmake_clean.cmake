file(REMOVE_RECURSE
  "CMakeFiles/xrpc_soap.dir/marshal.cc.o"
  "CMakeFiles/xrpc_soap.dir/marshal.cc.o.d"
  "CMakeFiles/xrpc_soap.dir/message.cc.o"
  "CMakeFiles/xrpc_soap.dir/message.cc.o.d"
  "libxrpc_soap.a"
  "libxrpc_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
