file(REMOVE_RECURSE
  "libxrpc_soap.a"
)
