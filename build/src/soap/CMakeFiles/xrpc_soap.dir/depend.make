# Empty dependencies file for xrpc_soap.
# This may be replaced when dependencies are built.
