
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soap/marshal.cc" "src/soap/CMakeFiles/xrpc_soap.dir/marshal.cc.o" "gcc" "src/soap/CMakeFiles/xrpc_soap.dir/marshal.cc.o.d"
  "/root/repo/src/soap/message.cc" "src/soap/CMakeFiles/xrpc_soap.dir/message.cc.o" "gcc" "src/soap/CMakeFiles/xrpc_soap.dir/message.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xrpc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xrpc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/xrpc_xdm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
