file(REMOVE_RECURSE
  "CMakeFiles/xrpc_base.dir/status.cc.o"
  "CMakeFiles/xrpc_base.dir/status.cc.o.d"
  "CMakeFiles/xrpc_base.dir/string_util.cc.o"
  "CMakeFiles/xrpc_base.dir/string_util.cc.o.d"
  "libxrpc_base.a"
  "libxrpc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
