# Empty compiler generated dependencies file for xrpc_base.
# This may be replaced when dependencies are built.
