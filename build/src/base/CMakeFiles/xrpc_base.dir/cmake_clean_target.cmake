file(REMOVE_RECURSE
  "libxrpc_base.a"
)
