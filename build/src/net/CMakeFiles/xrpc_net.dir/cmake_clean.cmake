file(REMOVE_RECURSE
  "CMakeFiles/xrpc_net.dir/http.cc.o"
  "CMakeFiles/xrpc_net.dir/http.cc.o.d"
  "CMakeFiles/xrpc_net.dir/simulated_network.cc.o"
  "CMakeFiles/xrpc_net.dir/simulated_network.cc.o.d"
  "CMakeFiles/xrpc_net.dir/uri.cc.o"
  "CMakeFiles/xrpc_net.dir/uri.cc.o.d"
  "libxrpc_net.a"
  "libxrpc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
