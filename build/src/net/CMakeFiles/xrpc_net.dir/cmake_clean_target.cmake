file(REMOVE_RECURSE
  "libxrpc_net.a"
)
