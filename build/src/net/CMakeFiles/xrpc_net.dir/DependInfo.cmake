
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/http.cc" "src/net/CMakeFiles/xrpc_net.dir/http.cc.o" "gcc" "src/net/CMakeFiles/xrpc_net.dir/http.cc.o.d"
  "/root/repo/src/net/simulated_network.cc" "src/net/CMakeFiles/xrpc_net.dir/simulated_network.cc.o" "gcc" "src/net/CMakeFiles/xrpc_net.dir/simulated_network.cc.o.d"
  "/root/repo/src/net/uri.cc" "src/net/CMakeFiles/xrpc_net.dir/uri.cc.o" "gcc" "src/net/CMakeFiles/xrpc_net.dir/uri.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xrpc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
