# Empty compiler generated dependencies file for xrpc_net.
# This may be replaced when dependencies are built.
