file(REMOVE_RECURSE
  "libxrpc_xmark.a"
)
