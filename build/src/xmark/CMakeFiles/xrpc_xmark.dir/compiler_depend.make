# Empty compiler generated dependencies file for xrpc_xmark.
# This may be replaced when dependencies are built.
