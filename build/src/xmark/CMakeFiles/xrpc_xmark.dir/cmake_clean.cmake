file(REMOVE_RECURSE
  "CMakeFiles/xrpc_xmark.dir/xmark.cc.o"
  "CMakeFiles/xrpc_xmark.dir/xmark.cc.o.d"
  "libxrpc_xmark.a"
  "libxrpc_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
