# Empty compiler generated dependencies file for xrpc_wrapper.
# This may be replaced when dependencies are built.
