file(REMOVE_RECURSE
  "CMakeFiles/xrpc_wrapper.dir/codegen.cc.o"
  "CMakeFiles/xrpc_wrapper.dir/codegen.cc.o.d"
  "CMakeFiles/xrpc_wrapper.dir/wrapper_engine.cc.o"
  "CMakeFiles/xrpc_wrapper.dir/wrapper_engine.cc.o.d"
  "libxrpc_wrapper.a"
  "libxrpc_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
