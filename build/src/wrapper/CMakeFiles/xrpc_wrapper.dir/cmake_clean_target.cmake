file(REMOVE_RECURSE
  "libxrpc_wrapper.a"
)
