file(REMOVE_RECURSE
  "CMakeFiles/loop_lift_test.dir/loop_lift_test.cc.o"
  "CMakeFiles/loop_lift_test.dir/loop_lift_test.cc.o.d"
  "loop_lift_test"
  "loop_lift_test.pdb"
  "loop_lift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_lift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
