# Empty dependencies file for loop_lift_test.
# This may be replaced when dependencies are built.
