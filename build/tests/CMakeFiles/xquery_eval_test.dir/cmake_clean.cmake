file(REMOVE_RECURSE
  "CMakeFiles/xquery_eval_test.dir/xquery_eval_test.cc.o"
  "CMakeFiles/xquery_eval_test.dir/xquery_eval_test.cc.o.d"
  "xquery_eval_test"
  "xquery_eval_test.pdb"
  "xquery_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
