# Empty compiler generated dependencies file for http_integration_test.
# This may be replaced when dependencies are built.
