file(REMOVE_RECURSE
  "CMakeFiles/http_integration_test.dir/http_integration_test.cc.o"
  "CMakeFiles/http_integration_test.dir/http_integration_test.cc.o.d"
  "http_integration_test"
  "http_integration_test.pdb"
  "http_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
