file(REMOVE_RECURSE
  "CMakeFiles/soap_test.dir/soap_test.cc.o"
  "CMakeFiles/soap_test.dir/soap_test.cc.o.d"
  "soap_test"
  "soap_test.pdb"
  "soap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
