file(REMOVE_RECURSE
  "CMakeFiles/update_order_test.dir/update_order_test.cc.o"
  "CMakeFiles/update_order_test.dir/update_order_test.cc.o.d"
  "update_order_test"
  "update_order_test.pdb"
  "update_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
