# Empty compiler generated dependencies file for update_order_test.
# This may be replaced when dependencies are built.
