# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/xdm_test[1]_include.cmake")
include("/root/repo/build/tests/xquery_parser_test[1]_include.cmake")
include("/root/repo/build/tests/xquery_eval_test[1]_include.cmake")
include("/root/repo/build/tests/soap_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/shred_test[1]_include.cmake")
include("/root/repo/build/tests/loop_lift_test[1]_include.cmake")
include("/root/repo/build/tests/wrapper_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/xmark_test[1]_include.cmake")
include("/root/repo/build/tests/http_integration_test[1]_include.cmake")
include("/root/repo/build/tests/update_order_test[1]_include.cmake")
include("/root/repo/build/tests/strategies_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
