file(REMOVE_RECURSE
  "CMakeFiles/film_database.dir/film_database.cpp.o"
  "CMakeFiles/film_database.dir/film_database.cpp.o.d"
  "film_database"
  "film_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/film_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
