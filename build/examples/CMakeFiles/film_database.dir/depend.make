# Empty dependencies file for film_database.
# This may be replaced when dependencies are built.
