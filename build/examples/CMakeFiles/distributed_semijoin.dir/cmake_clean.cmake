file(REMOVE_RECURSE
  "CMakeFiles/distributed_semijoin.dir/distributed_semijoin.cpp.o"
  "CMakeFiles/distributed_semijoin.dir/distributed_semijoin.cpp.o.d"
  "distributed_semijoin"
  "distributed_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
