# Empty dependencies file for distributed_semijoin.
# This may be replaced when dependencies are built.
