file(REMOVE_RECURSE
  "CMakeFiles/updates_2pc.dir/updates_2pc.cpp.o"
  "CMakeFiles/updates_2pc.dir/updates_2pc.cpp.o.d"
  "updates_2pc"
  "updates_2pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates_2pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
