# Empty compiler generated dependencies file for updates_2pc.
# This may be replaced when dependencies are built.
