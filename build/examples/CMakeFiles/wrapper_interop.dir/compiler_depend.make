# Empty compiler generated dependencies file for wrapper_interop.
# This may be replaced when dependencies are built.
