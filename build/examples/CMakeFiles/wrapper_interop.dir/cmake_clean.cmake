file(REMOVE_RECURSE
  "CMakeFiles/wrapper_interop.dir/wrapper_interop.cpp.o"
  "CMakeFiles/wrapper_interop.dir/wrapper_interop.cpp.o.d"
  "wrapper_interop"
  "wrapper_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
