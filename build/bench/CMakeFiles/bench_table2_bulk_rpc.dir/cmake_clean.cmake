file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_bulk_rpc.dir/bench_table2_bulk_rpc.cc.o"
  "CMakeFiles/bench_table2_bulk_rpc.dir/bench_table2_bulk_rpc.cc.o.d"
  "bench_table2_bulk_rpc"
  "bench_table2_bulk_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_bulk_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
