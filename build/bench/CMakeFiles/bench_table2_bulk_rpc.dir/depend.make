# Empty dependencies file for bench_table2_bulk_rpc.
# This may be replaced when dependencies are built.
