file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_bulk_tables.dir/bench_fig1_bulk_tables.cc.o"
  "CMakeFiles/bench_fig1_bulk_tables.dir/bench_fig1_bulk_tables.cc.o.d"
  "bench_fig1_bulk_tables"
  "bench_fig1_bulk_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_bulk_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
