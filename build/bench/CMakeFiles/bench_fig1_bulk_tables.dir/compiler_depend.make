# Empty compiler generated dependencies file for bench_fig1_bulk_tables.
# This may be replaced when dependencies are built.
