# Empty dependencies file for bench_table4_strategies.
# This may be replaced when dependencies are built.
