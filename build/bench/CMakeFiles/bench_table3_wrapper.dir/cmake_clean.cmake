file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_wrapper.dir/bench_table3_wrapper.cc.o"
  "CMakeFiles/bench_table3_wrapper.dir/bench_table3_wrapper.cc.o.d"
  "bench_table3_wrapper"
  "bench_table3_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
