
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xrpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xmark/CMakeFiles/xrpc_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/xrpc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/xrpc_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/shred/CMakeFiles/xrpc_shred.dir/DependInfo.cmake"
  "/root/repo/build/src/wrapper/CMakeFiles/xrpc_wrapper.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/xrpc_server.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/xrpc_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/xrpc_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/xrpc_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xrpc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xrpc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xrpc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
