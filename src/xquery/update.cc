#include "xquery/update.h"

#include <algorithm>

#include "xml/node.h"

namespace xrpc::xquery {

void PendingUpdateList::Merge(PendingUpdateList other) {
  // Merged entries order strictly after every existing entry: later XRPC
  // calls get later call indices (the deterministic-order extension).
  int base = next_call_index_ + 1;
  for (Entry& e : other.entries_) {
    e.call_index += base;
    entries_.push_back(std::move(e));
  }
  next_call_index_ = base + other.next_call_index_ + 1;
}

namespace {

using xml::Node;
using xml::NodeKind;
using xml::NodePtr;

// Inserts copied content nodes relative to the target.
Status ApplyInsert(const UpdatePrimitive& p) {
  Node* target = p.target.node();
  switch (p.kind) {
    case UpdatePrimitive::Kind::kInsertInto:
    case UpdatePrimitive::Kind::kInsertLast:
      for (const xdm::Item& item : p.content) {
        NodePtr n = item.node()->shared_from_this();
        if (n->kind() == NodeKind::kAttribute) {
          target->SetAttribute(n);
        } else {
          target->AppendChild(n);
        }
      }
      return Status::OK();
    case UpdatePrimitive::Kind::kInsertFirst: {
      const Node* first = target->children().empty()
                              ? nullptr
                              : target->children().front().get();
      for (const xdm::Item& item : p.content) {
        NodePtr n = item.node()->shared_from_this();
        if (n->kind() == NodeKind::kAttribute) {
          target->SetAttribute(n);
        } else if (first == nullptr) {
          target->AppendChild(n);
        } else {
          target->InsertBefore(n, first);
        }
      }
      return Status::OK();
    }
    case UpdatePrimitive::Kind::kInsertBefore: {
      Node* parent = target->parent();
      if (parent == nullptr) {
        return Status::EvalError("insert before: target has no parent");
      }
      for (const xdm::Item& item : p.content) {
        parent->InsertBefore(item.node()->shared_from_this(), target);
      }
      return Status::OK();
    }
    case UpdatePrimitive::Kind::kInsertAfter: {
      Node* parent = target->parent();
      if (parent == nullptr) {
        return Status::EvalError("insert after: target has no parent");
      }
      // Insert after target == before target's next sibling.
      const Node* next = nullptr;
      size_t idx = target->IndexInParent();
      if (idx + 1 < parent->children().size()) {
        next = parent->children()[idx + 1].get();
      }
      for (const xdm::Item& item : p.content) {
        NodePtr n = item.node()->shared_from_this();
        if (next == nullptr) {
          parent->AppendChild(n);
        } else {
          parent->InsertBefore(n, next);
        }
      }
      return Status::OK();
    }
    default:
      return Status::Internal("not an insert primitive");
  }
}

}  // namespace

Status ApplyUpdates(PendingUpdateList* pul, PutSink* put_sink) {
  // XQUF 3.2.2 order: renames & replace-values, then replace-nodes, then
  // inserts, then deletes, then puts. Within a phase, entry order (tagged by
  // call index) is preserved for determinism.
  auto phase_of = [](UpdatePrimitive::Kind k) {
    switch (k) {
      case UpdatePrimitive::Kind::kRename:
      case UpdatePrimitive::Kind::kReplaceValue:
        return 0;
      case UpdatePrimitive::Kind::kReplaceNode:
        return 1;
      case UpdatePrimitive::Kind::kInsertInto:
      case UpdatePrimitive::Kind::kInsertFirst:
      case UpdatePrimitive::Kind::kInsertLast:
      case UpdatePrimitive::Kind::kInsertBefore:
      case UpdatePrimitive::Kind::kInsertAfter:
        return 2;
      case UpdatePrimitive::Kind::kDelete:
        return 3;
      case UpdatePrimitive::Kind::kPut:
        return 4;
    }
    return 5;
  };

  std::stable_sort(pul->mutable_entries().begin(),
                   pul->mutable_entries().end(),
                   [&](const PendingUpdateList::Entry& a,
                       const PendingUpdateList::Entry& b) {
                     return phase_of(a.primitive.kind) <
                            phase_of(b.primitive.kind);
                   });

  for (const PendingUpdateList::Entry& entry : pul->entries()) {
    const UpdatePrimitive& p = entry.primitive;
    switch (p.kind) {
      case UpdatePrimitive::Kind::kRename:
        p.target.node()->set_name(p.new_name);
        break;
      case UpdatePrimitive::Kind::kReplaceValue: {
        Node* t = p.target.node();
        if (t->kind() == NodeKind::kElement) {
          // Replace all children with a single text node.
          while (!t->children().empty()) {
            t->RemoveChild(t->children().back().get());
          }
          if (!p.new_value.empty()) {
            t->AppendChild(Node::NewText(p.new_value));
          }
        } else {
          t->set_value(p.new_value);
        }
        break;
      }
      case UpdatePrimitive::Kind::kReplaceNode: {
        Node* t = p.target.node();
        Node* parent = t->parent();
        if (parent == nullptr) {
          return Status::EvalError("replace node: target has no parent");
        }
        for (const xdm::Item& item : p.content) {
          NodePtr n = item.node()->shared_from_this();
          if (n->kind() == NodeKind::kAttribute) {
            parent->SetAttribute(n);
          } else {
            parent->InsertBefore(n, t);
          }
        }
        parent->RemoveChild(t);
        break;
      }
      case UpdatePrimitive::Kind::kInsertInto:
      case UpdatePrimitive::Kind::kInsertFirst:
      case UpdatePrimitive::Kind::kInsertLast:
      case UpdatePrimitive::Kind::kInsertBefore:
      case UpdatePrimitive::Kind::kInsertAfter:
        XRPC_RETURN_IF_ERROR(ApplyInsert(p));
        break;
      case UpdatePrimitive::Kind::kDelete: {
        Node* t = p.target.node();
        Node* parent = t->parent();
        if (parent != nullptr) parent->RemoveChild(t);
        break;
      }
      case UpdatePrimitive::Kind::kPut: {
        if (put_sink == nullptr) {
          return Status::EvalError("fn:put is not available in this context");
        }
        NodePtr doc = p.content.empty()
                          ? nullptr
                          : p.content[0].node()->shared_from_this();
        if (doc == nullptr) {
          return Status::EvalError("fn:put: empty content");
        }
        XRPC_RETURN_IF_ERROR(put_sink->Put(p.put_uri, doc));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace xrpc::xquery
