#include "xquery/update.h"

#include <algorithm>

#include "base/string_util.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrpc::xquery {

void PendingUpdateList::Merge(PendingUpdateList other) {
  // Merged entries order strictly after every existing entry: later XRPC
  // calls get later call indices (the deterministic-order extension).
  int base = next_call_index_ + 1;
  for (Entry& e : other.entries_) {
    e.call_index += base;
    entries_.push_back(std::move(e));
  }
  next_call_index_ = base + other.next_call_index_ + 1;
}

namespace {

using xml::Node;
using xml::NodeKind;
using xml::NodePtr;

// Inserts copied content nodes relative to the target.
Status ApplyInsert(const UpdatePrimitive& p) {
  Node* target = p.target.node();
  switch (p.kind) {
    case UpdatePrimitive::Kind::kInsertInto:
    case UpdatePrimitive::Kind::kInsertLast:
      for (const xdm::Item& item : p.content) {
        NodePtr n = item.node()->shared_from_this();
        if (n->kind() == NodeKind::kAttribute) {
          target->SetAttribute(n);
        } else {
          target->AppendChild(n);
        }
      }
      return Status::OK();
    case UpdatePrimitive::Kind::kInsertFirst: {
      const Node* first = target->children().empty()
                              ? nullptr
                              : target->children().front().get();
      for (const xdm::Item& item : p.content) {
        NodePtr n = item.node()->shared_from_this();
        if (n->kind() == NodeKind::kAttribute) {
          target->SetAttribute(n);
        } else if (first == nullptr) {
          target->AppendChild(n);
        } else {
          target->InsertBefore(n, first);
        }
      }
      return Status::OK();
    }
    case UpdatePrimitive::Kind::kInsertBefore: {
      Node* parent = target->parent();
      if (parent == nullptr) {
        return Status::EvalError("insert before: target has no parent");
      }
      for (const xdm::Item& item : p.content) {
        parent->InsertBefore(item.node()->shared_from_this(), target);
      }
      return Status::OK();
    }
    case UpdatePrimitive::Kind::kInsertAfter: {
      Node* parent = target->parent();
      if (parent == nullptr) {
        return Status::EvalError("insert after: target has no parent");
      }
      // Insert after target == before target's next sibling.
      const Node* next = nullptr;
      size_t idx = target->IndexInParent();
      if (idx + 1 < parent->children().size()) {
        next = parent->children()[idx + 1].get();
      }
      for (const xdm::Item& item : p.content) {
        NodePtr n = item.node()->shared_from_this();
        if (next == nullptr) {
          parent->AppendChild(n);
        } else {
          parent->InsertBefore(n, next);
        }
      }
      return Status::OK();
    }
    default:
      return Status::Internal("not an insert primitive");
  }
}

}  // namespace

namespace {

using xml::QName;

/// Namespace of the serialized-PUL vocabulary written to the prepare log.
constexpr char kPulNs[] = "urn:xrpc:txn-pul";

const char* KindName(UpdatePrimitive::Kind k) {
  switch (k) {
    case UpdatePrimitive::Kind::kInsertInto:
      return "insert-into";
    case UpdatePrimitive::Kind::kInsertFirst:
      return "insert-first";
    case UpdatePrimitive::Kind::kInsertLast:
      return "insert-last";
    case UpdatePrimitive::Kind::kInsertBefore:
      return "insert-before";
    case UpdatePrimitive::Kind::kInsertAfter:
      return "insert-after";
    case UpdatePrimitive::Kind::kDelete:
      return "delete";
    case UpdatePrimitive::Kind::kReplaceNode:
      return "replace-node";
    case UpdatePrimitive::Kind::kReplaceValue:
      return "replace-value";
    case UpdatePrimitive::Kind::kRename:
      return "rename";
    case UpdatePrimitive::Kind::kPut:
      return "put";
  }
  return "?";
}

StatusOr<UpdatePrimitive::Kind> KindFromName(std::string_view s) {
  static const std::pair<const char*, UpdatePrimitive::Kind> kMap[] = {
      {"insert-into", UpdatePrimitive::Kind::kInsertInto},
      {"insert-first", UpdatePrimitive::Kind::kInsertFirst},
      {"insert-last", UpdatePrimitive::Kind::kInsertLast},
      {"insert-before", UpdatePrimitive::Kind::kInsertBefore},
      {"insert-after", UpdatePrimitive::Kind::kInsertAfter},
      {"delete", UpdatePrimitive::Kind::kDelete},
      {"replace-node", UpdatePrimitive::Kind::kReplaceNode},
      {"replace-value", UpdatePrimitive::Kind::kReplaceValue},
      {"rename", UpdatePrimitive::Kind::kRename},
      {"put", UpdatePrimitive::Kind::kPut},
  };
  for (const auto& [name, kind] : kMap) {
    if (s == name) return kind;
  }
  return Status::ParseError("unknown update primitive kind: " +
                            std::string(s));
}

/// Child-index route from the tree root to `node`; an attribute target is
/// the final "@i" step (index among the owner's attributes).
StatusOr<std::string> PathFromRoot(const Node* node) {
  std::vector<std::string> steps;
  for (const Node* cur = node; cur->parent() != nullptr;
       cur = cur->parent()) {
    if (cur->kind() == NodeKind::kAttribute) {
      steps.push_back("@" + std::to_string(cur->IndexInParent()));
    } else {
      steps.push_back(std::to_string(cur->IndexInParent()));
    }
  }
  std::reverse(steps.begin(), steps.end());
  return JoinStrings(steps, "/");
}

StatusOr<Node*> ResolvePath(const NodePtr& root, std::string_view path) {
  Node* cur = root.get();
  if (path.empty()) return cur;
  for (const std::string& step : SplitString(path, '/')) {
    bool attr = !step.empty() && step[0] == '@';
    XRPC_ASSIGN_OR_RETURN(int64_t idx,
                          ParseInt64(attr ? step.substr(1) : step));
    const auto& pool = attr ? cur->attributes() : cur->children();
    if (idx < 0 || static_cast<size_t>(idx) >= pool.size()) {
      return Status::IsolationError(
          "PUL target path no longer resolves (step " + step + ")");
    }
    cur = pool[static_cast<size_t>(idx)].get();
  }
  return cur;
}

void SetAttr(Node* elem, const char* name, const std::string& value) {
  elem->SetAttribute(Node::NewAttribute(QName(name), value));
}

std::string GetAttr(const Node* elem, const char* name) {
  const Node* a = elem->FindAttribute(QName(name));
  return a == nullptr ? std::string() : a->value();
}

/// Encodes one content item as a <c> child of `u`. Attributes and document
/// nodes need explicit tagging; everything else rides as the single child.
void AppendContent(Node* u, const xdm::Item& item) {
  NodePtr c = Node::NewElement(QName(kPulNs, "c", "pul"));
  const Node* n = item.node();
  switch (n->kind()) {
    case NodeKind::kAttribute:
      SetAttr(c.get(), "k", "attribute");
      SetAttr(c.get(), "ns", n->name().ns_uri);
      SetAttr(c.get(), "local", n->name().local);
      SetAttr(c.get(), "prefix", n->name().prefix);
      SetAttr(c.get(), "value", n->value());
      break;
    case NodeKind::kDocument:
      SetAttr(c.get(), "k", "document");
      for (const NodePtr& child : n->children()) {
        c->AppendChild(child->Clone());
      }
      break;
    default:
      c->AppendChild(n->Clone());
      break;
  }
  u->AppendChild(std::move(c));
}

StatusOr<xdm::Item> DecodeContent(const Node* c) {
  std::string k = GetAttr(c, "k");
  if (k == "attribute") {
    return xdm::Item::Node(Node::NewAttribute(
        QName(GetAttr(c, "ns"), GetAttr(c, "local"), GetAttr(c, "prefix")),
        GetAttr(c, "value")));
  }
  if (k == "document") {
    NodePtr doc = Node::NewDocument();
    for (const NodePtr& child : c->children()) {
      doc->AppendChild(child->Clone());
    }
    return xdm::Item::Node(std::move(doc));
  }
  if (c->children().size() != 1) {
    return Status::ParseError("serialized PUL content must hold one node");
  }
  return xdm::Item::Node(c->children()[0]->Clone());
}

}  // namespace

StatusOr<std::string> PendingUpdateList::Serialize(
    const DocNamer& doc_of_root) const {
  NodePtr pul = Node::NewElement(QName(kPulNs, "pul", "pul"));
  for (const Entry& entry : entries_) {
    const UpdatePrimitive& p = entry.primitive;
    NodePtr u = Node::NewElement(QName(kPulNs, "u", "pul"));
    SetAttr(u.get(), "call", std::to_string(entry.call_index));
    SetAttr(u.get(), "kind", KindName(p.kind));
    if (p.kind == UpdatePrimitive::Kind::kPut) {
      SetAttr(u.get(), "uri", p.put_uri);
    } else {
      const Node* target = p.target.node();
      if (target == nullptr) {
        return Status::TransactionError(
            "cannot serialize PUL: primitive has no target node");
      }
      XRPC_ASSIGN_OR_RETURN(std::string doc_name,
                            doc_of_root(target->Root()));
      XRPC_ASSIGN_OR_RETURN(std::string path, PathFromRoot(target));
      SetAttr(u.get(), "doc", doc_name);
      SetAttr(u.get(), "path", path);
    }
    if (p.kind == UpdatePrimitive::Kind::kRename) {
      SetAttr(u.get(), "rn-ns", p.new_name.ns_uri);
      SetAttr(u.get(), "rn-local", p.new_name.local);
      SetAttr(u.get(), "rn-prefix", p.new_name.prefix);
    }
    if (p.kind == UpdatePrimitive::Kind::kReplaceValue) {
      SetAttr(u.get(), "value", p.new_value);
    }
    for (const xdm::Item& item : p.content) {
      if (item.node() == nullptr) {
        return Status::TransactionError(
            "cannot serialize PUL: atomic content item");
      }
      AppendContent(u.get(), item);
    }
    pul->AppendChild(std::move(u));
  }
  return xml::SerializeNode(*pul);
}

StatusOr<PendingUpdateList> PendingUpdateList::Deserialize(
    std::string_view text, const DocResolver& doc_of_name) {
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text));
  const Node* pul_elem = nullptr;
  for (const NodePtr& c : doc->children()) {
    if (c->kind() == NodeKind::kElement) pul_elem = c.get();
  }
  if (pul_elem == nullptr || pul_elem->name().ns_uri != kPulNs ||
      pul_elem->name().local != "pul") {
    return Status::ParseError("not a serialized PUL");
  }
  PendingUpdateList out;
  for (const NodePtr& child : pul_elem->children()) {
    if (child->kind() != NodeKind::kElement || child->name().local != "u") {
      continue;
    }
    const Node* u = child.get();
    Entry entry;
    XRPC_ASSIGN_OR_RETURN(int64_t call, ParseInt64(GetAttr(u, "call")));
    entry.call_index = static_cast<int>(call);
    XRPC_ASSIGN_OR_RETURN(entry.primitive.kind,
                          KindFromName(GetAttr(u, "kind")));
    UpdatePrimitive& p = entry.primitive;
    if (p.kind == UpdatePrimitive::Kind::kPut) {
      p.put_uri = GetAttr(u, "uri");
    } else {
      XRPC_ASSIGN_OR_RETURN(NodePtr root, doc_of_name(GetAttr(u, "doc")));
      XRPC_ASSIGN_OR_RETURN(Node* target,
                            ResolvePath(root, GetAttr(u, "path")));
      p.target = xdm::Item::NodeInTree(target, std::move(root));
    }
    if (p.kind == UpdatePrimitive::Kind::kRename) {
      p.new_name = QName(GetAttr(u, "rn-ns"), GetAttr(u, "rn-local"),
                         GetAttr(u, "rn-prefix"));
    }
    if (p.kind == UpdatePrimitive::Kind::kReplaceValue) {
      p.new_value = GetAttr(u, "value");
    }
    for (const NodePtr& c : u->children()) {
      if (c->kind() != NodeKind::kElement || c->name().local != "c") {
        continue;
      }
      XRPC_ASSIGN_OR_RETURN(xdm::Item item, DecodeContent(c.get()));
      p.content.push_back(std::move(item));
    }
    out.next_call_index_ = std::max(out.next_call_index_, entry.call_index);
    out.entries_.push_back(std::move(entry));
  }
  return out;
}

Status ApplyUpdates(PendingUpdateList* pul, PutSink* put_sink) {
  // XQUF 3.2.2 order: renames & replace-values, then replace-nodes, then
  // inserts, then deletes, then puts. Within a phase, entry order (tagged by
  // call index) is preserved for determinism.
  auto phase_of = [](UpdatePrimitive::Kind k) {
    switch (k) {
      case UpdatePrimitive::Kind::kRename:
      case UpdatePrimitive::Kind::kReplaceValue:
        return 0;
      case UpdatePrimitive::Kind::kReplaceNode:
        return 1;
      case UpdatePrimitive::Kind::kInsertInto:
      case UpdatePrimitive::Kind::kInsertFirst:
      case UpdatePrimitive::Kind::kInsertLast:
      case UpdatePrimitive::Kind::kInsertBefore:
      case UpdatePrimitive::Kind::kInsertAfter:
        return 2;
      case UpdatePrimitive::Kind::kDelete:
        return 3;
      case UpdatePrimitive::Kind::kPut:
        return 4;
    }
    return 5;
  };

  std::stable_sort(pul->mutable_entries().begin(),
                   pul->mutable_entries().end(),
                   [&](const PendingUpdateList::Entry& a,
                       const PendingUpdateList::Entry& b) {
                     return phase_of(a.primitive.kind) <
                            phase_of(b.primitive.kind);
                   });

  for (const PendingUpdateList::Entry& entry : pul->entries()) {
    const UpdatePrimitive& p = entry.primitive;
    switch (p.kind) {
      case UpdatePrimitive::Kind::kRename:
        p.target.node()->set_name(p.new_name);
        break;
      case UpdatePrimitive::Kind::kReplaceValue: {
        Node* t = p.target.node();
        if (t->kind() == NodeKind::kElement) {
          // Replace all children with a single text node.
          while (!t->children().empty()) {
            t->RemoveChild(t->children().back().get());
          }
          if (!p.new_value.empty()) {
            t->AppendChild(Node::NewText(p.new_value));
          }
        } else {
          t->set_value(p.new_value);
        }
        break;
      }
      case UpdatePrimitive::Kind::kReplaceNode: {
        Node* t = p.target.node();
        Node* parent = t->parent();
        if (parent == nullptr) {
          return Status::EvalError("replace node: target has no parent");
        }
        for (const xdm::Item& item : p.content) {
          NodePtr n = item.node()->shared_from_this();
          if (n->kind() == NodeKind::kAttribute) {
            parent->SetAttribute(n);
          } else {
            parent->InsertBefore(n, t);
          }
        }
        parent->RemoveChild(t);
        break;
      }
      case UpdatePrimitive::Kind::kInsertInto:
      case UpdatePrimitive::Kind::kInsertFirst:
      case UpdatePrimitive::Kind::kInsertLast:
      case UpdatePrimitive::Kind::kInsertBefore:
      case UpdatePrimitive::Kind::kInsertAfter:
        XRPC_RETURN_IF_ERROR(ApplyInsert(p));
        break;
      case UpdatePrimitive::Kind::kDelete: {
        Node* t = p.target.node();
        Node* parent = t->parent();
        if (parent != nullptr) parent->RemoveChild(t);
        break;
      }
      case UpdatePrimitive::Kind::kPut: {
        if (put_sink == nullptr) {
          return Status::EvalError("fn:put is not available in this context");
        }
        NodePtr doc = p.content.empty()
                          ? nullptr
                          : p.content[0].node()->shared_from_this();
        if (doc == nullptr) {
          return Status::EvalError("fn:put: empty content");
        }
        XRPC_RETURN_IF_ERROR(put_sink->Put(p.put_uri, doc));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace xrpc::xquery
