#ifndef XRPC_XQUERY_AST_H_
#define XRPC_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "xdm/atomic.h"
#include "xml/qname.h"

namespace xrpc::xquery {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// XPath axes supported by the engine.
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kAttribute,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
};

const char* AxisToString(Axis axis);

/// Node test of an axis step.
struct NodeTest {
  enum class Kind {
    kName,      ///< QName or wildcard name test.
    kAnyKind,   ///< node()
    kText,      ///< text()
    kComment,   ///< comment()
    kPi,        ///< processing-instruction()
    kElement,   ///< element()
    kAttribute, ///< attribute()
    kDocument,  ///< document-node()
  };
  Kind kind = Kind::kName;
  xml::QName name;          ///< valid when kind == kName
  bool wildcard = false;    ///< "*" name test
};

/// Occurrence indicator of a sequence type.
enum class Occurrence { kOne, kZeroOrOne, kZeroOrMore, kOneOrMore };

/// A (simplified) XQuery SequenceType: item kind plus occurrence.
struct SequenceType {
  enum class ItemKind {
    kItem,       ///< item()
    kAtomic,     ///< a named atomic type (atomic field)
    kNode,       ///< node()
    kElement,
    kAttribute,
    kDocument,
    kText,
    kEmpty,      ///< empty-sequence()
  };
  ItemKind kind = ItemKind::kItem;
  xdm::AtomicType atomic = xdm::AtomicType::kString;
  Occurrence occurrence = Occurrence::kZeroOrMore;

  std::string ToString() const;
};

/// One clause of a FLWOR (for or let).
struct FlworClause {
  enum class Kind { kFor, kLet };
  Kind kind = Kind::kFor;
  xml::QName var;
  xml::QName pos_var;  ///< "at $p" positional variable; empty if absent
  ExprPtr expr;
};

/// One order-by specification.
struct OrderSpec {
  ExprPtr key;
  bool descending = false;
  bool empty_greatest = false;
};

/// Kinds of expression nodes.
enum class ExprKind {
  kLiteral,        ///< atomic constant (literal_)
  kSequence,       ///< comma expression; children are the operands
  kRange,          ///< a to b
  kVarRef,         ///< $name
  kContextItem,    ///< .
  kFlwor,          ///< for/let/where/order by/return
  kIf,             ///< if (c) then t else e; children: c, t, e
  kQuantified,     ///< some/every $v in e satisfies p
  kOr,
  kAnd,
  kComparison,     ///< general/value/node comparison (op_)
  kArith,          ///< + - * div idiv mod (op_)
  kUnaryMinus,
  kUnion,          ///< union / |
  kPath,           ///< root expr (children[0], may be null for "/") + steps
  kFilter,         ///< primary expr with predicates
  kFunctionCall,   ///< built-in or user function (name_)
  kExecuteAt,      ///< execute at {children[0]} { call(children[1..]) }
  kElementCtor,    ///< direct/computed element constructor
  kAttributeCtor,  ///< attribute constructor (inside element ctor)
  kTextCtor,       ///< text { expr } or literal text (literal_)
  kCommentCtor,
  kPiCtor,
  kDocumentCtor,   ///< document { expr }
  kCastAs,         ///< e cast as T
  kCastableAs,     ///< e castable as T
  kInstanceOf,     ///< e instance of T
  kTreatAs,        ///< e treat as T
  // XQUF updating expressions:
  kInsert,         ///< insert nodes src into/before/after/as first/as last tgt
  kDelete,         ///< delete nodes tgt
  kReplaceNode,    ///< replace node tgt with src
  kReplaceValue,   ///< replace value of node tgt with src
  kRename,         ///< rename node tgt as name-expr
};

/// Position of an insert target (XQUF).
enum class InsertPos { kInto, kAsFirstInto, kAsLastInto, kBefore, kAfter };

/// Comparison operators: general =,!=,<,<=,>,>=; value eq..ge; node is,<<,>>.
enum class CompOp {
  kGenEq, kGenNe, kGenLt, kGenLe, kGenGt, kGenGe,
  kValEq, kValNe, kValLt, kValLe, kValGt, kValGe,
  kNodeIs, kNodeBefore, kNodeAfter,
};

enum class ArithOp { kAdd, kSub, kMul, kDiv, kIDiv, kMod };

/// One step of a path expression.
struct PathStep {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<ExprPtr> predicates;
};

/// An XQuery expression tree node (tagged union style).
///
/// The single-struct representation keeps the two consumers — the
/// tree-walking interpreter and the loop-lifting relational compiler — free
/// of a visitor hierarchy; they switch on `kind`.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}

  ExprKind kind;

  // Generic children; meaning depends on kind (documented per kind above).
  std::vector<ExprPtr> children;

  // kLiteral / kTextCtor literal content.
  xdm::AtomicValue literal;

  // kVarRef, kFunctionCall, kElementCtor/kAttributeCtor/kPiCtor name.
  xml::QName name;

  // kFlwor.
  std::vector<FlworClause> clauses;
  ExprPtr where;
  std::vector<OrderSpec> order_by;
  bool order_stable = false;
  ExprPtr ret;

  // kQuantified: every_ distinguishes some/every; clauses hold bindings,
  // ret holds the satisfies expression.
  bool every = false;

  // kComparison / kArith.
  CompOp comp_op = CompOp::kGenEq;
  ArithOp arith_op = ArithOp::kAdd;

  // kPath: steps applied to children[0] (nullptr child0 = document root of
  // context item).
  std::vector<PathStep> steps;
  bool root_path = false;  ///< leading "/" or "//"

  // kFilter: children[0] primary, predicates.
  std::vector<ExprPtr> predicates;

  // kElementCtor: attribute constructors (each kAttributeCtor with content
  // children) and content children in `children`.
  std::vector<ExprPtr> attributes;
  // Computed constructors may compute their name.
  ExprPtr name_expr;

  // kCastAs / kCastableAs / kInstanceOf / kTreatAs.
  SequenceType seq_type;

  // kInsert.
  InsertPos insert_pos = InsertPos::kInto;

  // kExecuteAt: children[0] = destination URI expr; name = function QName;
  // children[1..] = arguments.
};

/// Creates an expression node.
inline ExprPtr MakeExpr(ExprKind kind) { return std::make_unique<Expr>(kind); }

/// True if the expression (transitively) contains an updating expression or
/// a call to a function declared updating (checked at parse time for
/// syntactic update kinds only; function-call updating-ness is resolved at
/// evaluation time).
bool ContainsUpdatingSyntax(const Expr& e);

}  // namespace xrpc::xquery

#endif  // XRPC_XQUERY_AST_H_
