#include "xquery/interpreter.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "base/string_util.h"
#include "xml/serializer.h"

namespace xrpc::xquery {

namespace {

using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;
using xml::Node;
using xml::NodeKind;
using xml::NodePtr;
using xml::QName;

/// Evaluation focus: context item, position and size (for predicates).
struct Focus {
  std::optional<Item> item;
  int64_t position = 0;
  int64_t size = 0;
};

/// The tree-walking evaluator. One instance evaluates one query; it owns
/// the variable environment, the focus, and the pending update list.
class Evaluator {
 public:
  explicit Evaluator(const Interpreter::Config& config) : cfg_(config) {}

  StatusOr<QueryResult> RunQuery(const MainModule& query) {
    XRPC_ASSIGN_OR_RETURN(Scope scope, BuildScope(&query.prolog, ""));
    scopes_.push_back(std::move(scope));
    for (const auto& [name, init] : query.prolog.variables) {
      XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*init));
      vars_.emplace_back(name.Clark(), std::move(v));
    }
    QueryResult result;
    XRPC_ASSIGN_OR_RETURN(result.sequence, Eval(*query.body));
    result.updates = std::move(pul_);
    return result;
  }

  StatusOr<QueryResult> RunFunction(const LibraryModule& module,
                                    const FunctionDef& function,
                                    std::vector<Sequence> args) {
    if (args.size() != function.arity()) {
      return Status::TypeError("wrong number of arguments for " +
                               function.name.Lexical());
    }
    XRPC_ASSIGN_OR_RETURN(Scope scope,
                          BuildScope(&module.prolog, module.target_ns));
    scopes_.push_back(std::move(scope));
    size_t env_mark = vars_.size();
    for (size_t i = 0; i < args.size(); ++i) {
      XRPC_ASSIGN_OR_RETURN(
          Sequence coerced,
          CoerceToType(std::move(args[i]), function.params[i].type));
      vars_.emplace_back(function.params[i].name.Clark(), std::move(coerced));
    }
    QueryResult result;
    XRPC_ASSIGN_OR_RETURN(result.sequence, Eval(*function.body));
    vars_.resize(env_mark);
    result.updates = std::move(pul_);
    return result;
  }

 private:
  // ------------------------------------------------------------- scopes

  /// A module evaluation scope: where user functions and imports resolve.
  struct Scope {
    const Prolog* prolog = nullptr;
    std::string self_ns;  ///< library module target namespace ("" for main)
    std::map<std::string, const LibraryModule*> imports_by_ns;
    std::map<std::string, std::string> location_by_ns;
  };

  StatusOr<Scope> BuildScope(const Prolog* prolog, std::string self_ns) {
    Scope scope;
    scope.prolog = prolog;
    scope.self_ns = std::move(self_ns);
    for (const ModuleImport& imp : prolog->imports) {
      scope.location_by_ns[imp.target_ns] = imp.location;
      if (cfg_.modules != nullptr) {
        auto resolved = cfg_.modules->Resolve(imp.target_ns, imp.location);
        if (resolved.ok()) {
          scope.imports_by_ns[imp.target_ns] = resolved.value();
        }
        // Unresolvable imports are tolerated until a call needs them: a
        // remote-only module may be unavailable at the calling peer.
      }
    }
    return scope;
  }

  const Scope& CurrentScope() const { return scopes_.back(); }

  // ------------------------------------------------------------ helpers

  Status EvalError(const std::string& msg) const {
    return Status::EvalError(msg);
  }

  StatusOr<const Sequence*> LookupVar(const QName& name) const {
    std::string key = name.Clark();
    for (auto it = vars_.rbegin(); it != vars_.rend(); ++it) {
      if (it->first == key) return &it->second;
    }
    return Status::EvalError("unbound variable $" + name.Lexical());
  }

  /// Atomizes a sequence expected to hold exactly one item; error otherwise.
  StatusOr<AtomicValue> AtomizeOne(const Sequence& seq,
                                   const char* what) const {
    if (seq.size() != 1) {
      return Status::TypeError(std::string(what) +
                               ": expected exactly one item, got " +
                               std::to_string(seq.size()));
    }
    return seq[0].Atomize();
  }

  /// Coerces a value to a declared sequence type (function parameter /
  /// return): occurrence check plus atomic up-casting (the caller-side
  /// casting the XRPC protocol requires).
  StatusOr<Sequence> CoerceToType(Sequence seq, const SequenceType& type) {
    switch (type.occurrence) {
      case Occurrence::kOne:
        if (seq.size() != 1) {
          return Status::TypeError("expected exactly one item for type " +
                                   type.ToString());
        }
        break;
      case Occurrence::kZeroOrOne:
        if (seq.size() > 1) {
          return Status::TypeError("expected at most one item for type " +
                                   type.ToString());
        }
        break;
      case Occurrence::kOneOrMore:
        if (seq.empty()) {
          return Status::TypeError("expected at least one item for type " +
                                   type.ToString());
        }
        break;
      case Occurrence::kZeroOrMore:
        break;
    }
    if (type.kind == SequenceType::ItemKind::kAtomic) {
      for (Item& item : seq) {
        AtomicValue v = item.Atomize();
        if (v.type() != type.atomic) {
          XRPC_ASSIGN_OR_RETURN(v, v.CastTo(type.atomic));
        }
        item = Item(std::move(v));
      }
    } else if (type.kind != SequenceType::ItemKind::kItem &&
               type.kind != SequenceType::ItemKind::kEmpty) {
      for (const Item& item : seq) {
        if (!item.IsNode()) {
          return Status::TypeError("expected a node for type " +
                                   type.ToString());
        }
      }
    }
    return seq;
  }

  bool MatchesSequenceType(const Sequence& seq, const SequenceType& type) {
    switch (type.occurrence) {
      case Occurrence::kOne:
        if (seq.size() != 1) return false;
        break;
      case Occurrence::kZeroOrOne:
        if (seq.size() > 1) return false;
        break;
      case Occurrence::kOneOrMore:
        if (seq.empty()) return false;
        break;
      case Occurrence::kZeroOrMore:
        break;
    }
    for (const Item& item : seq) {
      switch (type.kind) {
        case SequenceType::ItemKind::kItem:
          break;
        case SequenceType::ItemKind::kEmpty:
          return false;
        case SequenceType::ItemKind::kAtomic:
          if (!item.IsAtomic() || item.atomic().type() != type.atomic) {
            return false;
          }
          break;
        case SequenceType::ItemKind::kNode:
          if (!item.IsNode()) return false;
          break;
        case SequenceType::ItemKind::kElement:
          if (!item.IsNode() || item.node()->kind() != NodeKind::kElement) {
            return false;
          }
          break;
        case SequenceType::ItemKind::kAttribute:
          if (!item.IsNode() || item.node()->kind() != NodeKind::kAttribute) {
            return false;
          }
          break;
        case SequenceType::ItemKind::kDocument:
          if (!item.IsNode() || item.node()->kind() != NodeKind::kDocument) {
            return false;
          }
          break;
        case SequenceType::ItemKind::kText:
          if (!item.IsNode() || item.node()->kind() != NodeKind::kText) {
            return false;
          }
          break;
      }
    }
    if (type.kind == SequenceType::ItemKind::kEmpty) return seq.empty();
    return true;
  }

  // --------------------------------------------------------- dispatcher

  StatusOr<Sequence> Eval(const Expr& e) {
    if (cfg_.cancel != nullptr) {
      // Cooperative cancellation: every expression dispatch is a poll
      // point, so a deadline expiring mid-query (e.g. while iterating a
      // FLWOR over nested `execute at` calls) is observed within one
      // evaluation step — no runaway query can outlive its budget by more
      // than one expression.
      XRPC_RETURN_IF_ERROR(cfg_.cancel->CheckCancelled());
    }
    if (++depth_ > cfg_.max_recursion_depth * 16) {
      --depth_;
      return Status::EvalError("expression nesting too deep");
    }
    auto result = EvalImpl(e);
    --depth_;
    return result;
  }

  StatusOr<Sequence> EvalImpl(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return Sequence{Item(e.literal)};
      case ExprKind::kSequence: {
        Sequence out;
        for (const ExprPtr& c : e.children) {
          XRPC_ASSIGN_OR_RETURN(Sequence part, Eval(*c));
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
      case ExprKind::kRange:
        return EvalRange(e);
      case ExprKind::kVarRef: {
        XRPC_ASSIGN_OR_RETURN(const Sequence* v, LookupVar(e.name));
        return *v;
      }
      case ExprKind::kContextItem:
        if (!focus_.item.has_value()) {
          return EvalError("context item is undefined");
        }
        return Sequence{*focus_.item};
      case ExprKind::kFlwor:
        return EvalFlwor(e);
      case ExprKind::kIf: {
        XRPC_ASSIGN_OR_RETURN(Sequence cond, Eval(*e.children[0]));
        XRPC_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(cond));
        return Eval(b ? *e.children[1] : *e.children[2]);
      }
      case ExprKind::kQuantified:
        return EvalQuantified(e);
      case ExprKind::kOr: {
        XRPC_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
        XRPC_ASSIGN_OR_RETURN(bool lb, xdm::EffectiveBooleanValue(l));
        if (lb) return xdm::SingletonBool(true);
        XRPC_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
        XRPC_ASSIGN_OR_RETURN(bool rb, xdm::EffectiveBooleanValue(r));
        return xdm::SingletonBool(rb);
      }
      case ExprKind::kAnd: {
        XRPC_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
        XRPC_ASSIGN_OR_RETURN(bool lb, xdm::EffectiveBooleanValue(l));
        if (!lb) return xdm::SingletonBool(false);
        XRPC_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
        XRPC_ASSIGN_OR_RETURN(bool rb, xdm::EffectiveBooleanValue(r));
        return xdm::SingletonBool(rb);
      }
      case ExprKind::kComparison:
        return EvalComparison(e);
      case ExprKind::kArith:
        return EvalArith(e);
      case ExprKind::kUnaryMinus: {
        XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
        if (v.empty()) return v;
        XRPC_ASSIGN_OR_RETURN(AtomicValue a, AtomizeOne(v, "unary minus"));
        if (a.type() == AtomicType::kInteger) {
          return xdm::SingletonInt(-a.AsInteger());
        }
        XRPC_ASSIGN_OR_RETURN(AtomicValue d, a.CastTo(AtomicType::kDouble));
        return xdm::SingletonDouble(-d.AsDouble());
      }
      case ExprKind::kUnion: {
        XRPC_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
        XRPC_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
        l.insert(l.end(), r.begin(), r.end());
        XRPC_RETURN_IF_ERROR(xdm::SortByDocumentOrder(&l));
        return l;
      }
      case ExprKind::kPath:
        return EvalPath(e);
      case ExprKind::kFilter: {
        XRPC_ASSIGN_OR_RETURN(Sequence in, Eval(*e.children[0]));
        return ApplyPredicates(std::move(in), e.predicates);
      }
      case ExprKind::kFunctionCall:
        return EvalFunctionCall(e);
      case ExprKind::kExecuteAt:
        return EvalExecuteAt(e);
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kTextCtor:
      case ExprKind::kCommentCtor:
      case ExprKind::kPiCtor:
      case ExprKind::kDocumentCtor:
        return EvalConstructor(e);
      case ExprKind::kCastAs: {
        XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
        if (v.empty()) {
          if (e.seq_type.occurrence == Occurrence::kZeroOrOne) return v;
          return Status::TypeError("cast of empty sequence");
        }
        XRPC_ASSIGN_OR_RETURN(AtomicValue a, AtomizeOne(v, "cast"));
        if (e.seq_type.kind != SequenceType::ItemKind::kAtomic) {
          return Status::TypeError("cast target must be an atomic type");
        }
        XRPC_ASSIGN_OR_RETURN(AtomicValue c, a.CastTo(e.seq_type.atomic));
        return Sequence{Item(std::move(c))};
      }
      case ExprKind::kCastableAs: {
        XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
        if (v.empty()) {
          return xdm::SingletonBool(e.seq_type.occurrence ==
                                    Occurrence::kZeroOrOne);
        }
        if (v.size() > 1 ||
            e.seq_type.kind != SequenceType::ItemKind::kAtomic) {
          return xdm::SingletonBool(false);
        }
        auto c = v[0].Atomize().CastTo(e.seq_type.atomic);
        return xdm::SingletonBool(c.ok());
      }
      case ExprKind::kInstanceOf: {
        XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
        return xdm::SingletonBool(MatchesSequenceType(v, e.seq_type));
      }
      case ExprKind::kTreatAs: {
        XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
        if (!MatchesSequenceType(v, e.seq_type)) {
          return Status::TypeError("treat as " + e.seq_type.ToString() +
                                   " failed");
        }
        return v;
      }
      case ExprKind::kInsert:
      case ExprKind::kDelete:
      case ExprKind::kReplaceNode:
      case ExprKind::kReplaceValue:
      case ExprKind::kRename:
        return EvalUpdating(e);
    }
    return Status::Internal("unhandled expression kind");
  }

  // ------------------------------------------------------------- pieces

  StatusOr<Sequence> EvalRange(const Expr& e) {
    XRPC_ASSIGN_OR_RETURN(Sequence lo_s, Eval(*e.children[0]));
    XRPC_ASSIGN_OR_RETURN(Sequence hi_s, Eval(*e.children[1]));
    if (lo_s.empty() || hi_s.empty()) return Sequence{};
    XRPC_ASSIGN_OR_RETURN(AtomicValue lo_a, AtomizeOne(lo_s, "range"));
    XRPC_ASSIGN_OR_RETURN(AtomicValue hi_a, AtomizeOne(hi_s, "range"));
    XRPC_ASSIGN_OR_RETURN(AtomicValue lo, lo_a.CastTo(AtomicType::kInteger));
    XRPC_ASSIGN_OR_RETURN(AtomicValue hi, hi_a.CastTo(AtomicType::kInteger));
    Sequence out;
    int64_t a = lo.AsInteger(), b = hi.AsInteger();
    if (a > b) return out;
    if (b - a > 100'000'000) return EvalError("range too large");
    out.reserve(static_cast<size_t>(b - a + 1));
    for (int64_t i = a; i <= b; ++i) out.push_back(Item(AtomicValue::Integer(i)));
    return out;
  }

  StatusOr<Sequence> EvalFlwor(const Expr& e) {
    struct OrderedResult {
      std::vector<AtomicValue> keys;
      std::vector<bool> key_empty;
      Sequence value;
    };
    std::vector<OrderedResult> ordered;
    Sequence out;

    Status st = ForEachTuple(e, 0, [&]() -> Status {
      if (e.where != nullptr) {
        XRPC_ASSIGN_OR_RETURN(Sequence w, Eval(*e.where));
        XRPC_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(w));
        if (!b) return Status::OK();
      }
      if (e.order_by.empty()) {
        XRPC_ASSIGN_OR_RETURN(Sequence r, Eval(*e.ret));
        out.insert(out.end(), r.begin(), r.end());
        return Status::OK();
      }
      OrderedResult res;
      for (const OrderSpec& spec : e.order_by) {
        XRPC_ASSIGN_OR_RETURN(Sequence k, Eval(*spec.key));
        if (k.empty()) {
          res.keys.push_back(AtomicValue::String(""));
          res.key_empty.push_back(true);
        } else {
          XRPC_ASSIGN_OR_RETURN(AtomicValue a, AtomizeOne(k, "order by"));
          res.keys.push_back(std::move(a));
          res.key_empty.push_back(false);
        }
      }
      XRPC_ASSIGN_OR_RETURN(res.value, Eval(*e.ret));
      ordered.push_back(std::move(res));
      return Status::OK();
    });
    XRPC_RETURN_IF_ERROR(st);

    if (e.order_by.empty()) return out;

    Status sort_error = Status::OK();
    std::stable_sort(
        ordered.begin(), ordered.end(),
        [&](const OrderedResult& a, const OrderedResult& b) {
          for (size_t i = 0; i < e.order_by.size(); ++i) {
            const OrderSpec& spec = e.order_by[i];
            if (a.key_empty[i] || b.key_empty[i]) {
              if (a.key_empty[i] == b.key_empty[i]) continue;
              bool a_first = a.key_empty[i] != spec.empty_greatest;
              return spec.descending ? !a_first : a_first;
            }
            auto cmp = xdm::CompareAtomic(a.keys[i], b.keys[i]);
            if (!cmp.ok()) {
              if (sort_error.ok()) sort_error = cmp.status();
              return false;
            }
            int c = cmp.value();
            if (c != 0) return spec.descending ? c > 0 : c < 0;
          }
          return false;
        });
    XRPC_RETURN_IF_ERROR(sort_error);
    for (OrderedResult& r : ordered) {
      out.insert(out.end(), r.value.begin(), r.value.end());
    }
    return out;
  }

  template <typename Fn>
  Status ForEachTuple(const Expr& e, size_t idx, const Fn& fn) {
    if (idx == e.clauses.size()) return fn();
    const FlworClause& c = e.clauses[idx];
    XRPC_ASSIGN_OR_RETURN(Sequence seq, Eval(*c.expr));
    if (c.kind == FlworClause::Kind::kLet) {
      vars_.emplace_back(c.var.Clark(), std::move(seq));
      Status st = ForEachTuple(e, idx + 1, fn);
      vars_.pop_back();
      return st;
    }
    for (size_t i = 0; i < seq.size(); ++i) {
      vars_.emplace_back(c.var.Clark(), Sequence{seq[i]});
      if (!c.pos_var.empty()) {
        vars_.emplace_back(c.pos_var.Clark(),
                           xdm::SingletonInt(static_cast<int64_t>(i + 1)));
      }
      Status st = ForEachTuple(e, idx + 1, fn);
      if (!c.pos_var.empty()) vars_.pop_back();
      vars_.pop_back();
      XRPC_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  }

  StatusOr<Sequence> EvalQuantified(const Expr& e) {
    bool result = e.every;
    Status st = ForEachTuple(e, 0, [&]() -> Status {
      XRPC_ASSIGN_OR_RETURN(Sequence s, Eval(*e.ret));
      XRPC_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(s));
      if (e.every) {
        if (!b) result = false;
      } else {
        if (b) result = true;
      }
      return Status::OK();
    });
    XRPC_RETURN_IF_ERROR(st);
    return xdm::SingletonBool(result);
  }

  StatusOr<Sequence> EvalComparison(const Expr& e) {
    XRPC_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
    XRPC_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
    switch (e.comp_op) {
      case CompOp::kNodeIs:
      case CompOp::kNodeBefore:
      case CompOp::kNodeAfter: {
        if (l.empty() || r.empty()) return Sequence{};
        if (l.size() != 1 || r.size() != 1 || !l[0].IsNode() ||
            !r[0].IsNode()) {
          return Status::TypeError("node comparison requires single nodes");
        }
        int c = xml::CompareDocumentOrder(l[0].node(), r[0].node());
        bool v = e.comp_op == CompOp::kNodeIs
                     ? l[0].node() == r[0].node()
                     : (e.comp_op == CompOp::kNodeBefore ? c < 0 : c > 0);
        return xdm::SingletonBool(v);
      }
      default:
        break;
    }

    bool value_comp = e.comp_op == CompOp::kValEq ||
                      e.comp_op == CompOp::kValNe ||
                      e.comp_op == CompOp::kValLt ||
                      e.comp_op == CompOp::kValLe ||
                      e.comp_op == CompOp::kValGt || e.comp_op == CompOp::kValGe;

    auto satisfied = [&](int c) {
      switch (e.comp_op) {
        case CompOp::kGenEq:
        case CompOp::kValEq:
          return c == 0;
        case CompOp::kGenNe:
        case CompOp::kValNe:
          return c != 0;
        case CompOp::kGenLt:
        case CompOp::kValLt:
          return c < 0;
        case CompOp::kGenLe:
        case CompOp::kValLe:
          return c <= 0;
        case CompOp::kGenGt:
        case CompOp::kValGt:
          return c > 0;
        case CompOp::kGenGe:
        case CompOp::kValGe:
          return c >= 0;
        default:
          return false;
      }
    };

    if (value_comp) {
      if (l.empty() || r.empty()) return Sequence{};
      XRPC_ASSIGN_OR_RETURN(AtomicValue la, AtomizeOne(l, "value comparison"));
      XRPC_ASSIGN_OR_RETURN(AtomicValue ra, AtomizeOne(r, "value comparison"));
      // Value comparison treats untypedAtomic as string.
      if (la.type() == AtomicType::kUntypedAtomic) {
        la = AtomicValue::String(la.ToString());
      }
      if (ra.type() == AtomicType::kUntypedAtomic) {
        ra = AtomicValue::String(ra.ToString());
      }
      XRPC_ASSIGN_OR_RETURN(int c, xdm::CompareAtomic(la, ra));
      return xdm::SingletonBool(satisfied(c));
    }

    // General comparison: existential over atomized operands.
    std::vector<AtomicValue> la = xdm::AtomizeSequence(l);
    std::vector<AtomicValue> ra = xdm::AtomizeSequence(r);
    for (const AtomicValue& a : la) {
      for (const AtomicValue& b : ra) {
        XRPC_ASSIGN_OR_RETURN(int c, xdm::CompareAtomic(a, b));
        if (satisfied(c)) return xdm::SingletonBool(true);
      }
    }
    return xdm::SingletonBool(false);
  }

  StatusOr<Sequence> EvalArith(const Expr& e) {
    XRPC_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
    XRPC_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
    if (l.empty() || r.empty()) return Sequence{};
    XRPC_ASSIGN_OR_RETURN(AtomicValue la, AtomizeOne(l, "arithmetic"));
    XRPC_ASSIGN_OR_RETURN(AtomicValue ra, AtomizeOne(r, "arithmetic"));
    if (la.type() == AtomicType::kUntypedAtomic) {
      XRPC_ASSIGN_OR_RETURN(la, la.CastTo(AtomicType::kDouble));
    }
    if (ra.type() == AtomicType::kUntypedAtomic) {
      XRPC_ASSIGN_OR_RETURN(ra, ra.CastTo(AtomicType::kDouble));
    }
    if (!la.IsNumeric() || !ra.IsNumeric()) {
      return Status::TypeError("arithmetic on non-numeric operands");
    }
    bool both_int = la.type() == AtomicType::kInteger &&
                    ra.type() == AtomicType::kInteger;
    switch (e.arith_op) {
      case ArithOp::kAdd:
        if (both_int) return xdm::SingletonInt(la.AsInteger() + ra.AsInteger());
        return xdm::SingletonDouble(la.AsDouble() + ra.AsDouble());
      case ArithOp::kSub:
        if (both_int) return xdm::SingletonInt(la.AsInteger() - ra.AsInteger());
        return xdm::SingletonDouble(la.AsDouble() - ra.AsDouble());
      case ArithOp::kMul:
        if (both_int) return xdm::SingletonInt(la.AsInteger() * ra.AsInteger());
        return xdm::SingletonDouble(la.AsDouble() * ra.AsDouble());
      case ArithOp::kDiv: {
        double d = ra.AsDouble();
        if (both_int && d == 0) return EvalError("division by zero (FOAR0001)");
        return xdm::SingletonDouble(la.AsDouble() / d);
      }
      case ArithOp::kIDiv: {
        if (ra.AsDouble() == 0) return EvalError("division by zero (FOAR0001)");
        return xdm::SingletonInt(
            static_cast<int64_t>(std::trunc(la.AsDouble() / ra.AsDouble())));
      }
      case ArithOp::kMod: {
        if (both_int) {
          if (ra.AsInteger() == 0) {
            return EvalError("division by zero (FOAR0001)");
          }
          return xdm::SingletonInt(la.AsInteger() % ra.AsInteger());
        }
        return xdm::SingletonDouble(std::fmod(la.AsDouble(), ra.AsDouble()));
      }
    }
    return Status::Internal("unhandled arithmetic op");
  }

  // ---------------------------------------------------------------- paths

  StatusOr<Sequence> EvalPath(const Expr& e) {
    Sequence input;
    if (e.children[0] != nullptr) {
      XRPC_ASSIGN_OR_RETURN(input, Eval(*e.children[0]));
    } else {
      if (!focus_.item.has_value()) {
        return EvalError("path step with undefined context item");
      }
      if (!focus_.item->IsNode()) {
        return Status::TypeError("context item is not a node");
      }
      if (e.root_path) {
        Node* root = focus_.item->node()->Root();
        input.push_back(Item::NodeInTree(root, focus_.item->anchor()));
      } else {
        input.push_back(*focus_.item);
      }
    }

    // Per-query path memo: the predicate-free step prefix applied to a
    // single source node is deterministic within one evaluation, so bulk
    // queries that re-apply the same path per call (the wrapper's
    // generated query, the semi-join's Q_B3) pay the scan once. This is
    // the amortization the paper observes in Saxon's bulk exec times.
    size_t prefix = 0;
    while (cfg_.enable_path_memo && prefix < e.steps.size() &&
           e.steps[prefix].predicates.empty()) {
      ++prefix;
    }
    size_t first_step = 0;
    if (prefix > 0 && input.size() == 1 && input[0].IsNode()) {
      PathMemoKey key{&e, input[0].node()};
      auto hit = path_memo_.find(key);
      if (hit != path_memo_.end()) {
        input = hit->second;
      } else {
        Sequence start = input;
        for (size_t i = 0; i < prefix; ++i) {
          XRPC_ASSIGN_OR_RETURN(input, EvalStep(input, e.steps[i]));
        }
        path_memo_.emplace(key, input);
      }
      first_step = prefix;

      // When the next step is the last one and its predicates are plain
      // (non-positional) comparisons, memoize its candidate collection as
      // well: repeated calls then reduce to predicate probes against the
      // cached candidates — which the join index answers in O(1). This is
      // what turns the bulk getPerson selection into a join.
      if (first_step + 1 == e.steps.size()) {
        const PathStep& last = e.steps[first_step];
        bool plain = !last.predicates.empty();
        for (const ExprPtr& pred : last.predicates) {
          if (pred->kind != ExprKind::kComparison || HasPositionalRef(*pred)) {
            plain = false;
            break;
          }
        }
        if (plain) {
          PathMemoKey ckey{reinterpret_cast<const Expr*>(&last),
                           input.empty() ? nullptr : input[0].node()};
          Sequence candidates;
          auto chit = path_memo_.find(ckey);
          if (chit != path_memo_.end()) {
            candidates = chit->second;
          } else {
            XRPC_ASSIGN_OR_RETURN(candidates,
                                  CollectStepCandidates(input, last));
            path_memo_.emplace(ckey, candidates);
          }
          return ApplyPredicates(std::move(candidates), last.predicates);
        }
      }
    }
    for (size_t i = first_step; i < e.steps.size(); ++i) {
      XRPC_ASSIGN_OR_RETURN(input, EvalStep(input, e.steps[i]));
    }
    return input;
  }

  /// Forward axes emit results already in document order and free of
  /// duplicates when expanding a single context node; the sort-and-dedup
  /// pass is only needed otherwise.
  static bool IsForwardAxis(Axis axis) {
    switch (axis) {
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
      case Axis::kSelf:
      case Axis::kAttribute:
      case Axis::kFollowingSibling:
        return true;
      default:
        return false;
    }
  }

  /// True if the expression (transitively) calls fn:position or fn:last —
  /// such predicates depend on the per-context-node candidate grouping.
  static bool HasPositionalRef(const Expr& e) {
    if (e.kind == ExprKind::kFunctionCall && e.name.ns_uri == kFnNs &&
        (e.name.local == "position" || e.name.local == "last")) {
      return true;
    }
    for (const ExprPtr& c : e.children) {
      if (c && HasPositionalRef(*c)) return true;
    }
    for (const FlworClause& c : e.clauses) {
      if (c.expr && HasPositionalRef(*c.expr)) return true;
    }
    if (e.where && HasPositionalRef(*e.where)) return true;
    if (e.ret && HasPositionalRef(*e.ret)) return true;
    for (const ExprPtr& pr : e.predicates) {
      if (pr && HasPositionalRef(*pr)) return true;
    }
    for (const PathStep& st : e.steps) {
      for (const ExprPtr& pr : st.predicates) {
        if (pr && HasPositionalRef(*pr)) return true;
      }
    }
    return false;
  }

  /// Collects a step's axis/test output for every input node, without
  /// applying predicates; result in document order, duplicate-free.
  StatusOr<Sequence> CollectStepCandidates(const Sequence& input,
                                           const PathStep& step) {
    Sequence result;
    for (const Item& item : input) {
      if (!item.IsNode()) {
        return Status::TypeError("path step applied to an atomic value");
      }
      CollectAxis(item, step.axis, step.test, &result);
    }
    if (input.size() == 1 && IsForwardAxis(step.axis)) return result;
    XRPC_RETURN_IF_ERROR(xdm::SortByDocumentOrder(&result));
    return result;
  }

  StatusOr<Sequence> EvalStep(const Sequence& input, const PathStep& step) {
    Sequence result;
    for (const Item& item : input) {
      if (!item.IsNode()) {
        return Status::TypeError("path step applied to an atomic value");
      }
      Sequence step_out;
      CollectAxis(item, step.axis, step.test, &step_out);
      XRPC_ASSIGN_OR_RETURN(step_out,
                            ApplyPredicates(std::move(step_out),
                                            step.predicates));
      result.insert(result.end(), step_out.begin(), step_out.end());
    }
    if (input.size() == 1 && IsForwardAxis(step.axis)) {
      return result;  // already document order, duplicate-free
    }
    XRPC_RETURN_IF_ERROR(xdm::SortByDocumentOrder(&result));
    return result;
  }

  static bool TestMatches(const Node& n, const NodeTest& test, Axis axis) {
    switch (test.kind) {
      case NodeTest::Kind::kAnyKind:
        return true;
      case NodeTest::Kind::kText:
        return n.kind() == NodeKind::kText;
      case NodeTest::Kind::kComment:
        return n.kind() == NodeKind::kComment;
      case NodeTest::Kind::kPi:
        return n.kind() == NodeKind::kProcessingInstruction;
      case NodeTest::Kind::kElement:
        return n.kind() == NodeKind::kElement;
      case NodeTest::Kind::kAttribute:
        return n.kind() == NodeKind::kAttribute;
      case NodeTest::Kind::kDocument:
        return n.kind() == NodeKind::kDocument;
      case NodeTest::Kind::kName: {
        NodeKind principal = axis == Axis::kAttribute ? NodeKind::kAttribute
                                                      : NodeKind::kElement;
        if (n.kind() != principal) return false;
        if (test.wildcard) return true;
        return n.name() == test.name;
      }
    }
    return false;
  }

  void CollectAxis(const Item& item, Axis axis, const NodeTest& test,
                   Sequence* out) {
    Node* n = item.node();
    const NodePtr& anchor = item.anchor();
    auto emit = [&](Node* m) {
      if (TestMatches(*m, test, axis)) {
        out->push_back(Item::NodeInTree(m, anchor));
      }
    };
    switch (axis) {
      case Axis::kChild:
        for (const NodePtr& c : n->children()) emit(c.get());
        return;
      case Axis::kAttribute:
        for (const NodePtr& a : n->attributes()) emit(a.get());
        return;
      case Axis::kSelf:
        emit(n);
        return;
      case Axis::kParent:
        if (n->parent() != nullptr) emit(n->parent());
        return;
      case Axis::kDescendant:
        CollectDescendants(n, test, axis, anchor, out);
        return;
      case Axis::kDescendantOrSelf:
        emit(n);
        CollectDescendants(n, test, axis, anchor, out);
        return;
      case Axis::kAncestor:
        for (Node* p = n->parent(); p != nullptr; p = p->parent()) emit(p);
        return;
      case Axis::kAncestorOrSelf:
        for (Node* p = n; p != nullptr; p = p->parent()) emit(p);
        return;
      case Axis::kFollowingSibling: {
        Node* parent = n->parent();
        if (parent == nullptr || n->kind() == NodeKind::kAttribute) return;
        for (size_t i = n->IndexInParent() + 1; i < parent->children().size();
             ++i) {
          emit(parent->children()[i].get());
        }
        return;
      }
      case Axis::kPrecedingSibling: {
        Node* parent = n->parent();
        if (parent == nullptr || n->kind() == NodeKind::kAttribute) return;
        for (size_t i = 0; i < n->IndexInParent(); ++i) {
          emit(parent->children()[i].get());
        }
        return;
      }
    }
  }

  void CollectDescendants(Node* n, const NodeTest& test, Axis axis,
                          const NodePtr& anchor, Sequence* out) {
    for (const NodePtr& c : n->children()) {
      if (TestMatches(*c, test, axis)) {
        out->push_back(Item::NodeInTree(c.get(), anchor));
      }
      CollectDescendants(c.get(), test, axis, anchor, out);
    }
  }

  // ---- Join detection (the optimization the paper observes in Saxon):
  // a predicate of the form [path-from-context = $var] applied repeatedly
  // to the same large candidate set (as the bulk wrapper query does) is
  // executed through a hash index on the path's string value, turning the
  // per-call selection into a join. The index is built once per
  // (predicate, candidate-set) pair and lives for this query evaluation.

  /// True for a path evaluated from the context item using only downward
  /// axes and no nested predicates (safe to index).
  static bool IsDownwardContextPath(const Expr& e) {
    if (e.kind != ExprKind::kPath) return false;
    if (e.root_path) return false;
    if (e.children[0] != nullptr &&
        e.children[0]->kind != ExprKind::kContextItem) {
      return false;
    }
    for (const PathStep& s : e.steps) {
      if (s.axis != Axis::kChild && s.axis != Axis::kDescendant &&
          s.axis != Axis::kDescendantOrSelf && s.axis != Axis::kAttribute &&
          s.axis != Axis::kSelf) {
        return false;
      }
      if (!s.predicates.empty()) return false;
    }
    return true;
  }

  static bool IsContextIndependent(const Expr& e) {
    return e.kind == ExprKind::kVarRef || e.kind == ExprKind::kLiteral;
  }

  /// Returns the indexable (key-path, probe) orientation of an equality
  /// predicate, or nullptr key path if not indexable.
  static std::pair<const Expr*, const Expr*> IndexableEquality(
      const Expr& pred) {
    if (pred.kind != ExprKind::kComparison ||
        pred.comp_op != CompOp::kGenEq) {
      return {nullptr, nullptr};
    }
    const Expr* l = pred.children[0].get();
    const Expr* r = pred.children[1].get();
    if (IsDownwardContextPath(*l) && IsContextIndependent(*r)) return {l, r};
    if (IsDownwardContextPath(*r) && IsContextIndependent(*l)) return {r, l};
    return {nullptr, nullptr};
  }

  struct JoinIndex {
    size_t size = 0;
    const Node* first = nullptr;
    const Node* last = nullptr;
    std::multimap<std::string, size_t> by_value;
  };

  /// Applies an indexable equality predicate via the hash index; returns
  /// the kept candidates. Only used when all probe values are
  /// string-comparable (string/untypedAtomic), where string equality
  /// coincides with XQuery general-comparison semantics.
  StatusOr<Sequence> ApplyIndexedPredicate(const Sequence& in,
                                           const Expr& pred,
                                           const Expr* key_path,
                                           const Expr* probe) {
    XRPC_ASSIGN_OR_RETURN(Sequence probe_seq, Eval(*probe));
    for (const Item& p : probe_seq) {
      AtomicValue v = p.Atomize();
      if (v.type() != AtomicType::kString &&
          v.type() != AtomicType::kUntypedAtomic &&
          v.type() != AtomicType::kAnyUri) {
        return Status::Unsupported("probe not string-typed");
      }
    }
    auto cache_key = std::make_pair(&pred, static_cast<const void*>(
                                               in.front().node()));
    auto it = join_indexes_.find(cache_key);
    if (it == join_indexes_.end() || it->second.size != in.size() ||
        it->second.last != in.back().node()) {
      JoinIndex index;
      index.size = in.size();
      index.first = in.front().node();
      index.last = in.back().node();
      Focus saved = focus_;
      for (size_t i = 0; i < in.size(); ++i) {
        focus_.item = in[i];
        focus_.position = static_cast<int64_t>(i + 1);
        focus_.size = static_cast<int64_t>(in.size());
        auto keys = Eval(*key_path);
        if (!keys.ok()) {
          focus_ = saved;
          return keys.status();
        }
        for (const Item& k : keys.value()) {
          index.by_value.emplace(k.StringValue(), i);
        }
      }
      focus_ = saved;
      it = join_indexes_.emplace(cache_key, std::move(index)).first;
    }
    std::set<size_t> hits;
    for (const Item& p : probe_seq) {
      auto [lo, hi] = it->second.by_value.equal_range(p.StringValue());
      for (auto h = lo; h != hi; ++h) hits.insert(h->second);
    }
    Sequence kept;
    for (size_t i : hits) kept.push_back(in[i]);
    return kept;
  }

  StatusOr<Sequence> ApplyPredicates(Sequence in,
                                     const std::vector<ExprPtr>& preds) {
    for (const ExprPtr& pred : preds) {
      if (cfg_.enable_join_index && in.size() >= 16 && in[0].IsNode()) {
        auto [key_path, probe] = IndexableEquality(*pred);
        if (key_path != nullptr) {
          auto indexed = ApplyIndexedPredicate(in, *pred, key_path, probe);
          if (indexed.ok()) {
            in = std::move(indexed).value();
            continue;
          }
          if (indexed.status().code() != StatusCode::kUnsupported) {
            return indexed.status();
          }
        }
      }
      Sequence filtered;
      Focus saved = focus_;
      int64_t size = static_cast<int64_t>(in.size());
      for (size_t i = 0; i < in.size(); ++i) {
        focus_.item = in[i];
        focus_.position = static_cast<int64_t>(i + 1);
        focus_.size = size;
        auto value = Eval(*pred);
        if (!value.ok()) {
          focus_ = saved;
          return value.status();
        }
        const Sequence& v = value.value();
        bool keep;
        if (v.size() == 1 && v[0].IsAtomic() && v[0].atomic().IsNumeric()) {
          keep = v[0].atomic().AsDouble() ==
                 static_cast<double>(focus_.position);
        } else {
          auto ebv = xdm::EffectiveBooleanValue(v);
          if (!ebv.ok()) {
            focus_ = saved;
            return ebv.status();
          }
          keep = ebv.value();
        }
        if (keep) filtered.push_back(in[i]);
      }
      focus_ = saved;
      in = std::move(filtered);
    }
    return in;
  }

  // ------------------------------------------------------- function calls

  StatusOr<Sequence> EvalFunctionCall(const Expr& e) {
    // xs:TYPE(value) constructor functions.
    if (e.name.ns_uri == xml::kXsNs) {
      if (e.children.size() != 1) {
        return Status::TypeError("constructor function takes one argument");
      }
      XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
      if (v.empty()) return v;
      XRPC_ASSIGN_OR_RETURN(AtomicValue a, AtomizeOne(v, "constructor"));
      XRPC_ASSIGN_OR_RETURN(AtomicType t,
                            xdm::AtomicTypeFromName("xs:" + e.name.local));
      XRPC_ASSIGN_OR_RETURN(AtomicValue c, a.CastTo(t));
      return Sequence{Item(std::move(c))};
    }

    // Focus-dependent built-ins are handled before argument evaluation.
    if (e.name.ns_uri == kFnNs) {
      if (e.name.local == "position" && e.children.empty()) {
        if (focus_.position == 0) return EvalError("fn:position: no context");
        return xdm::SingletonInt(focus_.position);
      }
      if (e.name.local == "last" && e.children.empty()) {
        if (focus_.position == 0) return EvalError("fn:last: no context");
        return xdm::SingletonInt(focus_.size);
      }
    }

    std::vector<Sequence> args;
    args.reserve(e.children.size());
    for (const ExprPtr& c : e.children) {
      XRPC_ASSIGN_OR_RETURN(Sequence a, Eval(*c));
      args.push_back(std::move(a));
    }

    // User-defined functions: current module, then imported modules.
    const FunctionDef* def = nullptr;
    const LibraryModule* def_module = nullptr;
    const Scope& scope = CurrentScope();
    for (const FunctionDef& f : scope.prolog->functions) {
      if (f.name == e.name && f.arity() == e.children.size()) {
        def = &f;
        break;
      }
    }
    if (def == nullptr) {
      auto it = scope.imports_by_ns.find(e.name.ns_uri);
      if (it != scope.imports_by_ns.end()) {
        def = it->second->FindFunction(e.name, e.children.size());
        def_module = it->second;
      }
    }
    if (def != nullptr) {
      return CallUserFunction(*def, def_module, std::move(args));
    }

    if (e.name.ns_uri == kFnNs || e.name.ns_uri == xml::kXrpcNs) {
      return EvalBuiltin(e.name, std::move(args));
    }
    return Status::NotFound("unknown function " + e.name.Clark() + "#" +
                            std::to_string(e.children.size()));
  }

  StatusOr<Sequence> CallUserFunction(const FunctionDef& def,
                                      const LibraryModule* module,
                                      std::vector<Sequence> args) {
    if (++call_depth_ > cfg_.max_recursion_depth) {
      --call_depth_;
      return EvalError("function recursion limit exceeded");
    }
    size_t env_mark = vars_.size();
    size_t scope_mark = scopes_.size();
    Focus saved_focus = focus_;
    focus_ = Focus{};

    Status st = Status::OK();
    Sequence result;
    do {
      if (module != nullptr) {
        auto scope_or = BuildScope(&module->prolog, module->target_ns);
        if (!scope_or.ok()) {
          st = scope_or.status();
          break;
        }
        scopes_.push_back(std::move(scope_or).value());
      }
      for (size_t i = 0; i < args.size(); ++i) {
        auto coerced = CoerceToType(std::move(args[i]), def.params[i].type);
        if (!coerced.ok()) {
          st = coerced.status();
          break;
        }
        vars_.emplace_back(def.params[i].name.Clark(),
                           std::move(coerced).value());
      }
      if (!st.ok()) break;
      auto body = Eval(*def.body);
      if (!body.ok()) {
        st = body.status();
        break;
      }
      result = std::move(body).value();
    } while (false);

    vars_.resize(env_mark);
    scopes_.resize(scope_mark);
    focus_ = saved_focus;
    --call_depth_;
    XRPC_RETURN_IF_ERROR(st);
    return result;
  }

  // ------------------------------------------------------------ XRPC call

  StatusOr<Sequence> EvalExecuteAt(const Expr& e) {
    if (cfg_.rpc == nullptr) {
      return EvalError("no RPC handler configured for 'execute at'");
    }
    XRPC_ASSIGN_OR_RETURN(Sequence dest_s, Eval(*e.children[0]));
    XRPC_ASSIGN_OR_RETURN(AtomicValue dest_a, AtomizeOne(dest_s, "execute at"));

    RpcCall call;
    call.dest_uri = dest_a.ToString();
    call.function = e.name;
    call.module_ns = e.name.ns_uri;
    const Scope& scope = CurrentScope();
    auto loc = scope.location_by_ns.find(e.name.ns_uri);
    if (loc != scope.location_by_ns.end()) {
      call.module_location = loc->second;
    }
    // If the module is resolvable locally, detect updating functions so the
    // protocol can route the call through the update path.
    auto imp = scope.imports_by_ns.find(e.name.ns_uri);
    if (imp != scope.imports_by_ns.end()) {
      const FunctionDef* def =
          imp->second->FindFunction(e.name, e.children.size() - 1);
      if (def != nullptr) call.updating = def->updating;
    }
    for (size_t i = 1; i < e.children.size(); ++i) {
      XRPC_ASSIGN_OR_RETURN(Sequence a, Eval(*e.children[i]));
      call.args.push_back(std::move(a));
    }
    return cfg_.rpc->Execute(call);
  }

  // ---------------------------------------------------------- constructors

  /// Appends evaluated content items to a parent node per the XQuery
  /// constructor content rules: adjacent atomic values join with a space
  /// into one text node; node items are deep-copied; document nodes
  /// contribute their children.
  Status BuildContent(Node* parent, const Sequence& items) {
    std::string pending_text;
    bool has_pending = false;
    auto flush = [&]() {
      if (has_pending && !pending_text.empty()) {
        parent->AppendChild(Node::NewText(pending_text));
      }
      pending_text.clear();
      has_pending = false;
    };
    for (const Item& item : items) {
      if (item.IsAtomic()) {
        if (has_pending) pending_text += " ";
        pending_text += item.atomic().ToString();
        has_pending = true;
        continue;
      }
      const Node* n = item.node();
      if (n->kind() == NodeKind::kAttribute) {
        flush();
        parent->SetAttribute(n->Clone());
        continue;
      }
      if (n->kind() == NodeKind::kDocument) {
        flush();
        for (const NodePtr& c : n->children()) {
          parent->AppendChild(c->Clone());
        }
        continue;
      }
      flush();
      parent->AppendChild(n->Clone());
    }
    flush();
    return Status::OK();
  }

  StatusOr<std::string> ContentString(const Expr& e) {
    std::string out;
    bool first = true;
    for (const ExprPtr& c : e.children) {
      XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*c));
      if (c->kind == ExprKind::kLiteral) {
        out += v.empty() ? "" : v[0].StringValue();
        first = false;
        continue;
      }
      for (const Item& item : v) {
        if (!first) {
          // Items from one enclosed expression join with spaces.
        }
        if (!out.empty() && !first) out += " ";
        out += item.StringValue();
        first = false;
      }
    }
    return out;
  }

  StatusOr<xml::QName> ComputedName(const Expr& e) {
    if (e.name_expr == nullptr) return e.name;
    XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.name_expr));
    XRPC_ASSIGN_OR_RETURN(AtomicValue a, AtomizeOne(v, "computed name"));
    std::string lex = a.ToString();
    size_t colon = lex.find(':');
    if (colon == std::string::npos) return xml::QName(lex);
    // A computed prefixed name without static scope information: keep the
    // prefix lexically, no URI (sufficient for rename of same-document
    // names).
    return xml::QName("", lex.substr(colon + 1), lex.substr(0, colon));
  }

  StatusOr<Sequence> EvalConstructor(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kElementCtor: {
        XRPC_ASSIGN_OR_RETURN(xml::QName name, ComputedName(e));
        NodePtr elem = Node::NewElement(std::move(name));
        for (const ExprPtr& attr : e.attributes) {
          XRPC_ASSIGN_OR_RETURN(std::string value, ContentString(*attr));
          elem->SetAttribute(
              Node::NewAttribute(attr->name, std::move(value)));
        }
        for (const ExprPtr& c : e.children) {
          if (c->kind == ExprKind::kTextCtor &&
              c->literal.type() == AtomicType::kString &&
              c->children.empty()) {
            // Literal text from the direct constructor body.
            elem->AppendChild(Node::NewText(c->literal.ToString()));
            continue;
          }
          if (c->kind == ExprKind::kAttributeCtor) {
            XRPC_ASSIGN_OR_RETURN(Sequence av, Eval(*c));
            for (const Item& item : av) {
              if (item.IsNode() &&
                  item.node()->kind() == NodeKind::kAttribute) {
                elem->SetAttribute(item.node()->Clone());
              }
            }
            continue;
          }
          XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*c));
          XRPC_RETURN_IF_ERROR(BuildContent(elem.get(), v));
        }
        return Sequence{Item::Node(std::move(elem))};
      }
      case ExprKind::kAttributeCtor: {
        XRPC_ASSIGN_OR_RETURN(xml::QName name, ComputedName(e));
        XRPC_ASSIGN_OR_RETURN(std::string value, ContentString(e));
        return Sequence{
            Item::Node(Node::NewAttribute(std::move(name), std::move(value)))};
      }
      case ExprKind::kTextCtor: {
        if (e.children.empty()) {
          // Direct literal text.
          return Sequence{Item::Node(Node::NewText(e.literal.ToString()))};
        }
        XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
        if (v.empty()) return Sequence{};
        std::string text;
        for (size_t i = 0; i < v.size(); ++i) {
          if (i > 0) text += " ";
          text += v[i].StringValue();
        }
        return Sequence{Item::Node(Node::NewText(std::move(text)))};
      }
      case ExprKind::kCommentCtor: {
        std::string text;
        if (!e.children.empty()) {
          if (e.children[0]->kind == ExprKind::kLiteral) {
            text = e.children[0]->literal.ToString();
          } else {
            XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
            for (size_t i = 0; i < v.size(); ++i) {
              if (i > 0) text += " ";
              text += v[i].StringValue();
            }
          }
        }
        return Sequence{Item::Node(Node::NewComment(std::move(text)))};
      }
      case ExprKind::kPiCtor: {
        std::string text;
        if (!e.children.empty() &&
            e.children[0]->kind == ExprKind::kLiteral) {
          text = e.children[0]->literal.ToString();
        }
        return Sequence{Item::Node(
            Node::NewProcessingInstruction(e.name.local, std::move(text)))};
      }
      case ExprKind::kDocumentCtor: {
        NodePtr doc = Node::NewDocument();
        if (!e.children.empty()) {
          XRPC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0]));
          XRPC_RETURN_IF_ERROR(BuildContent(doc.get(), v));
        }
        return Sequence{Item::Node(std::move(doc))};
      }
      default:
        return Status::Internal("not a constructor");
    }
  }

  // -------------------------------------------------------------- updates

  StatusOr<Sequence> EvalUpdating(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kInsert: {
        XRPC_ASSIGN_OR_RETURN(Sequence src, Eval(*e.children[0]));
        XRPC_ASSIGN_OR_RETURN(Sequence tgt, Eval(*e.children[1]));
        if (tgt.size() != 1 || !tgt[0].IsNode()) {
          return Status::TypeError("insert target must be a single node");
        }
        UpdatePrimitive p;
        switch (e.insert_pos) {
          case InsertPos::kInto:
            p.kind = UpdatePrimitive::Kind::kInsertInto;
            break;
          case InsertPos::kAsFirstInto:
            p.kind = UpdatePrimitive::Kind::kInsertFirst;
            break;
          case InsertPos::kAsLastInto:
            p.kind = UpdatePrimitive::Kind::kInsertLast;
            break;
          case InsertPos::kBefore:
            p.kind = UpdatePrimitive::Kind::kInsertBefore;
            break;
          case InsertPos::kAfter:
            p.kind = UpdatePrimitive::Kind::kInsertAfter;
            break;
        }
        p.target = tgt[0];
        for (const Item& item : src) {
          if (item.IsNode()) {
            p.content.push_back(Item::Node(item.node()->Clone()));
          } else {
            p.content.push_back(
                Item::Node(Node::NewText(item.StringValue())));
          }
        }
        pul_.Add(std::move(p));
        return Sequence{};
      }
      case ExprKind::kDelete: {
        XRPC_ASSIGN_OR_RETURN(Sequence tgt, Eval(*e.children[0]));
        for (const Item& item : tgt) {
          if (!item.IsNode()) {
            return Status::TypeError("delete target must be nodes");
          }
          UpdatePrimitive p;
          p.kind = UpdatePrimitive::Kind::kDelete;
          p.target = item;
          pul_.Add(std::move(p));
        }
        return Sequence{};
      }
      case ExprKind::kReplaceNode:
      case ExprKind::kReplaceValue: {
        XRPC_ASSIGN_OR_RETURN(Sequence tgt, Eval(*e.children[0]));
        XRPC_ASSIGN_OR_RETURN(Sequence src, Eval(*e.children[1]));
        if (tgt.size() != 1 || !tgt[0].IsNode()) {
          return Status::TypeError("replace target must be a single node");
        }
        UpdatePrimitive p;
        p.target = tgt[0];
        if (e.kind == ExprKind::kReplaceValue) {
          p.kind = UpdatePrimitive::Kind::kReplaceValue;
          std::string value;
          for (size_t i = 0; i < src.size(); ++i) {
            if (i > 0) value += " ";
            value += src[i].StringValue();
          }
          p.new_value = std::move(value);
        } else {
          p.kind = UpdatePrimitive::Kind::kReplaceNode;
          for (const Item& item : src) {
            if (item.IsNode()) {
              p.content.push_back(Item::Node(item.node()->Clone()));
            } else {
              p.content.push_back(
                  Item::Node(Node::NewText(item.StringValue())));
            }
          }
        }
        pul_.Add(std::move(p));
        return Sequence{};
      }
      case ExprKind::kRename: {
        XRPC_ASSIGN_OR_RETURN(Sequence tgt, Eval(*e.children[0]));
        XRPC_ASSIGN_OR_RETURN(Sequence name_s, Eval(*e.children[1]));
        if (tgt.size() != 1 || !tgt[0].IsNode()) {
          return Status::TypeError("rename target must be a single node");
        }
        XRPC_ASSIGN_OR_RETURN(AtomicValue a, AtomizeOne(name_s, "rename"));
        UpdatePrimitive p;
        p.kind = UpdatePrimitive::Kind::kRename;
        p.target = tgt[0];
        p.new_name = xml::QName(a.ToString());
        pul_.Add(std::move(p));
        return Sequence{};
      }
      default:
        return Status::Internal("not an updating expression");
    }
  }

  // -------------------------------------------------------------- builtins

  StatusOr<Sequence> EvalBuiltin(const QName& name,
                                 std::vector<Sequence> args);

  const Interpreter::Config& cfg_;
  std::vector<std::pair<std::string, Sequence>> vars_;
  std::vector<Scope> scopes_;
  Focus focus_;
  /// Hash indexes built by the join-detection optimization; keyed by
  /// (predicate expression, first candidate node) and scoped to this
  /// query evaluation.
  std::map<std::pair<const Expr*, const void*>, JoinIndex> join_indexes_;
  /// Memoized predicate-free path prefixes (per query evaluation).
  using PathMemoKey = std::pair<const Expr*, const Node*>;
  std::map<PathMemoKey, Sequence> path_memo_;
  PendingUpdateList pul_;
  int depth_ = 0;
  int call_depth_ = 0;

  friend class BuiltinLibrary;
};

// =================================================================
// Built-in function library (fn: and xrpc: namespaces)
// =================================================================

StatusOr<Sequence> Evaluator::EvalBuiltin(const QName& name,
                                          std::vector<Sequence> args) {
  const std::string& f = name.local;
  size_t n = args.size();

  auto need = [&](size_t lo, size_t hi) -> Status {
    if (n < lo || n > hi) {
      return Status::TypeError("fn:" + f + ": wrong number of arguments");
    }
    return Status::OK();
  };
  auto string_arg = [&](size_t i) -> std::string {
    if (i >= n || args[i].empty()) return "";
    return args[i][0].StringValue();
  };

  if (name.ns_uri == xml::kXrpcNs) {
    // Helper functions of Section 5 (Advanced Pushdown): split xrpc:// URLs
    // into host prefix and path suffix; other URLs map to localhost + self.
    if (f == "host" || f == "path") {
      XRPC_RETURN_IF_ERROR(need(1, 1));
      std::string url = string_arg(0);
      if (StartsWith(url, "xrpc://")) {
        std::string rest = url.substr(7);
        size_t slash = rest.find('/');
        std::string host = slash == std::string::npos
                               ? rest
                               : rest.substr(0, slash);
        std::string path =
            slash == std::string::npos ? "" : rest.substr(slash + 1);
        return xdm::SingletonString(f == "host" ? "xrpc://" + host : path);
      }
      return xdm::SingletonString(f == "host" ? "localhost" : url);
    }
    return Status::NotFound("unknown xrpc function: " + f);
  }

  // ---- documents
  if (f == "doc") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    if (cfg_.documents == nullptr) {
      return Status::EvalError("fn:doc: no document provider configured");
    }
    if (args[0].empty()) return Sequence{};
    XRPC_ASSIGN_OR_RETURN(NodePtr doc,
                          cfg_.documents->GetDocument(string_arg(0)));
    return Sequence{Item::Node(std::move(doc))};
  }
  if (f == "put") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    if (args[0].size() != 1 || !args[0][0].IsNode()) {
      return Status::TypeError("fn:put: first argument must be a node");
    }
    UpdatePrimitive p;
    p.kind = UpdatePrimitive::Kind::kPut;
    p.content.push_back(Item::Node(args[0][0].node()->Clone()));
    p.put_uri = string_arg(1);
    pul_.Add(std::move(p));
    return Sequence{};
  }

  // ---- cardinality & logic
  if (f == "count") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    return xdm::SingletonInt(static_cast<int64_t>(args[0].size()));
  }
  if (f == "empty") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    return xdm::SingletonBool(args[0].empty());
  }
  if (f == "exists") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    return xdm::SingletonBool(!args[0].empty());
  }
  if (f == "not") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    XRPC_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
    return xdm::SingletonBool(!b);
  }
  if (f == "boolean") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    XRPC_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
    return xdm::SingletonBool(b);
  }
  if (f == "true") {
    XRPC_RETURN_IF_ERROR(need(0, 0));
    return xdm::SingletonBool(true);
  }
  if (f == "false") {
    XRPC_RETURN_IF_ERROR(need(0, 0));
    return xdm::SingletonBool(false);
  }
  if (f == "zero-or-one") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    if (args[0].size() > 1) {
      return Status::TypeError("fn:zero-or-one: more than one item (FORG0003)");
    }
    return std::move(args[0]);
  }
  if (f == "one-or-more") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    if (args[0].empty()) {
      return Status::TypeError("fn:one-or-more: empty sequence (FORG0004)");
    }
    return std::move(args[0]);
  }
  if (f == "exactly-one") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    if (args[0].size() != 1) {
      return Status::TypeError("fn:exactly-one: not a singleton (FORG0005)");
    }
    return std::move(args[0]);
  }

  // ---- strings
  if (f == "string") {
    XRPC_RETURN_IF_ERROR(need(0, 1));
    if (n == 0) {
      if (!focus_.item.has_value()) {
        return Status::EvalError("fn:string: no context item");
      }
      return xdm::SingletonString(focus_.item->StringValue());
    }
    if (args[0].empty()) return xdm::SingletonString("");
    if (args[0].size() > 1) {
      return Status::TypeError("fn:string: more than one item");
    }
    return xdm::SingletonString(args[0][0].StringValue());
  }
  if (f == "data") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    Sequence out;
    for (const Item& item : args[0]) out.push_back(Item(item.Atomize()));
    return out;
  }
  if (f == "concat") {
    if (n < 2) return Status::TypeError("fn:concat needs >= 2 arguments");
    std::string out;
    for (size_t i = 0; i < n; ++i) {
      if (args[i].size() > 1) {
        return Status::TypeError("fn:concat: argument is not a singleton");
      }
      out += string_arg(i);
    }
    return xdm::SingletonString(std::move(out));
  }
  if (f == "string-join") {
    XRPC_RETURN_IF_ERROR(need(1, 2));
    std::string sep = n == 2 ? string_arg(1) : "";
    std::string out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (i > 0) out += sep;
      out += args[0][i].StringValue();
    }
    return xdm::SingletonString(std::move(out));
  }
  if (f == "string-length") {
    XRPC_RETURN_IF_ERROR(need(0, 1));
    std::string s = n == 1 ? string_arg(0)
                           : (focus_.item.has_value()
                                  ? focus_.item->StringValue()
                                  : std::string());
    return xdm::SingletonInt(static_cast<int64_t>(s.size()));
  }
  if (f == "substring") {
    XRPC_RETURN_IF_ERROR(need(2, 3));
    std::string s = string_arg(0);
    if (args[1].empty()) return xdm::SingletonString("");
    double start = args[1][0].Atomize().AsDouble();
    double len = n == 3 && !args[2].empty()
                     ? args[2][0].Atomize().AsDouble()
                     : std::numeric_limits<double>::infinity();
    // XPath substring uses 1-based rounded positions.
    double from = std::round(start);
    double to = from + std::round(len);
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      double p = static_cast<double>(i + 1);
      if (p >= from && p < to) out.push_back(s[i]);
    }
    return xdm::SingletonString(std::move(out));
  }
  if (f == "contains") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    return xdm::SingletonBool(string_arg(0).find(string_arg(1)) !=
                              std::string::npos);
  }
  if (f == "starts-with") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    return xdm::SingletonBool(StartsWith(string_arg(0), string_arg(1)));
  }
  if (f == "ends-with") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    return xdm::SingletonBool(EndsWith(string_arg(0), string_arg(1)));
  }
  if (f == "substring-before") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    std::string s = string_arg(0), t = string_arg(1);
    size_t p = s.find(t);
    return xdm::SingletonString(p == std::string::npos ? "" : s.substr(0, p));
  }
  if (f == "substring-after") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    std::string s = string_arg(0), t = string_arg(1);
    size_t p = s.find(t);
    return xdm::SingletonString(
        p == std::string::npos ? "" : s.substr(p + t.size()));
  }
  if (f == "upper-case") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    std::string s = string_arg(0);
    for (char& c : s) c = static_cast<char>(std::toupper(c));
    return xdm::SingletonString(std::move(s));
  }
  if (f == "lower-case") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    std::string s = string_arg(0);
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return xdm::SingletonString(std::move(s));
  }
  if (f == "normalize-space") {
    XRPC_RETURN_IF_ERROR(need(0, 1));
    std::string s = n == 1 ? string_arg(0)
                           : (focus_.item.has_value()
                                  ? focus_.item->StringValue()
                                  : std::string());
    return xdm::SingletonString(CollapseWhitespace(s));
  }

  // ---- numbers & aggregates
  if (f == "number") {
    XRPC_RETURN_IF_ERROR(need(0, 1));
    AtomicValue v;
    if (n == 1) {
      if (args[0].empty()) {
        return xdm::SingletonDouble(std::numeric_limits<double>::quiet_NaN());
      }
      v = args[0][0].Atomize();
    } else if (focus_.item.has_value()) {
      v = focus_.item->Atomize();
    } else {
      return Status::EvalError("fn:number: no context item");
    }
    return xdm::SingletonDouble(v.AsDouble());
  }
  if (f == "abs" || f == "floor" || f == "ceiling" || f == "round") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    if (args[0].empty()) return Sequence{};
    AtomicValue v = args[0][0].Atomize();
    if (v.type() == AtomicType::kInteger && (f == "abs")) {
      return xdm::SingletonInt(std::abs(v.AsInteger()));
    }
    if (v.type() == AtomicType::kInteger) {
      return xdm::SingletonInt(v.AsInteger());
    }
    double d = v.AsDouble();
    double r = f == "abs"     ? std::fabs(d)
               : f == "floor" ? std::floor(d)
               : f == "ceiling" ? std::ceil(d)
                                : std::floor(d + 0.5);
    return xdm::SingletonDouble(r);
  }
  if (f == "sum" || f == "avg" || f == "min" || f == "max") {
    XRPC_RETURN_IF_ERROR(need(1, 2));
    if (args[0].empty()) {
      if (f == "sum") return xdm::SingletonInt(0);
      return Sequence{};
    }
    bool all_int = true;
    double acc = f == "min" ? std::numeric_limits<double>::infinity()
                 : f == "max" ? -std::numeric_limits<double>::infinity()
                              : 0;
    int64_t iacc = 0;
    bool first = true;
    for (const Item& item : args[0]) {
      AtomicValue v = item.Atomize();
      if (v.type() != AtomicType::kInteger) all_int = false;
      double d = v.AsDouble();
      if (f == "sum" || f == "avg") {
        acc += d;
        iacc += v.AsInteger();
      } else if (f == "min") {
        acc = first ? d : std::min(acc, d);
      } else {
        acc = first ? d : std::max(acc, d);
      }
      first = false;
    }
    if (f == "avg") {
      return xdm::SingletonDouble(acc /
                                  static_cast<double>(args[0].size()));
    }
    if (all_int) {
      if (f == "sum") return xdm::SingletonInt(iacc);
      return xdm::SingletonInt(static_cast<int64_t>(acc));
    }
    return xdm::SingletonDouble(acc);
  }

  // ---- sequences
  if (f == "distinct-values") {
    XRPC_RETURN_IF_ERROR(need(1, 2));
    Sequence out;
    std::vector<AtomicValue> seen;
    for (const Item& item : args[0]) {
      AtomicValue v = item.Atomize();
      bool dup = false;
      for (const AtomicValue& s : seen) {
        auto cmp = xdm::CompareAtomic(v, s);
        if (cmp.ok() && cmp.value() == 0) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen.push_back(v);
        out.push_back(Item(std::move(v)));
      }
    }
    return out;
  }
  if (f == "reverse") {
    XRPC_RETURN_IF_ERROR(need(1, 1));
    std::reverse(args[0].begin(), args[0].end());
    return std::move(args[0]);
  }
  if (f == "subsequence") {
    XRPC_RETURN_IF_ERROR(need(2, 3));
    if (args[1].empty()) return Sequence{};
    double start = std::round(args[1][0].Atomize().AsDouble());
    double len = n == 3 && !args[2].empty()
                     ? std::round(args[2][0].Atomize().AsDouble())
                     : std::numeric_limits<double>::infinity();
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      double p = static_cast<double>(i + 1);
      if (p >= start && p < start + len) out.push_back(args[0][i]);
    }
    return out;
  }
  if (f == "index-of") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    if (args[1].empty()) return Sequence{};
    AtomicValue target = args[1][0].Atomize();
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      auto cmp = xdm::CompareAtomic(args[0][i].Atomize(), target);
      if (cmp.ok() && cmp.value() == 0) {
        out.push_back(Item(AtomicValue::Integer(static_cast<int64_t>(i + 1))));
      }
    }
    return out;
  }
  if (f == "insert-before") {
    XRPC_RETURN_IF_ERROR(need(3, 3));
    if (args[1].empty()) return Status::TypeError("fn:insert-before: position");
    int64_t pos = args[1][0].Atomize().AsInteger();
    if (pos < 1) pos = 1;
    Sequence out;
    size_t p = static_cast<size_t>(pos - 1);
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (i == p) out.insert(out.end(), args[2].begin(), args[2].end());
      out.push_back(args[0][i]);
    }
    if (p >= args[0].size()) {
      out.insert(out.end(), args[2].begin(), args[2].end());
    }
    return out;
  }
  if (f == "remove") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    if (args[1].empty()) return std::move(args[0]);
    int64_t pos = args[1][0].Atomize().AsInteger();
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (static_cast<int64_t>(i + 1) != pos) out.push_back(args[0][i]);
    }
    return out;
  }
  if (f == "deep-equal") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    if (args[0].size() != args[1].size()) return xdm::SingletonBool(false);
    for (size_t i = 0; i < args[0].size(); ++i) {
      const Item& a = args[0][i];
      const Item& b = args[1][i];
      if (a.IsNode() != b.IsNode()) return xdm::SingletonBool(false);
      if (a.IsNode()) {
        if (xml::SerializeNode(*a.node()) != xml::SerializeNode(*b.node())) {
          return xdm::SingletonBool(false);
        }
      } else {
        auto cmp = xdm::CompareAtomic(a.atomic(), b.atomic());
        if (!cmp.ok() || cmp.value() != 0) return xdm::SingletonBool(false);
      }
    }
    return xdm::SingletonBool(true);
  }

  // ---- nodes
  if (f == "name" || f == "local-name" || f == "namespace-uri") {
    XRPC_RETURN_IF_ERROR(need(0, 1));
    const Item* item = nullptr;
    if (n == 1) {
      if (args[0].empty()) return xdm::SingletonString("");
      item = &args[0][0];
    } else if (focus_.item.has_value()) {
      item = &*focus_.item;
    } else {
      return Status::EvalError("fn:" + f + ": no context item");
    }
    if (!item->IsNode()) {
      return Status::TypeError("fn:" + f + ": argument is not a node");
    }
    const Node* node = item->node();
    if (f == "name") return xdm::SingletonString(node->name().Lexical());
    if (f == "local-name") return xdm::SingletonString(node->name().local);
    return xdm::SingletonString(node->name().ns_uri);
  }
  if (f == "root") {
    XRPC_RETURN_IF_ERROR(need(0, 1));
    const Item* item = nullptr;
    if (n == 1) {
      if (args[0].empty()) return Sequence{};
      item = &args[0][0];
    } else if (focus_.item.has_value()) {
      item = &*focus_.item;
    } else {
      return Status::EvalError("fn:root: no context item");
    }
    if (!item->IsNode()) return Status::TypeError("fn:root: not a node");
    return Sequence{Item::NodeInTree(item->node()->Root(), item->anchor())};
  }

  if (f == "error") {
    XRPC_RETURN_IF_ERROR(need(0, 3));
    std::string msg = n >= 2 ? string_arg(1)
                             : (n == 1 ? string_arg(0) : "fn:error called");
    return Status::EvalError(msg);
  }
  if (f == "trace") {
    XRPC_RETURN_IF_ERROR(need(2, 2));
    return std::move(args[0]);
  }

  return Status::NotFound("unknown built-in function fn:" + f + "#" +
                          std::to_string(n));
}

}  // namespace

StatusOr<QueryResult> Interpreter::EvaluateQuery(
    const MainModule& query) const {
  Evaluator ev(config_);
  return ev.RunQuery(query);
}

StatusOr<QueryResult> Interpreter::CallModuleFunction(
    const LibraryModule& module, const FunctionDef& function,
    std::vector<xdm::Sequence> args) const {
  Evaluator ev(config_);
  return ev.RunFunction(module, function, std::move(args));
}

}  // namespace xrpc::xquery
