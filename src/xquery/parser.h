#ifndef XRPC_XQUERY_PARSER_H_
#define XRPC_XQUERY_PARSER_H_

#include <string_view>

#include "base/statusor.h"
#include "xquery/module.h"

namespace xrpc::xquery {

/// Parses a main module (prolog + query body) including the `execute at`
/// XRPC extension and the XQUF updating expressions.
StatusOr<MainModule> ParseMainModule(std::string_view text);

/// Parses a library module (`module namespace p = "uri"; ...`).
StatusOr<LibraryModule> ParseLibraryModule(std::string_view text);

}  // namespace xrpc::xquery

#endif  // XRPC_XQUERY_PARSER_H_
