#ifndef XRPC_XQUERY_INTERPRETER_H_
#define XRPC_XQUERY_INTERPRETER_H_

#include <vector>

#include "base/cancellation.h"
#include "base/statusor.h"
#include "xquery/context.h"
#include "xquery/module.h"

namespace xrpc::xquery {

/// Tree-walking XQuery evaluator.
///
/// This engine plays the role Saxon plays in the paper: a conventional,
/// compile-then-walk XQuery processor with no set-oriented execution. It is
/// the engine behind the XRPC wrapper (Section 4) and the reference
/// implementation the loop-lifting relational compiler is tested against.
///
/// The interpreter itself issues one XRPC request per `execute at`
/// evaluation (one-at-a-time RPC); Bulk RPC arises from the relational
/// backend (Section 3.2) or from the wrapper's generated bulk query.
class Interpreter {
 public:
  struct Config {
    /// Resolves fn:doc(); required for queries touching documents.
    DocumentProvider* documents = nullptr;
    /// Executes `execute at`; required for distributed queries.
    RpcHandler* rpc = nullptr;
    /// Resolves module imports; required for queries calling module
    /// functions.
    ModuleResolver* modules = nullptr;
    /// Recursion limit guarding against runaway user functions.
    int max_recursion_depth = 512;
    /// Ablation toggles (benchmarking the design choices; leave on).
    bool enable_join_index = true;  ///< hash index for [path = $var]
    bool enable_path_memo = true;   ///< per-query path-prefix memoization
    /// Cooperative cancellation token polled at every expression-dispatch
    /// boundary; a tripped token aborts the evaluation with its status
    /// (kDeadlineExceeded / kCancelled). Null = never cancelled.
    const CancellationToken* cancel = nullptr;
  };

  explicit Interpreter(const Config& config) : config_(config) {}

  /// Evaluates a main module. For updating queries the result sequence is
  /// empty and `updates` carries the pending update list.
  StatusOr<QueryResult> EvaluateQuery(const MainModule& query) const;

  /// Applies a module function to already-evaluated arguments (the server
  /// side of an XRPC request, after n2s() unmarshaling).
  StatusOr<QueryResult> CallModuleFunction(
      const LibraryModule& module, const FunctionDef& function,
      std::vector<xdm::Sequence> args) const;

 private:
  Config config_;
};

}  // namespace xrpc::xquery

#endif  // XRPC_XQUERY_INTERPRETER_H_
