#include "xquery/parser.h"

#include <cassert>
#include <cctype>
#include <vector>

#include "base/string_util.h"

namespace xrpc::xquery {

namespace {

bool IsNcNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNcNameChar(char c) {
  return IsNcNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Hand-written recursive descent parser for the XQuery subset.
///
/// The parser works directly on the source text (no separate token stream)
/// because XQuery lexing is mode-dependent: inside direct element
/// constructors the input is XML, not expression tokens.
class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {
    // Statically known prefixes (XQuery 1.0 4.12).
    ns_.emplace_back("xml", "http://www.w3.org/XML/1998/namespace");
    ns_.emplace_back("xs", xml::kXsNs);
    ns_.emplace_back("xsi", xml::kXsiNs);
    ns_.emplace_back("fn", kFnNs);
    ns_.emplace_back("local", kLocalNs);
    ns_.emplace_back("xrpc", xml::kXrpcNs);
  }

  StatusOr<MainModule> ParseMain() {
    MainModule mod;
    XRPC_RETURN_IF_ERROR(ParseVersionDecl());
    XRPC_RETURN_IF_ERROR(ParseProlog(&mod.prolog));
    XRPC_ASSIGN_OR_RETURN(mod.body, ParseExpr());
    SkipWs();
    if (!Eof()) return Error("unexpected trailing content");
    return mod;
  }

  StatusOr<LibraryModule> ParseLibrary() {
    LibraryModule mod;
    XRPC_RETURN_IF_ERROR(ParseVersionDecl());
    if (!ConsumeWord("module")) return Error("expected 'module'");
    if (!ConsumeWord("namespace")) return Error("expected 'namespace'");
    XRPC_ASSIGN_OR_RETURN(mod.prefix, ParseNCName());
    if (!ConsumeSym("=")) return Error("expected '='");
    XRPC_ASSIGN_OR_RETURN(mod.target_ns, ParseStringLiteral());
    if (!ConsumeSym(";")) return Error("expected ';'");
    ns_.emplace_back(mod.prefix, mod.target_ns);
    module_target_ns_ = mod.target_ns;
    XRPC_RETURN_IF_ERROR(ParseProlog(&mod.prolog));
    SkipWs();
    if (!Eof()) return Error("unexpected content after library module prolog");
    return mod;
  }

 private:
  // ---------------------------------------------------------------- lexing

  bool Eof() const { return pos_ >= src_.size(); }
  char Peek(size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }

  Status Error(const std::string& msg) const {
    int line = 1;
    for (size_t i = 0; i < pos_ && i < src_.size(); ++i) {
      if (src_[i] == '\n') ++line;
    }
    // An unterminated (: comment :) swallows everything to EOF during
    // whitespace skipping; whatever error the grammar then hits, the
    // comment is the actual problem — report it instead.
    const std::string& shown =
        (Eof() && unterminated_comment_line_ > 0) ? "unterminated comment"
                                                  : msg;
    const int shown_line = (Eof() && unterminated_comment_line_ > 0)
                               ? unterminated_comment_line_
                               : line;
    return Status::ParseError("XQuery parse error at line " +
                              std::to_string(shown_line) + ": " + shown);
  }

  // Skips whitespace and (nested) XQuery comments.
  void SkipWs() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (IsXmlWhitespace(c)) {
        ++pos_;
      } else if (c == '(' && Peek(1) == ':') {
        const size_t comment_start = pos_;
        int depth = 0;
        while (pos_ < src_.size()) {
          if (Peek() == '(' && Peek(1) == ':') {
            depth++;
            pos_ += 2;
          } else if (Peek() == ':' && Peek(1) == ')') {
            depth--;
            pos_ += 2;
            if (depth == 0) break;
          } else {
            ++pos_;
          }
        }
        if (depth != 0 && unterminated_comment_line_ == 0) {
          int line = 1;
          for (size_t i = 0; i < comment_start; ++i) {
            if (src_[i] == '\n') ++line;
          }
          unterminated_comment_line_ = line;
        }
      } else {
        return;
      }
    }
  }

  // After whitespace, true if `s` is next. Symbolic (non-word) tokens only.
  bool LookSym(std::string_view s) {
    SkipWs();
    return src_.substr(pos_, s.size()) == s;
  }

  bool ConsumeSym(std::string_view s) {
    if (!LookSym(s)) return false;
    pos_ += s.size();
    return true;
  }

  // Word token: matched only at word boundaries.
  bool LookWord(std::string_view w) {
    SkipWs();
    if (src_.substr(pos_, w.size()) != w) return false;
    char next = pos_ + w.size() < src_.size() ? src_[pos_ + w.size()] : '\0';
    return !IsNcNameChar(next);
  }

  bool ConsumeWord(std::string_view w) {
    if (!LookWord(w)) return false;
    pos_ += w.size();
    return true;
  }

  // Two consecutive words ("execute at", "instance of"...).
  bool LookWords(std::string_view w1, std::string_view w2) {
    size_t save = pos_;
    if (!ConsumeWord(w1)) return false;
    bool ok = LookWord(w2);
    pos_ = save;
    return ok;
  }

  // A word followed by a symbolic token ("if (", "text {").
  bool WordThenSym(std::string_view w, std::string_view s) {
    size_t save = pos_;
    if (!ConsumeWord(w)) return false;
    bool ok = LookSym(s);
    pos_ = save;
    return ok;
  }

  // Detects a computed constructor: keyword followed by "{" or by a QName
  // and then "{" (e.g. `element {$n} {...}` or `element foo {...}`).
  bool IsComputedCtor(std::string_view keyword) {
    size_t save = pos_;
    bool ok = false;
    if (ConsumeWord(keyword)) {
      if (LookSym("{")) {
        ok = true;
      } else {
        auto pq = ParseLexicalQName();
        ok = pq.ok() && LookSym("{");
      }
    }
    pos_ = save;
    return ok;
  }

  StatusOr<std::string> ParseNCName() {
    SkipWs();
    if (Eof() || !IsNcNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!Eof() && IsNcNameChar(Peek())) ++pos_;
    return std::string(src_.substr(start, pos_ - start));
  }

  // Lexical QName: NCName (":" NCName)?.
  StatusOr<std::pair<std::string, std::string>> ParseLexicalQName() {
    XRPC_ASSIGN_OR_RETURN(std::string first, ParseNCName());
    if (Peek() == ':' && IsNcNameStart(Peek(1))) {
      ++pos_;
      size_t start = pos_;
      while (!Eof() && IsNcNameChar(Peek())) ++pos_;
      return std::pair<std::string, std::string>(
          first, std::string(src_.substr(start, pos_ - start)));
    }
    return std::pair<std::string, std::string>("", first);
  }

  StatusOr<std::string> ResolvePrefix(const std::string& prefix) const {
    for (auto it = ns_.rbegin(); it != ns_.rend(); ++it) {
      if (it->first == prefix) return it->second;
    }
    if (prefix.empty()) return std::string();
    return Status::ParseError("undeclared namespace prefix: " + prefix);
  }

  // Resolves an element-context QName (default element namespace applies;
  // we keep the default element namespace empty, matching the examples).
  StatusOr<xml::QName> ParseQName() {
    XRPC_ASSIGN_OR_RETURN(auto pq, ParseLexicalQName());
    XRPC_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(pq.first));
    return xml::QName(uri, pq.second, pq.first);
  }

  // Function-context QName: unprefixed names fall in the fn namespace.
  StatusOr<xml::QName> ParseFunctionQName() {
    XRPC_ASSIGN_OR_RETURN(auto pq, ParseLexicalQName());
    if (pq.first.empty()) return xml::QName(kFnNs, pq.second, "fn");
    XRPC_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(pq.first));
    return xml::QName(uri, pq.second, pq.first);
  }

  StatusOr<xml::QName> ParseVarName() {
    SkipWs();
    if (!ConsumeSym("$")) return Error("expected '$'");
    XRPC_ASSIGN_OR_RETURN(auto pq, ParseLexicalQName());
    XRPC_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(pq.first));
    return xml::QName(uri, pq.second, pq.first);
  }

  StatusOr<std::string> ParseStringLiteral() {
    SkipWs();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Error("expected string literal");
    ++pos_;
    std::string out;
    while (!Eof()) {
      char c = src_[pos_];
      if (c == quote) {
        if (Peek(1) == quote) {  // doubled quote escape
          out.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        return out;
      }
      if (c == '&') {
        XRPC_RETURN_IF_ERROR(ParseEntityRef(&out));
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string literal");
  }

  Status ParseEntityRef(std::string* out) {
    size_t end = src_.find(';', pos_);
    if (end == std::string_view::npos || end - pos_ > 10) {
      return Error("malformed entity reference");
    }
    std::string_view name = src_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "amp") {
      out->push_back('&');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      int cp = 0;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t i = 2; i < name.size(); ++i) {
          char c = name[i];
          cp = cp * 16 +
               (IsDigit(c) ? c - '0' : (std::tolower(c) - 'a' + 10));
        }
      } else {
        for (size_t i = 1; i < name.size(); ++i) cp = cp * 10 + (name[i] - '0');
      }
      out->push_back(static_cast<char>(cp));  // ASCII subset is sufficient
    } else {
      return Error("unknown entity reference &" + std::string(name) + ";");
    }
    return Status::OK();
  }

  // ---------------------------------------------------------------- prolog

  Status ParseVersionDecl() {
    size_t save = pos_;
    if (ConsumeWord("xquery")) {
      if (ConsumeWord("version")) {
        XRPC_ASSIGN_OR_RETURN(std::string v, ParseStringLiteral());
        (void)v;
        if (ConsumeWord("encoding")) {
          XRPC_RETURN_IF_ERROR(ParseStringLiteral().status());
        }
        if (!ConsumeSym(";")) return Error("expected ';' after version decl");
        return Status::OK();
      }
      pos_ = save;
    }
    return Status::OK();
  }

  Status ParseProlog(Prolog* prolog) {
    while (true) {
      SkipWs();
      size_t save = pos_;
      if (ConsumeWord("declare")) {
        if (ConsumeWord("namespace")) {
          XRPC_ASSIGN_OR_RETURN(std::string prefix, ParseNCName());
          if (!ConsumeSym("=")) return Error("expected '='");
          XRPC_ASSIGN_OR_RETURN(std::string uri, ParseStringLiteral());
          if (!ConsumeSym(";")) return Error("expected ';'");
          ns_.emplace_back(prefix, uri);
          prolog->namespaces.emplace_back(prefix, uri);
          continue;
        }
        if (ConsumeWord("option")) {
          XRPC_ASSIGN_OR_RETURN(xml::QName name, ParseQName());
          XRPC_ASSIGN_OR_RETURN(std::string value, ParseStringLiteral());
          if (!ConsumeSym(";")) return Error("expected ';'");
          prolog->options[name.Clark()] = value;
          continue;
        }
        if (ConsumeWord("variable")) {
          XRPC_ASSIGN_OR_RETURN(xml::QName name, ParseVarName());
          if (ConsumeWord("as")) {
            XRPC_RETURN_IF_ERROR(ParseSequenceType().status());
          }
          if (!ConsumeSym(":=")) return Error("expected ':='");
          XRPC_ASSIGN_OR_RETURN(ExprPtr init, ParseExprSingle());
          if (!ConsumeSym(";")) return Error("expected ';'");
          prolog->variables.emplace_back(std::move(name), std::move(init));
          continue;
        }
        bool updating = false;
        size_t fn_save = pos_;
        if (ConsumeWord("updating")) {
          if (!LookWord("function")) {
            pos_ = fn_save;
          } else {
            updating = true;
          }
        }
        if (ConsumeWord("function")) {
          FunctionDef def;
          def.updating = updating;
          XRPC_RETURN_IF_ERROR(ParseFunctionDecl(&def));
          if (!ConsumeSym(";")) return Error("expected ';' after function");
          prolog->functions.push_back(std::move(def));
          continue;
        }
        // Unknown declare (boundary-space, base-uri, ...): skip to ';'.
        size_t semi = src_.find(';', pos_);
        if (semi == std::string_view::npos) {
          return Error("unterminated declaration");
        }
        pos_ = semi + 1;
        continue;
      }
      pos_ = save;
      if (ConsumeWord("import")) {
        if (!ConsumeWord("module")) return Error("expected 'module'");
        ModuleImport imp;
        if (ConsumeWord("namespace")) {
          XRPC_ASSIGN_OR_RETURN(imp.prefix, ParseNCName());
          if (!ConsumeSym("=")) return Error("expected '='");
        }
        XRPC_ASSIGN_OR_RETURN(imp.target_ns, ParseStringLiteral());
        if (ConsumeWord("at")) {
          XRPC_ASSIGN_OR_RETURN(imp.location, ParseStringLiteral());
          // Extra at-hints are accepted and ignored.
          while (ConsumeSym(",")) {
            XRPC_RETURN_IF_ERROR(ParseStringLiteral().status());
          }
        }
        if (!ConsumeSym(";")) return Error("expected ';'");
        if (!imp.prefix.empty()) ns_.emplace_back(imp.prefix, imp.target_ns);
        prolog->imports.push_back(std::move(imp));
        continue;
      }
      pos_ = save;
      return Status::OK();
    }
  }

  Status ParseFunctionDecl(FunctionDef* def) {
    XRPC_ASSIGN_OR_RETURN(auto pq, ParseLexicalQName());
    std::string uri;
    if (pq.first.empty()) {
      uri = module_target_ns_.empty() ? kLocalNs : module_target_ns_;
    } else {
      XRPC_ASSIGN_OR_RETURN(uri, ResolvePrefix(pq.first));
    }
    def->name = xml::QName(uri, pq.second, pq.first);
    if (!ConsumeSym("(")) return Error("expected '(' in function decl");
    if (!LookSym(")")) {
      do {
        Param p;
        XRPC_ASSIGN_OR_RETURN(p.name, ParseVarName());
        if (ConsumeWord("as")) {
          XRPC_ASSIGN_OR_RETURN(p.type, ParseSequenceType());
        }
        def->params.push_back(std::move(p));
      } while (ConsumeSym(","));
    }
    if (!ConsumeSym(")")) return Error("expected ')' in function decl");
    if (ConsumeWord("as")) {
      XRPC_ASSIGN_OR_RETURN(def->return_type, ParseSequenceType());
    }
    if (ConsumeWord("external")) {
      return Error("external functions are not supported");
    }
    if (!ConsumeSym("{")) return Error("expected '{' (function body)");
    XRPC_ASSIGN_OR_RETURN(def->body, ParseExpr());
    if (!ConsumeSym("}")) return Error("expected '}' (function body)");
    return Status::OK();
  }

  StatusOr<SequenceType> ParseSequenceType() {
    SequenceType st;
    SkipWs();
    if (ConsumeWord("empty-sequence")) {
      if (!ConsumeSym("(") || !ConsumeSym(")")) return Error("expected '()'");
      st.kind = SequenceType::ItemKind::kEmpty;
      st.occurrence = Occurrence::kZeroOrMore;
      return st;
    }
    if (ConsumeWord("item")) {
      if (!ConsumeSym("(") || !ConsumeSym(")")) return Error("expected '()'");
      st.kind = SequenceType::ItemKind::kItem;
    } else if (ConsumeWord("node")) {
      if (!ConsumeSym("(") || !ConsumeSym(")")) return Error("expected '()'");
      st.kind = SequenceType::ItemKind::kNode;
    } else if (ConsumeWord("element")) {
      if (!ConsumeSym("(")) return Error("expected '('");
      // Optional name/type arguments are accepted and ignored.
      while (!LookSym(")") && !Eof()) ++pos_;
      if (!ConsumeSym(")")) return Error("expected ')'");
      st.kind = SequenceType::ItemKind::kElement;
    } else if (ConsumeWord("attribute")) {
      if (!ConsumeSym("(")) return Error("expected '('");
      while (!LookSym(")") && !Eof()) ++pos_;
      if (!ConsumeSym(")")) return Error("expected ')'");
      st.kind = SequenceType::ItemKind::kAttribute;
    } else if (ConsumeWord("document-node")) {
      if (!ConsumeSym("(")) return Error("expected '('");
      while (!LookSym(")") && !Eof()) ++pos_;
      if (!ConsumeSym(")")) return Error("expected ')'");
      st.kind = SequenceType::ItemKind::kDocument;
    } else if (ConsumeWord("text")) {
      if (!ConsumeSym("(") || !ConsumeSym(")")) return Error("expected '()'");
      st.kind = SequenceType::ItemKind::kText;
    } else {
      XRPC_ASSIGN_OR_RETURN(auto pq, ParseLexicalQName());
      std::string lexical =
          pq.first.empty() ? pq.second : pq.first + ":" + pq.second;
      XRPC_ASSIGN_OR_RETURN(st.atomic, xdm::AtomicTypeFromName(lexical));
      st.kind = SequenceType::ItemKind::kAtomic;
    }
    // Occurrence indicator (must follow immediately or after ws).
    SkipWs();
    if (ConsumeSym("?")) {
      st.occurrence = Occurrence::kZeroOrOne;
    } else if (ConsumeSym("*")) {
      st.occurrence = Occurrence::kZeroOrMore;
    } else if (ConsumeSym("+")) {
      st.occurrence = Occurrence::kOneOrMore;
    } else {
      st.occurrence = Occurrence::kOne;
    }
    return st;
  }

  // ----------------------------------------------------------- expressions

  StatusOr<ExprPtr> ParseExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (!LookSym(",")) return first;
    ExprPtr seq = MakeExpr(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    while (ConsumeSym(",")) {
      XRPC_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  StatusOr<ExprPtr> ParseExprSingle() {
    SkipWs();
    if (AfterWordIsDollar("for")) return ParseFlwor();
    if (AfterWordIsDollar("let")) return ParseFlwor();
    if (AfterWordIsDollar("some")) return ParseQuantified(false);
    if (AfterWordIsDollar("every")) return ParseQuantified(true);
    if (WordThenSym("if", "(")) return ParseIf();
    if (LookWords("execute", "at")) return ParseExecuteAt();
    if (LookWords("insert", "nodes") || LookWords("insert", "node"))
      return ParseInsert();
    if (LookWords("delete", "nodes") || LookWords("delete", "node"))
      return ParseDelete();
    if (LookWords("replace", "value") || LookWords("replace", "node"))
      return ParseReplace();
    if (LookWords("rename", "node")) return ParseRename();
    return ParseOrExpr();
  }

  // Distinguishes the keyword use ("for $x ...") from a path step named
  // "for" etc.: the keyword must be followed by '$' or '('.
  bool AfterWordIsDollar(std::string_view w) {
    size_t save = pos_;
    bool ok = false;
    if (ConsumeWord(w)) {
      SkipWs();
      ok = Peek() == '$';
    }
    pos_ = save;
    return ok;
  }

  StatusOr<ExprPtr> ParseFlwor() {
    ExprPtr e = MakeExpr(ExprKind::kFlwor);
    while (true) {
      if (AfterWordIsDollar("for")) {
        ConsumeWord("for");
        do {
          FlworClause c;
          c.kind = FlworClause::Kind::kFor;
          XRPC_ASSIGN_OR_RETURN(c.var, ParseVarName());
          if (ConsumeWord("as")) {
            XRPC_RETURN_IF_ERROR(ParseSequenceType().status());
          }
          if (ConsumeWord("at")) {
            XRPC_ASSIGN_OR_RETURN(c.pos_var, ParseVarName());
          }
          if (!ConsumeWord("in")) return Error("expected 'in'");
          XRPC_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
          e->clauses.push_back(std::move(c));
        } while (ConsumeSym(","));
        continue;
      }
      if (AfterWordIsDollar("let")) {
        ConsumeWord("let");
        do {
          FlworClause c;
          c.kind = FlworClause::Kind::kLet;
          XRPC_ASSIGN_OR_RETURN(c.var, ParseVarName());
          if (ConsumeWord("as")) {
            XRPC_RETURN_IF_ERROR(ParseSequenceType().status());
          }
          if (!ConsumeSym(":=")) return Error("expected ':='");
          XRPC_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
          e->clauses.push_back(std::move(c));
        } while (ConsumeSym(","));
        continue;
      }
      break;
    }
    if (e->clauses.empty()) return Error("expected for/let clause");
    if (ConsumeWord("where")) {
      XRPC_ASSIGN_OR_RETURN(e->where, ParseExprSingle());
    }
    if (LookWords("stable", "order")) {
      ConsumeWord("stable");
      e->order_stable = true;
    }
    if (ConsumeWord("order")) {
      if (!ConsumeWord("by")) return Error("expected 'by'");
      do {
        OrderSpec spec;
        XRPC_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
        if (ConsumeWord("ascending")) {
        } else if (ConsumeWord("descending")) {
          spec.descending = true;
        }
        if (ConsumeWord("empty")) {
          if (ConsumeWord("greatest")) {
            spec.empty_greatest = true;
          } else if (!ConsumeWord("least")) {
            return Error("expected 'greatest' or 'least'");
          }
        }
        e->order_by.push_back(std::move(spec));
      } while (ConsumeSym(","));
    }
    if (!ConsumeWord("return")) return Error("expected 'return'");
    XRPC_ASSIGN_OR_RETURN(e->ret, ParseExprSingle());
    return e;
  }

  StatusOr<ExprPtr> ParseQuantified(bool every) {
    ConsumeWord(every ? "every" : "some");
    ExprPtr e = MakeExpr(ExprKind::kQuantified);
    e->every = every;
    do {
      FlworClause c;
      c.kind = FlworClause::Kind::kFor;
      XRPC_ASSIGN_OR_RETURN(c.var, ParseVarName());
      if (ConsumeWord("as")) {
        XRPC_RETURN_IF_ERROR(ParseSequenceType().status());
      }
      if (!ConsumeWord("in")) return Error("expected 'in'");
      XRPC_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
      e->clauses.push_back(std::move(c));
    } while (ConsumeSym(","));
    if (!ConsumeWord("satisfies")) return Error("expected 'satisfies'");
    XRPC_ASSIGN_OR_RETURN(e->ret, ParseExprSingle());
    return e;
  }

  StatusOr<ExprPtr> ParseIf() {
    ConsumeWord("if");
    if (!ConsumeSym("(")) return Error("expected '('");
    XRPC_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    if (!ConsumeSym(")")) return Error("expected ')'");
    if (!ConsumeWord("then")) return Error("expected 'then'");
    XRPC_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExprSingle());
    if (!ConsumeWord("else")) return Error("expected 'else'");
    XRPC_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExprSingle());
    ExprPtr e = MakeExpr(ExprKind::kIf);
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(then_e));
    e->children.push_back(std::move(else_e));
    return e;
  }

  // execute at { Expr } { FunctionCall }
  StatusOr<ExprPtr> ParseExecuteAt() {
    ConsumeWord("execute");
    ConsumeWord("at");
    if (!ConsumeSym("{")) return Error("expected '{' after 'execute at'");
    XRPC_ASSIGN_OR_RETURN(ExprPtr dest, ParseExpr());
    if (!ConsumeSym("}")) return Error("expected '}' after destination");
    if (!ConsumeSym("{")) return Error("expected '{' (remote call)");
    XRPC_ASSIGN_OR_RETURN(xml::QName fname, ParseFunctionQName());
    if (!ConsumeSym("(")) return Error("expected '(' in remote call");
    ExprPtr e = MakeExpr(ExprKind::kExecuteAt);
    e->name = std::move(fname);
    e->children.push_back(std::move(dest));
    if (!LookSym(")")) {
      do {
        XRPC_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
        e->children.push_back(std::move(arg));
      } while (ConsumeSym(","));
    }
    if (!ConsumeSym(")")) return Error("expected ')' in remote call");
    if (!ConsumeSym("}")) return Error("expected '}' after remote call");
    return e;
  }

  // ------------------------------------------------------- XQUF updating

  StatusOr<ExprPtr> ParseInsert() {
    ConsumeWord("insert");
    if (!ConsumeWord("nodes") && !ConsumeWord("node")) {
      return Error("expected 'nodes'");
    }
    XRPC_ASSIGN_OR_RETURN(ExprPtr src, ParseExprSingle());
    ExprPtr e = MakeExpr(ExprKind::kInsert);
    if (ConsumeWord("as")) {
      if (ConsumeWord("first")) {
        e->insert_pos = InsertPos::kAsFirstInto;
      } else if (ConsumeWord("last")) {
        e->insert_pos = InsertPos::kAsLastInto;
      } else {
        return Error("expected 'first' or 'last'");
      }
      if (!ConsumeWord("into")) return Error("expected 'into'");
    } else if (ConsumeWord("into")) {
      e->insert_pos = InsertPos::kInto;
    } else if (ConsumeWord("before")) {
      e->insert_pos = InsertPos::kBefore;
    } else if (ConsumeWord("after")) {
      e->insert_pos = InsertPos::kAfter;
    } else {
      return Error("expected into/before/after");
    }
    XRPC_ASSIGN_OR_RETURN(ExprPtr tgt, ParseExprSingle());
    e->children.push_back(std::move(src));
    e->children.push_back(std::move(tgt));
    return e;
  }

  StatusOr<ExprPtr> ParseDelete() {
    ConsumeWord("delete");
    if (!ConsumeWord("nodes") && !ConsumeWord("node")) {
      return Error("expected 'nodes'");
    }
    XRPC_ASSIGN_OR_RETURN(ExprPtr tgt, ParseExprSingle());
    ExprPtr e = MakeExpr(ExprKind::kDelete);
    e->children.push_back(std::move(tgt));
    return e;
  }

  StatusOr<ExprPtr> ParseReplace() {
    ConsumeWord("replace");
    bool value_of = false;
    if (ConsumeWord("value")) {
      if (!ConsumeWord("of")) return Error("expected 'of'");
      value_of = true;
    }
    if (!ConsumeWord("node")) return Error("expected 'node'");
    XRPC_ASSIGN_OR_RETURN(ExprPtr tgt, ParseExprSingle());
    if (!ConsumeWord("with")) return Error("expected 'with'");
    XRPC_ASSIGN_OR_RETURN(ExprPtr src, ParseExprSingle());
    ExprPtr e = MakeExpr(value_of ? ExprKind::kReplaceValue
                                  : ExprKind::kReplaceNode);
    e->children.push_back(std::move(tgt));
    e->children.push_back(std::move(src));
    return e;
  }

  StatusOr<ExprPtr> ParseRename() {
    ConsumeWord("rename");
    ConsumeWord("node");
    XRPC_ASSIGN_OR_RETURN(ExprPtr tgt, ParseExprSingle());
    if (!ConsumeWord("as")) return Error("expected 'as'");
    XRPC_ASSIGN_OR_RETURN(ExprPtr name_e, ParseExprSingle());
    ExprPtr e = MakeExpr(ExprKind::kRename);
    e->children.push_back(std::move(tgt));
    e->children.push_back(std::move(name_e));
    return e;
  }

  // ---------------------------------------------------- operator ladder

  StatusOr<ExprPtr> ParseOrExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    while (ConsumeWord("or")) {
      XRPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      ExprPtr e = MakeExpr(ExprKind::kOr);
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAndExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparisonExpr());
    while (ConsumeWord("and")) {
      XRPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparisonExpr());
      ExprPtr e = MakeExpr(ExprKind::kAnd);
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseComparisonExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRangeExpr());
    SkipWs();
    CompOp op;
    bool has = true;
    if (ConsumeSym("!=")) {
      op = CompOp::kGenNe;
    } else if (ConsumeSym("<=")) {
      op = CompOp::kGenLe;
    } else if (ConsumeSym(">=")) {
      op = CompOp::kGenGe;
    } else if (ConsumeSym("<<")) {
      op = CompOp::kNodeBefore;
    } else if (ConsumeSym(">>")) {
      op = CompOp::kNodeAfter;
    } else if (ConsumeSym("=")) {
      op = CompOp::kGenEq;
    } else if (LookSym("<") && Peek(1) != '<') {
      ConsumeSym("<");
      op = CompOp::kGenLt;
    } else if (LookSym(">") && Peek(1) != '>') {
      ConsumeSym(">");
      op = CompOp::kGenGt;
    } else if (ConsumeWord("eq")) {
      op = CompOp::kValEq;
    } else if (ConsumeWord("ne")) {
      op = CompOp::kValNe;
    } else if (ConsumeWord("lt")) {
      op = CompOp::kValLt;
    } else if (ConsumeWord("le")) {
      op = CompOp::kValLe;
    } else if (ConsumeWord("gt")) {
      op = CompOp::kValGt;
    } else if (ConsumeWord("ge")) {
      op = CompOp::kValGe;
    } else if (ConsumeWord("is")) {
      op = CompOp::kNodeIs;
    } else {
      has = false;
      op = CompOp::kGenEq;
    }
    if (!has) return lhs;
    XRPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRangeExpr());
    ExprPtr e = MakeExpr(ExprKind::kComparison);
    e->comp_op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  StatusOr<ExprPtr> ParseRangeExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditiveExpr());
    if (ConsumeWord("to")) {
      XRPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditiveExpr());
      ExprPtr e = MakeExpr(ExprKind::kRange);
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      return e;
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAdditiveExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicativeExpr());
    while (true) {
      SkipWs();
      ArithOp op;
      if (ConsumeSym("+")) {
        op = ArithOp::kAdd;
      } else if (LookSym("-") && !LooksLikeNameContinuation()) {
        ConsumeSym("-");
        op = ArithOp::kSub;
      } else {
        return lhs;
      }
      XRPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicativeExpr());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  // A '-' directly following a name char without whitespace would have been
  // consumed as part of the name already; here '-' is always an operator.
  bool LooksLikeNameContinuation() const { return false; }

  StatusOr<ExprPtr> ParseMultiplicativeExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
    while (true) {
      SkipWs();
      ArithOp op;
      if (ConsumeSym("*")) {
        op = ArithOp::kMul;
      } else if (ConsumeWord("div")) {
        op = ArithOp::kDiv;
      } else if (ConsumeWord("idiv")) {
        op = ArithOp::kIDiv;
      } else if (ConsumeWord("mod")) {
        op = ArithOp::kMod;
      } else {
        return lhs;
      }
      XRPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  StatusOr<ExprPtr> ParseUnaryExpr() {
    SkipWs();
    bool neg = false;
    while (ConsumeSym("-")) {
      neg = !neg;
      SkipWs();
    }
    while (ConsumeSym("+")) SkipWs();
    XRPC_ASSIGN_OR_RETURN(ExprPtr operand, ParseCastExpr());
    if (!neg) return operand;
    ExprPtr e = MakeExpr(ExprKind::kUnaryMinus);
    e->children.push_back(std::move(operand));
    return e;
  }

  StatusOr<ExprPtr> ParseCastExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnionExpr());
    while (true) {
      ExprKind kind;
      if (LookWords("cast", "as")) {
        ConsumeWord("cast");
        ConsumeWord("as");
        kind = ExprKind::kCastAs;
      } else if (LookWords("castable", "as")) {
        ConsumeWord("castable");
        ConsumeWord("as");
        kind = ExprKind::kCastableAs;
      } else if (LookWords("instance", "of")) {
        ConsumeWord("instance");
        ConsumeWord("of");
        kind = ExprKind::kInstanceOf;
      } else if (LookWords("treat", "as")) {
        ConsumeWord("treat");
        ConsumeWord("as");
        kind = ExprKind::kTreatAs;
      } else {
        return lhs;
      }
      ExprPtr e = MakeExpr(kind);
      XRPC_ASSIGN_OR_RETURN(e->seq_type, ParseSequenceType());
      e->children.push_back(std::move(lhs));
      lhs = std::move(e);
    }
  }

  StatusOr<ExprPtr> ParseUnionExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePathExpr());
    while (LookSym("|") || LookWord("union")) {
      if (!ConsumeSym("|")) ConsumeWord("union");
      XRPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePathExpr());
      ExprPtr e = MakeExpr(ExprKind::kUnion);
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  // --------------------------------------------------------------- paths

  StatusOr<ExprPtr> ParsePathExpr() {
    SkipWs();
    bool root = false;
    bool root_descendant = false;
    if (LookSym("//")) {
      ConsumeSym("//");
      root = root_descendant = true;
    } else if (LookSym("/")) {
      ConsumeSym("/");
      root = true;
      SkipWs();
      // A lone "/" selects the root of the context node's tree.
      if (Eof() || !(IsNcNameStart(Peek()) || Peek() == '@' || Peek() == '*' ||
                     Peek() == '.')) {
        ExprPtr e = MakeExpr(ExprKind::kPath);
        e->root_path = true;
        e->children.push_back(nullptr);
        return e;
      }
    }

    ExprPtr path = MakeExpr(ExprKind::kPath);
    path->root_path = root;
    path->children.push_back(nullptr);  // slot 0: source expr (null = ctx/root)

    if (root_descendant) {
      PathStep ds;
      ds.axis = Axis::kDescendantOrSelf;
      ds.test.kind = NodeTest::Kind::kAnyKind;
      path->steps.push_back(std::move(ds));
    }

    bool first = true;
    while (true) {
      SkipWs();
      if (!first) {
        if (ConsumeSym("//")) {
          PathStep ds;
          ds.axis = Axis::kDescendantOrSelf;
          ds.test.kind = NodeTest::Kind::kAnyKind;
          path->steps.push_back(std::move(ds));
        } else if (!ConsumeSym("/")) {
          break;
        }
      }
      if (first && !root) {
        // The first step may be a primary expression (filter expr).
        XRPC_ASSIGN_OR_RETURN(bool is_step, LooksLikeAxisStep());
        if (!is_step) {
          XRPC_ASSIGN_OR_RETURN(ExprPtr primary, ParseFilterExpr());
          SkipWs();
          if (!LookSym("/")) return primary;  // plain primary, no path
          path->children[0] = std::move(primary);
          first = false;
          continue;
        }
      }
      XRPC_ASSIGN_OR_RETURN(PathStep step, ParseAxisStep());
      path->steps.push_back(std::move(step));
      first = false;
    }

    if (path->steps.empty() && path->children[0] != nullptr) {
      return std::move(path->children[0]);
    }
    return path;
  }

  // Heuristic: the upcoming token starts an axis step rather than a primary
  // expression.
  StatusOr<bool> LooksLikeAxisStep() {
    SkipWs();
    char c = Peek();
    if (c == '@' || c == '*') return true;
    // Computed constructors win over a name test of the same spelling.
    if (IsComputedCtor("element") || IsComputedCtor("attribute") ||
        WordThenSym("text", "{") || WordThenSym("comment", "{") ||
        WordThenSym("document", "{") || WordThenSym("ordered", "{") ||
        WordThenSym("unordered", "{")) {
      return false;
    }
    if (c == '.' && Peek(1) != '.' && !IsDigit(Peek(1))) {
      return false;  // context item primary
    }
    if (c == '.' && Peek(1) == '.') return true;  // ".."
    if (!IsNcNameStart(c)) return false;
    // Name followed by '(' is a function call (primary) unless it is a kind
    // test or axis name.
    size_t save = pos_;
    auto pq_or = ParseLexicalQName();
    if (!pq_or.ok()) {
      pos_ = save;
      return pq_or.status();
    }
    auto pq = pq_or.value();
    SkipWs();
    bool paren = Peek() == '(';
    bool axis = src_.substr(pos_, 2) == "::";
    pos_ = save;
    if (axis) return true;
    if (!paren) return true;  // name test
    static const char* kKindTests[] = {"node",       "text",
                                       "comment",    "processing-instruction",
                                       "element",    "attribute",
                                       "document-node"};
    if (pq.first.empty()) {
      for (const char* k : kKindTests) {
        if (pq.second == k) return true;
      }
    }
    return false;  // function call
  }

  StatusOr<PathStep> ParseAxisStep() {
    PathStep step;
    SkipWs();
    if (ConsumeSym("..")) {
      step.axis = Axis::kParent;
      step.test.kind = NodeTest::Kind::kAnyKind;
      XRPC_RETURN_IF_ERROR(ParsePredicates(&step.predicates));
      return step;
    }
    if (ConsumeSym("@")) {
      step.axis = Axis::kAttribute;
      XRPC_RETURN_IF_ERROR(ParseNodeTest(&step.test, /*attribute=*/true));
      XRPC_RETURN_IF_ERROR(ParsePredicates(&step.predicates));
      return step;
    }
    // Optional explicit axis.
    static const std::pair<const char*, Axis> kAxes[] = {
        {"child", Axis::kChild},
        {"descendant-or-self", Axis::kDescendantOrSelf},
        {"descendant", Axis::kDescendant},
        {"self", Axis::kSelf},
        {"attribute", Axis::kAttribute},
        {"parent", Axis::kParent},
        {"ancestor-or-self", Axis::kAncestorOrSelf},
        {"ancestor", Axis::kAncestor},
        {"following-sibling", Axis::kFollowingSibling},
        {"preceding-sibling", Axis::kPrecedingSibling},
    };
    step.axis = Axis::kChild;
    for (const auto& [name, axis] : kAxes) {
      size_t save = pos_;
      if (ConsumeWord(name)) {
        if (ConsumeSym("::")) {
          step.axis = axis;
          break;
        }
        pos_ = save;
      }
    }
    XRPC_RETURN_IF_ERROR(
        ParseNodeTest(&step.test, step.axis == Axis::kAttribute));
    XRPC_RETURN_IF_ERROR(ParsePredicates(&step.predicates));
    return step;
  }

  Status ParseNodeTest(NodeTest* test, bool attribute) {
    SkipWs();
    if (ConsumeSym("*")) {
      test->kind = NodeTest::Kind::kName;
      test->wildcard = true;
      return Status::OK();
    }
    XRPC_ASSIGN_OR_RETURN(auto pq, ParseLexicalQName());
    SkipWs();
    if (pq.first.empty() && Peek() == '(') {
      // Kind test.
      ConsumeSym("(");
      std::string arg;
      while (!Eof() && Peek() != ')') arg.push_back(src_[pos_++]);
      if (!ConsumeSym(")")) return Error("expected ')' in kind test");
      if (pq.second == "node") {
        test->kind = NodeTest::Kind::kAnyKind;
      } else if (pq.second == "text") {
        test->kind = NodeTest::Kind::kText;
      } else if (pq.second == "comment") {
        test->kind = NodeTest::Kind::kComment;
      } else if (pq.second == "processing-instruction") {
        test->kind = NodeTest::Kind::kPi;
      } else if (pq.second == "element") {
        test->kind = NodeTest::Kind::kElement;
      } else if (pq.second == "attribute") {
        test->kind = NodeTest::Kind::kAttribute;
      } else if (pq.second == "document-node") {
        test->kind = NodeTest::Kind::kDocument;
      } else {
        return Error("unknown kind test: " + pq.second);
      }
      return Status::OK();
    }
    std::string uri;
    if (!pq.first.empty()) {
      XRPC_ASSIGN_OR_RETURN(uri, ResolvePrefix(pq.first));
    } else if (!attribute) {
      uri = "";  // default element namespace (none declared)
    }
    test->kind = NodeTest::Kind::kName;
    test->name = xml::QName(uri, pq.second, pq.first);
    return Status::OK();
  }

  Status ParsePredicates(std::vector<ExprPtr>* preds) {
    while (LookSym("[")) {
      ConsumeSym("[");
      XRPC_ASSIGN_OR_RETURN(ExprPtr p, ParseExpr());
      if (!ConsumeSym("]")) return Error("expected ']'");
      preds->push_back(std::move(p));
    }
    return Status::OK();
  }

  StatusOr<ExprPtr> ParseFilterExpr() {
    XRPC_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimaryExpr());
    if (!LookSym("[")) return primary;
    ExprPtr e = MakeExpr(ExprKind::kFilter);
    e->children.push_back(std::move(primary));
    XRPC_RETURN_IF_ERROR(ParsePredicates(&e->predicates));
    return e;
  }

  // ------------------------------------------------------------- primary

  StatusOr<ExprPtr> ParsePrimaryExpr() {
    SkipWs();
    char c = Peek();
    if (c == '$') {
      ExprPtr e = MakeExpr(ExprKind::kVarRef);
      XRPC_ASSIGN_OR_RETURN(e->name, ParseVarName());
      return e;
    }
    if (c == '(') {
      ConsumeSym("(");
      if (ConsumeSym(")")) {
        return MakeExpr(ExprKind::kSequence);  // empty sequence ()
      }
      XRPC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      if (!ConsumeSym(")")) return Error("expected ')'");
      return inner;
    }
    if (c == '"' || c == '\'') {
      XRPC_ASSIGN_OR_RETURN(std::string s, ParseStringLiteral());
      ExprPtr e = MakeExpr(ExprKind::kLiteral);
      e->literal = xdm::AtomicValue::String(std::move(s));
      return e;
    }
    if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
      return ParseNumericLiteral();
    }
    if (c == '.' && Peek(1) != '.') {
      ConsumeSym(".");
      return MakeExpr(ExprKind::kContextItem);
    }
    if (c == '<') {
      return ParseDirectConstructor();
    }
    // Computed constructors and function calls.
    if (IsComputedCtor("element")) return ParseComputedCtor(ExprKind::kElementCtor);
    if (IsComputedCtor("attribute"))
      return ParseComputedCtor(ExprKind::kAttributeCtor);
    if (WordThenSym("text", "{")) return ParseComputedCtor(ExprKind::kTextCtor);
    if (WordThenSym("comment", "{"))
      return ParseComputedCtor(ExprKind::kCommentCtor);
    if (WordThenSym("document", "{"))
      return ParseComputedCtor(ExprKind::kDocumentCtor);
    if (LookWord("ordered") || LookWord("unordered")) {
      size_t save = pos_;
      ConsumeWord(LookWord("ordered") ? "ordered" : "unordered");
      if (ConsumeSym("{")) {
        XRPC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        if (!ConsumeSym("}")) return Error("expected '}'");
        return inner;
      }
      pos_ = save;
    }
    if (IsNcNameStart(c)) {
      return ParseFunctionCall();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  StatusOr<ExprPtr> ParseNumericLiteral() {
    SkipWs();
    size_t start = pos_;
    while (IsDigit(Peek())) ++pos_;
    bool is_decimal = false, is_double = false;
    if (Peek() == '.' && IsDigit(Peek(1))) {
      is_decimal = true;
      ++pos_;
      while (IsDigit(Peek())) ++pos_;
    } else if (Peek() == '.' && !IsNcNameStart(Peek(1))) {
      is_decimal = true;
      ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_double = true;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!IsDigit(Peek())) return Error("malformed double literal");
      while (IsDigit(Peek())) ++pos_;
    }
    std::string text(src_.substr(start, pos_ - start));
    ExprPtr e = MakeExpr(ExprKind::kLiteral);
    if (is_double) {
      XRPC_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      e->literal = xdm::AtomicValue::Double(v);
    } else if (is_decimal) {
      XRPC_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      e->literal = xdm::AtomicValue::Decimal(v);
    } else {
      XRPC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      e->literal = xdm::AtomicValue::Integer(v);
    }
    return e;
  }

  StatusOr<ExprPtr> ParseFunctionCall() {
    XRPC_ASSIGN_OR_RETURN(xml::QName name, ParseFunctionQName());
    SkipWs();
    if (!ConsumeSym("(")) {
      return Error("expected '(' after function name " + name.Lexical());
    }
    ExprPtr e = MakeExpr(ExprKind::kFunctionCall);
    e->name = std::move(name);
    if (!LookSym(")")) {
      do {
        XRPC_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
        e->children.push_back(std::move(arg));
      } while (ConsumeSym(","));
    }
    if (!ConsumeSym(")")) return Error("expected ')' in function call");
    return e;
  }

  StatusOr<ExprPtr> ParseComputedCtor(ExprKind kind) {
    if (kind == ExprKind::kElementCtor) {
      ConsumeWord("element");
    } else if (kind == ExprKind::kAttributeCtor) {
      ConsumeWord("attribute");
    } else if (kind == ExprKind::kTextCtor) {
      ConsumeWord("text");
    } else if (kind == ExprKind::kCommentCtor) {
      ConsumeWord("comment");
    } else {
      ConsumeWord("document");
    }
    ExprPtr e = MakeExpr(kind);
    if (kind == ExprKind::kElementCtor || kind == ExprKind::kAttributeCtor) {
      SkipWs();
      if (Peek() == '{') {
        ConsumeSym("{");
        XRPC_ASSIGN_OR_RETURN(e->name_expr, ParseExpr());
        if (!ConsumeSym("}")) return Error("expected '}'");
      } else {
        XRPC_ASSIGN_OR_RETURN(e->name, ParseQName());
      }
    }
    if (!ConsumeSym("{")) return Error("expected '{'");
    if (!LookSym("}")) {
      XRPC_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
      e->children.push_back(std::move(content));
    }
    if (!ConsumeSym("}")) return Error("expected '}'");
    return e;
  }

  // ------------------------------------------------- direct constructors

  // pos_ is at '<'.
  StatusOr<ExprPtr> ParseDirectConstructor() {
    if (src_.substr(pos_, 4) == "<!--") {
      pos_ += 4;
      size_t end = src_.find("-->", pos_);
      if (end == std::string_view::npos) return Error("unterminated comment");
      ExprPtr e = MakeExpr(ExprKind::kCommentCtor);
      ExprPtr lit = MakeExpr(ExprKind::kLiteral);
      lit->literal =
          xdm::AtomicValue::String(std::string(src_.substr(pos_, end - pos_)));
      e->children.push_back(std::move(lit));
      pos_ = end + 3;
      return e;
    }
    if (src_.substr(pos_, 2) == "<?") {
      pos_ += 2;
      XRPC_ASSIGN_OR_RETURN(std::string target, ParseNCName());
      size_t end = src_.find("?>", pos_);
      if (end == std::string_view::npos) return Error("unterminated PI");
      ExprPtr e = MakeExpr(ExprKind::kPiCtor);
      e->name = xml::QName(std::move(target));
      ExprPtr lit = MakeExpr(ExprKind::kLiteral);
      lit->literal = xdm::AtomicValue::String(
          std::string(TrimWhitespace(src_.substr(pos_, end - pos_))));
      e->children.push_back(std::move(lit));
      pos_ = end + 2;
      return e;
    }
    return ParseDirectElement();
  }

  StatusOr<ExprPtr> ParseDirectElement() {
    if (!ConsumeSym("<")) return Error("expected '<'");
    // Element names in constructors are parsed lexically; namespace
    // resolution uses prolog-declared prefixes (plus any xmlns attributes,
    // which we record as plain attributes and also bind here).
    XRPC_ASSIGN_OR_RETURN(auto pq, ParseLexicalQName());

    ExprPtr e = MakeExpr(ExprKind::kElementCtor);
    std::vector<std::pair<std::string, std::string>> local_ns;

    // Attributes.
    while (true) {
      SkipWs();
      if (LookSym("/>") || LookSym(">")) break;
      if (Eof()) return Error("unterminated start tag");
      XRPC_ASSIGN_OR_RETURN(auto apq, ParseLexicalQName());
      SkipWs();
      if (!ConsumeSym("=")) return Error("expected '=' in attribute");
      SkipWs();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      // Attribute value template: literal text + {expr} parts.
      ExprPtr attr = MakeExpr(ExprKind::kAttributeCtor);
      std::string lit;
      auto flush = [&]() {
        if (lit.empty()) return;
        ExprPtr t = MakeExpr(ExprKind::kLiteral);
        t->literal = xdm::AtomicValue::String(lit);
        attr->children.push_back(std::move(t));
        lit.clear();
      };
      while (!Eof() && Peek() != quote) {
        char c = Peek();
        if (c == '{') {
          if (Peek(1) == '{') {
            lit.push_back('{');
            pos_ += 2;
            continue;
          }
          ConsumeSym("{");
          flush();
          XRPC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          if (!ConsumeSym("}")) return Error("expected '}'");
          attr->children.push_back(std::move(inner));
          continue;
        }
        if (c == '}') {
          if (Peek(1) == '}') {
            lit.push_back('}');
            pos_ += 2;
            continue;
          }
          return Error("'}' must be escaped in attribute value");
        }
        if (c == '&') {
          XRPC_RETURN_IF_ERROR(ParseEntityRef(&lit));
          continue;
        }
        lit.push_back(c);
        ++pos_;
      }
      flush();
      ++pos_;  // closing quote
      if (apq.first.empty() && apq.second == "xmlns") {
        // Static evaluation of the namespace attribute value.
        std::string uri = AttrLiteralValue(*attr);
        local_ns.emplace_back("", uri);
        continue;
      }
      if (apq.first == "xmlns") {
        local_ns.emplace_back(apq.second, AttrLiteralValue(*attr));
        continue;
      }
      attr->name = xml::QName("", apq.second, apq.first);  // resolved below
      e->attributes.push_back(std::move(attr));
    }

    size_t scope_mark = ns_.size();
    for (auto& b : local_ns) ns_.push_back(b);

    // Resolve element and attribute names now that xmlns bindings are known.
    {
      XRPC_ASSIGN_OR_RETURN(std::string euri, ResolvePrefix(pq.first));
      e->name = xml::QName(euri, pq.second, pq.first);
      for (ExprPtr& attr : e->attributes) {
        if (!attr->name.prefix.empty()) {
          XRPC_ASSIGN_OR_RETURN(std::string auri,
                                ResolvePrefix(attr->name.prefix));
          attr->name.ns_uri = auri;
        }
      }
    }

    SkipWs();
    if (ConsumeSym("/>")) {
      ns_.resize(scope_mark);
      return e;
    }
    if (!ConsumeSym(">")) return Error("expected '>'");

    // Element content: literal text, nested elements, enclosed expressions.
    std::string lit;
    auto flush = [&]() {
      // Boundary whitespace between constructs is stripped (XQuery default
      // boundary-space strip).
      bool all_ws = true;
      for (char c : lit) {
        if (!IsXmlWhitespace(c)) {
          all_ws = false;
          break;
        }
      }
      if (!lit.empty() && !all_ws) {
        ExprPtr t = MakeExpr(ExprKind::kTextCtor);
        t->literal = xdm::AtomicValue::String(lit);
        e->children.push_back(std::move(t));
      }
      lit.clear();
    };

    while (true) {
      if (Eof()) return Error("unterminated element constructor");
      char c = Peek();
      if (c == '<') {
        if (src_.substr(pos_, 2) == "</") {
          flush();
          pos_ += 2;
          XRPC_ASSIGN_OR_RETURN(auto epq, ParseLexicalQName());
          SkipWs();
          if (!ConsumeSym(">")) return Error("malformed end tag");
          if (epq != pq) {
            return Error("mismatched end tag </" +
                         (epq.first.empty() ? epq.second
                                            : epq.first + ":" + epq.second) +
                         ">");
          }
          ns_.resize(scope_mark);
          return e;
        }
        if (src_.substr(pos_, 9) == "<![CDATA[") {
          size_t end = src_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) return Error("unterminated CDATA");
          lit.append(src_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        flush();
        XRPC_ASSIGN_OR_RETURN(ExprPtr child, ParseDirectConstructor());
        e->children.push_back(std::move(child));
        continue;
      }
      if (c == '{') {
        if (Peek(1) == '{') {
          lit.push_back('{');
          pos_ += 2;
          continue;
        }
        ConsumeSym("{");
        flush();
        XRPC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        SkipWs();
        if (!ConsumeSym("}")) return Error("expected '}' in element content");
        e->children.push_back(std::move(inner));
        continue;
      }
      if (c == '}') {
        if (Peek(1) == '}') {
          lit.push_back('}');
          pos_ += 2;
          continue;
        }
        return Error("'}' must be escaped in element content");
      }
      if (c == '&') {
        XRPC_RETURN_IF_ERROR(ParseEntityRef(&lit));
        continue;
      }
      lit.push_back(c);
      ++pos_;
    }
  }

  // Concatenates the literal parts of an attribute constructor (used for
  // xmlns attributes, which must be static).
  static std::string AttrLiteralValue(const Expr& attr) {
    std::string out;
    for (const ExprPtr& c : attr.children) {
      if (c->kind == ExprKind::kLiteral) out += c->literal.ToString();
    }
    return out;
  }

  std::string_view src_;
  size_t pos_ = 0;
  /// Line of the first unterminated comment SkipWs ran into (0 = none);
  /// see Error() — it beats whatever confusing EOF error follows.
  int unterminated_comment_line_ = 0;
  std::vector<std::pair<std::string, std::string>> ns_;
  std::string module_target_ns_;
};

}  // namespace

StatusOr<MainModule> ParseMainModule(std::string_view text) {
  Parser p(text);
  return p.ParseMain();
}

StatusOr<LibraryModule> ParseLibraryModule(std::string_view text) {
  Parser p(text);
  return p.ParseLibrary();
}

}  // namespace xrpc::xquery
