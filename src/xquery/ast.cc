#include "xquery/ast.h"

namespace xrpc::xquery {

const char* AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "unknown";
}

std::string SequenceType::ToString() const {
  std::string base;
  switch (kind) {
    case ItemKind::kItem:
      base = "item()";
      break;
    case ItemKind::kAtomic:
      base = xdm::AtomicTypeName(atomic);
      break;
    case ItemKind::kNode:
      base = "node()";
      break;
    case ItemKind::kElement:
      base = "element()";
      break;
    case ItemKind::kAttribute:
      base = "attribute()";
      break;
    case ItemKind::kDocument:
      base = "document-node()";
      break;
    case ItemKind::kText:
      base = "text()";
      break;
    case ItemKind::kEmpty:
      return "empty-sequence()";
  }
  switch (occurrence) {
    case Occurrence::kOne:
      return base;
    case Occurrence::kZeroOrOne:
      return base + "?";
    case Occurrence::kZeroOrMore:
      return base + "*";
    case Occurrence::kOneOrMore:
      return base + "+";
  }
  return base;
}

bool ContainsUpdatingSyntax(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kInsert:
    case ExprKind::kDelete:
    case ExprKind::kReplaceNode:
    case ExprKind::kReplaceValue:
    case ExprKind::kRename:
      return true;
    default:
      break;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && ContainsUpdatingSyntax(*c)) return true;
  }
  for (const FlworClause& c : e.clauses) {
    if (c.expr != nullptr && ContainsUpdatingSyntax(*c.expr)) return true;
  }
  if (e.where != nullptr && ContainsUpdatingSyntax(*e.where)) return true;
  for (const OrderSpec& s : e.order_by) {
    if (s.key != nullptr && ContainsUpdatingSyntax(*s.key)) return true;
  }
  if (e.ret != nullptr && ContainsUpdatingSyntax(*e.ret)) return true;
  for (const ExprPtr& p : e.predicates) {
    if (p != nullptr && ContainsUpdatingSyntax(*p)) return true;
  }
  for (const ExprPtr& a : e.attributes) {
    if (a != nullptr && ContainsUpdatingSyntax(*a)) return true;
  }
  if (e.name_expr != nullptr && ContainsUpdatingSyntax(*e.name_expr)) {
    return true;
  }
  for (const PathStep& s : e.steps) {
    for (const ExprPtr& p : s.predicates) {
      if (p != nullptr && ContainsUpdatingSyntax(*p)) return true;
    }
  }
  return false;
}

}  // namespace xrpc::xquery
