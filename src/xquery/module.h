#ifndef XRPC_XQUERY_MODULE_H_
#define XRPC_XQUERY_MODULE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xquery/ast.h"

namespace xrpc::xquery {

/// Namespace URI assumed for unprefixed function calls (fn:).
inline constexpr char kFnNs[] = "http://www.w3.org/2005/xpath-functions";
/// Namespace for local functions in a main module.
inline constexpr char kLocalNs[] =
    "http://www.w3.org/2005/xquery-local-functions";

/// A function parameter declaration.
struct Param {
  xml::QName name;
  SequenceType type;
};

/// A user-defined function (XQuery Module function or main-module local).
struct FunctionDef {
  xml::QName name;
  std::vector<Param> params;
  SequenceType return_type;
  ExprPtr body;
  bool updating = false;

  size_t arity() const { return params.size(); }
};

/// `import module namespace p = "uri" at "location";`
struct ModuleImport {
  std::string prefix;
  std::string target_ns;
  std::string location;  ///< at-hint (may be empty)
};

/// Common prolog contents of main and library modules.
struct Prolog {
  /// Declared prefix -> URI bindings (in declaration order).
  std::vector<std::pair<std::string, std::string>> namespaces;
  /// declare option name "value"; keyed by Clark name of the option QName.
  std::map<std::string, std::string> options;
  std::vector<ModuleImport> imports;
  std::vector<FunctionDef> functions;
  /// declare variable $name := expr;
  std::vector<std::pair<xml::QName, ExprPtr>> variables;

  /// Looks up an option by Clark name; nullptr if absent.
  const std::string* FindOption(const std::string& clark) const {
    auto it = options.find(clark);
    return it == options.end() ? nullptr : &it->second;
  }
};

/// A parsed XQuery library module (`module namespace p = "uri";`).
struct LibraryModule {
  std::string prefix;
  std::string target_ns;
  Prolog prolog;

  /// Finds a function by expanded name and arity; nullptr if absent.
  const FunctionDef* FindFunction(const xml::QName& name, size_t arity) const {
    for (const FunctionDef& f : prolog.functions) {
      if (f.name == name && f.arity() == arity) return &f;
    }
    return nullptr;
  }
};

/// A parsed XQuery main module: prolog plus query body.
struct MainModule {
  Prolog prolog;
  ExprPtr body;
};

}  // namespace xrpc::xquery

#endif  // XRPC_XQUERY_MODULE_H_
