#ifndef XRPC_XQUERY_UPDATE_H_
#define XRPC_XQUERY_UPDATE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "xdm/item.h"
#include "xml/qname.h"

namespace xrpc::xquery {

/// One XQUF update primitive. Targets carry their tree anchor (an Item), so
/// the tree a pending update refers to stays alive until application.
struct UpdatePrimitive {
  enum class Kind {
    kInsertInto,
    kInsertFirst,
    kInsertLast,
    kInsertBefore,
    kInsertAfter,
    kDelete,
    kReplaceNode,
    kReplaceValue,
    kRename,
    kPut,  ///< fn:put($node, $uri)
  };

  Kind kind;
  xdm::Item target;                 ///< node primitives: the target node
  std::vector<xdm::Item> content;   ///< already-copied source nodes
  xml::QName new_name;              ///< kRename
  std::string new_value;            ///< kReplaceValue
  std::string put_uri;              ///< kPut
};

/// The pending update list produced by evaluating an updating query (XQUF):
/// side effects are deferred until applyUpdates() runs after evaluation.
///
/// Primitives are tagged with the index of the XRPC call that produced them
/// (`call_index`), implementing the deterministic-update-order extension of
/// the companion report [Zhang&Boncz, INS-E0607]: merging PULs from Bulk RPC
/// preserves a reproducible order even though XQUF itself leaves the order
/// of conflicting updates undefined.
class PendingUpdateList {
 public:
  void Add(UpdatePrimitive primitive) {
    entries_.push_back({next_call_index_, std::move(primitive)});
  }

  /// Merges another PUL (e.g. one produced by a later XRPC call handled for
  /// the same query), keeping its relative order after existing entries.
  void Merge(PendingUpdateList other);

  /// Marks the start of a new update source (XRPC call); subsequent Add()s
  /// are tagged with the next call index.
  void BeginCall() { ++next_call_index_; }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  struct Entry {
    int call_index;
    UpdatePrimitive primitive;
  };
  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& mutable_entries() { return entries_; }

  /// Maps the root node of a target's tree to the name of the document it
  /// was pinned from (so a serialized target can be re-resolved later).
  using DocNamer = std::function<StatusOr<std::string>(const xml::Node* root)>;

  /// Returns the pinned tree for a document name during deserialization.
  using DocResolver =
      std::function<StatusOr<xml::NodePtr>(const std::string& name)>;

  /// Serializes the list to a self-contained XML fragment suitable for
  /// writing to stable storage (the Section-6 prepare log). Node targets
  /// are encoded as (document name, child-index path from the tree root);
  /// content trees are serialized inline. A target whose tree `doc_of_root`
  /// cannot name is an error — it could never be re-resolved after a crash.
  StatusOr<std::string> Serialize(const DocNamer& doc_of_root) const;

  /// Rebuilds a list from Serialize() output, re-resolving target paths
  /// against the trees returned by `doc_of_name`. Content trees get fresh
  /// node identities (they are parsed back), which is sound: XQUF content
  /// is already-copied and owned by the primitive.
  static StatusOr<PendingUpdateList> Deserialize(
      std::string_view text, const DocResolver& doc_of_name);

 private:
  std::vector<Entry> entries_;
  int next_call_index_ = 0;
};

class DocumentStore;

/// Applies all updates in the list against the live trees, in the XQUF
/// phase order (rename/replace-value first, then replaces, inserts,
/// deletes, puts). `puts` receive documents through `put_sink` when
/// non-null; kPut primitives error otherwise.
class PutSink {
 public:
  virtual ~PutSink() = default;
  /// Stores `doc` under `uri` (fn:put semantics).
  virtual Status Put(const std::string& uri, xml::NodePtr doc) = 0;
};

Status ApplyUpdates(PendingUpdateList* pul, PutSink* put_sink);

}  // namespace xrpc::xquery

#endif  // XRPC_XQUERY_UPDATE_H_
