#ifndef XRPC_XQUERY_CONTEXT_H_
#define XRPC_XQUERY_CONTEXT_H_

#include <string>
#include <vector>

#include "base/statusor.h"
#include "xdm/item.h"
#include "xml/qname.h"
#include "xquery/module.h"
#include "xquery/update.h"

namespace xrpc::xquery {

/// Resolves fn:doc() URIs against the peer's database (the `db_p` of the
/// formal semantics). Implementations decide which database *state* is
/// visible — the isolation manager hands snapshot-bound providers to
/// queries running under repeatable-read isolation.
class DocumentProvider {
 public:
  virtual ~DocumentProvider() = default;
  /// Returns the document node for `uri`.
  virtual StatusOr<xml::NodePtr> GetDocument(const std::string& uri) = 0;
};

/// Resolves module imports (`import module namespace ... at "loc"`).
class ModuleResolver {
 public:
  virtual ~ModuleResolver() = default;
  /// Returns the module whose target namespace is `target_ns`; `location`
  /// is the at-hint and may be used when the namespace alone is ambiguous.
  virtual StatusOr<const LibraryModule*> Resolve(
      const std::string& target_ns, const std::string& location) = 0;
};

/// One remote function application, as produced by `execute at`.
struct RpcCall {
  std::string dest_uri;         ///< xrpc://host[:port][/path]
  std::string module_ns;        ///< module target namespace
  std::string module_location;  ///< at-hint of the import
  xml::QName function;
  std::vector<xdm::Sequence> args;
  bool updating = false;  ///< calls an updating function
};

/// Executes XRPC calls on behalf of the evaluator. The core library's
/// dispatcher implements this on top of the SOAP codec and a transport;
/// tests may plug in local fakes.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;
  /// Performs the call and returns the (marshaled-through) result sequence.
  /// For updating calls the result is empty; the remote side accumulates
  /// the pending update list per the active isolation level.
  virtual StatusOr<xdm::Sequence> Execute(const RpcCall& call) = 0;
};

/// Result of evaluating a query: the value plus, for updating queries, the
/// pending update list awaiting applyUpdates().
struct QueryResult {
  xdm::Sequence sequence;
  PendingUpdateList updates;
};

}  // namespace xrpc::xquery

#endif  // XRPC_XQUERY_CONTEXT_H_
