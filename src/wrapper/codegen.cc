#include "wrapper/codegen.h"

#include <sstream>

namespace xrpc::wrapper {

namespace {

using xquery::SequenceType;

/// Emits the pure-XQuery n2s() for parameter `index` (1-based) with the
/// declared type `type`, reading from $call.
std::string N2sExpr(size_t index, const SequenceType& type) {
  std::string seq = "$call/xrpc:sequence[" + std::to_string(index) + "]";
  std::ostringstream os;
  switch (type.kind) {
    case SequenceType::ItemKind::kAtomic: {
      // Values were up-cast by the caller; re-validate with the
      // constructor function of the declared type.
      std::string ctor = xdm::AtomicTypeName(type.atomic);
      os << "for $v in " << seq << "/* return " << ctor << "(string($v))";
      return os.str();
    }
    case SequenceType::ItemKind::kElement:
    case SequenceType::ItemKind::kNode:
    case SequenceType::ItemKind::kDocument:
      // Copy the payload into a fresh wrapper element, then step down so
      // the function sees free-standing fragments (upward navigation must
      // not reach the SOAP envelope).
      os << "for $v in " << seq << "/xrpc:element"
         << " return exactly-one(<xrpc:w>{$v/*}</xrpc:w>/*)";
      return os.str();
    case SequenceType::ItemKind::kText:
      os << "for $v in " << seq << "/xrpc:text return text {string($v)}";
      return os.str();
    default: {
      // item()*: dispatch on the wire representation at run time.
      os << "for $v in " << seq << "/*\n"
         << "      return if (local-name($v) = \"atomic-value\")\n"
         << "      then (\n"
         << "        if ($v/@xsi:type = \"xs:integer\") then "
            "xs:integer(string($v))\n"
         << "        else if ($v/@xsi:type = \"xs:double\") then "
            "xs:double(string($v))\n"
         << "        else if ($v/@xsi:type = \"xs:decimal\") then "
            "xs:decimal(string($v))\n"
         << "        else if ($v/@xsi:type = \"xs:boolean\") then "
            "xs:boolean(string($v))\n"
         << "        else string($v))\n"
         << "      else exactly-one(<xrpc:w>{$v/*}</xrpc:w>/*)";
      return os.str();
    }
  }
}

/// Emits the pure-XQuery s2n() wrapping the result of the call (bound as
/// the expression `result`), honoring the declared return type.
std::string S2nExpr(const std::string& result, const SequenceType& type) {
  std::ostringstream os;
  switch (type.kind) {
    case SequenceType::ItemKind::kAtomic:
      os << "for $r in " << result << " return <xrpc:atomic-value "
         << "xsi:type=\"" << xdm::AtomicTypeName(type.atomic) << "\">"
         << "{string($r)}</xrpc:atomic-value>";
      return os.str();
    case SequenceType::ItemKind::kElement:
    case SequenceType::ItemKind::kNode:
      os << "for $r in " << result
         << " return <xrpc:element>{$r}</xrpc:element>";
      return os.str();
    case SequenceType::ItemKind::kDocument:
      os << "for $r in " << result
         << " return <xrpc:document>{$r/*}</xrpc:document>";
      return os.str();
    case SequenceType::ItemKind::kText:
      os << "for $r in " << result
         << " return <xrpc:text>{string($r)}</xrpc:text>";
      return os.str();
    default:
      os << "for $r in " << result << "\n"
         << "    return if ($r instance of node())\n"
         << "    then <xrpc:element>{$r}</xrpc:element>\n"
         << "    else if ($r instance of xs:integer)\n"
         << "    then <xrpc:atomic-value xsi:type=\"xs:integer\">"
            "{string($r)}</xrpc:atomic-value>\n"
         << "    else if ($r instance of xs:double)\n"
         << "    then <xrpc:atomic-value xsi:type=\"xs:double\">"
            "{string($r)}</xrpc:atomic-value>\n"
         << "    else if ($r instance of xs:boolean)\n"
         << "    then <xrpc:atomic-value xsi:type=\"xs:boolean\">"
            "{string($r)}</xrpc:atomic-value>\n"
         << "    else <xrpc:atomic-value xsi:type=\"xs:string\">"
            "{string($r)}</xrpc:atomic-value>";
      return os.str();
  }
}

}  // namespace

StatusOr<std::string> GenerateWrapperQuery(const soap::XrpcRequest& request,
                                           const xquery::FunctionDef& def) {
  if (def.arity() != request.arity) {
    return Status::InvalidArgument("wrapper: arity mismatch for " +
                                   request.method);
  }
  std::ostringstream q;
  q << "import module namespace func = \"" << request.module_ns << "\"";
  if (!request.location.empty()) {
    q << " at \"" << request.location << "\"";
  }
  q << ";\n";
  q << "declare namespace env = \"" << xml::kSoapEnvelopeNs << "\";\n";
  q << "declare namespace xrpc = \"" << xml::kXrpcNs << "\";\n\n";
  q << "<env:Envelope xmlns:env=\"" << xml::kSoapEnvelopeNs << "\"\n"
    << "    xmlns:xrpc=\"" << xml::kXrpcNs << "\"\n"
    << "    xmlns:xs=\"" << xml::kXsNs << "\"\n"
    << "    xmlns:xsi=\"" << xml::kXsiNs << "\">\n"
    << "<env:Body>\n"
    << "<xrpc:response module=\"" << request.module_ns << "\" method=\""
    << request.method << "\">{\n"
    << "  for $call in doc(\"" << kRequestDocName << "\")//xrpc:call\n";
  std::string call_args;
  for (size_t p = 0; p < def.arity(); ++p) {
    q << "  let $param" << (p + 1) << " := " << N2sExpr(p + 1, def.params[p].type)
      << "\n";
    if (p > 0) call_args += ", ";
    call_args += "$param" + std::to_string(p + 1);
  }
  std::string call = "func:" + request.method + "(" + call_args + ")";
  q << "  return <xrpc:sequence>{\n"
    << "    " << S2nExpr(call, def.return_type) << "\n"
    << "  }</xrpc:sequence>\n"
    << "}</xrpc:response>\n"
    << "</env:Body>\n"
    << "</env:Envelope>";
  return q.str();
}

}  // namespace xrpc::wrapper
