#ifndef XRPC_WRAPPER_WRAPPER_ENGINE_H_
#define XRPC_WRAPPER_WRAPPER_ENGINE_H_

#include <cstdint>
#include <string>

#include "server/engine.h"

namespace xrpc::wrapper {

/// The XRPC wrapper of Section 4: lets an XRPC-incapable XQuery engine
/// (our tree-walking interpreter, standing in for Saxon) serve XRPC calls.
///
/// Per request the wrapper (i) stores the incoming SOAP message as a
/// temporary document ("treebuild"), (ii) generates the Figure-3 XQuery
/// query and compiles it together with the target module ("compile"), and
/// (iii) evaluates the query, producing the SOAP response envelope by
/// element construction ("exec"). The timing split is retained for the
/// Table 3 reproduction.
///
/// The wrapper handles read-only calls; updating requests fall back to the
/// direct interpreter path (the wrapper architecture cannot return pending
/// update lists, which the paper notes as well: wrapped peers handle calls
/// but do not originate them).
class WrapperEngine : public server::ExecutionEngine {
 public:
  struct Timings {
    int64_t treebuild_us = 0;
    int64_t compile_us = 0;
    int64_t exec_us = 0;
    int64_t total_us = 0;
  };

  std::string name() const override { return "wrapper"; }

  StatusOr<std::vector<xdm::Sequence>> ExecuteRequest(
      const soap::XrpcRequest& request, const server::CallContext& context,
      xquery::PendingUpdateList* pul) override;

  /// Timing breakdown of the most recent request.
  const Timings& last_timings() const { return last_timings_; }
  /// Accumulated timings across requests.
  const Timings& total_timings() const { return total_timings_; }
  void ResetTimings() { total_timings_ = Timings(); }

  /// The query text generated for the most recent request (diagnostics;
  /// printed by the wrapper_interop example).
  const std::string& last_generated_query() const { return last_query_; }

 private:
  Timings last_timings_;
  Timings total_timings_;
  std::string last_query_;
};

}  // namespace xrpc::wrapper

#endif  // XRPC_WRAPPER_WRAPPER_ENGINE_H_
