#include "wrapper/wrapper_engine.h"

#include "base/clock.h"
#include "soap/message.h"
#include "wrapper/codegen.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/interpreter.h"
#include "xquery/parser.h"

namespace xrpc::wrapper {

namespace {

/// Serves the stored request document on top of the peer's database view.
class LayeredProvider : public xquery::DocumentProvider {
 public:
  LayeredProvider(xml::NodePtr request_doc, xquery::DocumentProvider* base)
      : request_doc_(std::move(request_doc)), base_(base) {}

  StatusOr<xml::NodePtr> GetDocument(const std::string& uri) override {
    if (uri == kRequestDocName) return request_doc_;
    if (base_ == nullptr) {
      return Status::NotFound("document not found: " + uri);
    }
    return base_->GetDocument(uri);
  }

 private:
  xml::NodePtr request_doc_;
  xquery::DocumentProvider* base_;
};

}  // namespace

StatusOr<std::vector<xdm::Sequence>> WrapperEngine::ExecuteRequest(
    const soap::XrpcRequest& request, const server::CallContext& context,
    xquery::PendingUpdateList* pul) {
  if (request.updating) {
    // The wrapper cannot channel pending update lists through its
    // generated query; route updates through the direct interpreter.
    server::InterpreterEngine fallback;
    return fallback.ExecuteRequest(request, context, pul);
  }
  StopWatch total;

  // The wrapper needs the function signature to generate marshaling code.
  if (context.modules == nullptr) {
    return Status::Internal("wrapper: no module resolver");
  }
  XRPC_ASSIGN_OR_RETURN(
      const xquery::LibraryModule* module,
      context.modules->Resolve(request.module_ns, request.location));
  const xquery::FunctionDef* def = nullptr;
  for (const xquery::FunctionDef& f : module->prolog.functions) {
    if (f.name.local == request.method && f.arity() == request.arity) {
      def = &f;
      break;
    }
  }
  if (def == nullptr) {
    return Status::NotFound("function " + request.method + "#" +
                            std::to_string(request.arity) +
                            " not found in module " + request.module_ns);
  }

  // (i) treebuild: store the SOAP request as a temporary document the
  // generated query can read ("/tmp/requestXXX.xml" in the paper).
  StopWatch treebuild;
  std::string request_text = soap::SerializeRequest(request);
  XRPC_ASSIGN_OR_RETURN(xml::NodePtr request_doc,
                        xml::ParseXml(request_text));
  last_timings_.treebuild_us = treebuild.ElapsedMicros();

  // (ii) compile: generate and parse the Figure-3 query.
  StopWatch compile;
  XRPC_ASSIGN_OR_RETURN(last_query_, GenerateWrapperQuery(request, *def));
  XRPC_ASSIGN_OR_RETURN(xquery::MainModule generated,
                        xquery::ParseMainModule(last_query_));
  last_timings_.compile_us = compile.ElapsedMicros();

  // (iii) exec: evaluate; the result is the SOAP response envelope.
  StopWatch exec;
  LayeredProvider docs(request_doc, context.documents);
  xquery::Interpreter::Config config;
  config.documents = &docs;
  config.modules = context.modules;
  config.rpc = nullptr;  // wrapped engines cannot make outgoing XRPC calls
  xquery::Interpreter interp(config);
  XRPC_ASSIGN_OR_RETURN(xquery::QueryResult result,
                        interp.EvaluateQuery(generated));
  if (result.sequence.size() != 1 || !result.sequence[0].IsNode()) {
    return Status::Internal("wrapper query did not yield one envelope");
  }
  std::string response_text = xml::SerializeNode(*result.sequence[0].node());
  XRPC_ASSIGN_OR_RETURN(soap::XrpcResponse response,
                        soap::ParseResponse(response_text));
  last_timings_.exec_us = exec.ElapsedMicros();
  last_timings_.total_us = total.ElapsedMicros();
  total_timings_.treebuild_us += last_timings_.treebuild_us;
  total_timings_.compile_us += last_timings_.compile_us;
  total_timings_.exec_us += last_timings_.exec_us;
  total_timings_.total_us += last_timings_.total_us;
  return std::move(response.results);
}

}  // namespace xrpc::wrapper
