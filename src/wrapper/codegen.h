#ifndef XRPC_WRAPPER_CODEGEN_H_
#define XRPC_WRAPPER_CODEGEN_H_

#include <string>

#include "base/statusor.h"
#include "soap/message.h"
#include "xquery/module.h"

namespace xrpc::wrapper {

/// Name under which the stored SOAP request message is visible to the
/// generated query (the "/tmp/requestXXX.xml" of Figure 3).
inline constexpr char kRequestDocName[] = "xrpc-wrapper-request.xml";

/// Generates the XQuery query that computes the SOAP response for a (bulk)
/// XRPC request on a plain XQuery engine — Figure 3 of the paper.
///
/// The generated query iterates over all xrpc:call elements of the stored
/// request document (so a Bulk RPC becomes one set-oriented query), applies
/// the pure-XQuery equivalents of n2s() to each parameter and of s2n() to
/// each result, and assembles the full SOAP envelope by element
/// construction.
///
/// `def` supplies the declared parameter and return types, which the
/// generator uses to emit the correct marshaling code (the protocol carries
/// arity; the wrapper host has the module and therefore the signature).
StatusOr<std::string> GenerateWrapperQuery(const soap::XrpcRequest& request,
                                           const xquery::FunctionDef& def);

}  // namespace xrpc::wrapper

#endif  // XRPC_WRAPPER_CODEGEN_H_
