// Deterministic Zipfian sampler for hot-key skew in the workload driver
// (DESIGN.md §16). Rank 0 is the hottest item; P(rank i) ∝ 1/(i+1)^s.
// s = 0 degenerates to uniform. The CDF is precomputed once so sampling
// is a binary search — O(log n) per draw, no rejection loop, and the
// draw consumes exactly one PRNG value (keeps arrival schedules
// reproducible when mixes change).

#ifndef XRPC_LOAD_ZIPF_H_
#define XRPC_LOAD_ZIPF_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/prng.h"

namespace xrpc::load {

class ZipfSampler {
 public:
  ZipfSampler(int n, double s) {
    if (n < 1) n = 1;
    cdf_.resize(static_cast<size_t>(n));
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  int size() const { return static_cast<int>(cdf_.size()); }

  /// Draws a 0-based rank; consumes exactly one value from `prng`.
  int Sample(DeterministicPrng& prng) const {
    double u = prng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) --it;
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;  ///< cdf_[i] = P(rank <= i), ends at 1.0
};

}  // namespace xrpc::load

#endif  // XRPC_LOAD_ZIPF_H_
