// Open-loop multi-tenant workload driver (DESIGN.md §16).
//
// Arrivals are a merged Poisson process per tenant, precomputed on the
// VirtualClock — no wall clock anywhere, so a (seed, config) pair pins the
// exact arrival schedule, query mix, key skew, chaos event times, and
// therefore the entire SLO report byte-for-byte. Open-loop means the
// driver never waits for a response before honoring the next arrival:
// when the fleet falls behind, waiting time accumulates into measured
// latency (completion − arrival) instead of silently throttling offered
// load — saturation shows up as a latency blow-up and deadline/admission
// losses, exactly like a production front door.

#ifndef XRPC_LOAD_WORKLOAD_H_
#define XRPC_LOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/peer_network.h"
#include "xmark/xmark.h"

namespace xrpc::load {

/// What one arrival asks the fleet to do.
enum class QueryKind {
  kPointRead,     ///< Q_B3(person-key): routed, prunes to the owning shard
  kJoinRead,      ///< Q_B1 broadcast: scatter-gather over every shard
  kUpdate,        ///< XQUF insert at two peers through repeatable-read 2PC
  kShardedUpdate, ///< XQUF updating broadcast over the sharded collection:
                  ///< every replica of every shard joins the 2PC
                  ///< (DESIGN.md §17)
};

const char* QueryKindToString(QueryKind kind);

/// One tenant's traffic contract.
struct TenantSpec {
  std::string name = "tenant";
  /// Offered load in queries per virtual second (Poisson arrival rate).
  double arrival_qps = 100.0;
  /// Fraction of arrivals that are XQUF updates (through 2PC).
  double update_fraction = 0.0;
  /// Fraction of arrivals that are updating broadcasts over the sharded
  /// auctions collection — an all-copies 2PC enlisting every replica of
  /// every shard. The stamp they insert is invisible to the read queries,
  /// so read results stay comparable across the run. Replicas revived by
  /// driver chaos resync missed commits via anti-entropy repair.
  double sharded_update_fraction = 0.0;
  /// Of the read arrivals, fraction that are routed point reads (the rest
  /// are broadcast joins).
  double point_fraction = 0.8;
  /// Zipf skew of key targeting: 0 = uniform, 1 ≈ classic hot-key skew.
  /// Point reads draw a person key (whose shard is the hash of the key);
  /// updates draw the first destination shard directly.
  double zipf_s = 1.0;
  /// End-to-end budget per query; an arrival whose queueing delay already
  /// exceeds it is admission-rejected without dispatching.
  int64_t deadline_us = 2'000'000;
  /// Latency SLO on arrival→completion; `goodput` counts only queries
  /// that completed ok within this.
  int64_t slo_latency_us = 100'000;
};

/// Driver-applied membership chaos while load is running: derived
/// deterministically from the seed when `chaos` is on (kill → revive →
/// catalog bump → second kill → revive, spread over the run).
struct WorkloadConfig {
  uint64_t seed = 1;
  /// Fleet size: shard peers "shard0" .. "shardN-1" plus the p0 frontend.
  int num_shards = 8;
  int replication_factor = 1;
  /// Virtual-time horizon of the arrival schedule.
  int64_t duration_us = 1'000'000;
  std::vector<TenantSpec> tenants;
  /// XMark fixture size (modest default keeps a sweep in seconds).
  xmark::XmarkConfig data;
  /// Apply the deterministic kill/revive/bump sequence mid-run.
  bool chaos = false;

  WorkloadConfig() {
    data.num_persons = 24;
    data.num_closed_auctions = 32;
    data.num_matches = 6;
    data.annotation_bytes = 8;
  }
};

/// One precomputed arrival. The schedule is a pure function of the
/// config — tests compare two BuildArrivals() calls for identity.
struct Arrival {
  int64_t time_us = 0;  ///< virtual arrival instant
  int tenant = 0;       ///< index into WorkloadConfig::tenants
  int64_t seq = 0;      ///< per-tenant sequence number (tie-break)
  QueryKind kind = QueryKind::kJoinRead;
  int key = 0;  ///< person rank (point reads) / first shard (updates)
};

/// Precomputes the merged multi-tenant Poisson schedule over
/// [0, duration_us). Sorted by (time_us, tenant, seq).
std::vector<Arrival> BuildArrivals(const WorkloadConfig& config);

/// Per-tenant accounting of one run.
struct TenantReport {
  std::string name;
  int64_t offered = 0;
  int64_t ok = 0;
  int64_t rejected = 0;           ///< admission-rejected (never dispatched)
  int64_t deadline_exceeded = 0;  ///< dispatched but died past its budget
  int64_t failed = 0;             ///< any other terminal error / 2PC abort
  int64_t slo_met = 0;            ///< ok AND within slo_latency_us
  int64_t point_reads = 0;
  int64_t join_reads = 0;
  int64_t updates = 0;
  int64_t sharded_updates = 0;
  /// Exact percentiles of arrival→completion latency over admitted
  /// queries (virtual micros); 0 when nothing was admitted.
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
  double offered_qps = 0.0;  ///< offered / configured duration
  double goodput_qps = 0.0;  ///< slo_met / measured span
};

struct WorkloadReport {
  uint64_t seed = 0;
  int num_shards = 0;
  int replication_factor = 0;
  bool chaos = false;
  int64_t arrivals = 0;
  int64_t span_us = 0;  ///< virtual time from start to last completion
  int64_t chaos_events_fired = 0;
  std::vector<TenantReport> tenants;
  /// RpcMetrics::Report() of the run's PeerNetwork (all-modeled, hence
  /// deterministic) — carries the tenant:/slo: observability lines.
  std::string metrics_report;

  /// Deterministic multi-line rendering; identical seeds must produce
  /// identical text byte-for-byte.
  std::string Format() const;
};

/// Builds the sharded fleet, replays the arrival schedule open-loop, and
/// returns the SLO report. Dispatch is serial (arrival order) so chaos
/// event interleavings stay deterministic.
StatusOr<WorkloadReport> RunWorkload(const WorkloadConfig& config);

}  // namespace xrpc::load

#endif  // XRPC_LOAD_WORKLOAD_H_
