#include "load/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/prng.h"
#include "load/zipf.h"
#include "xmark/shard_loader.h"

namespace xrpc::load {

namespace {

/// Film fixture of the update mix: the Section-2 database every shard
/// peer serves, grown by f:addFilm inserts through repeatable-read 2PC.
/// Updates deliberately target filmDB.xml — not the sharded XMark
/// collections — so read results stay comparable across the whole run.
constexpr char kFilmDb[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare updating function film:addFilm($name as xs:string,
                                         $actor as xs:string)
  { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
    into doc("filmDB.xml")/films };
)";

constexpr char kFilmModuleLocation[] = "film.xq";

/// Sharded-update fixture: an updating broadcast over shard:auctions.xml
/// enlists EVERY replica of every shard in one 2PC (DESIGN.md §17). The
/// stamp lands under /site where no read query looks, so Q_B1/Q_B3
/// results stay comparable across the whole run.
constexpr char kStampModule[] = R"(
  module namespace u = "upd_load";
  declare updating function u:stamp()
  { insert nodes <load-stamp/> into doc("auctions.xml")/site };
)";

constexpr char kStampModuleLocation[] = "u.xq";

constexpr char kShardedUpdateQuery[] =
    "declare option xrpc:isolation \"repeatable\";\n"
    "import module namespace u=\"upd_load\" at \"u.xq\";\n"
    "execute at {\"shard:auctions.xml\"} {u:stamp()}";

/// Same SplitMix-style mix as the fuzz explorers: every (seed, stream)
/// pair gets an independent deterministic PRNG stream.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

/// Driver-applied membership chaos event (virtual-time triggered).
struct ChaosEvent {
  enum Kind { kKill, kRevive, kBump } kind;
  int64_t time_us;
  int peer;  ///< shard peer index (ignored for kBump)
};

std::vector<ChaosEvent> BuildChaosEvents(const WorkloadConfig& config) {
  std::vector<ChaosEvent> events;
  if (!config.chaos || config.num_shards < 1) return events;
  DeterministicPrng prng(MixSeed(config.seed, 0x10001));
  const int n = config.num_shards;
  const int victim1 = static_cast<int>(prng.NextUint64() % n);
  const int victim2 =
      n > 1 ? static_cast<int>(
                  (victim1 + 1 + prng.NextUint64() % (n - 1)) % n)
            : victim1;
  const int64_t d = config.duration_us;
  events.push_back({ChaosEvent::kKill, d / 4, victim1});
  events.push_back({ChaosEvent::kRevive, d / 2, victim1});
  events.push_back({ChaosEvent::kBump, d * 5 / 8, 0});
  events.push_back({ChaosEvent::kKill, d * 3 / 4, victim2});
  events.push_back({ChaosEvent::kRevive, d * 7 / 8, victim2});
  return events;
}

int64_t PercentileExact(const std::vector<int64_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  size_t idx = (static_cast<size_t>(pct) * (sorted.size() - 1)) / 100;
  return sorted[idx];
}

std::string FormatQps(double qps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", qps);
  return buf;
}

}  // namespace

const char* QueryKindToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPointRead: return "point";
    case QueryKind::kJoinRead: return "join";
    case QueryKind::kUpdate: return "update";
    case QueryKind::kShardedUpdate: return "sharded-update";
  }
  return "unknown";
}

std::vector<Arrival> BuildArrivals(const WorkloadConfig& config) {
  std::vector<Arrival> all;
  for (size_t t = 0; t < config.tenants.size(); ++t) {
    const TenantSpec& spec = config.tenants[t];
    if (spec.arrival_qps <= 0.0) continue;
    // Two independent streams per tenant: arrival times must not shift
    // when the mix or skew parameters change.
    DeterministicPrng time_prng(MixSeed(config.seed, 2 * t));
    DeterministicPrng mix_prng(MixSeed(config.seed, 2 * t + 1));
    ZipfSampler person_keys(config.data.num_persons, spec.zipf_s);
    ZipfSampler shard_keys(config.num_shards, spec.zipf_s);

    double now = 0.0;
    int64_t seq = 0;
    for (;;) {
      // Exponential inter-arrival gap of a Poisson process at arrival_qps.
      double u = time_prng.NextDouble();
      now += -std::log(1.0 - u) * 1e6 / spec.arrival_qps;
      if (now >= static_cast<double>(config.duration_us)) break;
      Arrival a;
      a.time_us = static_cast<int64_t>(now);
      a.tenant = static_cast<int>(t);
      a.seq = seq++;
      // One draw splits updates from reads: the film-DB pair update below
      // update_fraction, the all-copies sharded broadcast in the next
      // band. A zero sharded_update_fraction reproduces the pre-existing
      // draw sequence exactly, so old (seed, config) schedules are stable.
      const double update_draw = mix_prng.NextDouble();
      if (update_draw < spec.update_fraction) {
        a.kind = QueryKind::kUpdate;
        a.key = shard_keys.Sample(mix_prng);
      } else if (update_draw <
                 spec.update_fraction + spec.sharded_update_fraction) {
        a.kind = QueryKind::kShardedUpdate;
        a.key = 0;
      } else if (mix_prng.NextDouble() < spec.point_fraction) {
        a.kind = QueryKind::kPointRead;
        a.key = person_keys.Sample(mix_prng);
      } else {
        a.kind = QueryKind::kJoinRead;
        a.key = 0;
      }
      all.push_back(a);
    }
  }
  std::sort(all.begin(), all.end(), [](const Arrival& a, const Arrival& b) {
    if (a.time_us != b.time_us) return a.time_us < b.time_us;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.seq < b.seq;
  });
  return all;
}

StatusOr<WorkloadReport> RunWorkload(const WorkloadConfig& config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("workload needs at least one shard");
  }
  if (config.tenants.empty()) {
    return Status::InvalidArgument("workload needs at least one tenant");
  }

  core::PeerNetwork net;
  xmark::ShardLoadOptions opts;
  opts.num_shards = config.num_shards;
  opts.replication_factor = config.replication_factor;
  auto loaded = xmark::LoadShardedXmark(&net, config.data, opts);
  if (!loaded.ok()) return loaded.status();
  std::vector<core::Peer*> shard_peers = loaded->peers;

  core::Peer* p0 = net.AddPeer("p0", core::EngineKind::kRelational);
  XRPC_RETURN_IF_ERROR(
      p0->RegisterModule(xmark::FunctionsBModuleSource(p0->uri()), "b.xq"));
  XRPC_RETURN_IF_ERROR(p0->RegisterModule(kFilmModule, kFilmModuleLocation));
  XRPC_RETURN_IF_ERROR(
      p0->RegisterModule(kStampModule, kStampModuleLocation));
  for (core::Peer* peer : shard_peers) {
    XRPC_RETURN_IF_ERROR(peer->AddDocument("filmDB.xml", kFilmDb));
    XRPC_RETURN_IF_ERROR(
        peer->RegisterModule(kFilmModule, kFilmModuleLocation));
    XRPC_RETURN_IF_ERROR(
        peer->RegisterModule(kStampModule, kStampModuleLocation));
  }

  const std::vector<Arrival> arrivals = BuildArrivals(config);
  std::vector<ChaosEvent> events = BuildChaosEvents(config);

  WorkloadReport report;
  report.seed = config.seed;
  report.num_shards = config.num_shards;
  report.replication_factor = config.replication_factor;
  report.chaos = config.chaos;
  report.arrivals = static_cast<int64_t>(arrivals.size());
  report.tenants.resize(config.tenants.size());
  std::vector<std::vector<int64_t>> latencies(config.tenants.size());
  for (size_t t = 0; t < config.tenants.size(); ++t) {
    report.tenants[t].name = config.tenants[t].name;
  }

  VirtualClock& clock = net.network().clock();
  const int64_t start_us = clock.NowMicros();
  size_t next_event = 0;

  for (const Arrival& a : arrivals) {
    // Open-loop: the clock never waits for a response, but it does
    // advance to the arrival instant when the fleet is ahead of schedule.
    if (clock.NowMicros() < a.time_us) {
      clock.Advance(a.time_us - clock.NowMicros());
    }
    // Membership chaos fires on virtual time, between dispatches, so the
    // event/query interleaving is a pure function of the seed.
    while (next_event < events.size() &&
           events[next_event].time_us <= clock.NowMicros()) {
      const ChaosEvent& e = events[next_event++];
      switch (e.kind) {
        case ChaosEvent::kKill:
          shard_peers[static_cast<size_t>(e.peer)]->Disconnect();
          break;
        case ChaosEvent::kRevive:
          shard_peers[static_cast<size_t>(e.peer)]->Reconnect();
          // Anti-entropy catch-up (DESIGN.md §17): sharded updates that
          // committed during the partition left this replica lagging —
          // resolve in-doubt state and replay the missed PULs before the
          // peer serves reads again.
          (void)shard_peers[static_cast<size_t>(e.peer)]->Repair();
          break;
        case ChaosEvent::kBump: {
          // Identical re-registration: only the version moves; stamped
          // in-flight decompositions fence and re-route exactly once.
          core::ShardedCollection c;
          int64_t version = 0;
          if (net.catalog().Snapshot("auctions.xml", &c, &version)) {
            (void)net.catalog().RegisterCollection(std::move(c));
          }
          break;
        }
      }
      ++report.chaos_events_fired;
    }

    const TenantSpec& spec = config.tenants[static_cast<size_t>(a.tenant)];
    TenantReport& tr = report.tenants[static_cast<size_t>(a.tenant)];
    ++tr.offered;
    switch (a.kind) {
      case QueryKind::kPointRead: ++tr.point_reads; break;
      case QueryKind::kJoinRead: ++tr.join_reads; break;
      case QueryKind::kUpdate: ++tr.updates; break;
      case QueryKind::kShardedUpdate: ++tr.sharded_updates; break;
    }

    const int64_t wait_us = clock.NowMicros() - a.time_us;
    if (wait_us >= spec.deadline_us) {
      // Admission control: the queueing delay alone already burned the
      // budget — shed the query instead of wasting fleet time on it.
      ++tr.rejected;
      net.metrics().RecordTenantQuery(
          spec.name, net::RpcMetrics::TenantOutcome::kRejected, 0, false);
      continue;
    }

    std::string query;
    switch (a.kind) {
      case QueryKind::kPointRead:
        query =
            "import module namespace b=\"functions_b\" at \"b.xq\";\n"
            "execute at {\"shard:auctions.xml\"} {b:Q_B3(\"person" +
            std::to_string(a.key) + "\")}";
        break;
      case QueryKind::kJoinRead:
        query =
            "import module namespace b=\"functions_b\" at \"b.xq\";\n"
            "execute at {\"shard:auctions.xml\"} {b:Q_B1()}";
        break;
      case QueryKind::kUpdate: {
        const int first = a.key;
        const int second = (a.key + 1) % config.num_shards;
        const std::string film =
            spec.name + "-" + std::to_string(a.seq);
        query = "declare option xrpc:isolation \"repeatable\";\n"
                "import module namespace f=\"films\" at \"" +
                std::string(kFilmModuleLocation) +
                "\";\n"
                "(execute at {\"" +
                shard_peers[static_cast<size_t>(first)]->uri() +
                "\"} {f:addFilm(\"" + film + "\", \"" + spec.name +
                "\")},\n execute at {\"" +
                shard_peers[static_cast<size_t>(second)]->uri() +
                "\"} {f:addFilm(\"" + film + "\", \"" + spec.name +
                "\")})";
        break;
      }
      case QueryKind::kShardedUpdate:
        query = kShardedUpdateQuery;
        break;
    }

    core::ExecuteOptions exec_options;
    exec_options.deadline_us = spec.deadline_us - wait_us;
    auto result = net.Execute("p0", query, exec_options);
    const int64_t latency_us = clock.NowMicros() - a.time_us;
    latencies[static_cast<size_t>(a.tenant)].push_back(latency_us);

    const bool is_update = a.kind == QueryKind::kUpdate ||
                           a.kind == QueryKind::kShardedUpdate;
    net::RpcMetrics::TenantOutcome outcome;
    if (result.ok() && (!is_update || result->committed)) {
      outcome = net::RpcMetrics::TenantOutcome::kOk;
      ++tr.ok;
    } else if (!result.ok() &&
               result.status().code() == StatusCode::kDeadlineExceeded) {
      outcome = net::RpcMetrics::TenantOutcome::kDeadlineExceeded;
      ++tr.deadline_exceeded;
    } else {
      outcome = net::RpcMetrics::TenantOutcome::kFailed;
      ++tr.failed;
    }
    const bool slo_met = outcome == net::RpcMetrics::TenantOutcome::kOk &&
                         latency_us <= spec.slo_latency_us;
    if (slo_met) ++tr.slo_met;
    net.metrics().RecordTenantQuery(spec.name, outcome, latency_us, slo_met);
  }

  report.span_us = clock.NowMicros() - start_us;
  if (report.span_us < config.duration_us) {
    report.span_us = config.duration_us;
  }
  for (size_t t = 0; t < report.tenants.size(); ++t) {
    TenantReport& tr = report.tenants[t];
    std::vector<int64_t>& lat = latencies[t];
    std::sort(lat.begin(), lat.end());
    tr.p50_us = PercentileExact(lat, 50);
    tr.p95_us = PercentileExact(lat, 95);
    tr.p99_us = PercentileExact(lat, 99);
    tr.max_us = lat.empty() ? 0 : lat.back();
    tr.offered_qps = static_cast<double>(tr.offered) * 1e6 /
                     static_cast<double>(config.duration_us);
    tr.goodput_qps = static_cast<double>(tr.slo_met) * 1e6 /
                     static_cast<double>(report.span_us);
  }
  report.metrics_report = net.metrics().Report();
  return report;
}

std::string WorkloadReport::Format() const {
  std::string out = "workload seed=" + std::to_string(seed) +
                    " shards=" + std::to_string(num_shards) +
                    " rf=" + std::to_string(replication_factor) +
                    " chaos=" + (chaos ? "on" : "off") +
                    " arrivals=" + std::to_string(arrivals) +
                    " span_us=" + std::to_string(span_us) +
                    " chaos_events=" + std::to_string(chaos_events_fired) +
                    "\n";
  for (const TenantReport& t : tenants) {
    out += "tenant " + t.name + ": offered=" + std::to_string(t.offered) +
           " ok=" + std::to_string(t.ok) +
           " rejected=" + std::to_string(t.rejected) +
           " deadline_exceeded=" + std::to_string(t.deadline_exceeded) +
           " failed=" + std::to_string(t.failed) +
           " slo_met=" + std::to_string(t.slo_met) + "\n";
    out += "tenant " + t.name +
           " mix: point=" + std::to_string(t.point_reads) +
           " join=" + std::to_string(t.join_reads) +
           " update=" + std::to_string(t.updates) +
           " sharded_update=" + std::to_string(t.sharded_updates) + "\n";
    out += "tenant " + t.name + " latency_us: p50=" +
           std::to_string(t.p50_us) + " p95=" + std::to_string(t.p95_us) +
           " p99=" + std::to_string(t.p99_us) +
           " max=" + std::to_string(t.max_us) + "\n";
    out += "tenant " + t.name + " rates: offered_qps=" +
           FormatQps(t.offered_qps) +
           " goodput_qps=" + FormatQps(t.goodput_qps) + "\n";
  }
  return out;
}

}  // namespace xrpc::load
