#include "soap/marshal.h"

#include <string>

#include "xdm/atomic.h"

namespace xrpc::soap {

namespace {

using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;
using xml::Node;
using xml::NodeKind;
using xml::NodePtr;
using xml::QName;

QName XrpcName(const char* local) { return QName(xml::kXrpcNs, local, "xrpc"); }

}  // namespace

NodePtr SequenceToNode(const Sequence& sequence) {
  NodePtr seq = Node::NewElement(XrpcName("sequence"));
  for (const Item& item : sequence) {
    if (item.IsAtomic()) {
      const AtomicValue& v = item.atomic();
      NodePtr av = Node::NewElement(XrpcName("atomic-value"));
      av->SetAttribute(Node::NewAttribute(
          QName(xml::kXsiNs, "type", "xsi"), AtomicTypeName(v.type())));
      std::string lexical = v.ToString();
      if (!lexical.empty()) av->AppendChild(Node::NewText(std::move(lexical)));
      seq->AppendChild(std::move(av));
      continue;
    }
    const Node* n = item.node();
    switch (n->kind()) {
      case NodeKind::kElement: {
        NodePtr wrap = Node::NewElement(XrpcName("element"));
        wrap->AppendChild(n->Clone());
        seq->AppendChild(std::move(wrap));
        break;
      }
      case NodeKind::kDocument: {
        NodePtr wrap = Node::NewElement(XrpcName("document"));
        for (const NodePtr& c : n->children()) wrap->AppendChild(c->Clone());
        seq->AppendChild(std::move(wrap));
        break;
      }
      case NodeKind::kAttribute: {
        NodePtr wrap = Node::NewElement(XrpcName("attribute"));
        wrap->SetAttribute(n->Clone());
        seq->AppendChild(std::move(wrap));
        break;
      }
      case NodeKind::kText: {
        NodePtr wrap = Node::NewElement(XrpcName("text"));
        if (!n->value().empty()) wrap->AppendChild(Node::NewText(n->value()));
        seq->AppendChild(std::move(wrap));
        break;
      }
      case NodeKind::kComment: {
        NodePtr wrap = Node::NewElement(XrpcName("comment"));
        if (!n->value().empty()) wrap->AppendChild(Node::NewText(n->value()));
        seq->AppendChild(std::move(wrap));
        break;
      }
      case NodeKind::kProcessingInstruction: {
        NodePtr wrap = Node::NewElement(XrpcName("pi"));
        wrap->SetAttribute(
            Node::NewAttribute(QName("target"), n->name().local));
        if (!n->value().empty()) wrap->AppendChild(Node::NewText(n->value()));
        seq->AppendChild(std::move(wrap));
        break;
      }
    }
  }
  return seq;
}

StatusOr<Sequence> NodeToSequence(const Node& sequence_element) {
  if (sequence_element.kind() != NodeKind::kElement ||
      sequence_element.name() != XrpcName("sequence")) {
    return Status::InvalidArgument("n2s: not an xrpc:sequence element");
  }
  Sequence out;
  for (const NodePtr& child : sequence_element.children()) {
    if (child->kind() != NodeKind::kElement) continue;  // ignorable text
    if (child->name().ns_uri != xml::kXrpcNs) {
      return Status::InvalidArgument("n2s: unexpected element " +
                                     child->name().Clark());
    }
    const std::string& kind = child->name().local;
    if (kind == "atomic-value") {
      const Node* type_attr =
          child->FindAttribute(QName(xml::kXsiNs, "type"));
      AtomicType type = AtomicType::kUntypedAtomic;
      if (type_attr != nullptr) {
        XRPC_ASSIGN_OR_RETURN(type, xdm::AtomicTypeFromName(type_attr->value()));
      }
      XRPC_ASSIGN_OR_RETURN(
          AtomicValue v,
          AtomicValue::Untyped(child->StringValue()).CastTo(type));
      out.push_back(Item(std::move(v)));
    } else if (kind == "element") {
      const Node* elem = nullptr;
      for (const NodePtr& c : child->children()) {
        if (c->kind() == NodeKind::kElement) {
          elem = c.get();
          break;
        }
      }
      if (elem == nullptr) {
        return Status::InvalidArgument("n2s: empty xrpc:element");
      }
      // Fresh fragment: a deep copy detached from the SOAP message.
      out.push_back(Item::Node(elem->Clone()));
    } else if (kind == "document") {
      NodePtr doc = Node::NewDocument();
      for (const NodePtr& c : child->children()) {
        doc->AppendChild(c->Clone());
      }
      out.push_back(Item::Node(std::move(doc)));
    } else if (kind == "attribute") {
      if (child->attributes().empty()) {
        return Status::InvalidArgument("n2s: empty xrpc:attribute");
      }
      out.push_back(Item::Node(child->attributes()[0]->Clone()));
    } else if (kind == "text") {
      out.push_back(Item::Node(Node::NewText(child->StringValue())));
    } else if (kind == "comment") {
      out.push_back(Item::Node(Node::NewComment(child->StringValue())));
    } else if (kind == "pi") {
      const Node* target = child->FindAttribute(QName("target"));
      out.push_back(Item::Node(Node::NewProcessingInstruction(
          target != nullptr ? target->value() : "pi", child->StringValue())));
    } else {
      return Status::InvalidArgument("n2s: unknown value kind xrpc:" + kind);
    }
  }
  return out;
}

}  // namespace xrpc::soap
