#ifndef XRPC_SOAP_MESSAGE_H_
#define XRPC_SOAP_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "xdm/item.h"

namespace xrpc::soap {

/// The queryID isolation extension (Section 2.2): identifies the query a
/// request belongs to so a peer can pin one database state per query.
struct QueryId {
  std::string id;         ///< globally unique query identifier
  std::string host;       ///< originating host
  int64_t timestamp = 0;  ///< UTC start time at the originating host (usec)
  int64_t timeout_sec = 30;  ///< relative seconds to retain the snapshot

  friend bool operator==(const QueryId& a, const QueryId& b) {
    return a.id == b.id;
  }
};

/// A SOAP XRPC request: one Bulk RPC with one or more calls to the same
/// function (module, method, arity), each with `arity` parameter sequences.
struct XrpcRequest {
  std::string module_ns;
  std::string method;
  std::string location;  ///< module at-hint
  size_t arity = 0;
  bool updating = false;  ///< updCall: invokes an XQUF updating function

  /// calls[i][j] = parameter j of call i. All calls share the function; a
  /// request with calls.size() > 1 is a Bulk RPC.
  std::vector<std::vector<xdm::Sequence>> calls;

  std::optional<QueryId> query_id;  ///< present => repeatable-read isolation

  /// End-to-end deadline propagation: the REMAINING time budget of the
  /// query in microseconds, carried as an env:Header child xrpc:deadline.
  /// Relative (not an absolute instant) so peers need no clock sync and
  /// virtual-clock simulations work unchanged; each hop decrements its own
  /// elapsed time before stamping nested relocation requests. Absent =>
  /// no deadline (pre-deadline peers interoperate: unknown headers are
  /// ignored on parse, and no header is emitted when unset).
  std::optional<int64_t> deadline_us;

  /// Shard-routing scope (DESIGN.md §14), carried as an env:Header child
  /// xrpc:shard. Present on every shard-routed subcall; it does two jobs:
  ///  - epoch fencing: `catalog_version` is the sender's catalog version at
  ///    decomposition time. A peer at a different version rejects with the
  ///    retriable StaleCatalog fault instead of answering from a shard map
  ///    the caller no longer routes by.
  ///  - fragment pinning: a replica peer holds several fragments of the
  ///    same collection, so "resolve the logical name to the local
  ///    fragment" is ambiguous; the scope names the exact shard to serve.
  ///  - data fencing: `data_version` is the fragment's authoritative data
  ///    version at decomposition time (0 = unversioned). A replica whose
  ///    applied version lags it rejects with the retriable StaleReplica
  ///    fault, so failover skips lagging copies instead of serving stale
  ///    data.
  struct ShardScope {
    std::string collection;      ///< logical collection name
    int shard_index = 0;         ///< which shard this subcall reads
    int64_t catalog_version = 0; ///< sender's catalog version (fencing token)
    uint64_t data_version = 0;   ///< fragment data version (0 = unversioned)
  };
  std::optional<ShardScope> shard;
};

/// A SOAP XRPC response: one result sequence per call of the request, plus
/// the piggybacked list of peers that (transitively) participated — used by
/// the WS-Coordination registration for distributed commit.
struct XrpcResponse {
  std::string module_ns;
  std::string method;
  std::vector<xdm::Sequence> results;
  std::vector<std::string> participating_peers;
};

/// A SOAP Fault (the XRPC error message).
struct Fault {
  std::string code;    ///< e.g. "env:Sender" or "env:Receiver"
  std::string reason;  ///< human-readable text
};

/// Serializes a request into a complete SOAP envelope document.
std::string SerializeRequest(const XrpcRequest& request);

/// Parses a SOAP envelope holding an xrpc:request.
StatusOr<XrpcRequest> ParseRequest(std::string_view text);

/// Serializes a response into a complete SOAP envelope document.
std::string SerializeResponse(const XrpcResponse& response);

/// Serializes a SOAP Fault envelope.
std::string SerializeFault(const Fault& fault);

/// Builds the Fault corresponding to a Status (code env:Sender for caller
/// errors, env:Receiver for server-side failures).
Fault FaultFromStatus(const Status& status);

/// Reconstructs a Status from a received Fault.
Status StatusFromFault(const Fault& fault);

/// Parses a SOAP envelope that holds either an xrpc:response or a Fault;
/// a Fault is surfaced as a kSoapFault Status (any error causes a run-time
/// error at the originating site, per Section 2.1).
StatusOr<XrpcResponse> ParseResponse(std::string_view text);

}  // namespace xrpc::soap

#endif  // XRPC_SOAP_MESSAGE_H_
