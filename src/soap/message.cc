#include "soap/message.h"

#include <string_view>

#include "base/string_util.h"
#include "soap/marshal.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrpc::soap {

namespace {

using xml::Node;
using xml::NodeKind;
using xml::NodePtr;
using xml::QName;

QName EnvName(const char* local) {
  return QName(xml::kSoapEnvelopeNs, local, "env");
}
QName XrpcName(const char* local) { return QName(xml::kXrpcNs, local, "xrpc"); }

NodePtr NewEnvelope(NodePtr body_content, NodePtr header = nullptr) {
  NodePtr envelope = Node::NewElement(EnvName("Envelope"));
  envelope->SetAttribute(Node::NewAttribute(
      QName(xml::kXsiNs, "schemaLocation", "xsi"),
      "http://monetdb.cwi.nl/XQuery http://monetdb.cwi.nl/XQuery/XRPC.xsd"));
  if (header != nullptr) envelope->AppendChild(std::move(header));
  NodePtr body = Node::NewElement(EnvName("Body"));
  body->AppendChild(std::move(body_content));
  envelope->AppendChild(std::move(body));
  NodePtr doc = Node::NewDocument();
  doc->AppendChild(std::move(envelope));
  return doc;
}

std::string SerializeEnvelope(const NodePtr& doc) {
  xml::SerializeOptions opts;
  opts.xml_declaration = true;
  return xml::SerializeNode(*doc, opts);
}

// Locates env:Envelope/env:Header; nullptr when the envelope carries none
// (a malformed envelope also yields nullptr — FindBodyChild reports it).
const Node* FindHeader(const Node& doc) {
  const Node* envelope = nullptr;
  for (const NodePtr& c : doc.children()) {
    if (c->kind() == NodeKind::kElement) envelope = c.get();
  }
  if (envelope == nullptr || envelope->name() != EnvName("Envelope")) {
    return nullptr;
  }
  for (const NodePtr& c : envelope->children()) {
    if (c->kind() == NodeKind::kElement && c->name() == EnvName("Header")) {
      return c.get();
    }
  }
  return nullptr;
}

// Locates env:Envelope/env:Body and returns its single element child.
StatusOr<const Node*> FindBodyChild(const Node& doc) {
  const Node* envelope = nullptr;
  for (const NodePtr& c : doc.children()) {
    if (c->kind() == NodeKind::kElement) envelope = c.get();
  }
  if (envelope == nullptr || envelope->name() != EnvName("Envelope")) {
    return Status::InvalidArgument("SOAP: missing env:Envelope");
  }
  const Node* body = nullptr;
  for (const NodePtr& c : envelope->children()) {
    if (c->kind() == NodeKind::kElement && c->name() == EnvName("Body")) {
      body = c.get();
    }
  }
  if (body == nullptr) return Status::InvalidArgument("SOAP: missing env:Body");
  for (const NodePtr& c : body->children()) {
    if (c->kind() == NodeKind::kElement) return c.get();
  }
  return Status::InvalidArgument("SOAP: empty env:Body");
}

StatusOr<Fault> ParseFaultElement(const Node& fault) {
  Fault out;
  for (const NodePtr& c : fault.children()) {
    if (c->kind() != NodeKind::kElement) continue;
    if (c->name() == EnvName("Code")) {
      for (const NodePtr& v : c->children()) {
        if (v->kind() == NodeKind::kElement && v->name() == EnvName("Value")) {
          out.code = v->StringValue();
        }
      }
    } else if (c->name() == EnvName("Reason")) {
      for (const NodePtr& t : c->children()) {
        if (t->kind() == NodeKind::kElement && t->name() == EnvName("Text")) {
          out.reason = t->StringValue();
        }
      }
    }
  }
  return out;
}

}  // namespace

std::string SerializeRequest(const XrpcRequest& request) {
  NodePtr req = Node::NewElement(XrpcName("request"));
  req->SetAttribute(Node::NewAttribute(QName("module"), request.module_ns));
  req->SetAttribute(Node::NewAttribute(QName("method"), request.method));
  req->SetAttribute(
      Node::NewAttribute(QName("arity"), std::to_string(request.arity)));
  if (!request.location.empty()) {
    req->SetAttribute(Node::NewAttribute(QName("location"), request.location));
  }
  if (request.updating) {
    req->SetAttribute(Node::NewAttribute(QName("updCall"), "true"));
  }
  req->SetAttribute(Node::NewAttribute(QName("iter-count"),
                                       std::to_string(request.calls.size())));
  if (request.query_id.has_value()) {
    const QueryId& q = *request.query_id;
    NodePtr qid = Node::NewElement(XrpcName("queryID"));
    qid->SetAttribute(Node::NewAttribute(QName("host"), q.host));
    qid->SetAttribute(Node::NewAttribute(QName("timestamp"),
                                         std::to_string(q.timestamp)));
    qid->SetAttribute(
        Node::NewAttribute(QName("timeout"), std::to_string(q.timeout_sec)));
    qid->AppendChild(Node::NewText(q.id));
    req->AppendChild(std::move(qid));
  }
  for (const std::vector<xdm::Sequence>& call : request.calls) {
    NodePtr call_elem = Node::NewElement(XrpcName("call"));
    for (const xdm::Sequence& param : call) {
      call_elem->AppendChild(SequenceToNode(param));
    }
    req->AppendChild(std::move(call_elem));
  }
  NodePtr header;
  if (request.deadline_us.has_value() || request.shard.has_value()) {
    header = Node::NewElement(EnvName("Header"));
  }
  if (request.deadline_us.has_value()) {
    NodePtr deadline = Node::NewElement(XrpcName("deadline"));
    deadline->AppendChild(Node::NewText(std::to_string(*request.deadline_us)));
    header->AppendChild(std::move(deadline));
  }
  if (request.shard.has_value()) {
    const XrpcRequest::ShardScope& scope = *request.shard;
    NodePtr shard = Node::NewElement(XrpcName("shard"));
    shard->SetAttribute(
        Node::NewAttribute(QName("collection"), scope.collection));
    shard->SetAttribute(
        Node::NewAttribute(QName("index"), std::to_string(scope.shard_index)));
    shard->SetAttribute(Node::NewAttribute(
        QName("catalog-version"), std::to_string(scope.catalog_version)));
    if (scope.data_version > 0) {
      shard->SetAttribute(Node::NewAttribute(
          QName("data-version"), std::to_string(scope.data_version)));
    }
    header->AppendChild(std::move(shard));
  }
  return SerializeEnvelope(NewEnvelope(std::move(req), std::move(header)));
}

StatusOr<XrpcRequest> ParseRequest(std::string_view text) {
  xml::ParseOptions opts;
  opts.strip_ignorable_whitespace = true;
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text, opts));
  XRPC_ASSIGN_OR_RETURN(const Node* req, FindBodyChild(*doc));
  if (req->name() != XrpcName("request")) {
    return Status::InvalidArgument("SOAP: expected xrpc:request, got " +
                                   req->name().Clark());
  }
  XrpcRequest out;
  // Header extensions: xrpc:deadline carries the remaining time budget;
  // unrecognized header children are ignored (mustUnderstand-free
  // extensibility, so newer clients interoperate with this peer too).
  if (const Node* header = FindHeader(*doc)) {
    for (const NodePtr& c : header->children()) {
      if (c->kind() != NodeKind::kElement) continue;
      if (c->name() == XrpcName("deadline")) {
        auto budget = ParseInt64(c->StringValue());
        if (!budget.ok() || budget.value() < 0) {
          return Status::InvalidArgument(
              "SOAP: malformed xrpc:deadline header: \"" + c->StringValue() +
              "\" (expected non-negative micros)");
        }
        out.deadline_us = budget.value();
        continue;
      }
      if (c->name() == XrpcName("shard")) {
        XrpcRequest::ShardScope scope;
        const Node* col = c->FindAttribute(QName("collection"));
        const Node* idx = c->FindAttribute(QName("index"));
        const Node* ver = c->FindAttribute(QName("catalog-version"));
        if (col == nullptr || idx == nullptr || ver == nullptr) {
          return Status::InvalidArgument(
              "SOAP: xrpc:shard header lacks collection/index/"
              "catalog-version");
        }
        scope.collection = col->value();
        auto index = ParseInt64(idx->value());
        auto version = ParseInt64(ver->value());
        if (scope.collection.empty() || !index.ok() || index.value() < 0 ||
            !version.ok() || version.value() < 0) {
          return Status::InvalidArgument(
              "SOAP: malformed xrpc:shard header (collection=\"" +
              scope.collection + "\" index=\"" + idx->value() +
              "\" catalog-version=\"" + ver->value() + "\")");
        }
        scope.shard_index = static_cast<int>(index.value());
        scope.catalog_version = version.value();
        // data-version is optional: requests from pre-versioning senders
        // carry no attribute and parse as 0 (fence disabled).
        if (const Node* dv = c->FindAttribute(QName("data-version"))) {
          auto data_version = ParseInt64(dv->value());
          if (!data_version.ok() || data_version.value() < 0) {
            return Status::InvalidArgument(
                "SOAP: malformed xrpc:shard data-version: \"" + dv->value() +
                "\"");
          }
          scope.data_version = static_cast<uint64_t>(data_version.value());
        }
        out.shard = std::move(scope);
        continue;
      }
    }
  }
  if (const Node* a = req->FindAttribute(QName("module"))) {
    out.module_ns = a->value();
  }
  if (const Node* a = req->FindAttribute(QName("method"))) {
    out.method = a->value();
  }
  if (const Node* a = req->FindAttribute(QName("location"))) {
    out.location = a->value();
  }
  if (const Node* a = req->FindAttribute(QName("arity"))) {
    XRPC_ASSIGN_OR_RETURN(int64_t arity, ParseInt64(a->value()));
    out.arity = static_cast<size_t>(arity);
  }
  if (const Node* a = req->FindAttribute(QName("updCall"))) {
    out.updating = a->value() == "true" || a->value() == "1";
  }
  for (const NodePtr& child : req->children()) {
    if (child->kind() != NodeKind::kElement) continue;
    if (child->name() == XrpcName("queryID")) {
      QueryId q;
      q.id = child->StringValue();
      if (const Node* a = child->FindAttribute(QName("host"))) {
        q.host = a->value();
      }
      if (const Node* a = child->FindAttribute(QName("timestamp"))) {
        auto ts = ParseInt64(a->value());
        if (ts.ok()) q.timestamp = ts.value();
      }
      if (const Node* a = child->FindAttribute(QName("timeout"))) {
        auto t = ParseInt64(a->value());
        if (t.ok()) q.timeout_sec = t.value();
      }
      out.query_id = std::move(q);
      continue;
    }
    if (child->name() == XrpcName("call")) {
      std::vector<xdm::Sequence> params;
      for (const NodePtr& seq : child->children()) {
        if (seq->kind() != NodeKind::kElement) continue;
        XRPC_ASSIGN_OR_RETURN(xdm::Sequence param, NodeToSequence(*seq));
        params.push_back(std::move(param));
      }
      if (params.size() != out.arity) {
        return Status::InvalidArgument(
            "SOAP: call has " + std::to_string(params.size()) +
            " parameters, expected arity " + std::to_string(out.arity));
      }
      out.calls.push_back(std::move(params));
    }
  }
  if (out.calls.empty()) {
    return Status::InvalidArgument("SOAP: request has no calls");
  }
  return out;
}

std::string SerializeResponse(const XrpcResponse& response) {
  NodePtr resp = Node::NewElement(XrpcName("response"));
  resp->SetAttribute(Node::NewAttribute(QName("module"), response.module_ns));
  resp->SetAttribute(Node::NewAttribute(QName("method"), response.method));
  for (const xdm::Sequence& result : response.results) {
    resp->AppendChild(SequenceToNode(result));
  }
  if (!response.participating_peers.empty()) {
    NodePtr peers = Node::NewElement(XrpcName("participatingPeers"));
    for (const std::string& uri : response.participating_peers) {
      NodePtr p = Node::NewElement(XrpcName("peer"));
      p->SetAttribute(Node::NewAttribute(QName("uri"), uri));
      peers->AppendChild(std::move(p));
    }
    resp->AppendChild(std::move(peers));
  }
  return SerializeEnvelope(NewEnvelope(std::move(resp)));
}

std::string SerializeFault(const Fault& fault) {
  NodePtr f = Node::NewElement(EnvName("Fault"));
  NodePtr code = Node::NewElement(EnvName("Code"));
  NodePtr value = Node::NewElement(EnvName("Value"));
  value->AppendChild(Node::NewText(fault.code));
  code->AppendChild(std::move(value));
  f->AppendChild(std::move(code));
  NodePtr reason = Node::NewElement(EnvName("Reason"));
  NodePtr text = Node::NewElement(EnvName("Text"));
  text->SetAttribute(Node::NewAttribute(
      QName("http://www.w3.org/XML/1998/namespace", "lang", "xml"), "en"));
  text->AppendChild(Node::NewText(fault.reason));
  reason->AppendChild(std::move(text));
  f->AppendChild(std::move(reason));
  return SerializeEnvelope(NewEnvelope(std::move(f)));
}

Fault FaultFromStatus(const Status& status) {
  Fault f;
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kNotFound:
      f.code = "env:Sender";
      break;
    default:
      f.code = "env:Receiver";
      break;
  }
  f.reason = status.ToString();
  return f;
}

Status StatusFromFault(const Fault& fault) {
  // Deadline/cancellation faults keep their typed status across hops: the
  // reason carries Status::ToString() ("<Code>: <msg>"), and the caller
  // must be able to tell "my budget ran out downstream" (not retryable,
  // feeds deadline metrics) from a generic application fault.
  constexpr std::string_view kDeadlinePrefix = "DeadlineExceeded: ";
  constexpr std::string_view kCancelledPrefix = "Cancelled: ";
  constexpr std::string_view kStaleCatalogPrefix = "StaleCatalog: ";
  if (fault.reason.rfind(kDeadlinePrefix, 0) == 0) {
    return Status::DeadlineExceeded(fault.reason.substr(kDeadlinePrefix.size()));
  }
  if (fault.reason.rfind(kCancelledPrefix, 0) == 0) {
    return Status::Cancelled(fault.reason.substr(kCancelledPrefix.size()));
  }
  // StaleCatalog is the epoch-fencing reject: the peer refused BEFORE
  // executing anything, so the caller may refetch the shard map and
  // re-route the very same call (even an updating one) without violating
  // at-most-once.
  if (fault.reason.rfind(kStaleCatalogPrefix, 0) == 0) {
    return Status::StaleCatalog(fault.reason.substr(kStaleCatalogPrefix.size()));
  }
  // StaleReplica is the data-version fence: this COPY of the fragment is
  // behind, so the caller may retry the identical read at another replica
  // (unlike StaleCatalog, where every copy shares the stale routing).
  constexpr std::string_view kStaleReplicaPrefix = "StaleReplica: ";
  if (fault.reason.rfind(kStaleReplicaPrefix, 0) == 0) {
    return Status::StaleReplica(fault.reason.substr(kStaleReplicaPrefix.size()));
  }
  return Status::SoapFault(fault.code + ": " + fault.reason);
}

StatusOr<XrpcResponse> ParseResponse(std::string_view text) {
  xml::ParseOptions opts;
  opts.strip_ignorable_whitespace = true;
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text, opts));
  XRPC_ASSIGN_OR_RETURN(const Node* child, FindBodyChild(*doc));
  if (child->name() == EnvName("Fault")) {
    XRPC_ASSIGN_OR_RETURN(Fault fault, ParseFaultElement(*child));
    return StatusFromFault(fault);
  }
  if (child->name() != XrpcName("response")) {
    return Status::InvalidArgument("SOAP: expected xrpc:response, got " +
                                   child->name().Clark());
  }
  XrpcResponse out;
  if (const Node* a = child->FindAttribute(QName("module"))) {
    out.module_ns = a->value();
  }
  if (const Node* a = child->FindAttribute(QName("method"))) {
    out.method = a->value();
  }
  for (const NodePtr& c : child->children()) {
    if (c->kind() != NodeKind::kElement) continue;
    if (c->name() == XrpcName("sequence")) {
      XRPC_ASSIGN_OR_RETURN(xdm::Sequence result, NodeToSequence(*c));
      out.results.push_back(std::move(result));
    } else if (c->name() == XrpcName("participatingPeers")) {
      for (const NodePtr& p : c->children()) {
        if (p->kind() != NodeKind::kElement) continue;
        if (const Node* a = p->FindAttribute(QName("uri"))) {
          out.participating_peers.push_back(a->value());
        }
      }
    }
  }
  return out;
}

}  // namespace xrpc::soap
