#ifndef XRPC_SOAP_MARSHAL_H_
#define XRPC_SOAP_MARSHAL_H_

#include "base/statusor.h"
#include "xdm/item.h"
#include "xml/node.h"

namespace xrpc::soap {

/// s2n(): marshals an XDM sequence into its SOAP XRPC representation, a new
/// <xrpc:sequence> element (Section 2.2 of the paper).
///
/// Encodings (per XRPC.xsd):
///  - atomic values:  <xrpc:atomic-value xsi:type="xs:T">lexical</...>
///  - elements:       <xrpc:element>deep copy</xrpc:element>
///  - documents:      <xrpc:document>serialized root content</xrpc:document>
///  - attributes:     <xrpc:attribute name="value"/>
///  - text:           <xrpc:text>value</xrpc:text>
///  - comments:       <xrpc:comment>value</xrpc:comment>
///  - proc. instr.:   <xrpc:pi target="t">value</xrpc:pi>
xml::NodePtr SequenceToNode(const xdm::Sequence& sequence);

/// n2s(): unmarshals a <xrpc:sequence> element back into an XDM sequence.
///
/// Node-typed values are returned as *separate XML fragments* with fresh
/// node identities (call-by-value): navigating upward or sideways from them
/// yields empty results and never exposes the SOAP envelope. This mirrors
/// the paper's explicit requirement on n2s().
StatusOr<xdm::Sequence> NodeToSequence(const xml::Node& sequence_element);

}  // namespace xrpc::soap

#endif  // XRPC_SOAP_MARSHAL_H_
