#include "server/isolation.h"

#include <chrono>

namespace xrpc::server {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

IsolationManager::IsolationManager(Database* db,
                                   std::function<int64_t()> now_us)
    : db_(db), now_us_(now_us ? std::move(now_us) : SteadyNowMicros) {}

StatusOr<QuerySession*> IsolationManager::GetSession(const soap::QueryId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_us_();
  auto it = sessions_.find(id.id);
  if (it != sessions_.end()) {
    QuerySession* s = it->second.get();
    // A prepared session holds a logged PUL the coordinator may still
    // commit; it must not fall to snapshot expiry (see ExpireSessions).
    if (now > s->deadline_us && !s->prepared) {
      expired_ids_.insert(id.id);
      auto& latest = latest_expired_timestamp_by_host_[s->id.host];
      latest = std::max(latest, s->id.timestamp);
      sessions_.erase(it);
      return Status::IsolationError("queryID expired: " + id.id);
    }
    return s;
  }
  if (expired_ids_.count(id.id) > 0 ||
      (latest_expired_timestamp_by_host_.count(id.host) > 0 &&
       id.timestamp <= latest_expired_timestamp_by_host_[id.host] &&
       id.timestamp != 0)) {
    return Status::IsolationError("request arrived after queryID expired: " +
                                  id.id);
  }
  auto session = std::make_unique<QuerySession>();
  session->id = id;
  session->deadline_us = now + id.timeout_sec * 1'000'000;
  QuerySession* raw = session.get();
  sessions_[id.id] = std::move(session);
  return raw;
}

StatusOr<QuerySession*> IsolationManager::FindSession(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::IsolationError("unknown queryID: " + id);
  }
  return it->second.get();
}

void IsolationManager::EndSession(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

void IsolationManager::ExpireSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = now_us_();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now > it->second->deadline_us && !it->second->prepared) {
      expired_ids_.insert(it->first);
      auto& latest = latest_expired_timestamp_by_host_[it->second->id.host];
      latest = std::max(latest, it->second->id.timestamp);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

QuerySession* IsolationManager::RestoreSession(
    std::unique_ptr<QuerySession> session) {
  std::lock_guard<std::mutex> lock(mu_);
  QuerySession* raw = session.get();
  expired_ids_.erase(session->id.id);
  sessions_[session->id.id] = std::move(session);
  return raw;
}

void IsolationManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();
  expired_ids_.clear();
  latest_expired_timestamp_by_host_.clear();
}

size_t IsolationManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

StatusOr<xml::NodePtr> IsolationManager::SnapshotProvider::GetDocument(
    const std::string& uri) {
  auto it = session_->docs.find(uri);
  if (it != session_->docs.end()) return it->second.first;
  // First access under this query: pin a private copy of the current state.
  XRPC_ASSIGN_OR_RETURN(auto versioned, db_->GetWithVersion(uri));
  xml::NodePtr clone = versioned.first->Clone();
  session_->docs[uri] = {clone, versioned.second};
  return clone;
}

}  // namespace xrpc::server
