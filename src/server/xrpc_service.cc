#include "server/xrpc_service.h"

#include <map>
#include <memory>
#include <vector>

#include "server/remote_docs.h"
#include "server/rpc_client.h"

namespace xrpc::server {

namespace {

/// PutSink that stores fn:put documents into the peer's database.
class DatabasePutSink : public xquery::PutSink {
 public:
  explicit DatabasePutSink(Database* db) : db_(db) {}
  Status Put(const std::string& uri, xml::NodePtr doc) override {
    db_->PutDocument(uri, std::move(doc));
    return Status::OK();
  }

 private:
  Database* db_;
};

}  // namespace

XrpcService::XrpcService(Options options, Database* database,
                         ModuleRegistry* registry, ExecutionEngine* engine,
                         net::Transport* outgoing)
    : options_(std::move(options)),
      database_(database),
      registry_(registry),
      engine_(engine),
      outgoing_(outgoing),
      isolation_(database) {}

StatusOr<std::string> XrpcService::Handle(const std::string& path,
                                          const std::string& body) {
  if (path == kWsatPath) return HandleWsat(body);
  return HandleXrpc(body);
}

StatusOr<std::string> XrpcService::HandleXrpc(const std::string& body) {
  ++requests_handled_;
  // Requests answered with a SOAP Fault count as server-side faults in the
  // shared metrics registry; successful ones report their bulk-call count.
  auto fault_reply = [this](const Status& status) {
    if (metrics_ != nullptr) {
      metrics_->RecordServerRequest(options_.self_uri, 0, /*ok=*/false);
    }
    return soap::SerializeFault(soap::FaultFromStatus(status));
  };
  auto parsed = soap::ParseRequest(body);
  if (!parsed.ok()) {
    return fault_reply(parsed.status());
  }
  const soap::XrpcRequest& request = parsed.value();
  calls_handled_ += static_cast<int64_t>(request.calls.size());

  // Choose the database view per the isolation level of the request.
  QuerySession* session = nullptr;
  std::unique_ptr<xquery::DocumentProvider> provider;
  if (request.query_id.has_value()) {
    auto session_or = isolation_.GetSession(*request.query_id);
    if (!session_or.ok()) {
      return fault_reply(session_or.status());
    }
    session = session_or.value();
    provider = std::make_unique<IsolationManager::SnapshotProvider>(database_,
                                                                    session);
  } else {
    provider = std::make_unique<LiveDocumentProvider>(database_);
  }

  // Nested `execute at` calls from function bodies reuse this query's
  // isolation options and contribute to the participating-peer set.
  std::unique_ptr<RpcClient> nested;
  if (outgoing_ != nullptr) {
    RpcClient::Options copts;
    if (request.query_id.has_value()) {
      copts.isolation = IsolationLevel::kRepeatable;
      copts.query_id = request.query_id;
    }
    nested = std::make_unique<RpcClient>(outgoing_, copts);
  }

  // Function bodies may themselves call fn:doc on xrpc:// URIs (the Q_B2
  // execution-relocation pattern); route those through the nested client.
  FederatedDocumentProvider federated(provider.get(), nested.get());

  CallContext context;
  context.documents = &federated;
  context.modules = registry_;
  context.rpc = nested.get();
  context.bulk_rpc = nested.get();

  xquery::PendingUpdateList pul;
  auto results = engine_->ExecuteRequest(request, context, &pul);
  if (!results.ok()) {
    return fault_reply(results.status());
  }

  if (!pul.empty()) {
    // A request may lack updCall when the caller could not resolve the
    // module locally; the pending update list itself is authoritative.
    if (session != nullptr) {
      // Rule R'Fu: defer; the coordinator commits via WS-AT.
      session->pul.BeginCall();
      session->pul.Merge(std::move(pul));
    } else {
      // Rule RFu: apply each request's updates immediately.
      Status applied = ApplyImmediate(&pul, provider.get());
      if (!applied.ok()) {
        return fault_reply(applied);
      }
    }
  }

  soap::XrpcResponse response;
  response.module_ns = request.module_ns;
  response.method = request.method;
  response.results = std::move(results).value();
  response.participating_peers.push_back(options_.self_uri);
  if (nested != nullptr) {
    for (const std::string& peer : nested->participating_peers()) {
      response.participating_peers.push_back(peer);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->RecordServerRequest(options_.self_uri,
                                  static_cast<int64_t>(request.calls.size()),
                                  /*ok=*/true);
  }
  return soap::SerializeResponse(response);
}

Status XrpcService::ApplyImmediate(xquery::PendingUpdateList* pul,
                                   xquery::DocumentProvider* docs_used) {
  (void)docs_used;
  // Map live tree roots back to document names so versions can be bumped.
  std::map<const xml::Node*, std::string> root_to_name;
  for (const std::string& name : database_->DocumentNames()) {
    auto doc = database_->GetDocument(name);
    if (doc.ok()) root_to_name[doc.value().get()] = name;
  }
  std::vector<std::string> written;
  for (const auto& entry : pul->entries()) {
    const xquery::UpdatePrimitive& p = entry.primitive;
    if (p.kind == xquery::UpdatePrimitive::Kind::kPut) continue;
    if (p.target.node() == nullptr) continue;
    auto it = root_to_name.find(p.target.node()->Root());
    if (it != root_to_name.end()) written.push_back(it->second);
  }
  DatabasePutSink sink(database_);
  XRPC_RETURN_IF_ERROR(xquery::ApplyUpdates(pul, &sink));
  for (const std::string& name : written) {
    auto doc = database_->GetDocument(name);
    if (doc.ok()) database_->PutDocument(name, doc.value());  // version bump
  }
  return Status::OK();
}

Status XrpcService::ResolveWrittenDocs(QuerySession* session) {
  session->written_docs.clear();
  for (const auto& entry : session->pul.entries()) {
    const xquery::UpdatePrimitive& p = entry.primitive;
    if (p.kind == xquery::UpdatePrimitive::Kind::kPut) {
      session->written_docs.insert(p.put_uri);
      continue;
    }
    if (p.target.node() == nullptr) continue;
    const xml::Node* root = p.target.node()->Root();
    for (const auto& [name, versioned] : session->docs) {
      if (versioned.first.get() == root) {
        session->written_docs.insert(name);
        break;
      }
    }
  }
  return Status::OK();
}

StatusOr<std::string> XrpcService::HandleWsat(const std::string& body) {
  auto parsed = ParseWsatMessage(body);
  if (!parsed.ok()) {
    WsatMessage err;
    err.ok = false;
    err.reason = parsed.status().ToString();
    return SerializeWsatResponse(err);
  }
  const WsatMessage& msg = parsed.value();
  WsatMessage reply;
  reply.op = msg.op;
  reply.query_id = msg.query_id;

  auto respond_abort = [&](const std::string& reason) {
    reply.ok = false;
    reply.reason = reason;
    isolation_.EndSession(msg.query_id);
    return SerializeWsatResponse(reply);
  };

  switch (msg.op) {
    case WsatOp::kPrepare: {
      auto session_or = isolation_.FindSession(msg.query_id);
      if (!session_or.ok()) {
        return respond_abort(session_or.status().ToString());
      }
      QuerySession* session = session_or.value();
      XRPC_RETURN_IF_ERROR(ResolveWrittenDocs(session));
      // First-committer-wins: another transaction must not have committed
      // to any written document since our snapshot was pinned.
      for (const std::string& name : session->written_docs) {
        auto it = session->docs.find(name);
        if (it == session->docs.end()) continue;  // fn:put of a new doc
        if (database_->VersionOf(name) != it->second.second) {
          return respond_abort("conflicting transaction on document " + name);
        }
      }
      Status logged = log_.Append(
          {msg.query_id, session->pul.size()});
      if (!logged.ok()) return respond_abort(logged.ToString());
      session->prepared = true;
      reply.ok = true;
      return SerializeWsatResponse(reply);
    }
    case WsatOp::kCommit: {
      auto session_or = isolation_.FindSession(msg.query_id);
      if (!session_or.ok()) {
        return respond_abort(session_or.status().ToString());
      }
      QuerySession* session = session_or.value();
      if (!session->prepared) {
        return respond_abort("commit without successful prepare");
      }
      DatabasePutSink sink(database_);
      Status applied = xquery::ApplyUpdates(&session->pul, &sink);
      if (!applied.ok()) return respond_abort(applied.ToString());
      for (const std::string& name : session->written_docs) {
        auto it = session->docs.find(name);
        if (it == session->docs.end()) continue;  // fn:put handled by sink
        Status installed = database_->ReplaceIfVersion(
            name, it->second.second, it->second.first);
        if (!installed.ok()) return respond_abort(installed.ToString());
      }
      isolation_.EndSession(msg.query_id);
      reply.ok = true;
      return SerializeWsatResponse(reply);
    }
    case WsatOp::kRollback: {
      isolation_.EndSession(msg.query_id);
      reply.ok = true;
      return SerializeWsatResponse(reply);
    }
  }
  return Status::Internal("unhandled WS-AT op");
}

}  // namespace xrpc::server
