#include "server/xrpc_service.h"

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "base/cancellation.h"
#include "base/string_util.h"
#include "server/remote_docs.h"
#include "server/rpc_client.h"

namespace xrpc::server {

namespace {

/// PutSink that stores fn:put documents into the peer's database.
class DatabasePutSink : public xquery::PutSink {
 public:
  explicit DatabasePutSink(Database* db) : db_(db) {}
  Status Put(const std::string& uri, xml::NodePtr doc) override {
    db_->PutDocument(uri, std::move(doc));
    return Status::OK();
  }

 private:
  Database* db_;
};

}  // namespace

XrpcService::XrpcService(Options options, Database* database,
                         ModuleRegistry* registry, ExecutionEngine* engine,
                         net::Transport* outgoing)
    : options_(std::move(options)),
      database_(database),
      registry_(registry),
      engine_(engine),
      outgoing_(outgoing),
      isolation_(database),
      now_us_([] {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
      }) {}

StatusOr<std::string> XrpcService::Handle(const std::string& path,
                                          const std::string& body) {
  if (crashed_.load()) {
    // The simulated-dead peer answers nothing; the transport sees the same
    // kNetworkError a connection refusal would produce.
    return Status::NetworkError("peer crashed (simulated): " +
                                options_.self_uri);
  }
  if (path == kWsatPath) return HandleWsat(body);
  return HandleXrpc(body);
}

Status XrpcService::EnableWal(const std::string& path) {
  return log_.Open(path);
}

bool XrpcService::TriggerCrash(CrashPoint point) {
  CrashPoint expected = point;
  if (point == CrashPoint::kNone ||
      !crash_point_.compare_exchange_strong(expected, CrashPoint::kNone)) {
    return false;
  }
  crashed_ = true;
  return true;
}

void XrpcService::RememberOutcome(const std::string& query_id,
                                  TxnOutcome outcome) {
  std::lock_guard<std::mutex> lock(txn_mu_);
  outcomes_[query_id] = outcome;
  if (participant_in_doubt_.erase(query_id) > 0 && metrics_ != nullptr) {
    metrics_->RecordTxnInDoubt(-1);
  }
}

StatusOr<std::string> XrpcService::HandleXrpc(const std::string& body) {
  ++requests_handled_;
  // Requests answered with a SOAP Fault count as server-side faults in the
  // shared metrics registry; successful ones report their bulk-call count.
  auto fault_reply = [this](const Status& status) {
    if (metrics_ != nullptr) {
      metrics_->RecordServerRequest(options_.self_uri, 0, /*ok=*/false);
    }
    return soap::SerializeFault(soap::FaultFromStatus(status));
  };
  auto parsed = soap::ParseRequest(body);
  if (!parsed.ok()) {
    return fault_reply(parsed.status());
  }
  const soap::XrpcRequest& request = parsed.value();
  calls_handled_ += static_cast<int64_t>(request.calls.size());

  // Deadline admission + cancellation arming. The header carries the
  // budget REMAINING when the caller sent the request; this hop anchors it
  // to its own clock at entry (no cross-host clock agreement needed). An
  // already-spent budget is rejected before any module resolution or
  // compilation — the cheapest place to shed doomed work.
  const int64_t entry_us = now_us_();
  CancellationToken cancel_token;
  if (request.deadline_us.has_value()) {
    if (*request.deadline_us <= 0) {
      if (metrics_ != nullptr) {
        metrics_->RecordServerDeadlineReject(options_.self_uri);
      }
      return fault_reply(Status::DeadlineExceeded(
          "request arrived with an exhausted deadline budget at " +
          options_.self_uri));
    }
    cancel_token.ArmDeadline(entry_us + *request.deadline_us, now_us_);
  }

  // Catalog epoch fence (DESIGN.md §14). A shard-routed request carries the
  // catalog version its sender decomposed by; any difference means the
  // sender's routing may be wrong, so the call is rejected with the
  // retriable StaleCatalog fault BEFORE any execution — which is what makes
  // a re-route safe even for updating calls. On success the scope pins the
  // logical collection name to the exact fragment this subcall must read
  // (a replica peer stores several fragments of the same collection).
  std::optional<std::pair<std::string, std::string>> pinned_fragment;
  if (request.shard.has_value()) {
    const soap::XrpcRequest::ShardScope& scope = *request.shard;
    auto stale_reply = [&](const std::string& why) {
      if (metrics_ != nullptr) {
        metrics_->RecordStaleCatalogReject(options_.self_uri);
      }
      return fault_reply(Status::StaleCatalog(why));
    };
    if (options_.catalog == nullptr) {
      return fault_reply(Status::InvalidArgument(
          "shard-scoped request at catalog-less peer " + options_.self_uri));
    }
    core::ShardedCollection collection;
    int64_t version = 0;
    const bool known =
        options_.catalog->Snapshot(scope.collection, &collection, &version);
    // An unknown collection is reported as such BEFORE any version
    // comparison: two independent catalogs can share a version counter
    // value, and "version mismatch" on a collection this peer has never
    // heard of sends the caller chasing a catalog refetch that cannot help.
    if (!known) {
      return stale_reply("collection " + scope.collection + " unknown at " +
                         options_.self_uri);
    }
    if (version != scope.catalog_version) {
      return stale_reply("peer " + options_.self_uri + " at catalog version " +
                         std::to_string(version) + ", caller routed by " +
                         std::to_string(scope.catalog_version));
    }
    if (scope.shard_index < 0 ||
        scope.shard_index >= static_cast<int>(collection.shards.size())) {
      return stale_reply("shard " + std::to_string(scope.shard_index) +
                         " of collection " + scope.collection +
                         " unknown at " + options_.self_uri);
    }
    const core::ShardInfo& shard = collection.shards[scope.shard_index];
    bool serves = shard.peer_uri == options_.self_uri;
    for (const std::string& replica : shard.replicas) {
      serves = serves || replica == options_.self_uri;
    }
    if (!serves) {
      return stale_reply("peer " + options_.self_uri +
                         " holds no replica of shard " +
                         std::to_string(scope.shard_index) + " of " +
                         scope.collection);
    }
    // Data fence (DESIGN.md §17): the caller routed by the fragment's
    // authoritative data version; a copy whose applied version lags it
    // must not serve — the retriable StaleReplica fault makes failover
    // skip to an up-to-date copy (and fences writes at lagging copies,
    // which must repair before accepting new updates).
    if (scope.data_version > 0 &&
        database_->AppliedDataVersion(shard.doc_name) < scope.data_version) {
      if (metrics_ != nullptr) {
        metrics_->RecordStaleReplicaReject(options_.self_uri);
      }
      return fault_reply(Status::StaleReplica(
          "fragment " + shard.doc_name + " at " + options_.self_uri +
          " applied data version " +
          std::to_string(database_->AppliedDataVersion(shard.doc_name)) +
          ", caller routed by " + std::to_string(scope.data_version)));
    }
    pinned_fragment.emplace(collection.name, shard.doc_name);
  }

  // Choose the database view per the isolation level of the request.
  QuerySession* session = nullptr;
  std::unique_ptr<xquery::DocumentProvider> provider;
  if (request.query_id.has_value()) {
    auto session_or = isolation_.GetSession(*request.query_id);
    if (!session_or.ok()) {
      return fault_reply(session_or.status());
    }
    session = session_or.value();
    provider = std::make_unique<IsolationManager::SnapshotProvider>(database_,
                                                                    session);
  } else {
    provider = std::make_unique<LiveDocumentProvider>(database_);
  }

  // Nested `execute at` calls from function bodies reuse this query's
  // isolation options and contribute to the participating-peer set.
  std::unique_ptr<RpcClient> nested;
  if (outgoing_ != nullptr) {
    RpcClient::Options copts;
    if (request.query_id.has_value()) {
      copts.isolation = IsolationLevel::kRepeatable;
      copts.query_id = request.query_id;
    }
    if (request.deadline_us.has_value()) {
      // Nested relocation hops inherit the budget MINUS whatever this hop
      // spends before each send: the client stamps the remainder at send
      // time against this service's clock.
      copts.deadline_us = entry_us + *request.deadline_us;
      copts.now_us = now_us_;
    }
    copts.catalog = options_.catalog;
    nested = std::make_unique<RpcClient>(outgoing_, copts);
  }

  // Function bodies may themselves call fn:doc on xrpc:// URIs (the Q_B2
  // execution-relocation pattern); route those through the nested client.
  FederatedDocumentProvider federated(provider.get(), nested.get());
  // On top of federation, resolve sharded collections: a shard peer's
  // module body calls doc("<collection>") and sees its local fragments.
  ShardDocumentProvider sharded(&federated, options_.catalog,
                                options_.self_uri);
  if (pinned_fragment.has_value()) {
    sharded.PinFragment(pinned_fragment->first, pinned_fragment->second);
  }

  CallContext context;
  context.documents = &sharded;
  context.modules = registry_;
  context.rpc = nested.get();
  context.bulk_rpc = nested.get();
  context.cancel = &cancel_token;
  context.metrics = metrics_;

  xquery::PendingUpdateList pul;
  auto results = engine_->ExecuteRequest(request, context, &pul);
  if (!results.ok()) {
    const StatusCode code = results.status().code();
    if (code == StatusCode::kDeadlineExceeded || code == StatusCode::kCancelled) {
      // The engine observed cooperative cancellation. Release the query's
      // repeatable-read snapshot NOW instead of waiting for session expiry
      // — the query can never complete, so pinning its private clones any
      // longer only wastes memory. Prepared sessions are exempt: their PUL
      // is on the stable log and the 2PC promise to commit must survive
      // (the coordinator's decision, not a deadline, ends them).
      if (metrics_ != nullptr) metrics_->RecordCancellation();
      if (session != nullptr && !session->prepared) {
        isolation_.EndSession(request.query_id->id);
        session = nullptr;
        if (metrics_ != nullptr) metrics_->RecordSessionReleased();
      }
    }
    return fault_reply(results.status());
  }

  if (!pul.empty()) {
    // A request may lack updCall when the caller could not resolve the
    // module locally; the pending update list itself is authoritative.
    if (session != nullptr) {
      // Rule R'Fu: defer; the coordinator commits via WS-AT.
      session->pul.BeginCall();
      session->pul.Merge(std::move(pul));
      if (request.shard.has_value() && pinned_fragment.has_value()) {
        // Remember which fragment this updating call targets and the data
        // version a commit will produce (routed version + 1). Filtered to
        // the docs the PUL actually writes at Prepare, voted back to the
        // coordinator, and installed as the applied data version on apply.
        QuerySession::FragmentTarget& t =
            session->fragment_targets[pinned_fragment->second];
        t.collection = request.shard->collection;
        t.shard_index = request.shard->shard_index;
        if (request.shard->data_version + 1 > t.target_version) {
          t.target_version = request.shard->data_version + 1;
        }
      }
    } else {
      // Rule RFu: apply each request's updates immediately.
      Status applied = ApplyImmediate(&pul, provider.get());
      if (!applied.ok()) {
        return fault_reply(applied);
      }
    }
  }

  soap::XrpcResponse response;
  response.module_ns = request.module_ns;
  response.method = request.method;
  response.results = std::move(results).value();
  response.participating_peers.push_back(options_.self_uri);
  if (nested != nullptr) {
    for (const std::string& peer : nested->participating_peers()) {
      response.participating_peers.push_back(peer);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->RecordServerRequest(options_.self_uri,
                                  static_cast<int64_t>(request.calls.size()),
                                  /*ok=*/true);
  }
  return soap::SerializeResponse(response);
}

Status XrpcService::ApplyImmediate(xquery::PendingUpdateList* pul,
                                   xquery::DocumentProvider* docs_used) {
  (void)docs_used;
  // Map live tree roots back to document names so versions can be bumped.
  std::map<const xml::Node*, std::string> root_to_name;
  for (const std::string& name : database_->DocumentNames()) {
    auto doc = database_->GetDocument(name);
    if (doc.ok()) root_to_name[doc.value().get()] = name;
  }
  std::vector<std::string> written;
  for (const auto& entry : pul->entries()) {
    const xquery::UpdatePrimitive& p = entry.primitive;
    if (p.kind == xquery::UpdatePrimitive::Kind::kPut) continue;
    if (p.target.node() == nullptr) continue;
    auto it = root_to_name.find(p.target.node()->Root());
    if (it != root_to_name.end()) written.push_back(it->second);
  }
  DatabasePutSink sink(database_);
  XRPC_RETURN_IF_ERROR(xquery::ApplyUpdates(pul, &sink));
  for (const std::string& name : written) {
    auto doc = database_->GetDocument(name);
    if (doc.ok()) database_->PutDocument(name, doc.value());  // version bump
  }
  return Status::OK();
}

Status XrpcService::ResolveWrittenDocs(QuerySession* session) {
  session->written_docs.clear();
  for (const auto& entry : session->pul.entries()) {
    const xquery::UpdatePrimitive& p = entry.primitive;
    if (p.kind == xquery::UpdatePrimitive::Kind::kPut) {
      session->written_docs.insert(p.put_uri);
      continue;
    }
    if (p.target.node() == nullptr) continue;
    const xml::Node* root = p.target.node()->Root();
    for (const auto& [name, versioned] : session->docs) {
      if (versioned.first.get() == root) {
        session->written_docs.insert(name);
        break;
      }
    }
  }
  return Status::OK();
}

StatusOr<PreparedPayload> XrpcService::BuildPreparedPayload(
    QuerySession* session) {
  PreparedPayload payload;
  // The query host drove this transaction; it is who recovery inquires.
  payload.coordinator = session->id.host;
  for (const std::string& name : session->written_docs) {
    auto it = session->docs.find(name);
    if (it == session->docs.end()) continue;  // fn:put of a new document
    payload.docs.emplace_back(name, it->second.second);
  }
  // Only fragments the PUL actually writes vote a version advance; an
  // unwritten fragment's target would advance the catalog past every copy.
  for (const auto& [doc, target] : session->fragment_targets) {
    if (session->written_docs.count(doc) == 0) continue;
    payload.fragments.push_back(
        {doc, target.collection, target.shard_index, target.target_version});
  }
  auto namer = [session](const xml::Node* root) -> StatusOr<std::string> {
    for (const auto& [name, versioned] : session->docs) {
      if (versioned.first.get() == root) return name;
    }
    return Status::IsolationError(
        "update target outside the pinned snapshot");
  };
  XRPC_ASSIGN_OR_RETURN(payload.pul, session->pul.Serialize(namer));
  return payload;
}

Status XrpcService::ApplyPreparedSession(QuerySession* session) {
  DatabasePutSink sink(database_);
  XRPC_RETURN_IF_ERROR(xquery::ApplyUpdates(&session->pul, &sink));
  for (const std::string& name : session->written_docs) {
    auto it = session->docs.find(name);
    if (it == session->docs.end()) continue;  // fn:put handled by sink
    XRPC_RETURN_IF_ERROR(
        database_->ReplaceIfVersion(name, it->second.second, it->second.first));
    auto target = session->fragment_targets.find(name);
    if (target != session->fragment_targets.end()) {
      database_->SetAppliedDataVersion(name, target->second.target_version);
    }
  }
  return Status::OK();
}

StatusOr<QuerySession*> XrpcService::RestoreInDoubtSession(
    const std::string& query_id, const PreparedPayload& p) {
  auto session = std::make_unique<QuerySession>();
  session->id.id = query_id;
  session->id.host = p.coordinator;
  // Deadline is moot: prepared sessions are exempt from expiry.
  session->deadline_us = isolation_.NowMicros();
  session->prepared = true;
  for (const WrittenFragment& f : p.fragments) {
    session->fragment_targets[f.doc] = {f.collection, f.shard_index,
                                        f.version};
  }
  for (const auto& [name, version] : p.docs) {
    // Pin a fresh clone at the RECORDED base version: while this peer was
    // down it accepted no commits, so the live tree still carries the state
    // the PUL paths were serialized against; ReplaceIfVersion re-validates
    // that assumption at apply time (first-committer-wins survives crashes).
    XRPC_ASSIGN_OR_RETURN(xml::NodePtr live, database_->GetDocument(name));
    session->docs[name] = {live->Clone(), version};
  }
  QuerySession* raw = session.get();
  auto resolver = [raw](const std::string& name) -> StatusOr<xml::NodePtr> {
    auto it = raw->docs.find(name);
    if (it == raw->docs.end()) {
      return Status::TransactionError(
          "PREPARED payload references unknown document: " + name);
    }
    return it->second.first;
  };
  XRPC_ASSIGN_OR_RETURN(
      session->pul, xquery::PendingUpdateList::Deserialize(p.pul, resolver));
  XRPC_RETURN_IF_ERROR(ResolveWrittenDocs(raw));
  return isolation_.RestoreSession(std::move(session));
}

StatusOr<std::string> XrpcService::HandleWsat(const std::string& body) {
  auto parsed = ParseWsatMessage(body);
  if (!parsed.ok()) {
    WsatMessage err;
    err.ok = false;
    err.reason = parsed.status().ToString();
    return SerializeWsatResponse(err);
  }
  const WsatMessage& msg = parsed.value();
  // One WS-AT verb at a time: a redelivered Commit racing the original must
  // observe either "not yet decided" or the decided outcome, never a
  // half-applied session.
  std::lock_guard<std::mutex> wsat_lock(wsat_mu_);
  WsatMessage reply;
  reply.op = msg.op;
  reply.query_id = msg.query_id;

  auto respond = [&]() { return SerializeWsatResponse(reply); };
  auto respond_abort = [&](const std::string& reason) {
    reply.ok = false;
    reply.reason = reason;
    isolation_.EndSession(msg.query_id);
    return SerializeWsatResponse(reply);
  };
  auto idempotent_reply = [&](bool ok, const std::string& reason) {
    if (metrics_ != nullptr) metrics_->RecordTxnIdempotentReply();
    reply.ok = ok;
    reply.reason = reason;
    return SerializeWsatResponse(reply);
  };
  // The decided outcome for this queryID, if any (rebuilt from the WAL at
  // recovery): the source of idempotent replies and inquiry answers.
  auto decided = [&]() -> std::optional<TxnOutcome> {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = outcomes_.find(msg.query_id);
    if (it == outcomes_.end()) return std::nullopt;
    return it->second;
  };

  switch (msg.op) {
    case WsatOp::kPrepare: {
      if (auto o = decided()) {
        // A re-delivered Prepare after the decision: re-vote consistently.
        return *o == TxnOutcome::kCommitted
                   ? idempotent_reply(true, "")
                   : idempotent_reply(false, "queryID already rolled back: " +
                                                 msg.query_id);
      }
      auto session_or = isolation_.FindSession(msg.query_id);
      if (!session_or.ok()) {
        return respond_abort(session_or.status().ToString());
      }
      QuerySession* session = session_or.value();
      auto vote_fragments = [&](QuerySession* s) {
        for (const auto& [doc, t] : s->fragment_targets) {
          if (s->written_docs.count(doc) == 0) continue;
          reply.fragments.push_back(
              {doc, t.collection, t.shard_index, t.target_version});
        }
      };
      if (session->prepared) {
        // Duplicate Prepare (retried envelope): the PUL is already logged.
        // Re-vote the same fragment list — the first vote may have been
        // the message that got lost.
        vote_fragments(session);
        return idempotent_reply(true, "");
      }
      XRPC_RETURN_IF_ERROR(ResolveWrittenDocs(session));
      // First-committer-wins: another transaction must not have committed
      // to any written document since our snapshot was pinned.
      for (const std::string& name : session->written_docs) {
        auto it = session->docs.find(name);
        if (it == session->docs.end()) continue;  // fn:put of a new doc
        if (database_->VersionOf(name) != it->second.second) {
          return respond_abort("conflicting transaction on document " + name);
        }
      }
      auto payload_or = BuildPreparedPayload(session);
      if (!payload_or.ok()) {
        return respond_abort(payload_or.status().ToString());
      }
      Status logged =
          log_.Append({TxnLog::RecordType::kPrepared, msg.query_id,
                       SerializePreparedPayload(payload_or.value())});
      if (!logged.ok()) return respond_abort(logged.ToString());
      if (TriggerCrash(CrashPoint::kAfterPrepareLog)) {
        // PREPARED is durable but the vote is lost: the coordinator times
        // out and aborts; recovery resolves us via inquiry (presumed abort).
        return Status::NetworkError(
            "peer crashed (simulated) before sending its vote");
      }
      session->prepared = true;
      reply.ok = true;
      vote_fragments(session);
      // kAfterVote: the yes-vote still reaches the coordinator, then the
      // peer dies holding an in-doubt transaction.
      (void)TriggerCrash(CrashPoint::kAfterVote);
      return respond();
    }

    case WsatOp::kCommit: {
      if (auto o = decided()) {
        return *o == TxnOutcome::kCommitted
                   ? idempotent_reply(true, "")
                   : idempotent_reply(false, "queryID already rolled back: " +
                                                 msg.query_id);
      }
      auto session_or = isolation_.FindSession(msg.query_id);
      if (!session_or.ok()) {
        // Presumed abort: no session, no PREPARED record, no decision —
        // this participant never promised anything.
        reply.ok = false;
        reply.reason = "unknown queryID (presumed abort): " + msg.query_id;
        return respond();
      }
      QuerySession* session = session_or.value();
      if (!session->prepared) {
        return respond_abort("commit without successful prepare");
      }
      if (TriggerCrash(CrashPoint::kBeforeCommitApply)) {
        // Nothing logged, nothing applied: after recovery the session is
        // in-doubt again and the retried Commit (or inquiry) decides.
        return Status::NetworkError(
            "peer crashed (simulated) before logging the commit");
      }
      Status logged =
          log_.Append({TxnLog::RecordType::kCommitted, msg.query_id, ""});
      if (!logged.ok()) return respond_abort(logged.ToString());
      if (TriggerCrash(CrashPoint::kAfterCommitLog)) {
        // COMMITTED is durable, effects are not: replay must re-apply.
        return Status::NetworkError(
            "peer crashed (simulated) after logging the commit");
      }
      Status applied = ApplyPreparedSession(session);
      if (!applied.ok()) {
        // The durable decision stands; a later replay retries the apply.
        reply.ok = false;
        reply.reason = applied.ToString();
        return respond();
      }
      (void)log_.Append({TxnLog::RecordType::kApplied, msg.query_id, ""});
      RememberOutcome(msg.query_id, TxnOutcome::kCommitted);
      isolation_.EndSession(msg.query_id);
      reply.ok = true;
      return respond();
    }

    case WsatOp::kRollback: {
      if (auto o = decided()) {
        return *o == TxnOutcome::kAborted
                   ? idempotent_reply(true, "")
                   : idempotent_reply(false, "queryID already committed: " +
                                                 msg.query_id);
      }
      auto session_or = isolation_.FindSession(msg.query_id);
      if (session_or.ok()) {
        if (session_or.value()->prepared) {
          // The ABORTED record is an optimization (it spares the inquiry on
          // replay), not a correctness requirement: under presumed abort
          // losing it just means re-deriving the same answer.
          (void)log_.Append(
              {TxnLog::RecordType::kAborted, msg.query_id, ""});
          RememberOutcome(msg.query_id, TxnOutcome::kAborted);
        }
        isolation_.EndSession(msg.query_id);
      }
      // Rolling back an unknown queryID is trivially successful.
      reply.ok = true;
      return respond();
    }

    case WsatOp::kInquire: {
      // Presumed abort: only a commit decision on record answers
      // "committed"; everything else — including "never heard of it" —
      // answers "aborted".
      reply.ok = true;
      auto o = decided();
      reply.outcome = (o.has_value() && *o == TxnOutcome::kCommitted)
                          ? "committed"
                          : "aborted";
      return respond();
    }

    case WsatOp::kRepair: {
      // Anti-entropy donor side (server/repair.cc): answer with the
      // committed PULs — or the full fragment — a lagging copy is missing.
      reply = BuildRepairReply(msg);
      return respond();
    }
  }
  return Status::Internal("unhandled WS-AT op");
}

// -- CoordinatorJournal -----------------------------------------------------

Status XrpcService::LogCommitDecision(
    const std::string& query_id,
    const std::vector<std::string>& participants) {
  XRPC_RETURN_IF_ERROR(log_.Append({TxnLog::RecordType::kCoordCommit, query_id,
                                    JoinStrings(participants, "\n")}));
  std::lock_guard<std::mutex> lock(txn_mu_);
  CoordTxn& txn = coord_[query_id];
  txn.pending.clear();
  txn.pending.insert(participants.begin(), participants.end());
  txn.ended = false;
  outcomes_[query_id] = TxnOutcome::kCommitted;
  return Status::OK();
}

void XrpcService::RecordCommitAck(const std::string& query_id,
                                  const std::string& participant) {
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = coord_.find(query_id);
  if (it != coord_.end()) it->second.pending.erase(participant);
}

void XrpcService::ParkInDoubt(const std::string& query_id,
                              const std::string& participant) {
  // The participant already sits in coord_[query_id].pending; parking just
  // means leaving it there for RetryInDoubt to drain.
  (void)query_id;
  (void)participant;
}

Status XrpcService::LogCommitEnd(const std::string& query_id) {
  XRPC_RETURN_IF_ERROR(
      log_.Append({TxnLog::RecordType::kCoordEnd, query_id, ""}));
  std::lock_guard<std::mutex> lock(txn_mu_);
  coord_.erase(query_id);
  return Status::OK();
}

size_t XrpcService::in_doubt_count() const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  size_t n = participant_in_doubt_.size();
  for (const auto& [qid, txn] : coord_) n += txn.pending.size();
  return n;
}

Status XrpcService::RetryInDoubt(net::Transport* transport) {
  if (transport == nullptr) {
    return Status::InvalidArgument("RetryInDoubt requires a transport");
  }
  std::map<std::string, std::set<std::string>> snapshot;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    for (const auto& [qid, txn] : coord_) {
      if (!txn.pending.empty()) snapshot[qid] = txn.pending;
    }
  }
  for (const auto& [qid, peers] : snapshot) {
    for (const std::string& p : peers) {
      // Commit is idempotent at the participant, so re-sending after an
      // ack lost on the wire is harmless.
      auto done = SendWsatMessage(transport, p, WsatOp::kCommit, qid);
      if (done.ok() && done.value().ok) {
        RecordCommitAck(qid, p);
        if (metrics_ != nullptr) metrics_->RecordTxnInDoubt(-1);
      }
    }
  }
  std::vector<std::string> finished;
  size_t still_pending = 0;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    for (const auto& [qid, txn] : coord_) {
      if (txn.pending.empty()) {
        finished.push_back(qid);
      } else {
        still_pending += txn.pending.size();
      }
    }
  }
  for (const std::string& qid : finished) {
    XRPC_RETURN_IF_ERROR(LogCommitEnd(qid));
  }
  if (still_pending > 0) {
    return Status::TransactionError(
        std::to_string(still_pending) +
        " participant(s) still in doubt after commit retry");
  }
  return Status::OK();
}

Status XrpcService::ResolveParticipantInDoubt(net::Transport* transport) {
  std::map<std::string, std::string> snapshot;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    snapshot = participant_in_doubt_;
  }
  Status first_error = Status::OK();
  auto note = [&first_error](const Status& s) {
    if (first_error.ok() && !s.ok()) first_error = s;
  };
  for (const auto& [qid, coordinator] : snapshot) {
    // The inquiry goes out without wsat_mu_ held (the coordinator may be
    // this very peer, whose wsat endpoint must stay reachable).
    auto answer =
        SendWsatMessage(transport, coordinator, WsatOp::kInquire, qid);
    if (!answer.ok()) {
      // Coordinator unreachable: stay in doubt, inquire again later.
      note(answer.status());
      continue;
    }
    std::lock_guard<std::mutex> wsat_lock(wsat_mu_);
    {
      // A Commit/Rollback redelivered while the inquiry was in flight may
      // have decided this transaction already.
      std::lock_guard<std::mutex> lock(txn_mu_);
      if (outcomes_.count(qid) > 0) continue;
    }
    auto session_or = isolation_.FindSession(qid);
    if (!session_or.ok()) continue;  // resolved concurrently
    if (answer.value().outcome == "committed") {
      Status logged = log_.Append({TxnLog::RecordType::kCommitted, qid, ""});
      if (!logged.ok()) {
        note(logged);
        continue;
      }
      Status applied = ApplyPreparedSession(session_or.value());
      if (!applied.ok()) {
        // Decision is durable; the next replay retries the apply.
        note(applied);
        continue;
      }
      (void)log_.Append({TxnLog::RecordType::kApplied, qid, ""});
      RememberOutcome(qid, TxnOutcome::kCommitted);
    } else {
      // Explicit abort answer, or "unknown" — both mean abort under the
      // presumed-abort rule.
      (void)log_.Append({TxnLog::RecordType::kAborted, qid, ""});
      RememberOutcome(qid, TxnOutcome::kAborted);
    }
    isolation_.EndSession(qid);
  }
  return first_error;
}

Status XrpcService::Restart(net::Transport* transport) {
  std::unique_lock<std::mutex> wsat_lock(wsat_mu_);
  // 1. Lose everything a process restart loses.
  isolation_.Reset();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (metrics_ != nullptr && !participant_in_doubt_.empty()) {
      metrics_->RecordTxnInDoubt(
          -static_cast<int64_t>(participant_in_doubt_.size()));
    }
    outcomes_.clear();
    coord_.clear();
    participant_in_doubt_.clear();
  }
  crashed_ = false;
  crash_point_ = CrashPoint::kNone;
  if (metrics_ != nullptr) metrics_->RecordTxnRecovery();

  // 2. Replay the WAL and fold it into per-transaction state.
  TxnLog::ReplayStats stats;
  XRPC_ASSIGN_OR_RETURN(std::vector<TxnLog::Record> records,
                        log_.Replay(&stats));
  if (metrics_ != nullptr) {
    metrics_->RecordTxnReplayedRecords(static_cast<int64_t>(records.size()));
  }

  struct ParticipantState {
    bool prepared = false;
    bool committed = false;
    bool applied = false;
    bool aborted = false;
    std::string payload;
  };
  struct CoordState {
    std::vector<std::string> participants;
    bool ended = false;
  };
  std::map<std::string, ParticipantState> part;
  std::map<std::string, CoordState> coord;
  for (const TxnLog::Record& r : records) {
    switch (r.type) {
      case TxnLog::RecordType::kPrepared: {
        ParticipantState& s = part[r.query_id];
        s.prepared = true;
        s.payload = r.payload;
        break;
      }
      case TxnLog::RecordType::kCommitted:
        part[r.query_id].committed = true;
        break;
      case TxnLog::RecordType::kApplied:
        part[r.query_id].applied = true;
        break;
      case TxnLog::RecordType::kAborted:
        part[r.query_id].aborted = true;
        break;
      case TxnLog::RecordType::kCoordCommit:
        coord[r.query_id].participants = SplitString(r.payload, '\n');
        break;
      case TxnLog::RecordType::kCoordEnd:
        coord[r.query_id].ended = true;
        break;
    }
  }

  Status first_error = Status::OK();
  auto note = [&first_error](const Status& s) {
    if (first_error.ok() && !s.ok()) first_error = s;
  };

  // 3. Participant role.
  for (const auto& [qid, st] : part) {
    if (st.aborted && !st.committed) {
      RememberOutcome(qid, TxnOutcome::kAborted);
      continue;
    }
    if (st.committed) {
      RememberOutcome(qid, TxnOutcome::kCommitted);
      if (!st.applied) {
        // The decision survived the crash but the effects did not:
        // reconstruct the session from the PREPARED payload and re-apply.
        auto payload_or = ParsePreparedPayload(st.payload);
        if (!payload_or.ok()) {
          note(payload_or.status());
          continue;
        }
        auto session_or = RestoreInDoubtSession(qid, payload_or.value());
        if (!session_or.ok()) {
          note(session_or.status());
          continue;
        }
        if (metrics_ != nullptr) metrics_->RecordTxnRecoveredSession();
        Status applied = ApplyPreparedSession(session_or.value());
        if (!applied.ok()) {
          note(applied);
        } else {
          (void)log_.Append({TxnLog::RecordType::kApplied, qid, ""});
        }
        isolation_.EndSession(qid);
      }
      continue;
    }
    if (st.prepared) {
      // PREPARED with no decision: in-doubt. Rebuild the session (so a
      // re-delivered Commit can still apply) and remember who to ask.
      auto payload_or = ParsePreparedPayload(st.payload);
      if (!payload_or.ok()) {
        note(payload_or.status());
        continue;
      }
      auto session_or = RestoreInDoubtSession(qid, payload_or.value());
      if (!session_or.ok()) {
        note(session_or.status());
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(txn_mu_);
        participant_in_doubt_[qid] = payload_or.value().coordinator;
      }
      if (metrics_ != nullptr) {
        metrics_->RecordTxnInDoubt(+1);
        metrics_->RecordTxnRecoveredSession();
      }
    }
  }

  // 4. Coordinator role: a decision without COORD-END must be re-driven.
  // Acks are not logged, so ALL participants are re-sent Commit; their
  // idempotent handlers make over-delivery harmless.
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    for (const auto& [qid, cs] : coord) {
      if (cs.ended) continue;
      outcomes_[qid] = TxnOutcome::kCommitted;
      CoordTxn& txn = coord_[qid];
      txn.pending.insert(cs.participants.begin(), cs.participants.end());
    }
  }

  // 5. With a transport, resolve in-doubt state actively right away
  // (released lock: resolution sends messages, possibly to ourselves).
  wsat_lock.unlock();
  if (transport != nullptr) {
    note(ResolveParticipantInDoubt(transport));
    bool have_coord_work;
    {
      std::lock_guard<std::mutex> lock(txn_mu_);
      have_coord_work = !coord_.empty();
    }
    if (have_coord_work) note(RetryInDoubt(transport));
    // 6. Anti-entropy: while this peer was down it may have missed whole
    // committed transactions (no PREPARED record to recover from). Compare
    // fragment data versions against the catalog and catch up from a peer
    // copy before serving reads (which the StaleReplica fence would reject
    // anyway until the gap closes).
    note(RepairReplica(transport));
  }
  return first_error;
}

}  // namespace xrpc::server
