#ifndef XRPC_SERVER_REMOTE_DOCS_H_
#define XRPC_SERVER_REMOTE_DOCS_H_

#include <map>
#include <string>

#include "server/rpc_client.h"
#include "xquery/context.h"

namespace xrpc::server {

/// Namespace of the built-in system module every peer serves; its sys:doc
/// function implements remote document fetch (the data-shipping fn:doc of
/// Section 5: fn:doc with an xrpc:// URI ships the document to the caller).
inline constexpr char kSystemModuleNs[] =
    "http://monetdb.cwi.nl/XQuery/system";

/// Source of that module (registered automatically by peers).
const char* SystemModuleSource();

/// DocumentProvider that resolves plain names against `base` and
/// xrpc://host/path URIs by fetching the document from the remote peer via
/// a sys:doc XRPC call. Fetched documents are cached for the lifetime of
/// the provider (one query), which both avoids refetching in loop-lifted
/// plans and keeps fn:doc's stable-identity guarantee within a query.
class FederatedDocumentProvider : public xquery::DocumentProvider {
 public:
  /// `client` may be null; remote URIs then fail with kNetworkError.
  FederatedDocumentProvider(xquery::DocumentProvider* base, RpcClient* client)
      : base_(base), client_(client) {}

  StatusOr<xml::NodePtr> GetDocument(const std::string& uri) override;

 private:
  xquery::DocumentProvider* base_;
  RpcClient* client_;
  std::map<std::string, xml::NodePtr> remote_cache_;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_REMOTE_DOCS_H_
