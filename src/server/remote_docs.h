#ifndef XRPC_SERVER_REMOTE_DOCS_H_
#define XRPC_SERVER_REMOTE_DOCS_H_

#include <map>
#include <string>

#include "server/rpc_client.h"
#include "xquery/context.h"

namespace xrpc::server {

/// Namespace of the built-in system module every peer serves; its sys:doc
/// function implements remote document fetch (the data-shipping fn:doc of
/// Section 5: fn:doc with an xrpc:// URI ships the document to the caller).
inline constexpr char kSystemModuleNs[] =
    "http://monetdb.cwi.nl/XQuery/system";

/// Source of that module (registered automatically by peers).
const char* SystemModuleSource();

/// DocumentProvider that resolves plain names against `base` and
/// xrpc://host/path URIs by fetching the document from the remote peer via
/// a sys:doc XRPC call. Fetched documents are cached for the lifetime of
/// the provider (one query), which both avoids refetching in loop-lifted
/// plans and keeps fn:doc's stable-identity guarantee within a query.
class FederatedDocumentProvider : public xquery::DocumentProvider {
 public:
  /// `client` may be null; remote URIs then fail with kNetworkError.
  FederatedDocumentProvider(xquery::DocumentProvider* base, RpcClient* client)
      : base_(base), client_(client) {}

  StatusOr<xml::NodePtr> GetDocument(const std::string& uri) override;

 private:
  xquery::DocumentProvider* base_;
  RpcClient* client_;
  std::map<std::string, xml::NodePtr> remote_cache_;
};

/// DocumentProvider layered over a (typically federated) base provider
/// that resolves sharded collections through the peer catalog (DESIGN.md
/// §13). Two resolutions on top of plain pass-through:
///
///  - doc("shard:<collection>") assembles the full logical collection:
///    every fragment is fetched — local fragments through `base` under
///    their fragment name, remote ones as "<peer_uri>/<fragment>" (which a
///    federated base ships via sys:doc) — and the fragments' root
///    children are spliced under one synthetic document node in shard
///    order. A single-fragment collection returns that fragment directly,
///    node identity preserved.
///
///  - A plain logical name (e.g. "auctions.xml") the base reports as
///    NotFound, but which names a catalog collection with fragments local
///    to `self_uri`: the union of the LOCAL fragments is returned, so
///    unmodified XMark modules running on a shard peer see exactly their
///    partition.
///
/// Assembled documents are cached per provider (one query), matching
/// fn:doc's stable-identity guarantee.
class ShardDocumentProvider : public xquery::DocumentProvider {
 public:
  /// `catalog` may be null, turning the provider into pass-through.
  ShardDocumentProvider(xquery::DocumentProvider* base,
                        const core::Catalog* catalog, std::string self_uri)
      : base_(base), catalog_(catalog), self_uri_(std::move(self_uri)) {}

  StatusOr<xml::NodePtr> GetDocument(const std::string& uri) override;

  /// Pins the resolution of one logical collection name to one exact
  /// fragment — the xrpc:shard scope of the request being served. A
  /// replica peer stores several fragments of the same collection, so
  /// "resolve the logical name to the local fragment" is ambiguous there;
  /// the scope says precisely which shard this subcall must read.
  void PinFragment(const std::string& collection, const std::string& doc_name) {
    pinned_[collection] = doc_name;
  }

 private:
  /// Fetches the collection's fragments (all, or only those at self_uri_)
  /// and splices them in shard order.
  StatusOr<xml::NodePtr> Assemble(const core::ShardedCollection& collection,
                                  bool local_only);

  xquery::DocumentProvider* base_;
  const core::Catalog* catalog_;
  std::string self_uri_;
  std::map<std::string, std::string> pinned_;  ///< collection -> fragment
  std::map<std::string, xml::NodePtr> cache_;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_REMOTE_DOCS_H_
