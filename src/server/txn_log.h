#ifndef XRPC_SERVER_TXN_LOG_H_
#define XRPC_SERVER_TXN_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/statusor.h"

namespace xrpc::server {

/// The durable transaction log of one peer ("it logs the union of the
/// pending update lists to stable storage, ensuring q can commit later",
/// Section 6). Append-only, checksummed, fsync'd: the write-ahead log both
/// roles of the WS-AT protocol recover from after a crash.
///
/// Record stream semantics (presumed abort):
///  - participant: kPrepared carries the serialized PUL + base versions;
///    kCommitted is the durable decision logged *before* the PUL is applied;
///    kApplied seals a completed application; kAborted ends a rolled-back
///    transaction. A kPrepared with no later decision record is in-doubt
///    and must be resolved by inquiry — or presumed aborted.
///  - coordinator: kCoordCommit (participant list as payload) is logged
///    *before* phase 2 starts; kCoordEnd seals the transaction once every
///    participant acknowledged Commit. A decision that never reached
///    kCoordEnd is re-driven on recovery (Commit is idempotent). No abort
///    decision is ever logged: absence of kCoordCommit *is* the abort
///    record (presumed abort), which is what inquiry answers are based on.
///
/// Two modes:
///  - file-backed (Open()): every Append() writes one framed record
///    ([magic][length][crc32][payload]) with a single write(2) followed by
///    fsync(2) (configurable), and Replay() re-reads the file tolerating a
///    torn tail (a crash mid-append truncates cleanly instead of erroring).
///  - in-memory (default): records are kept in RAM. Replay() returns them,
///    which lets the in-process crash harness exercise recovery paths
///    without touching disk (the vector stands in for the durable file).
class TxnLog {
 public:
  enum class RecordType : uint8_t {
    kPrepared = 1,     ///< participant voted yes; payload = prepared state
    kCommitted = 2,    ///< participant decision, durable before application
    kApplied = 3,      ///< participant applied the PUL (transaction sealed)
    kAborted = 4,      ///< participant rolled back
    kCoordCommit = 5,  ///< coordinator decision; payload = participant list
    kCoordEnd = 6,     ///< coordinator: all participants acknowledged
  };

  struct Record {
    RecordType type = RecordType::kPrepared;
    std::string query_id;
    std::string payload;
  };

  /// What Replay() observed beyond the decoded records.
  struct ReplayStats {
    size_t records = 0;         ///< well-formed records decoded
    bool torn_tail = false;     ///< file ended inside a record frame
    bool checksum_error = false;///< a frame failed its CRC (replay stops)
    size_t dropped_bytes = 0;   ///< bytes ignored after the valid prefix
  };

  TxnLog() = default;
  TxnLog(const TxnLog&) = delete;
  TxnLog& operator=(const TxnLog&) = delete;
  ~TxnLog();

  /// Switches to file-backed mode: opens (creating if needed) `path` for
  /// appending. Existing contents are preserved — call Replay() to read
  /// them back. Idempotent for the same path.
  Status Open(const std::string& path);

  /// Closes the backing file (no-op in memory mode).
  void Close();

  /// Appends one record durably (write + fsync in file mode).
  Status Append(const Record& record);

  /// Injects a one-shot failure into the next Append (disk-full testing).
  void FailNextAppend(Status status);

  /// Reads every decodable record back. File mode re-reads the file from
  /// the start; a torn final frame or a checksum mismatch ends the replay
  /// at the last valid record (reported in `stats`) instead of failing —
  /// the WAL contract is that a crash mid-append loses at most the record
  /// being written. Memory mode returns the in-RAM records.
  StatusOr<std::vector<Record>> Replay(ReplayStats* stats = nullptr) const;

  /// Decodes an arbitrary WAL file (static; used by tests and tooling).
  static StatusOr<std::vector<Record>> ReplayFile(const std::string& path,
                                                  ReplayStats* stats);

  /// Records appended through this instance since construction/Open.
  /// (In-memory mode: the full durable state.)
  std::vector<Record> records() const;

  /// Number of records of `type` appended through this instance.
  size_t CountAppended(RecordType type) const;

  /// Disables the per-append fsync (bench mode; durability is then only as
  /// strong as the page cache).
  void set_sync(bool sync);

  bool file_backed() const;
  const std::string& path() const { return path_; }
  int64_t appends() const;
  int64_t fsyncs() const;

  static const char* RecordTypeName(RecordType type);

 private:
  Status AppendLocked(const Record& record);

  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  bool sync_ = true;
  std::vector<Record> records_;  ///< appended this incarnation (all modes)
  int64_t appends_ = 0;
  int64_t fsyncs_ = 0;
  Status injected_;
  bool has_injected_ = false;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_TXN_LOG_H_
