#include "server/txn_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <fstream>

namespace xrpc::server {

namespace {

/// Frame layout: [magic u32][payload_len u32][crc32(payload) u32][payload].
/// All integers little-endian. The magic marks frame starts so a reader
/// that stops at a corrupt frame can report how many bytes it ignored.
constexpr uint32_t kFrameMagic = 0x4c415758;  // "XWAL" little-endian
constexpr size_t kFrameHeader = 12;

uint32_t Crc32(const char* data, size_t len) {
  // CRC-32 (reflected polynomial 0xEDB88320), table built on first use.
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

/// Payload layout: [type u8][qid_len u32][qid bytes][body bytes].
std::string EncodePayload(const TxnLog::Record& r) {
  std::string payload;
  payload.push_back(static_cast<char>(r.type));
  PutU32(&payload, static_cast<uint32_t>(r.query_id.size()));
  payload += r.query_id;
  payload += r.payload;
  return payload;
}

StatusOr<TxnLog::Record> DecodePayload(const char* p, size_t len) {
  if (len < 5) return Status::Internal("WAL payload too short");
  TxnLog::Record r;
  uint8_t type = static_cast<uint8_t>(p[0]);
  if (type < 1 || type > 6) {
    return Status::Internal("WAL payload has unknown record type " +
                            std::to_string(type));
  }
  r.type = static_cast<TxnLog::RecordType>(type);
  uint32_t qid_len = GetU32(p + 1);
  if (5 + static_cast<size_t>(qid_len) > len) {
    return Status::Internal("WAL payload queryID overruns frame");
  }
  r.query_id.assign(p + 5, qid_len);
  r.payload.assign(p + 5 + qid_len, len - 5 - qid_len);
  return r;
}

}  // namespace

const char* TxnLog::RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kPrepared:
      return "PREPARED";
    case RecordType::kCommitted:
      return "COMMITTED";
    case RecordType::kApplied:
      return "APPLIED";
    case RecordType::kAborted:
      return "ABORTED";
    case RecordType::kCoordCommit:
      return "COORD-COMMIT";
    case RecordType::kCoordEnd:
      return "COORD-END";
  }
  return "?";
}

TxnLog::~TxnLog() { Close(); }

Status TxnLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (path == path_) return Status::OK();
    ::close(fd_);
    fd_ = -1;
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::TransactionError("cannot open WAL " + path + ": " +
                                    std::strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

void TxnLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TxnLog::set_sync(bool sync) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_ = sync;
}

Status TxnLog::Append(const Record& record) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(record);
}

Status TxnLog::AppendLocked(const Record& record) {
  if (has_injected_) {
    has_injected_ = false;
    return injected_;
  }
  if (fd_ >= 0) {
    std::string payload = EncodePayload(record);
    std::string frame;
    frame.reserve(kFrameHeader + payload.size());
    PutU32(&frame, kFrameMagic);
    PutU32(&frame, static_cast<uint32_t>(payload.size()));
    PutU32(&frame, Crc32(payload.data(), payload.size()));
    frame += payload;
    // One write(2) per record: a crash tears at most the frame being
    // written, which Replay() detects and drops.
    size_t off = 0;
    while (off < frame.size()) {
      ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::TransactionError("WAL write failed: " +
                                        std::string(std::strerror(errno)));
      }
      off += static_cast<size_t>(n);
    }
    if (sync_) {
      if (::fsync(fd_) != 0) {
        return Status::TransactionError("WAL fsync failed: " +
                                        std::string(std::strerror(errno)));
      }
      ++fsyncs_;
    }
  }
  records_.push_back(record);
  ++appends_;
  return Status::OK();
}

void TxnLog::FailNextAppend(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  injected_ = std::move(status);
  has_injected_ = true;
}

StatusOr<std::vector<TxnLog::Record>> TxnLog::Replay(
    ReplayStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    // Memory mode: the record vector stands in for the durable file.
    if (stats != nullptr) {
      *stats = ReplayStats{};
      stats->records = records_.size();
    }
    return records_;
  }
  return ReplayFile(path_, stats);
}

StatusOr<std::vector<TxnLog::Record>> TxnLog::ReplayFile(
    const std::string& path, ReplayStats* stats) {
  ReplayStats local;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::TransactionError("cannot read WAL " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::vector<Record> out;
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) {
      local.torn_tail = true;  // crash mid-header
      local.dropped_bytes = data.size() - pos;
      break;
    }
    uint32_t magic = GetU32(data.data() + pos);
    uint32_t len = GetU32(data.data() + pos + 4);
    uint32_t crc = GetU32(data.data() + pos + 8);
    if (magic != kFrameMagic) {
      local.checksum_error = true;  // frame start corrupted
      local.dropped_bytes = data.size() - pos;
      break;
    }
    if (data.size() - pos - kFrameHeader < len) {
      local.torn_tail = true;  // crash mid-payload
      local.dropped_bytes = data.size() - pos;
      break;
    }
    const char* payload = data.data() + pos + kFrameHeader;
    if (Crc32(payload, len) != crc) {
      local.checksum_error = true;
      local.dropped_bytes = data.size() - pos;
      break;
    }
    auto record = DecodePayload(payload, len);
    if (!record.ok()) {
      local.checksum_error = true;
      local.dropped_bytes = data.size() - pos;
      break;
    }
    out.push_back(std::move(record).value());
    pos += kFrameHeader + len;
  }
  local.records = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<TxnLog::Record> TxnLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t TxnLog::CountAppended(RecordType type) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Record& r : records_) {
    if (r.type == type) ++n;
  }
  return n;
}

bool TxnLog::file_backed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

int64_t TxnLog::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

int64_t TxnLog::fsyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsyncs_;
}

}  // namespace xrpc::server
