#include "server/rpc_client.h"

#include <algorithm>
#include <condition_variable>
#include <set>

namespace xrpc::server {

StatusOr<xdm::Sequence> RpcClient::Execute(const xquery::RpcCall& call) {
  soap::XrpcRequest request;
  request.module_ns = call.module_ns;
  request.method = call.function.local;
  request.location = call.module_location;
  request.arity = call.args.size();
  request.updating = call.updating;
  request.calls.push_back(call.args);

  // Resolve a logical "shard:<collection>" destination against the peer
  // catalog: prune to the owning shard when the routing parameter is a
  // singleton, otherwise broadcast one shard-scoped call per shard and
  // concatenate the per-shard results in shard order (the interpreter-side
  // counterpart of the compiler's scatter-gather decomposition). On a
  // StaleCatalog reject (the catalog changed between decomposition and
  // admission at a peer) the shard map is refetched and the whole
  // resolution re-run exactly once.
  if (core::Catalog::IsShardUri(call.dest_uri)) {
    if (options_.catalog == nullptr) {
      return Status::EvalError("no peer catalog configured for destination " +
                               call.dest_uri);
    }
    StatusOr<xdm::Sequence> result = Status::Internal("shard routing skipped");
    for (int attempt = 0; attempt < 2; ++attempt) {
      core::ShardedCollection collection;
      int64_t version = 0;
      if (!options_.catalog->Snapshot(
              core::Catalog::CollectionOf(call.dest_uri), &collection,
              &version) ||
          collection.shards.empty()) {
        return Status::EvalError("unknown sharded collection: " +
                                 call.dest_uri);
      }
      int routed = -1;
      if (collection.route_param >= 0 &&
          collection.route_param < static_cast<int>(call.args.size()) &&
          call.args[collection.route_param].size() == 1) {
        auto r = options_.catalog->RouteKey(
            collection,
            call.args[collection.route_param][0].Atomize().ToString());
        if (r.ok()) routed = r.value();
      }
      std::vector<Destination> destinations;
      // Replica-echo flags, parallel to `destinations`: an updating call
      // fans out to EVERY copy of each touched shard (DESIGN.md §17) so all
      // of them prepare/commit the same PUL through 2PC, but only the
      // primary's result sequence contributes to the merge.
      std::vector<bool> echo;
      auto add_shard = [&](const core::ShardInfo& s) {
        soap::XrpcRequest::ShardScope scope{
            collection.name, s.index, version,
            options_.catalog->FragmentDataVersion(collection.name, s.index)};
        Destination d;
        d.dest_uri = s.peer_uri;
        d.request = request;
        d.request.shard = scope;
        if (request.updating) {
          // All-copies write: no fallbacks (at-most-once forbids re-issuing
          // an update elsewhere); a dead or lagging copy fails the call and
          // the transaction aborts — repair, not failover, heals writes.
          destinations.push_back(std::move(d));
          echo.push_back(false);
          for (const std::string& replica : s.replicas) {
            Destination r;
            r.dest_uri = replica;
            r.request = request;
            r.request.shard = scope;
            destinations.push_back(std::move(r));
            echo.push_back(true);
          }
        } else {
          d.fallback_uris = s.replicas;
          destinations.push_back(std::move(d));
          echo.push_back(false);
        }
      };
      if (routed >= 0) {
        add_shard(collection.shards[routed]);
      } else {
        for (const core::ShardInfo& s : collection.shards) add_shard(s);
      }
      auto responses = ExecuteBulkAll(std::move(destinations));
      if (!responses.ok()) {
        result = responses.status();
      } else {
        xdm::Sequence merged;
        Status merge_status = Status::OK();
        for (size_t ri = 0; ri < responses->size(); ++ri) {
          soap::XrpcResponse& response = (*responses)[ri];
          if (response.results.size() != 1) {
            merge_status = Status::SoapFault(
                "expected 1 result sequence, got " +
                std::to_string(response.results.size()));
            break;
          }
          if (ri < echo.size() && echo[ri]) continue;  // replica echo
          for (xdm::Item& item : response.results[0]) {
            merged.push_back(std::move(item));
          }
        }
        if (merge_status.ok()) {
          result = std::move(merged);
        } else {
          result = std::move(merge_status);
        }
      }
      if (result.ok() ||
          result.status().code() != StatusCode::kStaleCatalog ||
          attempt > 0) {
        return result;
      }
      // Fenced: refetch the shard map (the Snapshot at the top of the next
      // iteration) and re-route once. Safe even for updating calls — a
      // StaleCatalog reject happens before the peer executes anything.
      if (net::RpcMetrics* m = EventMetrics()) m->RecordStaleCatalogReroute();
    }
    return result;
  }

  XRPC_ASSIGN_OR_RETURN(soap::XrpcResponse response,
                        ExecuteBulk(call.dest_uri, std::move(request)));
  if (response.results.size() != 1) {
    return Status::SoapFault("expected 1 result sequence, got " +
                             std::to_string(response.results.size()));
  }
  return std::move(response.results[0]);
}

StatusOr<soap::XrpcResponse> RpcClient::ExecuteBulk(
    const std::string& dest_uri, soap::XrpcRequest request) {
  ExchangeStats stats;
  auto response = ExchangeOnce(dest_uri, std::move(request), &stats);
  MergeStats(stats, stats.network_micros);
  return response;
}

StatusOr<soap::XrpcResponse> RpcClient::ExchangeWithFailover(
    const Destination& dest, ExchangeStats* stats) const {
  auto result = ExchangeOnce(dest.dest_uri, dest.request, stats);
  if (result.ok()) return result;
  net::RpcMetrics* m = EventMetrics();
  if (result.status().code() == StatusCode::kStaleCatalog) {
    // The peer fenced us off: every replica shares the catalog, so trying
    // the next one would be rejected identically. Surface the fault so the
    // decomposition layer refetches the shard map and re-routes.
    if (m != nullptr) m->RecordStaleCatalogObserved();
    return result;
  }
  if (result.status().code() == StatusCode::kStaleReplica && m != nullptr) {
    // A lagging copy fenced this call (DESIGN.md §17): its applied data
    // version trails what the catalog promised. Unlike StaleCatalog, the
    // other copies are not implicated — a read can skip to the next one.
    m->RecordStaleReplicaObserved();
  }
  if (dest.fallback_uris.empty()) return result;
  if (dest.request.updating) {
    // At-most-once: an updating envelope may have reached (and changed)
    // the primary even though no answer came back; re-issuing it to a
    // replica could apply the update twice. The subcall fails instead.
    return result;
  }
  const std::string* failed_at = &dest.dest_uri;
  for (const std::string& replica : dest.fallback_uris) {
    // Only two failures are worth a replica: a transport-level loss (dial
    // refusal, abandoned timeout, breaker-open local refusal) or a
    // StaleReplica fence (that one copy lags; another may be current).
    // Budget exhaustion (kDeadlineExceeded) is final — there is no time
    // left to spend on another candidate — and any other answered fault
    // means the shard itself (not the peer) is the problem.
    const StatusCode code = result.status().code();
    if (code == StatusCode::kStaleReplica) {
      if (m != nullptr) m->RecordStaleReplicaSkip();
    } else if (code == StatusCode::kNetworkError) {
      if (m != nullptr) m->RecordFailoverAttempt(*failed_at);
    } else {
      return result;
    }
    result = ExchangeOnce(replica, dest.request, stats);
    if (result.ok()) {
      if (m != nullptr) m->RecordFailoverSuccess();
      return result;
    }
    if (result.status().code() == StatusCode::kStaleCatalog) {
      if (m != nullptr) m->RecordStaleCatalogObserved();
      return result;
    }
    if (result.status().code() == StatusCode::kStaleReplica &&
        m != nullptr) {
      m->RecordStaleReplicaObserved();
    }
    failed_at = &replica;
  }
  if (m != nullptr) m->RecordFailoverExhausted();
  return result;
}

StatusOr<std::vector<soap::XrpcResponse>> RpcClient::ExecuteBulkAll(
    std::vector<Destination> destinations) {
  const size_t n = destinations.size();
  if (n == 0) return std::vector<soap::XrpcResponse>{};
  if (n == 1) {
    // A one-destination "group" has no fan-out to bracket; keep the plain
    // single-exchange path (and its clock semantics) byte-identical.
    ExchangeStats stats;
    auto response = ExchangeWithFailover(destinations[0], &stats);
    MergeStats(stats, stats.network_micros);
    if (!response.ok()) return response.status();
    std::vector<soap::XrpcResponse> responses;
    responses.push_back(std::move(response).value());
    return responses;
  }

  std::vector<ExchangeStats> stats(n);
  std::vector<std::optional<StatusOr<soap::XrpcResponse>>> results(n);
  net::ThreadPool* pool = options_.dispatch_pool;
  {
    // Bracket the fan-out so virtual-time transports charge the group its
    // critical path (max over destinations), agreeing with the wall-clock
    // shape of the physically parallel path below.
    net::ParallelGroupScope group(transport_);
    if (pool != nullptr) {
      std::mutex done_mu;
      std::condition_variable done_cv;
      size_t done = 0;
      for (size_t i = 0; i < n; ++i) {
        pool->Submit([this, i, &destinations, &results, &stats, &done_mu,
                      &done_cv, &done] {
          results[i] = ExchangeWithFailover(destinations[i], &stats[i]);
          std::lock_guard<std::mutex> lock(done_mu);
          ++done;
          done_cv.notify_one();
        });
      }
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return done == n; });
    } else {
      // Serial dispatch (default): deterministic — the simulated network's
      // fault schedule sees destinations in a fixed order. Every
      // destination is still attempted even after a failure.
      for (size_t i = 0; i < n; ++i) {
        results[i] = ExchangeWithFailover(destinations[i], &stats[i]);
      }
    }
  }

  // The group's modeled elapsed time is its critical path: the slowest
  // destination, successful or not (a failed exchange still occupied the
  // wire for whatever it accumulated before failing).
  int64_t critical_path = 0;
  ExchangeStats merged;
  for (size_t i = 0; i < n; ++i) {
    critical_path = std::max(critical_path, stats[i].network_micros);
    merged.remote_micros += stats[i].remote_micros;
    merged.requests_sent += stats[i].requests_sent;
    merged.sent_updating = merged.sent_updating || stats[i].sent_updating;
    merged.peers.insert(merged.peers.end(), stats[i].peers.begin(),
                        stats[i].peers.end());
  }
  MergeStats(merged, critical_path);

  if (options_.dispatch_metrics != nullptr) {
    net::RpcMetrics* m = options_.dispatch_metrics;
    int64_t max_in_flight =
        pool != nullptr
            ? static_cast<int64_t>(std::min(n, static_cast<size_t>(
                                                   std::max(1, pool->size()))))
            : 1;
    m->RecordDispatchFanout(static_cast<int64_t>(n), max_in_flight);
    for (size_t i = 0; i < n; ++i) {
      m->RecordFanoutDestinationLatency(stats[i].network_micros);
    }
  }

  // results[i] corresponds to destinations[i] regardless of completion
  // order; the lowest-indexed failure (not the first to *finish* failing)
  // is the one reported.
  std::vector<soap::XrpcResponse> responses;
  responses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!results[i]->ok()) return results[i]->status();
    responses.push_back(std::move(*results[i]).value());
  }
  return responses;
}

StatusOr<soap::XrpcResponse> RpcClient::ExchangeOnce(
    const std::string& dest_uri, soap::XrpcRequest request,
    ExchangeStats* stats) const {
  // The "simple query" shortcut (Section 3.2) elides the queryID for reads
  // that send at most one request per peer — but an updating request must
  // always carry it: the receiving peer stages the PUL in a session keyed
  // by the queryID, which the 2PC Prepare/Commit then addresses.
  if (options_.isolation == IsolationLevel::kRepeatable &&
      (!options_.simple_query || request.updating)) {
    if (!options_.query_id.has_value()) {
      return Status::Internal("repeatable isolation requires a queryID");
    }
    request.query_id = options_.query_id;
  }
  if (options_.deadline_us > 0 && options_.now_us) {
    // Stamp the envelope with the budget REMAINING at send time. The
    // receiver sees a relative figure, so clock domains never need to
    // agree; each hop only promises "you have this much left".
    const int64_t remaining = options_.deadline_us - options_.now_us();
    if (remaining <= 0) {
      return Status::DeadlineExceeded(
          "query deadline passed before dispatch toward " + dest_uri);
    }
    request.deadline_us = remaining;
  }
  if (request.updating) stats->sent_updating = true;
  size_t call_count = request.calls.size();
  std::string body = soap::SerializeRequest(request);
  auto posted_or = transport_->Post(dest_uri, body);
  if (!posted_or.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->RecordClientRequest(dest_uri, body.size(), 0, 0,
                                            /*ok=*/false);
    }
    return posted_or.status();
  }
  net::PostResult posted = std::move(posted_or).value();
  stats->network_micros += posted.network_micros;
  stats->remote_micros += posted.server_micros;
  ++stats->requests_sent;
  if (options_.metrics != nullptr) {
    options_.metrics->RecordClientRequest(dest_uri, body.size(),
                                          posted.body.size(),
                                          posted.network_micros, /*ok=*/true);
  }
  XRPC_ASSIGN_OR_RETURN(soap::XrpcResponse response,
                        soap::ParseResponse(posted.body));
  if (response.results.size() != call_count) {
    return Status::SoapFault(
        "bulk response has " + std::to_string(response.results.size()) +
        " result sequences for " + std::to_string(call_count) + " calls");
  }
  stats->peers.push_back(dest_uri);
  for (const std::string& peer : response.participating_peers) {
    stats->peers.push_back(peer);
  }
  return response;
}

void RpcClient::MergeStats(const ExchangeStats& stats,
                           int64_t network_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  network_micros_ += network_micros;
  remote_micros_ += stats.remote_micros;
  requests_sent_ += stats.requests_sent;
  sent_updating_ = sent_updating_ || stats.sent_updating;
  participating_peers_.insert(stats.peers.begin(), stats.peers.end());
}

int64_t RpcClient::network_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return network_micros_;
}

int64_t RpcClient::requests_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_sent_;
}

bool RpcClient::sent_updating() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_updating_;
}

int64_t RpcClient::remote_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_micros_;
}

}  // namespace xrpc::server
