#include <algorithm>

#include "server/rpc_client.h"

namespace xrpc::server {

StatusOr<xdm::Sequence> RpcClient::Execute(const xquery::RpcCall& call) {
  soap::XrpcRequest request;
  request.module_ns = call.module_ns;
  request.method = call.function.local;
  request.location = call.module_location;
  request.arity = call.args.size();
  request.updating = call.updating;
  request.calls.push_back(call.args);
  XRPC_ASSIGN_OR_RETURN(soap::XrpcResponse response,
                        ExecuteBulk(call.dest_uri, std::move(request)));
  if (response.results.size() != 1) {
    return Status::SoapFault("expected 1 result sequence, got " +
                             std::to_string(response.results.size()));
  }
  return std::move(response.results[0]);
}

StatusOr<std::vector<soap::XrpcResponse>> RpcClient::ExecuteBulkAll(
    std::vector<Destination> destinations) {
  std::vector<soap::XrpcResponse> responses;
  responses.reserve(destinations.size());
  // Parallel-dispatch accounting: each request still executes (the
  // simulated network is synchronous), but the modeled elapsed network
  // time of the group is the maximum over destinations, not the sum.
  // Critical-path accounting must hold on the error path too: a failed
  // destination would otherwise leave the partial *serial* cost in
  // network_micros_ and skew the Table 4 strategy benchmarks.
  int64_t before = network_micros_;
  int64_t critical_path = 0;
  for (Destination& d : destinations) {
    int64_t mark = network_micros_;
    auto response = ExecuteBulk(d.dest_uri, std::move(d.request));
    int64_t cost = network_micros_ - mark;
    critical_path = std::max(critical_path, cost);
    if (!response.ok()) {
      network_micros_ = before + critical_path;
      return response.status();
    }
    responses.push_back(std::move(response).value());
  }
  network_micros_ = before + critical_path;
  return responses;
}

StatusOr<soap::XrpcResponse> RpcClient::ExecuteBulk(
    const std::string& dest_uri, soap::XrpcRequest request) {
  if (options_.isolation == IsolationLevel::kRepeatable &&
      !options_.simple_query) {
    if (!options_.query_id.has_value()) {
      return Status::Internal("repeatable isolation requires a queryID");
    }
    request.query_id = options_.query_id;
  }
  if (request.updating) sent_updating_ = true;
  size_t call_count = request.calls.size();
  std::string body = soap::SerializeRequest(request);
  auto posted_or = transport_->Post(dest_uri, body);
  if (!posted_or.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->RecordClientRequest(dest_uri, body.size(), 0, 0,
                                            /*ok=*/false);
    }
    return posted_or.status();
  }
  net::PostResult posted = std::move(posted_or).value();
  network_micros_ += posted.network_micros;
  remote_micros_ += posted.server_micros;
  ++requests_sent_;
  if (options_.metrics != nullptr) {
    options_.metrics->RecordClientRequest(dest_uri, body.size(),
                                          posted.body.size(),
                                          posted.network_micros, /*ok=*/true);
  }
  XRPC_ASSIGN_OR_RETURN(soap::XrpcResponse response,
                        soap::ParseResponse(posted.body));
  if (response.results.size() != call_count) {
    return Status::SoapFault(
        "bulk response has " + std::to_string(response.results.size()) +
        " result sequences for " + std::to_string(call_count) + " calls");
  }
  participating_peers_.insert(dest_uri);
  for (const std::string& peer : response.participating_peers) {
    participating_peers_.insert(peer);
  }
  return response;
}

}  // namespace xrpc::server
