#include "server/repair.h"

#include <map>
#include <utility>

#include "core/catalog.h"
#include "server/xrpc_service.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/update.h"

namespace xrpc::server {

std::optional<std::vector<FragmentDelta>> CollectCommittedDeltas(
    const std::vector<TxnLog::Record>& records, const std::string& doc,
    uint64_t from_version, uint64_t to_version) {
  // Fold the record stream into per-transaction decisions first; a PREPARED
  // payload only contributes once its COMMITTED record is on the log.
  struct TxnFold {
    std::string payload;
    bool committed = false;
    bool aborted = false;
  };
  std::map<std::string, TxnFold> txns;
  for (const TxnLog::Record& r : records) {
    switch (r.type) {
      case TxnLog::RecordType::kPrepared:
        txns[r.query_id].payload = r.payload;
        break;
      case TxnLog::RecordType::kCommitted:
        txns[r.query_id].committed = true;
        break;
      case TxnLog::RecordType::kAborted:
        txns[r.query_id].aborted = true;
        break;
      default:
        break;
    }
  }
  std::map<uint64_t, FragmentDelta> by_version;
  for (const auto& [qid, txn] : txns) {
    if (!txn.committed || txn.aborted || txn.payload.empty()) continue;
    auto payload = ParsePreparedPayload(txn.payload);
    if (!payload.ok()) continue;
    for (const WrittenFragment& f : payload.value().fragments) {
      if (f.doc != doc) continue;
      if (f.version <= from_version || f.version > to_version) continue;
      FragmentDelta delta;
      delta.version = f.version;
      delta.query_id = qid;
      delta.pul = payload.value().pul;
      by_version.emplace(f.version, std::move(delta));
    }
  }
  // The requester replays strictly in order; any hole means a transaction
  // this WAL never saw (pre-versioning history, truncation, or a commit
  // that happened at another copy) — full transfer is then the only safe
  // catch-up.
  std::vector<FragmentDelta> out;
  out.reserve(static_cast<size_t>(to_version - from_version));
  for (uint64_t v = from_version + 1; v <= to_version; ++v) {
    auto it = by_version.find(v);
    if (it == by_version.end()) return std::nullopt;
    out.push_back(std::move(it->second));
  }
  return out;
}

uint64_t FragmentDigest(const xml::Node& tree) {
  return core::ShardHash(xml::SerializeNode(tree));
}

namespace {

/// PutSink that swallows fn:put side effects during delta replay: repair
/// converges ONE fragment; a replayed PUL's writes to other documents are
/// someone else's fragment (repaired by their own iteration) or a foreign
/// doc this peer never stored.
class DiscardPutSink : public xquery::PutSink {
 public:
  Status Put(const std::string& uri, xml::NodePtr doc) override {
    (void)uri;
    (void)doc;
    return Status::OK();
  }
};

}  // namespace

// -- XrpcService donor side -------------------------------------------------

WsatMessage XrpcService::BuildRepairReply(const WsatMessage& request) {
  WsatMessage reply;
  reply.op = WsatOp::kRepair;
  reply.query_id = request.query_id;
  reply.collection = request.collection;
  reply.shard_index = request.shard_index;
  reply.doc = request.doc;
  auto doc_or = database_->GetDocument(request.doc);
  if (!doc_or.ok()) {
    reply.ok = false;
    reply.reason = doc_or.status().ToString();
    return reply;
  }
  reply.ok = true;
  reply.version = database_->AppliedDataVersion(request.doc);
  reply.digest = FragmentDigest(*doc_or.value());
  if (reply.version <= request.from_version) {
    // The requester is at or past this copy; nothing to send (it will try
    // a donor that actually has the missing history).
    return reply;
  }
  if (!request.want_full) {
    auto records = log_.Replay();
    if (records.ok()) {
      auto deltas = CollectCommittedDeltas(records.value(), request.doc,
                                           request.from_version,
                                           reply.version);
      if (deltas.has_value()) {
        reply.deltas.reserve(deltas->size());
        for (FragmentDelta& fd : *deltas) {
          reply.deltas.push_back(
              {fd.version, std::move(fd.query_id), std::move(fd.pul)});
        }
        return reply;
      }
    }
  }
  reply.full_body = xml::SerializeNode(*doc_or.value());
  return reply;
}

// -- XrpcService requester side ---------------------------------------------

Status XrpcService::ApplyRepairDeltas(const WsatMessage& reply) {
  std::lock_guard<std::mutex> wsat_lock(wsat_mu_);
  const std::string& doc = reply.doc;
  uint64_t applied = database_->AppliedDataVersion(doc);
  for (const WsatMessage::RepairDelta& d : reply.deltas) {
    if (d.version <= applied) continue;  // raced with 2PC delivery
    if (d.version != applied + 1) {
      return Status::TransactionError(
          "repair delta chain has a hole at version " +
          std::to_string(applied + 1) + " of fragment " + doc);
    }
    XRPC_ASSIGN_OR_RETURN(xml::NodePtr live, database_->GetDocument(doc));
    auto resolver = [&](const std::string& name) -> StatusOr<xml::NodePtr> {
      if (name == doc) return live;
      // Other documents the PUL touched: resolve against throwaway clones
      // so their side effects are discarded (each fragment converges
      // through its own repair; an unknown doc fails the delta and the
      // caller falls back to full transfer).
      XRPC_ASSIGN_OR_RETURN(xml::NodePtr other, database_->GetDocument(name));
      return other->Clone();
    };
    XRPC_ASSIGN_OR_RETURN(
        xquery::PendingUpdateList pul,
        xquery::PendingUpdateList::Deserialize(d.pul, resolver));
    DiscardPutSink sink;
    XRPC_RETURN_IF_ERROR(xquery::ApplyUpdates(&pul, &sink));
    database_->PutDocument(doc, live);  // reinstall: bumps the local version
    database_->SetAppliedDataVersion(doc, d.version);
    // The donor's WAL proves this transaction committed: record it as
    // committed+applied so a late Commit redelivery gets an idempotent yes,
    // an inquiry answers "committed", and Restart() does not re-apply.
    (void)log_.Append({TxnLog::RecordType::kCommitted, d.query_id, ""});
    (void)log_.Append({TxnLog::RecordType::kApplied, d.query_id, ""});
    RememberOutcome(d.query_id, TxnOutcome::kCommitted);
    isolation_.EndSession(d.query_id);
    applied = d.version;
    if (metrics_ != nullptr) metrics_->RecordRepairPulsReplayed(1);
  }
  // Convergence proof: after replaying to the donor's version the trees
  // must be byte-identical. A mismatch means the replay diverged (e.g. a
  // PUL resolved differently against our state) — surface it so the caller
  // re-fetches the whole fragment instead of serving silent divergence.
  if (applied == reply.version) {
    XRPC_ASSIGN_OR_RETURN(xml::NodePtr live, database_->GetDocument(doc));
    if (FragmentDigest(*live) != reply.digest) {
      return Status::TransactionError(
          "digest mismatch after delta replay of fragment " + doc);
    }
  }
  return Status::OK();
}

Status XrpcService::ApplyRepairFullBody(const WsatMessage& reply) {
  std::lock_guard<std::mutex> wsat_lock(wsat_mu_);
  if (reply.version <= database_->AppliedDataVersion(reply.doc)) {
    return Status::OK();  // raced with 2PC delivery; already caught up
  }
  XRPC_ASSIGN_OR_RETURN(xml::NodePtr tree, xml::ParseXml(reply.full_body));
  database_->PutDocument(reply.doc, std::move(tree));
  database_->SetAppliedDataVersion(reply.doc, reply.version);
  if (metrics_ != nullptr) metrics_->RecordRepairFullTransfer();
  return Status::OK();
}

Status XrpcService::ResyncFragmentFrom(net::Transport* transport,
                                       const std::string& donor,
                                       const std::string& collection,
                                       const core::ShardInfo& shard,
                                       uint64_t authoritative) {
  WsatMessage req;
  req.op = WsatOp::kRepair;
  req.collection = collection;
  req.shard_index = shard.index;
  req.doc = shard.doc_name;
  req.from_version = database_->AppliedDataVersion(shard.doc_name);
  XRPC_ASSIGN_OR_RETURN(WsatMessage reply,
                        SendWsatEnvelope(transport, donor, req));
  if (!reply.ok) {
    return Status::TransactionError("repair donor " + donor +
                                    " refused: " + reply.reason);
  }
  if (reply.version < authoritative) {
    // This copy lags the catalog too; a donor that cannot bring us fully
    // up to date would leave the fence closed — try the next one.
    return Status::TransactionError(
        "repair donor " + donor + " itself lags at data version " +
        std::to_string(reply.version) + " < " +
        std::to_string(authoritative));
  }
  Status status = reply.full_body.empty() ? ApplyRepairDeltas(reply)
                                          : ApplyRepairFullBody(reply);
  if (!status.ok() && reply.full_body.empty()) {
    // Delta replay failed (chain hole against our state, an unresolvable
    // document, or a digest mismatch): the full fragment is always safe.
    req.want_full = true;
    req.from_version = database_->AppliedDataVersion(shard.doc_name);
    XRPC_ASSIGN_OR_RETURN(reply, SendWsatEnvelope(transport, donor, req));
    if (!reply.ok) {
      return Status::TransactionError("repair donor " + donor +
                                      " refused: " + reply.reason);
    }
    if (reply.full_body.empty()) {
      return Status::TransactionError("repair donor " + donor +
                                      " sent no fragment body");
    }
    status = ApplyRepairFullBody(reply);
  }
  return status;
}

Status XrpcService::RepairReplica(net::Transport* transport) {
  if (transport == nullptr) {
    return Status::InvalidArgument("RepairReplica requires a transport");
  }
  // In-doubt transactions resolve through 2PC inquiry FIRST: a parked
  // prepared PUL must commit exactly once, through its session — never be
  // applied a second time by version catch-up.
  Status first_error = ResolveParticipantInDoubt(transport);
  auto note = [&first_error](const Status& s) {
    if (first_error.ok() && !s.ok()) first_error = s;
  };
  if (options_.catalog == nullptr) return first_error;
  for (const std::string& name : options_.catalog->CollectionNames()) {
    core::ShardedCollection collection;
    if (!options_.catalog->Snapshot(name, &collection, nullptr)) continue;
    for (const core::ShardInfo& shard : collection.shards) {
      bool holds = shard.peer_uri == options_.self_uri;
      for (const std::string& replica : shard.replicas) {
        holds = holds || replica == options_.self_uri;
      }
      if (!holds) continue;
      if (metrics_ != nullptr) metrics_->RecordReplicaLagCheck();
      const uint64_t authoritative =
          options_.catalog->FragmentDataVersion(name, shard.index);
      const uint64_t applied =
          database_->AppliedDataVersion(shard.doc_name);
      if (applied >= authoritative) continue;
      if (metrics_ != nullptr) {
        metrics_->RecordReplicaLagging(
            static_cast<int64_t>(authoritative - applied));
      }
      std::vector<std::string> donors;
      if (shard.peer_uri != options_.self_uri) {
        donors.push_back(shard.peer_uri);
      }
      for (const std::string& replica : shard.replicas) {
        if (replica != options_.self_uri) donors.push_back(replica);
      }
      Status last = Status::NetworkError("no donor reachable for fragment " +
                                         shard.doc_name);
      bool resynced = false;
      for (const std::string& donor : donors) {
        Status s =
            ResyncFragmentFrom(transport, donor, name, shard, authoritative);
        if (s.ok()) {
          resynced = true;
          break;
        }
        last = s;
      }
      if (resynced) {
        if (metrics_ != nullptr) metrics_->RecordRepairResync();
      } else {
        if (metrics_ != nullptr) metrics_->RecordRepairFailed();
        note(last);
      }
    }
  }
  return first_error;
}

}  // namespace xrpc::server
