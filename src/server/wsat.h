#ifndef XRPC_SERVER_WSAT_H_
#define XRPC_SERVER_WSAT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/statusor.h"
#include "net/retrying_transport.h"
#include "net/rpc_metrics.h"
#include "net/transport.h"

namespace xrpc::server {

/// Namespace of our WS-AtomicTransaction-style messages.
inline constexpr char kWsatNs[] = "http://schemas.xmlsoap.org/ws/2004/10/wsat";

/// Path under which peers expose the WS-AT participant endpoint.
inline constexpr char kWsatPath[] = "wsat";

/// WS-AT verbs exchanged between the coordinator and participants.
/// kInquire is the recovery verb: a participant holding a PREPARED log
/// record with no decision asks the coordinator for the outcome; under
/// presumed abort, "no commit decision on record" answers "aborted".
/// kRepair is the anti-entropy verb (DESIGN.md §17): a lagging replica
/// asks a peer holding the same fragment for the committed PULs (or the
/// full fragment) between its applied data version and the peer's.
enum class WsatOp { kPrepare, kCommit, kRollback, kInquire, kRepair };

/// A sharded fragment a participant's prepared PUL writes: reported on the
/// Prepare vote and folded into CommitOutcome, so the coordinator advances
/// the catalog's authoritative fragment data version once the transaction
/// commits (only fragments that were actually written advance — an
/// over-bump would fence reads of untouched fragments forever).
struct WrittenFragment {
  std::string doc;         ///< physical fragment name at the participant
  std::string collection;  ///< logical collection the fragment realizes
  int shard_index = 0;
  uint64_t version = 0;    ///< data version committing this PUL produces
};

/// One WS-AT request/response message. Responses reuse the struct with
/// `op` echoing the verb, `ok`/`reason` carrying the vote, and — for
/// kInquire responses — `outcome` naming the decision.
struct WsatMessage {
  WsatOp op = WsatOp::kPrepare;
  std::string query_id;
  bool ok = true;
  std::string reason;
  std::string outcome;  ///< inquiry replies: "committed" | "aborted"

  /// Prepare vote replies: fragments the voted PUL writes (see
  /// WrittenFragment). Empty for non-sharded transactions.
  std::vector<WrittenFragment> fragments;

  // -- kRepair fields (unused by the four classic verbs) -------------------
  std::string collection;     ///< fragment's logical collection
  int shard_index = 0;        ///< fragment's shard index
  std::string doc;            ///< physical fragment name
  uint64_t from_version = 0;  ///< request: requester's applied data version
  /// Request: skip delta mode and send the full fragment (set after a
  /// delta replay failed or its digest check mismatched).
  bool want_full = false;
  uint64_t version = 0;       ///< reply: donor's applied data version
  uint64_t digest = 0;        ///< reply: ShardHash of donor's serialized tree
  /// Reply, full-transfer mode: the donor's complete serialized fragment.
  /// Empty => delta mode, replay `deltas` in order instead.
  std::string full_body;
  /// Reply, delta mode: committed PULs covering from_version+1..version
  /// contiguously, each with the query id that produced it (the requester
  /// marks those ids committed so late 2PC traffic stays idempotent).
  struct RepairDelta {
    uint64_t version = 0;
    std::string query_id;
    std::string pul;
  };
  std::vector<RepairDelta> deltas;
};

std::string SerializeWsatRequest(const WsatMessage& message);
std::string SerializeWsatResponse(const WsatMessage& message);
StatusOr<WsatMessage> ParseWsatMessage(std::string_view text);

/// The stable state a participant logs at Prepare, serialized into the
/// PREPARED record of the WAL: who to ask for the outcome, which documents
/// the PUL writes (with their snapshot base versions, for first-committer-
/// wins revalidation at apply time), and the serialized PUL itself.
struct PreparedPayload {
  std::string coordinator;  ///< URI whose wsat endpoint answers kInquire
  std::vector<std::pair<std::string, uint64_t>> docs;  ///< name, base version
  std::string pul;          ///< PendingUpdateList::Serialize output
  /// Sharded fragments the PUL writes, with the data version a commit
  /// produces — durable so crash recovery re-votes them and the replica's
  /// applied data version still advances on a post-restart commit.
  std::vector<WrittenFragment> fragments;
};

std::string SerializePreparedPayload(const PreparedPayload& payload);
StatusOr<PreparedPayload> ParsePreparedPayload(std::string_view text);

/// Sends one WS-AT verb to `participant`'s wsat endpoint and parses the
/// reply. Used by the coordinator driver, in-doubt drains, and recovery
/// inquiry.
StatusOr<WsatMessage> SendWsatMessage(net::Transport* transport,
                                      const std::string& participant,
                                      WsatOp op, const std::string& query_id);

/// Sends a fully populated WS-AT request (kRepair carries more than the
/// verb + query id) to `participant`'s wsat endpoint and parses the reply.
StatusOr<WsatMessage> SendWsatEnvelope(net::Transport* transport,
                                       const std::string& participant,
                                       const WsatMessage& request);

/// Durable coordinator-side state the 2PC driver records into. Implemented
/// by XrpcService on top of its transaction WAL; null in legacy callers
/// (then the commit decision is volatile, as before this layer existed).
class CoordinatorJournal {
 public:
  virtual ~CoordinatorJournal() = default;

  /// Durably records the commit decision and the participant set BEFORE
  /// phase 2 begins; a failure here aborts the transaction (the only safe
  /// direction while no participant has been told to commit).
  virtual Status LogCommitDecision(
      const std::string& query_id,
      const std::vector<std::string>& participants) = 0;

  /// `participant` acknowledged Commit (volatile bookkeeping).
  virtual void RecordCommitAck(const std::string& query_id,
                               const std::string& participant) = 0;

  /// `participant` could not be reached after bounded retry; it stays
  /// in-doubt and is drained later (retry or participant inquiry).
  virtual void ParkInDoubt(const std::string& query_id,
                           const std::string& participant) = 0;

  /// Every participant acknowledged; the transaction record is complete.
  virtual Status LogCommitEnd(const std::string& query_id) = 0;
};

/// Outcome of a distributed commit.
struct CommitOutcome {
  bool committed = false;
  std::string abort_reason;
  int prepares_sent = 0;
  int commits_sent = 0;
  int rollbacks_sent = 0;
  int commit_retries = 0;  ///< phase-2 retransmissions after failures
  /// Participants whose Commit could not be delivered within the retry
  /// budget. The decision stands (committed == true); these are parked and
  /// drained by coordinator retry or participant-initiated inquiry.
  std::vector<std::string> in_doubt;
  /// Union of the fragments every yes-vote reported writing (deduplicated
  /// by collection#shard at the max version). On commit the caller
  /// advances the catalog's fragment data versions from this list.
  std::vector<WrittenFragment> fragments;
};

/// Knobs of RunTwoPhaseCommit beyond the classic all-or-nothing drive.
struct TwoPhaseCommitOptions {
  /// Coordinator decision log (usually the originating peer's XrpcService).
  CoordinatorJournal* journal = nullptr;
  /// Bounded-backoff policy for re-sending Commit to an unresponsive
  /// participant (same shape as the transport retry policy; Commit IS safe
  /// to retransmit because participants handle it idempotently).
  net::RetryPolicy commit_retry{};
  /// Backoff hook (tests/simulation advance a virtual clock; default none).
  std::function<void(int64_t micros)> sleep;
  /// Transaction observability (commit retries, in-doubt gauge).
  net::RpcMetrics* metrics = nullptr;

  /// Simulated coordinator crash points for the recovery matrix: the
  /// driver stops dead (returns kNetworkError) at the given point.
  enum class CrashPoint {
    kNone,
    kAfterVotes,       ///< all voted yes, decision NOT yet logged
    kAfterDecisionLog, ///< decision durable, no Commit sent yet
  };
  CrashPoint crash_point = CrashPoint::kNone;
};

/// The WS-Coordinator role (run by the peer that started the query):
/// registers the participating peers and drives Prepare/Commit (or
/// Rollback on any prepare failure) over the transport. With a journal the
/// decision is durable before phase 2 and unreachable participants are
/// parked in-doubt instead of failing the transaction.
StatusOr<CommitOutcome> RunTwoPhaseCommit(
    net::Transport* transport, const std::vector<std::string>& participants,
    const std::string& query_id, const TwoPhaseCommitOptions& options = {});

}  // namespace xrpc::server

#endif  // XRPC_SERVER_WSAT_H_
