#ifndef XRPC_SERVER_WSAT_H_
#define XRPC_SERVER_WSAT_H_

#include <string>
#include <vector>

#include "base/statusor.h"
#include "net/transport.h"

namespace xrpc::server {

/// Namespace of our WS-AtomicTransaction-style messages.
inline constexpr char kWsatNs[] = "http://schemas.xmlsoap.org/ws/2004/10/wsat";

/// Path under which peers expose the WS-AT participant endpoint.
inline constexpr char kWsatPath[] = "wsat";

/// WS-AT verbs exchanged between the coordinator and participants.
enum class WsatOp { kPrepare, kCommit, kRollback };

/// One WS-AT request/response message. Responses reuse the struct with
/// `op` echoing the verb and `ok`/`reason` carrying the vote.
struct WsatMessage {
  WsatOp op = WsatOp::kPrepare;
  std::string query_id;
  bool ok = true;
  std::string reason;
};

std::string SerializeWsatRequest(const WsatMessage& message);
std::string SerializeWsatResponse(const WsatMessage& message);
StatusOr<WsatMessage> ParseWsatMessage(std::string_view text);

/// The "stable storage" a participant logs pending update lists to at
/// Prepare ("it logs the union of the pending update lists to stable
/// storage, ensuring q can commit later"). In-memory here, with failure
/// injection so tests and benches can exercise abort paths.
class StableLog {
 public:
  struct Record {
    std::string query_id;
    size_t update_count = 0;
  };

  /// Appends a prepare record; fails if a fault was injected.
  Status Append(Record record);

  /// Injects a one-shot failure into the next Append.
  void FailNextAppend(Status status);

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
  Status injected_;
  bool has_injected_ = false;
};

/// Outcome of a distributed commit.
struct CommitOutcome {
  bool committed = false;
  std::string abort_reason;
  int prepares_sent = 0;
  int commits_sent = 0;
  int rollbacks_sent = 0;
};

/// The WS-Coordinator role (run by the peer that started the query):
/// registers the participating peers and drives Prepare/Commit (or
/// Rollback on any prepare failure) over the transport.
StatusOr<CommitOutcome> RunTwoPhaseCommit(
    net::Transport* transport, const std::vector<std::string>& participants,
    const std::string& query_id);

}  // namespace xrpc::server

#endif  // XRPC_SERVER_WSAT_H_
