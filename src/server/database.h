#ifndef XRPC_SERVER_DATABASE_H_
#define XRPC_SERVER_DATABASE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "xml/node.h"
#include "xquery/context.h"

namespace xrpc::server {

/// A peer's XML database: named documents with per-document version
/// counters (the `db_p(t)` of the paper's formal semantics).
///
/// Reads under `isolation=none` see the live trees. Repeatable-read
/// queries get lazily cloned private copies from the IsolationManager and
/// commit through ReplaceIfVersion(), which implements first-committer-wins
/// conflict detection for distributed snapshot-style updates.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Stores (or replaces) a document; bumps its version.
  void PutDocument(const std::string& name, xml::NodePtr tree);

  /// Parses `xml_text` and stores it under `name`.
  Status PutDocumentText(const std::string& name, std::string_view xml_text);

  /// Current live tree of a document.
  StatusOr<xml::NodePtr> GetDocument(const std::string& name) const;

  /// Current tree plus its version (snapshot basis).
  StatusOr<std::pair<xml::NodePtr, uint64_t>> GetWithVersion(
      const std::string& name) const;

  /// Installs `tree` as the new version of `name` iff the current version
  /// still equals `expected_version`; kIsolationError otherwise (a
  /// conflicting transaction committed first).
  Status ReplaceIfVersion(const std::string& name, uint64_t expected_version,
                          xml::NodePtr tree);

  /// Version of a document (0 if absent).
  uint64_t VersionOf(const std::string& name) const;

  /// Applied fragment data version of a document (0 = unversioned). This
  /// is the replica-local mirror of the catalog's authoritative fragment
  /// data version (DESIGN.md §17): every committed shard update stamps the
  /// version it produced, and the XRPC service fences reads whose shard
  /// scope carries a newer data_version (StaleReplica). Distinct from the
  /// local `version` counter, which also moves on loads and non-sharded
  /// writes and is not comparable across copies.
  uint64_t AppliedDataVersion(const std::string& name) const;

  /// Raises the applied fragment data version of `name` to `version`
  /// (max semantics; no-op on an absent document).
  void SetAppliedDataVersion(const std::string& name, uint64_t version);

  std::vector<std::string> DocumentNames() const;
  bool Contains(const std::string& name) const;

 private:
  struct Entry {
    xml::NodePtr tree;
    uint64_t version = 0;
    uint64_t applied_data_version = 0;  ///< see AppliedDataVersion()
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> docs_;
};

/// DocumentProvider view over the live database (isolation "none").
class LiveDocumentProvider : public xquery::DocumentProvider {
 public:
  explicit LiveDocumentProvider(Database* db) : db_(db) {}
  StatusOr<xml::NodePtr> GetDocument(const std::string& uri) override {
    return db_->GetDocument(uri);
  }

 private:
  Database* db_;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_DATABASE_H_
