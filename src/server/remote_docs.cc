#include "server/remote_docs.h"

#include "base/string_util.h"
#include "net/uri.h"

namespace xrpc::server {

const char* SystemModuleSource() {
  return R"(
module namespace sys = "http://monetdb.cwi.nl/XQuery/system";
declare function sys:doc($uri as xs:string) as document-node()
{ exactly-one(doc($uri)) };
)";
}

StatusOr<xml::NodePtr> FederatedDocumentProvider::GetDocument(
    const std::string& uri) {
  if (!StartsWith(uri, "xrpc://")) {
    if (base_ == nullptr) return Status::NotFound("document not found: " + uri);
    return base_->GetDocument(uri);
  }
  auto cached = remote_cache_.find(uri);
  if (cached != remote_cache_.end()) return cached->second;
  if (client_ == nullptr) {
    return Status::NetworkError("no outgoing transport for remote document " +
                                uri);
  }
  XRPC_ASSIGN_OR_RETURN(net::XrpcUri parsed, net::ParseXrpcUri(uri));
  if (parsed.path.empty()) {
    return Status::InvalidArgument("remote document URI lacks a path: " + uri);
  }
  std::string doc_name = parsed.path;
  net::XrpcUri peer = parsed;
  peer.path.clear();
  xquery::RpcCall call;
  call.dest_uri = peer.ToString();
  call.module_ns = kSystemModuleNs;
  call.function = xml::QName(kSystemModuleNs, "doc", "sys");
  call.args = {
      xdm::Sequence{xdm::Item(xdm::AtomicValue::String(std::move(doc_name)))}};
  XRPC_ASSIGN_OR_RETURN(xdm::Sequence fetched, client_->Execute(call));
  if (fetched.size() != 1 || !fetched[0].IsNode()) {
    return Status::SoapFault("remote fn:doc did not return one document");
  }
  xml::NodePtr doc = fetched[0].node()->shared_from_this();
  remote_cache_[uri] = doc;
  return doc;
}

}  // namespace xrpc::server
