#include "server/remote_docs.h"

#include "base/string_util.h"
#include "net/uri.h"

namespace xrpc::server {

const char* SystemModuleSource() {
  return R"(
module namespace sys = "http://monetdb.cwi.nl/XQuery/system";
declare function sys:doc($uri as xs:string) as document-node()
{ exactly-one(doc($uri)) };
)";
}

StatusOr<xml::NodePtr> FederatedDocumentProvider::GetDocument(
    const std::string& uri) {
  if (!StartsWith(uri, "xrpc://")) {
    if (base_ == nullptr) return Status::NotFound("document not found: " + uri);
    return base_->GetDocument(uri);
  }
  auto cached = remote_cache_.find(uri);
  if (cached != remote_cache_.end()) return cached->second;
  if (client_ == nullptr) {
    return Status::NetworkError("no outgoing transport for remote document " +
                                uri);
  }
  XRPC_ASSIGN_OR_RETURN(net::XrpcUri parsed, net::ParseXrpcUri(uri));
  if (parsed.path.empty()) {
    return Status::InvalidArgument("remote document URI lacks a path: " + uri);
  }
  std::string doc_name = parsed.path;
  net::XrpcUri peer = parsed;
  peer.path.clear();
  xquery::RpcCall call;
  call.dest_uri = peer.ToString();
  call.module_ns = kSystemModuleNs;
  call.function = xml::QName(kSystemModuleNs, "doc", "sys");
  call.args = {
      xdm::Sequence{xdm::Item(xdm::AtomicValue::String(std::move(doc_name)))}};
  XRPC_ASSIGN_OR_RETURN(xdm::Sequence fetched, client_->Execute(call));
  if (fetched.size() != 1 || !fetched[0].IsNode()) {
    return Status::SoapFault("remote fn:doc did not return one document");
  }
  xml::NodePtr doc = fetched[0].node()->shared_from_this();
  remote_cache_[uri] = doc;
  return doc;
}

StatusOr<xml::NodePtr> ShardDocumentProvider::GetDocument(
    const std::string& uri) {
  auto cached = cache_.find(uri);
  if (cached != cache_.end()) return cached->second;
  if (core::Catalog::IsShardUri(uri)) {
    if (catalog_ == nullptr) {
      return Status::NotFound("no peer catalog to resolve " + uri);
    }
    const core::ShardedCollection* collection =
        catalog_->Find(core::Catalog::CollectionOf(uri));
    if (collection == nullptr) {
      return Status::NotFound("unknown sharded collection: " + uri);
    }
    XRPC_ASSIGN_OR_RETURN(xml::NodePtr doc,
                          Assemble(*collection, /*local_only=*/false));
    cache_[uri] = doc;
    return doc;
  }
  if (base_ == nullptr) return Status::NotFound("document not found: " + uri);
  auto pinned = pinned_.find(uri);
  if (pinned != pinned_.end()) {
    // The request's xrpc:shard scope names the exact fragment this logical
    // name must resolve to here (replica peers hold several fragments).
    auto doc = base_->GetDocument(pinned->second);
    if (!doc.ok()) {
      return Status(doc.status().code(),
                    "pinned fragment " + pinned->second + " of " + uri + ": " +
                        doc.status().message());
    }
    cache_[uri] = doc.value();
    return doc;
  }
  auto direct = base_->GetDocument(uri);
  if (direct.ok() || direct.status().code() != StatusCode::kNotFound ||
      catalog_ == nullptr) {
    return direct;
  }
  // The base has no such document, but the name may be a catalog
  // collection with fragments stored at this peer — a shard serving its
  // partition under the collection's logical name.
  const core::ShardedCollection* collection = catalog_->Find(uri);
  if (collection == nullptr) return direct;
  bool any_local = false;
  for (const core::ShardInfo& s : collection->shards) {
    if (s.peer_uri == self_uri_) any_local = true;
  }
  if (!any_local) return direct;
  XRPC_ASSIGN_OR_RETURN(xml::NodePtr doc,
                        Assemble(*collection, /*local_only=*/true));
  cache_[uri] = doc;
  return doc;
}

StatusOr<xml::NodePtr> ShardDocumentProvider::Assemble(
    const core::ShardedCollection& collection, bool local_only) {
  std::vector<xml::NodePtr> fragments;
  for (const core::ShardInfo& s : collection.shards) {
    bool local = s.peer_uri == self_uri_;
    if (local_only && !local) continue;
    std::string fragment_uri =
        local ? s.doc_name : s.peer_uri + "/" + s.doc_name;
    auto fragment = base_->GetDocument(fragment_uri);
    if (!fragment.ok()) {
      return Status(fragment.status().code(),
                    "fragment " + std::to_string(s.index) + " of " +
                        collection.name + " (" + fragment_uri +
                        "): " + fragment.status().message());
    }
    fragments.push_back(std::move(fragment).value());
  }
  if (fragments.empty()) {
    return Status::NotFound("collection " + collection.name +
                            " has no fragments at " + self_uri_);
  }
  // The one-fragment case keeps the fragment's node identity — essential
  // for the 1-shard ≡ unsharded determinism contract.
  if (fragments.size() == 1) return fragments[0];
  xml::NodePtr doc = xml::Node::NewDocument();
  for (const xml::NodePtr& fragment : fragments) {
    for (const xml::NodePtr& child : fragment->children()) {
      doc->AppendChild(child->Clone());
    }
  }
  return doc;
}

}  // namespace xrpc::server
