#ifndef XRPC_SERVER_REPAIR_H_
#define XRPC_SERVER_REPAIR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/txn_log.h"
#include "xml/node.h"

namespace xrpc::server {

/// Anti-entropy replica resync (DESIGN.md §17) — the pure helpers of the
/// WS-AT kRepair verb. The stateful donor/requester sides live on
/// XrpcService (BuildRepairReply / RepairReplica, defined in repair.cc);
/// these functions are side-effect-free and unit-testable in isolation.

/// One committed PUL that advanced a fragment from version-1 to `version`.
struct FragmentDelta {
  uint64_t version = 0;
  std::string query_id;
  std::string pul;  ///< PendingUpdateList::Serialize output
};

/// Scans replayed WAL records for committed transactions whose PREPARED
/// payload wrote `doc`, and returns their PULs ordered by the fragment data
/// version they produced — but only when they cover (from_version,
/// to_version] contiguously. A hole (the WAL predates versioning, was
/// truncated, or a transaction committed elsewhere) returns nullopt: the
/// donor then falls back to a full fragment transfer. Aborted or undecided
/// transactions never contribute.
std::optional<std::vector<FragmentDelta>> CollectCommittedDeltas(
    const std::vector<TxnLog::Record>& records, const std::string& doc,
    uint64_t from_version, uint64_t to_version);

/// Stable content digest of a fragment tree (ShardHash over the canonical
/// serialization). Byte-identical trees — the replica-convergence invariant
/// — digest equal; the requester verifies a delta replay against the
/// donor's digest and falls back to full transfer on mismatch.
uint64_t FragmentDigest(const xml::Node& tree);

}  // namespace xrpc::server

#endif  // XRPC_SERVER_REPAIR_H_
