#ifndef XRPC_SERVER_RPC_CLIENT_H_
#define XRPC_SERVER_RPC_CLIENT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "core/catalog.h"
#include "net/rpc_metrics.h"
#include "net/thread_pool.h"
#include "net/transport.h"
#include "server/engine.h"
#include "soap/message.h"
#include "xquery/context.h"

namespace xrpc::server {

/// Isolation level of outgoing XRPC calls (declare option xrpc:isolation).
enum class IsolationLevel {
  kNone,        ///< rule RFr / RFu: every call sees the current state
  kRepeatable,  ///< rule R'Fr / R'Fu: calls of one query share one state
};

/// Client side of the SOAP XRPC protocol: marshals calls into request
/// envelopes, POSTs them over a transport, and unmarshals responses.
///
/// One RpcClient instance serves one query: it carries the query's
/// isolation options, accumulates the set of participating peers
/// (piggybacked in responses, for WS-Coordinator registration) and the
/// modeled network time.
///
/// Execute() implements xquery::RpcHandler — one call per request, the
/// one-at-a-time mechanism. ExecuteBulk() sends a prepared Bulk RPC
/// request; the relational engine and the dispatcher use it to amortize
/// latency over many calls.
class RpcClient : public xquery::RpcHandler, public BulkRpcChannel {
 public:
  struct Options {
    IsolationLevel isolation = IsolationLevel::kNone;
    std::optional<soap::QueryId> query_id;  ///< required for kRepeatable
    /// Suppress the queryID for provably simple queries (single non-nested
    /// XRPC call), which get repeatable reads for free (Section 3.2).
    bool simple_query = false;
    /// Optional observability registry: every exchange is recorded with its
    /// destination, envelope sizes and modeled latency. Leave null when the
    /// transport is a metrics-equipped RetryingTransport (which records at
    /// the per-attempt wire level) to avoid double counting.
    net::RpcMetrics* metrics = nullptr;
    /// When set, ExecuteBulkAll launches its per-destination Bulk RPCs on
    /// this pool and waits for all of them — genuinely parallel fan-out
    /// (concurrency bounded by the pool size). When null, destinations are
    /// dispatched serially; the transport's parallel-group bracket still
    /// accounts the group's modeled time as max-over-destinations. Serial
    /// is the default because it keeps the simulated network's injected
    /// fault schedule deterministic.
    net::ThreadPool* dispatch_pool = nullptr;
    /// Registry receiving fan-out shape and per-destination latency (a
    /// different dimension than per-request wire metrics, so it may alias
    /// the RetryingTransport's registry without double counting).
    net::RpcMetrics* dispatch_metrics = nullptr;
    /// Absolute deadline (micros on the `now_us` clock) of the query this
    /// client serves; 0 = none. Every outgoing envelope is stamped with an
    /// xrpc:deadline header carrying the REMAINING budget at send time
    /// (relative micros — no cross-host clock sync needed), and a request
    /// whose budget is already spent fails locally without being sent.
    int64_t deadline_us = 0;
    /// Clock `deadline_us` is measured against (virtual or steady);
    /// required when deadline_us > 0.
    std::function<int64_t()> now_us;
    /// Peer catalog consulted by Execute() to resolve logical
    /// "shard:<collection>" destinations (the one-at-a-time counterpart of
    /// the compiler's decomposition pass, DESIGN.md §13): a call whose
    /// routing parameter is a singleton is sent to the single owning
    /// shard, anything else fans out to every shard peer and concatenates
    /// the per-shard results in shard order. Null disables resolution.
    const core::Catalog* catalog = nullptr;
  };

  RpcClient(net::Transport* transport, Options options)
      : transport_(transport), options_(std::move(options)) {}

  /// One-at-a-time RPC (xquery::RpcHandler).
  StatusOr<xdm::Sequence> Execute(const xquery::RpcCall& call) override;

  /// Sends a Bulk RPC request to `dest_uri` and returns the full response.
  StatusOr<soap::XrpcResponse> ExecuteBulk(const std::string& dest_uri,
                                           soap::XrpcRequest request);

  /// BulkRpcChannel: dispatches one Bulk RPC per destination. The requests
  /// of one invocation are logically parallel (MonetDB dispatches them
  /// concurrently), so network time is accounted as the maximum over
  /// destinations rather than their sum; with Options::dispatch_pool the
  /// dispatch is physically parallel as well and wall-clock time follows
  /// the same max-over-destinations shape.
  ///
  /// Error isolation: every destination is attempted regardless of other
  /// destinations' failures; on any failure the status of the
  /// lowest-indexed failing destination is returned (response order always
  /// matches destination order, so out-of-order completion cannot leak
  /// into the result).
  StatusOr<std::vector<soap::XrpcResponse>> ExecuteBulkAll(
      std::vector<Destination> destinations) override;

  /// BulkRpcChannel: counts a refetch-and-re-route after a StaleCatalog
  /// fence into the shared metrics registry.
  void NoteStaleReroute() override {
    if (net::RpcMetrics* m = EventMetrics()) m->RecordStaleCatalogReroute();
  }

  /// Peers that participated in calls made through this client
  /// (transitively, via response piggybacking). Includes direct callees.
  /// Only stable once no ExecuteBulkAll is in flight.
  const std::set<std::string>& participating_peers() const {
    return participating_peers_;
  }

  /// Accumulated modeled network time of all exchanges (parallel groups
  /// contribute their critical path, not their sum).
  int64_t network_micros() const;
  /// Number of request messages sent.
  int64_t requests_sent() const;
  /// True if any request carried updCall (drives the 2PC decision).
  bool sent_updating() const;
  /// Accumulated measured processing time at destination peers.
  int64_t remote_micros() const;

  const Options& options() const { return options_; }

 private:
  /// Accounting of one wire exchange, kept local to the exchange so that
  /// concurrent per-destination calls never contend on — or interleave
  /// into — the client-wide tallies.
  struct ExchangeStats {
    int64_t network_micros = 0;
    int64_t remote_micros = 0;
    int64_t requests_sent = 0;
    bool sent_updating = false;
    std::vector<std::string> peers;  ///< dest + piggybacked participants
  };

  /// Performs one Bulk RPC exchange, writing its accounting into `stats`
  /// instead of the client tallies. Thread-safe: reads only immutable
  /// state (options_, transport_).
  StatusOr<soap::XrpcResponse> ExchangeOnce(const std::string& dest_uri,
                                            soap::XrpcRequest request,
                                            ExchangeStats* stats) const;

  /// ExchangeOnce plus replica failover (DESIGN.md §14): on a retriable
  /// failure (kNetworkError — dial refusal, abandoned timeout, open
  /// breaker) of a NON-updating request, re-issues the exchange to the
  /// next fallback URI, re-stamping the remaining deadline budget per
  /// candidate. Updating requests never fail over (at-most-once), and a
  /// StaleCatalog fault is returned immediately — every replica shares the
  /// catalog, so re-dialing cannot help; the caller re-routes instead.
  StatusOr<soap::XrpcResponse> ExchangeWithFailover(const Destination& dest,
                                                    ExchangeStats* stats) const;

  /// Registry for failover / stale-catalog counters: the fan-out registry
  /// when wired (it aliases the network-wide one), else the per-exchange
  /// registry, else null.
  net::RpcMetrics* EventMetrics() const {
    return options_.dispatch_metrics != nullptr ? options_.dispatch_metrics
                                                : options_.metrics;
  }

  /// Folds exchange accounting into the client tallies (mu_).
  /// `network_micros` is passed separately: serial callers add the
  /// exchange's own cost, ExecuteBulkAll adds the group's critical path.
  void MergeStats(const ExchangeStats& stats, int64_t network_micros);

  net::Transport* transport_;
  Options options_;

  mutable std::mutex mu_;  ///< guards the tallies below
  std::set<std::string> participating_peers_;
  int64_t network_micros_ = 0;
  int64_t remote_micros_ = 0;
  int64_t requests_sent_ = 0;
  bool sent_updating_ = false;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_RPC_CLIENT_H_
