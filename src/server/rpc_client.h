#ifndef XRPC_SERVER_RPC_CLIENT_H_
#define XRPC_SERVER_RPC_CLIENT_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "base/statusor.h"
#include "net/rpc_metrics.h"
#include "net/transport.h"
#include "server/engine.h"
#include "soap/message.h"
#include "xquery/context.h"

namespace xrpc::server {

/// Isolation level of outgoing XRPC calls (declare option xrpc:isolation).
enum class IsolationLevel {
  kNone,        ///< rule RFr / RFu: every call sees the current state
  kRepeatable,  ///< rule R'Fr / R'Fu: calls of one query share one state
};

/// Client side of the SOAP XRPC protocol: marshals calls into request
/// envelopes, POSTs them over a transport, and unmarshals responses.
///
/// One RpcClient instance serves one query: it carries the query's
/// isolation options, accumulates the set of participating peers
/// (piggybacked in responses, for WS-Coordinator registration) and the
/// modeled network time.
///
/// Execute() implements xquery::RpcHandler — one call per request, the
/// one-at-a-time mechanism. ExecuteBulk() sends a prepared Bulk RPC
/// request; the relational engine and the dispatcher use it to amortize
/// latency over many calls.
class RpcClient : public xquery::RpcHandler, public BulkRpcChannel {
 public:
  struct Options {
    IsolationLevel isolation = IsolationLevel::kNone;
    std::optional<soap::QueryId> query_id;  ///< required for kRepeatable
    /// Suppress the queryID for provably simple queries (single non-nested
    /// XRPC call), which get repeatable reads for free (Section 3.2).
    bool simple_query = false;
    /// Optional observability registry: every exchange is recorded with its
    /// destination, envelope sizes and modeled latency. Leave null when the
    /// transport is a metrics-equipped RetryingTransport (which records at
    /// the per-attempt wire level) to avoid double counting.
    net::RpcMetrics* metrics = nullptr;
  };

  RpcClient(net::Transport* transport, Options options)
      : transport_(transport), options_(std::move(options)) {}

  /// One-at-a-time RPC (xquery::RpcHandler).
  StatusOr<xdm::Sequence> Execute(const xquery::RpcCall& call) override;

  /// Sends a Bulk RPC request to `dest_uri` and returns the full response.
  StatusOr<soap::XrpcResponse> ExecuteBulk(const std::string& dest_uri,
                                           soap::XrpcRequest request);

  /// BulkRpcChannel: dispatches one Bulk RPC per destination. The requests
  /// of one invocation are logically parallel (MonetDB dispatches them
  /// concurrently), so network time is accounted as the maximum over
  /// destinations rather than their sum.
  StatusOr<std::vector<soap::XrpcResponse>> ExecuteBulkAll(
      std::vector<Destination> destinations) override;

  /// Peers that participated in calls made through this client
  /// (transitively, via response piggybacking). Includes direct callees.
  const std::set<std::string>& participating_peers() const {
    return participating_peers_;
  }

  /// Accumulated modeled network time of all exchanges.
  int64_t network_micros() const { return network_micros_; }
  /// Number of request messages sent.
  int64_t requests_sent() const { return requests_sent_; }
  /// True if any request carried updCall (drives the 2PC decision).
  bool sent_updating() const { return sent_updating_; }
  /// Accumulated measured processing time at destination peers.
  int64_t remote_micros() const { return remote_micros_; }

  const Options& options() const { return options_; }

 private:
  net::Transport* transport_;
  Options options_;
  std::set<std::string> participating_peers_;
  int64_t network_micros_ = 0;
  int64_t remote_micros_ = 0;
  int64_t requests_sent_ = 0;
  bool sent_updating_ = false;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_RPC_CLIENT_H_
