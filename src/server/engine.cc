#include "server/engine.h"

#include "xquery/interpreter.h"
#include "xquery/parser.h"

namespace xrpc::server {

StatusOr<std::vector<xdm::Sequence>> InterpreterEngine::ExecuteRequest(
    const soap::XrpcRequest& request, const CallContext& context,
    xquery::PendingUpdateList* pul) {
  // Locate the module: either re-parse its source (cache-less) or use the
  // resolver's pre-parsed representation (function cache).
  const xquery::LibraryModule* module = nullptr;
  xquery::LibraryModule reparsed;
  if (options_.reparse_per_request) {
    if (options_.registry == nullptr) {
      return Status::Internal("reparse_per_request requires a registry");
    }
    XRPC_ASSIGN_OR_RETURN(const std::string* source,
                          options_.registry->SourceOf(request.module_ns));
    XRPC_ASSIGN_OR_RETURN(reparsed, xquery::ParseLibraryModule(*source));
    module = &reparsed;
  } else {
    if (context.modules == nullptr) {
      return Status::Internal("no module resolver configured");
    }
    XRPC_ASSIGN_OR_RETURN(
        module, context.modules->Resolve(request.module_ns, request.location));
  }

  const xquery::FunctionDef* def = nullptr;
  for (const xquery::FunctionDef& f : module->prolog.functions) {
    if (f.name.local == request.method && f.arity() == request.arity) {
      def = &f;
      break;
    }
  }
  if (def == nullptr) {
    return Status::NotFound("function " + request.method + "#" +
                            std::to_string(request.arity) +
                            " not found in module " + request.module_ns);
  }
  xquery::Interpreter::Config config;
  config.documents = context.documents;
  config.modules = context.modules;
  config.rpc = context.rpc;
  config.cancel = context.cancel;
  xquery::Interpreter interp(config);

  std::vector<xdm::Sequence> results;
  results.reserve(request.calls.size());
  for (const std::vector<xdm::Sequence>& params : request.calls) {
    if (context.cancel != nullptr) {
      // A bulk request is cancelled between calls too, not only inside the
      // interpreter: with many short calls the per-call boundary is the
      // dominant poll point.
      XRPC_RETURN_IF_ERROR(context.cancel->CheckCancelled());
    }
    XRPC_ASSIGN_OR_RETURN(xquery::QueryResult result,
                          interp.CallModuleFunction(*module, *def, params));
    if (pul != nullptr && !result.updates.empty()) {
      pul->BeginCall();
      pul->Merge(std::move(result.updates));
    }
    results.push_back(std::move(result.sequence));
  }
  return results;
}

}  // namespace xrpc::server
