#ifndef XRPC_SERVER_ISOLATION_H_
#define XRPC_SERVER_ISOLATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "base/statusor.h"
#include "server/database.h"
#include "soap/message.h"
#include "xquery/context.h"
#include "xquery/update.h"

namespace xrpc::server {

/// Per-query state a peer keeps for repeatable-read isolation (rule R'Fr /
/// R'Fu): the pinned database state db_p(t_q^p) — realized as lazy private
/// document clones — plus the accumulated pending update lists ∆_q^p, the
/// 2PC state, and the snapshot expiry deadline.
struct QuerySession {
  soap::QueryId id;

  /// Lazily cloned documents: name -> (private tree, base version).
  std::map<std::string, std::pair<xml::NodePtr, uint64_t>> docs;

  /// Union of pending update lists of all updating calls handled so far.
  xquery::PendingUpdateList pul;

  /// Steady-clock deadline (microseconds) after which the snapshot may be
  /// discarded.
  int64_t deadline_us = 0;

  bool prepared = false;  ///< 2PC: Prepare() succeeded and the PUL is logged

  /// Documents (by name) the logged PUL writes, determined at Prepare.
  std::set<std::string> written_docs;

  /// Sharded-fragment provenance of this session's writes (DESIGN.md §17):
  /// doc_name -> the fragment it realizes and the data version a commit of
  /// this session will produce (scope data_version at execute time + 1).
  /// Filtered to written_docs at Prepare, voted back to the coordinator,
  /// and installed as the applied data version when the PUL commits.
  struct FragmentTarget {
    std::string collection;
    int shard_index = 0;
    uint64_t target_version = 0;
  };
  std::map<std::string, FragmentTarget> fragment_targets;
};

/// Manages repeatable-read query sessions at one peer, including snapshot
/// expiry and the bookkeeping of expired queryIDs ("the local XRPC handler
/// should still remember expired queryIDs, such that it can give errors on
/// XRPC requests that arrive too late").
class IsolationManager {
 public:
  /// `now_us` supplies monotonic time; injectable for deterministic tests.
  explicit IsolationManager(Database* db,
                            std::function<int64_t()> now_us = nullptr);

  IsolationManager(const IsolationManager&) = delete;
  IsolationManager& operator=(const IsolationManager&) = delete;

  /// Returns the session for `id`, creating it on first contact (pinning
  /// t_q^p = now). Expired or discarded ids yield kIsolationError.
  StatusOr<QuerySession*> GetSession(const soap::QueryId& id);

  /// Looks up an existing session without creating one.
  StatusOr<QuerySession*> FindSession(const std::string& id);

  /// Drops the session (after Commit/Rollback completed).
  void EndSession(const std::string& id);

  /// Discards sessions whose timeout has passed, remembering their ids.
  /// Sessions that voted yes at Prepare (`prepared == true`) are exempt:
  /// their PUL is on the stable log and must survive until the
  /// coordinator's decision arrives — expiring them would silently break
  /// the 2PC promise to commit.
  void ExpireSessions();

  /// Reinstalls a session reconstructed from the WAL during crash recovery
  /// (prepared, in-doubt). Replaces any session with the same id.
  QuerySession* RestoreSession(std::unique_ptr<QuerySession> session);

  /// Drops ALL volatile session state (the in-process crash simulation:
  /// what a process restart loses).
  void Reset();

  size_t active_sessions() const;

  /// A DocumentProvider serving a session's pinned state: documents are
  /// cloned from the live database on first access and cached in the
  /// session, so every call of the query sees the same trees.
  class SnapshotProvider : public xquery::DocumentProvider {
   public:
    SnapshotProvider(Database* db, QuerySession* session)
        : db_(db), session_(session) {}
    StatusOr<xml::NodePtr> GetDocument(const std::string& uri) override;

   private:
    Database* db_;
    QuerySession* session_;
  };

  Database* database() { return db_; }
  int64_t NowMicros() const { return now_us_(); }

  /// Replaces the time source (deterministic expiry tests).
  void SetTimeSource(std::function<int64_t()> now_us) {
    now_us_ = std::move(now_us);
  }

 private:
  Database* db_;
  std::function<int64_t()> now_us_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<QuerySession>> sessions_;
  /// Expired ids, with per-host latest expired timestamp for pruning.
  std::set<std::string> expired_ids_;
  std::map<std::string, int64_t> latest_expired_timestamp_by_host_;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_ISOLATION_H_
