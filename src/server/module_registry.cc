#include "server/module_registry.h"

#include "xquery/parser.h"

namespace xrpc::server {

Status ModuleRegistry::RegisterModule(std::string_view source_text,
                                      const std::string& location) {
  XRPC_ASSIGN_OR_RETURN(xquery::LibraryModule parsed,
                        xquery::ParseLibraryModule(source_text));
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = modules_[parsed.target_ns];
  e.module = std::make_unique<xquery::LibraryModule>(std::move(parsed));
  e.source = std::string(source_text);
  e.location = location;
  return Status::OK();
}

StatusOr<const xquery::LibraryModule*> ModuleRegistry::Resolve(
    const std::string& target_ns, const std::string& location) {
  (void)location;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = modules_.find(target_ns);
  if (it == modules_.end()) {
    return Status::NotFound("could not load module: " + target_ns);
  }
  return static_cast<const xquery::LibraryModule*>(it->second.module.get());
}

StatusOr<const std::string*> ModuleRegistry::SourceOf(
    const std::string& target_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = modules_.find(target_ns);
  if (it == modules_.end()) {
    return Status::NotFound("could not load module: " + target_ns);
  }
  return &it->second.source;
}

std::vector<std::string> ModuleRegistry::Namespaces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [ns, entry] : modules_) out.push_back(ns);
  return out;
}

}  // namespace xrpc::server
