#include "server/database.h"

#include "xml/parser.h"

namespace xrpc::server {

void Database::PutDocument(const std::string& name, xml::NodePtr tree) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = docs_[name];
  e.tree = std::move(tree);
  ++e.version;
}

Status Database::PutDocumentText(const std::string& name,
                                 std::string_view xml_text) {
  XRPC_ASSIGN_OR_RETURN(xml::NodePtr doc, xml::ParseXml(xml_text));
  PutDocument(name, std::move(doc));
  return Status::OK();
}

StatusOr<xml::NodePtr> Database::GetDocument(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) {
    return Status::NotFound("document not found: " + name);
  }
  return it->second.tree;
}

StatusOr<std::pair<xml::NodePtr, uint64_t>> Database::GetWithVersion(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) {
    return Status::NotFound("document not found: " + name);
  }
  return std::pair<xml::NodePtr, uint64_t>(it->second.tree,
                                           it->second.version);
}

Status Database::ReplaceIfVersion(const std::string& name,
                                  uint64_t expected_version,
                                  xml::NodePtr tree) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = docs_[name];
  if (e.version != expected_version) {
    return Status::IsolationError(
        "write-write conflict on document " + name + ": expected version " +
        std::to_string(expected_version) + ", found " +
        std::to_string(e.version));
  }
  e.tree = std::move(tree);
  ++e.version;
  return Status::OK();
}

uint64_t Database::VersionOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  return it == docs_.end() ? 0 : it->second.version;
}

uint64_t Database::AppliedDataVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  return it == docs_.end() ? 0 : it->second.applied_data_version;
}

void Database::SetAppliedDataVersion(const std::string& name,
                                     uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) return;
  if (version > it->second.applied_data_version) {
    it->second.applied_data_version = version;
  }
}

std::vector<std::string> Database::DocumentNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(docs_.size());
  for (const auto& [name, entry] : docs_) names.push_back(name);
  return names;
}

bool Database::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.count(name) > 0;
}

}  // namespace xrpc::server
