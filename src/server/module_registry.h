#ifndef XRPC_SERVER_MODULE_REGISTRY_H_
#define XRPC_SERVER_MODULE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "xquery/context.h"
#include "xquery/module.h"

namespace xrpc::server {

/// Holds the XQuery modules a peer can execute XRPC requests against,
/// keyed by target namespace (the `module` attribute of xrpc:request).
///
/// The registry keeps the original module source text so that execution
/// engines without a cache can measure genuine recompilation cost — the
/// "No Function Cache" configuration of Table 2 reparses from here on
/// every request.
class ModuleRegistry : public xquery::ModuleResolver {
 public:
  ModuleRegistry() = default;
  ModuleRegistry(const ModuleRegistry&) = delete;
  ModuleRegistry& operator=(const ModuleRegistry&) = delete;

  /// Parses and registers a library module; `location` is the URL the
  /// module is nominally served from (matched against at-hints).
  Status RegisterModule(std::string_view source_text,
                        const std::string& location = "");

  /// ModuleResolver: find by target namespace (location is advisory).
  StatusOr<const xquery::LibraryModule*> Resolve(
      const std::string& target_ns, const std::string& location) override;

  /// Source text of a module (for cache-less recompilation).
  StatusOr<const std::string*> SourceOf(const std::string& target_ns) const;

  std::vector<std::string> Namespaces() const;

 private:
  struct Entry {
    std::unique_ptr<xquery::LibraryModule> module;
    std::string source;
    std::string location;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> modules_;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_MODULE_REGISTRY_H_
