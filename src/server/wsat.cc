#include "server/wsat.h"

#include "net/uri.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrpc::server {

namespace {

using xml::Node;
using xml::NodeKind;
using xml::NodePtr;
using xml::QName;

const char* OpName(WsatOp op) {
  switch (op) {
    case WsatOp::kPrepare:
      return "prepare";
    case WsatOp::kCommit:
      return "commit";
    case WsatOp::kRollback:
      return "rollback";
  }
  return "prepare";
}

std::string Serialize(const WsatMessage& m, bool response) {
  NodePtr elem = Node::NewElement(
      QName(kWsatNs, response ? "response" : "request", "wsat"));
  elem->SetAttribute(Node::NewAttribute(QName("op"), OpName(m.op)));
  elem->SetAttribute(Node::NewAttribute(QName("queryID"), m.query_id));
  if (response) {
    elem->SetAttribute(
        Node::NewAttribute(QName("vote"), m.ok ? "ok" : "abort"));
    if (!m.reason.empty()) {
      elem->SetAttribute(Node::NewAttribute(QName("reason"), m.reason));
    }
  }
  xml::SerializeOptions opts;
  opts.xml_declaration = true;
  return xml::SerializeNode(*elem, opts);
}

}  // namespace

std::string SerializeWsatRequest(const WsatMessage& message) {
  return Serialize(message, /*response=*/false);
}

std::string SerializeWsatResponse(const WsatMessage& message) {
  return Serialize(message, /*response=*/true);
}

StatusOr<WsatMessage> ParseWsatMessage(std::string_view text) {
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text));
  const Node* elem = nullptr;
  for (const NodePtr& c : doc->children()) {
    if (c->kind() == NodeKind::kElement) elem = c.get();
  }
  if (elem == nullptr || elem->name().ns_uri != kWsatNs) {
    return Status::InvalidArgument("not a WS-AT message");
  }
  WsatMessage out;
  if (const Node* a = elem->FindAttribute(QName("op"))) {
    if (a->value() == "prepare") {
      out.op = WsatOp::kPrepare;
    } else if (a->value() == "commit") {
      out.op = WsatOp::kCommit;
    } else if (a->value() == "rollback") {
      out.op = WsatOp::kRollback;
    } else {
      return Status::InvalidArgument("unknown WS-AT op: " + a->value());
    }
  }
  if (const Node* a = elem->FindAttribute(QName("queryID"))) {
    out.query_id = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("vote"))) {
    out.ok = a->value() == "ok";
  }
  if (const Node* a = elem->FindAttribute(QName("reason"))) {
    out.reason = a->value();
  }
  return out;
}

Status StableLog::Append(Record record) {
  if (has_injected_) {
    has_injected_ = false;
    return injected_;
  }
  records_.push_back(std::move(record));
  return Status::OK();
}

void StableLog::FailNextAppend(Status status) {
  injected_ = std::move(status);
  has_injected_ = true;
}

namespace {

StatusOr<WsatMessage> SendWsat(net::Transport* transport,
                               const std::string& participant, WsatOp op,
                               const std::string& query_id) {
  WsatMessage req;
  req.op = op;
  req.query_id = query_id;
  // Route to the peer's WS-AT endpoint path.
  XRPC_ASSIGN_OR_RETURN(net::XrpcUri uri, net::ParseXrpcUri(participant));
  uri.path = kWsatPath;
  XRPC_ASSIGN_OR_RETURN(
      net::PostResult result,
      transport->Post(uri.ToString(), SerializeWsatRequest(req)));
  return ParseWsatMessage(result.body);
}

}  // namespace

StatusOr<CommitOutcome> RunTwoPhaseCommit(
    net::Transport* transport, const std::vector<std::string>& participants,
    const std::string& query_id) {
  CommitOutcome outcome;

  // Phase 1: Prepare on every participant.
  std::vector<std::string> prepared;
  for (const std::string& p : participants) {
    ++outcome.prepares_sent;
    auto vote = SendWsat(transport, p, WsatOp::kPrepare, query_id);
    if (!vote.ok() || !vote.value().ok) {
      outcome.abort_reason = vote.ok()
                                 ? vote.value().reason
                                 : vote.status().ToString();
      // Phase 2 (abort): roll back everyone reached so far (and the voter
      // that answered abort, which discards its own state anyway).
      for (const std::string& q : prepared) {
        ++outcome.rollbacks_sent;
        (void)SendWsat(transport, q, WsatOp::kRollback, query_id);
      }
      outcome.committed = false;
      return outcome;
    }
    prepared.push_back(p);
  }

  // Phase 2: Commit.
  for (const std::string& p : participants) {
    ++outcome.commits_sent;
    auto done = SendWsat(transport, p, WsatOp::kCommit, query_id);
    if (!done.ok() || !done.value().ok) {
      // A commit failure after unanimous prepare is a serious condition;
      // surface it (real WS-AT would retry until success).
      return Status::TransactionError(
          "commit failed at " + p + ": " +
          (done.ok() ? done.value().reason : done.status().ToString()));
    }
  }
  outcome.committed = true;
  return outcome;
}

}  // namespace xrpc::server
