#include "server/wsat.h"

#include <algorithm>

#include "base/string_util.h"
#include "net/uri.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrpc::server {

namespace {

using xml::Node;
using xml::NodeKind;
using xml::NodePtr;
using xml::QName;

const char* OpName(WsatOp op) {
  switch (op) {
    case WsatOp::kPrepare:
      return "prepare";
    case WsatOp::kCommit:
      return "commit";
    case WsatOp::kRollback:
      return "rollback";
    case WsatOp::kInquire:
      return "inquire";
    case WsatOp::kRepair:
      return "repair";
  }
  return "prepare";
}

/// Parses an unsigned 64-bit decimal (data versions and digests exceed the
/// int64 range ParseInt64 covers).
StatusOr<uint64_t> ParseU64(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty unsigned integer");
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::ParseError("not an unsigned integer: " + std::string(s));
    }
    uint64_t next = v * 10 + static_cast<uint64_t>(c - '0');
    if (next / 10 != v) {
      return Status::ParseError("unsigned integer overflow: " +
                                std::string(s));
    }
    v = next;
  }
  return v;
}

/// Renders a WrittenFragment as a <wsat:frag/> child (Prepare vote replies
/// and the PREPARED payload share the shape).
NodePtr FragmentElement(const WrittenFragment& f) {
  NodePtr e = Node::NewElement(QName(kWsatNs, "frag", "wsat"));
  e->SetAttribute(Node::NewAttribute(QName("doc"), f.doc));
  e->SetAttribute(Node::NewAttribute(QName("collection"), f.collection));
  e->SetAttribute(
      Node::NewAttribute(QName("shard"), std::to_string(f.shard_index)));
  e->SetAttribute(
      Node::NewAttribute(QName("version"), std::to_string(f.version)));
  return e;
}

StatusOr<WrittenFragment> ParseFragmentElement(const Node& elem) {
  WrittenFragment f;
  if (const Node* a = elem.FindAttribute(QName("doc"))) f.doc = a->value();
  if (const Node* a = elem.FindAttribute(QName("collection"))) {
    f.collection = a->value();
  }
  if (const Node* a = elem.FindAttribute(QName("shard"))) {
    XRPC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(a->value()));
    f.shard_index = static_cast<int>(v);
  }
  if (const Node* a = elem.FindAttribute(QName("version"))) {
    XRPC_ASSIGN_OR_RETURN(f.version, ParseU64(a->value()));
  }
  return f;
}

std::string Serialize(const WsatMessage& m, bool response) {
  NodePtr elem = Node::NewElement(
      QName(kWsatNs, response ? "response" : "request", "wsat"));
  elem->SetAttribute(Node::NewAttribute(QName("op"), OpName(m.op)));
  elem->SetAttribute(Node::NewAttribute(QName("queryID"), m.query_id));
  if (response) {
    elem->SetAttribute(
        Node::NewAttribute(QName("vote"), m.ok ? "ok" : "abort"));
    if (!m.reason.empty()) {
      elem->SetAttribute(Node::NewAttribute(QName("reason"), m.reason));
    }
    if (!m.outcome.empty()) {
      elem->SetAttribute(Node::NewAttribute(QName("outcome"), m.outcome));
    }
    for (const WrittenFragment& f : m.fragments) {
      elem->AppendChild(FragmentElement(f));
    }
  }
  if (m.op == WsatOp::kRepair) {
    elem->SetAttribute(Node::NewAttribute(QName("collection"), m.collection));
    elem->SetAttribute(
        Node::NewAttribute(QName("shard"), std::to_string(m.shard_index)));
    elem->SetAttribute(Node::NewAttribute(QName("doc"), m.doc));
    if (!response) {
      elem->SetAttribute(Node::NewAttribute(
          QName("fromVersion"), std::to_string(m.from_version)));
      if (m.want_full) {
        elem->SetAttribute(Node::NewAttribute(QName("wantFull"), "1"));
      }
    } else {
      elem->SetAttribute(
          Node::NewAttribute(QName("version"), std::to_string(m.version)));
      elem->SetAttribute(
          Node::NewAttribute(QName("digest"), std::to_string(m.digest)));
      for (const WsatMessage::RepairDelta& d : m.deltas) {
        NodePtr de = Node::NewElement(QName(kWsatNs, "delta", "wsat"));
        de->SetAttribute(
            Node::NewAttribute(QName("version"), std::to_string(d.version)));
        de->SetAttribute(Node::NewAttribute(QName("queryID"), d.query_id));
        de->AppendChild(Node::NewText(d.pul));
        elem->AppendChild(std::move(de));
      }
      if (!m.full_body.empty()) {
        NodePtr body = Node::NewElement(QName(kWsatNs, "body", "wsat"));
        body->AppendChild(Node::NewText(m.full_body));
        elem->AppendChild(std::move(body));
      }
    }
  }
  xml::SerializeOptions opts;
  opts.xml_declaration = true;
  return xml::SerializeNode(*elem, opts);
}

}  // namespace

std::string SerializeWsatRequest(const WsatMessage& message) {
  return Serialize(message, /*response=*/false);
}

std::string SerializeWsatResponse(const WsatMessage& message) {
  return Serialize(message, /*response=*/true);
}

StatusOr<WsatMessage> ParseWsatMessage(std::string_view text) {
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text));
  const Node* elem = nullptr;
  for (const NodePtr& c : doc->children()) {
    if (c->kind() == NodeKind::kElement) elem = c.get();
  }
  if (elem == nullptr || elem->name().ns_uri != kWsatNs) {
    return Status::InvalidArgument("not a WS-AT message");
  }
  WsatMessage out;
  if (const Node* a = elem->FindAttribute(QName("op"))) {
    if (a->value() == "prepare") {
      out.op = WsatOp::kPrepare;
    } else if (a->value() == "commit") {
      out.op = WsatOp::kCommit;
    } else if (a->value() == "rollback") {
      out.op = WsatOp::kRollback;
    } else if (a->value() == "inquire") {
      out.op = WsatOp::kInquire;
    } else if (a->value() == "repair") {
      out.op = WsatOp::kRepair;
    } else {
      return Status::InvalidArgument("unknown WS-AT op: " + a->value());
    }
  }
  if (const Node* a = elem->FindAttribute(QName("queryID"))) {
    out.query_id = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("vote"))) {
    out.ok = a->value() == "ok";
  }
  if (const Node* a = elem->FindAttribute(QName("reason"))) {
    out.reason = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("outcome"))) {
    out.outcome = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("collection"))) {
    out.collection = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("shard"))) {
    XRPC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(a->value()));
    out.shard_index = static_cast<int>(v);
  }
  if (const Node* a = elem->FindAttribute(QName("doc"))) {
    out.doc = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("fromVersion"))) {
    XRPC_ASSIGN_OR_RETURN(out.from_version, ParseU64(a->value()));
  }
  if (const Node* a = elem->FindAttribute(QName("wantFull"))) {
    out.want_full = a->value() == "1";
  }
  if (const Node* a = elem->FindAttribute(QName("version"))) {
    XRPC_ASSIGN_OR_RETURN(out.version, ParseU64(a->value()));
  }
  if (const Node* a = elem->FindAttribute(QName("digest"))) {
    XRPC_ASSIGN_OR_RETURN(out.digest, ParseU64(a->value()));
  }
  for (const NodePtr& child : elem->children()) {
    if (child->kind() != NodeKind::kElement) continue;
    if (child->name().local == "frag") {
      XRPC_ASSIGN_OR_RETURN(WrittenFragment f, ParseFragmentElement(*child));
      out.fragments.push_back(std::move(f));
    } else if (child->name().local == "delta") {
      WsatMessage::RepairDelta d;
      if (const Node* a = child->FindAttribute(QName("version"))) {
        XRPC_ASSIGN_OR_RETURN(d.version, ParseU64(a->value()));
      }
      if (const Node* a = child->FindAttribute(QName("queryID"))) {
        d.query_id = a->value();
      }
      d.pul = child->StringValue();
      out.deltas.push_back(std::move(d));
    } else if (child->name().local == "body") {
      out.full_body = child->StringValue();
    }
  }
  return out;
}

std::string SerializePreparedPayload(const PreparedPayload& payload) {
  NodePtr elem = Node::NewElement(QName(kWsatNs, "prepared", "wsat"));
  elem->SetAttribute(
      Node::NewAttribute(QName("coordinator"), payload.coordinator));
  for (const auto& [name, version] : payload.docs) {
    NodePtr d = Node::NewElement(QName(kWsatNs, "doc", "wsat"));
    d->SetAttribute(Node::NewAttribute(QName("name"), name));
    d->SetAttribute(
        Node::NewAttribute(QName("version"), std::to_string(version)));
    elem->AppendChild(std::move(d));
  }
  for (const WrittenFragment& f : payload.fragments) {
    elem->AppendChild(FragmentElement(f));
  }
  NodePtr pul = Node::NewElement(QName(kWsatNs, "pul", "wsat"));
  pul->AppendChild(Node::NewText(payload.pul));
  elem->AppendChild(std::move(pul));
  return xml::SerializeNode(*elem);
}

StatusOr<PreparedPayload> ParsePreparedPayload(std::string_view text) {
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text));
  const Node* elem = nullptr;
  for (const NodePtr& c : doc->children()) {
    if (c->kind() == NodeKind::kElement) elem = c.get();
  }
  if (elem == nullptr || elem->name().ns_uri != kWsatNs ||
      elem->name().local != "prepared") {
    return Status::ParseError("not a PREPARED payload");
  }
  PreparedPayload out;
  if (const Node* a = elem->FindAttribute(QName("coordinator"))) {
    out.coordinator = a->value();
  }
  for (const NodePtr& child : elem->children()) {
    if (child->kind() != NodeKind::kElement) continue;
    if (child->name().local == "doc") {
      std::string name, version;
      if (const Node* a = child->FindAttribute(QName("name"))) {
        name = a->value();
      }
      if (const Node* a = child->FindAttribute(QName("version"))) {
        version = a->value();
      }
      XRPC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(version));
      out.docs.emplace_back(name, static_cast<uint64_t>(v));
    } else if (child->name().local == "frag") {
      XRPC_ASSIGN_OR_RETURN(WrittenFragment f, ParseFragmentElement(*child));
      out.fragments.push_back(std::move(f));
    } else if (child->name().local == "pul") {
      out.pul = child->StringValue();
    }
  }
  return out;
}

StatusOr<WsatMessage> SendWsatMessage(net::Transport* transport,
                                      const std::string& participant,
                                      WsatOp op, const std::string& query_id) {
  WsatMessage req;
  req.op = op;
  req.query_id = query_id;
  return SendWsatEnvelope(transport, participant, req);
}

StatusOr<WsatMessage> SendWsatEnvelope(net::Transport* transport,
                                       const std::string& participant,
                                       const WsatMessage& request) {
  // Route to the peer's WS-AT endpoint path.
  XRPC_ASSIGN_OR_RETURN(net::XrpcUri uri, net::ParseXrpcUri(participant));
  uri.path = kWsatPath;
  XRPC_ASSIGN_OR_RETURN(
      net::PostResult result,
      transport->Post(uri.ToString(), SerializeWsatRequest(request)));
  return ParseWsatMessage(result.body);
}

namespace {

/// Deterministic (jitter-free) backoff before retry number `retry`
/// (1-based), mirroring the RetryingTransport schedule shape.
int64_t BackoffMicros(const net::RetryPolicy& policy, int retry) {
  double backoff = static_cast<double>(policy.initial_backoff_us);
  for (int i = 1; i < retry; ++i) backoff *= policy.backoff_multiplier;
  return std::min(static_cast<int64_t>(backoff), policy.max_backoff_us);
}

}  // namespace

StatusOr<CommitOutcome> RunTwoPhaseCommit(
    net::Transport* transport, const std::vector<std::string>& participants,
    const std::string& query_id, const TwoPhaseCommitOptions& options) {
  CommitOutcome outcome;

  auto abort_all = [&](const std::string& reason) {
    outcome.abort_reason = reason;
    // Phase 2 (abort): roll back everyone. Rollback is idempotent at the
    // participants, so over-delivery (including to the peer that voted
    // abort and already discarded its state) is harmless. Nothing is
    // logged: under presumed abort the absence of a commit decision IS the
    // durable abort record.
    for (const std::string& q : participants) {
      ++outcome.rollbacks_sent;
      (void)SendWsatMessage(transport, q, WsatOp::kRollback, query_id);
    }
    outcome.committed = false;
    return outcome;
  };

  // Phase 1: Prepare on every participant. Yes-votes piggyback the sharded
  // fragments their PUL writes; dedup by collection#shard at max version
  // (every copy of a replicated fragment reports the same target, and the
  // coordinator advances the catalog once).
  for (const std::string& p : participants) {
    ++outcome.prepares_sent;
    auto vote = SendWsatMessage(transport, p, WsatOp::kPrepare, query_id);
    if (!vote.ok() || !vote.value().ok) {
      return abort_all(vote.ok() ? vote.value().reason
                                 : vote.status().ToString());
    }
    for (const WrittenFragment& f : vote.value().fragments) {
      auto same = std::find_if(
          outcome.fragments.begin(), outcome.fragments.end(),
          [&](const WrittenFragment& g) {
            return g.collection == f.collection &&
                   g.shard_index == f.shard_index;
          });
      if (same == outcome.fragments.end()) {
        outcome.fragments.push_back(f);
      } else if (f.version > same->version) {
        same->version = f.version;
      }
    }
  }

  if (options.crash_point == TwoPhaseCommitOptions::CrashPoint::kAfterVotes) {
    // Simulated coordinator crash with the decision still volatile: on
    // recovery nothing is on record, so participants presume abort.
    return Status::NetworkError(
        "coordinator crashed (simulated) after collecting votes");
  }

  // The commit decision becomes durable BEFORE any participant is told to
  // commit; from here on the transaction MUST commit eventually.
  if (options.journal != nullptr) {
    Status logged = options.journal->LogCommitDecision(query_id, participants);
    if (!logged.ok()) {
      return abort_all("coordinator decision log failed: " +
                       logged.ToString());
    }
  }

  if (options.crash_point ==
      TwoPhaseCommitOptions::CrashPoint::kAfterDecisionLog) {
    return Status::NetworkError(
        "coordinator crashed (simulated) after logging the commit decision");
  }

  // Phase 2: Commit, with bounded per-participant retry. A participant
  // that stays unreachable is parked in-doubt; the decision stands.
  bool all_acked = true;
  int max_attempts = std::max(1, options.commit_retry.max_attempts);
  for (const std::string& p : participants) {
    bool acked = false;
    std::string last_error;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) {
        ++outcome.commit_retries;
        if (options.metrics != nullptr) {
          options.metrics->RecordTxnCommitRetry();
        }
        if (options.sleep) {
          options.sleep(BackoffMicros(options.commit_retry, attempt - 1));
        }
      }
      ++outcome.commits_sent;
      auto done = SendWsatMessage(transport, p, WsatOp::kCommit, query_id);
      if (done.ok() && done.value().ok) {
        acked = true;
        break;
      }
      if (done.ok()) {
        // Application-level refusal (not a lost message): retrying cannot
        // change the answer. Park it — recovery/inquiry owns the repair.
        last_error = done.value().reason;
        break;
      }
      last_error = done.status().ToString();
    }
    if (acked) {
      if (options.journal != nullptr) {
        options.journal->RecordCommitAck(query_id, p);
      }
    } else {
      all_acked = false;
      outcome.in_doubt.push_back(p);
      if (options.journal != nullptr) {
        options.journal->ParkInDoubt(query_id, p);
      }
      if (options.metrics != nullptr) {
        options.metrics->RecordTxnInDoubt(+1);
      }
      (void)last_error;
    }
  }
  if (all_acked && options.journal != nullptr) {
    (void)options.journal->LogCommitEnd(query_id);
  }
  outcome.committed = true;
  return outcome;
}

}  // namespace xrpc::server
