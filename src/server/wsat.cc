#include "server/wsat.h"

#include <algorithm>

#include "base/string_util.h"
#include "net/uri.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xrpc::server {

namespace {

using xml::Node;
using xml::NodeKind;
using xml::NodePtr;
using xml::QName;

const char* OpName(WsatOp op) {
  switch (op) {
    case WsatOp::kPrepare:
      return "prepare";
    case WsatOp::kCommit:
      return "commit";
    case WsatOp::kRollback:
      return "rollback";
    case WsatOp::kInquire:
      return "inquire";
  }
  return "prepare";
}

std::string Serialize(const WsatMessage& m, bool response) {
  NodePtr elem = Node::NewElement(
      QName(kWsatNs, response ? "response" : "request", "wsat"));
  elem->SetAttribute(Node::NewAttribute(QName("op"), OpName(m.op)));
  elem->SetAttribute(Node::NewAttribute(QName("queryID"), m.query_id));
  if (response) {
    elem->SetAttribute(
        Node::NewAttribute(QName("vote"), m.ok ? "ok" : "abort"));
    if (!m.reason.empty()) {
      elem->SetAttribute(Node::NewAttribute(QName("reason"), m.reason));
    }
    if (!m.outcome.empty()) {
      elem->SetAttribute(Node::NewAttribute(QName("outcome"), m.outcome));
    }
  }
  xml::SerializeOptions opts;
  opts.xml_declaration = true;
  return xml::SerializeNode(*elem, opts);
}

}  // namespace

std::string SerializeWsatRequest(const WsatMessage& message) {
  return Serialize(message, /*response=*/false);
}

std::string SerializeWsatResponse(const WsatMessage& message) {
  return Serialize(message, /*response=*/true);
}

StatusOr<WsatMessage> ParseWsatMessage(std::string_view text) {
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text));
  const Node* elem = nullptr;
  for (const NodePtr& c : doc->children()) {
    if (c->kind() == NodeKind::kElement) elem = c.get();
  }
  if (elem == nullptr || elem->name().ns_uri != kWsatNs) {
    return Status::InvalidArgument("not a WS-AT message");
  }
  WsatMessage out;
  if (const Node* a = elem->FindAttribute(QName("op"))) {
    if (a->value() == "prepare") {
      out.op = WsatOp::kPrepare;
    } else if (a->value() == "commit") {
      out.op = WsatOp::kCommit;
    } else if (a->value() == "rollback") {
      out.op = WsatOp::kRollback;
    } else if (a->value() == "inquire") {
      out.op = WsatOp::kInquire;
    } else {
      return Status::InvalidArgument("unknown WS-AT op: " + a->value());
    }
  }
  if (const Node* a = elem->FindAttribute(QName("queryID"))) {
    out.query_id = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("vote"))) {
    out.ok = a->value() == "ok";
  }
  if (const Node* a = elem->FindAttribute(QName("reason"))) {
    out.reason = a->value();
  }
  if (const Node* a = elem->FindAttribute(QName("outcome"))) {
    out.outcome = a->value();
  }
  return out;
}

std::string SerializePreparedPayload(const PreparedPayload& payload) {
  NodePtr elem = Node::NewElement(QName(kWsatNs, "prepared", "wsat"));
  elem->SetAttribute(
      Node::NewAttribute(QName("coordinator"), payload.coordinator));
  for (const auto& [name, version] : payload.docs) {
    NodePtr d = Node::NewElement(QName(kWsatNs, "doc", "wsat"));
    d->SetAttribute(Node::NewAttribute(QName("name"), name));
    d->SetAttribute(
        Node::NewAttribute(QName("version"), std::to_string(version)));
    elem->AppendChild(std::move(d));
  }
  NodePtr pul = Node::NewElement(QName(kWsatNs, "pul", "wsat"));
  pul->AppendChild(Node::NewText(payload.pul));
  elem->AppendChild(std::move(pul));
  return xml::SerializeNode(*elem);
}

StatusOr<PreparedPayload> ParsePreparedPayload(std::string_view text) {
  XRPC_ASSIGN_OR_RETURN(NodePtr doc, xml::ParseXml(text));
  const Node* elem = nullptr;
  for (const NodePtr& c : doc->children()) {
    if (c->kind() == NodeKind::kElement) elem = c.get();
  }
  if (elem == nullptr || elem->name().ns_uri != kWsatNs ||
      elem->name().local != "prepared") {
    return Status::ParseError("not a PREPARED payload");
  }
  PreparedPayload out;
  if (const Node* a = elem->FindAttribute(QName("coordinator"))) {
    out.coordinator = a->value();
  }
  for (const NodePtr& child : elem->children()) {
    if (child->kind() != NodeKind::kElement) continue;
    if (child->name().local == "doc") {
      std::string name, version;
      if (const Node* a = child->FindAttribute(QName("name"))) {
        name = a->value();
      }
      if (const Node* a = child->FindAttribute(QName("version"))) {
        version = a->value();
      }
      XRPC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(version));
      out.docs.emplace_back(name, static_cast<uint64_t>(v));
    } else if (child->name().local == "pul") {
      out.pul = child->StringValue();
    }
  }
  return out;
}

StatusOr<WsatMessage> SendWsatMessage(net::Transport* transport,
                                      const std::string& participant,
                                      WsatOp op, const std::string& query_id) {
  WsatMessage req;
  req.op = op;
  req.query_id = query_id;
  // Route to the peer's WS-AT endpoint path.
  XRPC_ASSIGN_OR_RETURN(net::XrpcUri uri, net::ParseXrpcUri(participant));
  uri.path = kWsatPath;
  XRPC_ASSIGN_OR_RETURN(
      net::PostResult result,
      transport->Post(uri.ToString(), SerializeWsatRequest(req)));
  return ParseWsatMessage(result.body);
}

namespace {

/// Deterministic (jitter-free) backoff before retry number `retry`
/// (1-based), mirroring the RetryingTransport schedule shape.
int64_t BackoffMicros(const net::RetryPolicy& policy, int retry) {
  double backoff = static_cast<double>(policy.initial_backoff_us);
  for (int i = 1; i < retry; ++i) backoff *= policy.backoff_multiplier;
  return std::min(static_cast<int64_t>(backoff), policy.max_backoff_us);
}

}  // namespace

StatusOr<CommitOutcome> RunTwoPhaseCommit(
    net::Transport* transport, const std::vector<std::string>& participants,
    const std::string& query_id, const TwoPhaseCommitOptions& options) {
  CommitOutcome outcome;

  auto abort_all = [&](const std::string& reason) {
    outcome.abort_reason = reason;
    // Phase 2 (abort): roll back everyone. Rollback is idempotent at the
    // participants, so over-delivery (including to the peer that voted
    // abort and already discarded its state) is harmless. Nothing is
    // logged: under presumed abort the absence of a commit decision IS the
    // durable abort record.
    for (const std::string& q : participants) {
      ++outcome.rollbacks_sent;
      (void)SendWsatMessage(transport, q, WsatOp::kRollback, query_id);
    }
    outcome.committed = false;
    return outcome;
  };

  // Phase 1: Prepare on every participant.
  for (const std::string& p : participants) {
    ++outcome.prepares_sent;
    auto vote = SendWsatMessage(transport, p, WsatOp::kPrepare, query_id);
    if (!vote.ok() || !vote.value().ok) {
      return abort_all(vote.ok() ? vote.value().reason
                                 : vote.status().ToString());
    }
  }

  if (options.crash_point == TwoPhaseCommitOptions::CrashPoint::kAfterVotes) {
    // Simulated coordinator crash with the decision still volatile: on
    // recovery nothing is on record, so participants presume abort.
    return Status::NetworkError(
        "coordinator crashed (simulated) after collecting votes");
  }

  // The commit decision becomes durable BEFORE any participant is told to
  // commit; from here on the transaction MUST commit eventually.
  if (options.journal != nullptr) {
    Status logged = options.journal->LogCommitDecision(query_id, participants);
    if (!logged.ok()) {
      return abort_all("coordinator decision log failed: " +
                       logged.ToString());
    }
  }

  if (options.crash_point ==
      TwoPhaseCommitOptions::CrashPoint::kAfterDecisionLog) {
    return Status::NetworkError(
        "coordinator crashed (simulated) after logging the commit decision");
  }

  // Phase 2: Commit, with bounded per-participant retry. A participant
  // that stays unreachable is parked in-doubt; the decision stands.
  bool all_acked = true;
  int max_attempts = std::max(1, options.commit_retry.max_attempts);
  for (const std::string& p : participants) {
    bool acked = false;
    std::string last_error;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) {
        ++outcome.commit_retries;
        if (options.metrics != nullptr) {
          options.metrics->RecordTxnCommitRetry();
        }
        if (options.sleep) {
          options.sleep(BackoffMicros(options.commit_retry, attempt - 1));
        }
      }
      ++outcome.commits_sent;
      auto done = SendWsatMessage(transport, p, WsatOp::kCommit, query_id);
      if (done.ok() && done.value().ok) {
        acked = true;
        break;
      }
      if (done.ok()) {
        // Application-level refusal (not a lost message): retrying cannot
        // change the answer. Park it — recovery/inquiry owns the repair.
        last_error = done.value().reason;
        break;
      }
      last_error = done.status().ToString();
    }
    if (acked) {
      if (options.journal != nullptr) {
        options.journal->RecordCommitAck(query_id, p);
      }
    } else {
      all_acked = false;
      outcome.in_doubt.push_back(p);
      if (options.journal != nullptr) {
        options.journal->ParkInDoubt(query_id, p);
      }
      if (options.metrics != nullptr) {
        options.metrics->RecordTxnInDoubt(+1);
      }
      (void)last_error;
    }
  }
  if (all_acked && options.journal != nullptr) {
    (void)options.journal->LogCommitEnd(query_id);
  }
  outcome.committed = true;
  return outcome;
}

}  // namespace xrpc::server
