#ifndef XRPC_SERVER_XRPC_SERVICE_H_
#define XRPC_SERVER_XRPC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "base/statusor.h"
#include "net/rpc_metrics.h"
#include "net/transport.h"
#include "server/database.h"
#include "server/engine.h"
#include "server/isolation.h"
#include "server/module_registry.h"
#include "server/wsat.h"

namespace xrpc::server {

/// The XRPC request handler of one peer (the server side of the protocol,
/// Section 3): listens for SOAP requests, executes the requested module
/// function through the configured execution engine, and replies with a
/// SOAP response or Fault.
///
/// The same endpoint also serves the WS-AtomicTransaction participant
/// interface on path "wsat" (Prepare/Commit/Rollback), implementing rules
/// R'Fu and the 2PC judgments of Section 2.3.
class XrpcService : public net::SoapEndpoint {
 public:
  struct Options {
    /// This peer's own xrpc:// URI, reported in participating-peer lists.
    std::string self_uri;
  };

  /// `outgoing` is the transport used for nested `execute at` calls made
  /// by function bodies (may be null for leaf peers).
  XrpcService(Options options, Database* database, ModuleRegistry* registry,
              ExecutionEngine* engine, net::Transport* outgoing);

  /// net::SoapEndpoint: dispatches on path ("" = XRPC, "wsat" = WS-AT).
  StatusOr<std::string> Handle(const std::string& path,
                               const std::string& body) override;

  IsolationManager& isolation() { return isolation_; }
  StableLog& stable_log() { return log_; }
  Database& database() { return *database_; }
  ModuleRegistry& registry() { return *registry_; }

  /// Statistics.
  int64_t requests_handled() const { return requests_handled_; }
  int64_t calls_handled() const { return calls_handled_; }
  void ResetStats() {
    requests_handled_ = 0;
    calls_handled_ = 0;
  }

  /// Optional shared observability registry; records the server-side
  /// request/call/fault counts under this peer's self URI.
  void set_metrics(net::RpcMetrics* metrics) { metrics_ = metrics; }

 private:
  StatusOr<std::string> HandleXrpc(const std::string& body);
  StatusOr<std::string> HandleWsat(const std::string& body);

  /// Determines which documents a session's PUL writes (maps update target
  /// roots back to document names) and records them in the session.
  Status ResolveWrittenDocs(QuerySession* session);

  /// Applies a PUL against the live database (rule RFu, isolation none).
  Status ApplyImmediate(xquery::PendingUpdateList* pul,
                        xquery::DocumentProvider* docs_used);

  Options options_;
  Database* database_;
  ModuleRegistry* registry_;
  ExecutionEngine* engine_;
  net::Transport* outgoing_;
  IsolationManager isolation_;
  StableLog log_;
  net::RpcMetrics* metrics_ = nullptr;
  // Concurrent HTTP worker threads handle requests in parallel.
  std::atomic<int64_t> requests_handled_{0};
  std::atomic<int64_t> calls_handled_{0};
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_XRPC_SERVICE_H_
