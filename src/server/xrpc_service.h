#ifndef XRPC_SERVER_XRPC_SERVICE_H_
#define XRPC_SERVER_XRPC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "core/catalog.h"
#include "net/rpc_metrics.h"
#include "net/transport.h"
#include "server/database.h"
#include "server/engine.h"
#include "server/isolation.h"
#include "server/module_registry.h"
#include "server/txn_log.h"
#include "server/wsat.h"

namespace xrpc::server {

/// Crash points of the in-process fault harness. When the armed point is
/// reached during WS-AT handling the peer "dies": volatile state becomes
/// unreachable (every request answers kNetworkError) until Restart() —
/// which discards the volatile state and replays the WAL, exactly what a
/// process restart would do.
enum class CrashPoint {
  kNone,
  kAfterPrepareLog,    ///< PREPARED durable, vote never sent
  kAfterVote,          ///< vote delivered, then the peer dies
  kBeforeCommitApply,  ///< Commit received, nothing logged or applied
  kAfterCommitLog,     ///< COMMITTED durable, PUL not applied
};

/// The XRPC request handler of one peer (the server side of the protocol,
/// Section 3): listens for SOAP requests, executes the requested module
/// function through the configured execution engine, and replies with a
/// SOAP response or Fault.
///
/// The same endpoint also serves the WS-AtomicTransaction participant
/// interface on path "wsat" (Prepare/Commit/Rollback/Inquire), implementing
/// rules R'Fu and the 2PC judgments of Section 2.3 — durably: Prepare logs
/// the serialized PUL to the transaction WAL, Commit logs the decision
/// before applying, handlers are idempotent under coordinator retry, and
/// Restart() recovers in-doubt transactions from the WAL (presumed abort +
/// coordinator inquiry). The service also implements the coordinator-side
/// journal, so the same WAL carries both roles' records.
class XrpcService : public net::SoapEndpoint, public CoordinatorJournal {
 public:
  struct Options {
    /// This peer's own xrpc:// URI, reported in participating-peer lists.
    std::string self_uri;
    /// Shared peer catalog (DESIGN.md §13); when set, incoming requests
    /// resolve sharded collection names — both "shard:<collection>" URIs
    /// and a collection's logical name mapped to this peer's local
    /// fragments — and nested `execute at` calls route through it. Null
    /// disables shard awareness.
    const core::Catalog* catalog = nullptr;
  };

  /// `outgoing` is the transport used for nested `execute at` calls made
  /// by function bodies (may be null for leaf peers).
  XrpcService(Options options, Database* database, ModuleRegistry* registry,
              ExecutionEngine* engine, net::Transport* outgoing);

  /// net::SoapEndpoint: dispatches on path ("" = XRPC, "wsat" = WS-AT).
  StatusOr<std::string> Handle(const std::string& path,
                               const std::string& body) override;

  IsolationManager& isolation() { return isolation_; }
  TxnLog& txn_log() { return log_; }
  Database& database() { return *database_; }
  ModuleRegistry& registry() { return *registry_; }

  /// Switches the transaction log to a durable file at `path` (the WAL).
  /// Call before serving traffic; existing records are NOT replayed here —
  /// use Restart() to recover.
  Status EnableWal(const std::string& path);

  // -- Crash/recovery harness ---------------------------------------------

  /// Arms a simulated crash at `point` (one-shot).
  void InjectCrash(CrashPoint point) { crash_point_ = point; }
  bool crashed() const { return crashed_; }

  /// Simulates a process restart: discards all volatile state (sessions,
  /// decided-outcome cache, coordinator bookkeeping), replays the WAL, and
  /// reconstructs transaction state:
  ///  - COMMITTED records without APPLIED re-apply their PUL;
  ///  - PREPARED records without a decision become in-doubt sessions,
  ///    exempt from expiry;
  ///  - coordinator decisions without COORD-END are re-driven.
  /// With a non-null `transport`, in-doubt state is then resolved actively:
  /// participants inquire their coordinator (presumed abort on an explicit
  /// "aborted"/unknown answer), and this peer's own unfinished coordinator
  /// transactions re-send Commit (idempotent at the participants).
  Status Restart(net::Transport* transport = nullptr);

  /// Drains coordinator-side in-doubt participants by re-sending Commit.
  /// Returns OK when none remain in doubt.
  Status RetryInDoubt(net::Transport* transport);

  /// Anti-entropy resync (DESIGN.md §17; implemented in server/repair.cc).
  /// First resolves participant in-doubt transactions by coordinator
  /// inquiry (so a parked prepared PUL is never double-applied by repair),
  /// then compares every locally held fragment's applied data version
  /// against the catalog's authoritative version and catches lagging
  /// fragments up from a peer copy: missed committed PULs are replayed
  /// when a donor's WAL covers the gap contiguously, else the whole
  /// fragment is transferred. Runs automatically at the end of Restart();
  /// also reachable as Peer::Repair() after a reconnect.
  Status RepairReplica(net::Transport* transport);

  /// queryIDs currently parked in-doubt (either role).
  size_t in_doubt_count() const;

  // -- CoordinatorJournal --------------------------------------------------
  Status LogCommitDecision(
      const std::string& query_id,
      const std::vector<std::string>& participants) override;
  void RecordCommitAck(const std::string& query_id,
                       const std::string& participant) override;
  void ParkInDoubt(const std::string& query_id,
                   const std::string& participant) override;
  Status LogCommitEnd(const std::string& query_id) override;

  /// Statistics.
  int64_t requests_handled() const { return requests_handled_; }
  int64_t calls_handled() const { return calls_handled_; }
  void ResetStats() {
    requests_handled_ = 0;
    calls_handled_ = 0;
  }

  /// Optional shared observability registry; records the server-side
  /// request/call/fault counts under this peer's self URI, plus the
  /// transaction counters (in-doubt, replays, idempotent replies).
  void set_metrics(net::RpcMetrics* metrics) { metrics_ = metrics; }

  /// Clock that deadlines and cancellation are measured against (micros;
  /// steady clock by default, the virtual clock under simulation). Set
  /// before serving traffic.
  void set_time_source(std::function<int64_t()> now_us) {
    now_us_ = std::move(now_us);
  }

 private:
  /// Outcome a peer remembers for a decided transaction (idempotent
  /// Commit/Rollback replies; inquiry answers). Rebuilt from the WAL.
  enum class TxnOutcome { kCommitted, kAborted };

  /// Volatile coordinator bookkeeping of one in-flight commit decision.
  struct CoordTxn {
    std::set<std::string> pending;  ///< participants not yet acked
    bool ended = false;
  };

  StatusOr<std::string> HandleXrpc(const std::string& body);
  StatusOr<std::string> HandleWsat(const std::string& body);

  /// Determines which documents a session's PUL writes (maps update target
  /// roots back to document names) and records them in the session.
  Status ResolveWrittenDocs(QuerySession* session);

  /// Applies a PUL against the live database (rule RFu, isolation none).
  Status ApplyImmediate(xquery::PendingUpdateList* pul,
                        xquery::DocumentProvider* docs_used);

  /// Builds the PREPARED payload (coordinator, doc base versions,
  /// serialized PUL) for a session that is about to vote yes.
  StatusOr<PreparedPayload> BuildPreparedPayload(QuerySession* session);

  /// Applies a prepared session's PUL and installs the written documents
  /// under first-committer-wins version checks.
  Status ApplyPreparedSession(QuerySession* session);

  /// Rebuilds an in-doubt session from a PREPARED payload (crash
  /// recovery): pins fresh clones of the written documents at their
  /// recorded base versions and re-resolves the PUL against them.
  StatusOr<QuerySession*> RestoreInDoubtSession(const std::string& query_id,
                                                const PreparedPayload& p);

  /// Resolves participant-side in-doubt transactions by inquiring their
  /// coordinators; commits or aborts per the answer (presumed abort).
  Status ResolveParticipantInDoubt(net::Transport* transport);

  /// Donor side of the WS-AT kRepair verb (server/repair.cc): builds the
  /// delta (or full-transfer) reply for a lagging copy's catch-up request.
  WsatMessage BuildRepairReply(const WsatMessage& request);

  /// Requester side (server/repair.cc): catches one lagging fragment up
  /// from `donor`, delta-first with full-transfer fallback.
  Status ResyncFragmentFrom(net::Transport* transport,
                            const std::string& donor,
                            const std::string& collection,
                            const core::ShardInfo& shard,
                            uint64_t authoritative);

  /// Replays a delta-mode repair reply (missed committed PULs, in version
  /// order) against the live fragment and verifies the donor's digest.
  Status ApplyRepairDeltas(const WsatMessage& reply);

  /// Installs a full-transfer repair reply as the new fragment state.
  Status ApplyRepairFullBody(const WsatMessage& reply);

  /// True (and the crash latch set) if the armed crash point is `point`.
  bool TriggerCrash(CrashPoint point);

  void RememberOutcome(const std::string& query_id, TxnOutcome outcome);

  Options options_;
  Database* database_;
  ModuleRegistry* registry_;
  ExecutionEngine* engine_;
  net::Transport* outgoing_;
  IsolationManager isolation_;
  TxnLog log_;
  net::RpcMetrics* metrics_ = nullptr;
  std::function<int64_t()> now_us_;

  /// Serializes WS-AT verb handling and recovery state rebuilding: two
  /// concurrently re-delivered Commits must not both apply the same PUL.
  /// Never held across an outgoing send (a peer may coordinate itself).
  std::mutex wsat_mu_;
  mutable std::mutex txn_mu_;
  /// Decided outcomes (both roles), for idempotency and inquiry answers.
  std::map<std::string, TxnOutcome> outcomes_;
  /// Coordinator decisions not yet acknowledged by every participant.
  std::map<std::string, CoordTxn> coord_;
  /// Participant in-doubt queryIDs awaiting a coordinator decision,
  /// mapped to the coordinator URI to inquire at.
  std::map<std::string, std::string> participant_in_doubt_;

  std::atomic<bool> crashed_{false};
  std::atomic<CrashPoint> crash_point_{CrashPoint::kNone};

  // Concurrent HTTP worker threads handle requests in parallel.
  std::atomic<int64_t> requests_handled_{0};
  std::atomic<int64_t> calls_handled_{0};
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_XRPC_SERVICE_H_
