#ifndef XRPC_SERVER_ENGINE_H_
#define XRPC_SERVER_ENGINE_H_

#include <string>
#include <vector>

#include "base/cancellation.h"
#include "base/statusor.h"
#include "server/module_registry.h"
#include "soap/message.h"
#include "xquery/context.h"
#include "xquery/update.h"

namespace xrpc::net {
class RpcMetrics;
}  // namespace xrpc::net

namespace xrpc::server {

/// Channel for loop-lifted Bulk RPC dispatch: one invocation carries the
/// requests of ONE `execute at` — one Bulk RPC request per distinct
/// destination peer. Implementations may dispatch the requests in
/// parallel (MonetDB/XQuery does); the reference implementation
/// (RpcClient) accounts network time as the maximum over destinations.
class BulkRpcChannel {
 public:
  virtual ~BulkRpcChannel() = default;

  struct Destination {
    std::string dest_uri;
    soap::XrpcRequest request;
    /// Replica peers to try in order when `dest_uri` fails retriably
    /// (dial failure, per-attempt timeout, open breaker). Populated from
    /// the catalog's replica lists for shard-routed read-only subcalls;
    /// updating requests never fail over (at-most-once, Section 4.4).
    std::vector<std::string> fallback_uris;
  };

  /// Executes all requests; result[i] corresponds to destinations[i].
  virtual StatusOr<std::vector<soap::XrpcResponse>> ExecuteBulkAll(
      std::vector<Destination> destinations) = 0;

  /// Observability hook: the caller saw a StaleCatalog reject, refetched
  /// the shard map, and is re-dispatching. The compiler layer cannot link
  /// the metrics registry directly (layering), so the channel records it.
  virtual void NoteStaleReroute() {}
};

/// Everything an engine needs to execute one XRPC request: the database
/// view chosen by the isolation level, the module resolver, and the
/// outgoing RPC handler / bulk channel for nested `execute at` calls.
struct CallContext {
  xquery::DocumentProvider* documents = nullptr;
  xquery::ModuleResolver* modules = nullptr;
  xquery::RpcHandler* rpc = nullptr;
  BulkRpcChannel* bulk_rpc = nullptr;
  /// Cooperative cancellation: engines poll this at evaluation-step
  /// boundaries and abandon the request once it trips (deadline expiry or
  /// explicit cancel). Null = never cancelled.
  const CancellationToken* cancel = nullptr;
  /// Metrics sink for engine-side observability (`exec:` lines of the
  /// morsel-parallel executor). Null disables recording.
  net::RpcMetrics* metrics = nullptr;
};

/// An XQuery execution engine able to serve (bulk) XRPC requests.
///
/// Implementations:
///  - InterpreterEngine (here): per-call tree-walking evaluation; the
///    reference semantics.
///  - compiler::RelationalEngine: loop-lifted relational plans with a
///    function cache (the MonetDB/XQuery role).
///  - wrapper::WrapperEngine: generates the Fig. 3 XQuery text for the
///    whole bulk request and evaluates it (the Saxon-behind-a-wrapper
///    role).
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  virtual std::string name() const = 0;

  /// Executes every call of the request, returning one result sequence per
  /// call. Updating requests append their primitives to `pul` (which the
  /// isolation layer either applies immediately — rule RFu — or retains
  /// until Commit — rule R'Fu).
  virtual StatusOr<std::vector<xdm::Sequence>> ExecuteRequest(
      const soap::XrpcRequest& request, const CallContext& context,
      xquery::PendingUpdateList* pul) = 0;
};

/// Reference engine: resolves the function and interprets it once per call.
///
/// With `reparse_per_request` the module source is re-parsed from the
/// registry on every request, modeling a cache-less system (the "No
/// Function Cache" column of Table 2); otherwise the pre-parsed module is
/// used directly (the function cache hit path).
class InterpreterEngine : public ExecutionEngine {
 public:
  struct Options {
    bool reparse_per_request = false;
    ModuleRegistry* registry = nullptr;  ///< required when reparsing
  };

  InterpreterEngine() = default;
  explicit InterpreterEngine(const Options& options) : options_(options) {}

  std::string name() const override { return "interpreter"; }

  StatusOr<std::vector<xdm::Sequence>> ExecuteRequest(
      const soap::XrpcRequest& request, const CallContext& context,
      xquery::PendingUpdateList* pul) override;

 private:
  Options options_;
};

}  // namespace xrpc::server

#endif  // XRPC_SERVER_ENGINE_H_
