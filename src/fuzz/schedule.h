#ifndef XRPC_FUZZ_SCHEDULE_H_
#define XRPC_FUZZ_SCHEDULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/peer_network.h"
#include "net/simulated_network.h"
#include "server/xrpc_service.h"

namespace xrpc::fuzz {

/// One fault schedule: everything that varies between runs of the fixed
/// workload (multi-destination Bulk RPC update + WS-AT 2PC across peers
/// y and z). A Schedule is a pure function of (seed, index) — replaying
/// the same pair reproduces the identical run under the virtual clock.
struct Schedule {
  uint64_t seed = 0;
  int index = 0;

  net::FaultProfile faults;   ///< injected on the simulated transport
  int retry_attempts = 1;     ///< RetryPolicy.max_attempts at p0

  /// Participant crash: which peer (0 = none, 1 = y, 2 = z) dies at which
  /// WS-AT point while handling the transaction.
  int crash_peer = 0;
  server::CrashPoint crash_point = server::CrashPoint::kNone;

  /// Coordinator crash: 0 = none, 1 = after collecting votes (no decision
  /// logged -> presumed abort), 2 = after the decision log record (commit
  /// redriven on restart). Non-zero switches the run to the manually
  /// staged 2PC path so the coordinator can be killed mid-protocol.
  int coord_crash = 0;

  /// File-backed WAL on the crashing participant (vs in-memory log).
  bool durable_wal = false;

  /// End-to-end deadline budget of the workload query: 0 = none (today's
  /// behavior), 1 = loose (never expires under any grid fault), 2 = tight
  /// (expires whenever a latency spike lands mid-transaction). The four
  /// invariants must hold regardless of where in the 2PC the budget dies.
  int deadline_mode = 0;

  std::string Describe() const;
};

/// Outcome of running one schedule, after the drain phase (network healed,
/// crashed peers restarted, coordinator in-doubt retry, session expiry).
struct ScheduleResult {
  Schedule schedule;
  bool ok = true;                       ///< all four invariants held
  std::vector<std::string> violations;  ///< "invariant: detail" lines

  bool committed_known = false;  ///< the coordinator reported an outcome
  bool committed = false;
  int delta_y = 0;  ///< films added at y (0 = aborted, 1 = committed)
  int delta_z = 0;
};

struct ScheduleStats {
  int64_t explored = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t violations = 0;
  int64_t in_doubt_seen = 0;  ///< runs where some peer parked in-doubt
};

struct ScheduleConfig {
  uint64_t seed = 1;
  /// Directory for file-backed WAL schedules; empty disables the
  /// durable_wal dimension (everything stays in-memory).
  std::string wal_dir;
  /// Self-test mode: after the drain phase, re-apply the committed film at
  /// peer y a second time behind the protocol's back. The invariant
  /// checker must flag this as an at-most-once / all-or-nothing violation
  /// — proving the detector is not vacuous.
  bool sabotage_double_apply = false;
};

/// Systematic fault-schedule exploration for the fixed 2PC workload of
/// Section 6: the first GridSize() indices enumerate the full cross
/// product {fault profile} x {crash schedule} x {retry policy}; indices
/// beyond that sample the space randomly (seeded). Four invariants are
/// asserted after every run:
///   1. at-most-once  — no peer applies the update PUL twice, even when a
///      truncation fault delivers the request but loses the response;
///   2. all-or-nothing — y and z converge to the same delta (both applied
///      or both aborted);
///   3. no in-doubt leaks — after restart + RetryInDoubt + expiry, every
///      peer reports zero in-doubt transactions and zero live sessions;
///   4. serial equivalence — each final document equals one of the two
///      states reachable by a serial history (untouched, or exactly one
///      film appended).
class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(const ScheduleConfig& config = {});
  ~ScheduleExplorer();

  /// Number of systematically enumerated grid points; index >= GridSize()
  /// is sampled randomly.
  int GridSize() const;

  /// Deterministically derives schedule `index` of this explorer's seed.
  Schedule MakeSchedule(int index) const;

  /// Builds a fresh 3-peer network, injects the schedule, runs the
  /// workload, drains, and checks the invariants.
  ScheduleResult RunSchedule(const Schedule& schedule);

  const ScheduleStats& stats() const { return stats_; }

 private:
  ScheduleConfig config_;
  ScheduleStats stats_;
  /// Canonical serializations of the two serially reachable final states,
  /// computed once from a fault-free run.
  std::string base_doc_;
  std::string applied_y_doc_;
  std::string applied_z_doc_;
};

/// Self-contained repro file for an invariant violation; replay with
/// fuzz_schedules --replay (the file carries seed + index).
std::string FormatScheduleRepro(const ScheduleResult& r);
StatusOr<Schedule> ParseScheduleRepro(const std::string& content);

}  // namespace xrpc::fuzz

#endif  // XRPC_FUZZ_SCHEDULE_H_
