#include "fuzz/generator.h"

#include <iterator>
#include <utility>

namespace xrpc::fuzz {

namespace {

/// The XMark-derived document vocabulary the generator draws from. Each
/// source names a document URI (as visible from the originating peer p0 of
/// the differential fixture) and the element/attribute names that occur
/// under it, so generated paths usually select something.
struct DocSchema {
  const char* uri;
  /// Child-step chains that reach populated element sets.
  std::vector<std::vector<const char*>> spines;
  /// Leaf elements with numeric content (usable in arithmetic).
  std::vector<const char*> numeric_leaves;
  /// Leaf elements with string content.
  std::vector<const char*> string_leaves;
  /// Attribute names (on the spine tail element).
  std::vector<const char*> attributes;
};

const DocSchema& PersonsSchema() {
  static const DocSchema s{
      "persons.xml",
      {{"site", "people", "person"}, {"site", "people"}},
      {},
      {"name"},
      {"id"},
  };
  return s;
}

const DocSchema& AuctionsSchema() {
  static const DocSchema s{
      "xrpc://B/auctions.xml",
      {{"site", "closed_auctions", "closed_auction"},
       {"site", "open_auctions", "open_auction"},
       {"site", "items", "item"}},
      {"price"},
      {"itemref"},
      {"person", "item", "id"},
  };
  return s;
}

const DocSchema& FilmsSchema() {
  static const DocSchema s{
      "films.xml",
      {{"films", "film"}},
      {},
      {"name", "actor"},
      {},
  };
  return s;
}

const DocSchema& SchemaByIndex(uint64_t i) {
  switch (i % 3) {
    case 0: return PersonsSchema();
    case 1: return AuctionsSchema();
    default: return FilmsSchema();
  }
}

/// Descendant-step element names that exist in the fixture documents.
const char* const kDescendantNames[] = {
    "person", "name", "closed_auction", "open_auction", "buyer",
    "price",  "item", "annotation",     "film",         "actor",
};

/// String literals that overlap the fixture data (ids, names, fragments)
/// so comparisons are sometimes true.
const char* const kStringPool[] = {
    "person0", "person1", "person3", "item2", "a",
    "e",       "an",      "xyzzy",   "The",   "",
};

std::unique_ptr<GenNode> LitNode(std::string text, std::string reduced = "") {
  auto n = std::make_unique<GenNode>();
  n->Lit(std::move(text));
  n->reduced = std::move(reduced);
  return n;
}

}  // namespace

// ---------------------------------------------------------------- GenNode

std::string GenNode::Render() const {
  if (collapsed) return reduced;
  std::string out;
  for (const Piece& p : pieces) {
    if (p.child >= 0) {
      out += children[static_cast<size_t>(p.child)]->Render();
    } else {
      out += p.text;
    }
  }
  return out;
}

void GenNode::Lit(std::string text) {
  pieces.push_back(Piece{std::move(text), -1});
}

GenNode* GenNode::Add(std::unique_ptr<GenNode> child) {
  GenNode* raw = child.get();
  pieces.push_back(Piece{"", static_cast<int>(children.size())});
  children.push_back(std::move(child));
  return raw;
}

void GenNode::Walk(const std::function<void(GenNode*)>& fn) {
  fn(this);
  if (collapsed) return;
  for (auto& c : children) c->Walk(fn);
}

// ---------------------------------------------------------- QueryGenerator

/// Variables in scope while generating, tagged by what they are bound to so
/// follow-up uses type-check often enough to be interesting.
struct QueryGenerator::Scope {
  enum class Kind { kNodes, kAtomic };
  struct Var {
    std::string name;
    Kind kind;
    const DocSchema* schema;  ///< set for node vars bound to a known spine
    std::string elem;         ///< spine tail element name (may be empty)
  };
  std::vector<Var> vars;
  bool rpc_allowed = false;

  const Var* PickNodeVar(DeterministicPrng* prng) const {
    std::vector<const Var*> nodes;
    for (const Var& v : vars) {
      if (v.kind == Kind::kNodes) nodes.push_back(&v);
    }
    if (nodes.empty()) return nullptr;
    return nodes[prng->NextUint64() % nodes.size()];
  }
};

QueryGenerator::QueryGenerator(const GeneratorConfig& config)
    : config_(config), prng_(config.seed) {}

std::string QueryGenerator::FixturePrologue() {
  return "import module namespace b=\"functions_b\" at \"b.xq\";\n"
         "import module namespace tst=\"test\" at \"test.xq\";\n";
}

GeneratedQuery QueryGenerator::Next() {
  GeneratedQuery q;
  q.seed = config_.seed;
  q.index = next_index_++;
  var_counter_ = 0;
  q.updating = Chance(config_.update_ratio);
  bool with_rpc = config_.allow_rpc && !q.updating && Chance(config_.rpc_ratio);
  q.root = GenQueryBody(q.updating, with_rpc);
  return q;
}

std::unique_ptr<GenNode> QueryGenerator::GenQueryBody(bool updating,
                                                      bool with_rpc) {
  auto root = std::make_unique<GenNode>();
  if (with_rpc) root->Lit(FixturePrologue());
  Scope scope;
  scope.rpc_allowed = with_rpc;
  if (updating) {
    root->Add(GenUpdate(&scope));
  } else {
    root->Add(GenExpr(config_.max_depth, &scope));
  }
  return root;
}

std::unique_ptr<GenNode> QueryGenerator::GenExpr(int depth, Scope* scope) {
  if (depth <= 0) return GenAtomic(scope);
  switch (Below(12)) {
    case 0:
    case 1:
      return GenFlwor(depth, scope);
    case 2:
      return GenPath(depth, scope);
    case 3:
      return GenComparison(depth, scope);
    case 4:
      return GenArith(depth, scope);
    case 5:
      return GenStringExpr(depth, scope);
    case 6:
      return GenAggregate(depth, scope);
    case 7:
      return GenIf(depth, scope);
    case 8:
      return GenConstructor(depth, scope);
    case 9:
      if (scope->rpc_allowed) return GenExecuteAt(depth, scope);
      return GenQuantified(depth, scope);
    case 10: {
      // Parenthesized sequence (e1, e2).
      auto n = std::make_unique<GenNode>();
      n->reduced = "()";
      n->Lit("(");
      n->Add(GenExpr(depth - 1, scope));
      n->Lit(", ");
      n->Add(GenExpr(depth - 1, scope));
      n->Lit(")");
      return n;
    }
    default:
      return GenAtomic(scope);
  }
}

std::unique_ptr<GenNode> QueryGenerator::GenFlwor(int depth, Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "()";
  Scope inner = *scope;

  int clauses = 1 + static_cast<int>(Below(2));
  for (int c = 0; c < clauses; ++c) {
    std::string var = "$v" + std::to_string(var_counter_++);
    bool let = c > 0 && Chance(0.3);
    if (let) {
      n->Lit((c == 0 ? "let " : "\nlet ") + var + " := ");
      n->Add(GenExpr(depth - 1, &inner));
      inner.vars.push_back({var, Scope::Kind::kAtomic, nullptr, ""});
    } else {
      n->Lit((c == 0 ? "for " : "\nfor ") + var + " in ");
      if (Chance(0.65)) {
        // Bind to a document spine so the body has data to look at.
        const DocSchema& schema = SchemaByIndex(Below(3));
        const auto& spine = schema.spines[Below(schema.spines.size())];
        std::string path = "doc(\"" + std::string(schema.uri) + "\")";
        for (const char* step : spine) path += std::string("/") + step;
        auto src = std::make_unique<GenNode>();
        src->reduced = "()";
        src->Lit(path);
        n->Add(std::move(src));
        inner.vars.push_back({var, Scope::Kind::kNodes, &schema,
                              spine.back()});
      } else if (Chance(0.5)) {
        auto src = std::make_unique<GenNode>();
        src->reduced = "1";
        src->Lit("1 to " + std::to_string(1 + Below(6)));
        n->Add(std::move(src));
        inner.vars.push_back({var, Scope::Kind::kAtomic, nullptr, ""});
      } else {
        n->Add(GenExpr(depth - 1, &inner));
        inner.vars.push_back({var, Scope::Kind::kAtomic, nullptr, ""});
      }
    }
  }
  if (Chance(0.45)) {
    n->Lit("\nwhere ");
    n->Add(GenComparison(depth - 1, &inner));
  }
  if (Chance(0.3)) {
    n->Lit("\norder by ");
    auto key = std::make_unique<GenNode>();
    const Scope::Var* v = inner.PickNodeVar(&prng_);
    if (v != nullptr && v->schema != nullptr &&
        !v->schema->string_leaves.empty() && Chance(0.7)) {
      key->Lit("string(" + v->name + "/" +
               v->schema->string_leaves[Below(
                   v->schema->string_leaves.size())] +
               ")");
    } else {
      key = GenStringExpr(depth - 1, &inner);
    }
    n->Add(std::move(key));
    if (Chance(0.3)) n->Lit(" descending");
  }
  n->Lit("\nreturn ");
  n->Add(GenExpr(depth - 1, &inner));
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenQuantified(int depth,
                                                       Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "true()";
  std::string var = "$q" + std::to_string(var_counter_++);
  n->Lit(std::string(Chance(0.5) ? "some " : "every ") + var + " in ");
  Scope inner = *scope;
  if (Chance(0.5)) {
    auto src = std::make_unique<GenNode>();
    src->reduced = "1";
    src->Lit("1 to " + std::to_string(1 + Below(5)));
    n->Add(std::move(src));
  } else {
    n->Add(GenExpr(depth - 1, &inner));
  }
  inner.vars.push_back({var, Scope::Kind::kAtomic, nullptr, ""});
  n->Lit(" satisfies ");
  n->Add(GenComparison(depth - 1, &inner));
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenIf(int depth, Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "()";
  n->Lit("if (");
  n->Add(GenComparison(depth - 1, scope));
  n->Lit(") then ");
  n->Add(GenExpr(depth - 1, scope));
  n->Lit(" else ");
  n->Add(GenExpr(depth - 1, scope));
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenPath(int depth, Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "()";
  const Scope::Var* v = scope->PickNodeVar(&prng_);
  const DocSchema* schema;
  std::string elem;
  if (v != nullptr && Chance(0.6)) {
    n->Lit(v->name);
    schema = v->schema;
    elem = v->elem;
    // Step down from the bound element.
    if (schema != nullptr) {
      if (!schema->attributes.empty() && Chance(0.35)) {
        n->Lit("/@" + std::string(schema->attributes[Below(
                          schema->attributes.size())]));
        return n;
      }
      if (!schema->string_leaves.empty() && Chance(0.5)) {
        elem = schema->string_leaves[Below(schema->string_leaves.size())];
        n->Lit("/" + elem);
      } else if (!schema->numeric_leaves.empty()) {
        elem = schema->numeric_leaves[Below(schema->numeric_leaves.size())];
        n->Lit("/" + elem);
      } else {
        n->Lit("/*");
        elem.clear();
      }
    } else {
      n->Lit("/*");
      elem.clear();
    }
  } else {
    schema = &SchemaByIndex(Below(3));
    n->Lit("doc(\"" + std::string(schema->uri) + "\")");
    if (Chance(0.5)) {
      elem = kDescendantNames[Below(std::size(kDescendantNames))];
      n->Lit("//" + elem);
    } else {
      const auto& spine = schema->spines[Below(schema->spines.size())];
      for (const char* step : spine) n->Lit(std::string("/") + step);
      elem = spine.back();
    }
  }
  if (Chance(0.45)) n->Add(GenPredicate(depth - 1, scope, elem));
  if (Chance(0.2)) n->Lit("/text()");
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenPredicate(
    int depth, Scope* scope, const std::string& elem) {
  auto n = std::make_unique<GenNode>();
  n->droppable = true;  // a predicate may be removed wholesale
  n->Lit("[");
  switch (Below(4)) {
    case 0:
      // Positional.
      n->Lit(std::to_string(1 + Below(4)));
      break;
    case 1:
      if (elem == "closed_auction" || elem == "open_auction") {
        n->Lit("price > " + std::to_string(100 + Below(800)));
      } else {
        n->Lit("position() <= " + std::to_string(1 + Below(3)));
      }
      break;
    case 2: {
      // Existence / name comparison on a child.
      const char* name = kDescendantNames[Below(std::size(kDescendantNames))];
      n->Lit(std::string(name));
      break;
    }
    default: {
      auto inner = GenComparison(depth, scope);
      n->Add(std::move(inner));
      break;
    }
  }
  n->Lit("]");
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenComparison(int depth,
                                                       Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "true()";
  static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
  const Scope::Var* v = scope->PickNodeVar(&prng_);
  if (v != nullptr && v->schema != nullptr && Chance(0.5)) {
    const DocSchema* s = v->schema;
    if (!s->attributes.empty() && Chance(0.5)) {
      n->Lit(v->name + "/@" +
             std::string(s->attributes[Below(s->attributes.size())]) + " " +
             kOps[Below(2)] + " ");
      n->Add(LitNode("\"" + std::string(kStringPool[Below(
                              std::size(kStringPool))]) +
                         "\"",
                     "\"x\""));
    } else if (!s->numeric_leaves.empty()) {
      n->Lit(v->name + "/" +
             std::string(s->numeric_leaves[Below(s->numeric_leaves.size())]) +
             " " + std::string(kOps[Below(std::size(kOps))]) + " ");
      n->Add(GenArith(depth - 1, scope));
    } else {
      n->Lit("count(" + v->name + ") " +
             std::string(kOps[Below(std::size(kOps))]) + " ");
      n->Add(LitNode(std::to_string(Below(4)), "0"));
    }
    return n;
  }
  if (depth > 1 && Chance(0.25)) {
    // Boolean connective of two simpler comparisons.
    n->Lit("(");
    n->Add(GenComparison(depth - 1, scope));
    n->Lit(Chance(0.5) ? " and " : " or ");
    n->Add(GenComparison(depth - 1, scope));
    n->Lit(")");
    return n;
  }
  n->Add(GenArith(depth - 1, scope));
  n->Lit(" " + std::string(kOps[Below(std::size(kOps))]) + " ");
  n->Add(GenArith(depth - 1, scope));
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenArith(int depth, Scope* scope) {
  if (depth <= 0 || Chance(0.4)) {
    return LitNode(std::to_string(Below(20)), "1");
  }
  auto n = std::make_unique<GenNode>();
  n->reduced = "1";
  static const char* kOps[] = {" + ", " - ", " * ", " idiv ", " mod "};
  switch (Below(5)) {
    case 0: {
      const Scope::Var* v = scope->PickNodeVar(&prng_);
      if (v != nullptr && v->schema != nullptr &&
          !v->schema->numeric_leaves.empty()) {
        n->Lit("number(" + v->name + "/" +
               v->schema->numeric_leaves[Below(
                   v->schema->numeric_leaves.size())] +
               ")");
        return n;
      }
      n->Lit("count(");
      n->Add(GenPath(depth - 1, scope));
      n->Lit(")");
      return n;
    }
    case 1:
      n->Lit("count(");
      n->Add(GenPath(depth - 1, scope));
      n->Lit(")");
      return n;
    default: {
      n->Add(GenArith(depth - 1, scope));
      // idiv/mod by a constant to keep divide-by-zero rare but present.
      std::string op = kOps[Below(std::size(kOps))];
      n->Lit(op);
      if (op == " idiv " || op == " mod ") {
        n->Add(LitNode(std::to_string(1 + Below(7)), "1"));
      } else {
        n->Add(GenArith(depth - 1, scope));
      }
      return n;
    }
  }
}

std::unique_ptr<GenNode> QueryGenerator::GenStringExpr(int depth,
                                                       Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "\"x\"";
  switch (Below(5)) {
    case 0: {
      n->Lit("concat(");
      n->Add(GenStringExpr(depth - 1, scope));
      n->Lit(", ");
      n->Add(GenStringExpr(depth - 1, scope));
      n->Lit(")");
      return n;
    }
    case 1: {
      n->Lit("string-join(");
      n->Add(depth > 0 ? GenPath(depth - 1, scope)
                       : LitNode("(\"a\",\"b\")", "()"));
      n->Lit(", \"|\")");
      return n;
    }
    case 2: {
      n->Lit("string(");
      n->Add(depth > 0 ? GenExpr(depth - 1, scope) : GenAtomic(scope));
      n->Lit(")");
      return n;
    }
    case 3: {
      const char* f = Chance(0.5) ? "contains"
                                  : (Chance(0.5) ? "starts-with" : "ends-with");
      n->Lit(std::string(f) + "(");
      n->Add(GenStringExpr(depth - 1, scope));
      n->Lit(", \"" +
             std::string(kStringPool[Below(std::size(kStringPool))]) + "\")");
      return n;
    }
    default: {
      const Scope::Var* v = scope->PickNodeVar(&prng_);
      if (v != nullptr && v->schema != nullptr &&
          !v->schema->string_leaves.empty()) {
        n->Lit("string(" + v->name + "/" +
               v->schema->string_leaves[Below(
                   v->schema->string_leaves.size())] +
               ")");
        return n;
      }
      n->Lit("\"" + std::string(kStringPool[Below(std::size(kStringPool))]) +
             "\"");
      return n;
    }
  }
}

std::unique_ptr<GenNode> QueryGenerator::GenAggregate(int depth,
                                                      Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "0";
  static const char* kAggs[] = {"count", "sum", "avg", "min", "max",
                                "empty", "exists", "distinct-values"};
  const char* agg = kAggs[Below(std::size(kAggs))];
  n->Lit(std::string(agg) + "(");
  bool numeric = std::string(agg) != "count" && std::string(agg) != "empty" &&
                 std::string(agg) != "exists" &&
                 std::string(agg) != "distinct-values";
  if (numeric) {
    // Aggregate over a numeric sequence: a range or numeric leaf path.
    if (Chance(0.5)) {
      n->Add(LitNode("1 to " + std::to_string(1 + Below(8)), "1"));
    } else {
      auto inner = std::make_unique<GenNode>();
      inner->reduced = "1";
      inner->Lit("for $a" + std::to_string(var_counter_) + " in ");
      std::string var = "$a" + std::to_string(var_counter_++);
      inner->Lit(
          "doc(\"xrpc://B/auctions.xml\")/site/closed_auctions/"
          "closed_auction");
      inner->Lit(" return number(" + var + "/price)");
      n->Add(std::move(inner));
    }
  } else {
    n->Add(GenPath(depth - 1, scope));
  }
  n->Lit(")");
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenConstructor(int depth,
                                                        Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "<r/>";
  static const char* kNames[] = {"r", "out", "row", "wrap"};
  std::string name = kNames[Below(std::size(kNames))];
  n->Lit("<" + name);
  if (Chance(0.3)) {
    n->Lit(" k=\"{");
    n->Add(GenArith(depth - 1, scope));
    n->Lit("}\"");
  }
  n->Lit(">{");
  n->Add(GenExpr(depth - 1, scope));
  n->Lit("}</" + name + ">");
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenExecuteAt(int depth,
                                                      Scope* scope) {
  auto n = std::make_unique<GenNode>();
  n->reduced = "()";
  n->Lit("execute at {\"xrpc://B\"} {");
  switch (Below(4)) {
    case 0:
      n->Lit("b:Q_B1()");
      break;
    case 1: {
      n->Lit("b:Q_B3(");
      n->Add(GenStringExpr(depth - 1, scope));
      n->Lit(")");
      break;
    }
    case 2: {
      n->Lit("tst:echo(");
      n->Add(GenExpr(depth > 1 ? 1 : 0, scope));
      n->Lit(")");
      break;
    }
    default: {
      n->Lit("tst:makePayload(");
      n->Add(LitNode(std::to_string(1 + Below(5)), "1"));
      n->Lit(")");
      break;
    }
  }
  n->Lit("}");
  return n;
}

std::unique_ptr<GenNode> QueryGenerator::GenUpdate(Scope* scope) {
  auto n = std::make_unique<GenNode>();
  // Updates have no generic reduced form (the minimizer works on their
  // argument subtrees instead).
  switch (Below(4)) {
    case 0: {
      n->Lit("insert nodes <person id=\"pX" + std::to_string(Below(100)) +
             "\"><name>");
      n->Add(GenStringExpr(1, scope));
      n->Lit("</name></person> into doc(\"persons.xml\")/site/people");
      return n;
    }
    case 1: {
      n->Lit("delete nodes doc(\"persons.xml\")/site/people/person[");
      n->Lit(std::to_string(1 + Below(6)));
      n->Lit("]");
      return n;
    }
    case 2: {
      n->Lit(
          "replace value of node "
          "doc(\"persons.xml\")/site/people/person[" +
          std::to_string(1 + Below(4)) + "]/name with ");
      n->Add(GenStringExpr(1, scope));
      return n;
    }
    default: {
      n->Lit("rename node doc(\"films.xml\")/films/film[" +
             std::to_string(1 + Below(3)) + "] as \"movie\"");
      return n;
    }
  }
}

std::unique_ptr<GenNode> QueryGenerator::GenAtomic(Scope* scope) {
  switch (Below(4)) {
    case 0:
      return LitNode(std::to_string(Below(50)), "1");
    case 1:
      return LitNode(
          "\"" + std::string(kStringPool[Below(std::size(kStringPool))]) +
              "\"",
          "\"x\"");
    case 2: {
      if (!scope->vars.empty()) {
        const auto& v = scope->vars[Below(scope->vars.size())];
        return LitNode(v.name);
      }
      return LitNode(std::to_string(1 + Below(9)), "1");
    }
    default:
      return LitNode(Chance(0.5) ? "true()" : "false()", "true()");
  }
}

}  // namespace xrpc::fuzz
