#include "fuzz/schedule.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "base/prng.h"
#include "server/rpc_client.h"
#include "server/wsat.h"
#include "xml/serializer.h"

namespace xrpc::fuzz {

namespace {

// The fixed workload of the explorer: the Section-2 film database split
// across two remote peers, updated through one two-destination Bulk RPC
// query that commits via WS-AT 2PC (the txn_recovery_test workload).
constexpr char kFilmDb[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

constexpr char kFilmModule[] = R"(
  module namespace film = "films";
  declare function film:countFilms() as xs:integer
  { count(doc("filmDB.xml")//film) };
  declare updating function film:addFilm($name as xs:string,
                                         $actor as xs:string)
  { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
    into doc("filmDB.xml")/films };
)";

constexpr char kModuleLocation[] = "http://x.example.org/film.xq";

constexpr char kUpdateBoth[] = R"(
  declare option xrpc:isolation "repeatable";
  declare option xrpc:timeout "60";
  import module namespace f="films" at "http://x.example.org/film.xq";
  (execute at {"xrpc://y.example.org"} {f:addFilm("A", "X")},
   execute at {"xrpc://z.example.org"} {f:addFilm("B", "Y")}))";

constexpr int kBaseFilms = 3;

/// Deadline axis: loose outlives every grid fault (spikes are <= 250 ms and
/// backoffs are bounded); tight dies the moment a latency spike lands, so
/// budgets expire at arbitrary points of the dispatch/2PC pipeline.
constexpr int kDeadlineModes = 3;
constexpr int64_t kLooseDeadlineUs = 60'000'000;
constexpr int64_t kTightDeadlineUs = 150'000;

int64_t DeadlineBudgetUs(int mode) {
  switch (mode) {
    case 1: return kLooseDeadlineUs;
    case 2: return kTightDeadlineUs;
    default: return 0;
  }
}

// Systematically enumerated dimension tables (the grid). Sampled indices
// draw from wider ranges.
net::FaultProfile GridFaults(int variant, uint64_t fault_seed) {
  net::FaultProfile f;
  f.seed = fault_seed;
  switch (variant) {
    case 0: break;                                    // healthy network
    case 1: f.drop_probability = 0.25; break;         // lossy requests
    case 2: f.fail_every_nth = 2; break;              // periodic failures
    case 3: f.fail_every_nth = 3; break;
    case 4: f.truncate_every_nth = 2; break;          // applied, ack lost
    case 5: f.truncate_every_nth = 3; break;
    case 6:
      f.latency_spike_every_nth = 2;
      f.latency_spike_us = 250'000;
      break;
    case 7:                                            // compound fault
      f.drop_probability = 0.15;
      f.truncate_every_nth = 3;
      break;
  }
  return f;
}
constexpr int kFaultVariants = 8;

/// Crash variants: 0 none, 1..4 y at each participant point, 5..8 z at
/// each point, 9 coordinator after votes, 10 coordinator after decision.
void GridCrash(int variant, Schedule* s) {
  static constexpr server::CrashPoint kPoints[] = {
      server::CrashPoint::kAfterPrepareLog,
      server::CrashPoint::kAfterVote,
      server::CrashPoint::kBeforeCommitApply,
      server::CrashPoint::kAfterCommitLog,
  };
  if (variant == 0) return;
  if (variant <= 8) {
    s->crash_peer = variant <= 4 ? 1 : 2;
    s->crash_point = kPoints[(variant - 1) % 4];
    return;
  }
  s->coord_crash = variant - 8;
}
constexpr int kCrashVariants = 11;

const char* CrashPointName(server::CrashPoint p) {
  switch (p) {
    case server::CrashPoint::kNone: return "none";
    case server::CrashPoint::kAfterPrepareLog: return "after-prepare-log";
    case server::CrashPoint::kAfterVote: return "after-vote";
    case server::CrashPoint::kBeforeCommitApply: return "before-commit-apply";
    case server::CrashPoint::kAfterCommitLog: return "after-commit-log";
  }
  return "?";
}

/// SplitMix-style mix so every (seed, index) pair gets an independent
/// stream for its sampled dimensions and fault coin flips.
uint64_t MixSeed(uint64_t seed, int index) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(index) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

struct Fixture {
  core::PeerNetwork net;
  core::Peer* p0;
  core::Peer* y;
  core::Peer* z;

  Fixture() {
    p0 = net.AddPeer("p0.example.org");
    y = net.AddPeer("y.example.org");
    z = net.AddPeer("z.example.org");
    for (core::Peer* p : {y, z}) {
      (void)p->AddDocument("filmDB.xml", kFilmDb);
    }
    for (core::Peer* p : {p0, y, z}) {
      (void)p->RegisterModule(kFilmModule, kModuleLocation);
    }
  }

  std::string Doc(core::Peer* p) {
    auto doc = p->database().GetDocument("filmDB.xml");
    return doc.ok() ? xml::SerializeNode(*doc.value()) : "<unreadable/>";
  }

  int CountFilms(core::Peer* p) {
    const std::string text = Doc(p);
    int n = 0;
    for (size_t pos = text.find("<film>"); pos != std::string::npos;
         pos = text.find("<film>", pos + 1)) {
      ++n;
    }
    return n;
  }
};

}  // namespace

std::string Schedule::Describe() const {
  std::string out = "faults{";
  char buf[64];
  if (faults.drop_probability > 0) {
    std::snprintf(buf, sizeof(buf), "drop=%.2f ", faults.drop_probability);
    out += buf;
  }
  if (faults.fail_every_nth > 0) {
    out += "fail_nth=" + std::to_string(faults.fail_every_nth) + " ";
  }
  if (faults.truncate_every_nth > 0) {
    out += "trunc_nth=" + std::to_string(faults.truncate_every_nth) + " ";
  }
  if (faults.latency_spike_every_nth > 0) {
    out += "spike_nth=" + std::to_string(faults.latency_spike_every_nth) + " ";
  }
  out += "seed=" + std::to_string(faults.seed) + "}";
  out += " retry=" + std::to_string(retry_attempts);
  if (crash_peer != 0) {
    out += std::string(" crash=") + (crash_peer == 1 ? "y" : "z") + "@" +
           CrashPointName(crash_point);
  }
  if (coord_crash != 0) {
    out += std::string(" coord=") +
           (coord_crash == 1 ? "after-votes" : "after-decision-log");
  }
  if (durable_wal) out += " wal=file";
  if (deadline_mode != 0) {
    out += std::string(" deadline=") + (deadline_mode == 1 ? "loose" : "tight");
  }
  return out;
}

ScheduleExplorer::ScheduleExplorer(const ScheduleConfig& config)
    : config_(config) {
  // Reference run on a healthy network: its final documents define the
  // serially reachable "applied" state for invariant 4.
  Fixture fx;
  base_doc_ = fx.Doc(fx.y);
  auto report = fx.net.Execute("p0.example.org", kUpdateBoth);
  if (report.ok() && report->committed) {
    applied_y_doc_ = fx.Doc(fx.y);
    applied_z_doc_ = fx.Doc(fx.z);
  }
}

ScheduleExplorer::~ScheduleExplorer() = default;

int ScheduleExplorer::GridSize() const {
  const int wal_dims = config_.wal_dir.empty() ? 1 : 2;
  return kCrashVariants * kFaultVariants * 2 * kDeadlineModes * wal_dims;
}

Schedule ScheduleExplorer::MakeSchedule(int index) const {
  Schedule s;
  s.seed = config_.seed;
  s.index = index;
  const uint64_t fault_seed = MixSeed(config_.seed, index) | 1;

  if (index < GridSize()) {
    int k = index;
    const int crash_variant = k % kCrashVariants;
    k /= kCrashVariants;
    const int fault_variant = k % kFaultVariants;
    k /= kFaultVariants;
    s.retry_attempts = (k % 2) == 0 ? 1 : 3;
    k /= 2;
    s.deadline_mode = k % kDeadlineModes;
    k /= kDeadlineModes;
    s.durable_wal = !config_.wal_dir.empty() && (k % 2) == 1;
    s.faults = GridFaults(fault_variant, fault_seed);
    GridCrash(crash_variant, &s);
    return s;
  }

  // Sampled region: draw every dimension independently, allowing
  // combinations the grid does not enumerate (participant crash AND
  // coordinator crash, compound fault profiles, retry=2).
  DeterministicPrng prng(MixSeed(config_.seed, index));
  auto below = [&prng](uint64_t n) { return prng.NextUint64() % n; };
  static constexpr double kDrops[] = {0.0, 0.0, 0.1, 0.25, 0.4};
  static constexpr int kNth[] = {0, 0, 2, 3, 5};
  s.faults.seed = fault_seed;
  s.faults.drop_probability = kDrops[below(5)];
  s.faults.fail_every_nth = kNth[below(5)];
  s.faults.truncate_every_nth = kNth[below(5)];
  if (below(4) == 0) {
    s.faults.latency_spike_every_nth = 2 + static_cast<int>(below(3));
    s.faults.latency_spike_us = 100'000;
  }
  s.retry_attempts = 1 + static_cast<int>(below(3));
  s.crash_peer = static_cast<int>(below(3));
  if (s.crash_peer != 0) {
    static constexpr server::CrashPoint kPoints[] = {
        server::CrashPoint::kAfterPrepareLog,
        server::CrashPoint::kAfterVote,
        server::CrashPoint::kBeforeCommitApply,
        server::CrashPoint::kAfterCommitLog,
    };
    s.crash_point = kPoints[below(4)];
  }
  s.coord_crash = below(3) == 0 ? static_cast<int>(below(3)) : 0;
  s.durable_wal = !config_.wal_dir.empty() && below(3) == 0;
  s.deadline_mode = static_cast<int>(below(3));
  return s;
}

ScheduleResult ScheduleExplorer::RunSchedule(const Schedule& schedule) {
  ScheduleResult r;
  r.schedule = schedule;
  ++stats_.explored;

  Fixture fx;
  auto fail = [&r](const std::string& invariant, const std::string& detail) {
    r.ok = false;
    r.violations.push_back(invariant + ": " + detail);
  };

  core::Peer* crash_target =
      schedule.crash_peer == 1 ? fx.y : (schedule.crash_peer == 2 ? fx.z : nullptr);
  std::string wal_path;
  if (schedule.durable_wal && !config_.wal_dir.empty()) {
    core::Peer* wal_peer = crash_target != nullptr ? crash_target : fx.z;
    wal_path = config_.wal_dir + "/sched-" + std::to_string(schedule.seed) +
               "-" + std::to_string(schedule.index) + ".wal";
    std::remove(wal_path.c_str());
    (void)wal_peer->EnableWal(wal_path);
  }
  net::RetryPolicy policy;
  policy.max_attempts = schedule.retry_attempts;
  policy.initial_backoff_us = 1000;
  fx.net.set_retry_policy(policy);
  if (crash_target != nullptr) crash_target->InjectCrash(schedule.crash_point);
  fx.net.network().set_fault_profile(schedule.faults);

  // --- run the workload under the schedule --------------------------------
  const int64_t deadline_budget_us = DeadlineBudgetUs(schedule.deadline_mode);
  if (schedule.coord_crash == 0) {
    core::ExecuteOptions exec_options;
    exec_options.deadline_us = deadline_budget_us;
    auto report =
        fx.net.Execute("p0.example.org", kUpdateBoth, exec_options);
    if (report.ok()) {
      r.committed_known = true;
      r.committed = report->committed;
      if (!report->in_doubt.empty()) ++stats_.in_doubt_seen;
    }
  } else {
    // Manually staged path so the coordinator can die mid-protocol.
    soap::QueryId qid;
    qid.id = "sched-" + std::to_string(schedule.seed) + "-" +
             std::to_string(schedule.index);
    qid.host = fx.p0->uri();
    qid.timestamp = 1;
    qid.timeout_sec = 60;
    server::RpcClient::Options copts;
    copts.isolation = server::IsolationLevel::kRepeatable;
    copts.query_id = qid;
    if (deadline_budget_us > 0) {
      // The staged path stamps budgets too, so coordinator-crash schedules
      // also explore deadlines dying between dispatch and decision.
      copts.deadline_us =
          fx.net.network().clock().NowMicros() + deadline_budget_us;
      copts.now_us = [&fx] { return fx.net.network().clock().NowMicros(); };
    }
    server::RpcClient client(&fx.net.network(), copts);
    soap::XrpcRequest req;
    req.module_ns = "films";
    req.method = "addFilm";
    req.arity = 2;
    req.updating = true;
    req.calls.push_back(
        {xdm::Sequence{xdm::Item(xdm::AtomicValue::String("A"))},
         xdm::Sequence{xdm::Item(xdm::AtomicValue::String("X"))}});
    (void)client.ExecuteBulk(fx.y->uri(), req);
    req.calls[0] = {xdm::Sequence{xdm::Item(xdm::AtomicValue::String("B"))},
                    xdm::Sequence{xdm::Item(xdm::AtomicValue::String("Y"))}};
    (void)client.ExecuteBulk(fx.z->uri(), req);

    server::TwoPhaseCommitOptions options;
    options.journal = &fx.p0->service();
    options.crash_point =
        schedule.coord_crash == 1
            ? server::TwoPhaseCommitOptions::CrashPoint::kAfterVotes
            : server::TwoPhaseCommitOptions::CrashPoint::kAfterDecisionLog;
    auto outcome = server::RunTwoPhaseCommit(
        &fx.net.network(), {fx.y->uri(), fx.z->uri()}, qid.id, options);
    if (outcome.ok()) {
      r.committed_known = true;
      r.committed = outcome->committed;
    }
  }

  // --- drain: heal the network, recover every peer ------------------------
  fx.net.network().set_fault_profile({});
  // The coordinator first (its journal answers the participants' recovery
  // inquiries and redrives logged-but-unsent decisions), then the
  // participants (inquiry resolves their prepared in-doubt sessions —
  // Restart is safe and idempotent on peers that never crashed).
  (void)fx.p0->Restart();
  (void)fx.y->Restart();
  (void)fx.z->Restart();
  for (int i = 0; i < 3 && fx.p0->service().in_doubt_count() > 0; ++i) {
    (void)fx.p0->service().RetryInDoubt(&fx.net.network());
  }
  // Deterministic snapshot expiry: fast-forward the isolation clock far
  // past every deadline so abandoned (never-prepared) sessions collect.
  for (core::Peer* p : {fx.y, fx.z}) {
    p->service().isolation().SetTimeSource(
        [] { return int64_t{1} << 62; });
    p->service().isolation().ExpireSessions();
  }

  if (config_.sabotage_double_apply) {
    // Self-test: duplicate the applied film at y as a lost-ack retransmit
    // would. Invariants 1/2/4 must all fire on this.
    std::string doc = fx.Doc(fx.y);
    const size_t end = doc.rfind("</films>");
    if (end != std::string::npos) {
      doc.insert(end, "<film><name>A</name><actor>X</actor></film>");
      (void)fx.y->database().PutDocumentText("filmDB.xml", doc);
    }
  }

  // --- invariants ----------------------------------------------------------
  r.delta_y = fx.CountFilms(fx.y) - kBaseFilms;
  r.delta_z = fx.CountFilms(fx.z) - kBaseFilms;

  // 1. At-most-once: a truncation fault delivers the update but loses the
  //    response; a retransmitting transport would apply the PUL twice.
  if (r.delta_y < 0 || r.delta_y > 1 || r.delta_z < 0 || r.delta_z > 1) {
    fail("at-most-once", "film deltas y=" + std::to_string(r.delta_y) +
                             " z=" + std::to_string(r.delta_z));
  }
  // 2. All-or-nothing: both participants converge to the same outcome,
  //    which matches the coordinator's decision when one was reached.
  if (r.delta_y != r.delta_z) {
    fail("all-or-nothing", "y applied " + std::to_string(r.delta_y) +
                               " but z applied " + std::to_string(r.delta_z));
  }
  if (r.committed_known) {
    const int want = r.committed ? 1 : 0;
    if (r.delta_y != want || r.delta_z != want) {
      fail("all-or-nothing",
           std::string("coordinator decided ") +
               (r.committed ? "commit" : "abort") + " but deltas are y=" +
               std::to_string(r.delta_y) + " z=" + std::to_string(r.delta_z));
    }
  }
  // 3. No in-doubt leaks after recovery.
  for (core::Peer* p : {fx.p0, fx.y, fx.z}) {
    if (p->service().in_doubt_count() != 0) {
      fail("no-in-doubt-leak",
           p->name() + " still parks " +
               std::to_string(p->service().in_doubt_count()) +
               " in-doubt transaction(s)");
    }
  }
  for (core::Peer* p : {fx.y, fx.z}) {
    if (p->service().isolation().active_sessions() != 0) {
      fail("no-in-doubt-leak",
           p->name() + " still holds " +
               std::to_string(p->service().isolation().active_sessions()) +
               " live session(s) after expiry");
    }
  }
  // 4. Serial equivalence: each final document is a state some serial
  //    history produces — untouched, or with the film applied exactly once.
  if (!applied_y_doc_.empty()) {
    const std::string y_doc = fx.Doc(fx.y);
    const std::string z_doc = fx.Doc(fx.z);
    if (y_doc != base_doc_ && y_doc != applied_y_doc_) {
      fail("serial-equivalence", "y final document matches no serial state: " +
                                     y_doc);
    }
    if (z_doc != base_doc_ && z_doc != applied_z_doc_) {
      fail("serial-equivalence", "z final document matches no serial state: " +
                                     z_doc);
    }
  }

  if (!wal_path.empty()) std::remove(wal_path.c_str());
  if (r.committed_known) {
    if (r.committed) ++stats_.committed;
    else ++stats_.aborted;
  }
  if (!r.ok) ++stats_.violations;
  return r;
}

std::string FormatScheduleRepro(const ScheduleResult& r) {
  std::string out;
  out += "# xrpc-fuzz schedule repro\n";
  out += "seed: " + std::to_string(r.schedule.seed) + "\n";
  out += "index: " + std::to_string(r.schedule.index) + "\n";
  out += "schedule: " + r.schedule.Describe() + "\n";
  out += std::string("outcome: ") +
         (r.committed_known ? (r.committed ? "committed" : "aborted")
                            : "unknown") +
         "\n";
  out += "delta_y: " + std::to_string(r.delta_y) + "\n";
  out += "delta_z: " + std::to_string(r.delta_z) + "\n";
  out += "--- violations ---\n";
  for (const std::string& v : r.violations) out += v + "\n";
  return out;
}

StatusOr<Schedule> ParseScheduleRepro(const std::string& content) {
  Schedule s;
  bool saw_seed = false, saw_index = false;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("seed: ", 0) == 0) {
      s.seed = std::strtoull(line.c_str() + 6, nullptr, 10);
      saw_seed = true;
    } else if (line.rfind("index: ", 0) == 0) {
      s.index = std::atoi(line.c_str() + 7);
      saw_index = true;
    }
  }
  if (!saw_seed || !saw_index) {
    return Status::InvalidArgument("schedule repro needs seed: and index:");
  }
  // Fault/crash dimensions are re-derived: MakeSchedule(index) under the
  // same seed reproduces them exactly.
  return s;
}

}  // namespace xrpc::fuzz
